#!/usr/bin/env python3
"""Validate a pfsc fleet analytics report (pfsc_cli fleet/replay --report).

Checks (stdlib only, used by CI and by hand):
  * the file parses as JSON with "fleet", "apps" and "jobs" sections;
  * the fleet header is consistent (job count matches the jobs array,
    total_mbps equals the per-job sum, Jain index in (0, 1]);
  * every job row is internally consistent: achieved/ideal positive,
    slowdown == ideal/achieved, risk_ost > 0, known kind;
  * app rows partition the jobs (job and rank totals match) and are
    ranked by mean_risk_ost desc, mean_slowdown desc;
  * optional --min-jobs floor for the synthetic-fleet CI run.

Usage: validate_fleet_report.py [--min-jobs N] report.json [more.json ...]
"""
import argparse
import json
import sys

KINDS = {"ior", "plfs", "probe", "noise"}
REL_TOL = 1e-9


def close(a: float, b: float) -> bool:
    return abs(a - b) <= REL_TOL * max(1.0, abs(a), abs(b))


def validate(path: str, min_jobs: int) -> list[str]:
    errors: list[str] = []
    with open(path, encoding="utf-8") as f:
        doc = json.load(f)

    for section in ("fleet", "apps", "jobs"):
        if section not in doc:
            return [f"{path}: missing '{section}' section"]
    fleet, apps, jobs = doc["fleet"], doc["apps"], doc["jobs"]

    if fleet["jobs"] != len(jobs):
        errors.append(f"{path}: fleet.jobs {fleet['jobs']} != "
                      f"len(jobs) {len(jobs)}")
    if len(jobs) < min_jobs:
        errors.append(f"{path}: {len(jobs)} jobs < required {min_jobs}")
    if not 0.0 < fleet["jain_fairness"] <= 1.0 + REL_TOL:
        errors.append(f"{path}: jain_fairness {fleet['jain_fairness']} "
                      "outside (0, 1]")

    total = 0.0
    seen_ids = set()
    for i, j in enumerate(jobs):
        where = f"{path}: job[{i}] (id {j.get('id')})"
        if j["id"] in seen_ids:
            errors.append(f"{where}: duplicate job id")
        seen_ids.add(j["id"])
        if j["kind"] not in KINDS:
            errors.append(f"{where}: unknown kind '{j['kind']}'")
        if j["nprocs"] < 1 or j["stripes"] < 1 or j["bytes"] <= 0:
            errors.append(f"{where}: non-positive nprocs/stripes/bytes")
        if j["achieved_mbps"] <= 0.0 or j["ideal_mbps"] <= 0.0:
            errors.append(f"{where}: non-positive bandwidth")
        elif not close(j["slowdown"], j["ideal_mbps"] / j["achieved_mbps"]):
            errors.append(f"{where}: slowdown {j['slowdown']} != "
                          f"ideal/achieved "
                          f"{j['ideal_mbps'] / j['achieved_mbps']}")
        if j["risk_ost"] <= 0.0:
            errors.append(f"{where}: non-positive risk_ost")
        total += j["achieved_mbps"]
    if not close(total, fleet["total_mbps"]):
        errors.append(f"{path}: total_mbps {fleet['total_mbps']} != "
                      f"per-job sum {total}")

    app_jobs = sum(a["jobs"] for a in apps)
    if app_jobs != len(jobs):
        errors.append(f"{path}: app rows cover {app_jobs} jobs, "
                      f"expected {len(jobs)}")
    if sum(a["ranks"] for a in apps) != sum(j["nprocs"] for j in jobs):
        errors.append(f"{path}: app rank totals disagree with job rows")
    for hi, lo in zip(apps, apps[1:]):
        if (hi["mean_risk_ost"], hi["mean_slowdown"]) < \
           (lo["mean_risk_ost"], lo["mean_slowdown"]):
            errors.append(f"{path}: apps '{hi['app']}' -> '{lo['app']}' "
                          "not ranked by (mean_risk_ost, mean_slowdown)")
    return errors


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--min-jobs", type=int, default=1,
                    help="minimum number of job rows (default 1)")
    ap.add_argument("reports", nargs="+")
    args = ap.parse_args()

    failed = False
    for path in args.reports:
        errors = validate(path, args.min_jobs)
        if errors:
            failed = True
            for e in errors:
                print(e, file=sys.stderr)
        else:
            with open(path, encoding="utf-8") as f:
                doc = json.load(f)
            print(f"{path}: OK — {doc['fleet']['jobs']} jobs, "
                  f"{len(doc['apps'])} apps, "
                  f"jain {doc['fleet']['jain_fairness']:.4f}")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
