#!/usr/bin/env python3
"""Unit tests for check_bench_baseline.py (ratio gates, min_cpus skips,
absolute floors, bootstrap/update). Registered with ctest as
check_bench_baseline_test; also runnable directly:

    python3 tools/test_check_bench_baseline.py
"""
import contextlib
import io
import json
import os
import sys
import tempfile
import unittest

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
import check_bench_baseline as cbb  # noqa: E402


def report(rates, num_cpus=4, aggregates=()):
    benchmarks = [
        {"name": name, "run_type": "iteration", "items_per_second": rate}
        for name, rate in rates.items()
    ]
    benchmarks += [
        {"name": name, "run_type": "aggregate", "items_per_second": 1e99}
        for name in aggregates
    ]
    return {"context": {"num_cpus": num_cpus}, "benchmarks": benchmarks}


class RunResult:
    def __init__(self, code, out, err, baseline):
        self.code = code
        self.out = out
        self.err = err
        self.baseline = baseline


def run_gate(report_obj, baseline_obj, update=False):
    """Drive main() against temp files; returns exit code, both output
    streams, and the baseline file's content after the run."""
    with tempfile.TemporaryDirectory() as tmp:
        report_path = os.path.join(tmp, "report.json")
        baseline_path = os.path.join(tmp, "baseline.json")
        with open(report_path, "w", encoding="utf-8") as f:
            json.dump(report_obj, f)
        with open(baseline_path, "w", encoding="utf-8") as f:
            json.dump(baseline_obj, f)
        argv = ["check_bench_baseline.py", report_path, baseline_path]
        if update:
            argv.append("--update")
        out, err = io.StringIO(), io.StringIO()
        old_argv, sys.argv = sys.argv, argv
        try:
            with contextlib.redirect_stdout(out), contextlib.redirect_stderr(err):
                code = cbb.main()
        finally:
            sys.argv = old_argv
        with open(baseline_path, encoding="utf-8") as f:
            final = json.load(f)
        return RunResult(code, out.getvalue(), err.getvalue(), final)


class LoadReportTest(unittest.TestCase):
    def test_skips_aggregates_and_reads_num_cpus(self):
        rep = report({"BM_A": 100.0}, num_cpus=7, aggregates=["BM_A_mean"])
        with tempfile.NamedTemporaryFile("w", suffix=".json", delete=False) as f:
            json.dump(rep, f)
            path = f.name
        try:
            rates, num_cpus = cbb.load_report(path)
        finally:
            os.unlink(path)
        self.assertEqual(rates, {"BM_A": 100.0})
        self.assertEqual(num_cpus, 7)

    def test_missing_context_defaults_to_zero_cpus(self):
        with tempfile.NamedTemporaryFile("w", suffix=".json", delete=False) as f:
            json.dump({"benchmarks": []}, f)
            path = f.name
        try:
            rates, num_cpus = cbb.load_report(path)
        finally:
            os.unlink(path)
        self.assertEqual(rates, {})
        self.assertEqual(num_cpus, 0)


class RatioGateTest(unittest.TestCase):
    def gate(self, min_ratio, **extra):
        return {"ratios": [dict(numerator="BM_N", denominator="BM_D",
                                min=min_ratio, **extra)]}

    def test_ratio_at_gate_passes(self):
        r = run_gate(report({"BM_N": 300.0, "BM_D": 100.0}), self.gate(3.0))
        self.assertEqual(r.code, 0)
        self.assertIn("ok", r.out)

    def test_ratio_below_gate_fails(self):
        r = run_gate(report({"BM_N": 299.0, "BM_D": 100.0}), self.gate(3.0))
        self.assertEqual(r.code, 1)
        self.assertIn("FAIL", r.err)

    def test_min_cpus_skips_on_small_host(self):
        r = run_gate(report({"BM_N": 1.0, "BM_D": 100.0}, num_cpus=2),
                     self.gate(3.0, min_cpus=4))
        self.assertEqual(r.code, 0, "a skipped gate must not fail")
        self.assertIn("skip", r.out)

    def test_min_cpus_enforced_on_big_host(self):
        r = run_gate(report({"BM_N": 1.0, "BM_D": 100.0}, num_cpus=4),
                     self.gate(3.0, min_cpus=4))
        self.assertEqual(r.code, 1)

    def test_missing_benchmark_fails_not_skips(self):
        r = run_gate(report({"BM_N": 300.0}), self.gate(3.0))
        self.assertEqual(r.code, 1)
        self.assertIn("missing from report", r.err)


class AbsoluteGateTest(unittest.TestCase):
    def test_within_tolerance_passes(self):
        floor = 100.0 * (1.0 - cbb.TOLERANCE)
        r = run_gate(report({"BM_A": floor}),
                     {"events_per_sec": {"BM_A": 100.0}})
        self.assertEqual(r.code, 0)

    def test_below_tolerance_fails(self):
        floor = 100.0 * (1.0 - cbb.TOLERANCE)
        r = run_gate(report({"BM_A": floor * 0.999}),
                     {"events_per_sec": {"BM_A": 100.0}})
        self.assertEqual(r.code, 1)

    def test_bootstrap_always_passes_without_update(self):
        r = run_gate(report({"BM_A": 5.0}),
                     {"events_per_sec": {"BM_A": "bootstrap"}})
        self.assertEqual(r.code, 0)
        self.assertEqual(r.baseline["events_per_sec"]["BM_A"], "bootstrap",
                         "no --update: file must be untouched")

    def test_update_freezes_bootstrap(self):
        r = run_gate(report({"BM_A": 5.0}),
                     {"events_per_sec": {"BM_A": "bootstrap"}}, update=True)
        self.assertEqual(r.code, 0)
        self.assertEqual(r.baseline["events_per_sec"]["BM_A"], 5.0)

    def test_update_raises_on_improvement_never_lowers(self):
        improved = run_gate(report({"BM_A": 120.0}),
                            {"events_per_sec": {"BM_A": 100.0}}, update=True)
        self.assertEqual(improved.baseline["events_per_sec"]["BM_A"], 120.0)
        regressed = run_gate(report({"BM_A": 90.0}),
                             {"events_per_sec": {"BM_A": 100.0}}, update=True)
        self.assertEqual(regressed.code, 0, "90 is inside the 15% tolerance")
        self.assertEqual(regressed.baseline["events_per_sec"]["BM_A"], 100.0)


if __name__ == "__main__":
    unittest.main()
