#!/usr/bin/env python3
"""Validate a pfsc Chrome trace_event JSON file.

Checks (stdlib only, used by CI and by hand):
  * the file parses as JSON and has a non-empty "traceEvents" array;
  * every required category contributes at least one span event;
  * per (pid, tid) timestamps are monotonically non-decreasing;
  * sync B/E begins and ends balance per (pid, tid).

Usage: validate_trace.py [--require-cats a,b,c] trace.json [more.json ...]
"""
import argparse
import json
import sys


def validate(path: str, required_cats: list[str]) -> list[str]:
    errors: list[str] = []
    with open(path, encoding="utf-8") as f:
        doc = json.load(f)
    events = doc.get("traceEvents")
    if not isinstance(events, list) or not events:
        return [f"{path}: traceEvents missing or empty"]

    span_cats = set()
    last_ts: dict[tuple, float] = {}
    depth: dict[tuple, int] = {}
    for i, e in enumerate(events):
        ph = e.get("ph")
        if ph == "M":
            continue
        key = (e.get("pid"), e.get("tid"))
        ts = e.get("ts")
        if not isinstance(ts, (int, float)):
            errors.append(f"{path}: event {i} has no numeric ts")
            continue
        if ts < last_ts.get(key, float("-inf")):
            errors.append(
                f"{path}: event {i} ts {ts} goes backwards on track {key}")
        last_ts[key] = ts
        if ph in ("B", "b"):
            span_cats.add(e.get("cat"))
        if ph == "B":
            depth[key] = depth.get(key, 0) + 1
        elif ph == "E":
            depth[key] = depth.get(key, 0) - 1
            if depth[key] < 0:
                errors.append(f"{path}: event {i} E without B on track {key}")

    for key, d in depth.items():
        if d != 0:
            errors.append(f"{path}: {d} unclosed sync span(s) on track {key}")
    for cat in required_cats:
        if cat not in span_cats:
            errors.append(f"{path}: no span events in category '{cat}'")
    return errors


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--require-cats", default="",
                        help="comma-separated categories that must have spans")
    parser.add_argument("files", nargs="+")
    args = parser.parse_args()
    required = [c for c in args.require_cats.split(",") if c]

    failed = False
    for path in args.files:
        errors = validate(path, required)
        if errors:
            failed = True
            for err in errors:
                print(f"FAIL {err}", file=sys.stderr)
        else:
            print(f"OK   {path}")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
