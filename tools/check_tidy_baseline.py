#!/usr/bin/env python3
"""Gate clang-tidy output against a committed warning-count baseline.

Counts distinct `file:line:col: warning: ... [check]` diagnostics in a
clang-tidy log and compares against `.github/clang-tidy-baseline.txt`:

  * baseline says `bootstrap`  -> always pass; print the count so a later
    PR can freeze it as the numeric baseline;
  * baseline is a number N     -> fail if the current count exceeds N,
    and suggest ratcheting the baseline down when the count shrinks.

Usage: check_tidy_baseline.py tidy.log .github/clang-tidy-baseline.txt
"""
import re
import sys

WARNING_RE = re.compile(r"^[^\s].*:\d+:\d+: warning: .* \[[-\w.,]+\]$")


def count_warnings(log_path: str) -> int:
    seen = set()
    with open(log_path, encoding="utf-8", errors="replace") as f:
        for line in f:
            line = line.rstrip("\n")
            if WARNING_RE.match(line):
                seen.add(line)  # dedupe: headers are diagnosed once per TU
    return len(seen)


def main() -> int:
    if len(sys.argv) != 3:
        print(__doc__, file=sys.stderr)
        return 2
    log_path, baseline_path = sys.argv[1], sys.argv[2]
    count = count_warnings(log_path)
    with open(baseline_path, encoding="utf-8") as f:
        baseline = f.read().strip()

    if baseline == "bootstrap":
        print(f"clang-tidy: {count} warning(s); baseline is 'bootstrap', "
              f"passing. Freeze it by writing {count} to {baseline_path}.")
        return 0

    limit = int(baseline)
    if count > limit:
        print(f"clang-tidy: {count} warning(s) exceeds baseline {limit}. "
              f"Fix new warnings or (with justification) raise the baseline.",
              file=sys.stderr)
        return 1
    if count < limit:
        print(f"clang-tidy: {count} warning(s), below baseline {limit} — "
              f"consider ratcheting {baseline_path} down to {count}.")
    else:
        print(f"clang-tidy: {count} warning(s), at baseline {limit}.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
