#!/usr/bin/env python3
"""Gate micro_simcore throughput against a committed perf baseline.

Reads a Google Benchmark JSON report (--benchmark_out=... format) and
compares it with `.github/bench-baseline.json`, which holds two kinds of
entries:

  * "ratios": machine-independent speedup gates. Each entry divides the
    items_per_second of one benchmark by another's (e.g. the ladder hold
    benchmark over the heap one) and fails if the ratio drops below
    `min`. These are the primary CI gate: a ratio of two numbers measured
    in the same process on the same machine is stable across runner
    hardware. An entry may carry `min_cpus`: when the report's
    context.num_cpus is below it the gate is skipped with a notice — used
    for the sharded-engine speedup gates, which need real cores for the
    domain worker threads before the ratio means anything.
  * "events_per_sec": absolute items_per_second floors, one per benchmark
    name. An entry whose value is the string "bootstrap" always passes and
    prints the measured number so a later run (or `--update`) can freeze
    it. A numeric entry fails when the measured rate falls below
    (1 - tolerance) x baseline, and is raised automatically by `--update`
    when the measured rate improves on it.

`--update` rewrites the baseline file in place: bootstrap entries are
frozen to the measured value and numeric entries are raised (never
lowered) on improvement, mirroring the "update file on improvement" half
of the gate.

Usage: check_bench_baseline.py BENCH_simcore.json .github/bench-baseline.json [--update]
"""
import json
import sys

TOLERANCE = 0.15  # fail on >15% regression vs a frozen absolute baseline


def load_report(report_path: str) -> tuple:
    with open(report_path, encoding="utf-8") as f:
        report = json.load(f)
    rates = {}
    for b in report.get("benchmarks", []):
        if b.get("run_type") == "aggregate":
            continue
        if "items_per_second" in b:
            rates[b["name"]] = float(b["items_per_second"])
    num_cpus = int(report.get("context", {}).get("num_cpus", 0))
    return rates, num_cpus


def main() -> int:
    args = [a for a in sys.argv[1:] if a != "--update"]
    update = "--update" in sys.argv[1:]
    if len(args) != 2:
        print(__doc__, file=sys.stderr)
        return 2
    report_path, baseline_path = args
    rates, num_cpus = load_report(report_path)
    with open(baseline_path, encoding="utf-8") as f:
        baseline = json.load(f)

    failed = False
    changed = False

    for gate in baseline.get("ratios", []):
        num, den = gate["numerator"], gate["denominator"]
        min_cpus = int(gate.get("min_cpus", 0))
        if min_cpus and num_cpus < min_cpus:
            print(f"skip  {num} / {den}: host has {num_cpus} cpus, "
                  f"gate needs {min_cpus}")
            continue
        if num not in rates or den not in rates:
            print(f"ratio gate {num} / {den}: benchmark missing from report",
                  file=sys.stderr)
            failed = True
            continue
        ratio = rates[num] / rates[den]
        if ratio < float(gate["min"]):
            print(f"FAIL  {num} / {den} = {ratio:.2f}x "
                  f"(gate: >= {gate['min']}x)", file=sys.stderr)
            failed = True
        else:
            print(f"ok    {num} / {den} = {ratio:.2f}x "
                  f"(gate: >= {gate['min']}x)")

    abs_gates = baseline.get("events_per_sec", {})
    for name, limit in sorted(abs_gates.items()):
        if name not in rates:
            print(f"absolute gate {name}: benchmark missing from report",
                  file=sys.stderr)
            failed = True
            continue
        measured = rates[name]
        if limit == "bootstrap":
            print(f"boot  {name} = {measured:.3e} items/s (baseline is "
                  f"'bootstrap', passing)")
            if update:
                abs_gates[name] = measured
                changed = True
            continue
        limit = float(limit)
        floor = limit * (1.0 - TOLERANCE)
        if measured < floor:
            print(f"FAIL  {name} = {measured:.3e} items/s, more than "
                  f"{TOLERANCE:.0%} below baseline {limit:.3e}",
                  file=sys.stderr)
            failed = True
        elif measured > limit:
            print(f"ok    {name} = {measured:.3e} items/s, improves on "
                  f"baseline {limit:.3e}")
            if update:
                abs_gates[name] = measured
                changed = True
        else:
            print(f"ok    {name} = {measured:.3e} items/s "
                  f"(baseline {limit:.3e}, floor {floor:.3e})")

    if update and changed and not failed:
        with open(baseline_path, "w", encoding="utf-8") as f:
            json.dump(baseline, f, indent=2, sort_keys=True)
            f.write("\n")
        print(f"updated {baseline_path} with improved measurements")

    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
