#include "support/units.hpp"

#include <array>
#include <cstdio>

namespace pfsc {

std::string format_bytes(Bytes b) {
  static constexpr std::array<const char*, 5> kSuffix = {"B", "KiB", "MiB", "GiB", "TiB"};
  double v = static_cast<double>(b);
  std::size_t i = 0;
  while (v >= 1024.0 && i + 1 < kSuffix.size()) {
    v /= 1024.0;
    ++i;
  }
  char buf[48];
  if (v == static_cast<double>(static_cast<std::uint64_t>(v))) {
    std::snprintf(buf, sizeof buf, "%llu %s", static_cast<unsigned long long>(v), kSuffix[i]);
  } else {
    std::snprintf(buf, sizeof buf, "%.2f %s", v, kSuffix[i]);
  }
  return buf;
}

}  // namespace pfsc
