// Plain-text table and figure-series formatting for bench output.
//
// Every bench binary prints the paper's tables/figures side by side with the
// simulator's measurements; these helpers keep that output consistent.
#pragma once

#include <string>
#include <vector>

namespace pfsc {

/// Right-aligned fixed-point formatting helpers.
std::string fmt_double(double v, int precision = 2);
std::string fmt_int(long long v);

/// A simple monospace table: header row plus data rows, auto column widths.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  void add_row(std::vector<std::string> cells);
  TextTable& cell(std::string value);
  void end_row();

  std::string to_string() const;
  std::string to_csv() const;
  /// Print to stdout with an optional caption line.
  void print(const std::string& caption = "") const;

  std::size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
  std::vector<std::string> pending_;
};

/// An (x, series...) dataset representing one paper figure; rendered as a
/// table plus an ASCII sketch so shapes are visible in terminal output.
class FigureSeries {
 public:
  FigureSeries(std::string x_label, std::vector<std::string> series_names);

  void add_point(double x, std::vector<double> ys);
  void print(const std::string& caption, int chart_width = 60) const;

 private:
  std::string x_label_;
  std::vector<std::string> names_;
  std::vector<double> xs_;
  std::vector<std::vector<double>> ys_;  // [series][point]
};

}  // namespace pfsc
