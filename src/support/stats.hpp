// Summary statistics with Student-t confidence intervals.
//
// The paper reports five-repetition means with 95% confidence intervals
// (Table VII) and derives the ideal-scaling band of Figure 2 from the
// single-job CI; this module provides exactly those computations.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace pfsc {

/// Welford-style accumulator for mean and variance.
class RunningStats {
 public:
  void add(double x);

  std::size_t count() const { return n_; }
  double mean() const { return mean_; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }
  double sum() const { return mean_ * static_cast<double>(n_); }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

struct ConfidenceInterval {
  double mean = 0.0;
  double lower = 0.0;
  double upper = 0.0;
  double half_width = 0.0;
};

/// Two-sided Student-t critical value for the given confidence level
/// (supported levels: 0.90, 0.95, 0.99) and degrees of freedom.
double student_t_critical(double confidence, std::size_t dof);

/// Mean with a two-sided Student-t confidence interval.
ConfidenceInterval confidence_interval(std::span<const double> samples,
                                       double confidence = 0.95);
ConfidenceInterval confidence_interval(const RunningStats& stats,
                                       double confidence = 0.95);

double mean_of(std::span<const double> samples);
double stddev_of(std::span<const double> samples);

/// Jain fairness index (sum x)^2 / (n * sum x^2) over non-negative shares:
/// 1.0 for perfectly equal allocations, 1/n when one share takes all.
/// Empty or all-zero inputs count as perfectly fair (1.0).
double jain_index(std::span<const double> shares);

/// Population percentile by linear interpolation (p in [0,1]).
double percentile(std::vector<double> samples, double p);

}  // namespace pfsc
