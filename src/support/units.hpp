// Basic quantity types shared across the simulator.
//
// The paper reports bandwidth in MB/s (decimal megabytes, as IOR does) but
// configures stripe/transfer sizes in binary units (1 MB stripe == 1 MiB).
// We keep bytes as the canonical unit and convert only at the edges.
#pragma once

#include <cstdint>
#include <string>

namespace pfsc {

using Bytes = std::uint64_t;

inline constexpr Bytes operator""_KiB(unsigned long long v) { return v * 1024ull; }
inline constexpr Bytes operator""_MiB(unsigned long long v) { return v * 1024ull * 1024ull; }
inline constexpr Bytes operator""_GiB(unsigned long long v) { return v * 1024ull * 1024ull * 1024ull; }

/// Simulated time in seconds.
using Seconds = double;

/// Bandwidth in bytes per second.
using BytesPerSecond = double;

inline constexpr BytesPerSecond mb_per_sec(double mb) { return mb * 1.0e6; }

/// Convert a measured rate to the MB/s figure IOR would report
/// (decimal megabytes, matching the paper's tables).
inline constexpr double to_mbps(BytesPerSecond bps) { return bps / 1.0e6; }

/// Bandwidth achieved moving `bytes` in `elapsed` seconds, in MB/s.
inline double bandwidth_mbps(Bytes bytes, Seconds elapsed) {
  if (elapsed <= 0.0) return 0.0;
  return to_mbps(static_cast<double>(bytes) / elapsed);
}

/// Human-readable byte size, e.g. "128 MiB".
std::string format_bytes(Bytes b);

}  // namespace pfsc
