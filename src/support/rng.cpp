#include "support/rng.hpp"

#include <cmath>
#include <numeric>

namespace pfsc {
namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

}  // namespace

void Rng::reseed(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& word : s_) word = splitmix64(sm);
  have_spare_ = false;
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::uniform(std::uint64_t bound) {
  PFSC_ASSERT(bound > 0);
  // Lemire's nearly-divisionless method.
  std::uint64_t x = next_u64();
  __uint128_t m = static_cast<__uint128_t>(x) * static_cast<__uint128_t>(bound);
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < bound) {
    const std::uint64_t threshold = -bound % bound;
    while (lo < threshold) {
      x = next_u64();
      m = static_cast<__uint128_t>(x) * static_cast<__uint128_t>(bound);
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

double Rng::uniform_double() {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform_double(double lo, double hi) {
  return lo + (hi - lo) * uniform_double();
}

double Rng::normal(double mean, double stddev) {
  if (have_spare_) {
    have_spare_ = false;
    return mean + stddev * spare_;
  }
  double u = 0.0;
  double v = 0.0;
  double s = 0.0;
  do {
    u = uniform_double(-1.0, 1.0);
    v = uniform_double(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  spare_ = v * factor;
  have_spare_ = true;
  return mean + stddev * u * factor;
}

std::vector<std::uint32_t> Rng::sample_without_replacement(std::uint32_t n, std::uint32_t k) {
  PFSC_REQUIRE(k <= n, "sample_without_replacement: k exceeds population");
  std::vector<std::uint32_t> pool(n);
  std::iota(pool.begin(), pool.end(), 0u);
  for (std::uint32_t i = 0; i < k; ++i) {
    const auto j = i + static_cast<std::uint32_t>(uniform(n - i));
    std::swap(pool[i], pool[j]);
  }
  pool.resize(k);
  return pool;
}

Rng Rng::split() {
  Rng child;
  std::uint64_t sm = next_u64();
  for (auto& word : child.s_) word = splitmix64(sm);
  return child;
}

}  // namespace pfsc
