// Deterministic random number generation.
//
// xoshiro256** seeded through splitmix64: fast, high quality, and —
// unlike std::mt19937 + std::uniform_int_distribution — produces identical
// streams on every platform, which we rely on for reproducible experiments.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "support/error.hpp"

namespace pfsc {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull) { reseed(seed); }

  void reseed(std::uint64_t seed);

  /// Uniform 64-bit value.
  std::uint64_t next_u64();

  /// Uniform in [0, bound) without modulo bias (Lemire's method).
  std::uint64_t uniform(std::uint64_t bound);

  /// Uniform double in [0, 1).
  double uniform_double();

  /// Uniform double in [lo, hi).
  double uniform_double(double lo, double hi);

  /// Truncated normal sample (mean, stddev), clamped to [lo, hi].
  double normal(double mean, double stddev);

  /// Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::span<T> items) {
    for (std::size_t i = items.size(); i > 1; --i) {
      const auto j = static_cast<std::size_t>(uniform(i));
      using std::swap;
      swap(items[i - 1], items[j]);
    }
  }

  /// Sample `k` distinct values from [0, n) uniformly (partial Fisher–Yates).
  std::vector<std::uint32_t> sample_without_replacement(std::uint32_t n, std::uint32_t k);

  /// Split off an independent child stream (for per-repetition seeding).
  Rng split();

 private:
  std::array<std::uint64_t, 4> s_{};
  // Cached spare for normal() (Marsaglia polar method).
  bool have_spare_ = false;
  double spare_ = 0.0;
};

}  // namespace pfsc
