#include "support/stats.hpp"

#include <algorithm>
#include <cmath>

#include "support/error.hpp"

namespace pfsc {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

namespace {

// Two-sided critical values of the t distribution, dof 1..30 then selected
// larger dofs; the final entry is the normal-approximation limit.
struct TTable {
  double confidence;
  double values[30];
  double dof40, dof60, dof120, inf;
};

constexpr TTable kTables[] = {
    {0.90,
     {6.314, 2.920, 2.353, 2.132, 2.015, 1.943, 1.895, 1.860, 1.833, 1.812,
      1.796, 1.782, 1.771, 1.761, 1.753, 1.746, 1.740, 1.734, 1.729, 1.725,
      1.721, 1.717, 1.714, 1.711, 1.708, 1.706, 1.703, 1.701, 1.699, 1.697},
     1.684, 1.671, 1.658, 1.645},
    {0.95,
     {12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
      2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
      2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042},
     2.021, 2.000, 1.980, 1.960},
    {0.99,
     {63.657, 9.925, 5.841, 4.604, 4.032, 3.707, 3.499, 3.355, 3.250, 3.169,
      3.106, 3.055, 3.012, 2.977, 2.947, 2.921, 2.898, 2.878, 2.861, 2.845,
      2.831, 2.819, 2.807, 2.797, 2.787, 2.779, 2.771, 2.763, 2.756, 2.750},
     2.704, 2.660, 2.617, 2.576},
};

}  // namespace

double student_t_critical(double confidence, std::size_t dof) {
  PFSC_REQUIRE(dof >= 1, "student_t_critical: dof must be >= 1");
  for (const auto& table : kTables) {
    if (std::abs(table.confidence - confidence) < 1e-9) {
      if (dof <= 30) return table.values[dof - 1];
      if (dof <= 40) return table.dof40;
      if (dof <= 60) return table.dof60;
      if (dof <= 120) return table.dof120;
      return table.inf;
    }
  }
  throw UsageError("student_t_critical: unsupported confidence level");
}

ConfidenceInterval confidence_interval(std::span<const double> samples,
                                       double confidence) {
  RunningStats stats;
  for (double s : samples) stats.add(s);
  return confidence_interval(stats, confidence);
}

ConfidenceInterval confidence_interval(const RunningStats& stats,
                                       double confidence) {
  ConfidenceInterval ci;
  ci.mean = stats.mean();
  if (stats.count() < 2) {
    ci.lower = ci.upper = ci.mean;
    return ci;
  }
  const double t = student_t_critical(confidence, stats.count() - 1);
  ci.half_width = t * stats.stddev() / std::sqrt(static_cast<double>(stats.count()));
  ci.lower = ci.mean - ci.half_width;
  ci.upper = ci.mean + ci.half_width;
  return ci;
}

double mean_of(std::span<const double> samples) {
  RunningStats stats;
  for (double s : samples) stats.add(s);
  return stats.mean();
}

double stddev_of(std::span<const double> samples) {
  RunningStats stats;
  for (double s : samples) stats.add(s);
  return stats.stddev();
}

double jain_index(std::span<const double> shares) {
  double sum = 0.0;
  double sum_sq = 0.0;
  for (double s : shares) {
    PFSC_REQUIRE(s >= 0.0, "jain_index: shares must be non-negative");
    sum += s;
    sum_sq += s * s;
  }
  if (sum_sq == 0.0) return 1.0;
  return (sum * sum) / (static_cast<double>(shares.size()) * sum_sq);
}

double percentile(std::vector<double> samples, double p) {
  PFSC_REQUIRE(!samples.empty(), "percentile: empty sample set");
  PFSC_REQUIRE(p >= 0.0 && p <= 1.0, "percentile: p outside [0,1]");
  std::sort(samples.begin(), samples.end());
  const double idx = p * static_cast<double>(samples.size() - 1);
  const auto lo = static_cast<std::size_t>(idx);
  const auto hi = std::min(lo + 1, samples.size() - 1);
  const double frac = idx - static_cast<double>(lo);
  return samples[lo] * (1.0 - frac) + samples[hi] * frac;
}

}  // namespace pfsc
