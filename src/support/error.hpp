// Error handling for the simulator libraries.
//
// Programming errors (broken invariants) abort via PFSC_ASSERT; recoverable
// file-system errors travel as error codes (see lustre/errors.hpp) so that
// callers can exercise failure paths the way a real client would.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <string>

namespace pfsc {

/// Thrown for unrecoverable misuse of a library API (bad configuration,
/// out-of-range arguments). Distinct from simulated I/O errors.
class UsageError : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

/// Thrown when a simulation reaches an impossible state (engine bug).
class SimulationError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

[[noreturn]] inline void assert_fail(const char* expr, const char* file, int line) {
  std::fprintf(stderr, "PFSC_ASSERT failed: %s at %s:%d\n", expr, file, line);
  std::abort();
}

}  // namespace pfsc

#define PFSC_ASSERT(expr) \
  ((expr) ? static_cast<void>(0) : ::pfsc::assert_fail(#expr, __FILE__, __LINE__))

#define PFSC_REQUIRE(expr, msg)          \
  do {                                   \
    if (!(expr)) {                       \
      throw ::pfsc::UsageError((msg));   \
    }                                    \
  } while (false)
