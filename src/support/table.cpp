#include "support/table.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

#include "support/error.hpp"

namespace pfsc {

std::string fmt_double(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return buf;
}

std::string fmt_int(long long v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%lld", v);
  return buf;
}

TextTable::TextTable(std::vector<std::string> header) : header_(std::move(header)) {
  PFSC_REQUIRE(!header_.empty(), "TextTable: header must not be empty");
}

void TextTable::add_row(std::vector<std::string> cells) {
  PFSC_REQUIRE(cells.size() == header_.size(), "TextTable: row width mismatch");
  rows_.push_back(std::move(cells));
}

TextTable& TextTable::cell(std::string value) {
  pending_.push_back(std::move(value));
  return *this;
}

void TextTable::end_row() {
  add_row(std::move(pending_));
  pending_.clear();
}

std::string TextTable::to_string() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& row) {
    out << "|";
    for (std::size_t c = 0; c < row.size(); ++c) {
      out << ' ';
      out << std::string(widths[c] - row[c].size(), ' ') << row[c];
      out << " |";
    }
    out << '\n';
  };
  emit_row(header_);
  out << "|";
  for (std::size_t c = 0; c < header_.size(); ++c) {
    out << std::string(widths[c] + 2, '-') << "|";
  }
  out << '\n';
  for (const auto& row : rows_) emit_row(row);
  return out.str();
}

std::string TextTable::to_csv() const {
  std::ostringstream out;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) out << ',';
      out << row[c];
    }
    out << '\n';
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
  return out.str();
}

void TextTable::print(const std::string& caption) const {
  if (!caption.empty()) std::printf("%s\n", caption.c_str());
  std::fputs(to_string().c_str(), stdout);
  std::printf("\n");
}

FigureSeries::FigureSeries(std::string x_label, std::vector<std::string> series_names)
    : x_label_(std::move(x_label)), names_(std::move(series_names)) {
  PFSC_REQUIRE(!names_.empty(), "FigureSeries: need at least one series");
  ys_.resize(names_.size());
}

void FigureSeries::add_point(double x, std::vector<double> ys) {
  PFSC_REQUIRE(ys.size() == names_.size(), "FigureSeries: point width mismatch");
  xs_.push_back(x);
  for (std::size_t s = 0; s < ys.size(); ++s) ys_[s].push_back(ys[s]);
}

void FigureSeries::print(const std::string& caption, int chart_width) const {
  std::vector<std::string> header{x_label_};
  header.insert(header.end(), names_.begin(), names_.end());
  TextTable table(std::move(header));
  for (std::size_t p = 0; p < xs_.size(); ++p) {
    std::vector<std::string> row{fmt_double(xs_[p], 0)};
    for (const auto& series : ys_) row.push_back(fmt_double(series[p], 2));
    table.add_row(std::move(row));
  }
  table.print(caption);

  // ASCII sketch: one bar block per point for the first series, marks for the
  // rest, all scaled to the global max. Enough to eyeball figure shape.
  double max_y = 0.0;
  for (const auto& series : ys_) {
    for (double y : series) max_y = std::max(max_y, y);
  }
  if (max_y <= 0.0) return;
  for (std::size_t p = 0; p < xs_.size(); ++p) {
    std::printf("%10.0f ", xs_[p]);
    for (std::size_t s = 0; s < ys_.size(); ++s) {
      const int len = static_cast<int>(std::lround(
          ys_[s][p] / max_y * static_cast<double>(chart_width)));
      if (s == 0) {
        std::printf("|%s%s", std::string(static_cast<std::size_t>(len), '#').c_str(),
                    std::string(static_cast<std::size_t>(chart_width - len), ' ').c_str());
      } else {
        std::printf(" %c@%d", static_cast<char>('a' + (s - 1)), len);
      }
    }
    std::printf("\n");
  }
  std::printf("\n");
}

}  // namespace pfsc
