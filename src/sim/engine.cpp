#include "sim/engine.hpp"

#include "sim/task.hpp"

namespace pfsc::sim {

Engine::~Engine() {
  // Destroy unfinished root frames. Outstanding Task handles to these frames
  // must already have been dropped (documented engine-outlives-tasks rule).
  for (auto h : live_roots_) {
    if (h) h.destroy();
  }
}

void Engine::schedule(std::coroutine_handle<> h, Seconds t) {
  PFSC_ASSERT(h && !h.done());
  PFSC_ASSERT(t >= now_);
  queue_.push(Item{t, seq_++, h});
}

void Engine::spawn(Task task) {
  PFSC_REQUIRE(task.valid(), "Engine::spawn: invalid task");
  auto h = task.handle();
  PFSC_REQUIRE(!h.promise().spawned(), "Engine::spawn: task already spawned");
  h.promise().bind(*this, live_roots_.size());
  live_roots_.push_back(h);
  schedule(h, now_);
}

void Engine::note_root_done(std::size_t live_index) {
  PFSC_ASSERT(live_index < live_roots_.size());
  // Swap-remove; re-index the promise that moved into the vacated slot.
  const std::size_t last = live_roots_.size() - 1;
  if (live_index != last) {
    live_roots_[live_index] = live_roots_[last];
    auto moved = std::coroutine_handle<TaskPromise>::from_address(
        live_roots_[live_index].address());
    moved.promise().set_live_index(live_index);
  }
  live_roots_.pop_back();
}

void Engine::dispatch_one() {
  const Item item = queue_.top();
  queue_.pop();
  PFSC_ASSERT(item.t >= now_);
  now_ = item.t;
  ++executed_;
  item.h.resume();
}

void Engine::rethrow_pending() {
  if (pending_exception_) {
    auto e = std::exchange(pending_exception_, nullptr);
    std::rethrow_exception(e);
  }
}

void Engine::run() {
  while (!queue_.empty()) {
    dispatch_one();
    rethrow_pending();
  }
}

bool Engine::run_until(Seconds t) {
  while (!queue_.empty() && queue_.top().t <= t) {
    dispatch_one();
    rethrow_pending();
  }
  if (queue_.empty()) return true;
  now_ = t;
  return false;
}

}  // namespace pfsc::sim
