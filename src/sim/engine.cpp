#include "sim/engine.hpp"

#include "sim/task.hpp"
#include "trace/recorder.hpp"

namespace pfsc::sim {

Engine::Engine(EventQueuePolicy policy)
    : prev_arena_(FrameArena::exchange_current(&arena_)),
      queue_(make_event_queue(policy)) {
  live_roots_.reserve(64);
}

Engine::~Engine() {
  // Destroy unfinished root frames. Outstanding Task handles to these frames
  // must already have been dropped (documented engine-outlives-tasks rule).
  for (auto h : live_roots_) {
    if (h) h.destroy();
  }
  live_roots_.clear();
  FrameArena::exchange_current(prev_arena_);
}

WakeToken Engine::schedule(std::coroutine_handle<> h, Seconds t) {
  PFSC_ASSERT(h && !h.done());
  PFSC_ASSERT(t >= now_);
  const std::uint64_t seq = ++seq_;  // 1-based: token 0 stays null
  queue_->push(ScheduledEvent{t, seq, h});
  ++pending_;
  return WakeToken{seq};
}

void Engine::spawn(Task task) {
  PFSC_REQUIRE(task.valid(), "Engine::spawn: invalid task");
  auto h = task.handle();
  PFSC_REQUIRE(!h.promise().spawned(), "Engine::spawn: task already spawned");
  h.promise().bind(*this, live_roots_.size());
  live_roots_.push_back(h);
  schedule(h, now_);
}

void Engine::note_root_done(std::size_t live_index) {
  PFSC_ASSERT(live_index < live_roots_.size());
  // Swap-remove; re-index the promise that moved into the vacated slot.
  const std::size_t last = live_roots_.size() - 1;
  if (live_index != last) {
    live_roots_[live_index] = live_roots_[last];
    auto moved = std::coroutine_handle<TaskPromise>::from_address(
        live_roots_[live_index].address());
    moved.promise().set_live_index(live_index);
  }
  live_roots_.pop_back();
}

void Engine::dispatch_one() {
  const ScheduledEvent ev = queue_->pop();
  --pending_;
  if (!cancelled_.empty() && cancelled_.erase(ev.seq) > 0) {
    // Lazily-skipped cancellation: neither time nor the event count moves,
    // so cancelling is invisible to everything still scheduled.
    return;
  }
  PFSC_ASSERT(ev.t >= now_);
  now_ = ev.t;
  ++executed_;
  if (recorder_ != nullptr) trace_dispatch();
  ev.h.resume();
}

const ScheduledEvent* Engine::drain_cancelled_front() {
  const ScheduledEvent* top = queue_->peek();
  while (top != nullptr && !cancelled_.empty() &&
         cancelled_.erase(top->seq) > 0) {
    queue_->pop();
    --pending_;
    top = queue_->peek();
  }
  return top;
}

/// Roll the engine's batched dispatch span: every engine_sample_every()
/// dispatches, close the open span (arg0 = dispatches it covered) and open
/// the next. A batch span therefore covers real simulated time — event
/// density per track row — instead of a zero-duration blip per event.
void Engine::trace_dispatch() {
  auto* rec = recorder_;
  if (!rec->enabled(trace::Cat::engine)) return;
  if (trace_batch_open_ && ++trace_in_batch_ < rec->engine_sample_every()) {
    return;
  }
  const trace::TrackId track = rec->track("engine");
  if (trace_batch_open_) {
    rec->end(trace::Cat::engine, track, "dispatch", now_, 0,
             static_cast<std::int64_t>(trace_in_batch_));
  }
  rec->begin(trace::Cat::engine, track, "dispatch", now_, 0,
             static_cast<std::int64_t>(executed_));
  trace_batch_open_ = true;
  trace_in_batch_ = 0;
}

void Engine::rethrow_pending() {
  if (pending_exception_) {
    auto e = std::exchange(pending_exception_, nullptr);
    std::rethrow_exception(e);
  }
}

void Engine::run() {
  while (pending_ != 0) {
    dispatch_one();
    rethrow_pending();
  }
}

bool Engine::run_until(Seconds t) {
  for (;;) {
    // Cancelled tombstones are not pending work: drain them first so an
    // engine left with nothing but a stopped sampler's wakeup reports
    // "drained" instead of fast-forwarding the clock to t.
    const ScheduledEvent* top = drain_cancelled_front();
    if (top == nullptr) return true;
    if (top->t > t) {
      now_ = t;
      return false;
    }
    dispatch_one();
    rethrow_pending();
  }
}

}  // namespace pfsc::sim
