#include "sim/engine.hpp"

#include <limits>

#include "sim/task.hpp"
#include "trace/recorder.hpp"

namespace pfsc::sim {

Engine::Engine(EventQueuePolicy policy)
    : prev_arena_(FrameArena::exchange_current(&arena_)),
      queue_(make_event_queue(policy)) {
  live_roots_.reserve(64);
}

Engine::~Engine() {
  // Destroy unfinished root frames. Outstanding Task handles to these frames
  // must already have been dropped (documented engine-outlives-tasks rule).
  for (auto h : live_roots_) {
    if (h) h.destroy();
  }
  live_roots_.clear();
  FrameArena::exchange_current(prev_arena_);
}

WakeToken Engine::schedule(std::coroutine_handle<> h, Seconds t) {
  PFSC_ASSERT(h && !h.done());
  PFSC_ASSERT(t >= now_);
  const std::uint64_t seq = ++seq_;  // 1-based: token 0 stays null
  queue_->push(ScheduledEvent{t, now_, seq, h, /*src=*/0});
  ++pending_;
  return WakeToken{seq};
}

void Engine::schedule_message(std::coroutine_handle<> h, Seconds t, Seconds at,
                              std::uint32_t src, std::uint64_t seq) {
  PFSC_ASSERT(h && !h.done());
  PFSC_ASSERT(t >= now_);
  PFSC_ASSERT(src != 0);
  queue_->push(ScheduledEvent{t, at, seq, h, src});
  ++pending_;
}

void Engine::spawn_message(Task task, Seconds t, Seconds at, std::uint32_t src,
                           std::uint64_t seq) {
  PFSC_REQUIRE(task.valid(), "Engine::spawn_message: invalid task");
  auto h = task.handle();
  PFSC_REQUIRE(!h.promise().spawned(),
               "Engine::spawn_message: task already spawned");
  h.promise().bind(*this, live_roots_.size());
  live_roots_.push_back(h);
  schedule_message(h, t, at, src, seq);
}

void Engine::spawn(Task task) {
  PFSC_REQUIRE(task.valid(), "Engine::spawn: invalid task");
  auto h = task.handle();
  PFSC_REQUIRE(!h.promise().spawned(), "Engine::spawn: task already spawned");
  h.promise().bind(*this, live_roots_.size());
  live_roots_.push_back(h);
  schedule(h, now_);
}

void Engine::note_root_done(std::size_t live_index) {
  PFSC_ASSERT(live_index < live_roots_.size());
  // Swap-remove; re-index the promise that moved into the vacated slot.
  const std::size_t last = live_roots_.size() - 1;
  if (live_index != last) {
    live_roots_[live_index] = live_roots_[last];
    auto moved = std::coroutine_handle<TaskPromise>::from_address(
        live_roots_[live_index].address());
    moved.promise().set_live_index(live_index);
  }
  live_roots_.pop_back();
}

void Engine::dispatch_one() {
  const ScheduledEvent ev = queue_->pop();
  --pending_;
  // Only native wakeups can be cancelled; a delivered message's per-edge
  // seq may numerically collide with a cancelled native token, so the
  // tombstone set is consulted for src == 0 entries only.
  if (ev.src == 0 && !cancelled_.empty() && cancelled_.erase(ev.seq) > 0) {
    // Lazily-skipped cancellation: neither time nor the event count moves,
    // so cancelling is invisible to everything still scheduled.
    return;
  }
  PFSC_ASSERT(ev.t >= now_);
  now_ = ev.t;
  ++executed_;
  if (recorder_ != nullptr) trace_dispatch();
  ev.h.resume();
}

const ScheduledEvent* Engine::drain_cancelled_front() {
  const ScheduledEvent* top = queue_->peek();
  while (top != nullptr && top->src == 0 && !cancelled_.empty() &&
         cancelled_.erase(top->seq) > 0) {
    queue_->pop();
    --pending_;
    top = queue_->peek();
  }
  return top;
}

/// Roll the engine's batched dispatch span: every engine_sample_every()
/// dispatches, close the open span (arg0 = dispatches it covered) and open
/// the next. A batch span therefore covers real simulated time — event
/// density per track row — instead of a zero-duration blip per event.
void Engine::trace_dispatch() {
  auto* rec = recorder_;
  if (!rec->enabled(trace::Cat::engine)) return;
  if (trace_batch_open_ && ++trace_in_batch_ < rec->engine_sample_every()) {
    return;
  }
  const trace::TrackId track = rec->track(trace_track_name_);
  if (trace_batch_open_) {
    rec->end(trace::Cat::engine, track, "dispatch", now_, 0,
             static_cast<std::int64_t>(trace_in_batch_));
  }
  rec->begin(trace::Cat::engine, track, "dispatch", now_, 0,
             static_cast<std::int64_t>(executed_));
  trace_batch_open_ = true;
  trace_in_batch_ = 0;
}

void Engine::rethrow_pending() {
  if (pending_exception_) {
    auto e = std::exchange(pending_exception_, nullptr);
    std::rethrow_exception(e);
  }
}

void Engine::run() {
  while (pending_ != 0) {
    dispatch_one();
    rethrow_pending();
  }
}

bool Engine::run_until(Seconds t) {
  for (;;) {
    // Cancelled tombstones are not pending work: drain them first so an
    // engine left with nothing but a stopped sampler's wakeup reports
    // "drained" instead of fast-forwarding the clock to t.
    const ScheduledEvent* top = drain_cancelled_front();
    if (top == nullptr) return true;
    if (top->t > t) {
      now_ = t;
      return false;
    }
    dispatch_one();
    rethrow_pending();
  }
}

Seconds Engine::next_event_time() {
  const ScheduledEvent* top = drain_cancelled_front();
  return top == nullptr ? std::numeric_limits<double>::infinity() : top->t;
}

bool Engine::run_window(Seconds end) {
  for (;;) {
    const ScheduledEvent* top = drain_cancelled_front();
    if (top == nullptr) return true;
    // Strictly-before: an event at exactly `end` may still be preceded by
    // a message delivery at `end` arriving in a later window, so it stays
    // queued. now() deliberately does not advance to `end` — it tracks
    // the last dispatched event, keeping schedule()'s `at` stamps equal to
    // what the single-engine run would have produced.
    if (top->t >= end) return false;
    dispatch_one();
    rethrow_pending();
  }
}

}  // namespace pfsc::sim
