// Per-edge mailboxes for sharded runs (sim/domain.hpp).
//
// A Mailbox is the message channel for ONE directed domain edge
// (src -> dst). It is double-buffered: each round of the single-barrier
// protocol posts into the buffer selected by the source's round parity
// while the destination drains the buffer the source filled one round
// earlier. The two sides therefore touch *different* vectors whenever they
// run concurrently, and ownership of each buffer alternates only across
// the round barrier:
//
//   round k   source appends to buffer[k & 1]        (run phase)
//   round k+1 destination drains buffer[k & 1]       (merge phase)
//   round k+2 source reuses buffer[k & 1]            (run phase)
//
// Every hand-off above crosses exactly one barrier, whose release/acquire
// ordering makes the appends visible to the drain and the drain's clear()
// visible to the reuse — no locks, no per-message atomics. TSan agrees.
//
// Messages carry the full determinism key of the send: `sent_at` (the
// sender's clock) plus the per-edge `seq` the mailbox assigns in post
// order (continuous across buffers). The destination engine turns them
// into (deliver_t, sent_at, 1 + src, seq) queue entries — see
// ScheduledEvent in event_queue.hpp for why that reproduces the
// single-engine dispatch order.
#pragma once

#include <coroutine>
#include <cstdint>
#include <vector>

#include "support/units.hpp"

namespace pfsc::sim {

/// One cross-domain message. The payload fields are owned by the layer
/// speaking the protocol (lustre::FileSystem for the RPC round trip); the
/// sim layer only defines the timing/identity header.
struct Message {
  // -- header (filled by Mailbox::post / ShardSet) -----------------------
  Seconds deliver_t = 0.0;  ///< delivery time: sent_at + lookahead
  Seconds sent_at = 0.0;    ///< sender's clock at the send
  std::uint64_t seq = 0;    ///< per-edge post order, assigned by post()

  // -- payload (protocol-defined) ----------------------------------------
  std::uint8_t kind = 0;           ///< protocol opcode
  std::coroutine_handle<> resume;  ///< a suspended frame riding the message
  std::uint64_t a = 0;             ///< protocol words (object id, offset...)
  std::uint64_t b = 0;
  std::uint64_t c = 0;
  std::uint32_t u = 0;
  std::uint32_t v = 0;
  bool flag = false;
};

/// The double-buffered message channel for one directed domain edge. See
/// the file header for the parity protocol that keeps it lock-free.
class Mailbox {
 public:
  /// Append to the buffer for round parity `parity` (run phase, source
  /// domain only). Assigns the per-edge seq; 1-based like the engine's
  /// native counter, and continuous across the two buffers so delivery
  /// keys are independent of the round a message happened to travel in.
  void post(Message m, std::uint32_t parity) {
    m.seq = ++next_seq_;
    buf_[parity & 1].push_back(m);
  }

  /// The batch posted under round parity `parity` (merge phase,
  /// destination domain only — one round after the source filled it).
  std::vector<Message>& buffer(std::uint32_t parity) {
    return buf_[parity & 1];
  }

  /// Messages posted over the edge's lifetime (diagnostics).
  std::uint64_t posted() const { return next_seq_; }

 private:
  std::vector<Message> buf_[2];
  std::uint64_t next_seq_ = 0;
};

}  // namespace pfsc::sim
