// Per-edge mailboxes for sharded runs (sim/domain.hpp).
//
// A Mailbox is the message channel for ONE directed domain edge
// (src -> dst). The window-barrier protocol makes it single-writer,
// single-reader, and *temporally disjoint*: the source domain appends
// during its run phase, both sides pass a barrier, and the destination
// domain drains during its merge phase — producer and consumer never touch
// the vector concurrently, so a plain std::vector with no locks (and no
// atomics beyond the barrier itself) is race-free. TSan agrees: every
// append happens-before the barrier's release, every drain happens-after
// its acquire.
//
// Messages carry the full determinism key of the send: `sent_at` (the
// sender's clock) plus the per-edge `seq` the mailbox assigns in post
// order. The destination engine turns them into (deliver_t, sent_at,
// 1 + src, seq) queue entries — see ScheduledEvent in event_queue.hpp for
// why that reproduces the single-engine dispatch order.
#pragma once

#include <coroutine>
#include <cstdint>
#include <vector>

#include "support/units.hpp"

namespace pfsc::sim {

/// One cross-domain message. The payload fields are owned by the layer
/// speaking the protocol (lustre::FileSystem for the RPC round trip); the
/// sim layer only defines the timing/identity header.
struct Message {
  // -- header (filled by Mailbox::post / ShardSet) -----------------------
  Seconds deliver_t = 0.0;  ///< delivery time: sent_at + lookahead
  Seconds sent_at = 0.0;    ///< sender's clock at the send
  std::uint64_t seq = 0;    ///< per-edge post order, assigned by post()

  // -- payload (protocol-defined) ----------------------------------------
  std::uint8_t kind = 0;           ///< protocol opcode
  std::coroutine_handle<> resume;  ///< a suspended frame riding the message
  std::uint64_t a = 0;             ///< protocol words (object id, offset...)
  std::uint64_t b = 0;
  std::uint64_t c = 0;
  std::uint32_t u = 0;
  std::uint32_t v = 0;
  bool flag = false;
};

/// The message channel for one directed domain edge. See the file header
/// for the single-writer/single-reader protocol that keeps it lock-free.
class Mailbox {
 public:
  /// Append (run phase, source domain only). Assigns the per-edge seq;
  /// 1-based like the engine's native counter.
  void post(Message m) {
    m.seq = ++next_seq_;
    pending_.push_back(m);
  }

  /// The batch to drain (merge phase, destination domain only).
  std::vector<Message>& pending() { return pending_; }

  /// Messages posted over the edge's lifetime (diagnostics).
  std::uint64_t posted() const { return next_seq_; }

 private:
  std::vector<Message> pending_;
  std::uint64_t next_seq_ = 0;
};

}  // namespace pfsc::sim
