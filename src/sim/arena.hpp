// Size-bucketed free-list arena for coroutine frames.
//
// Steady-state RPC churn (client write -> sched admit -> link flow -> disk
// service) creates and destroys one short-lived coroutine frame per step;
// by default each of those is a malloc/free pair. A FrameArena recycles
// freed frames through per-size-class free lists instead: the first wave
// of frames is carved from the system allocator, every later wave pops a
// node off a free list in O(1) with no lock, no syscall and warm cache
// lines.
//
// Wiring: sim::Engine owns one FrameArena and installs it as the calling
// thread's current arena for its own lifetime (engines are single-threaded;
// the ParallelRunner gives each repetition its own engine on its own
// thread). TaskPromise and CoPromise allocate frames through FramePooled,
// which consults the current arena and records the owning arena in a header
// ahead of the frame — frees always return to the arena that allocated,
// even if a different engine has since become current. Frames allocated
// with no engine alive fall back to the global allocator (null header).
//
// Lifetime rule (same as the engine's): frames must not outlive the engine
// whose arena carved them. Engine teardown destroys unfinished roots
// before the arena, and the arena asserts that nothing is still
// outstanding when it dies.
#pragma once

#include <cstddef>
#include <cstdint>
#include <new>

#include "support/error.hpp"

namespace pfsc::sim {

class FrameArena {
 public:
  FrameArena() = default;
  FrameArena(const FrameArena&) = delete;
  FrameArena& operator=(const FrameArena&) = delete;
  ~FrameArena();

  /// Make `arena` the calling thread's current arena (nullptr allowed);
  /// returns the previous one so callers can restore it (Engine does).
  static FrameArena* exchange_current(FrameArena* arena);
  static FrameArena* current();

  /// Allocate a frame of `bytes` through the thread's current arena (or
  /// the global allocator when none is installed / the size is huge).
  static void* allocate_frame(std::size_t bytes);
  /// Return a frame to whichever arena allocated it.
  static void deallocate_frame(void* frame) noexcept;

  // -- statistics (microbenchmarks + reuse tests) ------------------------
  /// Frames carved fresh from the system allocator.
  std::uint64_t fresh_allocations() const { return fresh_; }
  /// Frames recycled from a free list.
  std::uint64_t reused_allocations() const { return reused_; }
  /// Frames currently live (allocated, not yet freed).
  std::uint64_t outstanding() const { return outstanding_; }

 private:
  // Size classes: 64-byte steps up to 4 KiB. Typical Task/Co frames in
  // this codebase run 100-500 bytes; anything larger than the last class
  // bypasses the arena entirely (null-arena header).
  static constexpr std::size_t kGranularity = 64;
  static constexpr std::size_t kClasses = 64;

  struct Header;

  void* bucket_alloc(std::size_t size_class);
  void bucket_free(Header* header) noexcept;

  void* free_lists_[kClasses] = {};
  std::uint64_t fresh_ = 0;
  std::uint64_t reused_ = 0;
  std::uint64_t outstanding_ = 0;
};

/// Mixin providing pooled frame allocation; inherited by the coroutine
/// promise types (the compiler routes frame new/delete through the
/// promise's operators).
struct FramePooled {
  static void* operator new(std::size_t bytes) {
    return FrameArena::allocate_frame(bytes);
  }
  static void operator delete(void* frame) noexcept {
    FrameArena::deallocate_frame(frame);
  }
  static void operator delete(void* frame, std::size_t) noexcept {
    FrameArena::deallocate_frame(frame);
  }
};

}  // namespace pfsc::sim
