// Sharded multi-domain simulation: N engines, N threads, one clock.
//
// A ShardSet partitions one simulation across `domains` sim::Engine
// instances, each dispatching on its own worker thread. Cross-domain
// interactions travel as timestamped messages through per-edge
// double-buffered mailboxes (mailbox.hpp) and are synchronised by
// conservative lookahead: with L the minimum cross-domain latency (the RPC
// link latency in the Lustre model), a message sent at time u is delivered
// at u + L. Each synchronisation round costs ONE barrier, and every domain
// gets its own window end (DESIGN.md §12 spells out the proof):
//
//   round k:  every domain merges the messages its peers posted in round
//             k-1 (only the nonempty edges — the barrier published the
//             list), then dispatches events with t < W_d, posting outbound
//             messages into the round-k mailbox buffers      (run phase)
//             every domain publishes its next-event time and, per posted
//             edge, the earliest delivery time; all arrive   (the barrier)
//             the last arriver folds those into effective next-event
//             times E[s] and per-domain windows
//                 W_d = min( min over s != d of E[s] + L,  E[d] + 2L )
//             for round k+1                                  (reduction)
//
// The first term is the classic conservative bound — no peer can send
// before its own next dispatch, so nothing can reach d before
// min E[s] + L. Excluding d's own E from that reduction is what lets the
// domain holding the global minimum run ahead instead of being clipped by
// itself. The second term caps the feedback loop d can start this round:
// a message d sends at u >= E[d] can bounce off a peer and return no
// earlier than u + 2L, so W_d may not outrun E[d] + 2L. Both windows are
// exclusive, which keeps the at-exactly-W event ordered after any message
// delivered at W.
//
// One barrier per round is sound because mailboxes are double-buffered:
// round k's posts and round k+1's drains of the same edge land in the same
// buffer but on opposite sides of the round-k barrier, while the
// concurrently-running posts of round k+1 go to the other buffer. The
// barrier's release/acquire ordering is the only synchronisation the
// mailbox data needs.
//
// The barrier itself is hybrid spin-then-park (HybridBarrier below):
// peers normally arrive within the spin budget, but when domains outnumber
// cores — rep-threads x domain-threads sweeps, or a laptop running an
// 8-domain scenario — spinning would just burn the quantum the peer needs,
// so waiters park on std::atomic::wait and the last arriver wakes them.
// BM_ShardedOversubscribed gates the degradation.
//
// Determinism: deliveries enter the destination queue with the full
// (deliver_t, sent_at, 1 + src_domain, edge_seq) key — see ScheduledEvent
// — so the dispatch order, and therefore every golden, is bit-for-bit
// identical to the single-engine run at any domain count. The golden and
// property tests pin this at 1/2/3/8 domains.
//
// Threading: domain 0 runs on the caller's thread, domains 1..N-1 on
// std::threads spawned by run(). All mailbox, window and outbox-summary
// state is accessed in temporally disjoint phases separated by the round
// barrier (the reduction runs exclusively inside it), whose
// acquire/release atomics provide the happens-before edges — no mutexes
// anywhere on the hot path (the TSan CI job runs the sharded determinism
// and barrier tests to keep it that way).
#pragma once

#include <atomic>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <vector>

#include "sim/engine.hpp"
#include "sim/mailbox.hpp"
#include "support/units.hpp"

namespace pfsc::sim {

/// Sense-reversing centralised barrier, hybrid spin-then-park. Each
/// participant keeps its own `sense` flag (flipped per crossing); the last
/// arriver may run a completion hook while every peer is still waiting,
/// which is how the ShardSet folds the window reduction into the barrier
/// instead of paying a second rendezvous per round.
///
/// Waiters spin for `spin_budget` iterations (the fast path when every
/// party has a core and rounds are microseconds apart), then park on
/// std::atomic::wait until the last arriver's notify_all. The notify is
/// skipped when nobody parked — both sides use seq_cst for the
/// flag-then-check handshake, and atomic::wait re-checks the value before
/// sleeping, so the wake cannot be lost.
class HybridBarrier {
 public:
  /// Default spin budget: windows are typically tens of microseconds of
  /// work, so peers normally arrive within a few thousand spins. Callers
  /// that KNOW they are oversubscribed should pass something tiny — the
  /// core a spinner burns is the core its peer needs.
  static constexpr std::uint32_t kDefaultSpinBudget = 4096;

  explicit HybridBarrier(std::uint32_t parties,
                         std::uint32_t spin_budget = kDefaultSpinBudget)
      : parties_(parties), spin_budget_(spin_budget) {}
  HybridBarrier(const HybridBarrier&) = delete;
  HybridBarrier& operator=(const HybridBarrier&) = delete;

  template <typename OnLast>
  void arrive_and_wait(bool& sense, OnLast&& on_last) {
    const bool next = !sense;
    sense = next;
    // acq_rel: the add releases this thread's phase writes to the last
    // arriver and (for the last arriver) acquires every peer's.
    if (count_.fetch_add(1, std::memory_order_acq_rel) + 1 == parties_) {
      on_last();  // runs exclusively: all peers are spinning or parked
      count_.store(0, std::memory_order_relaxed);
      // seq_cst store + seq_cst waiter-count load pair with the waiter's
      // seq_cst registration + re-check: either the waiter sees the new
      // sense and never sleeps, or the notifier sees the waiter and wakes
      // it. (A plain release store could let both loads read stale values.)
      sense_.store(next, std::memory_order_seq_cst);
      if (waiters_.load(std::memory_order_seq_cst) != 0) {
        sense_.notify_all();
      }
    } else {
      wait_for(next);
    }
  }

  void arrive_and_wait(bool& sense) {
    arrive_and_wait(sense, [] {});
  }

  std::uint32_t spin_budget() const { return spin_budget_; }
  /// Crossings on which this thread's wait gave up spinning and parked
  /// (diagnostics; relaxed counter, read it only at quiescence).
  std::uint64_t parks() const { return parks_.load(std::memory_order_relaxed); }

 private:
  void wait_for(bool next);

  const std::uint32_t parties_;
  const std::uint32_t spin_budget_;
  std::atomic<std::uint32_t> count_{0};
  std::atomic<std::uint32_t> waiters_{0};
  std::atomic<bool> sense_{false};
  std::atomic<std::uint64_t> parks_{0};
};

/// The engines, mailboxes and window-barrier loop of one sharded run. See
/// the file header for the protocol; lustre::FileSystem is the layer that
/// decides the partition and speaks the message protocol over it.
class ShardSet {
 public:
  /// Called during the destination's merge phase for every delivered
  /// message; must schedule it into `eng` via schedule_message /
  /// spawn_message using the message's (deliver_t, sent_at, seq) and the
  /// source domain index.
  using Handler =
      std::function<void(Engine& eng, std::uint32_t src, const Message& m)>;

  /// `lookahead` must be positive: it is both the delivery latency and the
  /// window width, and a zero-width window could never retire an event.
  ShardSet(std::size_t domains, Seconds lookahead, EventQueuePolicy policy);
  ShardSet(const ShardSet&) = delete;
  ShardSet& operator=(const ShardSet&) = delete;
  ~ShardSet();

  std::size_t domains() const { return engines_.size(); }
  Engine& domain(std::size_t d) { return *engines_[d]; }
  Seconds lookahead() const { return lookahead_; }

  /// Install domain `dst`'s delivery handler (required before run() for
  /// every domain that ever receives a message).
  void set_handler(std::size_t dst, Handler h);

  /// Post `m` from `src` to `dst` during src's run phase. Fills in
  /// deliver_t = m.sent_at + lookahead and the per-edge seq, stamps the
  /// edge into src's round outbox summary (the O(active) fan-in list the
  /// reduction reads); the caller sets sent_at to its engine's now() and
  /// the payload fields.
  void post(std::uint32_t src, std::uint32_t dst, Message m);

  /// Run every domain to completion (all queues drained, all mailboxes
  /// empty). Rethrows the first failure after every worker has parked.
  void run();

  // -- diagnostics --------------------------------------------------------
  /// Synchronisation rounds executed by run().
  std::uint64_t windows() const { return windows_; }
  /// Messages delivered across all edges.
  std::uint64_t messages_delivered() const;
  /// Barrier crossings on which some waiter parked instead of spinning
  /// through (0 on a machine with a core per domain and short rounds).
  std::uint64_t barrier_parks() const { return barrier_.parks(); }

 private:
  /// One source domain's round-local outbox state. Written by the source
  /// thread during its run phase (via post) and consumed/reset by the
  /// reduction inside the barrier — temporally disjoint, so no atomics.
  /// Padded: each entry is written by a different thread every round.
  struct alignas(64) Outbox {
    std::uint32_t parity = 0;  ///< mailbox buffer posts go to this round
    std::uint64_t round = 1;   ///< current round stamp (last_post epoch)
    /// Edges posted to this round, in first-post order, with the edge's
    /// earliest delivery time (= the first post's, since the sender's
    /// clock is nondecreasing within a run phase).
    std::vector<std::pair<std::uint32_t, Seconds>> active;
    std::vector<std::uint64_t> last_post;  ///< [dst] round of last post
  };

  Mailbox& edge(std::size_t src, std::size_t dst) {
    return edges_[src * engines_.size() + dst];
  }
  void worker_loop(std::size_t d);
  /// Barrier completion hook: fold every outbox summary into effective
  /// next-event times, per-destination inbound-edge lists and per-domain
  /// window ends; runs exclusively while every domain waits.
  void reduce();
  void note_failure() noexcept;

  const Seconds lookahead_;
  std::vector<std::unique_ptr<Engine>> engines_;
  std::vector<Mailbox> edges_;  // [src * domains + dst]
  std::vector<Handler> handlers_;
  std::vector<std::uint64_t> delivered_;  // per destination domain

  HybridBarrier barrier_;
  std::vector<Outbox> outboxes_;  // per source, reset by reduce()
  std::vector<Seconds> next_t_;   // published before the barrier
  // Written by reduce(), read by the owning domain after the barrier:
  std::vector<Seconds> window_end_;                 // per-domain W_d
  std::vector<Seconds> eff_next_;                   // reduction scratch
  std::vector<std::vector<std::uint32_t>> in_edges_;  // nonempty inbound srcs
  bool done_ = false;
  std::uint64_t windows_ = 0;

  std::atomic<bool> failed_{false};
  std::exception_ptr first_error_;  // guarded by failed_ + barrier ordering
  std::atomic<bool> error_claimed_{false};
};

/// Resolve a requested --sim_domains value: 0 means auto (one domain per
/// hardware thread), anything else is taken literally; both are clamped to
/// [1, 1 + shards] since more domains than OSS shards plus the client
/// domain cannot be populated.
std::size_t resolve_domains(std::uint32_t requested, std::uint32_t shards);

/// std::thread::hardware_concurrency() resolved once per process (it is a
/// syscall on some platforms, and the runner consults it per run).
unsigned hardware_threads();

}  // namespace pfsc::sim
