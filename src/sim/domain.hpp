// Sharded multi-domain simulation: N engines, N threads, one clock.
//
// A ShardSet partitions one simulation across `domains` sim::Engine
// instances, each dispatching on its own worker thread. Cross-domain
// interactions travel as timestamped messages through per-edge mailboxes
// (mailbox.hpp) and are synchronised by conservative lookahead: with L the
// minimum cross-domain latency (the RPC link latency in the Lustre model),
// a message sent at time u is delivered at u + L, so after a global
// barrier at time T every domain may safely dispatch the half-open window
// [T, T + L) — no message produced inside the window can be delivered
// before T + L. That exclusive window end is the entire correctness
// argument (DESIGN.md §12 spells it out):
//
//   round k:  T = min over domains of next-event time   (barrier 1)
//             every domain dispatches events with t < T + L, appending
//             outbound messages to its edges' mailboxes  (run phase)
//             all domains arrive                         (barrier 2)
//             every domain drains its inbound edges into its queue
//             (merge phase of round k+1)
//
// The barrier doubles as the null-message credit of classic conservative
// PDES: publishing a domain's next-event time is exactly the "I promise
// nothing before T" null message, collapsed to one min-reduction because
// every edge shares the same lookahead L.
//
// Determinism: deliveries enter the destination queue with the full
// (deliver_t, sent_at, 1 + src_domain, edge_seq) key — see ScheduledEvent
// — so the dispatch order, and therefore every golden, is bit-for-bit
// identical to the single-engine run at any domain count. The golden and
// property tests pin this at 1/2/8 domains.
//
// Threading: domain 0 runs on the caller's thread, domains 1..N-1 on
// std::threads spawned by run(). All mailbox and next-event state is
// accessed in temporally disjoint phases separated by the two barriers,
// whose acquire/release atomics provide the happens-before edges — no
// mutexes anywhere on the hot path (the TSan CI job runs the sharded
// determinism tests to keep it that way).
#pragma once

#include <atomic>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <vector>

#include "sim/engine.hpp"
#include "sim/mailbox.hpp"
#include "support/units.hpp"

namespace pfsc::sim {

/// Sense-reversing centralised spin barrier. Each participant keeps its
/// own `sense` flag (flipped per crossing); the last arriver may run a
/// completion hook while every peer is still spinning, which is how the
/// ShardSet folds the min-reduction into barrier 1 instead of paying a
/// third rendezvous per round.
class SpinBarrier {
 public:
  explicit SpinBarrier(std::uint32_t parties) : parties_(parties) {}
  SpinBarrier(const SpinBarrier&) = delete;
  SpinBarrier& operator=(const SpinBarrier&) = delete;

  template <typename OnLast>
  void arrive_and_wait(bool& sense, OnLast&& on_last) {
    const bool next = !sense;
    sense = next;
    // acq_rel: the add releases this thread's phase writes to the last
    // arriver and (for the last arriver) acquires every peer's.
    if (count_.fetch_add(1, std::memory_order_acq_rel) + 1 == parties_) {
      on_last();  // runs exclusively: all peers are spinning on sense_
      count_.store(0, std::memory_order_relaxed);
      sense_.store(next, std::memory_order_release);
    } else {
      spin_until(next);
    }
  }

  void arrive_and_wait(bool& sense) {
    arrive_and_wait(sense, [] {});
  }

 private:
  void spin_until(bool next);

  const std::uint32_t parties_;
  std::atomic<std::uint32_t> count_{0};
  std::atomic<bool> sense_{false};
};

/// The engines, mailboxes and window-barrier loop of one sharded run. See
/// the file header for the protocol; lustre::FileSystem is the layer that
/// decides the partition and speaks the message protocol over it.
class ShardSet {
 public:
  /// Called during the destination's merge phase for every delivered
  /// message; must schedule it into `eng` via schedule_message /
  /// spawn_message using the message's (deliver_t, sent_at, seq) and the
  /// source domain index.
  using Handler =
      std::function<void(Engine& eng, std::uint32_t src, const Message& m)>;

  /// `lookahead` must be positive: it is both the delivery latency and the
  /// window width, and a zero-width window could never retire an event.
  ShardSet(std::size_t domains, Seconds lookahead, EventQueuePolicy policy);
  ShardSet(const ShardSet&) = delete;
  ShardSet& operator=(const ShardSet&) = delete;
  ~ShardSet();

  std::size_t domains() const { return engines_.size(); }
  Engine& domain(std::size_t d) { return *engines_[d]; }
  Seconds lookahead() const { return lookahead_; }

  /// Install domain `dst`'s delivery handler (required before run() for
  /// every domain that ever receives a message).
  void set_handler(std::size_t dst, Handler h);

  /// Post `m` from `src` to `dst` during src's run phase. Fills in
  /// deliver_t = m.sent_at + lookahead and the per-edge seq; the caller
  /// sets sent_at to its engine's now() and the payload fields.
  void post(std::uint32_t src, std::uint32_t dst, Message m);

  /// Run every domain to completion (all queues drained, all mailboxes
  /// empty). Rethrows the first failure after every worker has parked.
  void run();

  // -- diagnostics --------------------------------------------------------
  /// Synchronisation rounds executed by run().
  std::uint64_t windows() const { return windows_; }
  /// Messages delivered across all edges.
  std::uint64_t messages_delivered() const;

 private:
  Mailbox& edge(std::size_t src, std::size_t dst) {
    return edges_[src * engines_.size() + dst];
  }
  void worker_loop(std::size_t d);
  /// Barrier-1 completion hook: min-reduce next-event times into the next
  /// window end; runs exclusively while every domain spins.
  void reduce();
  void note_failure() noexcept;

  const Seconds lookahead_;
  std::vector<std::unique_ptr<Engine>> engines_;
  std::vector<Mailbox> edges_;  // [src * domains + dst]
  std::vector<Handler> handlers_;
  std::vector<std::uint64_t> delivered_;  // per destination domain

  SpinBarrier barrier_;
  std::vector<Seconds> next_t_;  // published before barrier 1
  Seconds window_end_ = 0.0;     // written by reduce(), read after barrier 1
  bool done_ = false;            // likewise
  std::uint64_t windows_ = 0;

  std::atomic<bool> failed_{false};
  std::exception_ptr first_error_;  // guarded by failed_ + barrier ordering
  std::atomic<bool> error_claimed_{false};
};

/// Resolve a requested --sim_domains value: 0 means auto (one domain per
/// hardware thread), anything else is taken literally; both are clamped to
/// [1, 1 + shards] since more domains than OSS shards plus the client
/// domain cannot be populated.
std::size_t resolve_domains(std::uint32_t requested, std::uint32_t shards);

/// std::thread::hardware_concurrency() resolved once per process (it is a
/// syscall on some platforms, and the runner consults it per run).
unsigned hardware_threads();

}  // namespace pfsc::sim
