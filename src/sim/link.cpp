#include "sim/link.hpp"

#include <algorithm>

namespace pfsc::sim {

namespace {

/// A nanosecond of simulated slack: a flow whose remaining service time
/// falls below this completes in the current batch. Far below the
/// microsecond-scale latencies being modelled, but comfortably above the
/// floating-point error the virtual clock can accumulate — without it a
/// wake-up could land an ulp early and re-arm a zero-length timer forever.
constexpr Seconds kSlackEps = 1e-9;

}  // namespace

std::uint64_t LinkModel::trace_flow_begin(Bytes bytes) {
  auto* rec = eng_->recorder();
  if (rec == nullptr || !rec->enabled(trace::Cat::link)) return 0;
  const trace::TrackId track = track_.get(*rec, trace_label_);
  const std::uint64_t id = rec->next_id();
  const Seconds now = eng_->now();
  rec->begin(trace::Cat::link, track, "flow", now, id,
             static_cast<std::int64_t>(bytes));
  // Counters are sampled at the transition; the arriving flow has not yet
  // joined the model's books, so this reads one low for an instant.
  rec->counter(trace::Cat::link, track, "flows", now,
               static_cast<double>(active_flows()));
  return id;
}

void LinkModel::trace_flow_end(std::uint64_t id) {
  if (id == 0) return;
  auto* rec = eng_->recorder();
  if (rec == nullptr || !rec->enabled(trace::Cat::link)) return;
  const trace::TrackId track = track_.get(*rec, trace_label_);
  const Seconds now = eng_->now();
  rec->end(trace::Cat::link, track, "flow", now, id);
  rec->counter(trace::Cat::link, track, "flows", now,
               static_cast<double>(active_flows()));
  rec->counter(trace::Cat::link, track, "flow_mbps", now,
               to_mbps(flow_rate()));
}

const char* link_policy_name(LinkPolicy policy) {
  switch (policy) {
    case LinkPolicy::fifo: return "fifo";
    case LinkPolicy::fair_share: return "fair_share";
  }
  return "?";
}

Co<void> FifoPipe::transfer(Bytes bytes) {
  const std::uint64_t flow = trace_flow_begin(bytes);
  co_await slots_.acquire();
  const Seconds service = latency_ + static_cast<double>(bytes) / rate_;
  busy_time_ += service;
  bytes_moved_ += bytes;
  ++transfers_;
  co_await eng_->delay(service);
  slots_.release();
  trace_flow_end(flow);
}

// ---------------------------------------------------------------------------
// FairSharePipe
// ---------------------------------------------------------------------------

/// Suspends the transferring coroutine and registers it as an in-flight
/// flow; FairSharePipe::complete_due resumes it at the flow's finish time.
struct FairShareAwaiter {
  FairSharePipe& pipe;
  Bytes bytes;
  bool await_ready() const noexcept { return false; }
  void await_suspend(std::coroutine_handle<> h) {
    pipe.advance_clock();
    FairSharePipe::Flow flow;
    flow.finish_v = pipe.vtime_ + static_cast<double>(bytes) / pipe.rate_;
    flow.id = pipe.next_flow_id_++;
    flow.waiter = h;
    pipe.join(std::move(flow));
  }
  void await_resume() const noexcept {}
};

Co<void> FairSharePipe::transfer(Bytes bytes) {
  const std::uint64_t flow = trace_flow_begin(bytes);
  if (latency_ > 0.0) co_await eng_->delay(latency_);
  co_await FairShareAwaiter{*this, bytes};
  bytes_moved_ += bytes;
  ++transfers_;
  trace_flow_end(flow);
}

/// Integrate the virtual clock (and the utilisation integral) up to now.
/// Must run before any change to the flow set.
void FairSharePipe::advance_clock() {
  const Seconds now = eng_->now();
  const std::size_t n = flows_.size();
  if (n > 0) {
    const Seconds dt = now - last_update_;
    vtime_ += dt * speed(n);
    const double c = static_cast<double>(channels_);
    busy_time_ += dt * std::min(static_cast<double>(n), c) / c;
  }
  last_update_ = now;
}

double FairSharePipe::utilisation() const {
  const Seconds t = eng_->now();
  if (t <= 0.0) return 0.0;
  Seconds busy = busy_time_;
  if (!flows_.empty()) {
    const double c = static_cast<double>(channels_);
    busy += (t - last_update_) *
            std::min(static_cast<double>(flows_.size()), c) / c;
  }
  return busy / t;
}

void FairSharePipe::join(Flow flow) {
  flows_.push(std::move(flow));
  arm();
}

/// Pop and resume every flow whose remaining service has vanished. Each
/// departure speeds up the survivors, so the per-iteration conversion from
/// virtual slack to real time uses the shrinking flow count.
void FairSharePipe::complete_due() {
  const Seconds now = eng_->now();
  while (!flows_.empty()) {
    const double remaining_v = flows_.top().finish_v - vtime_;
    const Seconds remaining_t = remaining_v / speed(flows_.size());
    if (remaining_t > kSlackEps) break;
    const Flow flow = flows_.top();
    flows_.pop();
    eng_->schedule(flow.waiter, now);
  }
}

/// (Re-)schedule the wake-up for the earliest completion. Timers cannot be
/// cancelled, so each re-arm bumps the generation and a superseded timer
/// no-ops when it fires.
void FairSharePipe::arm() {
  ++timer_generation_;
  if (flows_.empty()) return;
  const double remaining_v = flows_.top().finish_v - vtime_;
  const Seconds dt = std::max(0.0, remaining_v / speed(flows_.size()));
  eng_->spawn(wakeup(timer_generation_, dt));
}

Task FairSharePipe::wakeup(std::uint64_t generation, Seconds dt) {
  co_await eng_->delay(dt);
  if (generation != timer_generation_) co_return;  // superseded
  advance_clock();
  complete_due();
  arm();
}

std::unique_ptr<LinkModel> make_link(Engine& eng, LinkPolicy policy,
                                     BytesPerSecond rate,
                                     Seconds per_message_latency,
                                     std::size_t channels) {
  switch (policy) {
    case LinkPolicy::fifo:
      return std::make_unique<FifoPipe>(eng, rate, per_message_latency, channels);
    case LinkPolicy::fair_share:
      return std::make_unique<FairSharePipe>(eng, rate, per_message_latency,
                                             channels);
  }
  PFSC_REQUIRE(false, "make_link: unknown LinkPolicy");
  return nullptr;
}

}  // namespace pfsc::sim
