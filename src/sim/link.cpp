#include "sim/link.hpp"

#include <algorithm>
#include <utility>

namespace pfsc::sim {

namespace {

/// A nanosecond of simulated slack: a flow whose remaining service time
/// falls below this completes in the current batch. Far below the
/// microsecond-scale latencies being modelled, but comfortably above the
/// floating-point error the virtual clock can accumulate — without it a
/// wake-up could land an ulp early and re-arm a zero-length timer forever.
constexpr Seconds kSlackEps = 1e-9;

}  // namespace

std::uint64_t LinkModel::trace_flow_begin(Bytes bytes) {
  auto* rec = eng_->recorder();
  if (rec == nullptr || !rec->enabled(trace::Cat::link)) return 0;
  const trace::TrackId track = track_.get(*rec, trace_label_);
  const std::uint64_t id = rec->next_id();
  const Seconds now = eng_->now();
  rec->begin(trace::Cat::link, track, "flow", now, id,
             static_cast<std::int64_t>(bytes));
  // Counters are sampled at the transition; the arriving flow has not yet
  // joined the model's books, so this reads one low for an instant.
  rec->counter(trace::Cat::link, track, "flows", now,
               static_cast<double>(active_flows()));
  return id;
}

void LinkModel::trace_flow_end(std::uint64_t id) {
  if (id == 0) return;
  auto* rec = eng_->recorder();
  if (rec == nullptr || !rec->enabled(trace::Cat::link)) return;
  const trace::TrackId track = track_.get(*rec, trace_label_);
  const Seconds now = eng_->now();
  rec->end(trace::Cat::link, track, "flow", now, id);
  rec->counter(trace::Cat::link, track, "flows", now,
               static_cast<double>(active_flows()));
  rec->counter(trace::Cat::link, track, "flow_mbps", now,
               to_mbps(flow_rate()));
}

const char* link_policy_name(LinkPolicy policy) {
  switch (policy) {
    case LinkPolicy::fifo: return "fifo";
    case LinkPolicy::fair_share: return "fair_share";
  }
  return "?";
}

Co<void> FifoPipe::transfer(Bytes bytes) {
  const std::uint64_t flow = trace_flow_begin(bytes);
  co_await slots_.acquire();
  const Seconds service = latency_ + static_cast<double>(bytes) / rate_;
  busy_time_ += service;
  bytes_moved_ += bytes;
  ++transfers_;
  co_await eng_->delay(service);
  slots_.release();
  trace_flow_end(flow);
}

// ---------------------------------------------------------------------------
// FairSharePipe
// ---------------------------------------------------------------------------

/// Suspends the transferring coroutine and registers it as an in-flight
/// flow; FairSharePipe::complete_due resumes it at the flow's finish time.
struct FairShareAwaiter {
  FairSharePipe& pipe;
  Bytes bytes;
  bool await_ready() const noexcept { return false; }
  void await_suspend(std::coroutine_handle<> h) {
    pipe.advance_clock();
    FairSharePipe::Flow flow;
    flow.finish_v = pipe.vtime_ + static_cast<double>(bytes) / pipe.rate_;
    flow.id = pipe.next_flow_id_++;
    flow.waiter = h;
    pipe.join(std::move(flow));
  }
  void await_resume() const noexcept {}
};

Co<void> FairSharePipe::transfer(Bytes bytes) {
  const std::uint64_t flow = trace_flow_begin(bytes);
  if (latency_ > 0.0) co_await eng_->delay(latency_);
  co_await FairShareAwaiter{*this, bytes};
  bytes_moved_ += bytes;
  ++transfers_;
  trace_flow_end(flow);
}

/// Integrate the virtual clock (and the utilisation integral) up to now.
/// Must run before any change to the flow set.
void FairSharePipe::advance_clock() {
  const Seconds now = eng_->now();
  const std::size_t n = flows_.size();
  if (n > 0) {
    const Seconds dt = now - last_update_;
    vtime_ += dt * speed(n);
    const double c = static_cast<double>(channels_);
    busy_time_ += dt * std::min(static_cast<double>(n), c) / c;
  }
  last_update_ = now;
}

double FairSharePipe::utilisation() const {
  const Seconds t = eng_->now();
  if (t <= 0.0) return 0.0;
  Seconds busy = busy_time_;
  if (!flows_.empty()) {
    const double c = static_cast<double>(channels_);
    busy += (t - last_update_) *
            std::min(static_cast<double>(flows_.size()), c) / c;
  }
  return busy / t;
}

void FairSharePipe::join(Flow flow) {
  flows_.push_back(std::move(flow));
  std::push_heap(flows_.begin(), flows_.end(), LaterFinish{});
  arm();
}

/// Pop and resume every flow whose remaining service has vanished. Each
/// departure speeds up the survivors, so the per-iteration conversion from
/// virtual slack to real time uses the shrinking flow count.
void FairSharePipe::complete_due() {
  const Seconds now = eng_->now();
  while (!flows_.empty()) {
    const double remaining_v = flows_.front().finish_v - vtime_;
    const Seconds remaining_t = remaining_v / speed(flows_.size());
    if (remaining_t > kSlackEps) break;
    std::pop_heap(flows_.begin(), flows_.end(), LaterFinish{});
    eng_->schedule(flows_.back().waiter, now);
    flows_.pop_back();
  }
}

/// Parks the persistent timer coroutine and arms it for the earliest
/// completion. Publishing the handle from await_suspend (rather than
/// spawning the coroutine armed) closes the construction-order gap: flows
/// that join before the timer root's first dispatch find timer_h_ null,
/// and this arm() catches up for them.
struct FairShareTimerPark {
  FairSharePipe& pipe;
  bool await_ready() const noexcept { return false; }
  void await_suspend(std::coroutine_handle<> h) {
    pipe.timer_h_ = h;
    pipe.arm();
  }
  void await_resume() const noexcept {
    pipe.timer_token_ = WakeToken{};  // this wakeup just fired
  }
};

/// (Re-)schedule the timer for the earliest completion: cancel the pending
/// wakeup by token and schedule a fresh one. No-op until the timer
/// coroutine has parked for the first time (it re-arms itself on parking).
void FairSharePipe::arm() {
  eng_->cancel_scheduled(std::exchange(timer_token_, WakeToken{}));
  if (flows_.empty() || !timer_h_) return;
  const double remaining_v = flows_.front().finish_v - vtime_;
  const Seconds dt = std::max(0.0, remaining_v / speed(flows_.size()));
  timer_token_ = eng_->schedule_after(timer_h_, dt);
}

/// The pipe's one timer coroutine: parks, and on each wakeup settles all
/// due completions. Re-parking re-arms for whatever is due next.
Task FairSharePipe::timer_loop() {
  for (;;) {
    co_await FairShareTimerPark{*this};
    advance_clock();
    complete_due();
  }
}

std::unique_ptr<LinkModel> make_link(Engine& eng, LinkPolicy policy,
                                     BytesPerSecond rate,
                                     Seconds per_message_latency,
                                     std::size_t channels) {
  switch (policy) {
    case LinkPolicy::fifo:
      return std::make_unique<FifoPipe>(eng, rate, per_message_latency, channels);
    case LinkPolicy::fair_share:
      return std::make_unique<FairSharePipe>(eng, rate, per_message_latency,
                                             channels);
  }
  PFSC_REQUIRE(false, "make_link: unknown LinkPolicy");
  return nullptr;
}

}  // namespace pfsc::sim
