#include "sim/event_queue.hpp"

#include <algorithm>

#include "support/error.hpp"

namespace pfsc::sim {

namespace {

constexpr std::size_t kMinBuckets = 16;
constexpr std::size_t kMaxBuckets = std::size_t{1} << 20;
/// Floor for the bucket width: well below any simulated latency in the
/// model, so the spread-derived width can never degenerate to zero (which
/// would collapse every event into one virtual bucket index).
constexpr double kMinWidth = 1.0e-12;

}  // namespace

const char* event_queue_policy_name(EventQueuePolicy policy) {
  switch (policy) {
    case EventQueuePolicy::binary_heap: return "binary_heap";
    case EventQueuePolicy::ladder: return "ladder";
  }
  return "?";
}

ScheduledEvent BinaryHeapQueue::pop() {
  PFSC_ASSERT(!heap_.empty());
  std::pop_heap(heap_.begin(), heap_.end(), Later{});
  const ScheduledEvent ev = heap_.back();
  heap_.pop_back();
  return ev;
}

// ---------------------------------------------------------------------------
// LadderQueue
// ---------------------------------------------------------------------------

LadderQueue::LadderQueue() : buckets_(kMinBuckets), mask_(kMinBuckets - 1) {}

void LadderQueue::push(const ScheduledEvent& ev) {
  // Immediate wakeups (t no later than the last pop) keep arriving in
  // key order — see the today_ member comment — so they bypass the
  // calendar entirely: O(1) ring append, O(1) ring pop. Cross-domain
  // deliveries can never land here: conservative lookahead puts them
  // strictly after the window that sent them (domain.hpp), hence after
  // every pop so far.
  if (ev.t <= t_floor_) {
    today_.push_back(ev);
    ++size_;
    return;
  }
  maybe_grow();
  // An event timed before the cursor's window (possible right after a
  // direct-search jump) joins the cursor bucket; the window test below is
  // by vbucket(t), so it still qualifies immediately and pops in correct
  // key order.
  std::uint64_t vb = vbucket(ev.t);
  if (vb < cur_vb_) vb = cur_vb_;
  Bucket& b = buckets_[vb & mask_];
  b.push_back(ev);
  std::push_heap(b.begin(), b.end(), Later{});
  ++size_;
  ++cal_size_;
  cache_valid_ = false;
}

bool LadderQueue::locate_min() {
  if (cache_valid_) return true;
  if (cal_size_ == 0) return false;
  const std::size_t nbuckets = buckets_.size();
  for (std::size_t lap = 0; lap < nbuckets; ++lap) {
    const Bucket& b = buckets_[cur_vb_ & mask_];
    // The bucket is a min-heap, so its front is its global minimum; if the
    // front does not fall inside the cursor's window no bucket member does
    // (vbucket is monotonic in t), and the cursor may advance.
    if (!b.empty() && vbucket(b.front().t) <= cur_vb_) {
      cached_bucket_ = cur_vb_ & mask_;
      cache_valid_ = true;
      return true;
    }
    ++cur_vb_;
  }
  // A full fruitless lap: every pending event lives at least one year
  // ahead (a sparse far-future tail). Direct-scan the buckets for the
  // global minimum and jump the cursor to its year, preserving the
  // invariant cursor-bucket == physical bucket of the minimum.
  std::size_t best = nbuckets;
  for (std::size_t i = 0; i < nbuckets; ++i) {
    if (buckets_[i].empty()) continue;
    if (best == nbuckets ||
        Later{}(buckets_[best].front(), buckets_[i].front())) {
      best = i;
    }
  }
  PFSC_ASSERT(best < nbuckets);
  const std::uint64_t base = vbucket(buckets_[best].front().t);
  cur_vb_ = base + ((best + nbuckets - (base & mask_)) & mask_);
  cached_bucket_ = best;
  cache_valid_ = true;
  return true;
}

const ScheduledEvent* LadderQueue::peek() {
  const ScheduledEvent* cal =
      locate_min() ? &buckets_[cached_bucket_].front() : nullptr;
  const ScheduledEvent* today =
      today_head_ < today_.size() ? &today_[today_head_] : nullptr;
  if (today == nullptr) return cal;
  if (cal == nullptr) return today;
  return Later{}(*cal, *today) ? today : cal;
}

ScheduledEvent LadderQueue::pop() {
  const ScheduledEvent* cal =
      locate_min() ? &buckets_[cached_bucket_].front() : nullptr;
  ScheduledEvent ev;
  if (today_head_ < today_.size() &&
      (cal == nullptr || Later{}(*cal, today_[today_head_]))) {
    ev = today_[today_head_++];
    if (today_head_ == today_.size()) {  // drained: reset, keep capacity
      today_.clear();
      today_head_ = 0;
    }
    --size_;
  } else {
    PFSC_ASSERT(cal != nullptr);
    Bucket& b = buckets_[cached_bucket_];
    std::pop_heap(b.begin(), b.end(), Later{});
    ev = b.back();
    b.pop_back();
    --size_;
    --cal_size_;
    cache_valid_ = false;
    maybe_shrink();
  }
  t_floor_ = ev.t;  // pops are globally non-decreasing in t
  return ev;
}

void LadderQueue::maybe_grow() {
  if (cal_size_ + 1 > 2 * buckets_.size() && buckets_.size() < kMaxBuckets) {
    rebuild(buckets_.size() * 2);
  }
}

void LadderQueue::maybe_shrink() {
  if (cal_size_ > 0 && cal_size_ < buckets_.size() / 4 &&
      buckets_.size() > kMinBuckets) {
    rebuild(std::max(kMinBuckets, buckets_.size() / 2));
  }
}

void LadderQueue::rebuild(std::size_t nbuckets) {
  // Stage the live events in a reused scratch vector and clear() (not
  // reallocate) the buckets: rebuilds happen on every capacity change, so
  // both the scratch buffer and every bucket's heap storage must keep
  // their capacity across rebuilds or burst-grow/drain-shrink patterns
  // (task fan-out, end-of-run drains) spend all their time in malloc.
  scratch_.clear();
  scratch_.reserve(cal_size_);
  for (Bucket& b : buckets_) {
    scratch_.insert(scratch_.end(), b.begin(), b.end());
    b.clear();
  }
  PFSC_ASSERT(scratch_.size() == cal_size_);

  // Lazy width recalibration: spread the *observed* event times evenly
  // over the live population, so each bucket holds O(1) events whatever
  // timescale the model currently runs at.
  if (!scratch_.empty()) {
    double lo = scratch_.front().t;
    double hi = lo;
    for (const ScheduledEvent& ev : scratch_) {
      lo = std::min(lo, ev.t);
      hi = std::max(hi, ev.t);
    }
    const double spread = hi - lo;
    if (spread > 0.0) {
      width_ = std::max(kMinWidth,
                        spread / static_cast<double>(scratch_.size()));
      inv_width_ = 1.0 / width_;
    }
    cur_vb_ = vbucket(lo);
  }

  buckets_.resize(nbuckets);  // all empty here; keeps surviving capacity
  mask_ = nbuckets - 1;
  for (const ScheduledEvent& ev : scratch_) {
    std::uint64_t vb = vbucket(ev.t);
    if (vb < cur_vb_) vb = cur_vb_;
    buckets_[vb & mask_].push_back(ev);
  }
  for (Bucket& b : buckets_) std::make_heap(b.begin(), b.end(), Later{});
  cache_valid_ = false;
}

std::unique_ptr<EventQueue> make_event_queue(EventQueuePolicy policy) {
  switch (policy) {
    case EventQueuePolicy::binary_heap:
      return std::make_unique<BinaryHeapQueue>();
    case EventQueuePolicy::ladder:
      return std::make_unique<LadderQueue>();
  }
  PFSC_REQUIRE(false, "make_event_queue: unknown EventQueuePolicy");
  return nullptr;
}

}  // namespace pfsc::sim
