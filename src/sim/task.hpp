// Coroutine types for simulation processes.
//
// Two flavours, following the structured-concurrency split used by most
// C++ coroutine libraries:
//
//  * `Co<T>` — a lazy child coroutine. Calling a Co function allocates the
//    frame but runs nothing; `co_await`ing it transfers control in, and
//    completion symmetrically transfers back to the awaiter. Strictly
//    serial: use it for any async function called from exactly one parent
//    (e.g. LustreClient::write).
//
//  * `Task` — a root process with its own logical thread of control.
//    Started with Engine::spawn; runs concurrently with its spawner.
//    `co_await task` joins it (many joiners allowed).
//
// Lifetime: the Task frame is reference-counted. Each Task object holds one
// reference, and the Engine holds one from spawn until the coroutine's
// final suspend. Whoever drops the count to zero destroys the frame, so
// joiners may safely outlive completion and fire-and-forget spawns free
// themselves. Exceptions propagate to the awaiter; a root task that fails
// with no joiner surfaces its exception from Engine::run().
//
// Allocation: both promise types inherit FramePooled (arena.hpp), so
// coroutine frames created while an Engine is alive are recycled through
// that engine's free-list arena instead of malloc. Frames must not outlive
// the engine (same rule the ref-counting already imposes on Task handles).
#pragma once

#include <coroutine>
#include <exception>
#include <type_traits>
#include <utility>
#include <vector>

#include "sim/arena.hpp"
#include "sim/engine.hpp"
#include "support/error.hpp"

namespace pfsc::sim {

// ---------------------------------------------------------------------------
// Task: spawnable root process.
// ---------------------------------------------------------------------------

class TaskPromise;

class Task {
 public:
  using promise_type = TaskPromise;

  Task() = default;
  explicit Task(std::coroutine_handle<TaskPromise> h);
  Task(const Task& other);
  Task(Task&& other) noexcept : h_(std::exchange(other.h_, nullptr)) {}
  Task& operator=(Task other) noexcept {
    std::swap(h_, other.h_);
    return *this;
  }
  ~Task();

  bool valid() const { return h_ != nullptr; }
  bool done() const;

  /// Awaitable join: resumes when the task finishes (immediately if it
  /// already has); rethrows the task's exception, if any.
  auto operator co_await() const;

  std::coroutine_handle<TaskPromise> handle() const { return h_; }

 private:
  std::coroutine_handle<TaskPromise> h_;
};

class TaskPromise : public FramePooled {
 public:
  Task get_return_object();
  std::suspend_always initial_suspend() noexcept { return {}; }

  auto final_suspend() noexcept {
    struct Final {
      bool await_ready() const noexcept { return false; }
      bool await_suspend(std::coroutine_handle<TaskPromise> h) noexcept {
        TaskPromise& p = h.promise();
        p.done_ = true;
        if (Engine* eng = p.engine_) {
          eng->note_root_done(p.live_index_);
          if (p.first_waiter_) {
            eng->schedule(p.first_waiter_, eng->now());
            for (auto waiter : p.extra_waiters_) eng->schedule(waiter, eng->now());
          } else if (p.exception_) {
            eng->note_unhandled(p.exception_);
          }
          p.first_waiter_ = nullptr;
          p.extra_waiters_.clear();
          if (p.release_ref()) {  // drop the engine's reference
            h.destroy();
            return true;
          }
        }
        return true;  // remaining Task owners destroy the frame
      }
      void await_resume() const noexcept {}
    };
    return Final{};
  }

  void return_void() noexcept {}
  void unhandled_exception() noexcept { exception_ = std::current_exception(); }

  // -- bookkeeping used by Task / Engine --------------------------------
  void add_ref() noexcept { ++refs_; }
  /// Drop one reference; returns true if the caller must destroy the frame.
  bool release_ref() noexcept { return --refs_ == 0; }
  bool done() const noexcept { return done_; }
  bool spawned() const noexcept { return engine_ != nullptr; }
  std::exception_ptr exception() const noexcept { return exception_; }
  // Joiner list with an inline first slot: almost every task has 0 or 1
  // joiners, so the common case never touches the overflow vector.
  void add_waiter(std::coroutine_handle<> h) {
    if (!first_waiter_) {
      first_waiter_ = h;
    } else {
      extra_waiters_.push_back(h);
    }
  }
  void bind(Engine& eng, std::size_t live_index) noexcept {
    engine_ = &eng;
    live_index_ = live_index;
    add_ref();  // the engine's reference, dropped at final suspend
  }
  std::size_t live_index() const noexcept { return live_index_; }
  void set_live_index(std::size_t i) noexcept { live_index_ = i; }

 private:
  Engine* engine_ = nullptr;
  std::size_t live_index_ = static_cast<std::size_t>(-1);
  int refs_ = 0;
  bool done_ = false;
  std::exception_ptr exception_;
  std::coroutine_handle<> first_waiter_;
  std::vector<std::coroutine_handle<>> extra_waiters_;
};

inline Task TaskPromise::get_return_object() {
  return Task{std::coroutine_handle<TaskPromise>::from_promise(*this)};
}

inline Task::Task(std::coroutine_handle<TaskPromise> h) : h_(h) {
  if (h_) h_.promise().add_ref();
}
inline Task::Task(const Task& other) : h_(other.h_) {
  if (h_) h_.promise().add_ref();
}
inline Task::~Task() {
  if (h_ && h_.promise().release_ref()) h_.destroy();
}
inline bool Task::done() const { return h_ && h_.promise().done(); }

inline auto Task::operator co_await() const {
  struct Join {
    Task task;  // keep the frame alive across the join
    bool await_ready() const noexcept { return task.handle().promise().done(); }
    void await_suspend(std::coroutine_handle<> h) {
      task.handle().promise().add_waiter(h);
    }
    void await_resume() const {
      if (auto e = task.handle().promise().exception()) std::rethrow_exception(e);
    }
  };
  PFSC_ASSERT(valid());
  PFSC_ASSERT(handle().promise().spawned());  // joining an unspawned task deadlocks
  return Join{*this};
}

// ---------------------------------------------------------------------------
// Co<T>: lazy child coroutine with symmetric transfer back to the awaiter.
// ---------------------------------------------------------------------------

template <typename T>
class CoPromise;

/// Lazy child coroutine; see file header.
template <typename T = void>
class Co {
 public:
  using promise_type = CoPromise<T>;

  Co() = default;
  explicit Co(std::coroutine_handle<promise_type> h) : h_(h) {}
  Co(const Co&) = delete;
  Co& operator=(const Co&) = delete;
  Co(Co&& other) noexcept : h_(std::exchange(other.h_, nullptr)) {}
  Co& operator=(Co&& other) noexcept {
    if (this != &other) {
      if (h_) h_.destroy();
      h_ = std::exchange(other.h_, nullptr);
    }
    return *this;
  }
  ~Co() {
    if (h_) h_.destroy();
  }

  bool valid() const { return h_ != nullptr; }

  auto operator co_await() && noexcept {
    struct Awaiter {
      std::coroutine_handle<promise_type> h;
      bool await_ready() const noexcept { return false; }
      std::coroutine_handle<> await_suspend(std::coroutine_handle<> cont) noexcept {
        h.promise().set_continuation(cont);
        return h;  // symmetric transfer into the child
      }
      T await_resume() {
        if (auto e = h.promise().exception()) std::rethrow_exception(e);
        if constexpr (!std::is_void_v<T>) {
          return std::move(h.promise().value());
        }
      }
    };
    PFSC_ASSERT(valid());
    return Awaiter{h_};
  }

 private:
  std::coroutine_handle<promise_type> h_;
};

template <typename T>
class CoPromiseCore : public FramePooled {
 public:
  std::suspend_always initial_suspend() noexcept { return {}; }
  auto final_suspend() noexcept {
    struct Final {
      bool await_ready() const noexcept { return false; }
      std::coroutine_handle<> await_suspend(
          std::coroutine_handle<CoPromise<T>> h) noexcept {
        auto cont = h.promise().continuation();
        return cont ? cont : std::noop_coroutine();
      }
      void await_resume() const noexcept {}
    };
    return Final{};
  }
  void unhandled_exception() noexcept { exception_ = std::current_exception(); }
  void set_continuation(std::coroutine_handle<> h) noexcept { continuation_ = h; }
  std::coroutine_handle<> continuation() const noexcept { return continuation_; }
  std::exception_ptr exception() const noexcept { return exception_; }

 private:
  std::coroutine_handle<> continuation_;
  std::exception_ptr exception_;
};

template <typename T>
class CoPromise : public CoPromiseCore<T> {
 public:
  Co<T> get_return_object() {
    return Co<T>{std::coroutine_handle<CoPromise>::from_promise(*this)};
  }
  template <typename U>
  void return_value(U&& v) {
    value_ = std::forward<U>(v);
  }
  T& value() { return value_; }

 private:
  T value_{};
};

template <>
class CoPromise<void> : public CoPromiseCore<void> {
 public:
  Co<void> get_return_object() {
    return Co<void>{std::coroutine_handle<CoPromise>::from_promise(*this)};
  }
  void return_void() noexcept {}
};

/// Join every task in `tasks` (helper for fan-out/fan-in patterns).
inline Co<void> join_all(std::vector<Task> tasks) {
  for (auto& t : tasks) co_await t;
}

}  // namespace pfsc::sim
