#include "sim/arena.hpp"

#include <cstdlib>

namespace pfsc::sim {

namespace {
thread_local FrameArena* t_current_arena = nullptr;
}  // namespace

/// Prefix stored immediately ahead of every frame handed out by
/// allocate_frame. 16 bytes keeps the frame itself on the usual
/// max_align_t boundary.
struct alignas(16) FrameArena::Header {
  FrameArena* arena;     // owner, or nullptr for global-allocator frames
  std::size_t size_class;  // index into free_lists_ (unused when arena==nullptr)
};

FrameArena::~FrameArena() {
  PFSC_ASSERT(outstanding_ == 0);
  for (void* head : free_lists_) {
    while (head != nullptr) {
      void* next = *static_cast<void**>(head);
      ::operator delete(head);
      head = next;
    }
  }
}

FrameArena* FrameArena::exchange_current(FrameArena* arena) {
  FrameArena* prev = t_current_arena;
  t_current_arena = arena;
  return prev;
}

FrameArena* FrameArena::current() { return t_current_arena; }

void* FrameArena::allocate_frame(std::size_t bytes) {
  FrameArena* arena = t_current_arena;
  const std::size_t total = sizeof(Header) + bytes;
  // Size class = blocks of kGranularity covering header+frame, minus one.
  const std::size_t size_class = (total + kGranularity - 1) / kGranularity - 1;
  if (arena == nullptr || size_class >= kClasses) {
    auto* header = static_cast<Header*>(::operator new(total));
    header->arena = nullptr;
    header->size_class = 0;
    return header + 1;
  }
  return arena->bucket_alloc(size_class);
}

void FrameArena::deallocate_frame(void* frame) noexcept {
  if (frame == nullptr) return;
  Header* header = static_cast<Header*>(frame) - 1;
  if (header->arena == nullptr) {
    ::operator delete(header);
    return;
  }
  header->arena->bucket_free(header);
}

void* FrameArena::bucket_alloc(std::size_t size_class) {
  ++outstanding_;
  void*& head = free_lists_[size_class];
  if (head != nullptr) {
    ++reused_;
    Header* header = static_cast<Header*>(head);
    head = *reinterpret_cast<void**>(header);
    header->arena = this;
    header->size_class = size_class;
    return header + 1;
  }
  ++fresh_;
  auto* header =
      static_cast<Header*>(::operator new((size_class + 1) * kGranularity));
  header->arena = this;
  header->size_class = size_class;
  return header + 1;
}

void FrameArena::bucket_free(Header* header) noexcept {
  PFSC_ASSERT(outstanding_ > 0);
  --outstanding_;
  void*& head = free_lists_[header->size_class];
  // Reuse the header's own storage as the free-list link.
  *reinterpret_cast<void**>(header) = head;
  head = header;
}

}  // namespace pfsc::sim
