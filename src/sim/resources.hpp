// Synchronisation primitives for simulation processes.
//
//  * Event          — one-shot (resettable) broadcast signal.
//  * Condition      — condition-variable-like signal (no latched state).
//  * Resource       — counting semaphore with FIFO hand-off.
//  * Barrier        — reusable N-party barrier (generation-counted).
//
// The bandwidth servers built on these primitives (the basic building
// blocks of the network model) live in sim/link.hpp as implementations of
// the pluggable LinkModel interface.
#pragma once

#include <coroutine>
#include <cstdint>
#include <deque>
#include <vector>

#include "sim/engine.hpp"
#include "support/units.hpp"

namespace pfsc::sim {

class Event {
 public:
  explicit Event(Engine& eng) : eng_(&eng) {}

  bool fired() const { return fired_; }

  /// Fire the event, waking all current waiters at the current time.
  void trigger() {
    if (fired_) return;
    fired_ = true;
    for (auto h : waiters_) eng_->schedule(h, eng_->now());
    waiters_.clear();
  }

  /// Re-arm a fired event (no waiters may be pending).
  void reset() {
    PFSC_ASSERT(waiters_.empty());
    fired_ = false;
  }

  auto wait() {
    struct Awaiter {
      Event& evt;
      bool await_ready() const noexcept { return evt.fired_; }
      void await_suspend(std::coroutine_handle<> h) { evt.waiters_.push_back(h); }
      void await_resume() const noexcept {}
    };
    return Awaiter{*this};
  }

 private:
  Engine* eng_;
  bool fired_ = false;
  std::vector<std::coroutine_handle<>> waiters_;
};

/// Condition-variable-like signal: wait() always suspends until the next
/// notify_all(). Unlike Event there is no latched state, so it suits
/// "re-check a predicate in a loop" patterns with many concurrent waiters.
class Condition {
 public:
  explicit Condition(Engine& eng) : eng_(&eng) {}

  auto wait() {
    struct Awaiter {
      Condition& cond;
      bool await_ready() const noexcept { return false; }
      void await_suspend(std::coroutine_handle<> h) { cond.waiters_.push_back(h); }
      void await_resume() const noexcept {}
    };
    return Awaiter{*this};
  }

  void notify_all() {
    for (auto h : waiters_) eng_->schedule(h, eng_->now());
    waiters_.clear();
  }

  std::size_t waiter_count() const { return waiters_.size(); }

 private:
  Engine* eng_;
  std::vector<std::coroutine_handle<>> waiters_;
};

/// Counting semaphore. release() hands the token directly to the oldest
/// waiter, so admission is strictly FIFO (no barging).
class Resource {
 public:
  Resource(Engine& eng, std::size_t capacity)
      : eng_(&eng), capacity_(capacity), available_(capacity) {
    PFSC_REQUIRE(capacity > 0, "Resource: capacity must be positive");
  }

  std::size_t capacity() const { return capacity_; }
  std::size_t available() const { return available_; }
  std::size_t queue_length() const { return waiters_.size(); }

  auto acquire() {
    struct Awaiter {
      Resource& res;
      bool await_ready() const noexcept { return false; }
      bool await_suspend(std::coroutine_handle<> h) {
        if (res.available_ > 0) {
          --res.available_;
          return false;  // token taken; continue immediately
        }
        res.waiters_.push_back(h);
        return true;
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{*this};
  }

  void release() {
    if (!waiters_.empty()) {
      auto h = waiters_.front();
      waiters_.pop_front();
      eng_->schedule(h, eng_->now());  // token passes directly to the waiter
    } else {
      PFSC_ASSERT(available_ < capacity_);
      ++available_;
    }
  }

 private:
  Engine* eng_;
  std::size_t capacity_;
  std::size_t available_;
  std::deque<std::coroutine_handle<>> waiters_;
};

/// Reusable barrier for `parties` processes.
class Barrier {
 public:
  Barrier(Engine& eng, std::size_t parties)
      : eng_(&eng), parties_(parties) {
    PFSC_REQUIRE(parties > 0, "Barrier: parties must be positive");
  }

  auto arrive() {
    struct Awaiter {
      Barrier& bar;
      bool await_ready() const noexcept { return bar.parties_ == 1; }
      bool await_suspend(std::coroutine_handle<> h) {
        if (bar.arrived_ + 1 == bar.parties_) {
          bar.arrived_ = 0;
          ++bar.generation_;
          for (auto w : bar.waiters_) bar.eng_->schedule(w, bar.eng_->now());
          bar.waiters_.clear();
          return false;  // last arriver passes straight through
        }
        ++bar.arrived_;
        bar.waiters_.push_back(h);
        return true;
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{*this};
  }

  std::uint64_t generation() const { return generation_; }

 private:
  Engine* eng_;
  std::size_t parties_;
  std::size_t arrived_ = 0;
  std::uint64_t generation_ = 0;
  std::vector<std::coroutine_handle<>> waiters_;
};

}  // namespace pfsc::sim
