// Synchronisation primitives for simulation processes.
//
//  * Event          — one-shot (resettable) broadcast signal.
//  * Resource       — counting semaphore with FIFO hand-off.
//  * Barrier        — reusable N-party barrier (generation-counted).
//  * BandwidthPipe  — FIFO store-and-forward bandwidth server; the basic
//                     building block of the network model. A transfer holds
//                     the pipe for bytes/rate seconds, so concurrent flows
//                     share capacity in arrival order, which at the
//                     throughput timescales of these experiments behaves
//                     like fair sharing while costing O(log n) per event.
#pragma once

#include <coroutine>
#include <cstdint>
#include <deque>
#include <vector>

#include "sim/engine.hpp"
#include "sim/task.hpp"
#include "support/units.hpp"

namespace pfsc::sim {

class Event {
 public:
  explicit Event(Engine& eng) : eng_(&eng) {}

  bool fired() const { return fired_; }

  /// Fire the event, waking all current waiters at the current time.
  void trigger() {
    if (fired_) return;
    fired_ = true;
    for (auto h : waiters_) eng_->schedule(h, eng_->now());
    waiters_.clear();
  }

  /// Re-arm a fired event (no waiters may be pending).
  void reset() {
    PFSC_ASSERT(waiters_.empty());
    fired_ = false;
  }

  auto wait() {
    struct Awaiter {
      Event& evt;
      bool await_ready() const noexcept { return evt.fired_; }
      void await_suspend(std::coroutine_handle<> h) { evt.waiters_.push_back(h); }
      void await_resume() const noexcept {}
    };
    return Awaiter{*this};
  }

 private:
  Engine* eng_;
  bool fired_ = false;
  std::vector<std::coroutine_handle<>> waiters_;
};

/// Condition-variable-like signal: wait() always suspends until the next
/// notify_all(). Unlike Event there is no latched state, so it suits
/// "re-check a predicate in a loop" patterns with many concurrent waiters.
class Condition {
 public:
  explicit Condition(Engine& eng) : eng_(&eng) {}

  auto wait() {
    struct Awaiter {
      Condition& cond;
      bool await_ready() const noexcept { return false; }
      void await_suspend(std::coroutine_handle<> h) { cond.waiters_.push_back(h); }
      void await_resume() const noexcept {}
    };
    return Awaiter{*this};
  }

  void notify_all() {
    for (auto h : waiters_) eng_->schedule(h, eng_->now());
    waiters_.clear();
  }

  std::size_t waiter_count() const { return waiters_.size(); }

 private:
  Engine* eng_;
  std::vector<std::coroutine_handle<>> waiters_;
};

/// Counting semaphore. release() hands the token directly to the oldest
/// waiter, so admission is strictly FIFO (no barging).
class Resource {
 public:
  Resource(Engine& eng, std::size_t capacity)
      : eng_(&eng), capacity_(capacity), available_(capacity) {
    PFSC_REQUIRE(capacity > 0, "Resource: capacity must be positive");
  }

  std::size_t capacity() const { return capacity_; }
  std::size_t available() const { return available_; }
  std::size_t queue_length() const { return waiters_.size(); }

  auto acquire() {
    struct Awaiter {
      Resource& res;
      bool await_ready() const noexcept { return false; }
      bool await_suspend(std::coroutine_handle<> h) {
        if (res.available_ > 0) {
          --res.available_;
          return false;  // token taken; continue immediately
        }
        res.waiters_.push_back(h);
        return true;
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{*this};
  }

  void release() {
    if (!waiters_.empty()) {
      auto h = waiters_.front();
      waiters_.pop_front();
      eng_->schedule(h, eng_->now());  // token passes directly to the waiter
    } else {
      PFSC_ASSERT(available_ < capacity_);
      ++available_;
    }
  }

 private:
  Engine* eng_;
  std::size_t capacity_;
  std::size_t available_;
  std::deque<std::coroutine_handle<>> waiters_;
};

/// Reusable barrier for `parties` processes.
class Barrier {
 public:
  Barrier(Engine& eng, std::size_t parties)
      : eng_(&eng), parties_(parties) {
    PFSC_REQUIRE(parties > 0, "Barrier: parties must be positive");
  }

  auto arrive() {
    struct Awaiter {
      Barrier& bar;
      bool await_ready() const noexcept { return bar.parties_ == 1; }
      bool await_suspend(std::coroutine_handle<> h) {
        if (bar.arrived_ + 1 == bar.parties_) {
          bar.arrived_ = 0;
          ++bar.generation_;
          for (auto w : bar.waiters_) bar.eng_->schedule(w, bar.eng_->now());
          bar.waiters_.clear();
          return false;  // last arriver passes straight through
        }
        ++bar.arrived_;
        bar.waiters_.push_back(h);
        return true;
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{*this};
  }

  std::uint64_t generation() const { return generation_; }

 private:
  Engine* eng_;
  std::size_t parties_;
  std::size_t arrived_ = 0;
  std::uint64_t generation_ = 0;
  std::vector<std::coroutine_handle<>> waiters_;
};

/// FIFO bandwidth server; see file header. `channels` > 1 models a link
/// that can serve that many transfers at full rate each (used sparingly).
class BandwidthPipe {
 public:
  BandwidthPipe(Engine& eng, BytesPerSecond rate, Seconds per_message_latency = 0.0,
                std::size_t channels = 1)
      : eng_(&eng),
        slots_(eng, channels),
        rate_(rate),
        latency_(per_message_latency) {
    PFSC_REQUIRE(rate > 0.0, "BandwidthPipe: rate must be positive");
  }

  /// Move `bytes` through the pipe; completes after queueing + service.
  Co<void> transfer(Bytes bytes) {
    co_await slots_.acquire();
    const Seconds service = latency_ + static_cast<double>(bytes) / rate_;
    busy_time_ += service;
    bytes_moved_ += bytes;
    ++transfers_;
    co_await eng_->delay(service);
    slots_.release();
  }

  BytesPerSecond rate() const { return rate_; }
  Bytes bytes_moved() const { return bytes_moved_; }
  std::uint64_t transfers() const { return transfers_; }
  /// Fraction of [0, now] this pipe spent serving (per channel).
  double utilisation() const {
    const Seconds t = eng_->now();
    if (t <= 0.0) return 0.0;
    return busy_time_ / (t * static_cast<double>(slots_.capacity()));
  }

 private:
  Engine* eng_;
  Resource slots_;
  BytesPerSecond rate_;
  Seconds latency_;
  Seconds busy_time_ = 0.0;
  Bytes bytes_moved_ = 0;
  std::uint64_t transfers_ = 0;
};

}  // namespace pfsc::sim
