// Pluggable pending-event queues for the simulation engine.
//
// The engine dispatches the globally minimal (t, at, src, seq) event on
// every step (see ScheduledEvent for the key), so any queue that pops in
// that order is bit-for-bit interchangeable with any other — the
// implementations below differ only in cost:
//
//  * BinaryHeapQueue — std::priority_queue over the key: O(log n) per
//    push/pop. The reference implementation; simple, and what the engine
//    shipped with historically.
//  * LadderQueue     — calendar queue (Brown '88) of min-heap buckets with
//    lazy resizing: events hash into `buckets` of `width` simulated
//    seconds each by floor(t / width), a cursor walks the buckets in year
//    order, and each bucket keeps its events as a tiny binary heap. With
//    the width tracking the observed event-time spread (recomputed from
//    the live events at every capacity doubling/halving) buckets hold O(1)
//    events, making push/pop amortised O(1) instead of O(log n). A flat
//    "today" ring short-circuits the calendar for schedule-at-now wakeups
//    (the bulk of a coroutine DES's traffic), which arrive pre-sorted.
//    This is the queue the DES literature recommends once event counts
//    reach the tens of millions a 4,096-rank PLFS run executes.
//
// Determinism: pop() always returns the minimal (t, at, src, seq) pending
// event, so every implementation yields the same dispatch sequence; the
// golden regression tests and the heap-vs-ladder property test pin this.
#pragma once

#include <coroutine>
#include <cstdint>
#include <memory>
#include <queue>
#include <vector>

#include "support/units.hpp"

namespace pfsc::sim {

/// One scheduled resume, ordered by the key (t, at, src, seq).
///
/// `at` is the simulated time at which the wakeup was *scheduled* (the
/// engine's now() during the schedule call) and `src` identifies where it
/// came from: 0 for native events scheduled by this engine's own dispatch
/// loop, 1 + source-domain for messages delivered from another domain of a
/// sharded run (sim/domain.hpp). `seq` is the schedule order *within* one
/// source: the engine-wide counter for native events, the per-edge mailbox
/// counter for messages — unique and monotone per source, so (src, seq)
/// is globally unique.
///
/// For a single-engine run every event has src == 0 and `at` is monotone
/// in `seq` (simulated time never goes backwards between schedule calls),
/// so (t, at, src, seq) orders exactly like the historical (t, seq) key —
/// the widened key is bit-for-bit invisible until domains enter the
/// picture.
struct ScheduledEvent {
  Seconds t = 0.0;
  Seconds at = 0.0;
  std::uint64_t seq = 0;
  std::coroutine_handle<> h;
  std::uint32_t src = 0;
};

enum class EventQueuePolicy {
  binary_heap,  // reference O(log n) heap
  ladder,       // calendar/ladder queue, amortised O(1) (default)
};

const char* event_queue_policy_name(EventQueuePolicy policy);

/// Interface for the engine's pending-event set, ordered by the
/// (t, at, src, seq) key.
class EventQueue {
 public:
  virtual ~EventQueue() = default;

  virtual void push(const ScheduledEvent& ev) = 0;
  /// The minimal pending event, or nullptr when empty. The pointer is
  /// valid until the next push/pop. Non-const: implementations may advance
  /// internal cursors while locating the minimum.
  virtual const ScheduledEvent* peek() = 0;
  /// Remove and return the minimal pending event. Requires !empty().
  virtual ScheduledEvent pop() = 0;

  virtual bool empty() const = 0;
  virtual std::size_t size() const = 0;
  virtual EventQueuePolicy policy() const = 0;
};

/// Reference implementation: a binary heap over (t, seq).
class BinaryHeapQueue final : public EventQueue {
 public:
  void push(const ScheduledEvent& ev) override {
    heap_.push_back(ev);
    std::push_heap(heap_.begin(), heap_.end(), Later{});
  }
  const ScheduledEvent* peek() override {
    return heap_.empty() ? nullptr : &heap_.front();
  }
  ScheduledEvent pop() override;

  bool empty() const override { return heap_.empty(); }
  std::size_t size() const override { return heap_.size(); }
  EventQueuePolicy policy() const override {
    return EventQueuePolicy::binary_heap;
  }

 private:
  struct Later {
    bool operator()(const ScheduledEvent& a, const ScheduledEvent& b) const {
      if (a.t != b.t) return a.t > b.t;
      if (a.at != b.at) return a.at > b.at;
      if (a.src != b.src) return a.src > b.src;
      return a.seq > b.seq;
    }
  };
  std::vector<ScheduledEvent> heap_;
};

/// Calendar queue of min-heap buckets; see file header. All operations are
/// amortised O(1) when the bucket width matches the event-time spread,
/// which the lazy resize maintains.
class LadderQueue final : public EventQueue {
 public:
  LadderQueue();

  void push(const ScheduledEvent& ev) override;
  const ScheduledEvent* peek() override;
  ScheduledEvent pop() override;

  bool empty() const override { return size_ == 0; }
  std::size_t size() const override { return size_; }
  EventQueuePolicy policy() const override { return EventQueuePolicy::ladder; }

  // -- introspection (tests/benchmarks) ---------------------------------
  std::size_t bucket_count() const { return buckets_.size(); }
  double bucket_width() const { return width_; }

 private:
  struct Later {
    bool operator()(const ScheduledEvent& a, const ScheduledEvent& b) const {
      if (a.t != b.t) return a.t > b.t;
      if (a.at != b.at) return a.at > b.at;
      if (a.src != b.src) return a.src > b.src;
      return a.seq > b.seq;
    }
  };
  using Bucket = std::vector<ScheduledEvent>;  // min-heap on (t, at, src, seq)

  /// Virtual bucket index of time `t` (the bucket array wraps this by
  /// `mask_`, one wrap per "year"). Placement and the cursor's window test
  /// both use this exact function, so floating-point rounding can never
  /// strand an event between a bucket and its window. Multiplies by the
  /// cached reciprocal: one fewer division on both hot paths.
  std::uint64_t vbucket(Seconds t) const {
    const double q = t * inv_width_;
    // Clamp absurd quotients (huge t over a tiny width) into the final
    // year rather than overflowing the conversion.
    if (q >= 9.0e18) return static_cast<std::uint64_t>(9.0e18);
    return static_cast<std::uint64_t>(q);
  }

  /// Point `cached_` at the bucket holding the global minimum; returns
  /// false when empty. Amortised O(1): the cursor resumes where it left
  /// off, and a full fruitless lap falls back to a direct scan + jump.
  bool locate_min();
  /// Rebuild with `nbuckets` buckets and a width recomputed from the
  /// observed spread of the live events.
  void rebuild(std::size_t nbuckets);
  void maybe_grow();
  void maybe_shrink();

  std::vector<Bucket> buckets_;
  std::size_t mask_ = 0;         // buckets_.size() - 1 (power of two)
  double width_ = 1.0;           // seconds per bucket
  double inv_width_ = 1.0;       // 1 / width_, kept in lockstep
  std::uint64_t cur_vb_ = 0;     // cursor: current virtual bucket
  std::size_t size_ = 0;         // total pending (calendar + today ring)
  std::size_t cal_size_ = 0;     // events in buckets_
  std::size_t cached_bucket_ = 0;
  bool cache_valid_ = false;
  std::vector<ScheduledEvent> scratch_;  // rebuild staging, reused

  // "Today" ring: events pushed with t <= the last popped time (the
  // schedule-at-now wakeups joins/semaphores/pipes produce constantly).
  // They arrive already sorted — t and at are pinned to the engine's now
  // and (src, seq) grow monotonically (only native events qualify; see
  // push) — so a flat ring holds them in pop order with no hashing or
  // heap ops at all.
  std::vector<ScheduledEvent> today_;
  std::size_t today_head_ = 0;
  double t_floor_ = 0.0;  // time of the last popped event (monotone)
};

std::unique_ptr<EventQueue> make_event_queue(EventQueuePolicy policy);

}  // namespace pfsc::sim
