// Pluggable link-sharing models: how concurrent transfers share a
// bandwidth-limited link (fabric, OSS front end, node NIC, per-process
// pipe).
//
//  * LinkModel      — the interface every layer transfers through. A link
//                     has a nominal per-channel `rate`, an optional
//                     per-message latency, and `channels` parallel lanes;
//                     implementations decide how simultaneous flows share
//                     that capacity.
//  * FifoPipe       — store-and-forward FIFO server: a transfer holds a
//                     whole channel for bytes/rate seconds, so concurrent
//                     flows share capacity in arrival order. This is the
//                     historical `sim::BandwidthPipe` behaviour, preserved
//                     bit-for-bit (the golden-number regression tests pin
//                     it), and the default policy everywhere.
//  * FairSharePipe  — progress-based processor-sharing server: all
//                     in-flight flows advance simultaneously, each at
//                     min(rate, channels*rate/n). Implemented with a
//                     virtual-time clock and an earliest-completion heap,
//                     so a flow arrival or departure costs O(log n) — no
//                     rescan of the other in-flight flows. This models the
//                     paper's central picture of contention (n concurrent
//                     writers each seeing rate/n at the same instant)
//                     directly instead of emergently.
//
// `LinkPolicy` selects the implementation; `make_link` is the factory the
// owning layers (lustre::FileSystem, mpi::Runtime, lustre::Client) build
// their links through, driven by hw::PlatformParams::link_policy.
#pragma once

#include <coroutine>
#include <cstdint>
#include <memory>
#include <queue>
#include <vector>

#include "sim/engine.hpp"
#include "sim/resources.hpp"
#include "sim/task.hpp"
#include "support/units.hpp"
#include "trace/recorder.hpp"

namespace pfsc::sim {

enum class LinkPolicy {
  fifo,        // store-and-forward, arrival order (historical default)
  fair_share,  // processor sharing: n flows each progress at rate/n
};

const char* link_policy_name(LinkPolicy policy);

/// Interface for one bandwidth-limited link. Implementations own all the
/// queueing/sharing semantics; the common statistics and the probe surface
/// (flow count, per-flow rate, utilisation) work for every model.
class LinkModel {
 public:
  LinkModel(Engine& eng, BytesPerSecond rate, Seconds per_message_latency,
            std::size_t channels)
      : eng_(&eng), rate_(rate), latency_(per_message_latency), channels_(channels) {
    PFSC_REQUIRE(rate > 0.0, "LinkModel: rate must be positive");
    PFSC_REQUIRE(channels >= 1, "LinkModel: need at least one channel");
  }

  LinkModel(const LinkModel&) = delete;
  LinkModel& operator=(const LinkModel&) = delete;
  virtual ~LinkModel() = default;

  /// Move `bytes` through the link; completes after queueing + service.
  virtual Co<void> transfer(Bytes bytes) = 0;

  virtual LinkPolicy policy() const = 0;

  // -- probe surface (instantaneous; cheap, side-effect free) -----------
  /// Flows currently inside transfer(): queued + in service.
  virtual std::size_t active_flows() const = 0;
  /// Instantaneous service rate an in-service flow sees (0 when idle).
  virtual BytesPerSecond flow_rate() const = 0;
  /// Fraction of [0, now] this link spent serving (per channel).
  virtual double utilisation() const = 0;

  // -- common statistics -------------------------------------------------
  BytesPerSecond rate() const { return rate_; }
  std::size_t channels() const { return channels_; }
  Bytes bytes_moved() const { return bytes_moved_; }
  std::uint64_t transfers() const { return transfers_; }

  /// Name this link's trace track ("fabric", "oss3", "nic.node0", ...).
  /// Owners set it at construction; unnamed links trace as "link".
  void set_trace_label(std::string label) { trace_label_ = std::move(label); }
  const std::string& trace_label() const { return trace_label_; }

 protected:
  /// Emit a flow-arrival async span + flow counters; returns the span id
  /// (0 when tracing is off — trace_flow_end then no-ops). Implementations
  /// call this at transfer() entry and pair it with trace_flow_end at
  /// completion, bracketing queueing + service.
  std::uint64_t trace_flow_begin(Bytes bytes);
  void trace_flow_end(std::uint64_t id);

  Engine* eng_;
  BytesPerSecond rate_;
  Seconds latency_;
  std::size_t channels_;
  Bytes bytes_moved_ = 0;
  std::uint64_t transfers_ = 0;

 private:
  std::string trace_label_ = "link";
  trace::TrackHandle track_;
};

/// FIFO store-and-forward server; see file header. `channels` > 1 models a
/// link that can serve that many transfers at full rate each (used
/// sparingly).
class FifoPipe final : public LinkModel {
 public:
  FifoPipe(Engine& eng, BytesPerSecond rate, Seconds per_message_latency = 0.0,
           std::size_t channels = 1)
      : LinkModel(eng, rate, per_message_latency, channels),
        slots_(eng, channels) {}

  Co<void> transfer(Bytes bytes) override;

  LinkPolicy policy() const override { return LinkPolicy::fifo; }
  std::size_t active_flows() const override {
    return (slots_.capacity() - slots_.available()) + slots_.queue_length();
  }
  BytesPerSecond flow_rate() const override {
    return slots_.available() < slots_.capacity() ? rate_ : 0.0;
  }
  double utilisation() const override {
    const Seconds t = eng_->now();
    if (t <= 0.0) return 0.0;
    return busy_time_ / (t * static_cast<double>(slots_.capacity()));
  }

 private:
  Resource slots_;
  Seconds busy_time_ = 0.0;
};

/// Progress-based processor-sharing server; see file header.
///
/// All in-flight flows progress at the same normalised speed
/// g(n) = min(1, channels/n), so one scalar virtual clock V with
/// dV/dt = g(n) orders every completion: a flow of `bytes` arriving at
/// virtual time V_a finishes when V reaches V_a + bytes/rate. Arrivals and
/// departures each cost one heap operation plus an O(1) clock advance. One
/// persistent timer coroutine sleeps until the earliest completion; every
/// change to the earliest completion cancels its pending wakeup by token
/// (Engine::cancel_scheduled) and re-schedules it, so re-arming costs two
/// queue operations instead of the coroutine spawn per arrival/departure
/// the old generation-counted timer paid.
class FairSharePipe final : public LinkModel {
 public:
  FairSharePipe(Engine& eng, BytesPerSecond rate,
                Seconds per_message_latency = 0.0, std::size_t channels = 1)
      : LinkModel(eng, rate, per_message_latency, channels) {
    flows_.reserve(64);
    eng.spawn(timer_loop());
  }
  ~FairSharePipe() override { eng_->cancel_scheduled(timer_token_); }

  Co<void> transfer(Bytes bytes) override;

  LinkPolicy policy() const override { return LinkPolicy::fair_share; }
  std::size_t active_flows() const override { return flows_.size(); }
  BytesPerSecond flow_rate() const override {
    return flows_.empty() ? 0.0 : rate_ * speed(flows_.size());
  }
  double utilisation() const override;

 private:
  struct Flow {
    double finish_v = 0.0;   // virtual time at which the flow completes
    std::uint64_t id = 0;    // arrival order; deterministic tie-break
    std::coroutine_handle<> waiter;
  };
  struct LaterFinish {
    bool operator()(const Flow& a, const Flow& b) const {
      if (a.finish_v != b.finish_v) return a.finish_v > b.finish_v;
      return a.id > b.id;
    }
  };

  /// Normalised per-flow progress rate with n flows in flight.
  double speed(std::size_t n) const {
    const double c = static_cast<double>(channels_);
    const double nn = static_cast<double>(n);
    return nn <= c ? 1.0 : c / nn;
  }

  void advance_clock();
  void join(Flow flow);
  void complete_due();
  void arm();
  Task timer_loop();

  friend struct FairShareAwaiter;
  friend struct FairShareTimerPark;

  std::vector<Flow> flows_;  // min-heap on (finish_v, id) via LaterFinish
  double vtime_ = 0.0;
  Seconds last_update_ = 0.0;
  Seconds busy_time_ = 0.0;  // integral of min(n, channels)/channels dt
  std::uint64_t next_flow_id_ = 0;
  std::coroutine_handle<> timer_h_;  // parked persistent timer coroutine
  WakeToken timer_token_;            // its pending wakeup; null when unarmed
};

/// Construct the link implementation selected by `policy`.
std::unique_ptr<LinkModel> make_link(Engine& eng, LinkPolicy policy,
                                     BytesPerSecond rate,
                                     Seconds per_message_latency = 0.0,
                                     std::size_t channels = 1);

}  // namespace pfsc::sim
