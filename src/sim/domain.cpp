#include "sim/domain.hpp"

#include <algorithm>
#include <limits>
#include <thread>
#include <utility>

#include "support/error.hpp"

namespace pfsc::sim {

namespace {

inline void cpu_relax() {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#elif defined(__aarch64__)
  asm volatile("yield" ::: "memory");
#endif
}

/// Spin budget for a ShardSet's round barrier: when every domain has a
/// core, peers arrive within a few thousand spins and parking would only
/// add futex latency; when domains outnumber cores, a spinner burns the
/// exact quantum its peer needs, so park almost immediately and let the
/// last arriver's notify hand the core over.
std::uint32_t shard_spin_budget(std::size_t domains) {
  return domains > hardware_threads() ? 16
                                      : HybridBarrier::kDefaultSpinBudget;
}

}  // namespace

void HybridBarrier::wait_for(bool next) {
  for (std::uint32_t spins = 0; spins < spin_budget_; ++spins) {
    if (sense_.load(std::memory_order_acquire) == next) return;
    cpu_relax();
  }
  // Park. Register first, then re-check: the notifier's seq_cst
  // sense-store / waiters-load cannot both miss this thread (see
  // arrive_and_wait), and atomic::wait itself returns immediately if the
  // sense already flipped, so the wake cannot be lost in the gap.
  parks_.fetch_add(1, std::memory_order_relaxed);
  waiters_.fetch_add(1, std::memory_order_seq_cst);
  while (sense_.load(std::memory_order_seq_cst) != next) {
    sense_.wait(!next, std::memory_order_seq_cst);
  }
  waiters_.fetch_sub(1, std::memory_order_relaxed);
}

ShardSet::ShardSet(std::size_t domains, Seconds lookahead,
                   EventQueuePolicy policy)
    : lookahead_(lookahead),
      edges_(domains * domains),
      handlers_(domains),
      delivered_(domains),
      barrier_(static_cast<std::uint32_t>(domains),
               shard_spin_budget(domains)),
      outboxes_(domains),
      next_t_(domains),
      window_end_(domains),
      eff_next_(domains),
      in_edges_(domains) {
  PFSC_REQUIRE(domains >= 1, "ShardSet: need at least one domain");
  PFSC_REQUIRE(lookahead > 0.0, "ShardSet: lookahead must be positive");
  engines_.reserve(domains);
  for (std::size_t d = 0; d < domains; ++d) {
    engines_.push_back(std::make_unique<Engine>(policy));
    if (domains > 1) {
      engines_.back()->set_trace_track_name("engine.d" + std::to_string(d));
    }
    outboxes_[d].last_post.assign(domains, 0);
    outboxes_[d].active.reserve(domains);
    in_edges_[d].reserve(domains);
  }
  // Each Engine's constructor installed its own arena as the thread's
  // current one; settle on domain 0's so everything the caller builds
  // before run() (file system, runtime, job tasks — all domain-0 work)
  // allocates frames there. Worker threads adopt their own engine's arena
  // inside worker_loop.
  (void)engines_.front()->make_arena_current();
}

ShardSet::~ShardSet() {
  // Destroy engines newest-first: each Engine's destructor restores the
  // thread-current arena to what it was when that engine was built, and
  // that unwinding is only correct in LIFO order (vector order would leave
  // the thread pointing at a destroyed sibling's arena).
  while (!engines_.empty()) engines_.pop_back();
}

void ShardSet::set_handler(std::size_t dst, Handler h) {
  PFSC_ASSERT(dst < handlers_.size());
  handlers_[dst] = std::move(h);
}

void ShardSet::post(std::uint32_t src, std::uint32_t dst, Message m) {
  PFSC_ASSERT(src < engines_.size() && dst < engines_.size() && src != dst);
  m.deliver_t = m.sent_at + lookahead_;
  Outbox& out = outboxes_[src];
  edge(src, dst).post(m, out.parity);
  // First post on this edge this round carries the edge's earliest
  // delivery time (sent_at is nondecreasing within a run phase), so the
  // summary the reduction needs is exactly one append per active edge.
  if (out.last_post[dst] != out.round) {
    out.last_post[dst] = out.round;
    out.active.emplace_back(dst, m.deliver_t);
  }
}

void ShardSet::note_failure() noexcept {
  // First failure wins; later ones (usually knock-on effects of the same
  // root cause) are dropped. The claim flag serialises the exception_ptr
  // write; failed_ makes every domain finish its current round as a no-op
  // and lets reduce() end the run at the next barrier.
  if (!error_claimed_.exchange(true, std::memory_order_acq_rel)) {
    first_error_ = std::current_exception();
  }
  failed_.store(true, std::memory_order_release);
}

void ShardSet::reduce() {
  constexpr Seconds kInf = std::numeric_limits<double>::infinity();
  const std::size_t n = engines_.size();
  // Effective next-event time per domain: its published queue minimum,
  // folded with the earliest in-flight delivery headed its way. In-flight
  // messages merge before the destination's next run phase, so E[d] is
  // exactly the time of d's next dispatch — the quantity both window
  // terms need. The fold also builds each destination's nonempty
  // inbound-edge list (ascending source order — deterministic), so the
  // merge phase scans O(active edges), not O(domains^2) mailboxes.
  for (std::size_t d = 0; d < n; ++d) {
    eff_next_[d] = next_t_[d];
    in_edges_[d].clear();
  }
  for (std::size_t s = 0; s < n; ++s) {
    Outbox& out = outboxes_[s];
    for (const auto& [dst, min_deliver] : out.active) {
      in_edges_[dst].push_back(static_cast<std::uint32_t>(s));
      eff_next_[dst] = std::min(eff_next_[dst], min_deliver);
    }
    out.active.clear();
    out.parity ^= 1u;
    ++out.round;
  }
  // Per-domain exclusive window ends:
  //   W_d = min( min over s != d of E[s] + L,  E[d] + 2L )
  // The min-excluding-self is the usual two-smallest trick; the +2L term
  // caps the feedback loop d itself can start this round (file header).
  Seconds min1 = kInf;
  Seconds min2 = kInf;
  std::size_t argmin = 0;
  for (std::size_t d = 0; d < n; ++d) {
    const Seconds t = eff_next_[d];
    if (t < min1) {
      min2 = min1;
      min1 = t;
      argmin = d;
    } else if (t < min2) {
      min2 = t;
    }
  }
  done_ = failed_.load(std::memory_order_acquire) || min1 == kInf;
  if (done_) return;
  ++windows_;
  for (std::size_t d = 0; d < n; ++d) {
    const Seconds peers = (d == argmin ? min2 : min1) + lookahead_;
    window_end_[d] =
        std::min(peers, eff_next_[d] + lookahead_ + lookahead_);
  }
}

void ShardSet::worker_loop(std::size_t d) {
  Engine& eng = *engines_[d];
  FrameArena* prev = eng.make_arena_current();
  Handler& deliver = handlers_[d];
  const std::vector<std::uint32_t>& inbound = in_edges_[d];
  bool sense = false;
  std::uint32_t merge_parity = 0;  // buffers the peers filled last round
  // Bootstrap round: publish the initial queue state and cross the
  // barrier so the first windows exist. Anything posted before run()
  // (none today) was stamped into round-1 outbox summaries and merges in
  // the first loop iteration.
  next_t_[d] = eng.next_event_time();
  barrier_.arrive_and_wait(sense, [this] { reduce(); });
  while (!done_) {
    try {
      if (!failed_.load(std::memory_order_relaxed)) {
        // Merge phase: deliver what the peers posted last round. The
        // reduction published this domain's nonempty inbound edges, so
        // idle edges cost nothing; the buffers were sealed before the
        // barrier we just crossed, while the peers' current-round posts
        // go to the opposite parity.
        for (const std::uint32_t s : inbound) {
          PFSC_REQUIRE(deliver != nullptr,
                       "ShardSet: message for a domain without a handler");
          std::vector<Message>& batch = edge(s, d).buffer(merge_parity);
          for (const Message& m : batch) {
            deliver(eng, s, m);
          }
          delivered_[d] += batch.size();
          batch.clear();
        }
        // Run phase: dispatch strictly before this domain's own window
        // end, posting outbound messages as a side effect. Skipped
        // entirely when nothing lies inside the window.
        next_t_[d] = eng.next_event_time();
        if (next_t_[d] < window_end_[d]) {
          (void)eng.run_window(window_end_[d]);
          next_t_[d] = eng.next_event_time();
        }
      }
    } catch (...) {
      note_failure();
    }
    merge_parity ^= 1u;
    barrier_.arrive_and_wait(sense, [this] { reduce(); });
  }
  FrameArena::exchange_current(prev);
}

void ShardSet::run() {
  const std::size_t n = engines_.size();
  if (n == 1) {
    engines_[0]->run();
    return;
  }
  std::vector<std::thread> workers;
  workers.reserve(n - 1);
  for (std::size_t d = 1; d < n; ++d) {
    workers.emplace_back([this, d] { worker_loop(d); });
  }
  worker_loop(0);
  for (std::thread& w : workers) w.join();
  if (first_error_ != nullptr) {
    std::exception_ptr e = std::exchange(first_error_, nullptr);
    std::rethrow_exception(e);
  }
}

std::uint64_t ShardSet::messages_delivered() const {
  std::uint64_t total = 0;
  for (const std::uint64_t d : delivered_) total += d;
  return total;
}

std::size_t resolve_domains(std::uint32_t requested, std::uint32_t shards) {
  std::size_t d = requested != 0 ? requested : hardware_threads();
  d = std::max<std::size_t>(d, 1);
  return std::min(d, static_cast<std::size_t>(shards) + 1);
}

unsigned hardware_threads() {
  static const unsigned n = std::max(1u, std::thread::hardware_concurrency());
  return n;
}

}  // namespace pfsc::sim
