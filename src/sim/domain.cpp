#include "sim/domain.hpp"

#include <algorithm>
#include <limits>
#include <thread>
#include <utility>

#include "support/error.hpp"

namespace pfsc::sim {

namespace {

inline void cpu_relax() {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#elif defined(__aarch64__)
  asm volatile("yield" ::: "memory");
#endif
}

// Spin this many iterations before yielding the core: windows are tens of
// microseconds of work, so peers normally arrive within the spin budget,
// but an oversubscribed machine (rep-threads x domain-threads) must not
// livelock against the scheduler.
constexpr std::uint32_t kSpinsBeforeYield = 4096;

}  // namespace

void SpinBarrier::spin_until(bool next) {
  std::uint32_t spins = 0;
  while (sense_.load(std::memory_order_acquire) != next) {
    if (++spins >= kSpinsBeforeYield) {
      std::this_thread::yield();
    } else {
      cpu_relax();
    }
  }
}

ShardSet::ShardSet(std::size_t domains, Seconds lookahead,
                   EventQueuePolicy policy)
    : lookahead_(lookahead),
      edges_(domains * domains),
      handlers_(domains),
      delivered_(domains),
      barrier_(static_cast<std::uint32_t>(domains)),
      next_t_(domains) {
  PFSC_REQUIRE(domains >= 1, "ShardSet: need at least one domain");
  PFSC_REQUIRE(lookahead > 0.0, "ShardSet: lookahead must be positive");
  engines_.reserve(domains);
  for (std::size_t d = 0; d < domains; ++d) {
    engines_.push_back(std::make_unique<Engine>(policy));
    if (domains > 1) {
      engines_.back()->set_trace_track_name("engine.d" + std::to_string(d));
    }
  }
  // Each Engine's constructor installed its own arena as the thread's
  // current one; settle on domain 0's so everything the caller builds
  // before run() (file system, runtime, job tasks — all domain-0 work)
  // allocates frames there. Worker threads adopt their own engine's arena
  // inside worker_loop.
  (void)engines_.front()->make_arena_current();
}

ShardSet::~ShardSet() {
  // Destroy engines newest-first: each Engine's destructor restores the
  // thread-current arena to what it was when that engine was built, and
  // that unwinding is only correct in LIFO order (vector order would leave
  // the thread pointing at a destroyed sibling's arena).
  while (!engines_.empty()) engines_.pop_back();
}

void ShardSet::set_handler(std::size_t dst, Handler h) {
  PFSC_ASSERT(dst < handlers_.size());
  handlers_[dst] = std::move(h);
}

void ShardSet::post(std::uint32_t src, std::uint32_t dst, Message m) {
  PFSC_ASSERT(src < engines_.size() && dst < engines_.size() && src != dst);
  m.deliver_t = m.sent_at + lookahead_;
  edge(src, dst).post(m);
}

void ShardSet::note_failure() noexcept {
  // First failure wins; later ones (usually knock-on effects of the same
  // root cause) are dropped. The claim flag serialises the exception_ptr
  // write; failed_ makes every domain finish its current round as a no-op
  // and lets reduce() end the run at the next barrier.
  if (!error_claimed_.exchange(true, std::memory_order_acq_rel)) {
    first_error_ = std::current_exception();
  }
  failed_.store(true, std::memory_order_release);
}

void ShardSet::reduce() {
  Seconds t = std::numeric_limits<double>::infinity();
  for (const Seconds nt : next_t_) t = std::min(t, nt);
  done_ = failed_.load(std::memory_order_acquire) ||
          t == std::numeric_limits<double>::infinity();
  window_end_ = t + lookahead_;
  if (!done_) ++windows_;
}

void ShardSet::worker_loop(std::size_t d) {
  Engine& eng = *engines_[d];
  FrameArena* prev = eng.make_arena_current();
  Handler& deliver = handlers_[d];
  bool sense = false;
  const std::size_t n = engines_.size();
  for (;;) {
    // Merge phase: drain every inbound edge into this domain's queue.
    // Messages were posted in the peers' previous run phase; barrier 2 of
    // that round ordered those writes before these reads.
    try {
      if (!failed_.load(std::memory_order_relaxed)) {
        for (std::size_t s = 0; s < n; ++s) {
          Mailbox& box = edge(s, d);
          if (box.pending().empty()) continue;
          PFSC_REQUIRE(deliver != nullptr,
                       "ShardSet: message for a domain without a handler");
          for (const Message& m : box.pending()) {
            deliver(eng, static_cast<std::uint32_t>(s), m);
          }
          delivered_[d] += box.pending().size();
          box.pending().clear();
        }
      }
    } catch (...) {
      note_failure();
    }
    next_t_[d] = eng.next_event_time();
    barrier_.arrive_and_wait(sense, [this] { reduce(); });
    if (done_) break;
    // Run phase: dispatch strictly before the window end, posting
    // outbound messages to the edge mailboxes as a side effect.
    try {
      if (!failed_.load(std::memory_order_relaxed)) {
        (void)eng.run_window(window_end_);
      }
    } catch (...) {
      note_failure();
    }
    barrier_.arrive_and_wait(sense);
  }
  FrameArena::exchange_current(prev);
}

void ShardSet::run() {
  const std::size_t n = engines_.size();
  if (n == 1) {
    engines_[0]->run();
    return;
  }
  std::vector<std::thread> workers;
  workers.reserve(n - 1);
  for (std::size_t d = 1; d < n; ++d) {
    workers.emplace_back([this, d] { worker_loop(d); });
  }
  worker_loop(0);
  for (std::thread& w : workers) w.join();
  if (first_error_ != nullptr) {
    std::exception_ptr e = std::exchange(first_error_, nullptr);
    std::rethrow_exception(e);
  }
}

std::uint64_t ShardSet::messages_delivered() const {
  std::uint64_t total = 0;
  for (const std::uint64_t d : delivered_) total += d;
  return total;
}

std::size_t resolve_domains(std::uint32_t requested, std::uint32_t shards) {
  std::size_t d = requested != 0 ? requested : hardware_threads();
  d = std::max<std::size_t>(d, 1);
  return std::min(d, static_cast<std::size_t>(shards) + 1);
}

unsigned hardware_threads() {
  static const unsigned n = std::max(1u, std::thread::hardware_concurrency());
  return n;
}

}  // namespace pfsc::sim
