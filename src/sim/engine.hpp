// Discrete-event simulation engine.
//
// Single-threaded, deterministic: events scheduled for the same timestamp
// run in schedule order. Processes are C++20 coroutines; see task.hpp for
// the two coroutine types (`Task` roots and `Co<T>` children) and
// resources.hpp for the synchronisation primitives built on this engine.
//
// One engine is always single-threaded, but a run may shard its model
// across several engines (sim/domain.hpp), each on its own worker thread,
// exchanging timestamped messages under conservative lookahead. The
// message entry points (`schedule_message`, `spawn_message`,
// `next_event_time`, `run_window`) exist for that coordinator; a plain
// single-engine run never calls them.
//
// The pending-event set is a pluggable sim::EventQueue (event_queue.hpp):
// a calendar/ladder queue by default, the reference binary heap on
// request. Both pop the globally minimal (time, seq) event, so the choice
// cannot change simulation results — only wall-clock speed. The engine
// also owns a FrameArena (arena.hpp) that recycles coroutine-frame
// allocations for every Task/Co created while it is alive.
#pragma once

#include <coroutine>
#include <cstdint>
#include <memory>
#include <string>
#include <unordered_set>
#include <vector>

#include "sim/arena.hpp"
#include "sim/event_queue.hpp"
#include "support/error.hpp"
#include "support/units.hpp"

namespace pfsc::trace {
class Recorder;
}

namespace pfsc::sim {

class Task;

/// Handle to one scheduled wakeup, returned by Engine::schedule /
/// schedule_after and accepted by Engine::cancel_scheduled. Identifies the
/// specific queue entry (by its unique schedule sequence number), so
/// cancelling one wakeup can never affect a later re-schedule of the same
/// coroutine frame. Default-constructed tokens are null and cancel nothing.
struct WakeToken {
  std::uint64_t seq = 0;
  explicit operator bool() const { return seq != 0; }
};

class Engine {
 public:
  explicit Engine(EventQueuePolicy policy = EventQueuePolicy::ladder);
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;
  ~Engine();

  /// Current simulated time in seconds.
  Seconds now() const { return now_; }

  /// Number of events executed so far (for microbenchmarks/diagnostics).
  std::uint64_t executed_events() const { return executed_; }

  /// Entries currently in the pending-event queue, including tombstones of
  /// cancelled wakeups that have not yet been skipped.
  std::size_t pending_events() const { return pending_; }

  /// Which pending-event queue this engine runs on.
  EventQueuePolicy event_queue_policy() const { return queue_->policy(); }

  /// The engine's coroutine-frame arena (statistics for tests/benchmarks).
  const FrameArena& frame_arena() const { return arena_; }

  /// Resume `h` at absolute simulated time `t` (must be >= now()).
  /// The returned token cancels exactly this wakeup; discard it if the
  /// wakeup is never cancelled.
  WakeToken schedule(std::coroutine_handle<> h, Seconds t);

  /// Resume `h` after `dt` seconds.
  WakeToken schedule_after(std::coroutine_handle<> h, Seconds dt) {
    return schedule(h, now_ + dt);
  }

  /// Start a root coroutine; it begins running at the current time.
  /// The engine keeps unfinished roots alive and destroys them at teardown.
  void spawn(Task task);

  /// Run until no events remain. Throws if a root task failed with an
  /// exception that no joiner consumed.
  void run();

  /// Run until simulated time reaches `t` (or the queue drains).
  /// Returns true if the queue drained. Cancelled wakeups do not count as
  /// pending work: an engine whose queue holds only tombstones drains.
  bool run_until(Seconds t);

  // -- sharded-run coordinator interface (sim/domain.hpp) ----------------
  // A message delivered from another domain enters the queue with the
  // full (t, at, src, seq) key of the send: `at` is the sender's clock at
  // the send, `src` is 1 + the sender's domain index, and `seq` the
  // per-edge mailbox sequence — disjoint from this engine's native seq
  // counter, which is why dispatch consults the cancellation set only for
  // src == 0 entries.

  /// Timestamp of the next live pending event (+inf when drained); does
  /// not dispatch. Leading cancelled tombstones are drained on the way.
  Seconds next_event_time();

  /// Dispatch every event with t < `end` (strictly — the window end is
  /// EXCLUSIVE, which is what makes the conservative-lookahead barrier
  /// sound), then stop without advancing now() to `end`. Returns true if
  /// the queue drained.
  bool run_window(Seconds end);

  /// Resume `h` at time `t` on behalf of another domain's send at time
  /// `at` (key fields as described above). Requires src != 0.
  void schedule_message(std::coroutine_handle<> h, Seconds t, Seconds at,
                        std::uint32_t src, std::uint64_t seq);

  /// Start a root coroutine at time `t` with a message key: the sharded
  /// request path spawns one server task per delivered RPC.
  void spawn_message(Task task, Seconds t, Seconds at, std::uint32_t src,
                     std::uint64_t seq);

  /// Install this engine's frame arena as the calling thread's current
  /// arena; returns the previous one so the caller can restore it. Domain
  /// worker threads adopt their engine's arena for the run so coroutine
  /// frames allocate and recycle thread-locally.
  FrameArena* make_arena_current() {
    return FrameArena::exchange_current(&arena_);
  }

  /// Rename the engine's dispatch-batch trace track ("engine" by default;
  /// sharded runs use "engine.d<k>" so merged per-domain traces keep one
  /// track per engine).
  void set_trace_track_name(std::string name) {
    trace_track_name_ = std::move(name);
  }

  /// Awaitable: suspend the current coroutine for `dt` simulated seconds.
  auto delay(Seconds dt) {
    struct Awaiter {
      Engine& eng;
      Seconds dt;
      bool await_ready() const noexcept { return dt <= 0.0; }
      void await_suspend(std::coroutine_handle<> h) { eng.schedule_after(h, dt); }
      void await_resume() const noexcept {}
    };
    PFSC_ASSERT(dt >= 0.0);
    return Awaiter{*this, dt};
  }

  /// Remove the scheduled-but-not-yet-dispatched wakeup identified by
  /// `tok`. The frame is neither resumed nor destroyed (a cancelled root is
  /// reclaimed at engine teardown like any unfinished root); the queue
  /// entry is skipped lazily when it reaches the front, without advancing
  /// time or the event count, and its tombstone is erased at that point.
  /// Null tokens are ignored. Used by trace::Sampler::stop() to drop its
  /// pending wakeup so a stopped sampler cannot keep the engine alive
  /// until the next tick.
  void cancel_scheduled(WakeToken tok) {
    if (tok.seq != 0) cancelled_.insert(tok.seq);
  }

  // -- event tracing -----------------------------------------------------
  /// Attach (or with nullptr detach) an event recorder. Not owned; must
  /// outlive its attachment. Every instrumented layer built on this engine
  /// emits through it; when unset each hook is a single pointer test.
  void set_recorder(trace::Recorder* rec) { recorder_ = rec; }
  trace::Recorder* recorder() const { return recorder_; }

  // -- internal, used by Task machinery --------------------------------
  void note_root_done(std::size_t live_index);
  void note_unhandled(std::exception_ptr e) {
    if (!pending_exception_) pending_exception_ = e;
  }

 private:
  void dispatch_one();
  /// Pop leading cancelled entries, erasing their tombstones; returns the
  /// first live pending event (nullptr when none remain).
  const ScheduledEvent* drain_cancelled_front();
  void rethrow_pending();
  void trace_dispatch();

  // Declared first so the arena outlives every member that may release
  // coroutine frames during destruction (live_roots_, queue_).
  FrameArena arena_;
  FrameArena* prev_arena_ = nullptr;  // restored at destruction

  Seconds now_ = 0.0;
  std::uint64_t seq_ = 0;  // last issued sequence number; tokens start at 1
  std::uint64_t executed_ = 0;
  // Mirrors queue_->size(); lets run()'s loop condition skip a virtual
  // call per dispatched event.
  std::size_t pending_ = 0;
  std::unique_ptr<EventQueue> queue_;
  std::vector<std::coroutine_handle<>> live_roots_;  // unfinished root frames
  std::exception_ptr pending_exception_;
  std::unordered_set<std::uint64_t> cancelled_;  // seqs to skip lazily

  // Dispatch spans are batched (one span per engine_sample_every()
  // dispatches) so the engine category cannot drown the event buffer.
  trace::Recorder* recorder_ = nullptr;
  bool trace_batch_open_ = false;
  std::uint32_t trace_in_batch_ = 0;
  std::string trace_track_name_ = "engine";
};

}  // namespace pfsc::sim
