// Discrete-event simulation engine.
//
// Single-threaded, deterministic: events scheduled for the same timestamp
// run in schedule order. Processes are C++20 coroutines; see task.hpp for
// the two coroutine types (`Task` roots and `Co<T>` children) and
// resources.hpp for the synchronisation primitives built on this engine.
#pragma once

#include <coroutine>
#include <cstdint>
#include <queue>
#include <unordered_set>
#include <vector>

#include "support/error.hpp"
#include "support/units.hpp"

namespace pfsc::trace {
class Recorder;
}

namespace pfsc::sim {

class Task;

class Engine {
 public:
  Engine() = default;
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;
  ~Engine();

  /// Current simulated time in seconds.
  Seconds now() const { return now_; }

  /// Number of events executed so far (for microbenchmarks/diagnostics).
  std::uint64_t executed_events() const { return executed_; }

  /// Resume `h` at absolute simulated time `t` (must be >= now()).
  void schedule(std::coroutine_handle<> h, Seconds t);

  /// Resume `h` after `dt` seconds.
  void schedule_after(std::coroutine_handle<> h, Seconds dt) {
    schedule(h, now_ + dt);
  }

  /// Start a root coroutine; it begins running at the current time.
  /// The engine keeps unfinished roots alive and destroys them at teardown.
  void spawn(Task task);

  /// Run until no events remain. Throws if a root task failed with an
  /// exception that no joiner consumed.
  void run();

  /// Run until simulated time reaches `t` (or the queue drains).
  /// Returns true if the queue drained.
  bool run_until(Seconds t);

  /// Awaitable: suspend the current coroutine for `dt` simulated seconds.
  auto delay(Seconds dt) {
    struct Awaiter {
      Engine& eng;
      Seconds dt;
      bool await_ready() const noexcept { return dt <= 0.0; }
      void await_suspend(std::coroutine_handle<> h) { eng.schedule_after(h, dt); }
      void await_resume() const noexcept {}
    };
    PFSC_ASSERT(dt >= 0.0);
    return Awaiter{*this, dt};
  }

  /// Remove a scheduled-but-not-yet-dispatched resume of `h`. The frame is
  /// neither resumed nor destroyed (a cancelled root is reclaimed at engine
  /// teardown like any unfinished root); the queue entry is skipped lazily
  /// when it reaches the front, without advancing time or the event count.
  /// Used by trace::Sampler::stop() to drop its pending wakeup so a stopped
  /// sampler cannot keep the engine alive until the next tick.
  void cancel_scheduled(std::coroutine_handle<> h) {
    PFSC_ASSERT(h);
    cancelled_.insert(h.address());
  }

  // -- event tracing -----------------------------------------------------
  /// Attach (or with nullptr detach) an event recorder. Not owned; must
  /// outlive its attachment. Every instrumented layer built on this engine
  /// emits through it; when unset each hook is a single pointer test.
  void set_recorder(trace::Recorder* rec) { recorder_ = rec; }
  trace::Recorder* recorder() const { return recorder_; }

  // -- internal, used by Task machinery --------------------------------
  void note_root_done(std::size_t live_index);
  void note_unhandled(std::exception_ptr e) {
    if (!pending_exception_) pending_exception_ = e;
  }

 private:
  struct Item {
    Seconds t;
    std::uint64_t seq;
    std::coroutine_handle<> h;
    bool operator>(const Item& other) const {
      if (t != other.t) return t > other.t;
      return seq > other.seq;
    }
  };

  void dispatch_one();
  void rethrow_pending();
  void trace_dispatch();

  Seconds now_ = 0.0;
  std::uint64_t seq_ = 0;
  std::uint64_t executed_ = 0;
  std::priority_queue<Item, std::vector<Item>, std::greater<>> queue_;
  std::vector<std::coroutine_handle<>> live_roots_;  // unfinished root frames
  std::exception_ptr pending_exception_;
  std::unordered_set<void*> cancelled_;  // lazily-skipped queue entries

  // Dispatch spans are batched (one span per engine_sample_every()
  // dispatches) so the engine category cannot drown the event buffer.
  trace::Recorder* recorder_ = nullptr;
  bool trace_batch_open_ = false;
  std::uint32_t trace_in_batch_ = 0;
};

}  // namespace pfsc::sim
