#include "replay/log.hpp"

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <set>
#include <sstream>

#include "harness/cli.hpp"

namespace pfsc::replay {

namespace {

using harness::JobKind;
using harness::JobSpec;

constexpr std::string_view kHeader = "#PFSC-JOBLOG v1";

// -- emission ---------------------------------------------------------------

std::string fmt_bytes(Bytes b) {
  if (b >= 1_GiB && b % 1_GiB == 0) return std::to_string(b / 1_GiB) + "G";
  if (b >= 1_MiB && b % 1_MiB == 0) return std::to_string(b / 1_MiB) + "M";
  if (b >= 1_KiB && b % 1_KiB == 0) return std::to_string(b / 1_KiB) + "K";
  return std::to_string(b);
}

std::string fmt_double(double x) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", x);
  // Shortest representation that round-trips: prefer fewer digits when the
  // value survives re-parsing (keeps hand-written "0.5" canonical).
  for (int prec = 1; prec < 17; ++prec) {
    char probe[32];
    std::snprintf(probe, sizeof probe, "%.*g", prec, x);
    if (std::strtod(probe, nullptr) == x) return probe;
  }
  return buf;
}

const char* driver_token(mpiio::Driver d) {
  switch (d) {
    case mpiio::Driver::ad_ufs: return "ad_ufs";
    case mpiio::Driver::ad_lustre: return "ad_lustre";
    case mpiio::Driver::ad_plfs: return "ad_plfs";
  }
  return "?";
}

void emit_job(std::ostringstream& out, const JobSpec& j) {
  out << "job id=" << j.job_id << " kind=" << j.kind_name();
  if (!j.app.empty()) out << " app=" << j.app;
  out << " arrival=" << fmt_double(j.arrival);
  switch (j.kind) {
    case JobKind::ior:
    case JobKind::plfs:
      out << " nprocs=" << j.nprocs
          << " block=" << fmt_bytes(j.ior.block_size)
          << " transfer=" << fmt_bytes(j.ior.transfer_size)
          << " segments=" << j.ior.segment_count
          << " collective=" << (j.ior.use_collective ? 1 : 0)
          << " write=" << (j.ior.write_file ? 1 : 0)
          << " read=" << (j.ior.read_file ? 1 : 0)
          << " fpp=" << (j.ior.file_per_process ? 1 : 0)
          << " reorder=" << j.ior.reorder_tasks
          << " stripes=" << j.ior.hints.striping_factor
          << " stripe_size=" << fmt_bytes(j.ior.hints.striping_unit);
      if (j.kind == JobKind::ior) {
        out << " driver=" << driver_token(j.ior.hints.driver);
      }
      out << " file=" << j.ior.test_file;
      break;
    case JobKind::probe_writer:
      out << " nprocs=" << j.nprocs << " bytes=" << fmt_bytes(j.bytes)
          << " transfer=" << fmt_bytes(j.transfer_size)
          << " target=" << j.target_ost;
      break;
    case JobKind::noise:
      out << " bytes=" << fmt_bytes(j.bytes)
          << " transfer=" << fmt_bytes(j.transfer_size)
          << " stripes=" << j.stripes
          << " stripe_size=" << fmt_bytes(j.stripe_size);
      break;
  }
  out << "\n";
}

// -- parsing ----------------------------------------------------------------

struct LineCtx {
  std::string_view origin;
  std::size_t line = 0;

  [[noreturn]] void fail(const std::string& what) const {
    throw UsageError(std::string(origin) + ":" + std::to_string(line) + ": " +
                     what);
  }

  /// Run a strict cli parser for one field, prefixing its diagnostic with
  /// origin:line.
  template <typename F>
  auto field(std::string_view key, F&& parse) const {
    try {
      return parse("field '" + std::string(key) + "'");
    } catch (const UsageError& e) {
      fail(e.what());
    }
  }
};

struct Token {
  std::string_view key;
  std::string_view value;
};

std::vector<Token> tokenize(std::string_view rest, const LineCtx& ctx) {
  std::vector<Token> tokens;
  std::size_t pos = 0;
  while (pos < rest.size()) {
    while (pos < rest.size() && (rest[pos] == ' ' || rest[pos] == '\t')) ++pos;
    if (pos >= rest.size()) break;
    std::size_t end = pos;
    while (end < rest.size() && rest[end] != ' ' && rest[end] != '\t') ++end;
    const std::string_view token = rest.substr(pos, end - pos);
    const std::size_t eq = token.find('=');
    if (eq == std::string_view::npos || eq == 0) {
      ctx.fail("expected key=value, got '" + std::string(token) + "'");
    }
    tokens.push_back({token.substr(0, eq), token.substr(eq + 1)});
    pos = end;
  }
  return tokens;
}

bool parse_bool(const LineCtx& ctx, std::string_view key,
                std::string_view value) {
  if (value == "0") return false;
  if (value == "1") return true;
  ctx.fail("field '" + std::string(key) + "': expected 0 or 1: '" +
           std::string(value) + "'");
}

JobKind parse_kind(const LineCtx& ctx, std::string_view value) {
  if (value == "ior") return JobKind::ior;
  if (value == "plfs") return JobKind::plfs;
  if (value == "probe") return JobKind::probe_writer;
  if (value == "noise") return JobKind::noise;
  ctx.fail("field 'kind': expected one of: ior, plfs, probe, noise: '" +
           std::string(value) + "'");
}

mpiio::Driver parse_driver(const LineCtx& ctx, std::string_view value) {
  if (value == "ad_ufs") return mpiio::Driver::ad_ufs;
  if (value == "ad_lustre") return mpiio::Driver::ad_lustre;
  ctx.fail("field 'driver': expected one of: ad_ufs, ad_lustre (kind=plfs "
           "implies ad_plfs): '" + std::string(value) + "'");
}

JobSpec parse_job(const LineCtx& ctx, std::string_view rest) {
  namespace cli = harness::cli;
  const std::vector<Token> tokens = tokenize(rest, ctx);

  // Pass 1: the discriminators (kind decides which keys are legal).
  JobSpec j;
  bool have_id = false, have_kind = false;
  for (const Token& t : tokens) {
    if (t.key == "id") {
      j.job_id = static_cast<lustre::sched::JobId>(
          ctx.field("id", [&](const std::string& f) {
            return cli::parse_uint(f, t.value);
          }));
      have_id = true;
    } else if (t.key == "kind") {
      j.kind = parse_kind(ctx, t.value);
      have_kind = true;
    }
  }
  if (!have_id) ctx.fail("job line missing required field 'id'");
  if (!have_kind) ctx.fail("job line missing required field 'kind'");
  if (j.kind == JobKind::plfs) j.ior.hints.driver = mpiio::Driver::ad_plfs;

  // Pass 2: everything else, with duplicate and kind-validity checks.
  std::set<std::string_view> seen;
  const bool iorish = j.kind == JobKind::ior || j.kind == JobKind::plfs;
  for (const Token& t : tokens) {
    if (!seen.insert(t.key).second) {
      ctx.fail("duplicate field '" + std::string(t.key) + "'");
    }
    const auto key = t.key;
    const auto value = t.value;
    const auto uint_field = [&] {
      return ctx.field(key, [&](const std::string& f) {
        return cli::parse_uint(f, value);
      });
    };
    const auto int_field = [&] {
      return ctx.field(key, [&](const std::string& f) {
        return cli::parse_int(f, value);
      });
    };
    const auto bytes_field = [&] {
      return ctx.field(key, [&](const std::string& f) {
        return cli::parse_bytes(f, value);
      });
    };
    if (key == "id" || key == "kind") {
      continue;
    } else if (key == "app") {
      j.app = std::string(value);
    } else if (key == "arrival") {
      j.arrival = ctx.field(key, [&](const std::string& f) {
        return cli::parse_double(f, value);
      });
      if (j.arrival < 0.0) ctx.fail("field 'arrival': must be non-negative");
    } else if (key == "nprocs" && j.kind != JobKind::noise) {
      j.nprocs = static_cast<int>(int_field());
    } else if (key == "block" && iorish) {
      j.ior.block_size = bytes_field();
    } else if (key == "transfer") {
      if (iorish) {
        j.ior.transfer_size = bytes_field();
      } else {
        j.transfer_size = bytes_field();
      }
    } else if (key == "segments" && iorish) {
      j.ior.segment_count = static_cast<std::uint32_t>(uint_field());
    } else if (key == "collective" && iorish) {
      j.ior.use_collective = parse_bool(ctx, key, value);
    } else if (key == "write" && iorish) {
      j.ior.write_file = parse_bool(ctx, key, value);
    } else if (key == "read" && iorish) {
      j.ior.read_file = parse_bool(ctx, key, value);
    } else if (key == "fpp" && iorish) {
      j.ior.file_per_process = parse_bool(ctx, key, value);
    } else if (key == "reorder" && iorish) {
      j.ior.reorder_tasks = static_cast<int>(int_field());
    } else if (key == "stripes" && iorish) {
      j.ior.hints.striping_factor = static_cast<std::uint32_t>(uint_field());
    } else if (key == "stripes" && j.kind == JobKind::noise) {
      j.stripes = static_cast<std::uint32_t>(uint_field());
    } else if (key == "stripe_size" && iorish) {
      j.ior.hints.striping_unit = bytes_field();
    } else if (key == "stripe_size" && j.kind == JobKind::noise) {
      j.stripe_size = bytes_field();
    } else if (key == "driver" && j.kind == JobKind::ior) {
      j.ior.hints.driver = parse_driver(ctx, value);
    } else if (key == "file" && iorish) {
      j.ior.test_file = std::string(value);
    } else if (key == "bytes" &&
               (j.kind == JobKind::probe_writer || j.kind == JobKind::noise)) {
      j.bytes = bytes_field();
    } else if (key == "target" && j.kind == JobKind::probe_writer) {
      j.target_ost = static_cast<std::int32_t>(int_field());
    } else {
      ctx.fail("field '" + std::string(key) + "': unknown or not valid for "
               "kind=" + std::string(j.kind_name()));
    }
  }
  j.ior.job_id = j.job_id;
  return j;
}

}  // namespace

JobLog parse_joblog(std::string_view text, std::string_view origin) {
  JobLog log;
  LineCtx ctx{origin, 0};
  bool saw_header = false, saw_meta = false;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const std::size_t nl = text.find('\n', pos);
    const std::string_view line =
        text.substr(pos, nl == std::string_view::npos ? text.size() - pos
                                                      : nl - pos);
    pos = nl == std::string_view::npos ? text.size() + 1 : nl + 1;
    ++ctx.line;

    if (!saw_header) {
      if (line != kHeader) {
        ctx.fail("expected header '" + std::string(kHeader) + "'");
      }
      saw_header = true;
      continue;
    }
    if (line.empty() || line[0] == '#') continue;
    if (line.rfind("meta", 0) == 0 &&
        (line.size() == 4 || line[4] == ' ' || line[4] == '\t')) {
      if (saw_meta) ctx.fail("duplicate meta line");
      if (!log.jobs.empty()) ctx.fail("meta line must precede job lines");
      saw_meta = true;
      for (const Token& t : tokenize(line.substr(4), ctx)) {
        if (t.key == "ppn") {
          log.procs_per_node = static_cast<int>(
              ctx.field("ppn", [&](const std::string& f) {
                return harness::cli::parse_int(f, t.value);
              }));
          if (log.procs_per_node < 1) {
            ctx.fail("field 'ppn': must be positive");
          }
        } else {
          ctx.fail("field '" + std::string(t.key) + "': unknown meta key");
        }
      }
      continue;
    }
    if (line.rfind("job", 0) == 0 &&
        (line.size() == 3 || line[3] == ' ' || line[3] == '\t')) {
      log.jobs.push_back(parse_job(ctx, line.substr(3)));
      continue;
    }
    ctx.fail("expected 'job', 'meta' or '#' comment, got '" +
             std::string(line.substr(0, 32)) + "'");
  }
  if (!saw_header) {
    ctx.line = 1;
    ctx.fail("empty log: expected header '" + std::string(kHeader) + "'");
  }
  for (std::size_t i = 0; i < log.jobs.size(); ++i) {
    log.jobs[i].validate(i);
  }
  return log;
}

JobLog load_joblog(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  PFSC_REQUIRE(in.good(), "replay: cannot open joblog '" + path + "'");
  std::ostringstream buf;
  buf << in.rdbuf();
  return parse_joblog(buf.str(), path);
}

std::string emit_joblog(const JobLog& log) {
  std::ostringstream out;
  out << kHeader << "\n";
  out << "meta ppn=" << log.procs_per_node << "\n";
  for (const JobSpec& j : log.jobs) emit_job(out, j);
  return out.str();
}

harness::Scenario to_scenario(const JobLog& log) {
  harness::Scenario s = harness::Scenario::from_jobs(log.jobs);
  s.procs_per_node = log.procs_per_node;
  s.validate();
  return s;
}

JobLog from_scenario(const harness::Scenario& scenario) {
  JobLog log;
  log.procs_per_node = scenario.procs_per_node;
  log.jobs = scenario.jobs_desugared();
  return log;
}

}  // namespace pfsc::replay
