#include "replay/fleet.hpp"

#include <cmath>

#include "harness/cli.hpp"
#include "support/rng.hpp"

namespace pfsc::replay {

namespace {

using harness::JobKind;
using harness::JobSpec;

/// One archetype: fills everything but id/app/arrival. `rng` jitters the
/// shape (segment counts, rank counts) so a fleet is not n clones.
using TemplateFn = JobSpec (*)(Rng& rng);

// Template rank counts stay modest: the MPI world must hold the whole
// fleet at once (sum of nprocs <= nodes x cores_per_node), and a
// 1000-job fleet on the default platform leaves ~19 ranks/job.

JobSpec ior_template(Rng& rng) {
  JobSpec j;
  j.kind = JobKind::ior;
  j.nprocs = 8 << rng.uniform(2);  // 8..16 ranks
  j.ior.block_size = 4_MiB;
  j.ior.transfer_size = 1_MiB;
  j.ior.segment_count = static_cast<std::uint32_t>(2 + rng.uniform(4));
  j.ior.hints.driver = mpiio::Driver::ad_lustre;
  j.ior.hints.striping_factor = 4;
  j.ior.hints.striping_unit = 1_MiB;
  return j;
}

JobSpec checkpoint_template(Rng& rng) {
  JobSpec j;
  j.kind = JobKind::ior;
  j.nprocs = 16 << rng.uniform(2);  // 16..32 ranks
  j.ior.block_size = 16_MiB;
  j.ior.transfer_size = 4_MiB;
  j.ior.segment_count = 1;
  j.ior.hints.driver = mpiio::Driver::ad_lustre;
  j.ior.hints.striping_factor = 16;
  j.ior.hints.striping_unit = 4_MiB;
  return j;
}

JobSpec plfs_template(Rng& rng) {
  JobSpec j;
  j.kind = JobKind::plfs;
  j.nprocs = 8 << rng.uniform(2);  // 8..16 ranks
  j.ior.block_size = 4_MiB;
  j.ior.transfer_size = 1_MiB;
  j.ior.segment_count = static_cast<std::uint32_t>(1 + rng.uniform(2));
  j.ior.hints.driver = mpiio::Driver::ad_plfs;
  return j;
}

JobSpec mdstorm_template(Rng& rng) {
  JobSpec j;
  j.kind = JobKind::ior;
  j.nprocs = 8 << rng.uniform(2);  // 8..16 ranks
  j.ior.block_size = 256_KiB;
  j.ior.transfer_size = 64_KiB;
  j.ior.segment_count = 1;
  j.ior.use_collective = false;     // independent tiny writes
  j.ior.file_per_process = true;    // one file per rank: create storm
  j.ior.hints.driver = mpiio::Driver::ad_lustre;
  j.ior.hints.striping_factor = 1;
  j.ior.hints.striping_unit = 1_MiB;
  return j;
}

struct Template {
  const char* name;
  TemplateFn make;
};

constexpr Template kTemplates[] = {
    {"ior", ior_template},
    {"checkpoint", checkpoint_template},
    {"plfs", plfs_template},
    {"mdstorm", mdstorm_template},
};

const Template* find_template(std::string_view name) {
  for (const Template& t : kTemplates) {
    if (name == t.name) return &t;
  }
  return nullptr;
}

}  // namespace

const std::string& fleet_template_names() {
  static const std::string names = [] {
    std::string out;
    for (const Template& t : kTemplates) {
      if (!out.empty()) out += ", ";
      out += t.name;
    }
    return out;
  }();
  return names;
}

std::vector<MixEntry> parse_fleet_mix(std::string_view flag,
                                      std::string_view text) {
  std::vector<MixEntry> mix;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    std::size_t comma = text.find(',', pos);
    if (comma == std::string_view::npos) comma = text.size();
    const std::string_view entry = text.substr(pos, comma - pos);
    pos = comma + 1;
    if (entry.empty()) {
      throw UsageError(std::string(flag) + ": empty mix entry in '" +
                       std::string(text) + "'");
    }
    const std::size_t colon = entry.find(':');
    MixEntry e;
    e.name = std::string(entry.substr(0, colon));
    if (find_template(e.name) == nullptr) {
      throw UsageError(std::string(flag) + ": unknown template '" + e.name +
                       "': expected one of: " + fleet_template_names());
    }
    if (colon != std::string_view::npos) {
      e.weight = static_cast<unsigned>(harness::cli::parse_uint(
          std::string(flag) + " weight for '" + e.name + "'",
          entry.substr(colon + 1)));
      PFSC_REQUIRE(e.weight > 0, std::string(flag) + ": weight for '" +
                                     e.name + "' must be positive");
    }
    mix.push_back(std::move(e));
    if (comma == text.size()) break;
  }
  PFSC_REQUIRE(!mix.empty(),
               std::string(flag) + ": mix needs at least one entry");
  return mix;
}

JobLog generate_fleet(const FleetConfig& cfg) {
  PFSC_REQUIRE(cfg.jobs > 0, "fleet: jobs must be positive");
  PFSC_REQUIRE(cfg.span >= 0.0, "fleet: span must be non-negative");
  const std::vector<MixEntry> mix = parse_fleet_mix("fleet mix", cfg.mix);
  std::uint64_t total_weight = 0;
  for (const MixEntry& e : mix) total_weight += e.weight;

  Rng rng(cfg.seed);
  JobLog log;
  log.procs_per_node = cfg.procs_per_node;
  // Poisson process: exponential inter-arrival gaps with mean span/jobs.
  const double mean_gap =
      cfg.span > 0.0 ? cfg.span / static_cast<double>(cfg.jobs) : 0.0;
  Seconds clock = 0.0;
  for (unsigned i = 0; i < cfg.jobs; ++i) {
    std::uint64_t pick = rng.uniform(total_weight);
    const MixEntry* chosen = &mix.front();
    for (const MixEntry& e : mix) {
      if (pick < e.weight) {
        chosen = &e;
        break;
      }
      pick -= e.weight;
    }
    JobSpec j = find_template(chosen->name)->make(rng);
    j.job_id = static_cast<lustre::sched::JobId>(i + 1);
    j.ior.job_id = j.job_id;
    j.app = chosen->name;
    if (mean_gap > 0.0) {
      clock += -std::log(1.0 - rng.uniform_double()) * mean_gap;
      j.arrival = clock;
    }
    j.ior.test_file =
        "/fleet/" + j.app + "." + std::to_string(j.job_id);
    log.jobs.push_back(std::move(j));
  }
  return log;
}

}  // namespace pfsc::replay
