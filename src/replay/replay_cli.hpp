// CLI surface for replay and fleet generation.
//
// Registered on top of harness::cli::scenario_flags by drivers that want
// workload replay (pfsc_cli does). The flags only *record* the request;
// apply() resolves it into the scenario's job list after the whole command
// line has parsed, so flag order never matters (--fleet_seed after --fleet
// works). Values parse strictly at flag time — an unknown --fleet_mix
// template is a UsageError listing the valid choices, consistent with
// --link_policy.
#pragma once

#include "harness/cli.hpp"
#include "replay/fleet.hpp"
#include "replay/log.hpp"

namespace pfsc::replay {

struct ReplayOptions {
  std::string replay_log;  // --replay: joblog path ("" = off)
  FleetConfig fleet;       // --fleet/--fleet_mix/--fleet_seed/--fleet_span
  bool fleet_requested = false;

  bool active() const { return !replay_log.empty() || fleet_requested; }

  /// Resolve --replay / --fleet into `scenario.job_list` (and
  /// procs_per_node for replayed logs). No-op when neither flag was given;
  /// UsageError when both were.
  void apply(harness::Scenario& scenario) const;
};

/// Register --replay (alias --replay_log), --fleet (alias --fleet_jobs),
/// --fleet_mix (alias --fleet-mix), --fleet_seed and --fleet_span.
void add_replay_flags(harness::cli::FlagTable& table, ReplayOptions& opts);

}  // namespace pfsc::replay
