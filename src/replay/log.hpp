// Per-job I/O log: the replay subsystem's on-disk workload description.
//
// A joblog is a Darshan-flavoured plain-text record of a fleet: one `job`
// line per application run, carrying the fields the simulator needs to
// re-submit it (kind, JobId, arrival offset, rank count, access pattern,
// layout). The format is line-oriented and strict — every line is
// `key=value` tokens, unknown keys and malformed values are UsageErrors
// naming the file, line and field — so a log survives hand-editing and
// diffing, and `emit_joblog(parse_joblog(text))` is canonical (fixed key
// order, byte sizes re-suffixed), which is what the round-trip tests pin.
//
//   #PFSC-JOBLOG v1
//   meta ppn=16
//   job id=0 kind=ior app=vasp arrival=0 nprocs=32 block=4M transfer=1M
//       segments=10 ... stripes=16 stripe_size=4M driver=ad_lustre
//       file=/ior.dat.0                    (one physical line per job)
//   job id=1 kind=probe arrival=0.5 nprocs=4 bytes=16M transfer=1M target=-1
//   job id=65536 kind=noise arrival=0 bytes=256M transfer=1M stripes=2
//       stripe_size=1M
//
// `replay::to_scenario` lowers a log onto the harness job list;
// `replay::from_scenario` round-trips any Scenario (legacy enum shapes
// desugar first, so a multi run can be exported and replayed bit-for-bit).
#pragma once

#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "harness/scenario.hpp"

namespace pfsc::replay {

struct JobLog {
  /// Ranks per simulated node for every job (the harness is one world).
  int procs_per_node = 16;
  /// One entry per `job` line, in file order.
  std::vector<harness::JobSpec> jobs;
};

/// Parse a joblog. `origin` names the source in diagnostics (a path, or
/// "<string>" for tests). Throws UsageError("origin:line: ...") on any
/// malformed header, unknown key, duplicate key, missing required field,
/// value that fails strict parsing, or field invalid for the job kind.
JobLog parse_joblog(std::string_view text, std::string_view origin);

/// Read and parse a joblog file; diagnostics carry the path.
JobLog load_joblog(const std::string& path);

/// Canonical emission: fixed key order per kind, K/M/G byte suffixes where
/// exact, `app=` only when set. emit(parse(emit(x))) == emit(x).
std::string emit_joblog(const JobLog& log);

/// Lower a log onto the harness: an explicit job-list Scenario.
harness::Scenario to_scenario(const JobLog& log);

/// Export any Scenario as a log (legacy enum shapes desugar to their job
/// lists first, so the export replays bit-for-bit).
JobLog from_scenario(const harness::Scenario& scenario);

}  // namespace pfsc::replay
