// Synthetic fleet generation: a day-in-the-life workload for the simulator.
//
// LASSi-style fleet analysis needs fleets to analyse. generate_fleet()
// draws `jobs` applications from a weighted mix of templates — the
// archetypes the contention literature keeps meeting:
//
//   ior         medium collective writer (the paper's Table II shape)
//   checkpoint  wide burst writer: big blocks, many stripes, short
//   plfs        checkpoint routed through PLFS (ad_plfs, N data files)
//   mdstorm     file-per-process small-file storm (metadata + tiny I/O)
//
// and schedules them as a Poisson arrival process over `span` simulated
// seconds. Everything is drawn from support/rng (xoshiro256**), so a given
// (jobs, mix, seed, span) produces the identical JobLog on every platform
// — the determinism the byte-identical-report tests pin. The result is a
// JobLog, not a Scenario: fleets pass through the same emit/parse/lower
// path as replayed logs (one code path to trust).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "replay/log.hpp"

namespace pfsc::replay {

/// One `name:weight` entry of a --fleet_mix string.
struct MixEntry {
  std::string name;
  unsigned weight = 1;
};

/// Parse "ior:4,checkpoint:2,plfs:1,mdstorm:1". A bare name means weight 1.
/// Unknown template names and malformed weights are UsageErrors listing the
/// valid choices (`flag` names the offending option in the message).
std::vector<MixEntry> parse_fleet_mix(std::string_view flag,
                                      std::string_view text);

/// The template names parse_fleet_mix accepts, comma-joined (for help text).
const std::string& fleet_template_names();

struct FleetConfig {
  unsigned jobs = 200;
  std::string mix = "ior:4,checkpoint:2,plfs:1,mdstorm:1";
  std::uint64_t seed = 0;
  /// Poisson arrival window in simulated seconds. 0 = synchronized start
  /// (every job arrives at t=0, the paper's simultaneous-submission mode).
  Seconds span = 60.0;
  int procs_per_node = 16;
};

/// Deterministically generate a fleet log: `cfg.jobs` jobs drawn from the
/// weighted mix, JobIds 1..jobs, files under "/fleet/". Throws UsageError
/// on an unknown mix entry or jobs == 0.
JobLog generate_fleet(const FleetConfig& cfg);

}  // namespace pfsc::replay
