// Fleet analytics: LASSi-style per-application risk and slowdown.
//
// A post-run pass over one Observation (and, when the run was traced, the
// per-job byte counters of its RunSummary). For each job we compute:
//
//   ideal_mbps  what the job could sustain alone: the minimum of its client
//               ceiling (nprocs x per_process_bw), its layout ceiling
//               (stripes x OST streaming bw) and the fabric.
//   slowdown    ideal_mbps / achieved_mbps — 1.0 means unimpeded, 4x means
//               the job saw a quarter of its solo bandwidth (LASSi's
//               per-application slowdown, computed from the simulation's
//               ground truth instead of estimated from counters).
//   risk_ost    client demand over layout capacity:
//               min(nprocs x per_process_bw, fabric) / (stripes x ost_bw).
//               > 1 means the job over-subscribes the OSTs it touches and
//               is *at risk of* (and a source of) contention — the shape of
//               LASSi's risk metric, which flags applications whose
//               requested load exceeds what their file layout can serve.
//
// Jobs aggregate into per-application rows (by JobSpec::display_app()),
// ranked by mean risk_ost then mean slowdown: the report's top row is the
// application most likely to be hurting (and hurt by) the fleet. Emitted
// as a fixed-width table and as deterministic JSON (insertion-order keys,
// shortest round-trip doubles) so same seed => byte-identical report.
#pragma once

#include <string>
#include <vector>

#include "harness/scenario.hpp"

namespace pfsc::replay {

/// One job's analytics row.
struct JobStats {
  lustre::sched::JobId job_id = 0;
  std::string app;
  harness::JobKind kind = harness::JobKind::ior;
  int nprocs = 1;
  std::uint32_t stripes = 1;   // effective OST spread
  Seconds arrival = 0.0;
  Bytes bytes = 0;             // bytes the job moved (result ground truth)
  Bytes served_bytes = 0;      // OSS-served bytes from the trace (0: untraced)
  double achieved_mbps = 0.0;
  double ideal_mbps = 0.0;
  double slowdown = 1.0;
  double risk_ost = 0.0;

  // -- admission control (empty/zero when the run was not gated) ---------
  std::string admission;       // "admitted" | "delayed" | "detuned"
  Seconds admit_wait = 0.0;    // release time minus arrival at the gate
  std::uint32_t admit_stripes = 0;  // per-file stripes after detuning
};

/// Per-application aggregate over its jobs.
struct AppStats {
  std::string app;
  unsigned jobs = 0;
  int ranks = 0;               // sum of nprocs
  Bytes bytes = 0;
  double mean_achieved_mbps = 0.0;
  double mean_slowdown = 0.0;
  double max_slowdown = 0.0;
  double mean_risk_ost = 0.0;
  double max_risk_ost = 0.0;
};

struct FleetReport {
  std::vector<JobStats> jobs;  // job-list order
  std::vector<AppStats> apps;  // ranked: mean risk desc, mean slowdown desc
  double total_mbps = 0.0;     // sum of per-job headline bandwidth
  double jain_fairness = 1.0;  // Jain's index over per-job achieved MB/s
  unsigned noise_jobs = 0;     // background jobs excluded from the rows

  // -- admission control (Observation::admissions; all zero when off) ----
  bool has_admission = false;  // the run carried an AdmissionController
  unsigned admitted = 0;       // released untouched, without waiting
  unsigned delayed = 0;        // held in the queue before release
  unsigned detuned = 0;        // released with a reduced stripe count
  Seconds total_admit_wait = 0.0;  // summed queue wait across all jobs

  // -- adaptive tuning (Observation::ctrl_actions; empty when --ctrl off) --
  bool has_adaptation = false;  // the run carried a ctrl::Controller
  std::string ctrl_mode;        // "pfl" | "qos" | "full"
  std::vector<ctrl::CtrlAction> adaptations;  // decisions, in time order

  /// Fixed-width ranked table (one row per application + a fleet footer).
  std::string format_table() const;
  /// Deterministic JSON ({"fleet": ..., "apps": [...], "jobs": [...]}).
  std::string to_json() const;
};

/// Analyze one finished run. `platform` supplies the capacity model
/// (per-process, OST streaming and fabric bandwidth) used for the ideal
/// estimates; pass the scenario's platform.
FleetReport analyze_fleet(const harness::Observation& obs,
                          const hw::PlatformParams& platform);

}  // namespace pfsc::replay
