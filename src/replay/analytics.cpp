#include "replay/analytics.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <sstream>

namespace pfsc::replay {

namespace {

using harness::JobKind;
using harness::JobSpec;

std::string fmt_double(double x) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", x);
  for (int prec = 1; prec < 17; ++prec) {
    char probe[32];
    std::snprintf(probe, sizeof probe, "%.*g", prec, x);
    if (std::strtod(probe, nullptr) == x) return probe;
  }
  return buf;
}

std::string json_escape(const std::string& s) {
  std::string out;
  for (const char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out;
}

/// Effective OST spread of one job: how many stripes its layout can keep
/// busy at once.
std::uint32_t effective_stripes(const JobSpec& j,
                                const hw::PlatformParams& p) {
  std::uint32_t per_file = p.default_stripe_count;
  switch (j.kind) {
    case JobKind::probe_writer:
      return 1;  // pinned single-stripe files on one OST
    case JobKind::noise:
      per_file = j.stripes;
      return std::min(per_file, p.ost_count);
    case JobKind::plfs:
      // ad_plfs: one data file of 2 stripes per rank.
      return std::min<std::uint32_t>(
          2u * static_cast<std::uint32_t>(j.nprocs), p.ost_count);
    case JobKind::ior:
      if (j.ior.hints.driver == mpiio::Driver::ad_lustre &&
          j.ior.hints.striping_factor > 0) {
        per_file = std::min(j.ior.hints.striping_factor, p.max_stripe_count);
      }
      if (j.ior.file_per_process) {
        return std::min(per_file * static_cast<std::uint32_t>(j.nprocs),
                        p.ost_count);
      }
      return std::min(per_file, p.ost_count);
  }
  return per_file;
}

double jain(const std::vector<double>& xs) {
  if (xs.empty()) return 1.0;
  double sum = 0.0, sq = 0.0;
  for (const double x : xs) {
    sum += x;
    sq += x * x;
  }
  if (sq == 0.0) return 1.0;
  return sum * sum / (static_cast<double>(xs.size()) * sq);
}

}  // namespace

FleetReport analyze_fleet(const harness::Observation& obs,
                          const hw::PlatformParams& platform) {
  const double per_process = to_mbps(platform.per_process_bw);
  const double fabric = to_mbps(platform.fabric_bw);
  const double ost = to_mbps(platform.ost_disk.sequential_bw);

  FleetReport report;
  std::vector<double> achieved_list;
  std::size_t result_idx = 0;
  for (const JobSpec& spec : obs.jobs) {
    if (spec.kind == JobKind::noise) {
      ++report.noise_jobs;
      continue;
    }
    PFSC_ASSERT(result_idx < obs.per_job.size());
    const ior::Result& res = obs.per_job[result_idx++];

    JobStats js;
    js.job_id = spec.job_id;
    js.app = spec.display_app();
    js.kind = spec.kind;
    js.nprocs = spec.nprocs;
    js.stripes = std::max<std::uint32_t>(1, effective_stripes(spec, platform));
    js.arrival = spec.arrival;
    js.bytes = res.total_bytes;
    if (obs.traced) {
      const auto it = obs.trace_summary.job_bytes.find(spec.job_id);
      if (it != obs.trace_summary.job_bytes.end()) js.served_bytes = it->second;
    }
    const bool writes = spec.kind == JobKind::probe_writer || spec.ior.write_file;
    js.achieved_mbps = writes ? res.write_mbps : res.read_mbps;

    const double client_demand =
        std::min(static_cast<double>(spec.nprocs) * per_process, fabric);
    const double layout = static_cast<double>(js.stripes) * ost;
    js.ideal_mbps = std::min(client_demand, layout);
    js.slowdown = js.achieved_mbps > 0.0 ? js.ideal_mbps / js.achieved_mbps
                                         : 0.0;
    js.risk_ost = client_demand / layout;

    if (!obs.admissions.empty()) {
      for (const harness::AdmissionRecord& rec : obs.admissions) {
        if (rec.job_id != spec.job_id) continue;
        js.admission = harness::admission_action_name(rec.action);
        js.admit_wait = rec.wait();
        js.admit_stripes = rec.stripes_after;
        break;
      }
    }

    report.total_mbps += js.achieved_mbps;
    achieved_list.push_back(js.achieved_mbps);
    report.jobs.push_back(std::move(js));
  }
  report.jain_fairness = jain(achieved_list);

  report.has_admission = !obs.admissions.empty();
  for (const harness::AdmissionRecord& rec : obs.admissions) {
    switch (rec.action) {
      case harness::AdmissionAction::admitted: ++report.admitted; break;
      case harness::AdmissionAction::delayed: ++report.delayed; break;
      case harness::AdmissionAction::detuned: ++report.detuned; break;
    }
    report.total_admit_wait += rec.wait();
  }

  report.has_adaptation = obs.ctrl_mode != ctrl::CtrlMode::off;
  if (report.has_adaptation) {
    report.ctrl_mode = ctrl::ctrl_mode_name(obs.ctrl_mode);
    report.adaptations = obs.ctrl_actions;
  }

  std::map<std::string, AppStats> by_app;
  for (const JobStats& js : report.jobs) {
    AppStats& a = by_app[js.app];
    a.app = js.app;
    ++a.jobs;
    a.ranks += js.nprocs;
    a.bytes += js.bytes;
    a.mean_achieved_mbps += js.achieved_mbps;
    a.mean_slowdown += js.slowdown;
    a.max_slowdown = std::max(a.max_slowdown, js.slowdown);
    a.mean_risk_ost += js.risk_ost;
    a.max_risk_ost = std::max(a.max_risk_ost, js.risk_ost);
  }
  for (auto& [name, a] : by_app) {
    const auto n = static_cast<double>(a.jobs);
    a.mean_achieved_mbps /= n;
    a.mean_slowdown /= n;
    a.mean_risk_ost /= n;
    report.apps.push_back(a);
  }
  std::sort(report.apps.begin(), report.apps.end(),
            [](const AppStats& x, const AppStats& y) {
              if (x.mean_risk_ost != y.mean_risk_ost) {
                return x.mean_risk_ost > y.mean_risk_ost;
              }
              if (x.mean_slowdown != y.mean_slowdown) {
                return x.mean_slowdown > y.mean_slowdown;
              }
              return x.app < y.app;
            });
  return report;
}

std::string FleetReport::format_table() const {
  std::ostringstream out;
  char line[256];
  std::snprintf(line, sizeof line, "%-12s %5s %7s %10s %12s %17s %15s\n",
                "app", "jobs", "ranks", "GiB", "MB/s(mean)",
                "slowdown(mean/max)", "risk(mean/max)");
  out << line;
  for (const AppStats& a : apps) {
    std::snprintf(line, sizeof line,
                  "%-12s %5u %7d %10.2f %12.1f %8.2f /%7.2f %7.2f /%6.2f\n",
                  a.app.c_str(), a.jobs, a.ranks,
                  static_cast<double>(a.bytes) / static_cast<double>(1_GiB),
                  a.mean_achieved_mbps, a.mean_slowdown, a.max_slowdown,
                  a.mean_risk_ost, a.max_risk_ost);
    out << line;
  }
  std::snprintf(line, sizeof line,
                "fleet: %zu jobs (+%u noise), total %.1f MB/s, jain %.4f\n",
                jobs.size(), noise_jobs, total_mbps, jain_fairness);
  out << line;
  if (has_admission) {
    std::snprintf(line, sizeof line,
                  "admission: %u admitted, %u delayed, %u detuned, "
                  "total wait %.3f s\n",
                  admitted, delayed, detuned, total_admit_wait);
    out << line;
  }
  if (has_adaptation) {
    std::snprintf(line, sizeof line, "adaptation: mode %s, %zu actions\n",
                  ctrl_mode.c_str(), adaptations.size());
    out << line;
    for (const ctrl::CtrlAction& a : adaptations) {
      std::snprintf(line, sizeof line, "  t=%8.3f  %-10s %-14s %s\n", a.at,
                    a.endpoint.c_str(), a.rule.c_str(), a.detail.c_str());
      out << line;
    }
  }
  return out.str();
}

std::string FleetReport::to_json() const {
  std::ostringstream out;
  out << "{\"fleet\":{\"jobs\":" << jobs.size()
      << ",\"noise_jobs\":" << noise_jobs
      << ",\"total_mbps\":" << fmt_double(total_mbps)
      << ",\"jain_fairness\":" << fmt_double(jain_fairness);
  // Emitted only for gated runs, so ungated reports stay byte-identical to
  // their pre-admission goldens.
  if (has_admission) {
    out << ",\"admission\":{\"admitted\":" << admitted
        << ",\"delayed\":" << delayed << ",\"detuned\":" << detuned
        << ",\"total_wait\":" << fmt_double(total_admit_wait) << "}";
  }
  // Same deal for the adaptive controller: the block only exists when the
  // run carried one, so --ctrl off reports match their goldens byte-for-byte.
  if (has_adaptation) {
    out << ",\"adaptation\":{\"mode\":\"" << ctrl_mode
        << "\",\"actions\":" << adaptations.size() << ",\"log\":[";
    for (std::size_t i = 0; i < adaptations.size(); ++i) {
      const ctrl::CtrlAction& a = adaptations[i];
      if (i > 0) out << ",";
      out << "{\"at\":" << fmt_double(a.at) << ",\"endpoint\":\""
          << json_escape(a.endpoint) << "\",\"rule\":\"" << json_escape(a.rule)
          << "\",\"detail\":\"" << json_escape(a.detail) << "\"}";
    }
    out << "]}";
  }
  out << "},\"apps\":[";
  for (std::size_t i = 0; i < apps.size(); ++i) {
    const AppStats& a = apps[i];
    if (i > 0) out << ",";
    out << "{\"app\":\"" << json_escape(a.app) << "\",\"jobs\":" << a.jobs
        << ",\"ranks\":" << a.ranks << ",\"bytes\":" << a.bytes
        << ",\"mean_achieved_mbps\":" << fmt_double(a.mean_achieved_mbps)
        << ",\"mean_slowdown\":" << fmt_double(a.mean_slowdown)
        << ",\"max_slowdown\":" << fmt_double(a.max_slowdown)
        << ",\"mean_risk_ost\":" << fmt_double(a.mean_risk_ost)
        << ",\"max_risk_ost\":" << fmt_double(a.max_risk_ost) << "}";
  }
  out << "],\"jobs\":[";
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    const JobStats& j = jobs[i];
    if (i > 0) out << ",";
    out << "{\"id\":" << j.job_id << ",\"app\":\"" << json_escape(j.app)
        << "\",\"kind\":\"" << harness::job_kind_name(j.kind)
        << "\",\"nprocs\":" << j.nprocs << ",\"stripes\":" << j.stripes
        << ",\"arrival\":" << fmt_double(j.arrival)
        << ",\"bytes\":" << j.bytes
        << ",\"served_bytes\":" << j.served_bytes
        << ",\"achieved_mbps\":" << fmt_double(j.achieved_mbps)
        << ",\"ideal_mbps\":" << fmt_double(j.ideal_mbps)
        << ",\"slowdown\":" << fmt_double(j.slowdown)
        << ",\"risk_ost\":" << fmt_double(j.risk_ost);
    if (has_admission) {
      out << ",\"admission\":\"" << json_escape(j.admission)
          << "\",\"admit_wait\":" << fmt_double(j.admit_wait)
          << ",\"admit_stripes\":" << j.admit_stripes;
    }
    out << "}";
  }
  out << "]}";
  return out.str();
}

}  // namespace pfsc::replay
