#include "replay/replay_cli.hpp"

namespace pfsc::replay {

void ReplayOptions::apply(harness::Scenario& scenario) const {
  if (!replay_log.empty() && fleet_requested) {
    throw UsageError("--replay and --fleet are mutually exclusive");
  }
  if (!replay_log.empty()) {
    const JobLog log = load_joblog(replay_log);
    scenario.job_list = log.jobs;
    scenario.workload = harness::Workload::jobs;
    scenario.procs_per_node = log.procs_per_node;
  } else if (fleet_requested) {
    FleetConfig cfg = fleet;
    cfg.procs_per_node = scenario.procs_per_node;
    scenario.job_list = generate_fleet(cfg).jobs;
    scenario.workload = harness::Workload::jobs;
  }
}

void add_replay_flags(harness::cli::FlagTable& table, ReplayOptions& opts) {
  table.bind("--replay", opts.replay_log,
             "replay a PFSC joblog (path; see DESIGN.md §11)");
  table.alias("--replay_log");
  table.add("--fleet", "N", "generate a synthetic fleet of N jobs",
            [&opts](std::string_view text) {
              opts.fleet.jobs = static_cast<unsigned>(
                  harness::cli::parse_uint("--fleet", text));
              if (opts.fleet.jobs == 0) {
                throw UsageError("--fleet: needs at least one job");
              }
              opts.fleet_requested = true;
            });
  table.alias("--fleet_jobs");
  table.add("--fleet_mix", "MIX",
            "weighted fleet templates (" + fleet_template_names() +
                "), e.g. ior:4,checkpoint:2",
            [&opts](std::string_view text) {
              // Validate eagerly so a typo fails at the flag, listing the
              // valid template names.
              (void)parse_fleet_mix("--fleet_mix", text);
              opts.fleet.mix = std::string(text);
            });
  table.alias("--fleet-mix");
  table.bind("--fleet_seed", opts.fleet.seed,
             "fleet generator seed (independent of --base_seed)");
  table.bind("--fleet_span", opts.fleet.span,
             "fleet arrival window in simulated seconds (0: all at t=0)");
  table.alias("--fleet-span");
}

}  // namespace pfsc::replay
