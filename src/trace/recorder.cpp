#include "trace/recorder.hpp"

namespace pfsc::trace {

const char* cat_name(Cat c) {
  switch (c) {
    case Cat::engine: return "engine";
    case Cat::link: return "link";
    case Cat::disk: return "disk";
    case Cat::client: return "client";
    case Cat::sched: return "sched";
    case Cat::plfs: return "plfs";
    case Cat::sampler: return "sampler";
  }
  return "?";
}

const char* trace_mode_name(TraceMode mode) {
  switch (mode) {
    case TraceMode::off: return "off";
    case TraceMode::summary: return "summary";
    case TraceMode::full: return "full";
  }
  return "?";
}

unsigned trace_categories(TraceMode mode) {
  switch (mode) {
    case TraceMode::off: return 0;
    case TraceMode::summary: return kSummaryCats;
    case TraceMode::full: return kAllCats;
  }
  return 0;
}

bool parse_trace_mode(std::string_view name, TraceMode& out) {
  if (name == "off") {
    out = TraceMode::off;
  } else if (name == "summary") {
    out = TraceMode::summary;
  } else if (name == "full") {
    out = TraceMode::full;
  } else {
    return false;
  }
  return true;
}

Recorder::Recorder(std::size_t capacity, unsigned categories,
                   std::uint32_t engine_sample_every)
    : capacity_(capacity),
      categories_(categories),
      engine_sample_every_(engine_sample_every) {
  PFSC_REQUIRE(capacity >= 1, "Recorder: capacity must be positive");
  PFSC_REQUIRE(engine_sample_every >= 1,
               "Recorder: engine_sample_every must be positive");
  events_.reserve(capacity_ < 4096 ? capacity_ : 4096);
}

TrackId Recorder::track(std::string_view name) {
  if (const auto it = track_ids_.find(name); it != track_ids_.end()) {
    return it->second;
  }
  PFSC_REQUIRE(tracks_.size() < 65535, "Recorder: too many tracks");
  // The map key must view storage that survives vector reallocation, so it
  // views the interned copy, not tracks_'s element.
  const char* stable = intern(name);
  const auto id = static_cast<TrackId>(tracks_.size());
  tracks_.emplace_back(name);
  track_ids_.emplace(std::string_view(stable), id);
  return id;
}

const char* Recorder::intern(std::string_view name) {
  if (const auto it = intern_ids_.find(name); it != intern_ids_.end()) {
    return it->second;
  }
  interned_.emplace_back(name);
  const char* stable = interned_.back().c_str();
  intern_ids_.emplace(std::string_view(interned_.back()), stable);
  return stable;
}

}  // namespace pfsc::trace
