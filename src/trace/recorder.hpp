// Event-driven trace recording: the substrate every instrumented layer
// emits into.
//
// A trace::Recorder is a bounded buffer of typed events — spans (begin/end
// pairs, sync or async), instants, and counters — stamped with simulated
// time and grouped onto named tracks ("fabric", "ost3.disk",
// "client.rank12", ...). Layers reach it through sim::Engine::recorder():
// a null pointer when tracing is off, so every instrumentation hook costs
// one pointer test on the hot path and nothing else. With a recorder
// attached, a per-category bitmask (Cat) selects which layers record, so
// `--trace summary` can keep only the cheap scheduler/sampler counters
// while `--trace full` records everything.
//
// Overflow policy: the buffer is bounded (default 1 Mi events, ~56 MiB);
// once full, NEW events are dropped and counted (dropped()). Keeping the
// oldest prefix — rather than a circular overwrite — preserves matched
// span begin/end pairs in the kept window and keeps the policy
// deterministic; exporters report the drop count so a truncated trace is
// never mistaken for a complete one.
//
// This header depends only on support/ (no sim/lustre), so the low layers
// can include it without a dependency cycle: sim::Engine forward-declares
// Recorder and links pfsc_trace_core.
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "support/error.hpp"
#include "support/units.hpp"

namespace pfsc::trace {

/// Which layer an event came from; doubles as the enable bitmask index.
enum class Cat : std::uint8_t {
  engine,   // sim::Engine dispatch batches
  link,     // sim::LinkModel flow arrival/departure, rate changes
  disk,     // hw::DiskModel stream open/close, hot window, service
  client,   // lustre::Client RPC lifecycle
  sched,    // sched::Scheduler enqueue/grant/complete
  plfs,     // plfs per-rank data-file writes
  sampler,  // trace::Sampler periodic counter mirror
};
inline constexpr std::size_t kCatCount = 7;

constexpr unsigned cat_bit(Cat c) { return 1u << static_cast<unsigned>(c); }
inline constexpr unsigned kAllCats = (1u << kCatCount) - 1;
/// The cheap always-consistent subset backing `--trace summary`.
inline constexpr unsigned kSummaryCats = cat_bit(Cat::sched) | cat_bit(Cat::sampler);

const char* cat_name(Cat c);

enum class EventKind : std::uint8_t {
  span_begin,  // id == 0: sync (nested per track); id != 0: async
  span_end,
  instant,
  counter,  // value carries the sampled quantity
};

using TrackId = std::uint16_t;

/// One recorded event. `name` must point at storage that outlives the
/// recorder: a string literal, or a string interned via Recorder::intern().
struct Event {
  Seconds t = 0.0;
  const char* name = nullptr;
  double value = 0.0;
  std::uint64_t id = 0;       // async span correlation id (0 = sync/none)
  std::int64_t arg0 = 0;      // layer-defined (job, stream, ost, ...)
  std::int64_t arg1 = 0;
  TrackId track = 0;
  EventKind kind = EventKind::instant;
  Cat cat = Cat::engine;
};

// -- run configuration ------------------------------------------------------

enum class TraceMode : std::uint8_t { off, summary, full };

const char* trace_mode_name(TraceMode mode);
/// Category enable mask a mode implies (off -> 0).
unsigned trace_categories(TraceMode mode);
/// Parse "off" / "summary" / "full" into `out`; false on anything else.
bool parse_trace_mode(std::string_view name, TraceMode& out);

/// How a run is traced; carried by harness::Scenario so every bench and
/// example can emit traces without code changes (--trace / --trace_out /
/// --trace_interval, or the PFSC_TRACE* environment knobs).
struct TraceConfig {
  TraceMode mode = TraceMode::off;
  /// Output path ("" = keep in memory only). "{seed}" is replaced by the
  /// run's seed — required to keep ParallelRunner repetitions from
  /// clobbering each other. ".csv" writes the counter CSV; any other
  /// suffix writes Chrome trace_event JSON (full) or the summary table.
  std::string out;
  /// > 0: attach a periodic sampler mirroring its series into the
  /// recorder as Cat::sampler counters.
  Seconds interval = 0.0;
  /// Event-buffer bound; see the overflow policy in the file header.
  std::size_t capacity = std::size_t{1} << 20;
  /// Engine dispatch spans are batched: one span per this many dispatched
  /// events, so the engine layer cannot drown every other category.
  std::uint32_t engine_sample_every = 1024;
  /// Nonzero: category mask override (cat_bit combinations) replacing the
  /// mask the mode implies. The sharded determinism tests use it to drop
  /// Cat::engine, whose per-domain dispatch batching is the one layer that
  /// legitimately differs across --sim_domains values.
  unsigned categories = 0;
};

// -- recorder ---------------------------------------------------------------

class Recorder {
 public:
  explicit Recorder(std::size_t capacity = TraceConfig{}.capacity,
                    unsigned categories = kAllCats,
                    std::uint32_t engine_sample_every =
                        TraceConfig{}.engine_sample_every);
  explicit Recorder(const TraceConfig& cfg)
      : Recorder(cfg.capacity,
                 cfg.categories != 0 ? cfg.categories
                                     : trace_categories(cfg.mode),
                 cfg.engine_sample_every) {}

  Recorder(const Recorder&) = delete;
  Recorder& operator=(const Recorder&) = delete;

  bool enabled(Cat c) const { return (categories_ & cat_bit(c)) != 0; }
  std::uint32_t engine_sample_every() const { return engine_sample_every_; }

  /// Register (or look up) a track by name; ids are dense and assigned in
  /// first-use order, which is deterministic under a deterministic engine.
  TrackId track(std::string_view name);
  const std::vector<std::string>& tracks() const { return tracks_; }

  /// Stable storage for a dynamically-built event name (per-series sampler
  /// names, ...). Interning the same text twice returns the same pointer.
  const char* intern(std::string_view name);

  /// Fresh nonzero correlation id for an async span.
  std::uint64_t next_id() { return ++last_id_; }

  // -- emission (no-ops when the event's category is disabled) ----------
  void begin(Cat cat, TrackId track, const char* name, Seconds t,
             std::uint64_t id = 0, std::int64_t arg0 = 0,
             std::int64_t arg1 = 0, double value = 0.0) {
    push({t, name, value, id, arg0, arg1, track, EventKind::span_begin, cat});
  }
  void end(Cat cat, TrackId track, const char* name, Seconds t,
           std::uint64_t id = 0, std::int64_t arg0 = 0, std::int64_t arg1 = 0,
           double value = 0.0) {
    push({t, name, value, id, arg0, arg1, track, EventKind::span_end, cat});
  }
  void instant(Cat cat, TrackId track, const char* name, Seconds t,
               std::int64_t arg0 = 0, std::int64_t arg1 = 0) {
    push({t, name, 0.0, 0, arg0, arg1, track, EventKind::instant, cat});
  }
  void counter(Cat cat, TrackId track, const char* name, Seconds t,
               double value) {
    push({t, name, value, 0, 0, 0, track, EventKind::counter, cat});
  }

  // -- inspection -------------------------------------------------------
  const std::vector<Event>& events() const { return events_; }
  std::size_t capacity() const { return capacity_; }
  /// Events rejected because the buffer was full.
  std::uint64_t dropped() const { return dropped_; }

  /// Forget all recorded events (tracks and interned names survive).
  void clear() {
    events_.clear();
    dropped_ = 0;
  }

 private:
  void push(const Event& e) {
    if (!enabled(e.cat)) return;
    if (events_.size() >= capacity_) {
      ++dropped_;
      return;
    }
    events_.push_back(e);
  }

  std::size_t capacity_;
  unsigned categories_;
  std::uint32_t engine_sample_every_;
  std::vector<Event> events_;
  std::uint64_t dropped_ = 0;
  std::uint64_t last_id_ = 0;
  std::vector<std::string> tracks_;
  std::unordered_map<std::string_view, TrackId> track_ids_;
  std::deque<std::string> interned_;  // deque: stable c_str() addresses
  std::unordered_map<std::string_view, const char*> intern_ids_;
};

/// Caches one track id per (recorder, label) so steady-state emission does
/// not re-hash the label. Owners hold one handle per track they emit on;
/// re-resolution happens only when a different recorder shows up (a fresh
/// Rig per repetition swaps recorders under long-lived static labels).
class TrackHandle {
 public:
  TrackId get(Recorder& rec, std::string_view label) {
    if (&rec != rec_) {
      id_ = rec.track(label);
      rec_ = &rec;
    }
    return id_;
  }

 private:
  Recorder* rec_ = nullptr;
  TrackId id_ = 0;
};

}  // namespace pfsc::trace
