// Exporters over a trace::Recorder's event buffer.
//
//  * export_chrome_trace — Chrome `trace_event` JSON (the object form with
//    "traceEvents"), loadable in about://tracing and ui.perfetto.dev. Each
//    recorder track becomes one thread row (pid 0); sync spans map to
//    B/E, async spans (nonzero id) to b/e, instants to i, counters to C.
//    Unmatched sync begins are auto-closed at the last event time so the
//    output is always well formed.
//  * export_counters_csv — every counter event as `time,track,name,value`
//    rows, for offline plotting.
//  * RunSummary — the per-run roll-up the paper's Tables V/VI report:
//    per-job and per-OST served bytes, mean scheduler queue depth, and
//    the Jain fairness index (built by trace::collect_summary, which
//    reads the numbers straight from FileSystem::sched_* so they agree
//    with every other consumer of those counters).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "support/units.hpp"
#include "trace/recorder.hpp"

namespace pfsc::trace {

std::string export_chrome_trace(const Recorder& rec);
std::string export_counters_csv(const Recorder& rec);

// -- merged (canonical) exporters -------------------------------------------
// Sharded runs record into one Recorder per domain; these exporters merge
// any number of recorders into ONE canonical stream: tracks united and
// sorted by name, events stably ordered by (time, canonical track), async
// span ids renumbered by first appearance. The harness uses them for every
// run — single-engine included — so the bytes a run emits are a function of
// the simulated history alone, never of how it was partitioned (the
// sharded determinism tests compare them verbatim across --sim_domains).
// A track never spans recorders (every device lives on one engine), so the
// per-track event order each recorder saw is preserved exactly.

std::string export_chrome_trace(const std::vector<const Recorder*>& recs);
std::string export_counters_csv(const std::vector<const Recorder*>& recs);

/// Time-weighted mean of the sum, across tracks, of the counter `name`
/// restricted to category `cat` (0 when no such counter was recorded).
/// Each track contributes its last-seen value between updates.
double mean_counter_sum(const Recorder& rec, Cat cat, const char* name);

/// Merged-recorder variant: the same integral over the canonical
/// time-ordered stream (identical to the single-recorder result when given
/// one recorder, since a recorder's events are already time-ordered).
double mean_counter_sum(const std::vector<const Recorder*>& recs, Cat cat,
                        const char* name);

struct RunSummary {
  std::map<std::uint32_t, Bytes> job_bytes;  // served per JobId
  std::vector<Bytes> ost_bytes;              // serviced per OST disk
  double jain = 1.0;
  double mean_queue_depth = 0.0;
  std::uint64_t recorded_events = 0;
  std::uint64_t dropped_events = 0;

  /// Human-readable summary table (per-job rows + roll-up lines).
  std::string format() const;
};

/// Expand "{seed}" in a --trace_out path. Sweeps must use the placeholder
/// or every repetition writes (and clobbers) the same file.
std::string resolve_trace_path(const std::string& path, std::uint64_t seed);

}  // namespace pfsc::trace
