// Telemetry: periodic sampling of simulated-system counters into time
// series, for bandwidth timelines and per-device utilisation breakdowns.
//
// A Sampler is a simulation process that wakes every `interval` seconds
// and snapshots a set of registered probes (fabric bytes, per-OST bytes
// and busy time, client counters, ...). Probes are registered either
// directly (add_probe) or as trace::Instrument packs (add_instruments,
// which also guards against probes outliving the devices they read).
// Series are exportable as CSV for offline plotting; `bandwidth_timeline`
// post-processes cumulative byte counters into per-interval MB/s.
//
// When the engine has a trace::Recorder attached, every tick is mirrored
// into it as Cat::sampler counter events on the "sampler" track, so the
// sampled series land in the same Chrome trace as the event-driven spans.
//
// Lifetime rule: probes read live simulator objects by reference, so a
// probe must not outlive the object it reads. Register probes through
// add_instruments with FileSystem::liveness() (the convenience packs
// below do) and a stale read trips an assertion instead of undefined
// behaviour.
#pragma once

#include <coroutine>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "lustre/fs.hpp"
#include "sim/engine.hpp"
#include "sim/task.hpp"
#include "support/units.hpp"
#include "trace/instruments.hpp"
#include "trace/recorder.hpp"

namespace pfsc::trace {

/// One sampled series: a name plus (time, value) points.
struct Series {
  std::string name;
  std::vector<Seconds> at;
  std::vector<double> value;

  std::size_t size() const { return at.size(); }
};

class Sampler {
 public:
  /// Probes are called at every tick; they must be cheap and side-effect
  /// free. Register them before starting the sampler.
  using Probe = std::function<double()>;

  /// `max_ticks` bounds the sampler's lifetime (required for experiments
  /// that finish by draining the event queue: an unbounded periodic
  /// process would keep the engine alive forever). Alternatively set a
  /// watch predicate; sampling stops when it returns false.
  Sampler(sim::Engine& eng, Seconds interval, std::size_t max_ticks = 100000);

  /// Keep sampling only while `active()` is true (checked after each tick).
  void watch(std::function<bool()> active) { active_ = std::move(active); }

  Sampler(const Sampler&) = delete;
  Sampler& operator=(const Sampler&) = delete;

  /// Register a probe; returns its series index.
  std::size_t add_probe(std::string name, Probe probe);

  /// Register a pack of instruments; returns the index of the first
  /// series. When `alive` is non-empty every read asserts the token has
  /// not expired, catching probes that outlive their FileSystem.
  std::size_t add_instruments(InstrumentSet set,
                              std::weak_ptr<const void> alive = {});

  // -- convenience probe packs (instrument builders + liveness guard) ----
  /// Cumulative bytes written to all OSTs of `fs`.
  std::size_t add_total_bytes_probe(lustre::FileSystem& fs);
  /// Cumulative busy seconds of one OST.
  std::size_t add_ost_busy_probe(lustre::FileSystem& fs, lustre::OstIndex ost);
  /// Instantaneous queue depth of one OST.
  std::size_t add_ost_queue_probe(lustre::FileSystem& fs, lustre::OstIndex ost);
  /// Link-level view of the shared fabric: registers three series
  /// (`fabric_flows`, `fabric_flow_mbps`, `fabric_util`) for the
  /// instantaneous flow count, per-flow rate, and cumulative utilisation.
  /// Works for both link policies; returns the index of the first series.
  std::size_t add_fabric_probe(lustre::FileSystem& fs);
  /// Same three series for one OSS front-end link (`ossN_flows`, ...).
  std::size_t add_oss_probe(lustre::FileSystem& fs, std::uint32_t oss);
  /// Scheduler view, aggregated over all OSS schedulers: registers
  /// `sched_queue` (pending requests), `sched_inflight` (granted, not yet
  /// completed), `sched_jain` (Jain fairness index over per-job served
  /// bytes) plus one `jobJ_bytes` cumulative-served series per requested
  /// job. Works for every policy; returns the index of the first series.
  std::size_t add_sched_probe(lustre::FileSystem& fs,
                              std::vector<lustre::sched::JobId> jobs = {});

  /// Start sampling (spawns the sampler process). Sampling ends when the
  /// engine drains or `stop()` is called.
  void start();
  /// Stop sampling. Also cancels the pending between-ticks wakeup, so a
  /// stopped sampler does not keep the engine alive until the next tick.
  void stop();

  const std::vector<Series>& series() const { return series_; }
  const Series& series(std::size_t idx) const;

  /// Differentiate a cumulative byte series into MB/s per interval.
  static Series bandwidth_timeline(const Series& cumulative_bytes);

  /// CSV with a time column plus one column per series (missing points
  /// are not possible: all series share the tick).
  std::string to_csv() const;

 private:
  /// delay(interval_) that records the wake token so stop() can cancel it
  /// through Engine::cancel_scheduled.
  struct TickWait {
    Sampler* self;
    bool await_ready() const noexcept { return false; }
    void await_suspend(std::coroutine_handle<> h) {
      self->pending_wake_ = self->eng_->schedule_after(h, self->interval_);
    }
    void await_resume() const noexcept { self->pending_wake_ = {}; }
  };

  sim::Task run();
  void sample_tick();
  void mirror_to_recorder();

  sim::Engine* eng_;
  Seconds interval_;
  std::size_t max_ticks_;
  std::function<bool()> active_;
  std::vector<Probe> probes_;
  std::vector<Series> series_;
  bool started_ = false;
  bool stopped_ = false;
  sim::WakeToken pending_wake_;

  // Recorder mirroring: interned per-series counter names, re-interned
  // when a different recorder shows up (fresh Rig per repetition).
  TrackHandle track_;
  Recorder* names_rec_ = nullptr;
  std::vector<const char*> rec_names_;
};

}  // namespace pfsc::trace
