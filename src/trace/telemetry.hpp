// Telemetry: periodic sampling of simulated-system counters into time
// series, for bandwidth timelines and per-device utilisation breakdowns.
//
// A Sampler is a simulation process that wakes every `interval` seconds and
// snapshots a set of registered probes (fabric bytes, per-OST bytes and
// busy time, client counters, ...). Series are exportable as CSV for
// offline plotting; `bandwidth_timeline` post-processes cumulative byte
// counters into per-interval MB/s.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "lustre/fs.hpp"
#include "sim/engine.hpp"
#include "sim/task.hpp"
#include "support/units.hpp"

namespace pfsc::trace {

/// One sampled series: a name plus (time, value) points.
struct Series {
  std::string name;
  std::vector<Seconds> at;
  std::vector<double> value;

  std::size_t size() const { return at.size(); }
};

class Sampler {
 public:
  /// Probes are called at every tick; they must be cheap and side-effect
  /// free. Register them before starting the sampler.
  using Probe = std::function<double()>;

  /// `max_ticks` bounds the sampler's lifetime (required for experiments
  /// that finish by draining the event queue: an unbounded periodic
  /// process would keep the engine alive forever). Alternatively set a
  /// watch predicate; sampling stops when it returns false.
  Sampler(sim::Engine& eng, Seconds interval, std::size_t max_ticks = 100000);

  /// Keep sampling only while `active()` is true (checked after each tick).
  void watch(std::function<bool()> active) { active_ = std::move(active); }

  Sampler(const Sampler&) = delete;
  Sampler& operator=(const Sampler&) = delete;

  /// Register a probe; returns its series index.
  std::size_t add_probe(std::string name, Probe probe);

  // -- convenience probe packs -----------------------------------------
  /// Cumulative bytes written to all OSTs of `fs`.
  std::size_t add_total_bytes_probe(lustre::FileSystem& fs);
  /// Cumulative busy seconds of one OST.
  std::size_t add_ost_busy_probe(lustre::FileSystem& fs, lustre::OstIndex ost);
  /// Instantaneous queue depth of one OST.
  std::size_t add_ost_queue_probe(lustre::FileSystem& fs, lustre::OstIndex ost);
  /// Link-level view of the shared fabric: registers three series
  /// (`fabric_flows`, `fabric_flow_mbps`, `fabric_util`) for the
  /// instantaneous flow count, per-flow rate, and cumulative utilisation.
  /// Works for both link policies; returns the index of the first series.
  std::size_t add_fabric_probe(lustre::FileSystem& fs);
  /// Same three series for one OSS front-end link (`ossN_flows`, ...).
  std::size_t add_oss_probe(lustre::FileSystem& fs, std::uint32_t oss);
  /// Scheduler view, aggregated over all OSS schedulers: registers
  /// `sched_queue` (pending requests), `sched_inflight` (granted, not yet
  /// completed), `sched_jain` (Jain fairness index over per-job served
  /// bytes) plus one `jobJ_bytes` cumulative-served series per requested
  /// job. Works for every policy; returns the index of the first series.
  std::size_t add_sched_probe(lustre::FileSystem& fs,
                              std::vector<lustre::sched::JobId> jobs = {});

  /// Start sampling (spawns the sampler process). Sampling ends when the
  /// engine drains or `stop()` is called.
  void start();
  void stop() { stopped_ = true; }

  const std::vector<Series>& series() const { return series_; }
  const Series& series(std::size_t idx) const;

  /// Differentiate a cumulative byte series into MB/s per interval.
  static Series bandwidth_timeline(const Series& cumulative_bytes);

  /// CSV with a time column plus one column per series (missing points
  /// are not possible: all series share the tick).
  std::string to_csv() const;

 private:
  sim::Task run();

  sim::Engine* eng_;
  Seconds interval_;
  std::size_t max_ticks_;
  std::function<bool()> active_;
  std::vector<Probe> probes_;
  std::vector<Series> series_;
  bool started_ = false;
  bool stopped_ = false;
};

}  // namespace pfsc::trace
