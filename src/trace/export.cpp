#include "trace/export.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "support/table.hpp"

namespace pfsc::trace {

namespace {

void append_json_string(std::string& out, std::string_view s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void append_number(std::string& out, double v) {
  if (!std::isfinite(v)) v = 0.0;
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.9g", v);
  out += buf;
}

void append_ts(std::string& out, Seconds t) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.3f", t * 1e6);  // sim seconds -> us
  out += buf;
}

/// Common prefix of every emitted event object: name, cat, pid/tid, ts.
void open_event(std::string& out, bool& first, std::string_view name, Cat cat,
                TrackId track, Seconds t) {
  out += first ? "\n" : ",\n";
  first = false;
  out += "{\"name\":";
  append_json_string(out, name);
  out += ",\"cat\":\"";
  out += cat_name(cat);
  out += "\",\"pid\":0,\"tid\":";
  out += std::to_string(track);
  out += ",\"ts\":";
  append_ts(out, t);
}

void append_args(std::string& out, const Event& e) {
  out += ",\"args\":{\"value\":";
  append_number(out, e.value);
  out += ",\"a0\":";
  out += std::to_string(e.arg0);
  out += ",\"a1\":";
  out += std::to_string(e.arg1);
  out += "}}";
}

/// The canonical view over several recorders: the united name-sorted track
/// list, per-recorder track remaps into it, and every event stably ordered
/// by (t, canonical track). Tracks never span recorders, so the stable
/// sort preserves each track's recorded order exactly.
struct MergedView {
  std::vector<std::string> tracks;
  std::vector<std::vector<TrackId>> remap;  // [recorder][old id] -> canonical
  std::vector<std::pair<std::size_t, const Event*>> events;  // (recorder, ev)
};

MergedView merge_recorders(const std::vector<const Recorder*>& recs) {
  MergedView v;
  for (const Recorder* rec : recs) {
    for (const std::string& name : rec->tracks()) v.tracks.push_back(name);
  }
  std::sort(v.tracks.begin(), v.tracks.end());
  v.tracks.erase(std::unique(v.tracks.begin(), v.tracks.end()), v.tracks.end());

  v.remap.resize(recs.size());
  std::size_t total = 0;
  for (std::size_t r = 0; r < recs.size(); ++r) {
    v.remap[r].reserve(recs[r]->tracks().size());
    for (const std::string& name : recs[r]->tracks()) {
      const auto it = std::lower_bound(v.tracks.begin(), v.tracks.end(), name);
      v.remap[r].push_back(static_cast<TrackId>(it - v.tracks.begin()));
    }
    total += recs[r]->events().size();
  }

  v.events.reserve(total);
  for (std::size_t r = 0; r < recs.size(); ++r) {
    for (const Event& e : recs[r]->events()) v.events.push_back({r, &e});
  }
  std::stable_sort(v.events.begin(), v.events.end(),
                   [&v](const auto& a, const auto& b) {
                     if (a.second->t != b.second->t) {
                       return a.second->t < b.second->t;
                     }
                     return v.remap[a.first][a.second->track] <
                            v.remap[b.first][b.second->track];
                   });
  return v;
}

}  // namespace

std::string export_chrome_trace(const Recorder& rec) {
  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;

  // Metadata: name the process and one thread row per track.
  out += "\n{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,\"tid\":0,"
         "\"args\":{\"name\":\"pfsc\"}}";
  first = false;
  for (TrackId i = 0; i < rec.tracks().size(); ++i) {
    out += ",\n{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":";
    out += std::to_string(i);
    out += ",\"args\":{\"name\":";
    append_json_string(out, rec.tracks()[i]);
    out += "}}";
  }

  // Per-track stack of open *sync* spans, so a truncated trace (an engine
  // batch still open, a disk mid-service) closes cleanly at export time.
  std::vector<std::vector<const char*>> open_sync(rec.tracks().size());
  Seconds last_t = 0.0;

  for (const Event& e : rec.events()) {
    last_t = std::max(last_t, e.t);
    switch (e.kind) {
      case EventKind::span_begin:
        open_event(out, first, e.name, e.cat, e.track, e.t);
        if (e.id == 0) {
          out += ",\"ph\":\"B\"";
          open_sync[e.track].push_back(e.name);
        } else {
          out += ",\"ph\":\"b\",\"id\":" + std::to_string(e.id);
        }
        append_args(out, e);
        break;
      case EventKind::span_end:
        open_event(out, first, e.name, e.cat, e.track, e.t);
        if (e.id == 0) {
          out += ",\"ph\":\"E\"";
          if (!open_sync[e.track].empty()) open_sync[e.track].pop_back();
        } else {
          out += ",\"ph\":\"e\",\"id\":" + std::to_string(e.id);
        }
        append_args(out, e);
        break;
      case EventKind::instant:
        open_event(out, first, e.name, e.cat, e.track, e.t);
        out += ",\"ph\":\"i\",\"s\":\"t\"";
        append_args(out, e);
        break;
      case EventKind::counter: {
        // Counters are keyed by (pid, name) in the viewer, so the track
        // label joins the name to keep per-device series distinct.
        std::string qualified = rec.tracks()[e.track];
        qualified += '.';
        qualified += e.name;
        open_event(out, first, qualified, e.cat, e.track, e.t);
        out += ",\"ph\":\"C\",\"args\":{\"value\":";
        append_number(out, e.value);
        out += "}}";
        break;
      }
    }
  }

  for (TrackId track = 0; track < open_sync.size(); ++track) {
    auto& stack = open_sync[track];
    while (!stack.empty()) {
      // Category is unknowable here; the engine owns most sync spans.
      open_event(out, first, stack.back(), Cat::engine, track, last_t);
      out += ",\"ph\":\"E\",\"args\":{}}";
      stack.pop_back();
    }
  }

  out += "\n]}\n";
  return out;
}

std::string export_chrome_trace(const std::vector<const Recorder*>& recs) {
  const MergedView v = merge_recorders(recs);
  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;

  out += "\n{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,\"tid\":0,"
         "\"args\":{\"name\":\"pfsc\"}}";
  first = false;
  for (TrackId i = 0; i < v.tracks.size(); ++i) {
    out += ",\n{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":";
    out += std::to_string(i);
    out += ",\"args\":{\"name\":";
    append_json_string(out, v.tracks[i]);
    out += "}}";
  }

  // Async ids are per-recorder counters, so the raw values depend on the
  // domain partition (and on drops); renumber by first appearance in the
  // canonical order so the output does not.
  std::map<std::pair<std::size_t, std::uint64_t>, std::uint64_t> ids;
  const auto canonical_id = [&ids](std::size_t r, std::uint64_t id) {
    auto [it, inserted] = ids.try_emplace({r, id}, ids.size() + 1);
    return it->second;
  };

  std::vector<std::vector<const char*>> open_sync(v.tracks.size());
  Seconds last_t = 0.0;

  for (const auto& [r, ep] : v.events) {
    const Event& e = *ep;
    const TrackId track = v.remap[r][e.track];
    last_t = std::max(last_t, e.t);
    switch (e.kind) {
      case EventKind::span_begin:
        open_event(out, first, e.name, e.cat, track, e.t);
        if (e.id == 0) {
          out += ",\"ph\":\"B\"";
          open_sync[track].push_back(e.name);
        } else {
          out += ",\"ph\":\"b\",\"id\":" + std::to_string(canonical_id(r, e.id));
        }
        append_args(out, e);
        break;
      case EventKind::span_end:
        open_event(out, first, e.name, e.cat, track, e.t);
        if (e.id == 0) {
          out += ",\"ph\":\"E\"";
          if (!open_sync[track].empty()) open_sync[track].pop_back();
        } else {
          out += ",\"ph\":\"e\",\"id\":" + std::to_string(canonical_id(r, e.id));
        }
        append_args(out, e);
        break;
      case EventKind::instant:
        open_event(out, first, e.name, e.cat, track, e.t);
        out += ",\"ph\":\"i\",\"s\":\"t\"";
        append_args(out, e);
        break;
      case EventKind::counter: {
        std::string qualified = v.tracks[track];
        qualified += '.';
        qualified += e.name;
        open_event(out, first, qualified, e.cat, track, e.t);
        out += ",\"ph\":\"C\",\"args\":{\"value\":";
        append_number(out, e.value);
        out += "}}";
        break;
      }
    }
  }

  for (TrackId track = 0; track < open_sync.size(); ++track) {
    auto& stack = open_sync[track];
    while (!stack.empty()) {
      open_event(out, first, stack.back(), Cat::engine, track, last_t);
      out += ",\"ph\":\"E\",\"args\":{}}";
      stack.pop_back();
    }
  }

  out += "\n]}\n";
  return out;
}

std::string export_counters_csv(const std::vector<const Recorder*>& recs) {
  const MergedView v = merge_recorders(recs);
  std::string out = "time,track,name,value\n";
  char buf[64];
  for (const auto& [r, ep] : v.events) {
    const Event& e = *ep;
    if (e.kind != EventKind::counter) continue;
    std::snprintf(buf, sizeof buf, "%.9g,", e.t);
    out += buf;
    out += v.tracks[v.remap[r][e.track]];
    out += ',';
    out += e.name;
    std::snprintf(buf, sizeof buf, ",%.9g\n", e.value);
    out += buf;
  }
  return out;
}

std::string export_counters_csv(const Recorder& rec) {
  std::string out = "time,track,name,value\n";
  char buf[64];
  for (const Event& e : rec.events()) {
    if (e.kind != EventKind::counter) continue;
    std::snprintf(buf, sizeof buf, "%.9g,", e.t);
    out += buf;
    out += rec.tracks()[e.track];
    out += ',';
    out += e.name;
    std::snprintf(buf, sizeof buf, ",%.9g\n", e.value);
    out += buf;
  }
  return out;
}

double mean_counter_sum(const Recorder& rec, Cat cat, const char* name) {
  const std::string_view wanted = name;
  std::unordered_map<TrackId, double> last;
  double sum = 0.0;
  double integral = 0.0;
  Seconds prev = 0.0;
  Seconds start = 0.0;
  bool seen = false;
  for (const Event& e : rec.events()) {
    if (e.kind != EventKind::counter || e.cat != cat || wanted != e.name) {
      continue;
    }
    if (!seen) {
      seen = true;
      start = prev = e.t;
    }
    integral += sum * (e.t - prev);
    prev = e.t;
    auto& v = last[e.track];
    sum += e.value - v;
    v = e.value;
  }
  if (!seen) return 0.0;
  const Seconds span = prev - start;
  // A single sampling instant has no extent to average over; report the
  // instantaneous sum instead of 0/0.
  return span > 0.0 ? integral / span : sum;
}

double mean_counter_sum(const std::vector<const Recorder*>& recs, Cat cat,
                        const char* name) {
  const MergedView v = merge_recorders(recs);
  const std::string_view wanted = name;
  // Keys combine recorder and track so same-named tracks could never alias
  // (they never exist, but the integral must not depend on it).
  std::unordered_map<std::uint64_t, double> last;
  double sum = 0.0;
  double integral = 0.0;
  Seconds prev = 0.0;
  Seconds start = 0.0;
  bool seen = false;
  for (const auto& [r, ep] : v.events) {
    const Event& e = *ep;
    if (e.kind != EventKind::counter || e.cat != cat || wanted != e.name) {
      continue;
    }
    if (!seen) {
      seen = true;
      start = prev = e.t;
    }
    integral += sum * (e.t - prev);
    prev = e.t;
    auto& value = last[(static_cast<std::uint64_t>(r) << 16) | e.track];
    sum += e.value - value;
    value = e.value;
  }
  if (!seen) return 0.0;
  const Seconds span = prev - start;
  return span > 0.0 ? integral / span : sum;
}

std::string RunSummary::format() const {
  std::string out;
  Bytes total = 0;
  for (const auto& [job, bytes] : job_bytes) total += bytes;

  TextTable table({"job", "served MiB", "share %"});
  for (const auto& [job, bytes] : job_bytes) {
    table.add_row({fmt_int(static_cast<long long>(job)),
                   fmt_double(static_cast<double>(bytes) / (1 << 20), 1),
                   fmt_double(total > 0 ? 100.0 * static_cast<double>(bytes) /
                                              static_cast<double>(total)
                                        : 0.0,
                              1)});
  }
  out += "trace summary: per-job served bytes\n";
  out += table.to_string();

  std::size_t touched = 0;
  std::size_t busiest = 0;
  Bytes busiest_bytes = 0;
  for (std::size_t i = 0; i < ost_bytes.size(); ++i) {
    if (ost_bytes[i] == 0) continue;
    ++touched;
    if (ost_bytes[i] > busiest_bytes) {
      busiest_bytes = ost_bytes[i];
      busiest = i;
    }
  }
  out += "jain index:        " + fmt_double(jain, 4) + "\n";
  out += "mean queue depth:  " + fmt_double(mean_queue_depth, 2) + "\n";
  out += "osts touched:      " + fmt_int(static_cast<long long>(touched)) +
         " of " + fmt_int(static_cast<long long>(ost_bytes.size()));
  if (touched > 0) {
    out += " (busiest ost" + fmt_int(static_cast<long long>(busiest)) + ": " +
           fmt_double(static_cast<double>(busiest_bytes) / (1 << 20), 1) +
           " MiB)";
  }
  out += "\nevents recorded:   " +
         fmt_int(static_cast<long long>(recorded_events)) + " (dropped " +
         fmt_int(static_cast<long long>(dropped_events)) + ")\n";
  return out;
}

std::string resolve_trace_path(const std::string& path, std::uint64_t seed) {
  std::string out = path;
  const std::string placeholder = "{seed}";
  const std::string value = std::to_string(seed);
  std::size_t pos = 0;
  while ((pos = out.find(placeholder, pos)) != std::string::npos) {
    out.replace(pos, placeholder.size(), value);
    pos += value.size();
  }
  return out;
}

}  // namespace pfsc::trace
