#include "trace/instruments.hpp"

namespace pfsc::trace {

InstrumentSet link_instruments(const std::string& prefix,
                               sim::LinkModel& link) {
  InstrumentSet out;
  out.push_back({prefix + "_flows", [&link] {
                   return static_cast<double>(link.active_flows());
                 }});
  out.push_back({prefix + "_flow_mbps",
                 [&link] { return to_mbps(link.flow_rate()); }});
  out.push_back({prefix + "_util", [&link] { return link.utilisation(); }});
  return out;
}

InstrumentSet sched_instruments(lustre::FileSystem& fs,
                                std::vector<lustre::sched::JobId> jobs) {
  InstrumentSet out;
  out.push_back({"sched_queue", [&fs] {
                   return static_cast<double>(fs.sched_queue_depth());
                 }});
  out.push_back({"sched_inflight", [&fs] {
                   return static_cast<double>(fs.sched_in_service());
                 }});
  out.push_back({"sched_jain", [&fs] { return fs.sched_jain(); }});
  for (const lustre::sched::JobId job : jobs) {
    out.push_back({"job" + std::to_string(job) + "_bytes", [&fs, job] {
                     double bytes = 0.0;
                     for (std::uint32_t oss = 0; oss < fs.params().oss_count;
                          ++oss) {
                       bytes += static_cast<double>(
                           fs.oss_sched(oss).served_bytes(job));
                     }
                     return bytes;
                   }});
  }
  return out;
}

InstrumentSet total_bytes_instruments(lustre::FileSystem& fs) {
  InstrumentSet out;
  out.push_back({"total_bytes", [&fs] {
                   return static_cast<double>(fs.total_bytes_written());
                 }});
  return out;
}

InstrumentSet ost_instruments(lustre::FileSystem& fs, lustre::OstIndex ost) {
  InstrumentSet out;
  out.push_back({"ost" + std::to_string(ost) + "_busy",
                 [&fs, ost] { return fs.ost_disk(ost).busy_time(); }});
  out.push_back({"ost" + std::to_string(ost) + "_queue", [&fs, ost] {
                   return static_cast<double>(fs.ost_disk(ost).queue_depth());
                 }});
  return out;
}

RunSummary collect_summary(lustre::FileSystem& fs, const Recorder* rec) {
  std::vector<const Recorder*> recs;
  if (rec != nullptr) recs.push_back(rec);
  return collect_summary(fs, recs);
}

RunSummary collect_summary(lustre::FileSystem& fs,
                           const std::vector<const Recorder*>& recs) {
  RunSummary s;
  for (const auto& [job, bytes] : fs.sched_served_by_job()) {
    s.job_bytes[static_cast<std::uint32_t>(job)] = bytes;
  }
  s.jain = fs.sched_jain();
  s.ost_bytes.reserve(fs.params().ost_count);
  for (std::uint32_t ost = 0; ost < fs.params().ost_count; ++ost) {
    s.ost_bytes.push_back(fs.ost_disk(ost).bytes_serviced());
  }
  if (!recs.empty()) {
    s.mean_queue_depth = mean_counter_sum(recs, Cat::sched, "queue");
    for (const Recorder* r : recs) {
      s.recorded_events += r->events().size();
      s.dropped_events += r->dropped();
    }
  }
  return s;
}

}  // namespace pfsc::trace
