#include "trace/telemetry.hpp"

#include <sstream>
#include <utility>

namespace pfsc::trace {

Sampler::Sampler(sim::Engine& eng, Seconds interval, std::size_t max_ticks)
    : eng_(&eng), interval_(interval), max_ticks_(max_ticks) {
  PFSC_REQUIRE(interval > 0.0, "Sampler: interval must be positive");
  PFSC_REQUIRE(max_ticks > 0, "Sampler: max_ticks must be positive");
}

std::size_t Sampler::add_probe(std::string name, Probe probe) {
  PFSC_REQUIRE(!started_, "Sampler: register probes before start()");
  PFSC_REQUIRE(probe != nullptr, "Sampler: null probe");
  probes_.push_back(std::move(probe));
  Series s;
  s.name = std::move(name);
  series_.push_back(std::move(s));
  return series_.size() - 1;
}

std::size_t Sampler::add_instruments(InstrumentSet set,
                                     std::weak_ptr<const void> alive) {
  PFSC_REQUIRE(!set.empty(), "Sampler: empty instrument set");
  const std::size_t first = series_.size();
  const bool guarded = alive.lock() != nullptr;
  for (Instrument& inst : set) {
    if (guarded) {
      add_probe(std::move(inst.name),
                [read = std::move(inst.read), alive] {
                  // A firing here means the probed object was destroyed
                  // while this sampler still reads it; see the lifetime
                  // rule in the header.
                  PFSC_ASSERT(!alive.expired());
                  return read();
                });
    } else {
      add_probe(std::move(inst.name), std::move(inst.read));
    }
  }
  return first;
}

std::size_t Sampler::add_total_bytes_probe(lustre::FileSystem& fs) {
  return add_instruments(total_bytes_instruments(fs), fs.liveness());
}

std::size_t Sampler::add_ost_busy_probe(lustre::FileSystem& fs,
                                        lustre::OstIndex ost) {
  InstrumentSet set = ost_instruments(fs, ost);
  set.resize(1);  // busy only; add_ost_queue_probe registers the other half
  return add_instruments(std::move(set), fs.liveness());
}

std::size_t Sampler::add_ost_queue_probe(lustre::FileSystem& fs,
                                         lustre::OstIndex ost) {
  InstrumentSet set = ost_instruments(fs, ost);
  set.erase(set.begin());
  return add_instruments(std::move(set), fs.liveness());
}

std::size_t Sampler::add_fabric_probe(lustre::FileSystem& fs) {
  return add_instruments(link_instruments("fabric", fs.fabric()),
                         fs.liveness());
}

std::size_t Sampler::add_oss_probe(lustre::FileSystem& fs, std::uint32_t oss) {
  return add_instruments(
      link_instruments("oss" + std::to_string(oss), fs.oss_pipe(oss)),
      fs.liveness());
}

std::size_t Sampler::add_sched_probe(lustre::FileSystem& fs,
                                     std::vector<lustre::sched::JobId> jobs) {
  return add_instruments(sched_instruments(fs, std::move(jobs)),
                         fs.liveness());
}

void Sampler::start() {
  PFSC_REQUIRE(!started_, "Sampler: already started");
  started_ = true;
  eng_->spawn(run());
}

void Sampler::stop() {
  stopped_ = true;
  if (pending_wake_) {
    // The run() coroutine is parked between ticks; drop its wakeup so the
    // engine is free to drain now. The frame is reclaimed at teardown.
    eng_->cancel_scheduled(pending_wake_);
    pending_wake_ = {};
  }
}

void Sampler::sample_tick() {
  for (std::size_t i = 0; i < probes_.size(); ++i) {
    series_[i].at.push_back(eng_->now());
    series_[i].value.push_back(probes_[i]());
  }
  mirror_to_recorder();
}

void Sampler::mirror_to_recorder() {
  auto* rec = eng_->recorder();
  if (rec == nullptr || !rec->enabled(Cat::sampler)) return;
  if (names_rec_ != rec) {
    rec_names_.clear();
    rec_names_.reserve(series_.size());
    for (const Series& s : series_) rec_names_.push_back(rec->intern(s.name));
    names_rec_ = rec;
  }
  const TrackId track = track_.get(*rec, "sampler");
  const Seconds now = eng_->now();
  for (std::size_t i = 0; i < series_.size(); ++i) {
    rec->counter(Cat::sampler, track, rec_names_[i], now,
                 series_[i].value.back());
  }
}

sim::Task Sampler::run() {
  for (std::size_t tick = 0; tick < max_ticks_ && !stopped_; ++tick) {
    sample_tick();
    if (active_ && !active_()) break;
    co_await TickWait{this};
  }
}

const Series& Sampler::series(std::size_t idx) const {
  PFSC_REQUIRE(idx < series_.size(), "Sampler: bad series index");
  return series_[idx];
}

Series Sampler::bandwidth_timeline(const Series& cumulative_bytes) {
  Series out;
  out.name = cumulative_bytes.name + "_mbps";
  for (std::size_t i = 1; i < cumulative_bytes.size(); ++i) {
    const Seconds dt = cumulative_bytes.at[i] - cumulative_bytes.at[i - 1];
    if (dt <= 0.0) continue;
    const double db = cumulative_bytes.value[i] - cumulative_bytes.value[i - 1];
    out.at.push_back(cumulative_bytes.at[i]);
    out.value.push_back(to_mbps(db / dt));
  }
  return out;
}

std::string Sampler::to_csv() const {
  std::ostringstream out;
  out << "time";
  for (const auto& s : series_) out << ',' << s.name;
  out << '\n';
  const std::size_t ticks = series_.empty() ? 0 : series_.front().size();
  for (std::size_t t = 0; t < ticks; ++t) {
    out << series_.front().at[t];
    for (const auto& s : series_) out << ',' << s.value[t];
    out << '\n';
  }
  return out.str();
}

}  // namespace pfsc::trace
