#include "trace/telemetry.hpp"

#include <sstream>

namespace pfsc::trace {

Sampler::Sampler(sim::Engine& eng, Seconds interval, std::size_t max_ticks)
    : eng_(&eng), interval_(interval), max_ticks_(max_ticks) {
  PFSC_REQUIRE(interval > 0.0, "Sampler: interval must be positive");
  PFSC_REQUIRE(max_ticks > 0, "Sampler: max_ticks must be positive");
}

std::size_t Sampler::add_probe(std::string name, Probe probe) {
  PFSC_REQUIRE(!started_, "Sampler: register probes before start()");
  PFSC_REQUIRE(probe != nullptr, "Sampler: null probe");
  probes_.push_back(std::move(probe));
  Series s;
  s.name = std::move(name);
  series_.push_back(std::move(s));
  return series_.size() - 1;
}

std::size_t Sampler::add_total_bytes_probe(lustre::FileSystem& fs) {
  return add_probe("total_bytes", [&fs] {
    return static_cast<double>(fs.total_bytes_written());
  });
}

std::size_t Sampler::add_ost_busy_probe(lustre::FileSystem& fs,
                                        lustre::OstIndex ost) {
  return add_probe("ost" + std::to_string(ost) + "_busy",
                   [&fs, ost] { return fs.ost_disk(ost).busy_time(); });
}

std::size_t Sampler::add_ost_queue_probe(lustre::FileSystem& fs,
                                         lustre::OstIndex ost) {
  return add_probe("ost" + std::to_string(ost) + "_queue", [&fs, ost] {
    return static_cast<double>(fs.ost_disk(ost).queue_depth());
  });
}

namespace {

std::size_t add_link_probes(Sampler& sampler, const std::string& prefix,
                            sim::LinkModel& link) {
  const std::size_t first = sampler.add_probe(prefix + "_flows", [&link] {
    return static_cast<double>(link.active_flows());
  });
  sampler.add_probe(prefix + "_flow_mbps",
                    [&link] { return to_mbps(link.flow_rate()); });
  sampler.add_probe(prefix + "_util", [&link] { return link.utilisation(); });
  return first;
}

}  // namespace

std::size_t Sampler::add_fabric_probe(lustre::FileSystem& fs) {
  return add_link_probes(*this, "fabric", fs.fabric());
}

std::size_t Sampler::add_oss_probe(lustre::FileSystem& fs, std::uint32_t oss) {
  return add_link_probes(*this, "oss" + std::to_string(oss), fs.oss_pipe(oss));
}

std::size_t Sampler::add_sched_probe(lustre::FileSystem& fs,
                                     std::vector<lustre::sched::JobId> jobs) {
  const std::size_t first = add_probe("sched_queue", [&fs] {
    return static_cast<double>(fs.sched_queue_depth());
  });
  add_probe("sched_inflight",
            [&fs] { return static_cast<double>(fs.sched_in_service()); });
  add_probe("sched_jain", [&fs] { return fs.sched_jain(); });
  for (const lustre::sched::JobId job : jobs) {
    add_probe("job" + std::to_string(job) + "_bytes", [&fs, job] {
      double bytes = 0.0;
      for (std::uint32_t oss = 0; oss < fs.params().oss_count; ++oss) {
        bytes += static_cast<double>(fs.oss_sched(oss).served_bytes(job));
      }
      return bytes;
    });
  }
  return first;
}

void Sampler::start() {
  PFSC_REQUIRE(!started_, "Sampler: already started");
  started_ = true;
  eng_->spawn(run());
}

sim::Task Sampler::run() {
  for (std::size_t tick = 0; tick < max_ticks_ && !stopped_; ++tick) {
    for (std::size_t i = 0; i < probes_.size(); ++i) {
      series_[i].at.push_back(eng_->now());
      series_[i].value.push_back(probes_[i]());
    }
    if (active_ && !active_()) break;
    co_await eng_->delay(interval_);
  }
}

const Series& Sampler::series(std::size_t idx) const {
  PFSC_REQUIRE(idx < series_.size(), "Sampler: bad series index");
  return series_[idx];
}

Series Sampler::bandwidth_timeline(const Series& cumulative_bytes) {
  Series out;
  out.name = cumulative_bytes.name + "_mbps";
  for (std::size_t i = 1; i < cumulative_bytes.size(); ++i) {
    const Seconds dt = cumulative_bytes.at[i] - cumulative_bytes.at[i - 1];
    if (dt <= 0.0) continue;
    const double db = cumulative_bytes.value[i] - cumulative_bytes.value[i - 1];
    out.at.push_back(cumulative_bytes.at[i]);
    out.value.push_back(to_mbps(db / dt));
  }
  return out;
}

std::string Sampler::to_csv() const {
  std::ostringstream out;
  out << "time";
  for (const auto& s : series_) out << ',' << s.name;
  out << '\n';
  const std::size_t ticks = series_.empty() ? 0 : series_.front().size();
  for (std::size_t t = 0; t < ticks; ++t) {
    out << series_.front().at[t];
    for (const auto& s : series_) out << ',' << s.value[t];
    out << '\n';
  }
  return out.str();
}

}  // namespace pfsc::trace
