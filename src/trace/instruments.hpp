// Instruments: named read-out functions over the simulated system, the
// shared vocabulary between the periodic Sampler (which polls them into
// time series) and the event-driven Recorder (which mirrors each tick as
// Cat::sampler counters).
//
// An Instrument reads one number instantaneously and must be cheap and
// side-effect free. The builders below assemble the standard packs the
// harness and tests use; Sampler's add_*_probe members are thin wrappers
// over them, so both consumers stay in lockstep.
//
// Lifetime rule: an instrument captures a reference to the device it
// reads. It must not outlive that device — register instruments through
// Sampler::add_instruments with FileSystem::liveness() so a stale read
// trips an assertion instead of undefined behaviour.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "lustre/fs.hpp"
#include "trace/export.hpp"
#include "trace/recorder.hpp"

namespace pfsc::trace {

struct Instrument {
  std::string name;
  std::function<double()> read;
};

using InstrumentSet = std::vector<Instrument>;

/// Link-level view of one sim::LinkModel: `<prefix>_flows` (instantaneous
/// flow count), `<prefix>_flow_mbps` (per-flow rate), `<prefix>_util`
/// (cumulative utilisation).
InstrumentSet link_instruments(const std::string& prefix, sim::LinkModel& link);

/// Scheduler view, aggregated over all OSS schedulers of `fs`:
/// `sched_queue`, `sched_inflight`, `sched_jain`, plus one `jobJ_bytes`
/// cumulative-served series per requested job.
InstrumentSet sched_instruments(lustre::FileSystem& fs,
                                std::vector<lustre::sched::JobId> jobs = {});

/// Cumulative bytes written to all OSTs of `fs` (`total_bytes`).
InstrumentSet total_bytes_instruments(lustre::FileSystem& fs);

/// One OST disk: `ostN_busy` (cumulative busy seconds) and `ostN_queue`
/// (instantaneous queue depth).
InstrumentSet ost_instruments(lustre::FileSystem& fs, lustre::OstIndex ost);

/// Roll a finished run up into a RunSummary. Per-job bytes and the Jain
/// index come straight from FileSystem::sched_* (so they match the
/// scheduler's own accounting bit for bit); per-OST bytes from the disks;
/// mean queue depth and event counts from the recorder when one is given
/// (`rec` may be null: the summary then reports zero events).
RunSummary collect_summary(lustre::FileSystem& fs, const Recorder* rec);

/// Multi-recorder variant for sharded runs (one recorder per domain):
/// event counts are summed, the mean queue depth integrates the merged
/// time-ordered counter stream. Given one recorder it matches the
/// single-recorder overload exactly.
RunSummary collect_summary(lustre::FileSystem& fs,
                           const std::vector<const Recorder*>& recs);

}  // namespace pfsc::trace
