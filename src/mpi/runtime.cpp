#include "mpi/runtime.hpp"

#include <string>

namespace pfsc::mpi {

Runtime::Runtime(lustre::FileSystem& fs, int nprocs, int procs_per_node,
                 Seconds hop_latency)
    : fs_(&fs), nprocs_(nprocs), procs_per_node_(procs_per_node) {
  PFSC_REQUIRE(nprocs >= 1, "Runtime: need at least one process");
  PFSC_REQUIRE(procs_per_node >= 1, "Runtime: procs_per_node must be >= 1");
  const int nodes = (nprocs + procs_per_node - 1) / procs_per_node;
  PFSC_REQUIRE(nodes <= static_cast<int>(fs.params().nodes),
               "Runtime: job larger than the platform");
  node_nics_.reserve(static_cast<std::size_t>(nodes));
  for (int n = 0; n < nodes; ++n) {
    node_nics_.push_back(sim::make_link(fs.engine(), fs.params().link_policy,
                                        fs.params().node_nic_bw));
    node_nics_.back()->set_trace_label("nic.node" + std::to_string(n));
  }
  clients_.reserve(static_cast<std::size_t>(nprocs));
  for (int r = 0; r < nprocs; ++r) {
    clients_.push_back(std::make_unique<lustre::Client>(
        fs, "rank" + std::to_string(r),
        node_nics_[static_cast<std::size_t>(node_of(r))].get()));
  }
  world_ = std::make_unique<Communicator>(fs.engine(), nprocs, hop_latency);
}

lustre::Client& Runtime::client(int rank) {
  PFSC_REQUIRE(rank >= 0 && rank < nprocs_, "Runtime::client: bad rank");
  return *clients_[static_cast<std::size_t>(rank)];
}

void Runtime::launch(const std::function<sim::Task(int)>& rank_main) {
  for (int r = 0; r < nprocs_; ++r) {
    engine().spawn(rank_main(r));
  }
}

void Runtime::run_to_completion(const std::function<sim::Task(int)>& rank_main) {
  launch(rank_main);
  // Through the file system, not engine().run(): a sharded run must drive
  // every domain's engine, and the FileSystem owns that decision.
  fs_->run_all();
}

}  // namespace pfsc::mpi
