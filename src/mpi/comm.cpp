#include "mpi/comm.hpp"

#include <algorithm>
#include <cmath>

namespace pfsc::mpi {

Communicator::Communicator(sim::Engine& eng, int size, Seconds hop_latency)
    : eng_(&eng), size_(size), hop_latency_(hop_latency) {
  PFSC_REQUIRE(size >= 1, "Communicator: size must be >= 1");
  next_seq_.assign(static_cast<std::size_t>(size), 0);
}

Seconds Communicator::collective_latency() const {
  if (size_ <= 1) return 0.0;
  const double hops = std::ceil(std::log2(static_cast<double>(size_)));
  return 2.0 * hops * hop_latency_;
}

sim::Co<void> Communicator::barrier(int rank) {
  co_await allreduce(rank, 0.0, ReduceOp::sum);
}

sim::Co<double> Communicator::bcast(int rank, int root, double value) {
  PFSC_REQUIRE(root >= 0 && root < size_, "bcast: bad root");
  // Implemented as an allreduce where only the root contributes.
  co_return co_await allreduce(rank, rank == root ? value : 0.0, ReduceOp::sum);
}

// Shared rendezvous skeleton. `complete` runs exactly once (in the last
// arriver); `extract` runs in every rank while the state is still alive.
namespace {
struct Consumed {
  int count = 0;
};
}  // namespace

sim::Co<double> Communicator::allreduce(int rank, double value, ReduceOp op) {
  PFSC_REQUIRE(rank >= 0 && rank < size_, "allreduce: bad rank");
  const std::uint64_t seq = next_seq_[static_cast<std::size_t>(rank)]++;
  Pending& p = pending_[seq];
  if (p.contribs.empty()) {
    p.contribs.resize(static_cast<std::size_t>(size_));
    p.present.assign(static_cast<std::size_t>(size_), false);
    p.done = std::make_unique<sim::Event>(*eng_);
  }
  PFSC_ASSERT(!p.present[static_cast<std::size_t>(rank)]);
  p.present[static_cast<std::size_t>(rank)] = true;
  p.contribs[static_cast<std::size_t>(rank)].value = value;
  ++p.arrived;
  if (p.arrived == size_) {
    double acc = p.contribs[0].value;
    for (int r = 1; r < size_; ++r) {
      const double v = p.contribs[static_cast<std::size_t>(r)].value;
      switch (op) {
        case ReduceOp::sum: acc += v; break;
        case ReduceOp::min: acc = std::min(acc, v); break;
        case ReduceOp::max: acc = std::max(acc, v); break;
      }
    }
    p.scalar = acc;
    p.done->trigger();
  } else {
    co_await p.done->wait();
  }
  const double result = pending_.at(seq).scalar;
  if (++pending_.at(seq).consumed == size_) pending_.erase(seq);
  co_await eng_->delay(collective_latency());
  co_return result;
}

sim::Co<std::vector<double>> Communicator::allgather(int rank, double value) {
  PFSC_REQUIRE(rank >= 0 && rank < size_, "allgather: bad rank");
  const std::uint64_t seq = next_seq_[static_cast<std::size_t>(rank)]++;
  Pending& p = pending_[seq];
  if (p.contribs.empty()) {
    p.contribs.resize(static_cast<std::size_t>(size_));
    p.present.assign(static_cast<std::size_t>(size_), false);
    p.done = std::make_unique<sim::Event>(*eng_);
  }
  PFSC_ASSERT(!p.present[static_cast<std::size_t>(rank)]);
  p.present[static_cast<std::size_t>(rank)] = true;
  p.contribs[static_cast<std::size_t>(rank)].value = value;
  ++p.arrived;
  if (p.arrived == size_) {
    p.vec.resize(static_cast<std::size_t>(size_));
    for (int r = 0; r < size_; ++r) {
      p.vec[static_cast<std::size_t>(r)] = p.contribs[static_cast<std::size_t>(r)].value;
    }
    p.done->trigger();
  } else {
    co_await p.done->wait();
  }
  std::vector<double> result = pending_.at(seq).vec;
  if (++pending_.at(seq).consumed == size_) pending_.erase(seq);
  co_await eng_->delay(collective_latency());
  co_return result;
}

sim::Co<Communicator::SplitResult> Communicator::split(int rank, int color, int key) {
  PFSC_REQUIRE(rank >= 0 && rank < size_, "split: bad rank");
  const std::uint64_t seq = next_seq_[static_cast<std::size_t>(rank)]++;
  Pending& p = pending_[seq];
  if (p.contribs.empty()) {
    p.contribs.resize(static_cast<std::size_t>(size_));
    p.present.assign(static_cast<std::size_t>(size_), false);
    p.done = std::make_unique<sim::Event>(*eng_);
  }
  PFSC_ASSERT(!p.present[static_cast<std::size_t>(rank)]);
  p.present[static_cast<std::size_t>(rank)] = true;
  p.contribs[static_cast<std::size_t>(rank)].color = color;
  p.contribs[static_cast<std::size_t>(rank)].key = key;
  ++p.arrived;
  if (p.arrived == size_) {
    p.split_comm_of_rank.assign(static_cast<std::size_t>(size_), nullptr);
    p.split_rank_of_rank.assign(static_cast<std::size_t>(size_), -1);
    // Group ranks by colour, order each group by (key, old rank).
    std::map<int, std::vector<int>> groups;
    for (int r = 0; r < size_; ++r) {
      groups[p.contribs[static_cast<std::size_t>(r)].color].push_back(r);
    }
    for (auto& [c, members] : groups) {
      std::stable_sort(members.begin(), members.end(), [&](int a, int b) {
        return p.contribs[static_cast<std::size_t>(a)].key <
               p.contribs[static_cast<std::size_t>(b)].key;
      });
      children_.push_back(std::make_unique<Communicator>(
          *eng_, static_cast<int>(members.size()), hop_latency_));
      Communicator* sub = children_.back().get();
      for (std::size_t i = 0; i < members.size(); ++i) {
        p.split_comm_of_rank[static_cast<std::size_t>(members[i])] = sub;
        p.split_rank_of_rank[static_cast<std::size_t>(members[i])] =
            static_cast<int>(i);
      }
    }
    p.done->trigger();
  } else {
    co_await p.done->wait();
  }
  Pending& done_p = pending_.at(seq);
  SplitResult result{done_p.split_comm_of_rank[static_cast<std::size_t>(rank)],
                     done_p.split_rank_of_rank[static_cast<std::size_t>(rank)]};
  if (++done_p.consumed == size_) pending_.erase(seq);
  co_await eng_->delay(collective_latency());
  co_return result;
}

}  // namespace pfsc::mpi
