// SimMPI runtime: places `nprocs` rank processes onto nodes, wires each
// rank to a lustre::Client (sharing one node NIC pipe per node, as on Cab),
// and provides MPI_COMM_WORLD. The caller supplies a rank-main coroutine;
// `launch` spawns one per rank and `Engine::run()` executes the job.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "lustre/client.hpp"
#include "mpi/comm.hpp"

namespace pfsc::mpi {

class Runtime {
 public:
  Runtime(lustre::FileSystem& fs, int nprocs, int procs_per_node,
          Seconds hop_latency = 2.0e-6);

  Runtime(const Runtime&) = delete;
  Runtime& operator=(const Runtime&) = delete;

  int nprocs() const { return nprocs_; }
  int node_count() const { return static_cast<int>(node_nics_.size()); }
  int node_of(int rank) const { return rank / procs_per_node_; }
  int procs_per_node() const { return procs_per_node_; }

  Communicator& world() { return *world_; }
  lustre::Client& client(int rank);
  lustre::FileSystem& fs() { return *fs_; }
  sim::Engine& engine() { return fs_->engine(); }

  /// Spawn `main(rank)` for every rank. Call Engine::run() afterwards
  /// (or use run_to_completion to do both).
  void launch(const std::function<sim::Task(int)>& rank_main);

  /// launch + Engine::run().
  void run_to_completion(const std::function<sim::Task(int)>& rank_main);

 private:
  lustre::FileSystem* fs_;
  int nprocs_;
  int procs_per_node_;
  std::vector<std::unique_ptr<sim::LinkModel>> node_nics_;
  std::vector<std::unique_ptr<lustre::Client>> clients_;
  std::unique_ptr<Communicator> world_;
};

}  // namespace pfsc::mpi
