// SimMPI communicators.
//
// A Communicator groups rank coroutines and gives them MPI-style collective
// operations: barrier, bcast, allreduce, allgather and comm_split. Payload
// bytes are not modelled (the apps in this study only exchange control-sized
// messages); each collective costs a latency term of
// 2 * ceil(log2(size)) * collective_hop_latency, the usual tree bound.
//
// Collective-call matching works like MPI: every rank must invoke the same
// collectives in the same order. Each rank's arrival is matched by per-
// communicator call sequence numbers; the last arriver completes the
// operation and wakes the others.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "sim/engine.hpp"
#include "sim/resources.hpp"
#include "sim/task.hpp"
#include "support/error.hpp"

namespace pfsc::mpi {

class Communicator {
 public:
  Communicator(sim::Engine& eng, int size, Seconds hop_latency = 2.0e-6);

  Communicator(const Communicator&) = delete;
  Communicator& operator=(const Communicator&) = delete;

  int size() const { return size_; }
  sim::Engine& engine() { return *eng_; }

  /// MPI_Barrier.
  sim::Co<void> barrier(int rank);

  /// MPI_Bcast of a double (value significant only at `root`).
  sim::Co<double> bcast(int rank, int root, double value);

  enum class ReduceOp { sum, min, max };

  /// MPI_Allreduce on a double.
  sim::Co<double> allreduce(int rank, double value, ReduceOp op);

  /// MPI_Allgather of one double per rank; result indexed by rank.
  sim::Co<std::vector<double>> allgather(int rank, double value);

  /// MPI_Comm_split. Ranks with the same colour form a sub-communicator;
  /// ranks are ordered by (key, old rank). Returns the sub-communicator
  /// (owned by this parent) and the caller's rank within it.
  struct SplitResult {
    Communicator* comm = nullptr;
    int rank = -1;
  };
  sim::Co<SplitResult> split(int rank, int color, int key);

 private:
  sim::Engine* eng_;
  int size_;
  Seconds hop_latency_;

  struct Contribution {
    double value = 0.0;
    int color = 0;
    int key = 0;
  };
  /// One in-flight collective: contributions from each rank, a completion
  /// event, the computed result, and a consumption count for cleanup (the
  /// last rank to read the result erases the entry).
  struct Pending {
    int arrived = 0;
    int consumed = 0;
    std::vector<Contribution> contribs;
    std::vector<bool> present;
    std::unique_ptr<sim::Event> done;
    // Results:
    double scalar = 0.0;
    std::vector<double> vec;
    std::vector<Communicator*> split_comm_of_rank;
    std::vector<int> split_rank_of_rank;
  };

  Seconds collective_latency() const;

  std::vector<std::uint64_t> next_seq_;      // per-rank collective counter
  std::map<std::uint64_t, Pending> pending_;  // seq -> in-flight collective
  std::vector<std::unique_ptr<Communicator>> children_;  // from split()
};

}  // namespace pfsc::mpi
