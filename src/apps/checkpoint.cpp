#include "apps/checkpoint.hpp"

#include <limits>
#include <vector>

#include "plfs/plfs.hpp"
#include "support/stats.hpp"

namespace pfsc::apps {

using lustre::Errno;

Seconds young_interval(Seconds checkpoint_cost, Seconds mtbf) {
  PFSC_REQUIRE(checkpoint_cost > 0.0 && mtbf > 0.0,
               "young_interval: cost and MTBF must be positive");
  return std::sqrt(2.0 * checkpoint_cost * mtbf);
}

Seconds daly_interval(Seconds checkpoint_cost, Seconds mtbf) {
  PFSC_REQUIRE(checkpoint_cost > 0.0 && mtbf > 0.0,
               "daly_interval: cost and MTBF must be positive");
  // Daly (2006): t_opt = sqrt(2 C M) * [1 + 1/3 sqrt(C/(2M)) + C/(9*2M)] - C
  // for C < 2M, else t_opt = M.
  if (checkpoint_cost >= 2.0 * mtbf) return mtbf;
  const double ratio = std::sqrt(checkpoint_cost / (2.0 * mtbf));
  return std::sqrt(2.0 * checkpoint_cost * mtbf) *
             (1.0 + ratio / 3.0 + checkpoint_cost / (18.0 * mtbf)) -
         checkpoint_cost;
}

double predicted_efficiency(Seconds interval, Seconds checkpoint_cost,
                            Seconds mtbf, Seconds restart_cost) {
  PFSC_REQUIRE(interval > 0.0, "predicted_efficiency: interval must be positive");
  // Per cycle: interval of useful work plus the checkpoint; failures arrive
  // at rate 1/M and each costs (on average) half a cycle of rework plus the
  // restart.
  const Seconds cycle = interval + checkpoint_cost;
  double overhead = checkpoint_cost / cycle;
  if (mtbf > 0.0) {
    const double failure_rate = 1.0 / mtbf;
    overhead += failure_rate * (cycle / 2.0 + restart_cost);
  }
  return std::max(0.0, std::min(1.0, 1.0 - overhead));
}

namespace {

/// Shared state of one application run; mutated only by rank 0 between
/// paired barriers, read by everyone after.
struct AppState {
  CheckpointSpec spec;
  lustre::FileSystem* fs = nullptr;
  mpi::Runtime* rt = nullptr;
  plfs::Plfs* plfs = nullptr;
  Rng rng;

  Seconds work_done = 0.0;
  Seconds work_durable = 0.0;  // covered by the last valid checkpoint
  Seconds next_failure = 0.0;
  int durable_attempt = -1;  // index of the last valid checkpoint file
  unsigned attempt = 0;
  bool done = false;
  bool needs_restart = false;

  // Per-attempt collective files; created lazily by rank 0.
  std::vector<std::unique_ptr<mpiio::File>> files;
  std::vector<std::unique_ptr<sim::Event>> ready;

  CheckpointOutcome outcome;
  RunningStats ckpt_seconds;

  void draw_next_failure(Seconds now) {
    if (spec.mtbf <= 0.0) {
      next_failure = std::numeric_limits<double>::infinity();
      return;
    }
    const double u = rng.uniform_double();
    next_failure = now + -spec.mtbf * std::log1p(-u);
  }
};

/// Ready event for an attempt, created on first touch by whichever rank
/// gets there first (single-threaded simulation: no data race).
sim::Event& ready_for_attempt(AppState& st, unsigned attempt) {
  if (st.ready.size() <= attempt) st.ready.resize(attempt + 1);
  if (!st.ready[attempt]) {
    st.ready[attempt] = std::make_unique<sim::Event>(st.fs->engine());
  }
  return *st.ready[attempt];
}

/// Rank 0 constructs the collective File for this attempt; everyone else
/// waits for it.
sim::Co<mpiio::File*> file_for_attempt(AppState& st, unsigned attempt,
                                       int rank) {
  sim::Event& ready = ready_for_attempt(st, attempt);
  if (rank == 0) {
    if (st.files.size() <= attempt) st.files.resize(attempt + 1);
    if (!st.files[attempt]) {
      st.files[attempt] = std::make_unique<mpiio::File>(
          st.rt->world(), *st.fs,
          st.spec.dir + "/ckpt." + std::to_string(attempt), st.spec.hints,
          st.plfs);
    }
    ready.trigger();
  } else if (!ready.fired()) {
    co_await ready.wait();
  }
  co_return st.files[attempt].get();
}

/// Collective read of the last durable checkpoint plus the relaunch delay.
sim::Co<void> restart_from_checkpoint(AppState& st, int rank,
                                      lustre::Client& client) {
  co_await st.fs->engine().delay(st.spec.relaunch_delay);
  if (st.durable_attempt < 0) co_return;  // restart from the beginning
  mpiio::File& file = *st.files[static_cast<std::size_t>(st.durable_attempt)];
  const Errno e = co_await file.open(rank, client, /*create=*/false);
  PFSC_ASSERT(e == lustre::Errno::ok);
  const Bytes base = static_cast<Bytes>(rank) * st.spec.bytes_per_rank;
  const Errno re = co_await file.read_at_all(rank, base, st.spec.bytes_per_rank);
  PFSC_ASSERT(re == lustre::Errno::ok);
  const Errno ce = co_await file.close(rank);
  PFSC_ASSERT(ce == lustre::Errno::ok);
}

sim::Task app_rank(AppState& st, int rank) {
  mpi::Communicator& comm = st.rt->world();
  sim::Engine& eng = st.fs->engine();
  lustre::Client& client = st.rt->client(rank);

  if (rank == 0) {
    auto r = co_await client.mkdir(st.spec.dir);
    PFSC_ASSERT(r.ok() || r.err == lustre::Errno::eexist);
    st.draw_next_failure(eng.now());
  }
  co_await comm.barrier(rank);

  while (!st.done) {
    // ---- compute phase -------------------------------------------------
    const Seconds remaining = st.spec.work_total - st.work_done;
    const Seconds chunk = std::min(st.spec.interval, remaining);
    const Seconds phase_start = eng.now();
    const Seconds compute_end = phase_start + chunk;
    if (st.next_failure < compute_end) {
      // Failure mid-compute: everyone stops at the failure instant. The
      // partial chunk plus anything not yet durably checkpointed is lost.
      const Seconds partial = std::max(0.0, st.next_failure - phase_start);
      co_await eng.delay(std::max(0.0, st.next_failure - eng.now()));
      co_await comm.barrier(rank);
      if (rank == 0) {
        ++st.outcome.failures;
        st.outcome.work_lost += (st.work_done - st.work_durable) + partial;
        st.work_done = st.work_durable;
        st.draw_next_failure(eng.now());
      }
      co_await comm.barrier(rank);
      co_await restart_from_checkpoint(st, rank, client);
      co_await comm.barrier(rank);
      continue;
    }
    co_await eng.delay(chunk);
    co_await comm.barrier(rank);
    if (rank == 0) st.work_done += chunk;
    co_await comm.barrier(rank);

    // ---- checkpoint phase ----------------------------------------------
    const unsigned attempt = st.attempt;
    mpiio::File& file = *co_await file_for_attempt(st, attempt, rank);
    co_await comm.barrier(rank);
    const Seconds t0 = eng.now();
    Errno e = co_await file.open(rank, client, /*create=*/true);
    if (e == lustre::Errno::ok) {
      const Bytes base = static_cast<Bytes>(rank) * st.spec.bytes_per_rank;
      for (Bytes off = 0; off < st.spec.bytes_per_rank && e == lustre::Errno::ok;
           off += 4_MiB) {
        const Bytes len = std::min<Bytes>(4_MiB, st.spec.bytes_per_rank - off);
        e = co_await file.write_at_all(rank, base + off, len);
      }
      const Errno ce = co_await file.close(rank);
      if (e == lustre::Errno::ok) e = ce;
    }
    co_await comm.barrier(rank);
    if (rank == 0) {
      ++st.attempt;
      const Seconds elapsed = eng.now() - t0;
      if (st.next_failure < eng.now() || e != lustre::Errno::ok) {
        // The failure hit while the checkpoint was in flight (or the write
        // failed): the file cannot be trusted. Roll back and restart.
        ++st.outcome.checkpoints_wasted;
        if (st.next_failure < eng.now()) {
          ++st.outcome.failures;
          st.draw_next_failure(eng.now());
        }
        st.outcome.work_lost += st.work_done - st.work_durable;
        st.work_done = st.work_durable;
        st.needs_restart = true;
      } else {
        ++st.outcome.checkpoints_written;
        st.ckpt_seconds.add(elapsed);
        st.work_durable = st.work_done;
        st.durable_attempt = static_cast<int>(attempt);
        if (st.work_done >= st.spec.work_total) st.done = true;
      }
    }
    co_await comm.barrier(rank);
    if (st.needs_restart) {
      co_await restart_from_checkpoint(st, rank, client);
      co_await comm.barrier(rank);
      if (rank == 0) st.needs_restart = false;
      co_await comm.barrier(rank);
    }
  }
}

}  // namespace

CheckpointOutcome run_checkpoint_app(lustre::FileSystem& fs,
                                     const CheckpointSpec& spec,
                                     std::uint64_t seed, plfs::Plfs* plfs) {
  PFSC_REQUIRE(spec.work_total > 0.0 && spec.interval > 0.0,
               "run_checkpoint_app: work and interval must be positive");
  AppState st;
  st.spec = spec;
  st.fs = &fs;
  st.plfs = plfs;
  st.rng = Rng(seed);
  mpi::Runtime rt(fs, spec.nprocs, spec.procs_per_node);
  st.rt = &rt;

  const Seconds t0 = fs.engine().now();
  rt.run_to_completion([&](int rank) -> sim::Task { return app_rank(st, rank); });

  st.outcome.makespan = fs.engine().now() - t0;
  st.outcome.work_done = st.work_done;
  st.outcome.mean_checkpoint_seconds = st.ckpt_seconds.mean();
  st.outcome.efficiency =
      st.outcome.makespan > 0.0 ? st.work_done / st.outcome.makespan : 0.0;
  return st.outcome;
}

}  // namespace pfsc::apps
