// Checkpoint/restart application model — the workload the paper's
// introduction motivates: "long running scientific simulations require
// checkpointing to reduce the impact of a node failure ... Writing out
// this data to a parallel file system is fast becoming a bottleneck".
//
// A CheckpointApp alternates compute phases with collective checkpoint
// writes through MPI-IO, while an exponential failure process (system
// MTBF) destroys in-flight progress: work since the last durable
// checkpoint is lost and the application restarts by reading that
// checkpoint back. The outcome is the application's *efficiency* — useful
// compute time over wall-clock — which is exactly what slow checkpoint
// bandwidth erodes.
//
// The classic optimal-interval results are provided for comparison:
// Young's approximation t_opt = sqrt(2 C M) and Daly's higher-order
// refinement.
#pragma once

#include <cmath>
#include <memory>
#include <string>

#include "mpi/runtime.hpp"
#include "mpiio/file.hpp"
#include "support/rng.hpp"

namespace pfsc::apps {

/// Young's optimal checkpoint interval: sqrt(2 * C * MTBF), valid for
/// C << MTBF.
Seconds young_interval(Seconds checkpoint_cost, Seconds mtbf);

/// Daly's refinement (J. T. Daly, FGCS 2006), accurate for larger C/MTBF.
Seconds daly_interval(Seconds checkpoint_cost, Seconds mtbf);

/// First-order expected efficiency of a checkpointing application:
/// useful / (useful + checkpoint overhead + expected rework + restarts).
double predicted_efficiency(Seconds interval, Seconds checkpoint_cost,
                            Seconds mtbf, Seconds restart_cost);

struct CheckpointSpec {
  int nprocs = 256;
  int procs_per_node = 16;
  /// Checkpoint payload per rank.
  Bytes bytes_per_rank = 64_MiB;
  /// Total useful compute the run must accumulate.
  Seconds work_total = 3600.0;
  /// Compute time between checkpoints.
  Seconds interval = 600.0;
  /// System mean time between failures (0 = no failures).
  Seconds mtbf = 0.0;
  /// Fixed job-relaunch delay on top of reading the checkpoint back.
  Seconds relaunch_delay = 30.0;
  mpiio::Hints hints;
  std::string dir = "/ckpt";
};

struct CheckpointOutcome {
  Seconds makespan = 0.0;
  Seconds work_done = 0.0;
  unsigned checkpoints_written = 0;
  unsigned checkpoints_wasted = 0;  // invalidated by a failure mid-write
  unsigned failures = 0;
  Seconds work_lost = 0.0;
  Seconds mean_checkpoint_seconds = 0.0;
  double efficiency = 0.0;  // work_done / makespan
};

/// Run the checkpoint/restart loop on an existing file system (the caller
/// owns engine + fs so several apps can share a contended system).
/// Blocks until the app completes its work (runs the engine).
CheckpointOutcome run_checkpoint_app(lustre::FileSystem& fs,
                                     const CheckpointSpec& spec,
                                     std::uint64_t seed,
                                     plfs::Plfs* plfs = nullptr);

}  // namespace pfsc::apps
