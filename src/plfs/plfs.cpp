#include "plfs/plfs.hpp"

#include <algorithm>

namespace pfsc::plfs {

using lustre::Errno;
using lustre::InodeId;
using lustre::Result;

// ---------------------------------------------------------------------------
// ReadHandle: logical->physical interval map with last-writer-wins splicing.
// ---------------------------------------------------------------------------

void ReadHandle::splice(const IndexRecord& rec, InodeId data_file) {
  if (rec.length == 0) return;
  Bytes start = rec.logical_offset;
  const Bytes end = rec.logical_offset + rec.length;

  // Collect existing entries overlapping [start, end).
  auto it = map_.upper_bound(start);
  if (it != map_.begin()) {
    auto prev = std::prev(it);
    if (prev->second.end > start) it = prev;
  }
  std::vector<std::pair<Bytes, Entry>> survivors;
  while (it != map_.end() && it->first < end) {
    const Bytes e_start = it->first;
    const Entry e = it->second;
    it = map_.erase(it);
    if (e.timestamp > rec.timestamp) {
      // Existing data is newer: it survives; the new record must not
      // overwrite this span. Keep it whole.
      survivors.emplace_back(e_start, e);
    } else {
      // Older data: keep only the parts outside [start, end).
      if (e_start < start) {
        Entry left = e;
        left.end = start;
        survivors.emplace_back(e_start, left);
      }
      if (e.end > end) {
        Entry right = e;
        right.physical += end - e_start;
        survivors.emplace_back(end, right);
      }
    }
  }

  // Insert the new record, minus any newer surviving spans.
  std::vector<std::pair<Bytes, Bytes>> holes;  // spans blocked by newer data
  for (const auto& [s, e] : survivors) {
    if (e.timestamp > rec.timestamp) {
      holes.emplace_back(std::max(s, start), std::min(e.end, end));
    }
  }
  std::sort(holes.begin(), holes.end());
  Bytes cursor = start;
  auto emit = [&](Bytes s, Bytes e) {
    if (e <= s) return;
    Entry entry;
    entry.end = e;
    entry.physical = rec.physical_offset + (s - rec.logical_offset);
    entry.data_file = data_file;
    entry.timestamp = rec.timestamp;
    map_.emplace(s, entry);
  };
  for (const auto& [hs, he] : holes) {
    emit(cursor, hs);
    cursor = std::max(cursor, he);
  }
  emit(cursor, end);

  for (const auto& [s, e] : survivors) map_.emplace(s, e);
}

bool ReadHandle::resolve(Bytes offset, Bytes length,
                         std::vector<Mapping>& out) const {
  out.clear();
  if (length == 0) return true;
  Bytes pos = offset;
  const Bytes end = offset + length;
  auto it = map_.upper_bound(pos);
  if (it != map_.begin()) {
    auto prev = std::prev(it);
    if (prev->second.end > pos) it = prev;
  }
  while (pos < end) {
    if (it == map_.end() || it->first > pos) return false;  // hole
    const Bytes take = std::min(end, it->second.end) - pos;
    Mapping m;
    m.logical = pos;
    m.length = take;
    m.physical = it->second.physical + (pos - it->first);
    m.data_file = it->second.data_file;
    out.push_back(m);
    pos += take;
    ++it;
  }
  return true;
}

Bytes ReadHandle::logical_size() const {
  if (map_.empty()) return 0;
  return map_.rbegin()->second.end;
}

// ---------------------------------------------------------------------------
// Plfs
// ---------------------------------------------------------------------------

Plfs::Plfs(lustre::FileSystem& fs, PlfsParams params)
    : fs_(&fs), params_(params) {
  PFSC_REQUIRE(params_.num_hash_dirs >= 1, "Plfs: need at least one hash dir");
  PFSC_REQUIRE(params_.index_record_bytes > 0, "Plfs: index record size");
}

std::string Plfs::hashdir_name(int rank, std::uint32_t num_dirs) {
  // PLFS hashes the writing host; ranks on the same node land together.
  const auto bucket = static_cast<std::uint32_t>(rank) % num_dirs;
  return "hostdir." + std::to_string(bucket);
}

sim::Co<Errno> Plfs::ensure_container(lustre::Client& client,
                                      const std::string& logical_path,
                                      int rank) {
  if (!fs_->exists(logical_path)) {
    auto r = co_await client.mkdir(logical_path);
    if (!r.ok() && r.err != Errno::eexist) co_return r.err;
    // The container creator drops the "access" marker file; races lose
    // with EEXIST and carry on.
    auto access = co_await client.create(logical_path + "/access",
                                         lustre::StripeSettings{1, 64_KiB, -1});
    if (!access.ok() && access.err != Errno::eexist) co_return access.err;
  }
  const std::string hashdir =
      logical_path + "/" + hashdir_name(rank, params_.num_hash_dirs);
  if (!fs_->exists(hashdir)) {
    auto r = co_await client.mkdir(hashdir);
    if (!r.ok() && r.err != Errno::eexist) co_return r.err;
  }
  co_return Errno::ok;
}

sim::Co<Result<WriteHandle>> Plfs::open_write(lustre::Client& client,
                                              std::string logical_path,
                                              int rank) {
  using R = Result<WriteHandle>;
  if (Errno e = co_await ensure_container(client, logical_path, rank);
      e != Errno::ok) {
    co_return R::failure(e);
  }
  const std::string hashdir =
      logical_path + "/" + hashdir_name(rank, params_.num_hash_dirs);
  const std::string suffix = "." + std::to_string(rank);

  auto data = co_await client.create(hashdir + "/data" + suffix,
                                     params_.backend_stripe);
  if (!data.ok()) co_return R::failure(data.err);
  auto index = co_await client.create(hashdir + "/index" + suffix,
                                      params_.backend_stripe);
  if (!index.ok()) co_return R::failure(index.err);

  WriteHandle h;
  h.container = std::move(logical_path);
  h.rank = rank;
  h.data_file = data.value;
  h.index_file = index.value;
  h.open = true;
  shadow_data_files_[h.container][rank] = h.data_file;
  co_return R::success(std::move(h));
}

sim::Co<Errno> Plfs::flush_index(lustre::Client& client, WriteHandle& h) {
  if (h.pending_index.empty()) co_return Errno::ok;
  const Bytes bytes =
      params_.index_record_bytes * static_cast<Bytes>(h.pending_index.size());
  const Errno e = co_await client.write(h.index_file, h.index_cursor, bytes);
  if (e != Errno::ok) co_return e;
  h.index_cursor += bytes;
  auto& shadow = shadow_index_[h.container][h.rank];
  shadow.insert(shadow.end(), h.pending_index.begin(), h.pending_index.end());
  h.pending_index.clear();
  co_return Errno::ok;
}

sim::Co<Errno> Plfs::write(lustre::Client& client, WriteHandle& h,
                           Bytes logical_offset, Bytes length) {
  PFSC_REQUIRE(h.open, "Plfs::write: handle not open");
  if (length == 0) co_return Errno::ok;

  // Async span per plfs_write on the shared "plfs" track: overhead +
  // admission into the data log's write-back budget (the backend transfer
  // continues under the client/link/disk spans).
  sim::Engine& eng = fs_->engine();
  std::uint64_t span = 0;
  if (auto* rec = eng.recorder();
      rec != nullptr && rec->enabled(trace::Cat::plfs)) {
    span = rec->next_id();
    rec->begin(trace::Cat::plfs, track_.get(*rec, "plfs"), "write", eng.now(),
               span, static_cast<std::int64_t>(h.rank),
               static_cast<std::int64_t>(logical_offset),
               static_cast<double>(length));
  }
  // The PLFS write path costs client CPU per call, then hands the append
  // to the page cache (buffered); data reaches the OSTs asynchronously and
  // errors surface at close (fsync semantics).
  if (params_.write_overhead > 0.0) {
    co_await fs_->engine().delay(params_.write_overhead);
  }
  const Errno e = co_await client.write_buffered(h.data_file, h.data_cursor, length);
  if (span != 0) {
    if (auto* rec = eng.recorder();
        rec != nullptr && rec->enabled(trace::Cat::plfs)) {
      rec->end(trace::Cat::plfs, track_.get(*rec, "plfs"), "write", eng.now(),
               span, static_cast<std::int64_t>(h.rank));
    }
  }
  if (e != Errno::ok) co_return e;

  IndexRecord rec;
  rec.logical_offset = logical_offset;
  rec.length = length;
  rec.physical_offset = h.data_cursor;
  rec.writer_rank = h.rank;
  rec.timestamp = fs_->engine().now();
  h.data_cursor += length;
  h.pending_index.push_back(rec);
  h.all_records.push_back(rec);

  if (h.pending_index.size() >= params_.index_flush_records) {
    co_return co_await flush_index(client, h);
  }
  co_return Errno::ok;
}

sim::Co<Errno> Plfs::close_write(lustre::Client& client, WriteHandle& h) {
  PFSC_REQUIRE(h.open, "Plfs::close_write: handle not open");
  // Drain buffered data first (close implies fsync of the data log), then
  // flush the remaining index records.
  Errno e = co_await client.flush();
  const Errno ie = co_await flush_index(client, h);
  if (e == Errno::ok) e = ie;
  h.open = false;
  co_return e;
}

sim::Co<Result<ReadHandle>> Plfs::open_read(lustre::Client& client,
                                            std::string logical_path) {
  using R = Result<ReadHandle>;
  if (!is_container(logical_path)) co_return R::failure(Errno::enoent);

  auto shadow_it = shadow_index_.find(logical_path);
  ReadHandle handle;
  if (shadow_it == shadow_index_.end()) co_return R::success(std::move(handle));
  const auto& data_files = shadow_data_files_.at(logical_path);

  // Pay the metadata cost of listing the hash dirs, then read every index
  // log before merging.
  auto names = co_await fs_->readdir(logical_path);
  if (!names.ok()) co_return R::failure(names.err);
  for (const auto& name : names.value) {
    if (name.rfind("hostdir.", 0) == 0) {
      auto listing = co_await fs_->readdir(logical_path + "/" + name);
      if (!listing.ok()) co_return R::failure(listing.err);
    }
  }

  for (const auto& [rank, records] : shadow_it->second) {
    const std::string hashdir =
        logical_path + "/" + hashdir_name(rank, params_.num_hash_dirs);
    const std::string index_path = hashdir + "/index." + std::to_string(rank);
    const lustre::Inode* index_inode = fs_->find(index_path);
    if (index_inode == nullptr) co_return R::failure(Errno::eio);
    auto open_r = co_await client.open(index_path);
    if (!open_r.ok()) co_return R::failure(open_r.err);
    if (index_inode->size > 0) {
      const Errno e = co_await client.read(open_r.value, 0, index_inode->size);
      if (e != Errno::ok) co_return R::failure(e);
    }
    const InodeId data_file = data_files.at(rank);
    for (const IndexRecord& rec : records) handle.splice(rec, data_file);
  }
  co_return R::success(std::move(handle));
}

sim::Co<Errno> Plfs::read(lustre::Client& client, ReadHandle& h,
                          Bytes logical_offset, Bytes length) {
  std::vector<ReadHandle::Mapping> runs;
  if (!h.resolve(logical_offset, length, runs)) co_return Errno::einval;
  for (const auto& run : runs) {
    const Errno e = co_await client.read(run.data_file, run.physical, run.length);
    if (e != Errno::ok) co_return e;
  }
  co_return Errno::ok;
}

sim::Co<Errno> Plfs::remove(lustre::Client& client, std::string logical_path) {
  if (!is_container(logical_path)) co_return Errno::enoent;
  // Depth-first: unlink data/index files, then hash dirs, then the marker
  // and the container directory itself.
  auto top = co_await fs_->readdir(logical_path);
  if (!top.ok()) co_return top.err;
  for (const auto& entry : top.value) {
    const std::string child = logical_path + "/" + entry;
    const lustre::Inode* node = fs_->find(child);
    if (node == nullptr) continue;
    if (node->is_dir) {
      auto listing = co_await fs_->readdir(child);
      if (!listing.ok()) co_return listing.err;
      for (const auto& name : listing.value) {
        if (Errno e = co_await client.unlink(child + "/" + name); e != Errno::ok) {
          co_return e;
        }
      }
      if (Errno e = co_await client.unlink(child); e != Errno::ok) co_return e;
    } else {
      if (Errno e = co_await client.unlink(child); e != Errno::ok) co_return e;
    }
  }
  if (Errno e = co_await client.unlink(logical_path); e != Errno::ok) co_return e;
  shadow_index_.erase(logical_path);
  shadow_data_files_.erase(logical_path);
  co_return Errno::ok;
}

bool Plfs::is_container(std::string_view logical_path) const {
  const lustre::Inode* node = fs_->find(logical_path);
  return node != nullptr && node->is_dir && node->entries.contains("access");
}

std::vector<InodeId> Plfs::backend_data_files(
    std::string_view logical_path) const {
  std::vector<InodeId> out;
  for (InodeId id : fs_->files_under(logical_path)) {
    const lustre::Inode& node = fs_->inode(id);
    if (node.name.rfind("data.", 0) == 0) out.push_back(id);
  }
  return out;
}

}  // namespace pfsc::plfs
