// PLFS: the Parallel Log-structured File System (Bent et al., SC'09),
// reimplemented on top of the simulated Lustre file system.
//
// PLFS turns an N-processes-to-1-file write pattern into N-to-N: a logical
// file is a *container* directory holding hashed subdirectories, and every
// writing rank appends to its own data log (data.<rank>) plus an index log
// (index.<rank>) of (logical offset, length, physical offset, timestamp)
// records. Readers merge all index logs into one logical->physical map.
//
// Because each backend file is created through POSIX with the file-system
// default layout (2 x 1 MiB stripes on lscratchc, unless lfs setstripe says
// otherwise), a run with n ranks scatters 2n stripes over the OSTs — the
// self-contention that Section VI of the paper quantifies with
// Equations 5-6.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "lustre/client.hpp"
#include "lustre/fs.hpp"
#include "trace/recorder.hpp"

namespace pfsc::plfs {

struct PlfsParams {
  /// Number of hashed hostdir.N subdirectories per container.
  std::uint32_t num_hash_dirs = 32;
  /// On-disk footprint of one index record.
  Bytes index_record_bytes = 48;
  /// Write-behind: flush the index log every this many records (and at close).
  std::uint32_t index_flush_records = 64;
  /// Layout for backend data/index files; zeros = file-system default,
  /// which is the paper's "two 1 MB stripes per file" situation.
  lustre::StripeSettings backend_stripe{};
  /// Client-side cost of one plfs_write call (container/index bookkeeping,
  /// droppings maintenance, extra copy through the PLFS layer). Calibrated
  /// against the small-scale points of the paper's Table VII, where PLFS
  /// ranks sustain ~50 MB/s each despite idle OSTs.
  Seconds write_overhead = 18.0e-3;
};

struct IndexRecord {
  Bytes logical_offset = 0;
  Bytes length = 0;
  Bytes physical_offset = 0;
  int writer_rank = -1;
  double timestamp = 0.0;  // simulated seconds; later wins on overlap
};

/// Per-rank write-side state for one open container.
struct WriteHandle {
  std::string container;
  int rank = -1;
  lustre::InodeId data_file = lustre::kNoInode;
  lustre::InodeId index_file = lustre::kNoInode;
  Bytes data_cursor = 0;   // log-structured append position
  Bytes index_cursor = 0;  // append position in the index log
  std::vector<IndexRecord> pending_index;  // buffered, not yet flushed
  std::vector<IndexRecord> all_records;    // everything written this session
  bool open = false;
};

/// Read-side state: the merged logical->physical map.
class ReadHandle {
 public:
  struct Mapping {
    Bytes logical = 0;
    Bytes length = 0;
    Bytes physical = 0;
    lustre::InodeId data_file = lustre::kNoInode;
  };

  /// Splice `rec` into the map; `rec` wins over earlier-timestamped data.
  void splice(const IndexRecord& rec, lustre::InodeId data_file);

  /// Resolve [offset, offset+length) into physical runs. Returns false if
  /// any byte is unmapped (hole).
  bool resolve(Bytes offset, Bytes length, std::vector<Mapping>& out) const;

  Bytes logical_size() const;
  std::size_t mapping_count() const { return map_.size(); }

 private:
  struct Entry {
    Bytes end = 0;  // exclusive logical end
    Bytes physical = 0;
    lustre::InodeId data_file = lustre::kNoInode;
    double timestamp = 0.0;
  };
  std::map<Bytes, Entry> map_;  // logical start -> entry (non-overlapping)
};

class Plfs {
 public:
  explicit Plfs(lustre::FileSystem& fs, PlfsParams params = {});

  Plfs(const Plfs&) = delete;
  Plfs& operator=(const Plfs&) = delete;

  // -- write path --------------------------------------------------------
  sim::Co<lustre::Result<WriteHandle>> open_write(lustre::Client& client,
                                                  std::string logical_path,
                                                  int rank);
  sim::Co<lustre::Errno> write(lustre::Client& client, WriteHandle& h,
                               Bytes logical_offset, Bytes length);
  sim::Co<lustre::Errno> close_write(lustre::Client& client, WriteHandle& h);

  // -- read path ---------------------------------------------------------
  sim::Co<lustre::Result<ReadHandle>> open_read(lustre::Client& client,
                                                std::string logical_path);
  sim::Co<lustre::Errno> read(lustre::Client& client, ReadHandle& h,
                              Bytes logical_offset, Bytes length);

  /// Remove a container and every backend file in it (plfs_rm/rmdir).
  sim::Co<lustre::Errno> remove(lustre::Client& client,
                                std::string logical_path);

  // -- inspection ---------------------------------------------------------
  bool is_container(std::string_view logical_path) const;
  /// Backend data-file inodes of a container (for collision statistics).
  std::vector<lustre::InodeId> backend_data_files(
      std::string_view logical_path) const;
  const PlfsParams& params() const { return params_; }

  static std::string hashdir_name(int rank, std::uint32_t num_dirs);

 private:
  sim::Co<lustre::Errno> ensure_container(lustre::Client& client,
                                          const std::string& logical_path,
                                          int rank);
  sim::Co<lustre::Errno> flush_index(lustre::Client& client, WriteHandle& h);

  lustre::FileSystem* fs_;
  PlfsParams params_;
  trace::TrackHandle track_;  // shared "plfs" track (args carry the rank)
  /// Shadow of flushed index contents, keyed (container, rank). The
  /// simulator does not store payload bytes, so readers reconstruct the
  /// logical map from this shadow after paying the simulated cost of
  /// reading the index logs.
  std::map<std::string, std::map<int, std::vector<IndexRecord>>> shadow_index_;
  std::map<std::string, std::map<int, lustre::InodeId>> shadow_data_files_;
};

}  // namespace pfsc::plfs
