// The control plane's wiring layer: named runtime-retunable endpoints.
//
// A Retunable is anything that can accept a new tuning value mid-run —
// an OSS scheduler's SchedTuning, the MDS placement policy, the PFL
// size-class table, a directory default layout. The TuningBus is a flat
// name -> endpoint registry: policies (ctrl::Controller, tests, future
// external agents) apply values by name without knowing which simulator
// object sits behind the name.
//
// Deliberate layering: the tunable objects themselves (sched::Scheduler,
// lustre::FileSystem) do NOT implement Retunable — they expose plain
// setters (set_tuning, set_placement, set_pfl, set_dir_stripe_now) and
// stay ignorant of the control plane. ctrl/ wraps those setters in
// adapter endpoints, so lustre never links ctrl and the dependency graph
// stays a DAG: support -> sim/hw -> lustre -> trace -> ctrl -> harness.
//
// Type safety: TuneValue is a closed variant. An endpoint receiving the
// wrong alternative throws UsageError and leaves the previous tuning in
// place — a misdirected apply must not half-configure the I/O path.
#pragma once

#include <functional>
#include <map>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

#include "lustre/layout.hpp"
#include "lustre/pfl.hpp"
#include "lustre/placement.hpp"
#include "lustre/sched/policy.hpp"
#include "support/error.hpp"

namespace pfsc::ctrl {

/// Every value the control plane knows how to carry.
using TuneValue = std::variant<lustre::sched::SchedTuning,
                               lustre::PlacementKind, lustre::PflSpec,
                               lustre::StripeSettings>;

class Retunable {
 public:
  virtual ~Retunable() = default;

  /// Install a new tuning value. Throws UsageError (and changes nothing)
  /// when the variant alternative is not the one this endpoint consumes.
  virtual void apply_tuning(const TuneValue& value) = 0;
};

/// Adapter: a Retunable endpoint expecting one specific alternative,
/// forwarding it to a callable (usually a lambda over a plain setter).
template <typename T>
class Endpoint final : public Retunable {
 public:
  Endpoint(std::string name, std::function<void(const T&)> apply)
      : name_(std::move(name)), apply_(std::move(apply)) {}

  void apply_tuning(const TuneValue& value) override {
    const T* v = std::get_if<T>(&value);
    PFSC_REQUIRE(v != nullptr,
                 "TuningBus: wrong value type for endpoint " + name_);
    apply_(*v);
  }

 private:
  std::string name_;
  std::function<void(const T&)> apply_;
};

/// Name -> endpoint registry. Non-owning: whoever attaches an endpoint
/// keeps it alive until detach (or bus destruction).
class TuningBus {
 public:
  /// Register an endpoint; UsageError on a duplicate name.
  void attach(std::string name, Retunable& endpoint);
  void detach(std::string_view name);
  /// The endpoint behind `name`, or nullptr.
  Retunable* find(std::string_view name) const;
  /// Apply `value` to the named endpoint; UsageError if unknown.
  void apply(std::string_view name, const TuneValue& value);
  /// Registered names, sorted.
  std::vector<std::string> endpoints() const;
  std::size_t size() const { return endpoints_.size(); }

 private:
  std::map<std::string, Retunable*, std::less<>> endpoints_;
};

}  // namespace pfsc::ctrl
