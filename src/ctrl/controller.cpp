#include "ctrl/controller.hpp"

#include <algorithm>
#include <sstream>

namespace pfsc::ctrl {

using lustre::PflSpec;
using lustre::PlacementKind;
using lustre::StripeSettings;
using lustre::sched::SchedTuning;

const char* ctrl_mode_name(CtrlMode mode) {
  switch (mode) {
    case CtrlMode::off: return "off";
    case CtrlMode::pfl: return "pfl";
    case CtrlMode::qos: return "qos";
    case CtrlMode::full: return "full";
  }
  return "?";
}

Controller::Controller(sim::Engine& eng, CtrlConfig cfg,
                       lustre::FileSystem& fs, trace::Recorder* recorder)
    : eng_(&eng),
      cfg_(cfg),
      fs_(&fs),
      recorder_(recorder),
      sched_baseline_(fs.params().oss_sched),
      placement_baseline_(fs.params().ost_placement) {
  PFSC_REQUIRE(cfg_.mode != CtrlMode::off,
               "Controller: construct only for an active mode");
  PFSC_REQUIRE(cfg_.interval > 0.0, "Controller: interval must be positive");
  PFSC_REQUIRE(cfg_.cooldown >= 0.0, "Controller: cooldown must be >= 0");

  // The standard endpoints, wrapping the plain setters the tunable
  // layers expose (they never see the bus; see retunable.hpp).
  auto add = [this](const char* name, auto&& endpoint) {
    endpoints_.push_back(
        std::forward<decltype(endpoint)>(endpoint));
    bus_.attach(name, *endpoints_.back());
  };
  add("oss_sched", std::make_unique<Endpoint<SchedTuning>>(
                       "oss_sched", [&fs](const SchedTuning& t) {
                         const std::uint32_t n = fs.params().oss_count;
                         for (std::uint32_t oss = 0; oss < n; ++oss) {
                           fs.oss_sched(oss).set_tuning(t);
                         }
                       }));
  add("placement", std::make_unique<Endpoint<PlacementKind>>(
                       "placement",
                       [&fs](const PlacementKind& k) { fs.set_placement(k); }));
  add("pfl", std::make_unique<Endpoint<PflSpec>>(
                 "pfl", [&fs](const PflSpec& spec) { fs.set_pfl(spec); }));
  add("dir_default",
      std::make_unique<Endpoint<StripeSettings>>(
          "dir_default", [&fs](const StripeSettings& s) {
            const lustre::Errno err = fs.set_dir_stripe_now("/", s);
            PFSC_REQUIRE(err == lustre::Errno::ok,
                         "ctrl: set_dir_stripe_now(/) failed");
          }));
}

PflSpec Controller::calm_spec() const {
  // Calm: small files stay narrow (their bandwidth never justifies the
  // per-OST footprint), everything else stripes as wide as the platform
  // allows — sole writers get the full parallelism.
  const auto& p = fs_->params();
  const std::uint32_t wide = std::min(p.max_stripe_count, p.ost_count);
  PflSpec spec;
  spec.classes.push_back({16_MiB, 1});
  spec.classes.push_back({256_MiB, std::max(1u, wide / 4)});
  spec.wide = wide;
  return spec;
}

PflSpec Controller::storm_spec(std::size_t active) const {
  // Storm: divide the OSTs across the active writers so each disk serves
  // as few competing streams as possible (the disk model's seek cost
  // amplifies per hot stream past the knee; see hw/disk.hpp).
  const auto& p = fs_->params();
  const std::uint32_t wide = std::min(p.max_stripe_count, p.ost_count);
  const auto jobs = static_cast<std::uint32_t>(std::max<std::size_t>(active, 1));
  const std::uint32_t share = std::max(1u, std::min(wide, p.ost_count / jobs));
  PflSpec spec;
  spec.classes.push_back({16_MiB, 1});
  spec.wide = share;
  return spec;
}

void Controller::start() {
  PFSC_REQUIRE(!started_, "Controller: already started");
  started_ = true;
  // Arm the baseline before the first event runs, so files created at
  // t=0 already land in the controlled regime.
  if (cfg_.mode == CtrlMode::pfl || cfg_.mode == CtrlMode::full) {
    act("pfl", "pfl", "pfl_calm", "wide layouts for new files",
        TuneValue(calm_spec()));
  }
  eng_->spawn(run());
}

void Controller::stop() {
  stopped_ = true;
  if (pending_wake_) {
    eng_->cancel_scheduled(pending_wake_);
    pending_wake_ = {};
  }
}

sim::Task Controller::run() {
  for (; ticks_ < cfg_.max_ticks && !stopped_; ++ticks_) {
    co_await TickWait{this};
    if (stopped_) break;
    tick();
    if (active_ && !active_()) break;
  }
}

void Controller::tick() {
  switch (cfg_.mode) {
    case CtrlMode::off: return;
    case CtrlMode::pfl:
      rule_pfl();
      return;
    case CtrlMode::qos:
      rule_qos();
      return;
    case CtrlMode::full:
      rule_pfl();
      rule_qos();
      rule_placement();
      return;
  }
}

std::size_t Controller::active_jobs() {
  const Seconds now = eng_->now();
  std::map<lustre::sched::JobId, Bytes> cur = fs_->sched_served_by_job();
  for (const auto& [job, bytes] : cur) {
    const auto it = served_prev_.find(job);
    const Bytes before = it == served_prev_.end() ? 0 : it->second;
    if (bytes > before) last_grew_[job] = now;
  }
  served_prev_ = std::move(cur);
  // A job stays "active" for active_window ticks after its last service:
  // FIFO drains one job's queue at a time, so a single-tick delta would
  // flap between 1 and n and drag the pfl rule with it.
  const Seconds window =
      static_cast<double>(cfg_.active_window) * cfg_.interval;
  std::size_t active = 0;
  for (const auto& [job, at] : last_grew_) {
    if (now - at <= window) ++active;
  }
  return active;
}

void Controller::rule_pfl() {
  const std::size_t active = active_jobs();
  if (!storm_ && active >= cfg_.storm_jobs) {
    if (in_cooldown("pfl")) return;
    storm_ = true;
    const PflSpec spec = storm_spec(active);
    storm_width_ = spec.wide;
    std::ostringstream detail;
    detail << "narrow layouts: " << spec.wide << " stripes for "
           << active << " writers";
    act("pfl", "pfl", "pfl_storm", detail.str(), TuneValue(spec));
    return;
  }
  if (storm_ && active + 1 <= cfg_.storm_jobs) {
    // Exit once concurrency drops strictly below the entry threshold.
    // This condition is the exact complement of the entry test — the
    // stickiness against flapping comes from the active_window smoothing
    // in active_jobs() and the per-family cooldown, not from a threshold
    // band here.
    if (in_cooldown("pfl")) return;
    storm_ = false;
    storm_width_ = 0;
    act("pfl", "pfl", "pfl_calm", "wide layouts for new files",
        TuneValue(calm_spec()));
    return;
  }
  if (storm_) {
    // Still storming: re-divide if the writer count moved the share.
    const PflSpec spec = storm_spec(active);
    if (spec.wide != storm_width_ && !in_cooldown("pfl")) {
      storm_width_ = spec.wide;
      std::ostringstream detail;
      detail << "re-divided: " << spec.wide << " stripes for " << active
             << " writers";
      act("pfl", "pfl", "pfl_storm", detail.str(), TuneValue(spec));
    }
  }
}

void Controller::rule_qos() {
  if (fs_->params().oss_sched_policy == lustre::sched::SchedPolicy::fifo) {
    return;  // FIFO has no tuning leverage
  }
  const double jain = fs_->sched_jain();
  if (!tightened_ && jain < cfg_.jain_low) {
    if (in_cooldown("qos")) return;
    tightened_ = true;
    SchedTuning tight = sched_baseline_;
    tight.quantum = std::max<Bytes>(1, sched_baseline_.quantum / 2);
    tight.service_slots =
        std::max<std::size_t>(1, sched_baseline_.service_slots / 2);
    tight.job_rate = sched_baseline_.job_rate / 2.0;
    tight.bucket_depth = std::max<Bytes>(1, sched_baseline_.bucket_depth / 2);
    std::ostringstream detail;
    detail << "tightened: jain " << jain << " < " << cfg_.jain_low;
    act("oss_sched", "qos", "qos_tighten", detail.str(), TuneValue(tight));
    return;
  }
  if (tightened_ && jain > cfg_.jain_high) {
    if (in_cooldown("qos")) return;
    tightened_ = false;
    std::ostringstream detail;
    detail << "restored baseline: jain " << jain << " > " << cfg_.jain_high;
    act("oss_sched", "qos", "qos_restore", detail.str(),
        TuneValue(sched_baseline_));
  }
}

void Controller::rule_placement() {
  const std::vector<std::uint64_t> objects = fs_->objects_per_ost();
  if (objects.empty()) return;
  std::uint64_t max = 0, sum = 0;
  for (const std::uint64_t n : objects) {
    max = std::max(max, n);
    sum += n;
  }
  if (sum == 0) return;
  const double mean =
      static_cast<double>(sum) / static_cast<double>(objects.size());
  const double imbalance = static_cast<double>(max) / mean;
  if (!rebalancing_ && imbalance > cfg_.imbalance_high) {
    if (in_cooldown("placement")) return;
    rebalancing_ = true;
    std::ostringstream detail;
    detail << "load_aware placement: imbalance " << imbalance;
    act("placement", "placement", "rebalance", detail.str(),
        TuneValue(PlacementKind::load_aware));
    return;
  }
  if (rebalancing_ && imbalance < cfg_.imbalance_low) {
    if (in_cooldown("placement")) return;
    rebalancing_ = false;
    std::ostringstream detail;
    detail << "restored " << lustre::placement_kind_name(placement_baseline_)
           << ": imbalance " << imbalance;
    act("placement", "placement", "restore", detail.str(),
        TuneValue(placement_baseline_));
  }
}

bool Controller::in_cooldown(const char* family) const {
  const auto it = last_action_.find(family);
  if (it == last_action_.end()) return false;
  return eng_->now() - it->second < cfg_.cooldown;
}

void Controller::act(const char* endpoint, const char* family,
                     const char* rule, std::string detail,
                     const TuneValue& value) {
  bus_.apply(endpoint, value);
  const Seconds now = eng_->now();
  last_action_[family] = now;
  actions_.push_back(CtrlAction{now, endpoint, rule, std::move(detail)});
  if (recorder_ != nullptr && recorder_->enabled(trace::Cat::sched)) {
    const trace::TrackId track = track_.get(*recorder_, "ctrl");
    recorder_->instant(trace::Cat::sched, track, rule, now,
                       static_cast<std::int64_t>(actions_.size()),
                       static_cast<std::int64_t>(ticks_));
  }
}

}  // namespace pfsc::ctrl
