#include "ctrl/retunable.hpp"

namespace pfsc::ctrl {

void TuningBus::attach(std::string name, Retunable& endpoint) {
  auto [it, inserted] = endpoints_.try_emplace(std::move(name), &endpoint);
  PFSC_REQUIRE(inserted, "TuningBus: duplicate endpoint " + it->first);
}

void TuningBus::detach(std::string_view name) {
  const auto it = endpoints_.find(name);
  if (it != endpoints_.end()) endpoints_.erase(it);
}

Retunable* TuningBus::find(std::string_view name) const {
  const auto it = endpoints_.find(name);
  return it == endpoints_.end() ? nullptr : it->second;
}

void TuningBus::apply(std::string_view name, const TuneValue& value) {
  Retunable* endpoint = find(name);
  PFSC_REQUIRE(endpoint != nullptr,
               "TuningBus: no endpoint named " + std::string(name));
  endpoint->apply_tuning(value);
}

std::vector<std::string> TuningBus::endpoints() const {
  std::vector<std::string> names;
  names.reserve(endpoints_.size());
  for (const auto& [name, endpoint] : endpoints_) names.push_back(name);
  return names;
}

}  // namespace pfsc::ctrl
