// The first consumer of the control plane: a rule-based feedback
// controller that samples the live instruments and retunes the I/O path
// mid-run through the TuningBus.
//
// The Controller is a periodic simulation process (same shape as
// trace::Sampler: a tick loop with a cancellable between-ticks wake, a
// watch predicate, and a max-tick bound). Every tick it reads
// instantaneous, side-effect-free signals — scheduler queue depth,
// per-job served-byte deltas, Jain fairness, per-OST object counts — and
// applies whichever rules the mode enables:
//
//  * pfl  — progressive file layouts: new files stripe wide while the
//           system is calm and narrow during a multi-job storm, so each
//           OST serves fewer competing streams exactly when the disk
//           model's contention amplification would bite (hw/disk.hpp).
//  * qos  — scheduler retuning: when per-job fairness collapses below
//           `jain_low`, tighten SchedTuning (halved quantum / slots /
//           rate / depth) on every OSS; restore the platform baseline
//           once Jain recovers above `jain_high`.
//  * full — pfl + qos, plus a placement rule: swap to load_aware
//           allocation when per-OST object counts grow imbalanced, back
//           to the configured policy once they level out.
//
// Flap damping: the qos and placement rules carry hysteresis (distinct
// enter/exit thresholds); the pfl rule instead smooths its writer count
// over `active_window` ticks. Every rule family additionally has a
// cooldown — two actions of the same family (pfl / qos / placement) are
// never closer than `cooldown` seconds. Decisions are recorded
// as CtrlAction rows (surfaced in fleet analytics as the "adaptation"
// block) and, when a Recorder is attached, as instants on a "ctrl" track.
//
// Determinism: the controller reads and writes simulator state directly,
// so a controlled run must be single-engine; the harness forces the
// sharded-sampler fallback whenever mode != off (exactly like periodic
// telemetry), keeping reports byte-identical at any --sim_domains or
// --threads. With mode == off nothing is constructed and no engine event
// is added — goldens stay bit-for-bit.
#pragma once

#include <coroutine>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "ctrl/retunable.hpp"
#include "lustre/fs.hpp"
#include "sim/engine.hpp"
#include "sim/task.hpp"
#include "support/units.hpp"
#include "trace/recorder.hpp"

namespace pfsc::ctrl {

enum class CtrlMode {
  off,   // no controller at all (default; zero events, bit-for-bit)
  pfl,   // progressive layouts for new files
  qos,   // scheduler retuning on fairness collapse
  full,  // pfl + qos + placement rebalancing
};

const char* ctrl_mode_name(CtrlMode mode);

struct CtrlConfig {
  CtrlMode mode = CtrlMode::off;
  /// Tick period of the control loop.
  Seconds interval = 0.25;
  /// Minimum time between two actions of the same rule family.
  Seconds cooldown = 1.0;
  /// qos hysteresis: tighten below jain_low, restore above jain_high.
  double jain_low = 0.85;
  double jain_high = 0.95;
  /// pfl: this many concurrently-writing jobs counts as a storm.
  std::size_t storm_jobs = 2;
  /// pfl: a job counts as an active writer if it received OSS service
  /// within this many ticks. Smooths over bursty service (FIFO drains one
  /// job's requests at a time, so a single-tick delta under-counts).
  std::size_t active_window = 4;
  /// full: swap placement above imbalance_high (max/mean objects per
  /// OST), swap back below imbalance_low.
  double imbalance_high = 2.0;
  double imbalance_low = 1.25;
  /// Lifetime bound, like trace::Sampler's (a watch predicate is the
  /// usual stop condition; this is the backstop).
  std::size_t max_ticks = 100000;
};

/// One controller decision, in simulated time.
struct CtrlAction {
  Seconds at = 0.0;
  std::string endpoint;  // TuningBus endpoint the value went to
  std::string rule;      // which rule fired (pfl_calm, qos_tighten, ...)
  std::string detail;    // human-readable value summary
};

class Controller {
 public:
  /// `recorder` (optional) receives one instant per action on a "ctrl"
  /// track under Cat::sched. The FileSystem must outlive the Controller.
  Controller(sim::Engine& eng, CtrlConfig cfg, lustre::FileSystem& fs,
             trace::Recorder* recorder = nullptr);

  Controller(const Controller&) = delete;
  Controller& operator=(const Controller&) = delete;

  /// Keep ticking only while `active()` is true (checked after each tick).
  void watch(std::function<bool()> active) { active_ = std::move(active); }

  /// Arm the baseline (mode-dependent, e.g. the calm PFL spec — applied
  /// synchronously so files created at t=0 already see it) and spawn the
  /// tick loop.
  void start();
  /// Stop ticking; cancels the pending between-ticks wake so a stopped
  /// controller does not keep the engine alive.
  void stop();

  /// The endpoint registry (exposed so tests and future policies can
  /// apply values by name themselves).
  TuningBus& bus() { return bus_; }

  const std::vector<CtrlAction>& actions() const { return actions_; }
  std::vector<CtrlAction> take_actions() { return std::move(actions_); }
  const CtrlConfig& config() const { return cfg_; }
  std::size_t ticks() const { return ticks_; }

 private:
  struct TickWait {
    Controller* self;
    bool await_ready() const noexcept { return false; }
    void await_suspend(std::coroutine_handle<> h) {
      self->pending_wake_ = self->eng_->schedule_after(h, self->cfg_.interval);
    }
    void await_resume() const noexcept { self->pending_wake_ = {}; }
  };

  sim::Task run();
  void tick();
  void rule_pfl();
  void rule_qos();
  void rule_placement();
  /// Apply `value` to `endpoint` and record the decision. `family` is the
  /// rule-family key the cooldown is tracked under ("pfl", "qos",
  /// "placement" — the same key in_cooldown queries); `rule` is the
  /// per-action name kept for traces and CtrlAction rows.
  void act(const char* endpoint, const char* family, const char* rule,
           std::string detail, const TuneValue& value);
  bool in_cooldown(const char* family) const;
  /// Jobs whose served bytes grew since the previous tick.
  std::size_t active_jobs();
  lustre::PflSpec calm_spec() const;
  lustre::PflSpec storm_spec(std::size_t active) const;

  sim::Engine* eng_;
  CtrlConfig cfg_;
  lustre::FileSystem* fs_;
  trace::Recorder* recorder_;
  trace::TrackHandle track_;

  TuningBus bus_;
  std::vector<std::unique_ptr<Retunable>> endpoints_;

  std::function<bool()> active_;
  bool started_ = false;
  bool stopped_ = false;
  std::size_t ticks_ = 0;
  sim::WakeToken pending_wake_;

  // -- rule state --------------------------------------------------------
  std::map<std::string, Seconds, std::less<>> last_action_;  // per family
  std::map<lustre::sched::JobId, Bytes> served_prev_;
  std::map<lustre::sched::JobId, Seconds> last_grew_;  // last service seen
  bool storm_ = false;
  std::uint32_t storm_width_ = 0;  // stripe count last storm spec used
  lustre::sched::SchedTuning sched_baseline_;
  bool tightened_ = false;
  lustre::PlacementKind placement_baseline_;
  bool rebalancing_ = false;

  std::vector<CtrlAction> actions_;
};

}  // namespace pfsc::ctrl
