// MPI_Info-style textual hints.
//
// Real applications pass ROMIO hints as key/value strings
// ("striping_factor" = "160"); this module parses that form into Hints so
// configurations can travel through job scripts and config files, exactly
// the workflow the paper argues users neglect.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "mpiio/hints.hpp"

namespace pfsc::mpiio {

struct ParsedHints {
  Hints hints;
  /// Keys that were not recognised (real MPI ignores unknown hints, but
  /// callers may want to warn).
  std::vector<std::string> unknown_keys;
};

/// Parse "key=value" pairs separated by ';' or ',' (whitespace tolerated),
/// e.g. "romio_cb_write=enable; striping_factor=160; striping_unit=134217728".
/// Booleans accept enable/disable/true/false/1/0. Sizes are plain bytes.
/// Throws UsageError on malformed input (missing '=', non-numeric value for
/// a numeric key).
ParsedHints parse_hints(std::string_view text, Hints base = {});

/// Serialise hints back to the textual form (round-trips through
/// parse_hints).
std::string format_hints(const Hints& hints);

}  // namespace pfsc::mpiio
