#include "mpiio/file.hpp"

#include <algorithm>

namespace pfsc::mpiio {

File::File(mpi::Communicator& comm, lustre::FileSystem& fs, std::string path,
           Hints hints, plfs::Plfs* plfs)
    : comm_(&comm), fs_(&fs), driver_(make_driver(hints)), all_drained_(comm.engine()) {
  ctx_.path = std::move(path);
  ctx_.hints = hints;
  ctx_.nprocs = comm.size();
  ctx_.fs = &fs;
  ctx_.plfs = plfs;
  if (hints.driver == Driver::ad_plfs) {
    PFSC_REQUIRE(plfs != nullptr, "File: ad_plfs requires a PLFS instance");
  }
  clients_.assign(static_cast<std::size_t>(comm.size()), nullptr);
  next_seq_.assign(static_cast<std::size_t>(comm.size()), 0);
}

lustre::Client& File::client_of(int rank) {
  PFSC_REQUIRE(rank >= 0 && rank < comm_->size(), "File: bad rank");
  lustre::Client* c = clients_[static_cast<std::size_t>(rank)];
  PFSC_REQUIRE(c != nullptr, "File: rank has not opened the file");
  return *c;
}

void File::merge_err(CollState& st, Errno e) {
  if (st.err == Errno::ok) st.err = e;
}

File::CollState& File::state_for(int rank, std::uint64_t& seq_out) {
  PFSC_REQUIRE(rank >= 0 && rank < comm_->size(), "File: bad rank");
  seq_out = next_seq_[static_cast<std::size_t>(rank)]++;
  CollState& st = coll_[seq_out];
  if (!st.done) st.done = std::make_unique<sim::Event>(comm_->engine());
  return st;
}

sim::Co<Errno> File::finish(std::uint64_t seq) {
  CollState& st = coll_.at(seq);
  if (!st.done->fired()) co_await st.done->wait();
  const Errno err = st.err;
  if (++st.consumed == comm_->size()) coll_.erase(seq);
  co_return err;
}

sim::Co<Errno> File::open(int rank, lustre::Client& client, bool create) {
  PFSC_REQUIRE(rank >= 0 && rank < comm_->size(), "File::open: bad rank");
  clients_[static_cast<std::size_t>(rank)] = &client;

  std::uint64_t seq = 0;
  CollState& st = state_for(rank, seq);
  ++st.arrived;

  if (rank == 0) {
    // Rank 0 creates/opens first so the file exists for everybody else.
    merge_err(st, co_await driver_->open_rank(client, ctx_, 0, create));
    opened_ = true;
    st.done->trigger();
  } else {
    if (!st.done->fired()) co_await st.done->wait();
    merge_err(st, co_await driver_->open_rank(client, ctx_, rank, create));
  }
  // Wait for every rank to have opened (MPI_File_open is collective).
  co_await comm_->barrier(rank);
  const Errno err = coll_.at(seq).err;
  if (++coll_.at(seq).consumed == comm_->size()) coll_.erase(seq);
  co_return err;
}

sim::Co<Errno> File::write_at(int rank, Bytes offset, Bytes length) {
  co_return co_await driver_->write_independent(client_of(rank), ctx_, rank,
                                                offset, length);
}

sim::Co<Errno> File::read_at(int rank, Bytes offset, Bytes length) {
  if (const Errno e = co_await flush(); e != Errno::ok) co_return e;
  co_return co_await driver_->read_independent(client_of(rank), ctx_, rank,
                                               offset, length);
}

sim::Resource& File::dirty_slots(int agg_rank) {
  auto it = dirty_.find(agg_rank);
  if (it == dirty_.end()) {
    const Bytes window = std::max<Bytes>(ctx_.hints.dirty_window,
                                         ctx_.hints.cb_buffer_size);
    const std::size_t rounds =
        static_cast<std::size_t>(window / ctx_.hints.cb_buffer_size);
    it = dirty_
             .emplace(agg_rank, std::make_unique<sim::Resource>(
                                    comm_->engine(), std::max<std::size_t>(1, rounds)))
             .first;
  }
  return *it->second;
}

sim::Task File::drain_round(lustre::Client& client, Round round,
                            sim::Resource* dirty) {
  const Errno e = co_await driver_->write_run(client, ctx_, round.extents);
  if (e != Errno::ok && async_err_ == Errno::ok) async_err_ = e;
  if (dirty != nullptr) dirty->release();
  PFSC_ASSERT(outstanding_drains_ > 0);
  if (--outstanding_drains_ == 0) all_drained_.trigger();
}

sim::Task File::aggregator_task(AggregatorPlan plan, CollState* st,
                                bool is_write) {
  lustre::Client& c = client_of(plan.agg_rank);
  const bool write_behind = is_write && ctx_.hints.dirty_window > 0;
  // The phase-1 shuffle (ranks -> collective buffer) is not charged to the
  // aggregator's process pipe: the memcpy into the buffer overlaps the RPC
  // DMA out of it, and the compute interconnect it crosses is far wider
  // than the I/O path. The drain below pays the per-process ceiling.
  for (Round& round : plan.rounds) {
    Errno e = Errno::ok;
    if (is_write) {
      if (write_behind) {
        // Claim dirty budget; the drain happens asynchronously (client
        // write-back): the collective completes once every round is
        // buffered.
        sim::Resource& dirty = dirty_slots(plan.agg_rank);
        co_await dirty.acquire();
        if (outstanding_drains_++ == 0) all_drained_.reset();
        comm_->engine().spawn(drain_round(c, std::move(round), &dirty));
      } else {
        e = co_await driver_->write_run(c, ctx_, round.extents);
      }
    } else {
      e = co_await driver_->read_run(c, ctx_, round.extents);
    }
    if (e != Errno::ok) {
      merge_err(*st, e);
      break;
    }
  }
  co_return;
}

sim::Co<Errno> File::flush() {
  // Many ranks may flush concurrently; all wait for the drain count to
  // reach zero (new drains re-arm the event, so loop until quiescent).
  while (outstanding_drains_ > 0) co_await all_drained_.wait();
  const Errno e = async_err_;
  async_err_ = Errno::ok;
  co_return e;
}

sim::Task File::orchestrate(std::vector<AggregatorPlan> plans, CollState* st,
                            bool is_write) {
  std::vector<sim::Task> tasks;
  tasks.reserve(plans.size());
  for (auto& plan : plans) {
    sim::Task t = aggregator_task(std::move(plan), st, is_write);
    comm_->engine().spawn(t);
    tasks.push_back(std::move(t));
  }
  co_await sim::join_all(std::move(tasks));
  st->done->trigger();
}

sim::Co<Errno> File::collective_io(int rank, Bytes offset, Bytes length,
                                   bool is_write) {
  if (!is_write) {
    if (const Errno e = co_await flush(); e != Errno::ok) co_return e;
  }
  const bool use_two_phase = driver_->two_phase_capable() &&
                             (is_write ? ctx_.hints.romio_cb_write
                                       : ctx_.hints.romio_cb_read);
  if (!use_two_phase) {
    // Without aggregation each rank's transport is independent (ad_plfs
    // appends to its own log; ROMIO with cb disabled does the same).
    // MPI_File_*_all makes no synchronisation guarantee, so no rendezvous.
    co_return is_write ? co_await driver_->write_independent(
                             client_of(rank), ctx_, rank, offset, length)
                       : co_await driver_->read_independent(
                             client_of(rank), ctx_, rank, offset, length);
  }

  std::uint64_t seq = 0;
  CollState& st = state_for(rank, seq);
  st.reqs.push_back(IoRequest{rank, offset, length});
  if (++st.arrived == comm_->size()) {
    auto aggs = choose_aggregators(
        [&] {
          std::vector<const void*> keys;
          keys.reserve(clients_.size());
          for (auto* c : clients_) {
            keys.push_back(c != nullptr ? c->node_key() : nullptr);
          }
          return keys;
        }(),
        ctx_.hints.cb_nodes);
    // ad_lustre (alignment = stripe size) uses group-cyclic file domains;
    // the generic driver falls back to contiguous block domains.
    const Bytes align = driver_->domain_alignment(ctx_);
    auto plans = align > 0
                     ? plan_two_phase_cyclic(st.reqs, aggs,
                                             ctx_.hints.cb_buffer_size, align)
                     : plan_two_phase(st.reqs, aggs, ctx_.hints.cb_buffer_size,
                                      ctx_.hints.cb_buffer_size);
    if (plans.empty()) {
      st.done->trigger();
    } else {
      comm_->engine().spawn(orchestrate(std::move(plans), &st, is_write));
    }
  }
  co_return co_await finish(seq);
}

sim::Co<Errno> File::write_at_all(int rank, Bytes offset, Bytes length) {
  co_return co_await collective_io(rank, offset, length, /*is_write=*/true);
}

sim::Co<Errno> File::read_at_all(int rank, Bytes offset, Bytes length) {
  co_return co_await collective_io(rank, offset, length, /*is_write=*/false);
}

sim::Co<Errno> File::close(int rank) {
  std::uint64_t seq = 0;
  (void)state_for(rank, seq);  // allocate this close's collective slot
  // Flush write-behind data first (close has sync semantics), then run the
  // driver's per-rank close.
  Errno e = co_await flush();
  const Errno ce = co_await driver_->close_rank(client_of(rank), ctx_, rank);
  if (e == Errno::ok) e = ce;
  CollState& st2 = coll_.at(seq);
  merge_err(st2, e);
  if (++st2.arrived == comm_->size()) st2.done->trigger();
  co_return co_await finish(seq);
}

}  // namespace pfsc::mpiio
