// ADIO: the abstract-device interface ROMIO uses to target different file
// systems (Thakur et al., FRONTIERS'96). Three drivers are provided:
//
//  * ad_ufs    — the POSIX passthrough. Creates files with the file-system
//                default layout and *ignores* striping hints: the untuned
//                baseline of the paper (313 MB/s in Figure 1).
//  * ad_lustre — applies striping_factor / striping_unit / start_iodevice
//                at create time and aligns two-phase file domains to the
//                stripe size.
//  * ad_plfs   — routes all I/O through a PLFS container; collective
//                writes become independent per-rank log appends (PLFS's
//                N-to-N transformation), so two-phase is not used.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "lustre/client.hpp"
#include "mpiio/hints.hpp"
#include "plfs/plfs.hpp"

namespace pfsc::mpiio {

using lustre::Errno;

/// Shared state of one collectively-opened file.
struct OpenContext {
  std::string path;
  Hints hints;
  int nprocs = 0;
  lustre::FileSystem* fs = nullptr;

  // lustre-backed drivers:
  lustre::InodeId ino = lustre::kNoInode;

  // ad_plfs:
  plfs::Plfs* plfs = nullptr;
  std::map<int, plfs::WriteHandle> plfs_writers;  // by rank
  plfs::ReadHandle plfs_reader;
  bool plfs_reader_open = false;
};

class AdioDriver {
 public:
  virtual ~AdioDriver() = default;

  /// True if collective I/O should use two-phase aggregation.
  virtual bool two_phase_capable() const = 0;

  /// Alignment for two-phase file domains (0 = use cb_buffer_size).
  virtual Bytes domain_alignment(const OpenContext& ctx) const = 0;

  /// Per-rank open. Rank 0 runs first (it creates); others follow.
  virtual sim::Co<Errno> open_rank(lustre::Client& client, OpenContext& ctx,
                                   int rank, bool create) = 0;

  virtual sim::Co<Errno> write_independent(lustre::Client& client,
                                           OpenContext& ctx, int rank,
                                           Bytes offset, Bytes length) = 0;
  virtual sim::Co<Errno> read_independent(lustre::Client& client,
                                          OpenContext& ctx, int rank,
                                          Bytes offset, Bytes length) = 0;

  /// Aggregator-side round write: drain one collective-buffer round to the
  /// file system. `extents` are the round's actual (offset, length) data
  /// ranges, sorted and disjoint; with stripe-aligned file domains they map
  /// to object-contiguous traffic on each OST.
  virtual sim::Co<Errno> write_run(
      lustre::Client& client, OpenContext& ctx,
      const std::vector<std::pair<Bytes, Bytes>>& extents) = 0;

  /// Aggregator-side round read (two-phase read, phase 1).
  virtual sim::Co<Errno> read_run(
      lustre::Client& client, OpenContext& ctx,
      const std::vector<std::pair<Bytes, Bytes>>& extents) = 0;

  virtual sim::Co<Errno> close_rank(lustre::Client& client, OpenContext& ctx,
                                    int rank) = 0;

  /// Current logical size of the file.
  virtual Bytes size(const OpenContext& ctx) const = 0;
};

/// Instantiate the driver selected by `hints.driver`.
std::unique_ptr<AdioDriver> make_driver(const Hints& hints);

}  // namespace pfsc::mpiio
