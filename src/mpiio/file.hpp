// MPI-IO file handle (the MPI_File surface used by the workloads).
//
// One File object is the shared collective state of an MPI_File_open
// across a communicator: every rank calls open/.../close on it with its own
// rank id and lustre::Client. Collective data calls (write_at_all /
// read_at_all) rendezvous exactly like MPI collectives: per-rank call
// sequence numbers match invocations, the last arriver builds the two-phase
// plan and spawns one task per aggregator, and every rank resumes when the
// round trips complete. Independent calls (write_at / read_at) go straight
// to the ADIO driver.
#pragma once

#include <map>
#include <memory>
#include <vector>

#include "mpi/comm.hpp"
#include "mpiio/adio.hpp"
#include "mpiio/two_phase.hpp"

namespace pfsc::mpiio {

class File {
 public:
  /// `plfs` is required when hints.driver == ad_plfs, ignored otherwise.
  File(mpi::Communicator& comm, lustre::FileSystem& fs, std::string path,
       Hints hints, plfs::Plfs* plfs = nullptr);

  File(const File&) = delete;
  File& operator=(const File&) = delete;

  /// Collective open. Every rank of the communicator must call it; rank 0's
  /// client creates (or opens) the file before the others open it.
  sim::Co<Errno> open(int rank, lustre::Client& client, bool create = true);

  // -- independent I/O ---------------------------------------------------
  sim::Co<Errno> write_at(int rank, Bytes offset, Bytes length);
  sim::Co<Errno> read_at(int rank, Bytes offset, Bytes length);

  // -- collective I/O ----------------------------------------------------
  sim::Co<Errno> write_at_all(int rank, Bytes offset, Bytes length);
  sim::Co<Errno> read_at_all(int rank, Bytes offset, Bytes length);

  /// Collective close.
  sim::Co<Errno> close(int rank);

  Bytes size() const { return driver_->size(ctx_); }
  const OpenContext& context() const { return ctx_; }
  const Hints& hints() const { return ctx_.hints; }

 private:
  struct CollState {
    int arrived = 0;
    int consumed = 0;
    std::vector<IoRequest> reqs;
    std::unique_ptr<sim::Event> done;
    Errno err = Errno::ok;
  };

  CollState& state_for(int rank, std::uint64_t& seq_out);
  sim::Co<Errno> finish(std::uint64_t seq);
  sim::Co<Errno> collective_io(int rank, Bytes offset, Bytes length,
                               bool is_write);
  sim::Task aggregator_task(AggregatorPlan plan, CollState* st, bool is_write);
  sim::Task orchestrate(std::vector<AggregatorPlan> plans, CollState* st,
                        bool is_write);
  sim::Task drain_round(lustre::Client& client, Round round,
                        sim::Resource* dirty);
  /// Wait for all write-behind drains; folds async errors into the result.
  sim::Co<Errno> flush();
  sim::Resource& dirty_slots(int agg_rank);
  lustre::Client& client_of(int rank);
  void merge_err(CollState& st, Errno e);

  mpi::Communicator* comm_;
  lustre::FileSystem* fs_;
  std::unique_ptr<AdioDriver> driver_;
  OpenContext ctx_;
  bool opened_ = false;

  std::vector<lustre::Client*> clients_;
  std::vector<std::uint64_t> next_seq_;
  std::map<std::uint64_t, CollState> coll_;

  // Write-behind state: count of in-flight drain tasks, an event fired when
  // the count returns to zero, per-aggregator dirty budgets, and the first
  // asynchronous error (surfaced at the next flush point).
  std::size_t outstanding_drains_ = 0;
  sim::Event all_drained_;
  std::map<int, std::unique_ptr<sim::Resource>> dirty_;
  Errno async_err_ = Errno::ok;
};

}  // namespace pfsc::mpiio
