#include "mpiio/adio.hpp"

#include <algorithm>

namespace pfsc::mpiio {

const char* driver_name(Driver d) {
  switch (d) {
    case Driver::ad_ufs: return "ad_ufs";
    case Driver::ad_lustre: return "ad_lustre";
    case Driver::ad_plfs: return "ad_plfs";
  }
  return "unknown";
}

namespace {

// ---------------------------------------------------------------------------
// ad_ufs / ad_lustre: both talk to Lustre directly; only ad_lustre applies
// the striping hints and stripe-aligns collective file domains.
// ---------------------------------------------------------------------------
class LustreFamilyDriver final : public AdioDriver {
 public:
  explicit LustreFamilyDriver(bool apply_hints) : apply_hints_(apply_hints) {}

  bool two_phase_capable() const override { return true; }

  Bytes domain_alignment(const OpenContext& ctx) const override {
    // ad_lustre aligns file domains to the stripe size so each stripe is
    // written by exactly one aggregator; ad_ufs has no such knowledge.
    if (!apply_hints_ || ctx.ino == lustre::kNoInode || ctx.fs == nullptr) return 0;
    return ctx.fs->inode(ctx.ino).layout.stripe_size;
  }

  sim::Co<Errno> open_rank(lustre::Client& client, OpenContext& ctx, int rank,
                           bool create) override {
    if (rank == 0) {
      if (create && !client.fs().exists(ctx.path)) {
        lustre::StripeSettings settings;
        if (apply_hints_) {
          settings.stripe_count = ctx.hints.striping_factor;
          settings.stripe_size = ctx.hints.striping_unit;
          settings.stripe_offset = ctx.hints.start_iodevice;
          settings.size_hint = ctx.hints.expected_file_size;
        }
        auto r = co_await client.create(ctx.path, settings);
        if (!r.ok()) co_return r.err;
        ctx.ino = r.value;
        co_return Errno::ok;
      }
      auto r = co_await client.open(ctx.path);
      if (!r.ok()) co_return r.err;
      ctx.ino = r.value;
      co_return Errno::ok;
    }
    // Non-root ranks open the now-existing file (pays MDS open cost).
    auto r = co_await client.open(ctx.path);
    if (!r.ok()) co_return r.err;
    PFSC_ASSERT(r.value == ctx.ino);
    co_return Errno::ok;
  }

  sim::Co<Errno> write_independent(lustre::Client& client, OpenContext& ctx,
                                   int /*rank*/, Bytes offset,
                                   Bytes length) override {
    co_return co_await client.write(ctx.ino, offset, length);
  }

  sim::Co<Errno> read_independent(lustre::Client& client, OpenContext& ctx,
                                  int /*rank*/, Bytes offset,
                                  Bytes length) override {
    const lustre::Inode& node = client.fs().inode(ctx.ino);
    if (ctx.hints.romio_ds_read && ctx.hints.ind_rd_buffer_size > 0) {
      // Data sieving: fetch an aligned window covering the request, clamped
      // to the file size (read amplification traded for one contiguous I/O).
      const Bytes buf = ctx.hints.ind_rd_buffer_size;
      const Bytes lo = offset / buf * buf;
      const Bytes hi = std::min<Bytes>(node.size, (offset + length + buf - 1) / buf * buf);
      if (lo >= hi || offset + length > node.size) co_return Errno::einval;
      co_return co_await client.read(ctx.ino, lo, hi - lo);
    }
    co_return co_await client.read(ctx.ino, offset, length);
  }

  sim::Co<Errno> write_run(
      lustre::Client& client, OpenContext& ctx,
      const std::vector<std::pair<Bytes, Bytes>>& extents) override {
    co_return co_await run_extents(client, ctx, extents, /*is_write=*/true);
  }

  sim::Co<Errno> read_run(
      lustre::Client& client, OpenContext& ctx,
      const std::vector<std::pair<Bytes, Bytes>>& extents) override {
    co_return co_await run_extents(client, ctx, extents, /*is_write=*/false);
  }

  sim::Co<Errno> close_rank(lustre::Client& /*client*/, OpenContext& /*ctx*/,
                            int /*rank*/) override {
    co_return Errno::ok;
  }

  Bytes size(const OpenContext& ctx) const override {
    if (ctx.ino == lustre::kNoInode || ctx.fs == nullptr) return 0;
    return ctx.fs->inode(ctx.ino).size;
  }

 private:
  /// One round's extents, issued concurrently (the client's RPC window
  /// provides the in-flight bound, like a real Lustre client).
  static sim::Co<Errno> run_extents(
      lustre::Client& client, OpenContext& ctx,
      const std::vector<std::pair<Bytes, Bytes>>& extents, bool is_write) {
    auto err = std::make_shared<Errno>(Errno::ok);
    std::vector<sim::Task> inflight;
    inflight.reserve(extents.size());
    for (const auto& [off, len] : extents) {
      sim::Task t = [](lustre::Client& c, lustre::InodeId ino, Bytes o, Bytes l,
                       bool w, std::shared_ptr<Errno> e) -> sim::Task {
        const Errno r = w ? co_await c.write(ino, o, l) : co_await c.read(ino, o, l);
        if (r != Errno::ok && *e == Errno::ok) *e = r;
      }(client, ctx.ino, off, len, is_write, err);
      client.fs().engine().spawn(t);
      inflight.push_back(std::move(t));
    }
    co_await sim::join_all(std::move(inflight));
    co_return *err;
  }

  bool apply_hints_;
};

// ---------------------------------------------------------------------------
// ad_plfs
// ---------------------------------------------------------------------------
class PlfsDriver final : public AdioDriver {
 public:
  bool two_phase_capable() const override { return false; }
  Bytes domain_alignment(const OpenContext&) const override { return 0; }

  sim::Co<Errno> open_rank(lustre::Client& client, OpenContext& ctx, int rank,
                           bool create) override {
    PFSC_REQUIRE(ctx.plfs != nullptr, "ad_plfs: no PLFS instance supplied");
    if (create) {
      auto r = co_await ctx.plfs->open_write(client, ctx.path, rank);
      if (!r.ok()) co_return r.err;
      ctx.plfs_writers.emplace(rank, std::move(r.value));
      co_return Errno::ok;
    }
    if (rank == 0) {
      auto r = co_await ctx.plfs->open_read(client, ctx.path);
      if (!r.ok()) co_return r.err;
      ctx.plfs_reader = std::move(r.value);
      ctx.plfs_reader_open = true;
    }
    co_return Errno::ok;
  }

  sim::Co<Errno> write_independent(lustre::Client& client, OpenContext& ctx,
                                   int rank, Bytes offset,
                                   Bytes length) override {
    auto it = ctx.plfs_writers.find(rank);
    if (it == ctx.plfs_writers.end()) co_return Errno::ebadf;
    co_return co_await ctx.plfs->write(client, it->second, offset, length);
  }

  sim::Co<Errno> read_independent(lustre::Client& client, OpenContext& ctx,
                                  int /*rank*/, Bytes offset,
                                  Bytes length) override {
    if (!ctx.plfs_reader_open) co_return Errno::ebadf;
    co_return co_await ctx.plfs->read(client, ctx.plfs_reader, offset, length);
  }

  sim::Co<Errno> write_run(lustre::Client&, OpenContext&,
                           const std::vector<std::pair<Bytes, Bytes>>&) override {
    throw UsageError("ad_plfs: two-phase write_run is never used");
  }
  sim::Co<Errno> read_run(lustre::Client&, OpenContext&,
                          const std::vector<std::pair<Bytes, Bytes>>&) override {
    throw UsageError("ad_plfs: two-phase read_run is never used");
  }

  sim::Co<Errno> close_rank(lustre::Client& client, OpenContext& ctx,
                            int rank) override {
    auto it = ctx.plfs_writers.find(rank);
    if (it != ctx.plfs_writers.end() && it->second.open) {
      co_return co_await ctx.plfs->close_write(client, it->second);
    }
    co_return Errno::ok;
  }

  Bytes size(const OpenContext& ctx) const override {
    if (ctx.plfs_reader_open) return ctx.plfs_reader.logical_size();
    Bytes size = 0;
    for (const auto& [rank, handle] : ctx.plfs_writers) {
      for (const auto& rec : handle.all_records) {
        size = std::max(size, rec.logical_offset + rec.length);
      }
    }
    return size;
  }
};

}  // namespace

std::unique_ptr<AdioDriver> make_driver(const Hints& hints) {
  switch (hints.driver) {
    case Driver::ad_ufs: return std::make_unique<LustreFamilyDriver>(false);
    case Driver::ad_lustre: return std::make_unique<LustreFamilyDriver>(true);
    case Driver::ad_plfs: return std::make_unique<PlfsDriver>();
  }
  throw UsageError("make_driver: unknown driver");
}

}  // namespace pfsc::mpiio
