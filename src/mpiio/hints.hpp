// MPI-IO hints and ADIO driver selection.
//
// Mirrors the ROMIO hints the paper tunes: striping_factor / striping_unit /
// start_iodevice pass the Lustre layout through `ad_lustre` (and are
// silently ignored by `ad_ufs`, which is exactly why untuned installations
// leave 49x on the table); cb_* control two-phase collective buffering;
// romio_ds_* control data sieving for independent I/O.
#pragma once

#include <cstdint>

#include "support/units.hpp"

namespace pfsc::mpiio {

enum class Driver {
  ad_ufs,     // POSIX-compliant driver: file-system defaults, hints ignored
  ad_lustre,  // Lustre-aware driver: honours striping hints
  ad_plfs,    // PLFS virtual-file-system driver
};

const char* driver_name(Driver d);

struct Hints {
  Driver driver = Driver::ad_ufs;

  // -- Lustre layout (ad_lustre only) ------------------------------------
  std::uint32_t striping_factor = 0;  // stripe count; 0 = fs default
  Bytes striping_unit = 0;            // stripe size; 0 = fs default
  std::int32_t start_iodevice = -1;   // first OST index; -1 = allocator
  /// Expected final file size, forwarded as StripeSettings::size_hint so a
  /// PFL spec (lustre/pfl.hpp) can pick the stripe count by size class
  /// when striping_factor is left defaulted. 0 = unknown.
  Bytes expected_file_size = 0;

  // -- collective buffering ----------------------------------------------
  bool romio_cb_write = true;
  bool romio_cb_read = true;
  std::uint32_t cb_nodes = 0;  // aggregator count; 0 = one per node
  Bytes cb_buffer_size = 16_MiB;

  // -- data sieving (independent I/O) -------------------------------------
  bool romio_ds_read = true;
  Bytes ind_rd_buffer_size = 4_MiB;

  // -- client write-behind -------------------------------------------------
  /// Dirty-data budget per aggregator: a collective write returns once its
  /// round is shuffled into the collective buffer, and up to this many
  /// bytes of drained rounds may still be in flight to the servers (the
  /// Lustre client page cache / max_dirty_mb behaviour). Flushed by close
  /// and before any read. 0 disables write-behind (fully synchronous).
  Bytes dirty_window = 256_MiB;
};

}  // namespace pfsc::mpiio
