#include "mpiio/info.hpp"

#include <charconv>

#include "support/error.hpp"

namespace pfsc::mpiio {
namespace {

std::string_view trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) s.remove_prefix(1);
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t')) s.remove_suffix(1);
  return s;
}

bool parse_bool(std::string_view key, std::string_view value) {
  if (value == "enable" || value == "true" || value == "1") return true;
  if (value == "disable" || value == "false" || value == "0") return false;
  throw UsageError("parse_hints: bad boolean for " + std::string(key) + ": " +
                   std::string(value));
}

std::uint64_t parse_u64(std::string_view key, std::string_view value) {
  std::uint64_t out = 0;
  const auto [ptr, ec] =
      std::from_chars(value.data(), value.data() + value.size(), out);
  if (ec != std::errc{} || ptr != value.data() + value.size()) {
    throw UsageError("parse_hints: bad number for " + std::string(key) + ": " +
                     std::string(value));
  }
  return out;
}

}  // namespace

ParsedHints parse_hints(std::string_view text, Hints base) {
  ParsedHints out;
  out.hints = base;
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t end = text.find_first_of(";,", pos);
    if (end == std::string_view::npos) end = text.size();
    const std::string_view pair = trim(text.substr(pos, end - pos));
    pos = end + 1;
    if (pair.empty()) continue;

    const std::size_t eq = pair.find('=');
    PFSC_REQUIRE(eq != std::string_view::npos,
                 "parse_hints: expected key=value, got '" + std::string(pair) + "'");
    const std::string_view key = trim(pair.substr(0, eq));
    const std::string_view value = trim(pair.substr(eq + 1));

    if (key == "filesystem" || key == "driver") {
      if (value == "ufs" || value == "ad_ufs") {
        out.hints.driver = Driver::ad_ufs;
      } else if (value == "lustre" || value == "ad_lustre") {
        out.hints.driver = Driver::ad_lustre;
      } else if (value == "plfs" || value == "ad_plfs") {
        out.hints.driver = Driver::ad_plfs;
      } else {
        throw UsageError("parse_hints: unknown driver " + std::string(value));
      }
    } else if (key == "striping_factor") {
      out.hints.striping_factor = static_cast<std::uint32_t>(parse_u64(key, value));
    } else if (key == "striping_unit") {
      out.hints.striping_unit = parse_u64(key, value);
    } else if (key == "start_iodevice") {
      if (!value.empty() && value.front() == '-') {
        out.hints.start_iodevice = -1;
      } else {
        out.hints.start_iodevice = static_cast<std::int32_t>(parse_u64(key, value));
      }
    } else if (key == "romio_cb_write") {
      out.hints.romio_cb_write = parse_bool(key, value);
    } else if (key == "romio_cb_read") {
      out.hints.romio_cb_read = parse_bool(key, value);
    } else if (key == "cb_nodes") {
      out.hints.cb_nodes = static_cast<std::uint32_t>(parse_u64(key, value));
    } else if (key == "cb_buffer_size") {
      out.hints.cb_buffer_size = parse_u64(key, value);
    } else if (key == "romio_ds_read") {
      out.hints.romio_ds_read = parse_bool(key, value);
    } else if (key == "ind_rd_buffer_size") {
      out.hints.ind_rd_buffer_size = parse_u64(key, value);
    } else if (key == "dirty_window") {
      out.hints.dirty_window = parse_u64(key, value);
    } else {
      out.unknown_keys.emplace_back(key);
    }
  }
  return out;
}

std::string format_hints(const Hints& h) {
  std::string out;
  out += "driver=";
  out += driver_name(h.driver);
  auto add_num = [&out](const char* key, std::uint64_t v) {
    out += ";";
    out += key;
    out += "=";
    out += std::to_string(v);
  };
  auto add_bool = [&out](const char* key, bool v) {
    out += ";";
    out += key;
    out += v ? "=enable" : "=disable";
  };
  add_num("striping_factor", h.striping_factor);
  add_num("striping_unit", h.striping_unit);
  out += ";start_iodevice=" + std::to_string(h.start_iodevice);
  add_bool("romio_cb_write", h.romio_cb_write);
  add_bool("romio_cb_read", h.romio_cb_read);
  add_num("cb_nodes", h.cb_nodes);
  add_num("cb_buffer_size", h.cb_buffer_size);
  add_bool("romio_ds_read", h.romio_ds_read);
  add_num("ind_rd_buffer_size", h.ind_rd_buffer_size);
  add_num("dirty_window", h.dirty_window);
  return out;
}

}  // namespace pfsc::mpiio
