// Two-phase collective I/O planning (pure functions, no simulation state).
//
// ROMIO's generic collective algorithm: the union extent of all ranks'
// requests is divided into contiguous *file domains*, one per aggregator
// (aligned to the Lustre stripe size when the driver knows it), and each
// aggregator drains its domain in rounds of at most cb_buffer_size bytes,
// shuffling the round's data from the owning ranks before writing.
#pragma once

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "support/units.hpp"

namespace pfsc::mpiio {

struct IoRequest {
  int rank = 0;
  Bytes offset = 0;
  Bytes length = 0;
};

/// One aggregator round: up to cb_buffer_size bytes of *present* data.
struct Round {
  Bytes begin = 0;  // file offset where this round's data starts
  Bytes end = 0;    // file offset one past this round's data
  Bytes present_bytes = 0;
  /// The actual (offset, length) data extents of this round, merged and
  /// sorted; what really gets marked written.
  std::vector<std::pair<Bytes, Bytes>> extents;
};

struct AggregatorPlan {
  int agg_rank = -1;
  Bytes domain_begin = 0;
  Bytes domain_end = 0;
  std::vector<Round> rounds;
};

/// Merge raw requests into sorted disjoint (offset, length) extents.
std::vector<std::pair<Bytes, Bytes>> merge_extents(
    std::span<const IoRequest> requests);

/// Pick aggregator ranks: the first rank of each node (nodes identified by
/// opaque keys, one entry per rank), thinned evenly to at most cb_nodes.
std::vector<int> choose_aggregators(std::span<const void* const> node_key_of_rank,
                                    std::uint32_t cb_nodes);

/// Build the per-aggregator file domains and rounds.
///
/// `alignment` aligns domain boundaries (stripe size for ad_lustre so a
/// stripe is written by a single aggregator; cb_buffer for ad_ufs).
/// Aggregators with empty domains are omitted from the result.
std::vector<AggregatorPlan> plan_two_phase(std::span<const IoRequest> requests,
                                           std::span<const int> aggregators,
                                           Bytes cb_buffer, Bytes alignment);

/// ad_lustre's group-cyclic file domains: stripe k belongs to aggregator
/// k mod naggs, so every OST's object receives traffic from a single
/// aggregator at a time and all aggregators stay busy regardless of the
/// stripe size. Rounds are still bounded by cb_buffer present bytes.
std::vector<AggregatorPlan> plan_two_phase_cyclic(
    std::span<const IoRequest> requests, std::span<const int> aggregators,
    Bytes cb_buffer, Bytes stripe_size);

}  // namespace pfsc::mpiio
