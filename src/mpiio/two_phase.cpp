#include "mpiio/two_phase.hpp"

#include <algorithm>

#include "support/error.hpp"

namespace pfsc::mpiio {

std::vector<std::pair<Bytes, Bytes>> merge_extents(
    std::span<const IoRequest> requests) {
  std::vector<std::pair<Bytes, Bytes>> spans;
  spans.reserve(requests.size());
  for (const auto& r : requests) {
    if (r.length > 0) spans.emplace_back(r.offset, r.length);
  }
  std::sort(spans.begin(), spans.end());
  std::vector<std::pair<Bytes, Bytes>> merged;
  for (const auto& [off, len] : spans) {
    if (!merged.empty() && merged.back().first + merged.back().second >= off) {
      const Bytes end = std::max(merged.back().first + merged.back().second,
                                 off + len);
      merged.back().second = end - merged.back().first;
    } else {
      merged.emplace_back(off, len);
    }
  }
  return merged;
}

std::vector<int> choose_aggregators(std::span<const void* const> node_key_of_rank,
                                    std::uint32_t cb_nodes) {
  std::vector<int> firsts;
  std::vector<const void*> seen;
  for (std::size_t r = 0; r < node_key_of_rank.size(); ++r) {
    const void* key = node_key_of_rank[r];
    if (std::find(seen.begin(), seen.end(), key) == seen.end()) {
      seen.push_back(key);
      firsts.push_back(static_cast<int>(r));
    }
  }
  if (cb_nodes == 0 || firsts.size() <= cb_nodes) return firsts;
  // Thin evenly: keep cb_nodes aggregators spread across the node list.
  std::vector<int> out;
  out.reserve(cb_nodes);
  const double step = static_cast<double>(firsts.size()) / cb_nodes;
  for (std::uint32_t i = 0; i < cb_nodes; ++i) {
    out.push_back(firsts[static_cast<std::size_t>(i * step)]);
  }
  return out;
}

std::vector<AggregatorPlan> plan_two_phase(std::span<const IoRequest> requests,
                                           std::span<const int> aggregators,
                                           Bytes cb_buffer, Bytes alignment) {
  PFSC_REQUIRE(!aggregators.empty(), "plan_two_phase: no aggregators");
  PFSC_REQUIRE(cb_buffer > 0, "plan_two_phase: cb_buffer must be positive");
  if (alignment == 0) alignment = cb_buffer;

  const auto extents = merge_extents(requests);
  if (extents.empty()) return {};
  const Bytes lo = extents.front().first;
  const Bytes hi = extents.back().first + extents.back().second;

  // Contiguous, alignment-rounded file domains (ROMIO ad_lustre rounds the
  // domain size up to a stripe multiple so each stripe has one owner).
  const auto naggs = static_cast<Bytes>(aggregators.size());
  Bytes domain = (hi - lo + naggs - 1) / naggs;
  domain = (domain + alignment - 1) / alignment * alignment;

  std::vector<AggregatorPlan> plans;
  std::size_t ext_i = 0;
  for (Bytes a = 0; a < naggs; ++a) {
    const Bytes d_begin = lo + a * domain;
    const Bytes d_end = std::min(hi, d_begin + domain);
    if (d_begin >= hi) break;

    AggregatorPlan plan;
    plan.agg_rank = aggregators[static_cast<std::size_t>(a)];
    plan.domain_begin = d_begin;
    plan.domain_end = d_end;

    // Walk the merged extents clipped to this domain, cutting rounds of at
    // most cb_buffer present bytes.
    Round round;
    bool round_open = false;
    auto flush_round = [&] {
      if (round_open && round.present_bytes > 0) plan.rounds.push_back(round);
      round = Round{};
      round_open = false;
    };
    // extents are globally sorted; resume scanning where the previous
    // domain stopped (domains and extents both advance monotonically).
    std::size_t i = ext_i;
    while (i < extents.size()) {
      const Bytes e_off = extents[i].first;
      const Bytes e_end = e_off + extents[i].second;
      if (e_end <= d_begin) {
        ++i;
        ++ext_i;
        continue;
      }
      if (e_off >= d_end) break;
      Bytes cur = std::max(e_off, d_begin);
      const Bytes stop = std::min(e_end, d_end);
      while (cur < stop) {
        if (!round_open) {
          round.begin = cur;
          round_open = true;
        }
        const Bytes room = cb_buffer - round.present_bytes;
        const Bytes take = std::min<Bytes>(room, stop - cur);
        round.extents.emplace_back(cur, take);
        round.present_bytes += take;
        round.end = cur + take;
        cur += take;
        if (round.present_bytes == cb_buffer) flush_round();
      }
      if (e_end <= d_end) {
        ++i;  // fully consumed inside this domain
      } else {
        break;  // extent continues into the next domain
      }
    }
    flush_round();
    if (!plan.rounds.empty()) plans.push_back(std::move(plan));
  }
  return plans;
}

std::vector<AggregatorPlan> plan_two_phase_cyclic(
    std::span<const IoRequest> requests, std::span<const int> aggregators,
    Bytes cb_buffer, Bytes stripe_size) {
  PFSC_REQUIRE(!aggregators.empty(), "plan_two_phase_cyclic: no aggregators");
  PFSC_REQUIRE(cb_buffer > 0, "plan_two_phase_cyclic: cb_buffer must be positive");
  PFSC_REQUIRE(stripe_size > 0, "plan_two_phase_cyclic: stripe_size must be positive");

  const auto extents = merge_extents(requests);
  if (extents.empty()) return {};
  const auto naggs = static_cast<Bytes>(aggregators.size());

  std::vector<AggregatorPlan> plans(aggregators.size());
  std::vector<bool> touched(aggregators.size(), false);
  for (std::size_t a = 0; a < aggregators.size(); ++a) {
    plans[a].agg_rank = aggregators[a];
  }

  auto add_piece = [&](std::size_t a, Bytes off, Bytes len) {
    AggregatorPlan& plan = plans[a];
    if (!touched[a]) {
      plan.domain_begin = off;
      touched[a] = true;
      plan.rounds.emplace_back();
      plan.rounds.back().begin = off;
    }
    plan.domain_end = off + len;
    // Cut the piece into rounds of at most cb_buffer present bytes.
    Bytes cur = off;
    Bytes remaining = len;
    while (remaining > 0) {
      Round* round = &plan.rounds.back();
      if (round->present_bytes == cb_buffer) {
        plan.rounds.emplace_back();
        round = &plan.rounds.back();
        round->begin = cur;
      }
      const Bytes take = std::min<Bytes>(cb_buffer - round->present_bytes, remaining);
      if (!round->extents.empty() &&
          round->extents.back().first + round->extents.back().second == cur) {
        round->extents.back().second += take;
      } else {
        round->extents.emplace_back(cur, take);
      }
      round->present_bytes += take;
      round->end = cur + take;
      cur += take;
      remaining -= take;
    }
  };

  for (const auto& [e_off, e_len] : extents) {
    Bytes cur = e_off;
    const Bytes end = e_off + e_len;
    while (cur < end) {
      const Bytes stripe = cur / stripe_size;
      const Bytes stripe_end = (stripe + 1) * stripe_size;
      const Bytes take = std::min(end, stripe_end) - cur;
      add_piece(static_cast<std::size_t>(stripe % naggs), cur, take);
      cur += take;
    }
  }

  std::vector<AggregatorPlan> out;
  out.reserve(plans.size());
  for (std::size_t a = 0; a < plans.size(); ++a) {
    if (touched[a]) out.push_back(std::move(plans[a]));
  }
  return out;
}

}  // namespace pfsc::mpiio
