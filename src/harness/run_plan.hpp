// RunPlan: how to sweep a Scenario.
//
// A plan is a set of named sweep axes (cartesian product), a repetition
// count and a base seed. `expand(base)` materialises the full point grid:
// every point carries its own fully-configured Scenario copy plus the
// per-repetition seeds, derived deterministically from the base seed in
// (point-major, repetition-minor) order *before* anything runs. Execution
// order therefore cannot affect any seed, which is what makes
// ParallelRunner(threads=N) bit-identical to the serial path.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "harness/scenario.hpp"

namespace pfsc::harness {

/// One sweep dimension: a field name, the values to visit, and the setter
/// that applies a value to a Scenario. Values are doubles (large-enough for
/// byte sizes and process counts); `label` customises how a value prints in
/// tables/CSV (e.g. "128M" for a stripe size).
struct Axis {
  std::string name;
  std::vector<double> values;
  std::function<void(Scenario&, double)> apply;
  std::function<std::string(double)> label;  // optional
};

/// A fully-expanded plan point: the grid coordinates (one value per axis),
/// the configured scenario, and the seeds of its repetitions.
struct PlanPoint {
  std::vector<double> coords;
  Scenario scenario;
  std::vector<std::uint64_t> seeds;  // one per repetition
};

class RunPlan {
 public:
  /// Add a sweep axis. Axis names must be unique: two axes driving the same
  /// field would silently overwrite each other, so the overlap throws.
  RunPlan& sweep(Axis axis);
  RunPlan& sweep(std::string name, std::vector<double> values,
                 std::function<void(Scenario&, double)> apply);

  /// Convenience axes for the fields every paper sweep touches.
  RunPlan& sweep_nprocs(std::vector<double> values);
  RunPlan& sweep_striping_factor(std::vector<double> values);
  RunPlan& sweep_striping_unit(std::vector<double> values);
  RunPlan& sweep_writers(std::vector<double> values);

  RunPlan& repetitions(unsigned reps);
  RunPlan& base_seed(std::uint64_t seed);

  /// Seed policy. per_point_rep (default): every (point, repetition) pair
  /// gets an independent seed. per_rep: repetition r shares one seed across
  /// all points — the common-random-numbers design that pairs sweep points
  /// for direct comparison (e.g. ad_lustre vs ad_plfs on the same draw).
  enum class SeedMode { per_point_rep, per_rep };
  RunPlan& seed_mode(SeedMode mode);

  unsigned reps() const { return reps_; }
  std::uint64_t seed() const { return seed_; }
  const std::vector<Axis>& axes() const { return axes_; }
  std::vector<std::string> axis_names() const;

  /// Number of grid points (product of axis sizes; 1 with no axes).
  std::size_t point_count() const;

  /// Materialise the cartesian grid over `base`. Axes apply in the order
  /// they were added; the last axis varies fastest.
  std::vector<PlanPoint> expand(const Scenario& base) const;

  /// Format one axis value using the axis label when present.
  std::string format_value(std::size_t axis, double value) const;

 private:
  std::vector<Axis> axes_;
  unsigned reps_ = 1;
  std::uint64_t seed_ = 1;
  SeedMode mode_ = SeedMode::per_point_rep;
};

}  // namespace pfsc::harness
