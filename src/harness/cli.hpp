// Command-line binding for Scenario / RunPlan fields.
//
// The flag table is the single source of truth for the CLI surface: every
// flag is declared once, *named after the field it sets* (via PFSC_FLAG,
// which stringises the member name), with strict value parsing — a
// non-numeric or trailing-garbage value is a UsageError, never a silent
// std::atoi zero. Old pfsc_cli spellings stay alive as aliases.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "harness/run_plan.hpp"
#include "harness/scenario.hpp"

namespace pfsc::harness::cli {

// -- strict scalar parsing --------------------------------------------------
// `flag` names the offending option in the UsageError message.

long long parse_int(std::string_view flag, std::string_view text);
std::uint64_t parse_uint(std::string_view flag, std::string_view text);
double parse_double(std::string_view flag, std::string_view text);
/// Bytes with an optional K/M/G/T suffix (binary units): "64M" == 64 MiB.
Bytes parse_bytes(std::string_view flag, std::string_view text);

// Enum values parse strictly too: an unknown name is a UsageError whose
// message lists the valid choices (never a silent default).
sim::LinkPolicy parse_link_policy(std::string_view flag, std::string_view text);
lustre::sched::SchedPolicy parse_sched_policy(std::string_view flag,
                                              std::string_view text);
sim::EventQueuePolicy parse_event_queue_policy(std::string_view flag,
                                               std::string_view text);
trace::TraceMode parse_trace_mode(std::string_view flag, std::string_view text);
lustre::PlacementKind parse_placement_kind(std::string_view flag,
                                           std::string_view text);
AdmissionPolicy parse_admission_policy(std::string_view flag,
                                       std::string_view text);
ctrl::CtrlMode parse_ctrl_mode(std::string_view flag, std::string_view text);

// -- flag table -------------------------------------------------------------

struct Flag {
  std::string name;        // canonical spelling: "--" + field name
  std::string value_name;  // e.g. "N", "BYTES", "X"
  std::string help;
  std::vector<std::string> aliases;
  std::function<void(std::string_view)> set;
};

class FlagTable {
 public:
  /// Declare a flag with a custom setter. Returns it for .alias() chaining.
  Flag& add(std::string name, std::string value_name, std::string help,
            std::function<void(std::string_view)> set);

  // Typed bindings: the setter strictly parses into `target`.
  Flag& bind(std::string name, int& target, std::string help);
  Flag& bind(std::string name, unsigned& target, std::string help);
  Flag& bind(std::string name, std::uint64_t& target, std::string help);
  Flag& bind(std::string name, double& target, std::string help);
  Flag& bind(std::string name, std::string& target, std::string help);
  /// Bytes with K/M/G/T suffix support. (Bytes aliases std::uint64_t, so
  /// this needs its own spelling rather than an overload.)
  Flag& bind_bytes(std::string name, Bytes& target, std::string help);

  /// Add an extra accepted spelling to the most recently declared flag.
  FlagTable& alias(std::string name);

  /// Parse `argv[from..argc)` as "--flag value" pairs. Throws UsageError on
  /// an unknown flag, a missing value, or a value that fails to parse.
  void parse(int argc, char** argv, int from) const;

  /// One "  --flag VALUE  help" line per flag (aliases listed inline).
  std::string usage() const;

  const std::vector<Flag>& flags() const { return flags_; }

 private:
  const Flag* find(std::string_view name) const;
  std::vector<Flag> flags_;
};

/// The standard Scenario/RunPlan surface: one flag per sweepable field,
/// named after the field, plus --threads for the ParallelRunner. Old
/// pfsc_cli spellings (--stripes, --seed, ...) are registered as aliases.
FlagTable scenario_flags(Scenario& scenario, RunPlan& plan, unsigned& threads);

}  // namespace pfsc::harness::cli

/// Declare a flag named after `field` of `obj` (one source of truth: the
/// flag spelling *is* the member name).
#define PFSC_FLAG(table, obj, field, help) \
  (table).bind("--" #field, (obj).field, (help))
#define PFSC_FLAG_BYTES(table, obj, field, help) \
  (table).bind_bytes("--" #field, (obj).field, (help))
