#include "harness/run_plan.hpp"

#include "support/rng.hpp"
#include "support/table.hpp"

namespace pfsc::harness {

RunPlan& RunPlan::sweep(Axis axis) {
  PFSC_REQUIRE(!axis.name.empty(), "RunPlan: axis needs a name");
  PFSC_REQUIRE(!axis.values.empty(), "RunPlan: axis needs at least one value");
  PFSC_REQUIRE(axis.apply != nullptr, "RunPlan: axis needs an apply function");
  for (const auto& existing : axes_) {
    PFSC_REQUIRE(existing.name != axis.name,
                 "RunPlan: overlapping sweep axes: '" + axis.name +
                     "' is already swept");
  }
  axes_.push_back(std::move(axis));
  return *this;
}

RunPlan& RunPlan::sweep(std::string name, std::vector<double> values,
                        std::function<void(Scenario&, double)> apply) {
  Axis axis;
  axis.name = std::move(name);
  axis.values = std::move(values);
  axis.apply = std::move(apply);
  return sweep(std::move(axis));
}

RunPlan& RunPlan::sweep_nprocs(std::vector<double> values) {
  return sweep("nprocs", std::move(values), [](Scenario& s, double v) {
    s.nprocs = static_cast<int>(v);
  });
}

RunPlan& RunPlan::sweep_striping_factor(std::vector<double> values) {
  return sweep("striping_factor", std::move(values), [](Scenario& s, double v) {
    s.ior.hints.striping_factor = static_cast<std::uint32_t>(v);
  });
}

RunPlan& RunPlan::sweep_striping_unit(std::vector<double> values) {
  Axis axis;
  axis.name = "striping_unit";
  axis.values = std::move(values);
  axis.apply = [](Scenario& s, double v) {
    s.ior.hints.striping_unit = static_cast<Bytes>(v);
  };
  axis.label = [](double v) { return format_bytes(static_cast<Bytes>(v)); };
  return sweep(std::move(axis));
}

RunPlan& RunPlan::sweep_writers(std::vector<double> values) {
  return sweep("writers", std::move(values), [](Scenario& s, double v) {
    s.writers = static_cast<std::uint32_t>(v);
  });
}

RunPlan& RunPlan::repetitions(unsigned reps) {
  PFSC_REQUIRE(reps >= 1, "RunPlan: repetitions must be positive");
  reps_ = reps;
  return *this;
}

RunPlan& RunPlan::base_seed(std::uint64_t seed) {
  seed_ = seed;
  return *this;
}

RunPlan& RunPlan::seed_mode(SeedMode mode) {
  mode_ = mode;
  return *this;
}

std::vector<std::string> RunPlan::axis_names() const {
  std::vector<std::string> names;
  names.reserve(axes_.size());
  for (const auto& axis : axes_) names.push_back(axis.name);
  return names;
}

std::size_t RunPlan::point_count() const {
  std::size_t n = 1;
  for (const auto& axis : axes_) n *= axis.values.size();
  return n;
}

std::vector<PlanPoint> RunPlan::expand(const Scenario& base) const {
  const std::size_t points = point_count();
  std::vector<PlanPoint> out;
  out.reserve(points);

  // All seeds are drawn here, before anything runs, in (point-major,
  // rep-minor) order: execution order can never change a seed.
  Rng seeder(seed_);
  std::vector<std::uint64_t> shared_rep_seeds;
  if (mode_ == SeedMode::per_rep) {
    shared_rep_seeds.reserve(reps_);
    for (unsigned r = 0; r < reps_; ++r) shared_rep_seeds.push_back(seeder.next_u64());
  }

  for (std::size_t p = 0; p < points; ++p) {
    PlanPoint point;
    point.scenario = base;
    // Decompose the flat index into per-axis indices (last axis fastest).
    std::size_t rest = p;
    point.coords.resize(axes_.size());
    for (std::size_t a = axes_.size(); a-- > 0;) {
      const auto& axis = axes_[a];
      const std::size_t i = rest % axis.values.size();
      rest /= axis.values.size();
      point.coords[a] = axis.values[i];
    }
    for (std::size_t a = 0; a < axes_.size(); ++a) {
      axes_[a].apply(point.scenario, point.coords[a]);
    }
    if (mode_ == SeedMode::per_rep) {
      point.seeds = shared_rep_seeds;
    } else {
      point.seeds.reserve(reps_);
      for (unsigned r = 0; r < reps_; ++r) point.seeds.push_back(seeder.next_u64());
    }
    out.push_back(std::move(point));
  }
  return out;
}

std::string RunPlan::format_value(std::size_t axis, double value) const {
  PFSC_REQUIRE(axis < axes_.size(), "RunPlan: bad axis index");
  if (axes_[axis].label) return axes_[axis].label(value);
  if (value == static_cast<double>(static_cast<long long>(value))) {
    return fmt_int(static_cast<long long>(value));
  }
  return fmt_double(value, 3);
}

}  // namespace pfsc::harness
