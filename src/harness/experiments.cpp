#include "harness/experiments.hpp"

#include "support/rng.hpp"

namespace pfsc::harness {

void spawn_background_noise(lustre::FileSystem& fs,
                            std::vector<std::unique_ptr<lustre::Client>>& clients,
                            const NoiseSpec& noise, std::uint64_t seed) {
  spawn_noise(fs, clients, noise, seed);
}

Scenario IorRunSpec::to_scenario() const {
  Scenario s;
  s.workload = ior.hints.driver == mpiio::Driver::ad_plfs ? Workload::plfs
                                                          : Workload::ior;
  s.nprocs = nprocs;
  s.procs_per_node = procs_per_node;
  s.ior = ior;
  s.platform = platform;
  s.noise = noise;
  return s;
}

ior::Result run_single_ior(const IorRunSpec& spec, std::uint64_t seed) {
  Scenario s = spec.to_scenario();
  s.workload = Workload::ior;
  return run_scenario(s, seed).ior;
}

PlfsRunResult run_plfs_ior(const IorRunSpec& spec, std::uint64_t seed) {
  Scenario s = spec.to_scenario();
  s.workload = Workload::plfs;
  const Observation obs = run_scenario(s, seed);
  return PlfsRunResult{obs.ior, obs.contention};
}

Scenario MultiJobSpec::to_scenario() const {
  Scenario s;
  s.workload = Workload::multi;
  s.jobs = jobs;
  s.nprocs = procs_per_job;
  s.procs_per_node = procs_per_node;
  s.ior = ior;
  s.platform = platform;
  return s;
}

MultiJobResult run_multi_ior(const MultiJobSpec& spec, std::uint64_t seed) {
  const Observation obs = run_scenario(spec.to_scenario(), seed);
  MultiJobResult out;
  out.per_job = obs.per_job;
  out.mean_mbps = obs.metric;
  out.total_mbps = obs.total_mbps;
  out.contention = obs.contention;
  return out;
}

Scenario ProbeSpec::to_scenario() const {
  Scenario s;
  s.workload = Workload::probe;
  s.writers = writers;
  s.bytes_per_writer = bytes_per_writer;
  s.procs_per_node = procs_per_node;
  s.platform = platform;
  s.noise = noise;
  return s;
}

ior::ProbeResult run_probe_experiment(const ProbeSpec& spec, std::uint64_t seed) {
  return run_scenario(spec.to_scenario(), seed).probe;
}

RepeatedStats repeat(unsigned reps, std::uint64_t base_seed,
                     const std::function<double(std::uint64_t)>& fn) {
  PFSC_REQUIRE(reps > 0, "repeat: reps must be positive");
  Rng seeder(base_seed);
  RepeatedStats out;
  out.samples.reserve(reps);
  for (unsigned i = 0; i < reps; ++i) out.samples.push_back(fn(seeder.next_u64()));
  out.ci = confidence_interval(out.samples);
  return out;
}

}  // namespace pfsc::harness
