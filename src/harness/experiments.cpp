#include "harness/experiments.hpp"

#include <memory>
#include <string>

#include "plfs/plfs.hpp"

namespace pfsc::harness {

namespace {

sim::Task noise_writer(lustre::Client& client, std::string path,
                       lustre::StripeSettings settings, Bytes total,
                       Bytes transfer) {
  auto file = co_await client.create(std::move(path), settings);
  if (!file.ok()) co_return;
  for (Bytes off = 0; off < total; off += transfer) {
    const Bytes chunk = std::min(transfer, total - off);
    const auto e = co_await client.write_buffered(file.value, off, chunk);
    if (e != lustre::Errno::ok) co_return;
  }
  (void)co_await client.flush();
}

}  // namespace

void spawn_background_noise(lustre::FileSystem& fs,
                            std::vector<std::unique_ptr<lustre::Client>>& clients,
                            const NoiseSpec& noise, std::uint64_t seed) {
  lustre::StripeSettings settings;
  settings.stripe_count = noise.stripes;
  settings.stripe_size = noise.stripe_size;
  for (unsigned w = 0; w < noise.writers; ++w) {
    clients.push_back(std::make_unique<lustre::Client>(
        fs, "noise" + std::to_string(w)));
    fs.engine().spawn(noise_writer(
        *clients.back(), "/noise." + std::to_string(seed % 1000) + "." + std::to_string(w),
        settings, noise.bytes_per_writer, noise.transfer_size));
  }
}

ior::Result run_single_ior(const IorRunSpec& spec, std::uint64_t seed) {
  sim::Engine eng;
  lustre::FileSystem fs(eng, spec.platform, seed);
  mpi::Runtime rt(fs, spec.nprocs, spec.procs_per_node);
  std::vector<std::unique_ptr<lustre::Client>> noise_clients;
  if (spec.noise.writers > 0) {
    spawn_background_noise(fs, noise_clients, spec.noise, seed);
  }
  return ior::run_ior(rt, spec.ior);
}

PlfsRunResult run_plfs_ior(const IorRunSpec& spec, std::uint64_t seed) {
  PFSC_REQUIRE(spec.ior.hints.driver == mpiio::Driver::ad_plfs,
               "run_plfs_ior: hints must select ad_plfs");
  sim::Engine eng;
  lustre::FileSystem fs(eng, spec.platform, seed);
  mpi::Runtime rt(fs, spec.nprocs, spec.procs_per_node);
  plfs::Plfs plfs(fs);

  PlfsRunResult out;
  out.ior = ior::run_ior(rt, spec.ior, &plfs);
  const auto data_files = plfs.backend_data_files(spec.ior.test_file);
  const auto per_ost = fs.ost_occupancy(data_files);
  out.backend = core::observe(per_ost);
  return out;
}

namespace {

/// Per-colour slot: the first rank of each sub-communicator constructs the
/// job; everyone else waits on `ready`.
struct JobSlot {
  std::unique_ptr<ior::IorJob> job;
  std::unique_ptr<sim::Event> ready;
};

sim::Task multi_rank_main(mpi::Runtime& rt, lustre::FileSystem& fs,
                          const MultiJobSpec& spec, std::vector<JobSlot>& slots,
                          int world_rank) {
  mpi::Communicator& world = rt.world();
  const int color = world_rank / spec.procs_per_job;

  // Synchronise all jobs' starts, then carve the world into one
  // communicator per job (the paper's "four identical IOR executions each
  // running simultaneously").
  co_await world.barrier(world_rank);
  const auto sr = co_await world.split(world_rank, color, world_rank);
  JobSlot& slot = slots[static_cast<std::size_t>(color)];
  if (sr.rank == 0) {
    ior::Config cfg = spec.ior;
    cfg.test_file += "." + std::to_string(color);
    slot.job = std::make_unique<ior::IorJob>(*sr.comm, fs, cfg, nullptr);
    slot.ready->trigger();
  } else if (!slot.ready->fired()) {
    co_await slot.ready->wait();
  }
  co_await slot.job->run_rank(sr.rank, rt.client(world_rank));
}

}  // namespace

MultiJobResult run_multi_ior(const MultiJobSpec& spec, std::uint64_t seed) {
  PFSC_REQUIRE(spec.jobs >= 1, "run_multi_ior: need at least one job");
  PFSC_REQUIRE(spec.ior.hints.driver != mpiio::Driver::ad_plfs,
               "run_multi_ior: use run_plfs_ior for PLFS");
  sim::Engine eng;
  lustre::FileSystem fs(eng, spec.platform, seed);
  mpi::Runtime rt(fs, spec.jobs * spec.procs_per_job, spec.procs_per_node);

  std::vector<JobSlot> slots(static_cast<std::size_t>(spec.jobs));
  for (auto& slot : slots) slot.ready = std::make_unique<sim::Event>(eng);

  rt.run_to_completion([&](int world_rank) -> sim::Task {
    return multi_rank_main(rt, fs, spec, slots, world_rank);
  });

  MultiJobResult out;
  std::vector<lustre::InodeId> files;
  for (auto& slot : slots) {
    PFSC_ASSERT(slot.job && slot.job->finished());
    out.per_job.push_back(slot.job->result());
    out.mean_mbps += slot.job->result().write_mbps;
    out.total_mbps += slot.job->result().write_mbps;
    files.push_back(slot.job->file().context().ino);
  }
  out.mean_mbps /= static_cast<double>(spec.jobs);
  out.contention = core::observe(fs.ost_occupancy(files));
  return out;
}

ior::ProbeResult run_probe_experiment(const ProbeSpec& spec, std::uint64_t seed) {
  sim::Engine eng;
  lustre::FileSystem fs(eng, spec.platform, seed);
  mpi::Runtime rt(fs, static_cast<int>(spec.writers), spec.procs_per_node);
  std::vector<std::unique_ptr<lustre::Client>> noise_clients;
  if (spec.noise.writers > 0) {
    spawn_background_noise(fs, noise_clients, spec.noise, seed);
  }
  ior::ProbeConfig cfg;
  cfg.num_writers = spec.writers;
  cfg.bytes_per_writer = spec.bytes_per_writer;
  // Any OST works (the paper pins one via stripe_offset); randomising the
  // pick per repetition lets background noise land on it sometimes, which
  // is where the single-writer variance of Figure 2's band comes from.
  cfg.target_ost = static_cast<lustre::OstIndex>(seed % fs.params().ost_count);
  return ior::run_probe(rt, cfg);
}

RepeatedStats repeat(unsigned reps, std::uint64_t base_seed,
                     const std::function<double(std::uint64_t)>& fn) {
  PFSC_REQUIRE(reps > 0, "repeat: reps must be positive");
  Rng seeder(base_seed);
  RepeatedStats out;
  out.samples.reserve(reps);
  for (unsigned i = 0; i < reps; ++i) out.samples.push_back(fn(seeder.next_u64()));
  out.ci = confidence_interval(out.samples);
  return out;
}

}  // namespace pfsc::harness
