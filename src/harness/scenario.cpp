#include "harness/scenario.hpp"

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <set>
#include <string>

#include "plfs/plfs.hpp"
#include "sim/domain.hpp"
#include "trace/export.hpp"

namespace pfsc::harness {

const char* job_kind_name(JobKind k) {
  switch (k) {
    case JobKind::ior: return "ior";
    case JobKind::plfs: return "plfs";
    case JobKind::probe_writer: return "probe";
    case JobKind::noise: return "noise";
  }
  return "?";
}

const std::string& JobSpec::display_app() const {
  static const std::string names[] = {"ior", "plfs", "probe", "noise"};
  if (!app.empty()) return app;
  return names[static_cast<std::size_t>(kind)];
}

void JobSpec::validate(std::size_t index) const {
  const std::string where = "JobSpec[" + std::to_string(index) + "]: ";
  PFSC_REQUIRE(arrival >= 0.0, where + "arrival must be non-negative");
  switch (kind) {
    case JobKind::ior:
      PFSC_REQUIRE(nprocs >= 1, where + "nprocs must be positive");
      PFSC_REQUIRE(ior.hints.driver != mpiio::Driver::ad_plfs,
                   where + "use kind=plfs for ad_plfs");
      break;
    case JobKind::plfs:
      PFSC_REQUIRE(nprocs >= 1, where + "nprocs must be positive");
      PFSC_REQUIRE(ior.hints.driver == mpiio::Driver::ad_plfs,
                   where + "kind=plfs needs hints.driver == ad_plfs");
      break;
    case JobKind::probe_writer:
      PFSC_REQUIRE(nprocs >= 1, where + "nprocs must be positive");
      PFSC_REQUIRE(bytes > 0, where + "bytes must be positive");
      PFSC_REQUIRE(transfer_size > 0, where + "transfer_size must be positive");
      break;
    case JobKind::noise:
      PFSC_REQUIRE(bytes > 0, where + "bytes must be positive");
      PFSC_REQUIRE(transfer_size > 0, where + "transfer_size must be positive");
      break;
  }
}

const char* workload_name(Workload w) {
  switch (w) {
    case Workload::ior: return "ior";
    case Workload::plfs: return "plfs";
    case Workload::multi: return "multi";
    case Workload::probe: return "probe";
    case Workload::jobs: return "jobs";
  }
  return "?";
}

// ---------------------------------------------------------------------------
// Factories + desugaring
// ---------------------------------------------------------------------------

Scenario Scenario::single_ior(ior::Config cfg) {
  Scenario s;
  s.workload = Workload::ior;
  s.ior = std::move(cfg);
  return s;
}

Scenario Scenario::plfs_ior(ior::Config cfg) {
  Scenario s;
  s.workload = Workload::plfs;
  s.ior = std::move(cfg);
  s.ior.hints.driver = mpiio::Driver::ad_plfs;
  return s;
}

Scenario Scenario::multi(int jobs, int nprocs, ior::Config cfg) {
  Scenario s;
  s.workload = Workload::multi;
  s.jobs = jobs;
  s.nprocs = nprocs;
  s.ior = std::move(cfg);
  return s;
}

Scenario Scenario::probe(std::uint32_t writers, Bytes bytes_per_writer) {
  Scenario s;
  s.workload = Workload::probe;
  s.writers = writers;
  s.bytes_per_writer = bytes_per_writer;
  return s;
}

Scenario Scenario::from_jobs(std::vector<JobSpec> list) {
  Scenario s;
  s.workload = Workload::jobs;
  s.job_list = std::move(list);
  return s;
}

std::vector<JobSpec> Scenario::jobs_desugared() const {
  std::vector<JobSpec> out;
  if (!job_list.empty()) {
    out = job_list;
    // JobSpec::job_id is the job's identity everywhere (scheduler
    // accounting, admission records, analytics rows); stamp it into the
    // embedded ior config so callers building job lists by hand don't
    // have to remember both fields.
    for (JobSpec& j : out) {
      if (j.kind == JobKind::ior || j.kind == JobKind::plfs) {
        j.ior.job_id = j.job_id;
      }
    }
  } else {
    switch (workload) {
      case Workload::ior:
      case Workload::plfs: {
        JobSpec j;
        j.kind = workload == Workload::plfs ? JobKind::plfs : JobKind::ior;
        j.job_id = ior.job_id;
        j.nprocs = nprocs;
        j.ior = ior;
        out.push_back(std::move(j));
        break;
      }
      case Workload::multi:
        for (int k = 0; k < jobs; ++k) {
          JobSpec j;
          j.kind = JobKind::ior;
          j.job_id = static_cast<lustre::sched::JobId>(k);
          j.nprocs = nprocs;
          j.ior = ior;
          j.ior.test_file += "." + std::to_string(k);
          j.ior.job_id = j.job_id;
          out.push_back(std::move(j));
        }
        break;
      case Workload::probe:
        for (std::uint32_t w = 0; w < writers; ++w) {
          JobSpec j;
          j.kind = JobKind::probe_writer;
          j.job_id = static_cast<lustre::sched::JobId>(w);
          j.nprocs = 1;
          j.bytes = bytes_per_writer;
          out.push_back(std::move(j));
        }
        break;
      case Workload::jobs:
        break;  // empty job_list: validate() rejects this shape
    }
  }
  // Deprecated NoiseSpec alias: background writers become ordinary noise
  // jobs appended after the rank-carrying jobs, ids kNoiseJobBase + i.
  for (unsigned w = 0; w < noise.writers; ++w) {
    JobSpec j;
    j.kind = JobKind::noise;
    j.job_id = lustre::sched::kNoiseJobBase + w;
    j.bytes = noise.bytes_per_writer;
    j.transfer_size = noise.transfer_size;
    j.stripes = noise.stripes;
    j.stripe_size = noise.stripe_size;
    out.push_back(std::move(j));
  }
  return out;
}

void Scenario::validate() const {
  PFSC_REQUIRE(procs_per_node >= 1, "Scenario: procs_per_node must be positive");
  PFSC_REQUIRE(telemetry_interval >= 0.0,
               "Scenario: telemetry_interval must be non-negative");
  PFSC_REQUIRE(trace.interval >= 0.0,
               "Scenario: trace.interval must be non-negative");
  PFSC_REQUIRE(trace.out.empty() || trace.mode != trace::TraceMode::off,
               "Scenario: trace.out requires trace.mode != off");
  PFSC_REQUIRE(admission.max_dload > 0.0,
               "Scenario: admission.max_dload must be positive");
  PFSC_REQUIRE(admission.min_stripes >= 1,
               "Scenario: admission.min_stripes must be >= 1");
  // Degenerate scheduler tunings (zero quantum, no service slots, empty
  // bucket) are rejected here rather than producing silently broken
  // schedules mid-run; the CLI additionally rejects them at parse time
  // with the flag name.
  lustre::sched::validate_tuning(platform.oss_sched);
  if (ctrl.mode != ctrl::CtrlMode::off) {
    PFSC_REQUIRE(ctrl.interval > 0.0,
                 "Scenario: ctrl.interval must be positive");
    PFSC_REQUIRE(ctrl.cooldown >= 0.0,
                 "Scenario: ctrl.cooldown must be non-negative");
    PFSC_REQUIRE(ctrl.jain_low <= ctrl.jain_high,
                 "Scenario: ctrl.jain_low must not exceed ctrl.jain_high");
    PFSC_REQUIRE(ctrl.storm_jobs >= 1,
                 "Scenario: ctrl.storm_jobs must be >= 1");
  }
  if (!job_list.empty()) {
    std::set<lustre::sched::JobId> ids;
    bool any_ranks = false;
    for (std::size_t i = 0; i < job_list.size(); ++i) {
      const JobSpec& j = job_list[i];
      j.validate(i);
      PFSC_REQUIRE(ids.insert(j.job_id).second,
                   "Scenario: duplicate JobId " + std::to_string(j.job_id) +
                       " in job list");
      any_ranks = any_ranks || j.kind != JobKind::noise;
    }
    for (unsigned w = 0; w < noise.writers; ++w) {
      PFSC_REQUIRE(ids.insert(lustre::sched::kNoiseJobBase + w).second,
                   "Scenario: noise JobId collides with an explicit job");
    }
    PFSC_REQUIRE(any_ranks,
                 "Scenario: job list needs at least one non-noise job");
    return;
  }
  PFSC_REQUIRE(nprocs >= 1, "Scenario: nprocs must be positive");
  switch (workload) {
    case Workload::ior:
      break;
    case Workload::plfs:
      PFSC_REQUIRE(ior.hints.driver == mpiio::Driver::ad_plfs,
                   "Scenario: plfs workload needs hints.driver == ad_plfs");
      break;
    case Workload::multi:
      PFSC_REQUIRE(jobs >= 1, "Scenario: multi workload needs at least one job");
      PFSC_REQUIRE(ior.hints.driver != mpiio::Driver::ad_plfs,
                   "Scenario: use the plfs workload for ad_plfs");
      break;
    case Workload::probe:
      PFSC_REQUIRE(writers >= 1, "Scenario: probe needs at least one writer");
      PFSC_REQUIRE(telemetry_interval == 0.0,
                   "Scenario: the probe workload does not support telemetry");
      PFSC_REQUIRE(trace.interval == 0.0,
                   "Scenario: the probe workload does not support a trace sampler");
      PFSC_REQUIRE(ctrl.mode == ctrl::CtrlMode::off,
                   "Scenario: the probe workload does not support --ctrl");
      break;
    case Workload::jobs:
      throw UsageError("Scenario: Workload::jobs needs a non-empty job_list");
  }
}

namespace {

sim::Task noise_writer(lustre::Client& client, std::string path,
                       lustre::StripeSettings settings, Bytes total,
                       Bytes transfer, Seconds arrival) {
  // Arrival 0 adds no event: desugared legacy noise stays bit-for-bit.
  if (arrival > 0.0) co_await client.fs().engine().delay(arrival);
  auto file = co_await client.create(std::move(path), settings);
  if (!file.ok()) co_return;
  for (Bytes off = 0; off < total; off += transfer) {
    const Bytes chunk = std::min(transfer, total - off);
    const auto e = co_await client.write_buffered(file.value, off, chunk);
    if (e != lustre::Errno::ok) co_return;
  }
  (void)co_await client.flush();
}

/// Spawn one JobKind::noise entry (an independent client streaming a
/// default-layout file). Naming matches the historical spawn_noise exactly:
/// writer i (= job_id - kNoiseJobBase) is client "noise<i>" writing
/// "/noise.<seed%1000>.<i>".
void spawn_noise_job(lustre::FileSystem& fs,
                     std::vector<std::unique_ptr<lustre::Client>>& clients,
                     const JobSpec& job, std::uint64_t seed) {
  const std::uint32_t i = job.job_id >= lustre::sched::kNoiseJobBase
                              ? job.job_id - lustre::sched::kNoiseJobBase
                              : job.job_id;
  lustre::StripeSettings settings;
  settings.stripe_count = job.stripes;
  settings.stripe_size = job.stripe_size;
  clients.push_back(
      std::make_unique<lustre::Client>(fs, "noise" + std::to_string(i)));
  clients.back()->set_job(job.job_id);
  fs.engine().spawn(noise_writer(
      *clients.back(),
      "/noise." + std::to_string(seed % 1000) + "." + std::to_string(i),
      settings, job.bytes, job.transfer_size, job.arrival));
}

/// A sharded run's domain set, or nullptr for the single-engine path.
/// Sharding engages only when it is requested (resolved sim_domains >= 2),
/// the model has a lookahead to shard under (rpc_latency > 0), and no
/// periodic sampler or adaptive controller is attached — both read (the
/// controller also writes) server-side state from domain 0 mid-run, which
/// would race with the owning domains. The fallback is silent and safe:
/// results are bit-for-bit identical either way, only wall-clock time
/// differs.
std::unique_ptr<sim::ShardSet> make_shards(const Scenario& s) {
  const std::size_t domains =
      sim::resolve_domains(s.platform.sim_domains, s.platform.oss_count);
  if (domains < 2) return nullptr;
  if (s.telemetry_interval > 0.0 || s.trace.interval > 0.0) return nullptr;
  if (s.ctrl.mode != ctrl::CtrlMode::off) return nullptr;
  if (s.platform.rpc_latency <= 0.0) return nullptr;
  return std::make_unique<sim::ShardSet>(domains, s.platform.rpc_latency,
                                         s.platform.event_queue);
}

/// Shared run state every workload branch builds: fresh engine (or domain
/// set), seeded file system, runtime, background noise jobs, optional
/// telemetry sampler, optional event recorder (one per domain when
/// sharded; + trace sampler mirroring into it).
struct Rig {
  std::unique_ptr<sim::ShardSet> shards;  // sharded runs only
  std::unique_ptr<sim::Engine> solo;      // single-engine runs only
  sim::Engine& eng;                       // domain 0's engine either way
  std::vector<std::unique_ptr<trace::Recorder>> recorders;  // one per domain
  trace::Recorder* recorder = nullptr;    // domain 0's recorder
  lustre::FileSystem fs;
  mpi::Runtime rt;
  std::vector<std::unique_ptr<lustre::Client>> noise_clients;
  std::unique_ptr<trace::Sampler> sampler;
  std::unique_ptr<trace::Sampler> trace_sampler;
  std::unique_ptr<ctrl::Controller> controller;  // scenario.ctrl.mode != off

  Rig(const Scenario& s, int nprocs, std::uint64_t seed,
      const std::vector<const JobSpec*>& noise_jobs)
      : shards(make_shards(s)),
        solo(shards ? nullptr
                    : std::make_unique<sim::Engine>(s.platform.event_queue)),
        eng(shards ? shards->domain(0) : *solo),
        fs(eng, s.platform, seed, lustre::AllocPolicy::uniform_random,
           shards.get()),
        rt(fs, nprocs, s.procs_per_node) {
    if (s.trace.mode != trace::TraceMode::off) {
      const std::size_t domains = shards ? shards->domains() : 1;
      recorders.reserve(domains);
      for (std::size_t d = 0; d < domains; ++d) {
        recorders.push_back(std::make_unique<trace::Recorder>(s.trace));
        (shards ? shards->domain(d) : eng).set_recorder(recorders.back().get());
      }
      recorder = recorders.front().get();
    }
    for (const JobSpec* job : noise_jobs) {
      spawn_noise_job(fs, noise_clients, *job, seed);
    }
    if (s.telemetry_interval > 0.0) {
      sampler = std::make_unique<trace::Sampler>(eng, s.telemetry_interval);
      sampler->add_total_bytes_probe(fs);
    }
    // `off` builds no controller at all: zero engine events, goldens
    // bit-for-bit (the same null pattern as admission control).
    if (s.ctrl.mode != ctrl::CtrlMode::off) {
      controller = std::make_unique<ctrl::Controller>(eng, s.ctrl, fs, recorder);
    }
    if (recorder && s.trace.interval > 0.0) {
      trace_sampler = std::make_unique<trace::Sampler>(eng, s.trace.interval);
      trace_sampler->add_instruments(trace::link_instruments("fabric", fs.fabric()),
                                     fs.liveness());
      trace_sampler->add_instruments(trace::sched_instruments(fs), fs.liveness());
      trace_sampler->add_instruments(trace::total_bytes_instruments(fs),
                                     fs.liveness());
    }
  }

  /// The per-domain recorders as the merged exporters want them (a single
  /// recorder for unsharded runs).
  std::vector<const trace::Recorder*> recorder_views() const {
    std::vector<const trace::Recorder*> recs;
    recs.reserve(recorders.size());
    for (const auto& r : recorders) recs.push_back(r.get());
    return recs;
  }

  /// Start sampling, stopping once `done()` first returns true (so the
  /// periodic samplers cannot keep the drained engine alive).
  void start_sampler(std::function<bool()> done) {
    if (sampler) {
      sampler->watch([done] { return !done(); });
      sampler->start();
    }
    if (controller) {
      controller->watch([done] { return !done(); });
      controller->start();
    }
    if (trace_sampler) {
      trace_sampler->watch([done = std::move(done)] { return !done(); });
      trace_sampler->start();
    }
  }

  /// Harvest the controller's decision log into the observation.
  void finish_ctrl(Observation& obs, const Scenario& s) {
    if (!controller) return;
    obs.ctrl_mode = s.ctrl.mode;
    obs.ctrl_actions = controller->take_actions();
  }

  void export_bandwidth(Observation& obs) const {
    if (!sampler) return;
    obs.bandwidth = trace::Sampler::bandwidth_timeline(sampler->series(0));
  }

  /// Roll the recorder up into the observation and write --trace_out.
  /// Called after the run drains, from every workload branch.
  void finish_trace(Observation& obs, const Scenario& s, std::uint64_t seed) {
    if (recorder == nullptr) return;
    obs.traced = true;
    const std::vector<const trace::Recorder*> recs = recorder_views();
    obs.trace_summary = trace::collect_summary(fs, recs);
    if (s.trace.mode == trace::TraceMode::full) {
      obs.trace_json = trace::export_chrome_trace(recs);
    }
    if (s.trace.out.empty()) return;
    const std::string path = trace::resolve_trace_path(s.trace.out, seed);
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    PFSC_REQUIRE(out.good(), "trace: cannot open --trace_out path " + path);
    if (path.size() >= 4 && path.compare(path.size() - 4, 4, ".csv") == 0) {
      out << trace::export_counters_csv(recs);
    } else if (s.trace.mode == trace::TraceMode::full) {
      out << obs.trace_json;
    } else {
      out << obs.trace_summary.format();
    }
    out.flush();
    PFSC_REQUIRE(out.good(), "trace: failed writing " + path);
  }
};

double headline_metric(const ior::Config& cfg, const ior::Result& res) {
  return cfg.write_file ? res.write_mbps : res.read_mbps;
}

/// The desugared job list, partitioned into rank-carrying jobs (ior, plfs,
/// probe writers — these occupy MPI world ranks in contiguous blocks, in
/// list order) and background noise jobs (spawned outside the runtime).
struct JobPlan {
  std::vector<JobSpec> all;                // spawn/report order
  std::vector<const JobSpec*> rank_jobs;   // pointers into `all`
  std::vector<const JobSpec*> noise_jobs;  // pointers into `all`
  std::vector<int> first_rank;             // per rank job: world-rank base
  int total_ranks = 0;
  bool synchronized = true;  // every rank job arrives at t = 0

  explicit JobPlan(std::vector<JobSpec> jobs) : all(std::move(jobs)) {
    for (const JobSpec& j : all) {
      if (j.kind == JobKind::noise) {
        noise_jobs.push_back(&j);
        continue;
      }
      rank_jobs.push_back(&j);
      first_rank.push_back(total_ranks);
      total_ranks += j.nprocs;
      synchronized = synchronized && j.arrival == 0.0;
    }
  }

  /// Job index owning `world_rank` (blocks are contiguous and in order).
  std::size_t color_of(int world_rank) const {
    auto it = std::upper_bound(first_rank.begin(), first_rank.end(), world_rank);
    return static_cast<std::size_t>(it - first_rank.begin()) - 1;
  }
};

/// Per-job run state for the fleet executor.
struct JobSlot {
  const JobSpec* spec = nullptr;
  int base = 0;  // first world rank
  std::unique_ptr<ior::IorJob> job;
  std::unique_ptr<sim::Event> ready;          // synchronized mode
  std::unique_ptr<mpi::Communicator> comm;    // free-running mode
  // probe_writer outcomes, one slot per writer rank.
  std::vector<double> writer_mbps;
  std::vector<Seconds> writer_time;
  int writers_done = 0;

  bool finished() const {
    if (spec->kind == JobKind::probe_writer) {
      return writers_done == spec->nprocs;
    }
    return job != nullptr && job->finished();
  }
};

/// Fig. 2-style writer body, generalised to run inside any fleet: stream
/// `spec.bytes` to one file pinned on the target OST via stripe_offset.
sim::Co<void> probe_writer_body(Rig& rig, JobSlot& slot, int local_rank,
                                lustre::Client& client, std::uint64_t seed) {
  const JobSpec& spec = *slot.spec;
  sim::Engine& eng = rig.eng;
  client.set_job(spec.job_id);

  const auto target = static_cast<lustre::OstIndex>(
      spec.target_ost >= 0
          ? static_cast<std::uint32_t>(spec.target_ost) %
                rig.fs.params().ost_count
          : seed % rig.fs.params().ost_count);
  const std::string dir = "/probe";
  if (!rig.fs.exists(dir)) {
    auto made = co_await client.mkdir(dir);
    PFSC_ASSERT(made.ok() || made.err == lustre::Errno::eexist);
  }

  lustre::StripeSettings settings;
  settings.stripe_count = 1;
  settings.stripe_size = 1_MiB;
  settings.stripe_offset = static_cast<std::int32_t>(target);
  const std::string path = dir + "/j" + std::to_string(spec.job_id) + "." +
                           std::to_string(local_rank);
  auto created = co_await client.create(path, settings);
  PFSC_ASSERT(created.ok());

  const Seconds t0 = eng.now();
  Bytes done = 0;
  while (done < spec.bytes) {
    const Bytes chunk = std::min<Bytes>(spec.transfer_size, spec.bytes - done);
    const lustre::Errno e = co_await client.write_buffered(created.value, done, chunk);
    PFSC_ASSERT(e == lustre::Errno::ok);
    done += chunk;
  }
  const lustre::Errno fe = co_await client.flush();
  PFSC_ASSERT(fe == lustre::Errno::ok);
  const Seconds elapsed = eng.now() - t0;
  slot.writer_time[static_cast<std::size_t>(local_rank)] = elapsed;
  slot.writer_mbps[static_cast<std::size_t>(local_rank)] =
      bandwidth_mbps(spec.bytes, elapsed);
  ++slot.writers_done;
}

/// Create every missing parent directory of the job files, then release
/// the ranks. Only spawned when some job writes outside "/" (legacy
/// scenarios never do, so their event sequences carry no extra events).
sim::Task make_dirs(lustre::Client& client, std::vector<std::string> dirs,
                    sim::Event& done) {
  for (const std::string& dir : dirs) {
    if (!client.fs().exists(dir)) {
      const auto made = co_await client.mkdir(dir);
      PFSC_ASSERT(made.ok() || made.err == lustre::Errno::eexist);
    }
  }
  done.trigger();
}

/// Proper ancestor directories of `path`, shallowest first ("/a/b/f" ->
/// ["/a", "/a/b"]).
void collect_parents(const std::string& path, std::vector<std::string>& out) {
  for (std::size_t pos = path.find('/', 1); pos != std::string::npos;
       pos = path.find('/', pos + 1)) {
    if (pos > 1) out.push_back(path.substr(0, pos));
  }
}

/// Synchronised-start rank main: the paper's simultaneous-submission
/// design. All world ranks barrier, then carve the world into one
/// sub-communicator per job — the historical multi workload's exact event
/// sequence (pinned bit-for-bit by the golden tests), generalised to
/// heterogeneous job lists.
sim::Task fleet_rank_main_sync(Rig& rig, const JobPlan& plan,
                               std::vector<JobSlot>& slots, int world_rank,
                               plfs::Plfs* plfs, std::uint64_t seed,
                               sim::Event* setup_done,
                               AdmissionController* admission) {
  mpi::Communicator& world = rig.rt.world();
  const auto color = static_cast<int>(plan.color_of(world_rank));

  if (setup_done != nullptr && !setup_done->fired()) {
    co_await setup_done->wait();
  }
  co_await world.barrier(world_rank);
  const auto sr = co_await world.split(world_rank, color, world_rank);
  JobSlot& slot = slots[static_cast<std::size_t>(color)];
  if (slot.spec->kind == JobKind::probe_writer) {
    // Probe layouts are not stripe-tunable; admission can only delay them.
    if (admission != nullptr) {
      if (sr.rank == 0) {
        (void)co_await admission->admit(*slot.spec);
        slot.ready->trigger();
      } else if (!slot.ready->fired()) {
        co_await slot.ready->wait();
      }
    }
    co_await probe_writer_body(rig, slot, sr.rank, rig.rt.client(world_rank),
                               seed);
    if (admission != nullptr && slot.finished()) admission->finished(*slot.spec);
    co_return;
  }
  if (sr.rank == 0) {
    ior::Config cfg = slot.spec->ior;
    if (admission != nullptr) {
      const std::uint32_t detuned = co_await admission->admit(*slot.spec);
      if (detuned != 0) cfg.hints.striping_factor = detuned;
    }
    slot.job = std::make_unique<ior::IorJob>(
        *sr.comm, rig.fs, std::move(cfg),
        slot.spec->kind == JobKind::plfs ? plfs : nullptr);
    slot.ready->trigger();
  } else if (!slot.ready->fired()) {
    co_await slot.ready->wait();
  }
  co_await slot.job->run_rank(sr.rank, rig.rt.client(world_rank));
  if (admission != nullptr && slot.finished()) admission->finished(*slot.spec);
}

/// Free-running rank main: any positive arrival disables the global
/// barrier; each job sleeps until its own offset and runs on a pre-built
/// per-job communicator (jobs arriving later genuinely find the system in
/// whatever state the earlier ones left it).
sim::Task fleet_rank_main_staggered(Rig& rig, std::vector<JobSlot>& slots,
                                    std::size_t color, int local_rank,
                                    int world_rank, plfs::Plfs* plfs,
                                    std::uint64_t seed, sim::Event* setup_done,
                                    AdmissionController* admission) {
  JobSlot& slot = slots[color];
  if (setup_done != nullptr && !setup_done->fired()) {
    co_await setup_done->wait();
  }
  if (slot.spec->arrival > 0.0) {
    co_await rig.eng.delay(slot.spec->arrival);
  }
  // Under admission control the job's IorJob is built lazily by local rank
  // 0 once the controller releases it (the detuned stripe hint must be
  // known first); without it the pre-built job is used untouched, keeping
  // the historical event sequence bit for bit.
  if (admission != nullptr) {
    if (local_rank == 0) {
      const std::uint32_t detuned = co_await admission->admit(*slot.spec);
      if (slot.spec->kind != JobKind::probe_writer) {
        ior::Config cfg = slot.spec->ior;
        if (detuned != 0) cfg.hints.striping_factor = detuned;
        slot.job = std::make_unique<ior::IorJob>(
            *slot.comm, rig.fs, std::move(cfg),
            slot.spec->kind == JobKind::plfs ? plfs : nullptr);
      }
      slot.ready->trigger();
    } else if (!slot.ready->fired()) {
      co_await slot.ready->wait();
    }
  }
  if (slot.spec->kind == JobKind::probe_writer) {
    co_await probe_writer_body(rig, slot, local_rank,
                               rig.rt.client(world_rank), seed);
  } else {
    co_await slot.job->run_rank(local_rank, rig.rt.client(world_rank));
  }
  if (admission != nullptr && slot.finished()) admission->finished(*slot.spec);
}

/// Fold one probe job's per-writer outcomes into an ior::Result so fleet
/// aggregation is uniform: write_mbps is the job's aggregate bandwidth.
ior::Result probe_slot_result(const JobSlot& slot) {
  ior::Result r;
  r.total_bytes = slot.spec->bytes * static_cast<Bytes>(slot.spec->nprocs);
  for (std::size_t w = 0; w < slot.writer_mbps.size(); ++w) {
    r.write_mbps += slot.writer_mbps[w];
    r.write_time = std::max(r.write_time, slot.writer_time[w]);
  }
  r.verified = true;
  return r;
}

/// The general executor: any job list with more than one rank-carrying job
/// (or any staggered arrival / in-fleet probe writers).
Observation run_fleet(const Scenario& s, JobPlan plan, std::uint64_t seed) {
  Rig rig(s, plan.total_ranks, seed, plan.noise_jobs);
  std::unique_ptr<plfs::Plfs> plfs;
  for (const JobSpec* spec : plan.rank_jobs) {
    if (spec->kind == JobKind::plfs && !plfs) {
      plfs = std::make_unique<plfs::Plfs>(rig.fs);
    }
  }
  // `always` builds no controller at all: the null pointer keeps every
  // admission hook a single test and the event sequences untouched.
  std::unique_ptr<AdmissionController> admission;
  if (s.admission.policy != AdmissionPolicy::always) {
    admission = std::make_unique<AdmissionController>(rig.eng, s.admission,
                                                      s.platform, rig.recorder);
  }

  std::vector<JobSlot> slots(plan.rank_jobs.size());
  for (std::size_t i = 0; i < slots.size(); ++i) {
    slots[i].spec = plan.rank_jobs[i];
    slots[i].base = plan.first_rank[i];
    if (slots[i].spec->kind == JobKind::probe_writer) {
      slots[i].writer_mbps.assign(static_cast<std::size_t>(slots[i].spec->nprocs), 0.0);
      slots[i].writer_time.assign(static_cast<std::size_t>(slots[i].spec->nprocs), 0.0);
    } else if (plan.synchronized) {
      slots[i].ready = std::make_unique<sim::Event>(rig.eng);
    } else {
      // Free-running jobs never comm_split, so each gets its own world.
      slots[i].comm = std::make_unique<mpi::Communicator>(
          rig.eng, slots[i].spec->nprocs);
      if (admission == nullptr) {
        slots[i].job = std::make_unique<ior::IorJob>(
            *slots[i].comm, rig.fs, slots[i].spec->ior,
            slots[i].spec->kind == JobKind::plfs ? plfs.get() : nullptr);
      }
    }
    // Gated jobs release their ranks through a per-slot event.
    if (admission != nullptr && slots[i].ready == nullptr) {
      slots[i].ready = std::make_unique<sim::Event>(rig.eng);
    }
  }

  // Parent directories the job files need (outside "/": fleets often use
  // "/fleet/<app>.<id>"). Created by a setup task the ranks wait on; empty
  // for every legacy scenario, which therefore sees no extra events.
  std::vector<std::string> dirs;
  for (const JobSpec* spec : plan.rank_jobs) {
    if (spec->kind != JobKind::probe_writer) {
      collect_parents(spec->ior.test_file, dirs);
    }
  }
  std::sort(dirs.begin(), dirs.end());
  dirs.erase(std::unique(dirs.begin(), dirs.end()), dirs.end());
  std::unique_ptr<lustre::Client> setup_client;
  std::unique_ptr<sim::Event> setup_done;
  if (!dirs.empty()) {
    setup_client = std::make_unique<lustre::Client>(rig.fs, "setup");
    setup_done = std::make_unique<sim::Event>(rig.eng);
    rig.eng.spawn(make_dirs(*setup_client, std::move(dirs), *setup_done));
  }

  rig.start_sampler([&slots] {
    return std::all_of(slots.begin(), slots.end(),
                       [](const JobSlot& slot) { return slot.finished(); });
  });
  if (plan.synchronized) {
    rig.rt.run_to_completion([&](int world_rank) -> sim::Task {
      return fleet_rank_main_sync(rig, plan, slots, world_rank, plfs.get(),
                                  seed, setup_done.get(), admission.get());
    });
  } else {
    rig.rt.run_to_completion([&](int world_rank) -> sim::Task {
      const std::size_t color = plan.color_of(world_rank);
      return fleet_rank_main_staggered(rig, slots, color,
                                       world_rank - slots[color].base,
                                       world_rank, plfs.get(), seed,
                                       setup_done.get(), admission.get());
    });
  }

  Observation obs;
  std::vector<lustre::InodeId> files;
  double mean = 0.0;
  for (JobSlot& slot : slots) {
    PFSC_ASSERT(slot.finished());
    if (slot.spec->kind == JobKind::probe_writer) {
      obs.per_job.push_back(probe_slot_result(slot));
      mean += obs.per_job.back().write_mbps;
      obs.total_mbps += obs.per_job.back().write_mbps;
      continue;
    }
    obs.per_job.push_back(slot.job->result());
    const double headline = headline_metric(slot.spec->ior, obs.per_job.back());
    mean += headline;
    obs.total_mbps += headline;
    if (slot.spec->kind == JobKind::plfs) {
      for (const lustre::InodeId ino :
           plfs->backend_data_files(slot.spec->ior.test_file)) {
        files.push_back(ino);
      }
    } else {
      for (const lustre::InodeId ino : slot.job->file_inos()) {
        files.push_back(ino);
      }
    }
  }
  mean /= static_cast<double>(slots.size());
  obs.ior = obs.per_job.front();
  obs.ior.write_mbps = mean;
  obs.metric = mean;
  obs.contention = core::observe(rig.fs.ost_occupancy(files));
  if (admission != nullptr) obs.admissions = admission->take_records();
  rig.finish_ctrl(obs, s);
  rig.export_bandwidth(obs);
  rig.finish_trace(obs, s, seed);
  return obs;
}

/// Single ior/plfs job arriving at t = 0: the historical single-job data
/// path, with no barrier/split latency (pinned by the Fig. 1 goldens).
Observation run_single(const Scenario& s, const JobPlan& plan,
                       std::uint64_t seed) {
  const JobSpec& spec = *plan.rank_jobs.front();
  Rig rig(s, spec.nprocs, seed, plan.noise_jobs);
  std::unique_ptr<plfs::Plfs> plfs;
  if (spec.ior.hints.driver == mpiio::Driver::ad_plfs) {
    plfs = std::make_unique<plfs::Plfs>(rig.fs);
  }
  ior::IorJob job(rig.rt.world(), rig.fs, spec.ior, plfs.get());
  rig.start_sampler([&job] { return job.finished(); });
  rig.rt.run_to_completion([&](int rank) -> sim::Task {
    return job.rank_main(rank, rig.rt.client(rank));
  });

  Observation obs;
  obs.ior = job.result();
  obs.metric = headline_metric(spec.ior, obs.ior);
  obs.per_job.push_back(obs.ior);
  obs.total_mbps = obs.metric;
  if (spec.kind == JobKind::plfs) {
    const auto data_files = plfs->backend_data_files(spec.ior.test_file);
    obs.contention = core::observe(rig.fs.ost_occupancy(data_files));
  }
  rig.finish_ctrl(obs, s);
  rig.export_bandwidth(obs);
  rig.finish_trace(obs, s, seed);
  return obs;
}

/// All-probe job list with a synchronised start: the historical Fig. 2
/// probe benchmark (shared directory, world barrier, one target OST).
Observation run_probe(const Scenario& s, const JobPlan& plan,
                      std::uint64_t seed) {
  Rig rig(s, plan.total_ranks, seed, plan.noise_jobs);
  const JobSpec& first = *plan.rank_jobs.front();
  ior::ProbeConfig cfg;
  cfg.num_writers = static_cast<std::uint32_t>(plan.total_ranks);
  cfg.bytes_per_writer = first.bytes;
  cfg.transfer_size = first.transfer_size;
  // Any OST works (the paper pins one via stripe_offset); randomising the
  // pick per repetition lets background noise land on it sometimes, which
  // is where the single-writer variance of Figure 2's band comes from.
  cfg.target_ost = static_cast<lustre::OstIndex>(
      first.target_ost >= 0
          ? static_cast<std::uint32_t>(first.target_ost) %
                rig.fs.params().ost_count
          : seed % rig.fs.params().ost_count);

  Observation obs;
  obs.probe = ior::run_probe(rig.rt, cfg);
  obs.metric = obs.probe.mean_mbps;
  for (const double mbps : obs.probe.per_process_mbps) {
    ior::Result r;
    r.write_mbps = mbps;
    r.total_bytes = cfg.bytes_per_writer;
    r.write_time =
        mbps > 0.0 ? static_cast<double>(cfg.bytes_per_writer) / (mbps * 1.0e6)
                   : 0.0;
    r.verified = true;
    obs.per_job.push_back(r);
    obs.total_mbps += mbps;
  }
  rig.finish_trace(obs, s, seed);
  return obs;
}

/// True when the job list is the historical probe benchmark's shape: all
/// probe writers, synchronised start, one writer per job with consecutive
/// ids from 0, uniform payload, and one shared (or seed-derived) target.
bool is_legacy_probe(const JobPlan& plan, const Scenario& s) {
  if (plan.rank_jobs.empty() || !plan.synchronized) return false;
  if (s.telemetry_interval > 0.0 || s.trace.interval > 0.0) return false;
  if (s.ctrl.mode != ctrl::CtrlMode::off) return false;
  const JobSpec& first = *plan.rank_jobs.front();
  for (std::size_t i = 0; i < plan.rank_jobs.size(); ++i) {
    const JobSpec& j = *plan.rank_jobs[i];
    if (j.kind != JobKind::probe_writer || j.nprocs != 1) return false;
    if (j.job_id != static_cast<lustre::sched::JobId>(i)) return false;
    if (j.bytes != first.bytes || j.transfer_size != first.transfer_size ||
        j.target_ost != first.target_ost) {
      return false;
    }
  }
  return true;
}

/// PFSC_TRACE / PFSC_TRACE_OUT / PFSC_TRACE_INTERVAL environment override,
/// consulted only when the scenario itself leaves tracing off (so a
/// scenario that explicitly configures tracing wins over the environment,
/// and OUT/INTERVAL alone cannot switch tracing on).
void apply_trace_env(Scenario& s) {
  if (s.trace.mode != trace::TraceMode::off) return;
  const char* mode = std::getenv("PFSC_TRACE");
  if (mode == nullptr || *mode == '\0') return;
  PFSC_REQUIRE(trace::parse_trace_mode(mode, s.trace.mode),
               "PFSC_TRACE: expected one of: off, summary, full");
  if (s.trace.mode == trace::TraceMode::off) return;
  if (const char* out = std::getenv("PFSC_TRACE_OUT");
      out != nullptr && *out != '\0') {
    s.trace.out = out;
  }
  if (const char* interval = std::getenv("PFSC_TRACE_INTERVAL");
      interval != nullptr && *interval != '\0' &&
      !(s.job_list.empty() && s.workload == Workload::probe)) {
    char* end = nullptr;
    s.trace.interval = std::strtod(interval, &end);
    PFSC_REQUIRE(end != interval && *end == '\0' && s.trace.interval >= 0.0,
                 "PFSC_TRACE_INTERVAL: expected a non-negative number");
  }
}

}  // namespace

void spawn_noise(lustre::FileSystem& fs,
                 std::vector<std::unique_ptr<lustre::Client>>& clients,
                 const NoiseSpec& noise, std::uint64_t seed) {
  for (unsigned w = 0; w < noise.writers; ++w) {
    JobSpec j;
    j.kind = JobKind::noise;
    j.job_id = lustre::sched::kNoiseJobBase + w;
    j.bytes = noise.bytes_per_writer;
    j.transfer_size = noise.transfer_size;
    j.stripes = noise.stripes;
    j.stripe_size = noise.stripe_size;
    spawn_noise_job(fs, clients, j, seed);
  }
}

Observation run_scenario(const Scenario& scenario, std::uint64_t seed) {
  Scenario effective = scenario;
  apply_trace_env(effective);
  const Scenario& s = effective;
  s.validate();

  JobPlan plan(s.jobs_desugared());
  PFSC_REQUIRE(!plan.rank_jobs.empty(),
               "Scenario: needs at least one non-noise job");

  Observation obs;
  const JobSpec& first = *plan.rank_jobs.front();
  const bool single_at_root =
      plan.rank_jobs.size() == 1 && plan.synchronized &&
      first.kind != JobKind::probe_writer &&
      first.ior.test_file.find('/', 1) == std::string::npos;
  if (is_legacy_probe(plan, s)) {
    obs = run_probe(s, plan, seed);
  } else if (single_at_root) {
    obs = run_single(s, plan, seed);
  } else {
    obs = run_fleet(s, std::move(plan), seed);
  }
  obs.workload = scenario.job_list.empty() ? scenario.workload : Workload::jobs;
  obs.seed = seed;
  if (obs.jobs.empty()) obs.jobs = s.jobs_desugared();
  return obs;
}

std::size_t scenario_domain_threads(const Scenario& scenario) {
  // Mirrors make_shards' eligibility exactly: any condition that makes it
  // return nullptr means the run occupies a single thread.
  if (scenario.telemetry_interval > 0.0 || scenario.trace.interval > 0.0) {
    return 1;
  }
  if (scenario.ctrl.mode != ctrl::CtrlMode::off) return 1;
  if (scenario.platform.rpc_latency <= 0.0) return 1;
  const std::size_t domains = sim::resolve_domains(
      scenario.platform.sim_domains, scenario.platform.oss_count);
  return domains < 2 ? 1 : domains;
}

}  // namespace pfsc::harness
