#include "harness/scenario.hpp"

#include <cstdlib>
#include <fstream>
#include <string>

#include "plfs/plfs.hpp"
#include "trace/export.hpp"

namespace pfsc::harness {

const char* workload_name(Workload w) {
  switch (w) {
    case Workload::ior: return "ior";
    case Workload::plfs: return "plfs";
    case Workload::multi: return "multi";
    case Workload::probe: return "probe";
  }
  return "?";
}

void Scenario::validate() const {
  PFSC_REQUIRE(nprocs >= 1, "Scenario: nprocs must be positive");
  PFSC_REQUIRE(procs_per_node >= 1, "Scenario: procs_per_node must be positive");
  PFSC_REQUIRE(telemetry_interval >= 0.0,
               "Scenario: telemetry_interval must be non-negative");
  PFSC_REQUIRE(trace.interval >= 0.0,
               "Scenario: trace.interval must be non-negative");
  PFSC_REQUIRE(trace.out.empty() || trace.mode != trace::TraceMode::off,
               "Scenario: trace.out requires trace.mode != off");
  switch (workload) {
    case Workload::ior:
      break;
    case Workload::plfs:
      PFSC_REQUIRE(ior.hints.driver == mpiio::Driver::ad_plfs,
                   "Scenario: plfs workload needs hints.driver == ad_plfs");
      break;
    case Workload::multi:
      PFSC_REQUIRE(jobs >= 1, "Scenario: multi workload needs at least one job");
      PFSC_REQUIRE(ior.hints.driver != mpiio::Driver::ad_plfs,
                   "Scenario: use the plfs workload for ad_plfs");
      break;
    case Workload::probe:
      PFSC_REQUIRE(writers >= 1, "Scenario: probe needs at least one writer");
      PFSC_REQUIRE(telemetry_interval == 0.0,
                   "Scenario: the probe workload does not support telemetry");
      PFSC_REQUIRE(trace.interval == 0.0,
                   "Scenario: the probe workload does not support a trace sampler");
      break;
  }
}

namespace {

sim::Task noise_writer(lustre::Client& client, std::string path,
                       lustre::StripeSettings settings, Bytes total,
                       Bytes transfer) {
  auto file = co_await client.create(std::move(path), settings);
  if (!file.ok()) co_return;
  for (Bytes off = 0; off < total; off += transfer) {
    const Bytes chunk = std::min(transfer, total - off);
    const auto e = co_await client.write_buffered(file.value, off, chunk);
    if (e != lustre::Errno::ok) co_return;
  }
  (void)co_await client.flush();
}

/// Shared run state every workload branch builds: fresh engine, seeded file
/// system, runtime, optional background noise, optional telemetry sampler,
/// optional event recorder (+ trace sampler mirroring into it).
struct Rig {
  sim::Engine eng;
  std::unique_ptr<trace::Recorder> recorder;
  lustre::FileSystem fs;
  mpi::Runtime rt;
  std::vector<std::unique_ptr<lustre::Client>> noise_clients;
  std::unique_ptr<trace::Sampler> sampler;
  std::unique_ptr<trace::Sampler> trace_sampler;

  Rig(const Scenario& s, int nprocs, std::uint64_t seed)
      : eng(s.platform.event_queue),
        fs(eng, s.platform, seed),
        rt(fs, nprocs, s.procs_per_node) {
    if (s.trace.mode != trace::TraceMode::off) {
      recorder = std::make_unique<trace::Recorder>(s.trace);
      eng.set_recorder(recorder.get());
    }
    if (s.noise.writers > 0) {
      spawn_noise(fs, noise_clients, s.noise, seed);
    }
    if (s.telemetry_interval > 0.0) {
      sampler = std::make_unique<trace::Sampler>(eng, s.telemetry_interval);
      sampler->add_total_bytes_probe(fs);
    }
    if (recorder && s.trace.interval > 0.0) {
      trace_sampler = std::make_unique<trace::Sampler>(eng, s.trace.interval);
      trace_sampler->add_instruments(trace::link_instruments("fabric", fs.fabric()),
                                     fs.liveness());
      trace_sampler->add_instruments(trace::sched_instruments(fs), fs.liveness());
      trace_sampler->add_instruments(trace::total_bytes_instruments(fs),
                                     fs.liveness());
    }
  }

  /// Start sampling, stopping once `done()` first returns true (so the
  /// periodic samplers cannot keep the drained engine alive).
  void start_sampler(std::function<bool()> done) {
    if (sampler) {
      sampler->watch([done] { return !done(); });
      sampler->start();
    }
    if (trace_sampler) {
      trace_sampler->watch([done = std::move(done)] { return !done(); });
      trace_sampler->start();
    }
  }

  void export_bandwidth(Observation& obs) const {
    if (!sampler) return;
    obs.bandwidth = trace::Sampler::bandwidth_timeline(sampler->series(0));
  }

  /// Roll the recorder up into the observation and write --trace_out.
  /// Called after the run drains, from every workload branch.
  void finish_trace(Observation& obs, const Scenario& s, std::uint64_t seed) {
    if (!recorder) return;
    obs.traced = true;
    obs.trace_summary = trace::collect_summary(fs, recorder.get());
    if (s.trace.mode == trace::TraceMode::full) {
      obs.trace_json = trace::export_chrome_trace(*recorder);
    }
    if (s.trace.out.empty()) return;
    const std::string path = trace::resolve_trace_path(s.trace.out, seed);
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    PFSC_REQUIRE(out.good(), "trace: cannot open --trace_out path " + path);
    if (path.size() >= 4 && path.compare(path.size() - 4, 4, ".csv") == 0) {
      out << trace::export_counters_csv(*recorder);
    } else if (s.trace.mode == trace::TraceMode::full) {
      out << obs.trace_json;
    } else {
      out << obs.trace_summary.format();
    }
    out.flush();
    PFSC_REQUIRE(out.good(), "trace: failed writing " + path);
  }
};

double headline_metric(const ior::Config& cfg, const ior::Result& res) {
  return cfg.write_file ? res.write_mbps : res.read_mbps;
}

Observation run_ior_like(const Scenario& s, std::uint64_t seed, bool plfs_census) {
  Rig rig(s, s.nprocs, seed);
  std::unique_ptr<plfs::Plfs> plfs;
  if (s.ior.hints.driver == mpiio::Driver::ad_plfs) {
    plfs = std::make_unique<plfs::Plfs>(rig.fs);
  }
  ior::IorJob job(rig.rt.world(), rig.fs, s.ior, plfs.get());
  rig.start_sampler([&job] { return job.finished(); });
  rig.rt.run_to_completion([&](int rank) -> sim::Task {
    return job.rank_main(rank, rig.rt.client(rank));
  });

  Observation obs;
  obs.ior = job.result();
  obs.metric = headline_metric(s.ior, obs.ior);
  if (plfs_census) {
    const auto data_files = plfs->backend_data_files(s.ior.test_file);
    obs.contention = core::observe(rig.fs.ost_occupancy(data_files));
  }
  rig.export_bandwidth(obs);
  rig.finish_trace(obs, s, seed);
  return obs;
}

/// Per-colour slot: the first rank of each sub-communicator constructs the
/// job; everyone else waits on `ready`.
struct JobSlot {
  std::unique_ptr<ior::IorJob> job;
  std::unique_ptr<sim::Event> ready;
};

sim::Task multi_rank_main(mpi::Runtime& rt, lustre::FileSystem& fs,
                          const Scenario& s, std::vector<JobSlot>& slots,
                          int world_rank) {
  mpi::Communicator& world = rt.world();
  const int color = world_rank / s.nprocs;

  // Synchronise all jobs' starts, then carve the world into one
  // communicator per job (the paper's "four identical IOR executions each
  // running simultaneously").
  co_await world.barrier(world_rank);
  const auto sr = co_await world.split(world_rank, color, world_rank);
  JobSlot& slot = slots[static_cast<std::size_t>(color)];
  if (sr.rank == 0) {
    ior::Config cfg = s.ior;
    cfg.test_file += "." + std::to_string(color);
    cfg.job_id = static_cast<lustre::sched::JobId>(color);
    slot.job = std::make_unique<ior::IorJob>(*sr.comm, fs, cfg, nullptr);
    slot.ready->trigger();
  } else if (!slot.ready->fired()) {
    co_await slot.ready->wait();
  }
  co_await slot.job->run_rank(sr.rank, rt.client(world_rank));
}

Observation run_multi(const Scenario& s, std::uint64_t seed) {
  Rig rig(s, s.jobs * s.nprocs, seed);
  std::vector<JobSlot> slots(static_cast<std::size_t>(s.jobs));
  for (auto& slot : slots) slot.ready = std::make_unique<sim::Event>(rig.eng);

  rig.start_sampler([&slots] {
    for (const auto& slot : slots) {
      if (!slot.job || !slot.job->finished()) return false;
    }
    return true;
  });
  rig.rt.run_to_completion([&](int world_rank) -> sim::Task {
    return multi_rank_main(rig.rt, rig.fs, s, slots, world_rank);
  });

  Observation obs;
  std::vector<lustre::InodeId> files;
  double mean = 0.0;
  for (auto& slot : slots) {
    PFSC_ASSERT(slot.job && slot.job->finished());
    obs.per_job.push_back(slot.job->result());
    mean += slot.job->result().write_mbps;
    obs.total_mbps += slot.job->result().write_mbps;
    files.push_back(slot.job->file().context().ino);
  }
  mean /= static_cast<double>(s.jobs);
  obs.ior = obs.per_job.front();
  obs.ior.write_mbps = mean;
  obs.metric = mean;
  obs.contention = core::observe(rig.fs.ost_occupancy(files));
  rig.export_bandwidth(obs);
  rig.finish_trace(obs, s, seed);
  return obs;
}

Observation run_probe(const Scenario& s, std::uint64_t seed) {
  Rig rig(s, static_cast<int>(s.writers), seed);
  ior::ProbeConfig cfg;
  cfg.num_writers = s.writers;
  cfg.bytes_per_writer = s.bytes_per_writer;
  // Any OST works (the paper pins one via stripe_offset); randomising the
  // pick per repetition lets background noise land on it sometimes, which
  // is where the single-writer variance of Figure 2's band comes from.
  cfg.target_ost = static_cast<lustre::OstIndex>(seed % rig.fs.params().ost_count);

  Observation obs;
  obs.probe = ior::run_probe(rig.rt, cfg);
  obs.metric = obs.probe.mean_mbps;
  rig.finish_trace(obs, s, seed);
  return obs;
}

/// PFSC_TRACE / PFSC_TRACE_OUT / PFSC_TRACE_INTERVAL environment override,
/// consulted only when the scenario itself leaves tracing off (so a
/// scenario that explicitly configures tracing wins over the environment,
/// and OUT/INTERVAL alone cannot switch tracing on).
void apply_trace_env(Scenario& s) {
  if (s.trace.mode != trace::TraceMode::off) return;
  const char* mode = std::getenv("PFSC_TRACE");
  if (mode == nullptr || *mode == '\0') return;
  PFSC_REQUIRE(trace::parse_trace_mode(mode, s.trace.mode),
               "PFSC_TRACE: expected one of: off, summary, full");
  if (s.trace.mode == trace::TraceMode::off) return;
  if (const char* out = std::getenv("PFSC_TRACE_OUT");
      out != nullptr && *out != '\0') {
    s.trace.out = out;
  }
  if (const char* interval = std::getenv("PFSC_TRACE_INTERVAL");
      interval != nullptr && *interval != '\0' && s.workload != Workload::probe) {
    char* end = nullptr;
    s.trace.interval = std::strtod(interval, &end);
    PFSC_REQUIRE(end != interval && *end == '\0' && s.trace.interval >= 0.0,
                 "PFSC_TRACE_INTERVAL: expected a non-negative number");
  }
}

}  // namespace

void spawn_noise(lustre::FileSystem& fs,
                 std::vector<std::unique_ptr<lustre::Client>>& clients,
                 const NoiseSpec& noise, std::uint64_t seed) {
  lustre::StripeSettings settings;
  settings.stripe_count = noise.stripes;
  settings.stripe_size = noise.stripe_size;
  for (unsigned w = 0; w < noise.writers; ++w) {
    clients.push_back(std::make_unique<lustre::Client>(
        fs, "noise" + std::to_string(w)));
    // Noise writers are per-writer jobs, distinct from real jobs' ids.
    clients.back()->set_job(lustre::sched::kNoiseJobBase + w);
    fs.engine().spawn(noise_writer(
        *clients.back(), "/noise." + std::to_string(seed % 1000) + "." + std::to_string(w),
        settings, noise.bytes_per_writer, noise.transfer_size));
  }
}

Observation run_scenario(const Scenario& scenario, std::uint64_t seed) {
  Scenario effective = scenario;
  apply_trace_env(effective);
  const Scenario& s = effective;
  s.validate();
  Observation obs;
  switch (s.workload) {
    case Workload::ior:
      obs = run_ior_like(s, seed, /*plfs_census=*/false);
      break;
    case Workload::plfs:
      obs = run_ior_like(s, seed, /*plfs_census=*/true);
      break;
    case Workload::multi:
      obs = run_multi(s, seed);
      break;
    case Workload::probe:
      obs = run_probe(s, seed);
      break;
  }
  obs.workload = scenario.workload;
  obs.seed = seed;
  return obs;
}

}  // namespace pfsc::harness
