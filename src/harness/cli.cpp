#include "harness/cli.hpp"

#include <cctype>
#include <charconv>

#include "mpiio/info.hpp"

namespace pfsc::harness::cli {

namespace {

[[noreturn]] void bad_value(std::string_view flag, std::string_view text,
                            const char* what) {
  throw UsageError(std::string(flag) + ": " + what + ": '" +
                   std::string(text) + "'");
}

template <typename T>
T parse_number(std::string_view flag, std::string_view text, const char* what) {
  T value{};
  const char* first = text.data();
  const char* last = text.data() + text.size();
  const auto [ptr, ec] = std::from_chars(first, last, value);
  if (ec != std::errc{} || ptr != last || text.empty()) {
    bad_value(flag, text, what);
  }
  return value;
}

}  // namespace

sim::LinkPolicy parse_link_policy(std::string_view flag, std::string_view text) {
  if (text == "fifo") return sim::LinkPolicy::fifo;
  if (text == "fair_share") return sim::LinkPolicy::fair_share;
  bad_value(flag, text, "expected one of: fifo, fair_share");
}

lustre::sched::SchedPolicy parse_sched_policy(std::string_view flag,
                                              std::string_view text) {
  using lustre::sched::SchedPolicy;
  if (text == "fifo") return SchedPolicy::fifo;
  if (text == "job_fair") return SchedPolicy::job_fair;
  if (text == "token_bucket") return SchedPolicy::token_bucket;
  bad_value(flag, text, "expected one of: fifo, job_fair, token_bucket");
}

sim::EventQueuePolicy parse_event_queue_policy(std::string_view flag,
                                               std::string_view text) {
  if (text == "binary_heap") return sim::EventQueuePolicy::binary_heap;
  if (text == "ladder") return sim::EventQueuePolicy::ladder;
  bad_value(flag, text, "expected one of: binary_heap, ladder");
}

trace::TraceMode parse_trace_mode(std::string_view flag, std::string_view text) {
  trace::TraceMode mode = trace::TraceMode::off;
  if (!trace::parse_trace_mode(text, mode)) {
    bad_value(flag, text, "expected one of: off, summary, full");
  }
  return mode;
}

lustre::PlacementKind parse_placement_kind(std::string_view flag,
                                           std::string_view text) {
  using lustre::PlacementKind;
  if (text == "uniform_random") return PlacementKind::uniform_random;
  if (text == "round_robin") return PlacementKind::round_robin;
  if (text == "load_aware") return PlacementKind::load_aware;
  if (text == "node_affine") return PlacementKind::node_affine;
  bad_value(flag, text,
            "expected one of: uniform_random, round_robin, load_aware, "
            "node_affine");
}

AdmissionPolicy parse_admission_policy(std::string_view flag,
                                       std::string_view text) {
  if (text == "always") return AdmissionPolicy::always;
  if (text == "threshold") return AdmissionPolicy::threshold;
  if (text == "detune") return AdmissionPolicy::detune;
  bad_value(flag, text, "expected one of: always, threshold, detune");
}

ctrl::CtrlMode parse_ctrl_mode(std::string_view flag, std::string_view text) {
  using ctrl::CtrlMode;
  if (text == "off") return CtrlMode::off;
  if (text == "pfl") return CtrlMode::pfl;
  if (text == "qos") return CtrlMode::qos;
  if (text == "full") return CtrlMode::full;
  bad_value(flag, text, "expected one of: off, pfl, qos, full");
}

long long parse_int(std::string_view flag, std::string_view text) {
  return parse_number<long long>(flag, text, "expected an integer");
}

std::uint64_t parse_uint(std::string_view flag, std::string_view text) {
  return parse_number<std::uint64_t>(flag, text,
                                     "expected a non-negative integer");
}

double parse_double(std::string_view flag, std::string_view text) {
  return parse_number<double>(flag, text, "expected a number");
}

Bytes parse_bytes(std::string_view flag, std::string_view text) {
  std::size_t suffix = text.size();
  while (suffix > 0 && (std::isalpha(static_cast<unsigned char>(text[suffix - 1])) != 0)) {
    --suffix;
  }
  const std::string_view digits = text.substr(0, suffix);
  std::string_view unit = text.substr(suffix);
  Bytes multiplier = 1;
  if (!unit.empty()) {
    // Accept "K", "KB", "KiB" (binary semantics throughout, like lfs).
    const char head = static_cast<char>(std::toupper(static_cast<unsigned char>(unit[0])));
    switch (head) {
      case 'K': multiplier = 1_KiB; break;
      case 'M': multiplier = 1_MiB; break;
      case 'G': multiplier = 1_GiB; break;
      case 'T': multiplier = 1024_GiB; break;
      case 'B': multiplier = 1; break;
      default: bad_value(flag, text, "unknown byte-size suffix");
    }
    const std::string_view rest = unit.substr(1);
    if (!(rest.empty() || rest == "B" || rest == "b" || rest == "iB" ||
          rest == "ib")) {
      bad_value(flag, text, "unknown byte-size suffix");
    }
  }
  return parse_number<Bytes>(flag, digits, "expected a byte size") * multiplier;
}

Flag& FlagTable::add(std::string name, std::string value_name, std::string help,
                     std::function<void(std::string_view)> set) {
  PFSC_REQUIRE(set != nullptr, "FlagTable: null setter");
  PFSC_REQUIRE(name.rfind("--", 0) == 0, "FlagTable: flags start with --");
  PFSC_REQUIRE(find(name) == nullptr, "FlagTable: duplicate flag " + name);
  Flag flag;
  flag.name = std::move(name);
  flag.value_name = std::move(value_name);
  flag.help = std::move(help);
  flag.set = std::move(set);
  flags_.push_back(std::move(flag));
  return flags_.back();
}

Flag& FlagTable::bind(std::string name, int& target, std::string help) {
  const std::string flag = name;
  return add(std::move(name), "N", std::move(help),
             [flag, &target](std::string_view text) {
               target = static_cast<int>(parse_int(flag, text));
             });
}

Flag& FlagTable::bind(std::string name, unsigned& target, std::string help) {
  const std::string flag = name;
  return add(std::move(name), "N", std::move(help),
             [flag, &target](std::string_view text) {
               target = static_cast<unsigned>(parse_uint(flag, text));
             });
}

Flag& FlagTable::bind(std::string name, std::uint64_t& target, std::string help) {
  const std::string flag = name;
  return add(std::move(name), "N", std::move(help),
             [flag, &target](std::string_view text) {
               target = parse_uint(flag, text);
             });
}

Flag& FlagTable::bind(std::string name, double& target, std::string help) {
  const std::string flag = name;
  return add(std::move(name), "X", std::move(help),
             [flag, &target](std::string_view text) {
               target = parse_double(flag, text);
             });
}

Flag& FlagTable::bind(std::string name, std::string& target, std::string help) {
  return add(std::move(name), "STR", std::move(help),
             [&target](std::string_view text) { target = std::string(text); });
}

Flag& FlagTable::bind_bytes(std::string name, Bytes& target, std::string help) {
  const std::string flag = name;
  return add(std::move(name), "BYTES", std::move(help),
             [flag, &target](std::string_view text) {
               target = parse_bytes(flag, text);
             });
}

FlagTable& FlagTable::alias(std::string name) {
  PFSC_REQUIRE(!flags_.empty(), "FlagTable: alias() needs a preceding flag");
  PFSC_REQUIRE(find(name) == nullptr, "FlagTable: duplicate flag " + name);
  flags_.back().aliases.push_back(std::move(name));
  return *this;
}

const Flag* FlagTable::find(std::string_view name) const {
  for (const auto& flag : flags_) {
    if (flag.name == name) return &flag;
    for (const auto& alias : flag.aliases) {
      if (alias == name) return &flag;
    }
  }
  return nullptr;
}

void FlagTable::parse(int argc, char** argv, int from) const {
  for (int i = from; i < argc; ++i) {
    const std::string_view key = argv[i];
    const Flag* flag = find(key);
    if (flag == nullptr) {
      throw UsageError("unknown flag '" + std::string(key) + "'");
    }
    if (i + 1 >= argc) {
      throw UsageError(flag->name + ": missing value");
    }
    flag->set(argv[++i]);
  }
}

std::string FlagTable::usage() const {
  std::string out;
  for (const auto& flag : flags_) {
    out += "  " + flag.name + " " + flag.value_name;
    for (const auto& alias : flag.aliases) out += " (alias " + alias + ")";
    out += "\n      " + flag.help + "\n";
  }
  return out;
}

FlagTable scenario_flags(Scenario& scenario, RunPlan& plan, unsigned& threads) {
  FlagTable table;

  // Scenario fields — PFSC_FLAG stringises the member, so the flag
  // spelling *is* the field name.
  PFSC_FLAG(table, scenario, nprocs, "ranks per job");
  PFSC_FLAG(table, scenario, procs_per_node, "ranks per simulated node");
  table.alias("--ppn");
  PFSC_FLAG(table, scenario, jobs, "contending jobs (multi workload)");
  PFSC_FLAG(table, scenario, writers, "probe writers on one OST");
  PFSC_FLAG_BYTES(table, scenario, bytes_per_writer,
                  "bytes each probe writer streams");
  PFSC_FLAG(table, scenario, telemetry_interval,
            "sampling interval in simulated seconds (0: off)");

  // Event tracing (see trace/recorder.hpp).
  table.add("--trace", "MODE", "event tracing: off | summary | full",
            [&scenario](std::string_view text) {
              scenario.trace.mode = parse_trace_mode("--trace", text);
            });
  table.bind("--trace_out", scenario.trace.out,
             "trace output path ({seed} expands; .csv: counters CSV, "
             "else Chrome JSON / summary table)");
  table.bind("--trace_interval", scenario.trace.interval,
             "trace sampler interval in simulated seconds (0: off)");

  PFSC_FLAG(table, scenario.ior.hints, striping_factor,
            "Lustre stripe count hint");
  table.alias("--stripes");
  PFSC_FLAG_BYTES(table, scenario.ior.hints, striping_unit,
                  "Lustre stripe size hint");
  // scenario.noise.writers would collide with the probe's --writers, so the
  // noise fields carry their sub-struct name.
  table.bind("--noise_writers", scenario.noise.writers,
             "background noise writers");
  PFSC_FLAG_BYTES(table, scenario.ior, block_size, "IOR blockSize per rank");
  PFSC_FLAG_BYTES(table, scenario.ior, transfer_size, "IOR transferSize");
  PFSC_FLAG(table, scenario.ior, segment_count, "IOR segmentCount");

  // Platform policy enums, parsed strictly (unknown names list the valid
  // choices instead of silently keeping the default).
  table.add("--link_policy", "POLICY",
            "link-sharing model: fifo | fair_share",
            [&scenario](std::string_view text) {
              scenario.platform.link_policy =
                  parse_link_policy("--link_policy", text);
            });
  table.alias("--link-policy");
  table.add("--sched_policy", "POLICY",
            "OSS request scheduler: fifo | job_fair | token_bucket",
            [&scenario](std::string_view text) {
              scenario.platform.oss_sched_policy =
                  parse_sched_policy("--sched_policy", text);
            });
  table.alias("--sched-policy").alias("--oss_sched_policy");
  table.add("--placement", "KIND",
            "MDS OST placement: uniform_random | round_robin | load_aware "
            "| node_affine",
            [&scenario](std::string_view text) {
              scenario.platform.ost_placement =
                  parse_placement_kind("--placement", text);
            });
  table.alias("--ost_placement");
  table.add("--admission", "POLICY",
            "fleet admission control: always | threshold | detune",
            [&scenario](std::string_view text) {
              scenario.admission.policy =
                  parse_admission_policy("--admission", text);
            });
  table.add("--admit_dload", "X",
            "admission D_load limit for threshold/detune ('inf' disables)",
            [&scenario](std::string_view text) {
              scenario.admission.max_dload =
                  parse_double("--admit_dload", text);
            });
  table.add("--admit_min_stripes", "N",
            "detune per-file stripe-count floor",
            [&scenario](std::string_view text) {
              const std::uint64_t v = parse_uint("--admit_min_stripes", text);
              if (v == 0 || v > 0xFFFFFFFFull) {
                throw UsageError("--admit_min_stripes: must be >= 1");
              }
              scenario.admission.min_stripes = static_cast<std::uint32_t>(v);
            });
  table.add("--event_queue", "POLICY",
            "engine pending-event queue: binary_heap | ladder",
            [&scenario](std::string_view text) {
              scenario.platform.event_queue =
                  parse_event_queue_policy("--event_queue", text);
            });
  table.alias("--event-queue");
  table.add("--sim_domains", "N",
            "simulation domains per run: 1 = one engine thread, N >= 2 "
            "shards the OSS across N-1 worker threads, 0 = auto (one per "
            "hardware thread); results are bit-identical at any value",
            [&scenario](std::string_view text) {
              const std::uint64_t v = parse_uint("--sim_domains", text);
              if (v > 0xFFFFFFFFull) {
                throw UsageError("--sim_domains: value out of range");
              }
              scenario.platform.sim_domains = static_cast<std::uint32_t>(v);
            });
  table.alias("--sim-domains");
  // Degenerate SchedTuning values are rejected right here so the error
  // names the flag (Scenario::validate would only name the field).
  table.add("--sched_quantum", "BYTES",
            "job_fair deficit quantum per round-robin visit",
            [&scenario](std::string_view text) {
              const Bytes v = parse_bytes("--sched_quantum", text);
              if (v == 0) throw UsageError("--sched_quantum: must be >= 1");
              scenario.platform.oss_sched.quantum = v;
            });
  table.add("--sched_slots", "N",
            "job_fair cap on in-service requests per OSS",
            [&scenario](std::string_view text) {
              const std::uint64_t v = parse_uint("--sched_slots", text);
              if (v == 0) throw UsageError("--sched_slots: must be >= 1");
              scenario.platform.oss_sched.service_slots =
                  static_cast<std::size_t>(v);
            });
  table.add("--sched_job_rate_mbps", "X",
            "token_bucket sustained per-job rate (MB/s)",
            [&scenario](std::string_view text) {
              const double v = parse_double("--sched_job_rate_mbps", text);
              if (!(v > 0.0)) {
                throw UsageError("--sched_job_rate_mbps: must be positive");
              }
              scenario.platform.oss_sched.job_rate = mb_per_sec(v);
            });
  table.add("--sched_bucket_depth", "BYTES",
            "token_bucket burst allowance",
            [&scenario](std::string_view text) {
              const Bytes v = parse_bytes("--sched_bucket_depth", text);
              if (v == 0) {
                throw UsageError("--sched_bucket_depth: must be >= 1");
              }
              scenario.platform.oss_sched.bucket_depth = v;
            });
  table.add("--ctrl", "MODE",
            "online adaptive tuning: off | pfl | qos | full",
            [&scenario](std::string_view text) {
              scenario.ctrl.mode = parse_ctrl_mode("--ctrl", text);
            });
  table.add("--ctrl_interval", "SECONDS",
            "adaptive controller tick period",
            [&scenario](std::string_view text) {
              const double v = parse_double("--ctrl_interval", text);
              if (!(v > 0.0)) {
                throw UsageError("--ctrl_interval: must be positive");
              }
              scenario.ctrl.interval = v;
            });
  table.add("--ctrl_cooldown", "SECONDS",
            "minimum time between two actions of the same rule",
            [&scenario](std::string_view text) {
              const double v = parse_double("--ctrl_cooldown", text);
              if (v < 0.0) {
                throw UsageError("--ctrl_cooldown: must be non-negative");
              }
              scenario.ctrl.cooldown = v;
            });

  // Full textual hints override individual hint flags (MPI_Info form).
  table.add("--hints", "\"k=v;k=v\"", "MPI-IO hints, textual MPI_Info form",
            [&scenario](std::string_view text) {
              const auto parsed =
                  mpiio::parse_hints(text, scenario.ior.hints);
              if (!parsed.unknown_keys.empty()) {
                throw UsageError("--hints: unknown hint key '" +
                                 parsed.unknown_keys.front() + "'");
              }
              scenario.ior.hints = parsed.hints;
            });

  // RunPlan fields.
  table.add("--repetitions", "N", "repetitions per plan point",
            [&plan](std::string_view text) {
              plan.repetitions(
                  static_cast<unsigned>(parse_uint("--repetitions", text)));
            });
  table.alias("--reps");
  table.add("--base_seed", "N", "base seed for per-repetition seed derivation",
            [&plan](std::string_view text) {
              plan.base_seed(parse_uint("--base_seed", text));
            });
  table.alias("--seed");

  // ParallelRunner.
  table.bind("--threads", threads,
             "worker threads for the sweep (0: hardware concurrency)");
  return table;
}

}  // namespace pfsc::harness::cli
