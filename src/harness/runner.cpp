#include "harness/runner.hpp"

#include <atomic>
#include <cinttypes>
#include <cstdio>
#include <exception>
#include <mutex>
#include <thread>

#include "sim/domain.hpp"

namespace pfsc::harness {

RunSet::RunSet(std::vector<std::string> axis_names,
               std::vector<PointResult> points)
    : axis_names_(std::move(axis_names)), points_(std::move(points)) {}

const PointResult& RunSet::point(std::size_t i) const {
  PFSC_REQUIRE(i < points_.size(), "RunSet: bad point index");
  return points_[i];
}

std::string RunSet::to_csv(bool with_provenance) const {
  std::string out;
  if (with_provenance) {
    char line[96];
    std::snprintf(line, sizeof line,
                  "# rep_threads=%u domain_threads=%u hardware_threads=%u\n",
                  provenance_.rep_threads, provenance_.domain_threads,
                  provenance_.hardware_threads);
    out += line;
  }
  for (const auto& name : axis_names_) {
    out += name;
    out += ',';
  }
  out += "rep,seed,value\n";
  char buf[64];
  for (const auto& point : points_) {
    for (std::size_t rep = 0; rep < point.samples.size(); ++rep) {
      for (double c : point.coords) {
        std::snprintf(buf, sizeof buf, "%.17g", c);
        out += buf;
        out += ',';
      }
      std::snprintf(buf, sizeof buf, "%zu,%" PRIu64 ",", rep,
                    point.reps[rep].seed);
      out += buf;
      std::snprintf(buf, sizeof buf, "%.17g", point.samples[rep]);
      out += buf;
      out += '\n';
    }
  }
  return out;
}

TextTable RunSet::summary_table(int precision) const {
  std::vector<std::string> header = axis_names_;
  header.push_back("mean");
  header.push_back("ci lower");
  header.push_back("ci upper");
  header.push_back("n");
  TextTable table(std::move(header));
  for (const auto& point : points_) {
    for (double c : point.coords) {
      if (c == static_cast<double>(static_cast<long long>(c))) {
        table.cell(fmt_int(static_cast<long long>(c)));
      } else {
        table.cell(fmt_double(c, 3));
      }
    }
    table.cell(fmt_double(point.ci.mean, precision))
        .cell(fmt_double(point.ci.lower, precision))
        .cell(fmt_double(point.ci.upper, precision))
        .cell(fmt_int(static_cast<long long>(point.samples.size())));
    table.end_row();
  }
  return table;
}

ParallelRunner::ParallelRunner(unsigned threads) : threads_(threads) {
  if (threads_ == 0) threads_ = sim::hardware_threads();
}

RunSet ParallelRunner::run(const Scenario& base, const RunPlan& plan) const {
  std::vector<PlanPoint> points = plan.expand(base);
  // Fail fast on misconfiguration before any thread spawns.
  for (const auto& point : points) point.scenario.validate();

  const std::size_t reps = plan.reps();
  const std::size_t total = points.size() * reps;
  std::vector<Observation> observations(total);

  std::atomic<std::size_t> next{0};
  std::atomic<bool> failed{false};
  std::exception_ptr first_error;
  std::mutex error_mu;

  auto worker = [&]() noexcept {
    while (!failed.load(std::memory_order_relaxed)) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= total) return;
      const PlanPoint& point = points[i / reps];
      try {
        observations[i] = run_scenario(point.scenario, point.seeds[i % reps]);
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mu);
        if (!first_error) first_error = std::current_exception();
        failed.store(true, std::memory_order_relaxed);
      }
    }
  };

  // Each run may itself spawn domain worker threads (sharded engine). When
  // it does, clamp the repetition pool so rep-threads x domain-threads
  // stays within the hardware budget — two multiplying pools would
  // oversubscribe quadratically. Unsharded runs keep the requested count
  // untouched (deliberate oversubscription is a valid way to shake out
  // ordering bugs, and results are thread-count-independent regardless).
  // The domain count comes from the base scenario — plan axes rarely sweep
  // it, and the clamp is a resource bound, not a correctness condition.
  const unsigned domain_threads = static_cast<unsigned>(
      std::min<std::size_t>(scenario_domain_threads(base), 1u << 16));
  const unsigned budget =
      domain_threads >= 2
          ? std::max(1u, sim::hardware_threads() / domain_threads)
          : threads_;
  const unsigned pool = static_cast<unsigned>(std::min<std::size_t>(
      std::min(threads_, budget), total ? total : 1));
  if (pool <= 1) {
    worker();
  } else {
    std::vector<std::thread> threads;
    threads.reserve(pool);
    for (unsigned t = 0; t < pool; ++t) threads.emplace_back(worker);
    for (auto& t : threads) t.join();
  }
  if (first_error) std::rethrow_exception(first_error);

  // Aggregate in plan order — independent of which worker ran what.
  std::vector<PointResult> results;
  results.reserve(points.size());
  for (std::size_t p = 0; p < points.size(); ++p) {
    PointResult pr;
    pr.coords = points[p].coords;
    pr.reps.reserve(reps);
    pr.samples.reserve(reps);
    for (std::size_t r = 0; r < reps; ++r) {
      pr.reps.push_back(std::move(observations[p * reps + r]));
      pr.samples.push_back(pr.reps.back().metric);
    }
    pr.ci = confidence_interval(pr.samples);
    results.push_back(std::move(pr));
  }
  RunSet set(plan.axis_names(), std::move(results));
  set.set_provenance({pool, domain_threads, sim::hardware_threads()});
  return set;
}

}  // namespace pfsc::harness
