// Model-driven admission control for fleet scenarios.
//
// The paper's Eq. 1-6 predict per-OST load *before* a job runs; this
// controller acts on the prediction. Each arrived JobSpec is gated before
// its first byte moves:
//
//   always     admit immediately (the default — the controller is not even
//              constructed, so the historical event sequences are
//              bit-for-bit unchanged).
//   threshold  delay the job in a strict FIFO queue while the predicted
//              D_load of the running mix plus the candidate exceeds
//              `max_dload`. The queue head is re-evaluated whenever a
//              running job finishes; a job is always admitted when nothing
//              is running (no deadlock, matching a real scheduler's
//              backfill floor).
//   detune     never delay; instead reduce the job's per-file stripe count
//              to the largest value whose predicted D_load fits the limit
//              (floor `min_stripes`) — the paper's Fig. 4 stripe-reduction
//              knob, applied automatically. Jobs whose layout is not
//              stripe-tunable (plfs, probes) are admitted unchanged.
//
// Prediction uses Eq. 1's heterogeneous form over the *running* jobs'
// stripe requests (core::d_inuse), all bookkeeping held controller-side on
// domain 0 — never sampled from server counters — so decisions are
// deterministic at any --sim_domains count and any ParallelRunner thread
// count.
#pragma once

#include <cstdint>
#include <deque>
#include <limits>
#include <vector>

#include "hw/platform.hpp"
#include "lustre/sched/policy.hpp"
#include "sim/engine.hpp"
#include "sim/task.hpp"
#include "support/units.hpp"
#include "trace/recorder.hpp"

namespace pfsc::harness {

struct JobSpec;

enum class AdmissionPolicy : std::uint8_t {
  always,     // old behaviour: release every job on arrival
  threshold,  // delay while predicted D_load > max_dload
  detune,     // reduce stripe count until predicted D_load fits
};

const char* admission_policy_name(AdmissionPolicy policy);

struct AdmissionConfig {
  AdmissionPolicy policy = AdmissionPolicy::always;
  /// threshold/detune: largest predicted D_load (running mix + candidate)
  /// at which a job is still released untouched.
  double max_dload = std::numeric_limits<double>::infinity();
  /// detune: per-file stripe-count floor.
  std::uint32_t min_stripes = 1;
};

enum class AdmissionAction : std::uint8_t { admitted, delayed, detuned };

const char* admission_action_name(AdmissionAction action);

/// One gating decision, in release order.
struct AdmissionRecord {
  lustre::sched::JobId job_id = 0;
  AdmissionAction action = AdmissionAction::admitted;
  Seconds arrival = 0.0;   // when the job asked to start
  Seconds released = 0.0;  // when the controller let it proceed
  std::uint32_t stripes_before = 0;  // requested per-file stripes
  std::uint32_t stripes_after = 0;   // released per-file stripes
  /// Predicted D_load of the running mix including this job, at release.
  double predicted_dload = 0.0;
  /// Jobs already running when this one was released.
  std::size_t running_before = 0;

  Seconds wait() const { return released - arrival; }
};

class AdmissionController {
 public:
  /// `recorder` (optional, not owned): decisions are emitted as Cat::sched
  /// events on an "admission" track.
  AdmissionController(sim::Engine& eng, AdmissionConfig cfg,
                      const hw::PlatformParams& platform,
                      trace::Recorder* recorder = nullptr);
  ~AdmissionController();

  AdmissionController(const AdmissionController&) = delete;
  AdmissionController& operator=(const AdmissionController&) = delete;

  /// Gate one job's start; suspends under threshold gating. Returns the
  /// per-file stripe count the job must run with (0: keep its own layout).
  /// Call exactly once per job, from one coroutine.
  sim::Co<std::uint32_t> admit(const JobSpec& job);

  /// Remove a completed job from the running mix and re-evaluate the
  /// queue head. Idempotent per JobId.
  void finished(const JobSpec& job);

  /// Eq. 1's per-job stripe requests (the r_j terms): one entry per file
  /// the job keeps busy. `stripes_override` (nonzero) substitutes the
  /// per-file stripe count of stripe-tunable jobs.
  static std::vector<double> job_requests(const JobSpec& job,
                                          const hw::PlatformParams& platform,
                                          std::uint32_t stripes_override = 0);

  /// Predicted D_load of the running mix, plus `candidate` when non-null.
  double predicted_dload(const JobSpec* candidate = nullptr) const;

  std::size_t running_jobs() const { return running_.size(); }
  std::size_t queued_jobs() const { return queue_.size(); }
  const AdmissionConfig& config() const { return cfg_; }
  const std::vector<AdmissionRecord>& records() const { return records_; }
  std::vector<AdmissionRecord> take_records() { return std::move(records_); }

 private:
  struct Waiter;
  struct Running {
    lustre::sched::JobId job_id = 0;
    std::vector<double> requests;
  };

  /// Release queued jobs from the head while the policy allows it.
  void pump();
  double dload_with(const std::vector<double>& extra) const;
  /// The job's requested per-file stripe count (what detune reduces).
  std::uint32_t requested_stripes(const JobSpec& job) const;
  /// True when reducing the stripe hint actually changes the job's layout.
  static bool detunable(const JobSpec& job);

  sim::Engine* eng_;
  AdmissionConfig cfg_;
  hw::PlatformParams params_;
  trace::Recorder* recorder_;
  trace::TrackId track_ = 0;
  std::vector<Running> running_;
  std::deque<Waiter*> queue_;
  std::vector<AdmissionRecord> records_;
};

}  // namespace pfsc::harness
