#include "harness/admission.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "core/metrics.hpp"
#include "harness/scenario.hpp"
#include "support/error.hpp"

namespace pfsc::harness {

const char* admission_policy_name(AdmissionPolicy policy) {
  switch (policy) {
    case AdmissionPolicy::always: return "always";
    case AdmissionPolicy::threshold: return "threshold";
    case AdmissionPolicy::detune: return "detune";
  }
  return "?";
}

const char* admission_action_name(AdmissionAction action) {
  switch (action) {
    case AdmissionAction::admitted: return "admitted";
    case AdmissionAction::delayed: return "delayed";
    case AdmissionAction::detuned: return "detuned";
  }
  return "?";
}

struct AdmissionController::Waiter {
  explicit Waiter(sim::Engine& eng) : evt(eng) {}
  const JobSpec* job = nullptr;
  sim::Event evt;
  bool released = false;
  bool waited = false;                // head ever blocked on the predicate
  std::uint32_t after = 0;            // per-file stripes at release
  double load = 0.0;                  // predicted D_load at release
  std::size_t running_before = 0;
};

AdmissionController::AdmissionController(sim::Engine& eng, AdmissionConfig cfg,
                                         const hw::PlatformParams& platform,
                                         trace::Recorder* recorder)
    : eng_(&eng), cfg_(cfg), params_(platform), recorder_(recorder) {
  PFSC_REQUIRE(cfg_.max_dload > 0.0, "admission: max_dload must be > 0");
  PFSC_REQUIRE(cfg_.min_stripes >= 1, "admission: min_stripes must be >= 1");
  if (recorder_ != nullptr) track_ = recorder_->track("admission");
}

AdmissionController::~AdmissionController() = default;

bool AdmissionController::detunable(const JobSpec& job) {
  // Only the Lustre-aware MPI-IO driver honours a reduced striping hint;
  // plfs layouts (2 stripes/rank) and probe/noise layouts are fixed.
  return job.kind == JobKind::ior &&
         job.ior.hints.driver == mpiio::Driver::ad_lustre;
}

std::uint32_t AdmissionController::requested_stripes(const JobSpec& job) const {
  std::uint32_t s = job.ior.hints.striping_factor != 0
                        ? job.ior.hints.striping_factor
                        : params_.default_stripe_count;
  s = std::min({s, params_.max_stripe_count, params_.ost_count});
  return std::max<std::uint32_t>(s, 1);
}

std::vector<double> AdmissionController::job_requests(
    const JobSpec& job, const hw::PlatformParams& platform,
    std::uint32_t stripes_override) {
  const auto clamp = [&](std::uint32_t s) {
    s = std::min({s, platform.max_stripe_count, platform.ost_count});
    return static_cast<double>(std::max<std::uint32_t>(s, 1));
  };
  switch (job.kind) {
    case JobKind::probe_writer:
      // Every writer pins one OST (stripe_count 1, explicit offset).
      return std::vector<double>(static_cast<std::size_t>(job.nprocs), 1.0);
    case JobKind::noise:
      return {clamp(job.stripes)};
    case JobKind::plfs:
      // ad_plfs: one 2-stripe data file per rank (Eq. 5/6's layout).
      return std::vector<double>(static_cast<std::size_t>(job.nprocs), 2.0);
    case JobKind::ior: {
      std::uint32_t s = stripes_override != 0 && detunable(job)
                            ? stripes_override
                            : (job.ior.hints.driver == mpiio::Driver::ad_lustre &&
                                       job.ior.hints.striping_factor != 0
                                   ? job.ior.hints.striping_factor
                                   : platform.default_stripe_count);
      const double r = clamp(s);
      if (job.ior.file_per_process)
        return std::vector<double>(static_cast<std::size_t>(job.nprocs), r);
      return {r};
    }
  }
  return {};
}

double AdmissionController::dload_with(const std::vector<double>& extra) const {
  std::vector<double> all;
  for (const Running& r : running_)
    all.insert(all.end(), r.requests.begin(), r.requests.end());
  all.insert(all.end(), extra.begin(), extra.end());
  if (all.empty()) return 0.0;
  const double d_total = static_cast<double>(params_.ost_count);
  const double inuse = core::d_inuse(all, d_total);
  if (inuse <= 0.0) return 0.0;
  const double total = std::accumulate(all.begin(), all.end(), 0.0);
  return total / inuse;  // Eq. 4's heterogeneous form: D_req / D_inuse
}

double AdmissionController::predicted_dload(const JobSpec* candidate) const {
  return dload_with(candidate != nullptr
                        ? job_requests(*candidate, params_)
                        : std::vector<double>{});
}

void AdmissionController::pump() {
  while (!queue_.empty()) {
    Waiter* w = queue_.front();
    const JobSpec& job = *w->job;
    std::uint32_t after = detunable(job) ? requested_stripes(job) : 0;
    double load = dload_with(job_requests(job, params_));

    if (cfg_.policy == AdmissionPolicy::threshold && load > cfg_.max_dload &&
        !running_.empty()) {
      w->waited = true;
      return;  // head-of-line blocking: strict FIFO release order
    }
    if (cfg_.policy == AdmissionPolicy::detune && load > cfg_.max_dload &&
        detunable(job)) {
      // Largest stripe count whose prediction fits; floor min_stripes.
      const std::uint32_t req = requested_stripes(job);
      const std::uint32_t floor =
          std::min(std::max<std::uint32_t>(cfg_.min_stripes, 1), req);
      for (std::uint32_t s = req; s > floor; --s) {
        const double trial = dload_with(job_requests(job, params_, s));
        if (trial <= cfg_.max_dload) {
          after = s;
          load = trial;
          break;
        }
        if (s - 1 == floor) {
          after = floor;
          load = dload_with(job_requests(job, params_, floor));
        }
      }
    }

    w->released = true;
    w->after = after;
    w->load = load;
    w->running_before = running_.size();
    running_.push_back(
        {job.job_id,
         job_requests(job, params_, after != 0 ? after : 0u)});
    queue_.pop_front();
    w->evt.trigger();
  }
}

sim::Co<std::uint32_t> AdmissionController::admit(const JobSpec& job) {
  AdmissionRecord rec;
  rec.job_id = job.job_id;
  rec.arrival = eng_->now();
  rec.stripes_before = detunable(job) ? requested_stripes(job) : 0;

  Waiter w(*eng_);
  w.job = &job;
  queue_.push_back(&w);
  pump();
  if (!w.released) {
    if (recorder_ != nullptr) {
      recorder_->begin(trace::Cat::sched, track_, "admit_wait", eng_->now(),
                       job.job_id + 1, static_cast<std::int64_t>(job.job_id));
    }
    co_await w.evt.wait();
    if (recorder_ != nullptr) {
      recorder_->end(trace::Cat::sched, track_, "admit_wait", eng_->now(),
                     job.job_id + 1, static_cast<std::int64_t>(job.job_id));
    }
  }

  rec.released = eng_->now();
  rec.stripes_after = w.after != 0 ? w.after : rec.stripes_before;
  rec.predicted_dload = w.load;
  rec.running_before = w.running_before;
  const bool detuned = w.after != 0 && w.after != rec.stripes_before;
  rec.action = detuned ? AdmissionAction::detuned
               : w.waited ? AdmissionAction::delayed
                          : AdmissionAction::admitted;
  if (recorder_ != nullptr) {
    recorder_->instant(trace::Cat::sched, track_,
                       admission_action_name(rec.action), eng_->now(),
                       static_cast<std::int64_t>(job.job_id),
                       static_cast<std::int64_t>(rec.stripes_after));
    recorder_->counter(trace::Cat::sched, track_, "predicted_dload",
                       eng_->now(), dload_with({}));
  }
  records_.push_back(rec);
  co_return detuned ? w.after : 0u;
}

void AdmissionController::finished(const JobSpec& job) {
  auto it = std::find_if(running_.begin(), running_.end(), [&](const Running& r) {
    return r.job_id == job.job_id;
  });
  if (it == running_.end()) return;
  running_.erase(it);
  if (recorder_ != nullptr) {
    recorder_->counter(trace::Cat::sched, track_, "predicted_dload",
                       eng_->now(), dload_with({}));
  }
  pump();
}

}  // namespace pfsc::harness
