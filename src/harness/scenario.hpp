// Unified scenario description for the experiment harness.
//
// A Scenario says *what to run*. Since PR 6 the primitive is the **job
// list**: a Scenario is a vector of JobSpec — each an independent
// application (an IOR job, a PLFS-backed IOR job, a single-OST probe
// writer, or a background noise writer) with its own JobId, configuration
// and arrival offset. `run_scenario(scenario, seed)` builds a fresh engine
// + file system + runtime from the seed, runs every job to completion, and
// returns an Observation. Fresh-state-per-run keeps repetitions
// independent, exactly like resubmitting a batch job — and is what lets
// ParallelRunner execute plan points on concurrent threads with
// bit-identical per-seed results.
//
// The pre-PR-6 closed `Workload` enum survives as sugar: the enum plus the
// single-job fields describe the four historical shapes, and `jobs()`
// desugars them into the equivalent job list. The factory helpers
// (`Scenario::single_ior`, `::plfs_ior`, `::multi`, `::probe`) construct
// those shapes; `Scenario::from_jobs` builds an explicit job-list scenario
// (what `replay::to_scenario` and the fleet generator produce). Execution
// is always job-list driven — desugared legacy shapes reproduce the
// historical event sequences bit for bit (pinned by the golden tests).
//
// Sweeps and repetitions over a Scenario are described by harness::RunPlan
// (run_plan.hpp) and executed by harness::ParallelRunner (runner.hpp).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/metrics.hpp"
#include "ctrl/controller.hpp"
#include "harness/admission.hpp"
#include "hw/platform.hpp"
#include "ior/ior.hpp"
#include "ior/probe.hpp"
#include "trace/telemetry.hpp"

namespace pfsc::harness {

// ---------------------------------------------------------------------------
// JobSpec: one application in a scenario's job list.
// ---------------------------------------------------------------------------

enum class JobKind : std::uint8_t {
  ior,           // IOR through MPI-IO (ad_lustre / ad_generic)
  plfs,          // IOR through ad_plfs (N data files of 2 stripes each)
  probe_writer,  // Fig. 2-style writers streaming to one pinned OST
  noise,         // background writer outside the MPI world (default layout)
};

const char* job_kind_name(JobKind k);

struct JobSpec {
  JobKind kind = JobKind::ior;
  /// Scheduler tag for every RPC this job issues; must be unique within a
  /// scenario so per-job QoS and the fleet analytics can tell jobs apart.
  lustre::sched::JobId job_id = lustre::sched::kDefaultJob;
  /// Application label for fleet reports ("ior", "checkpoint", ...).
  /// Empty: the kind name.
  std::string app;
  /// Simulated-time offset at which the job starts. All-zero arrivals mean
  /// a synchronised start (the paper's simultaneous-submission design: a
  /// world barrier before the jobs split off); any positive arrival makes
  /// the whole scenario free-running — each job begins at its own offset
  /// with no cross-job barrier.
  Seconds arrival = 0.0;

  // -- ior / plfs --------------------------------------------------------
  int nprocs = 1;    // ranks (ior/plfs) or writers (probe_writer)
  ior::Config ior;   // ignored by probe_writer/noise

  // -- probe_writer / noise payload --------------------------------------
  Bytes bytes = 64_MiB;          // per writer
  Bytes transfer_size = 1_MiB;
  std::uint32_t stripes = 2;     // noise layout (background users rarely tune)
  Bytes stripe_size = 1_MiB;
  /// probe_writer: OST every writer pins via stripe_offset. -1 derives it
  /// from the run seed (the historical probe behaviour: noise sometimes
  /// lands on it, which is where Figure 2's variance band comes from).
  std::int32_t target_ost = -1;

  /// Throws UsageError when the fields are inconsistent for the kind.
  /// `index` names the offending list slot in the message.
  void validate(std::size_t index) const;

  const char* kind_name() const { return job_kind_name(kind); }
  /// Label for reports: `app` when set, else the kind name.
  const std::string& display_app() const;
};

// ---------------------------------------------------------------------------
// Background noise (deprecated alias).
//
// Noise writers are ordinary background jobs since PR 6: a NoiseSpec with
// `writers == n` desugars to n JobKind::noise entries with JobIds
// kNoiseJobBase + i appended to the job list (see Scenario::jobs()). The
// struct and `spawn_noise` remain for source compatibility.
// ---------------------------------------------------------------------------
struct NoiseSpec {
  unsigned writers = 0;
  Bytes bytes_per_writer = 256_MiB;
  Bytes transfer_size = 1_MiB;
  std::uint32_t stripes = 2;  // background users rarely tune
  Bytes stripe_size = 1_MiB;
};

/// Spawn the background writers on `fs` (each an independent client with a
/// default-layout file, started immediately). The engine owns the spawned
/// processes; `clients` receives ownership of the Client objects and must
/// outlive the run. Deprecated: prefer JobKind::noise entries in the job
/// list, which run_scenario spawns itself (with arrival-offset support).
void spawn_noise(lustre::FileSystem& fs,
                 std::vector<std::unique_ptr<lustre::Client>>& clients,
                 const NoiseSpec& noise, std::uint64_t seed);

// ---------------------------------------------------------------------------
// Scenario: what to run.
// ---------------------------------------------------------------------------

enum class Workload {
  ior,    // one IOR job through MPI-IO (Fig. 1 sweep points, Fig. 5 curves)
  plfs,   // IOR through ad_plfs with a backend collision census (Tables VIII/IX)
  multi,  // N simultaneous IOR jobs in one MPI world via comm_split (Figs. 3/4)
  probe,  // single-OST contention probe (Fig. 2)
  jobs,   // explicit job list (replay / synthetic fleets)
};

const char* workload_name(Workload w);

struct Scenario {
  /// Legacy-shape selector; ignored (reported as Workload::jobs) whenever
  /// `job_list` is non-empty.
  Workload workload = Workload::ior;

  /// The job list. Empty: desugared from the legacy fields below by
  /// `jobs()`. Non-empty: authoritative (the legacy single-job fields are
  /// ignored, except `noise`, which appends background jobs).
  std::vector<JobSpec> job_list;

  // -- legacy job topology (ignored when job_list is non-empty) ----------
  int nprocs = 1024;        // ranks per job (ior/plfs) or per probe writer set
  int procs_per_node = 16;
  int jobs = 4;             // multi only: number of contending jobs

  // -- probe-only knobs ---------------------------------------------------
  std::uint32_t writers = 1;
  Bytes bytes_per_writer = 64_MiB;

  // -- workload description (ignored by probe) ----------------------------
  ior::Config ior;

  // -- environment ---------------------------------------------------------
  hw::PlatformParams platform = hw::cab_lscratchc();
  /// Deprecated alias: desugars to JobKind::noise entries (see jobs()).
  NoiseSpec noise;  // writers == 0: quiet system

  /// Model-driven admission control for fleet runs (admission.hpp). The
  /// default `always` is bit-for-bit invisible: no controller is built and
  /// jobs start exactly as before. Only the fleet route consults this;
  /// single-job and probe scenarios ignore it.
  AdmissionConfig admission;

  /// Online adaptive tuning (ctrl/controller.hpp). The default mode `off`
  /// is bit-for-bit invisible: no Controller is constructed and zero
  /// engine events are added. Any active mode forces the single-engine
  /// fallback (like periodic telemetry) so reports stay byte-identical at
  /// any --sim_domains/--threads.
  ctrl::CtrlConfig ctrl;

  /// > 0: attach a telemetry sampler at this interval and return the
  /// aggregate-bandwidth timeline in Observation::bandwidth.
  Seconds telemetry_interval = 0.0;

  /// Event tracing (trace::Recorder attached to the run's engine).
  /// mode off (the default) is bit-for-bit invisible: no recorder exists
  /// and every instrumentation hook is a single null-pointer test.
  /// `trace.interval` > 0 additionally attaches a periodic sampler
  /// mirroring the standard fabric/scheduler/total-bytes instrument packs
  /// into the trace. Overridable per run through the PFSC_TRACE,
  /// PFSC_TRACE_OUT and PFSC_TRACE_INTERVAL environment variables (only
  /// consulted when this field is off, so code wins over environment).
  trace::TraceConfig trace;

  // -- factories (the four historical enum shapes + explicit lists) ------
  /// One IOR job through MPI-IO: `Workload::ior` with `cfg`.
  static Scenario single_ior(ior::Config cfg = {});
  /// IOR through ad_plfs (forces hints.driver) with the backend census.
  static Scenario plfs_ior(ior::Config cfg = {});
  /// `jobs` simultaneous IOR executions of `nprocs` ranks each; job k gets
  /// `cfg.test_file + ".k"` and JobId k, exactly the historical desugaring.
  static Scenario multi(int jobs, int nprocs, ior::Config cfg = {});
  /// `writers` single-OST probe writers of `bytes_per_writer` each.
  static Scenario probe(std::uint32_t writers, Bytes bytes_per_writer = 64_MiB);
  /// Explicit job-list scenario (replay / fleet generation).
  static Scenario from_jobs(std::vector<JobSpec> list);

  /// The scenario's job list: `job_list` when non-empty, else the legacy
  /// fields desugared (ior/plfs/multi/probe -> the equivalent JobSpecs).
  /// Noise writers from the deprecated `noise` field are appended as
  /// JobKind::noise entries in either case.
  std::vector<JobSpec> jobs_desugared() const;

  /// Throws UsageError when the fields are inconsistent (e.g. a multi
  /// scenario routed through ad_plfs, zero jobs/writers, or a job list
  /// with duplicate JobIds).
  void validate() const;
};

// ---------------------------------------------------------------------------
// Observation: everything one scenario run measured.
// ---------------------------------------------------------------------------
struct Observation {
  Workload workload = Workload::ior;
  std::uint64_t seed = 0;

  /// The job list that ran (desugared), in spawn order — what fleet
  /// analytics joins per_job results against.
  std::vector<JobSpec> jobs;

  /// ior/plfs: the job's result. multi/jobs: aggregate with write_mbps set
  /// to the per-job mean. probe: unused.
  ior::Result ior;
  /// One result per rank-carrying job (ior/plfs/probe_writer), in job-list
  /// order — populated for every workload since PR 6 (a single IOR run is
  /// a one-entry fleet; probe writers report per-writer aggregates).
  std::vector<ior::Result> per_job;
  /// Sum of the per-job headline metrics. Populated for every workload
  /// since PR 6 (fleet aggregation needs no per-kind special cases).
  double total_mbps = 0.0;
  /// plfs: per-OST data-file occupancy census. multi/jobs: cross-job OST
  /// census over every job's files.
  core::ObservedContention contention;
  /// probe only.
  ior::ProbeResult probe;
  /// Aggregate-bandwidth timeline when telemetry_interval > 0.
  trace::Series bandwidth;

  /// Admission decisions in release order (empty when scenario.admission is
  /// `always` — the controller is never constructed then).
  std::vector<AdmissionRecord> admissions;

  /// The mode the adaptive controller ran in (off: no controller existed).
  ctrl::CtrlMode ctrl_mode = ctrl::CtrlMode::off;
  /// Adaptive-tuning decisions in decision order (empty when ctrl_mode is
  /// off — the Controller is never constructed then).
  std::vector<ctrl::CtrlAction> ctrl_actions;

  // -- event tracing (scenario.trace.mode != off) -------------------------
  /// True when the run carried a trace::Recorder.
  bool traced = false;
  /// Per-run roll-up (per-job/per-OST bytes, Jain, mean queue depth);
  /// numbers match FileSystem::sched_* exactly.
  trace::RunSummary trace_summary;
  /// Chrome trace_event JSON (full mode only; empty otherwise).
  std::string trace_json;

  /// The scenario's headline number: write (or read-only) MB/s for
  /// ior/plfs, mean per-job write MB/s for multi/jobs, mean per-process
  /// MB/s for the probe.
  double metric = 0.0;
};

/// Run one scenario to completion on a fresh deterministic simulation.
Observation run_scenario(const Scenario& scenario, std::uint64_t seed);

/// Engine threads one run of `scenario` will occupy: the resolved domain
/// count when the sharded engine engages, 1 when the run falls back to a
/// single engine (domains < 2, no lookahead, or a periodic sampler is
/// attached). ParallelRunner divides its core budget by this so that
/// repetition workers times domain workers never oversubscribe the host.
std::size_t scenario_domain_threads(const Scenario& scenario);

}  // namespace pfsc::harness
