// Unified scenario description for the experiment harness.
//
// A Scenario says *what to run*: which workload shape (a single IOR job,
// a PLFS-backed IOR job, N contending IOR jobs, or the single-OST probe),
// on which platform, with what MPI-IO hints and how much background noise.
// `run_scenario(scenario, seed)` builds a fresh engine + file system +
// runtime from the seed, runs the workload to completion, and returns an
// Observation. Fresh-state-per-run keeps repetitions independent, exactly
// like resubmitting a batch job — and is what lets ParallelRunner execute
// plan points on concurrent threads with bit-identical per-seed results.
//
// Sweeps and repetitions over a Scenario are described by harness::RunPlan
// (run_plan.hpp) and executed by harness::ParallelRunner (runner.hpp).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/metrics.hpp"
#include "hw/platform.hpp"
#include "ior/ior.hpp"
#include "ior/probe.hpp"
#include "trace/telemetry.hpp"

namespace pfsc::harness {

// ---------------------------------------------------------------------------
// Background noise: lscratchc is a shared-user file system ("there is some
// variance in performance with no forced contention"). Optional independent
// writers with default layouts run alongside any scenario.
// ---------------------------------------------------------------------------
struct NoiseSpec {
  unsigned writers = 0;
  Bytes bytes_per_writer = 256_MiB;
  Bytes transfer_size = 1_MiB;
  std::uint32_t stripes = 2;  // background users rarely tune
  Bytes stripe_size = 1_MiB;
};

/// Spawn the background writers on `fs` (each an independent client with a
/// default-layout file, started immediately). The engine owns the spawned
/// processes; `clients` receives ownership of the Client objects and must
/// outlive the run.
void spawn_noise(lustre::FileSystem& fs,
                 std::vector<std::unique_ptr<lustre::Client>>& clients,
                 const NoiseSpec& noise, std::uint64_t seed);

// ---------------------------------------------------------------------------
// Scenario: what to run.
// ---------------------------------------------------------------------------

enum class Workload {
  ior,    // one IOR job through MPI-IO (Fig. 1 sweep points, Fig. 5 curves)
  plfs,   // IOR through ad_plfs with a backend collision census (Tables VIII/IX)
  multi,  // N simultaneous IOR jobs in one MPI world via comm_split (Figs. 3/4)
  probe,  // single-OST contention probe (Fig. 2)
};

const char* workload_name(Workload w);

struct Scenario {
  Workload workload = Workload::ior;

  // -- job topology ------------------------------------------------------
  int nprocs = 1024;        // ranks per job (ior/plfs) or per probe writer set
  int procs_per_node = 16;
  int jobs = 4;             // multi only: number of contending jobs

  // -- probe-only knobs ---------------------------------------------------
  std::uint32_t writers = 1;
  Bytes bytes_per_writer = 64_MiB;

  // -- workload description (ignored by probe) ----------------------------
  ior::Config ior;

  // -- environment ---------------------------------------------------------
  hw::PlatformParams platform = hw::cab_lscratchc();
  NoiseSpec noise;  // writers == 0: quiet system

  /// > 0: attach a telemetry sampler at this interval and return the
  /// aggregate-bandwidth timeline in Observation::bandwidth.
  Seconds telemetry_interval = 0.0;

  /// Event tracing (trace::Recorder attached to the run's engine).
  /// mode off (the default) is bit-for-bit invisible: no recorder exists
  /// and every instrumentation hook is a single null-pointer test.
  /// `trace.interval` > 0 additionally attaches a periodic sampler
  /// mirroring the standard fabric/scheduler/total-bytes instrument packs
  /// into the trace. Overridable per run through the PFSC_TRACE,
  /// PFSC_TRACE_OUT and PFSC_TRACE_INTERVAL environment variables (only
  /// consulted when this field is off, so code wins over environment).
  trace::TraceConfig trace;

  /// Throws UsageError when the fields are inconsistent (e.g. a multi
  /// scenario routed through ad_plfs, or zero jobs/writers).
  void validate() const;
};

// ---------------------------------------------------------------------------
// Observation: everything one scenario run measured.
// ---------------------------------------------------------------------------
struct Observation {
  Workload workload = Workload::ior;
  std::uint64_t seed = 0;

  /// ior/plfs: the job's result. multi: aggregate with write_mbps set to the
  /// per-job mean. probe: unused.
  ior::Result ior;
  /// multi only: one result per job, in job order.
  std::vector<ior::Result> per_job;
  double total_mbps = 0.0;  // multi only: sum over jobs
  /// plfs: per-OST data-file occupancy census. multi: cross-job OST census.
  core::ObservedContention contention;
  /// probe only.
  ior::ProbeResult probe;
  /// Aggregate-bandwidth timeline when telemetry_interval > 0.
  trace::Series bandwidth;

  // -- event tracing (scenario.trace.mode != off) -------------------------
  /// True when the run carried a trace::Recorder.
  bool traced = false;
  /// Per-run roll-up (per-job/per-OST bytes, Jain, mean queue depth);
  /// numbers match FileSystem::sched_* exactly.
  trace::RunSummary trace_summary;
  /// Chrome trace_event JSON (full mode only; empty otherwise).
  std::string trace_json;

  /// The scenario's headline number: write (or read-only) MB/s for
  /// ior/plfs, mean per-job write MB/s for multi, mean per-process MB/s
  /// for the probe.
  double metric = 0.0;
};

/// Run one scenario to completion on a fresh deterministic simulation.
Observation run_scenario(const Scenario& scenario, std::uint64_t seed);

}  // namespace pfsc::harness
