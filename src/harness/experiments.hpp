// DEPRECATED experiment drivers — thin wrappers over the unified Scenario
// API (scenario.hpp / run_plan.hpp / runner.hpp). Kept for one release so
// out-of-tree users migrate gently; nothing in this repository uses them.
//
//   run_single_ior(spec, seed)   -> run_scenario(Scenario{.workload=ior}, seed)
//   run_plfs_ior(spec, seed)     -> run_scenario(Scenario{.workload=plfs}, seed)
//   run_multi_ior(spec, seed)    -> run_scenario(Scenario{.workload=multi}, seed)
//   run_probe_experiment(...)    -> run_scenario(Scenario{.workload=probe}, seed)
//   spawn_background_noise(...)  -> spawn_noise(...)
//   repeat(reps, seed, fn)       -> ParallelRunner::run with RunPlan::repetitions
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "harness/scenario.hpp"
#include "support/stats.hpp"

namespace pfsc::harness {

[[deprecated("use harness::spawn_noise")]] void spawn_background_noise(
    lustre::FileSystem& fs,
    std::vector<std::unique_ptr<lustre::Client>>& clients,
    const NoiseSpec& noise, std::uint64_t seed);

// ---------------------------------------------------------------------------
// Single IOR job (Figure 1 sweep points, Figure 5 Lustre/PLFS curves).
// ---------------------------------------------------------------------------
struct IorRunSpec {
  int nprocs = 1024;
  int procs_per_node = 16;
  ior::Config ior;
  hw::PlatformParams platform = hw::cab_lscratchc();
  NoiseSpec noise;  // writers == 0: quiet system

  /// The equivalent Scenario (workload defaults to ior).
  Scenario to_scenario() const;
};

[[deprecated("use harness::run_scenario with Workload::ior")]] ior::Result
run_single_ior(const IorRunSpec& spec, std::uint64_t seed);

// ---------------------------------------------------------------------------
// PLFS-backed IOR with backend collision census (Fig. 5, Tables VIII/IX).
// ---------------------------------------------------------------------------
struct PlfsRunResult {
  ior::Result ior;
  core::ObservedContention backend;  // per-OST data-file occupancy
};

[[deprecated("use harness::run_scenario with Workload::plfs")]] PlfsRunResult
run_plfs_ior(const IorRunSpec& spec, std::uint64_t seed);

// ---------------------------------------------------------------------------
// N simultaneous IOR jobs in one MPI world via comm_split
// (Figures 3 & 4, Table V).
// ---------------------------------------------------------------------------
struct MultiJobSpec {
  int jobs = 4;
  int procs_per_job = 1024;
  int procs_per_node = 16;
  ior::Config ior;  // test_file gets a per-job suffix
  hw::PlatformParams platform = hw::cab_lscratchc();

  Scenario to_scenario() const;
};

struct MultiJobResult {
  std::vector<ior::Result> per_job;
  double mean_mbps = 0.0;
  double total_mbps = 0.0;
  /// Cross-job OST occupancy census over the jobs' shared-file layouts.
  core::ObservedContention contention;
};

[[deprecated("use harness::run_scenario with Workload::multi")]] MultiJobResult
run_multi_ior(const MultiJobSpec& spec, std::uint64_t seed);

// ---------------------------------------------------------------------------
// Single-OST contention probe (Figure 2).
// ---------------------------------------------------------------------------
struct ProbeSpec {
  std::uint32_t writers = 1;
  Bytes bytes_per_writer = 64_MiB;
  int procs_per_node = 16;
  hw::PlatformParams platform = hw::cab_lscratchc();
  /// Shared-system noise; the paper derives Figure 2's ideal band from the
  /// single-writer variance a busy file system naturally exhibits.
  NoiseSpec noise;

  Scenario to_scenario() const;
};

[[deprecated("use harness::run_scenario with Workload::probe")]] ior::ProbeResult
run_probe_experiment(const ProbeSpec& spec, std::uint64_t seed);

// ---------------------------------------------------------------------------
// Repetition helper: run fn(seed_i) `reps` times with derived seeds.
// ---------------------------------------------------------------------------
struct RepeatedStats {
  std::vector<double> samples;
  ConfidenceInterval ci;
};

[[deprecated("use harness::RunPlan::repetitions with ParallelRunner")]] RepeatedStats
repeat(unsigned reps, std::uint64_t base_seed,
       const std::function<double(std::uint64_t)>& fn);

}  // namespace pfsc::harness
