// Experiment drivers shared by the bench binaries and the integration
// tests: each builds a fresh simulated platform (engine + file system +
// runtime) from a seed, runs one experiment, and returns the measurements.
// Fresh-state-per-run keeps repetitions independent, exactly like
// resubmitting a batch job.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "core/metrics.hpp"
#include "hw/platform.hpp"
#include "ior/ior.hpp"
#include "ior/probe.hpp"
#include "support/stats.hpp"

namespace pfsc::harness {

// ---------------------------------------------------------------------------
// Background noise: lscratchc is a shared-user file system ("there is some
// variance in performance with no forced contention"). Optional independent
// writers with default layouts run alongside any experiment.
// ---------------------------------------------------------------------------
struct NoiseSpec {
  unsigned writers = 0;
  Bytes bytes_per_writer = 256_MiB;
  Bytes transfer_size = 1_MiB;
  std::uint32_t stripes = 2;  // background users rarely tune
  Bytes stripe_size = 1_MiB;
};

/// Spawn the background writers on `fs` (each an independent client with a
/// default-layout file, started immediately). The engine owns the spawned
/// processes; `clients` receives ownership of the Client objects and must
/// outlive the run.
void spawn_background_noise(lustre::FileSystem& fs,
                            std::vector<std::unique_ptr<lustre::Client>>& clients,
                            const NoiseSpec& noise, std::uint64_t seed);

// ---------------------------------------------------------------------------
// Single IOR job (Figure 1 sweep points, Figure 5 Lustre/PLFS curves).
// ---------------------------------------------------------------------------
struct IorRunSpec {
  int nprocs = 1024;
  int procs_per_node = 16;
  ior::Config ior;
  hw::PlatformParams platform = hw::cab_lscratchc();
  NoiseSpec noise;  // writers == 0: quiet system
};

ior::Result run_single_ior(const IorRunSpec& spec, std::uint64_t seed);

// ---------------------------------------------------------------------------
// PLFS-backed IOR with backend collision census (Fig. 5, Tables VIII/IX).
// ---------------------------------------------------------------------------
struct PlfsRunResult {
  ior::Result ior;
  core::ObservedContention backend;  // per-OST data-file occupancy
};

PlfsRunResult run_plfs_ior(const IorRunSpec& spec, std::uint64_t seed);

// ---------------------------------------------------------------------------
// N simultaneous IOR jobs in one MPI world via comm_split
// (Figures 3 & 4, Table V).
// ---------------------------------------------------------------------------
struct MultiJobSpec {
  int jobs = 4;
  int procs_per_job = 1024;
  int procs_per_node = 16;
  ior::Config ior;  // test_file gets a per-job suffix
  hw::PlatformParams platform = hw::cab_lscratchc();
};

struct MultiJobResult {
  std::vector<ior::Result> per_job;
  double mean_mbps = 0.0;
  double total_mbps = 0.0;
  /// Cross-job OST occupancy census over the jobs' shared-file layouts.
  core::ObservedContention contention;
};

MultiJobResult run_multi_ior(const MultiJobSpec& spec, std::uint64_t seed);

// ---------------------------------------------------------------------------
// Single-OST contention probe (Figure 2).
// ---------------------------------------------------------------------------
struct ProbeSpec {
  std::uint32_t writers = 1;
  Bytes bytes_per_writer = 64_MiB;
  int procs_per_node = 16;
  hw::PlatformParams platform = hw::cab_lscratchc();
  /// Shared-system noise; the paper derives Figure 2's ideal band from the
  /// single-writer variance a busy file system naturally exhibits.
  NoiseSpec noise;
};

ior::ProbeResult run_probe_experiment(const ProbeSpec& spec, std::uint64_t seed);

// ---------------------------------------------------------------------------
// Repetition helper: run fn(seed_i) `reps` times with derived seeds.
// ---------------------------------------------------------------------------
struct RepeatedStats {
  std::vector<double> samples;
  ConfidenceInterval ci;
};

RepeatedStats repeat(unsigned reps, std::uint64_t base_seed,
                     const std::function<double(std::uint64_t)>& fn);

}  // namespace pfsc::harness
