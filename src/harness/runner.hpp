// ParallelRunner: execute a RunPlan's points across a std::thread pool.
//
// Every (point, repetition) task constructs a fresh engine + file system
// from its pre-derived seed and shares nothing with any other task, so the
// pool is embarrassingly parallel: workers pull task indices off one atomic
// counter and write results into disjoint pre-sized slots. Aggregation
// happens after join in plan order, which makes the RunSet — including its
// CSV serialisation — bit-identical for threads=1 and threads=N.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "harness/run_plan.hpp"
#include "harness/scenario.hpp"
#include "support/stats.hpp"
#include "support/table.hpp"

namespace pfsc::harness {

/// One plan point's aggregated results.
struct PointResult {
  std::vector<double> coords;      // one value per plan axis
  std::vector<Observation> reps;   // repetition order
  std::vector<double> samples;     // headline metric per repetition
  ConfidenceInterval ci;           // 95% Student-t over samples
};

/// Structured results of one plan execution.
class RunSet {
 public:
  RunSet(std::vector<std::string> axis_names, std::vector<PointResult> points);

  const std::vector<std::string>& axis_names() const { return axis_names_; }
  const std::vector<PointResult>& points() const { return points_; }
  const PointResult& point(std::size_t i) const;
  std::size_t size() const { return points_.size(); }

  /// One CSV row per repetition: axis coordinates, repetition index, seed,
  /// and the headline metric with full round-trip precision. Deterministic
  /// for a given plan regardless of the thread count that produced it.
  std::string to_csv() const;

  /// Per-point summary: coordinates, mean, CI bounds, sample count.
  TextTable summary_table(int precision = 0) const;

 private:
  std::vector<std::string> axis_names_;
  std::vector<PointResult> points_;
};

class ParallelRunner {
 public:
  /// threads == 0: use std::thread::hardware_concurrency().
  explicit ParallelRunner(unsigned threads = 0);

  unsigned threads() const { return threads_; }

  /// Expand the plan over `base` and run every (point, repetition) task.
  /// Throws the first task exception after all workers stop; partial
  /// results are discarded.
  RunSet run(const Scenario& base, const RunPlan& plan) const;

 private:
  unsigned threads_;
};

}  // namespace pfsc::harness
