// ParallelRunner: execute a RunPlan's points across a std::thread pool.
//
// Every (point, repetition) task constructs a fresh engine + file system
// from its pre-derived seed and shares nothing with any other task, so the
// pool is embarrassingly parallel: workers pull task indices off one atomic
// counter and write results into disjoint pre-sized slots. Aggregation
// happens after join in plan order, which makes the RunSet — including its
// CSV serialisation — bit-identical for threads=1 and threads=N.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "harness/run_plan.hpp"
#include "harness/scenario.hpp"
#include "support/stats.hpp"
#include "support/table.hpp"

namespace pfsc::harness {

/// One plan point's aggregated results.
struct PointResult {
  std::vector<double> coords;      // one value per plan axis
  std::vector<Observation> reps;   // repetition order
  std::vector<double> samples;     // headline metric per repetition
  ConfidenceInterval ci;           // 95% Student-t over samples
};

/// How a RunSet was executed: worker threads the runner actually spawned,
/// engine threads inside each run (sharded domains), and the hardware
/// thread count that bounded the product. Pure provenance — never feeds
/// back into results, which are thread-count-independent by construction.
struct RunProvenance {
  unsigned rep_threads = 1;
  unsigned domain_threads = 1;
  unsigned hardware_threads = 1;
};

/// Structured results of one plan execution.
class RunSet {
 public:
  RunSet(std::vector<std::string> axis_names, std::vector<PointResult> points);

  const std::vector<std::string>& axis_names() const { return axis_names_; }
  const std::vector<PointResult>& points() const { return points_; }
  const PointResult& point(std::size_t i) const;
  std::size_t size() const { return points_.size(); }

  void set_provenance(RunProvenance p) { provenance_ = p; }
  const RunProvenance& provenance() const { return provenance_; }

  /// One CSV row per repetition: axis coordinates, repetition index, seed,
  /// and the headline metric with full round-trip precision. Deterministic
  /// for a given plan regardless of the thread count that produced it.
  /// `with_provenance` prepends a `#`-comment header recording the thread
  /// counts — off by default so byte-compare of serial vs parallel output
  /// (and any stored fixture) stays meaningful.
  std::string to_csv(bool with_provenance = false) const;

  /// Per-point summary: coordinates, mean, CI bounds, sample count.
  TextTable summary_table(int precision = 0) const;

 private:
  std::vector<std::string> axis_names_;
  std::vector<PointResult> points_;
  RunProvenance provenance_;
};

class ParallelRunner {
 public:
  /// threads == 0: use the hardware thread count, resolved once per
  /// process (sim::hardware_threads()).
  explicit ParallelRunner(unsigned threads = 0);

  unsigned threads() const { return threads_; }

  /// Expand the plan over `base` and run every (point, repetition) task.
  /// Throws the first task exception after all workers stop; partial
  /// results are discarded. When the base scenario runs sharded, the
  /// worker pool is clamped so rep-threads x domain-threads stays within
  /// the hardware thread budget; the effective counts are recorded in the
  /// RunSet's provenance.
  RunSet run(const Scenario& base, const RunPlan& plan) const;

 private:
  unsigned threads_;
};

}  // namespace pfsc::harness
