#include "core/fs_report.hpp"

#include <algorithm>
#include <sstream>

#include "support/table.hpp"

namespace pfsc::core {

namespace {

/// Rebuild the full path of an inode by walking parents.
std::string path_of(const lustre::FileSystem& fs, lustre::InodeId id) {
  std::vector<std::string> parts;
  lustre::InodeId cur = id;
  while (cur != lustre::kNoInode) {
    const lustre::Inode& node = fs.inode(cur);
    if (node.parent == lustre::kNoInode) break;  // root
    parts.push_back(node.name);
    cur = node.parent;
  }
  std::string out;
  for (auto it = parts.rbegin(); it != parts.rend(); ++it) {
    out += "/";
    out += *it;
  }
  return out.empty() ? "/" : out;
}

}  // namespace

FsHealthReport collect_health_report(const lustre::FileSystem& fs,
                                     std::size_t top_n) {
  FsHealthReport report;
  report.ost_count = fs.params().ost_count;
  for (lustre::OstIndex ost = 0; ost < report.ost_count; ++ost) {
    if (fs.ost_failed(ost)) ++report.failed_osts;
  }

  const auto files = fs.files_under("/");
  report.files = files.size();
  report.occupancy = observe(fs.ost_occupancy(files));

  double stripe_sum = 0.0;
  std::vector<FileFootprint> footprints;
  footprints.reserve(files.size());
  for (auto id : files) {
    const lustre::Inode& node = fs.inode(id);
    FileFootprint fp;
    fp.inode = id;
    fp.path = path_of(fs, id);
    fp.stripe_count = node.layout.stripe_count();
    fp.stripe_size = node.layout.stripe_size;
    stripe_sum += fp.stripe_count;
    footprints.push_back(std::move(fp));
  }
  std::sort(footprints.begin(), footprints.end(),
            [](const FileFootprint& a, const FileFootprint& b) {
              return a.stripe_count > b.stripe_count;
            });
  if (footprints.size() > top_n) footprints.resize(top_n);
  report.top_consumers = std::move(footprints);
  report.mean_stripe_request =
      report.files > 0 ? stripe_sum / static_cast<double>(report.files) : 0.0;

  for (const auto& name : fs.pool_names()) {
    auto members = fs.pool_members(name);
    report.pools.emplace_back(name, members.ok() ? members.value.size() : 0);
  }

  // Project: Eq. 1 seeded with the observed D_inuse, then k more mean-shape
  // requests arrive.
  if (report.mean_stripe_request > 0.0) {
    double in_use = report.occupancy.d_inuse;
    double req = report.occupancy.d_req;
    const double d = report.ost_count;
    for (int k = 0; k < 5; ++k) {
      in_use += report.mean_stripe_request -
                (in_use / d) * report.mean_stripe_request;
      req += report.mean_stripe_request;
      report.projected_load.push_back(in_use > 0.0 ? req / in_use : 0.0);
    }
  }
  return report;
}

std::string format_health_report(const FsHealthReport& report) {
  std::ostringstream out;
  out << "File-system contention health report\n";
  out << "  OSTs: " << report.ost_count << " (" << report.failed_osts
      << " failed)   files: " << report.files << "\n";
  out << "  D_inuse " << fmt_double(report.occupancy.d_inuse, 0) << "   D_req "
      << fmt_double(report.occupancy.d_req, 0) << "   D_load "
      << fmt_double(report.occupancy.d_load, 2) << "\n";

  if (!report.occupancy.histogram.empty()) {
    TextTable hist({"files per OST", "OSTs"});
    for (std::size_t k = 0; k < report.occupancy.histogram.size(); ++k) {
      hist.cell(fmt_int(static_cast<long long>(k)))
          .cell(fmt_int(report.occupancy.histogram[k]));
      hist.end_row();
    }
    out << hist.to_string();
  }

  if (!report.top_consumers.empty()) {
    TextTable top({"path", "stripes", "stripe size"});
    for (const auto& fp : report.top_consumers) {
      top.cell(fp.path)
          .cell(fmt_int(fp.stripe_count))
          .cell(format_bytes(fp.stripe_size));
      top.end_row();
    }
    out << "Widest layouts:\n" << top.to_string();
  }

  if (!report.pools.empty()) {
    out << "Pools:";
    for (const auto& [name, size] : report.pools) {
      out << " " << name << "(" << size << ")";
    }
    out << "\n";
  }

  if (!report.projected_load.empty()) {
    out << "Projected D_load if more mean-shape jobs ("
        << fmt_double(report.mean_stripe_request, 1) << " stripes) arrive:";
    for (std::size_t k = 0; k < report.projected_load.size(); ++k) {
      out << " +" << (k + 1) << ":" << fmt_double(report.projected_load[k], 2);
    }
    out << "\n";
  }
  return out.str();
}

}  // namespace pfsc::core
