// Contention metrics for parallel file systems — the paper's contribution.
//
// For `n` concurrent jobs, each striping over `R` of `D_total` OSTs chosen
// uniformly at random, the paper derives:
//
//   Eq. 1  D_inuse(n) = D_inuse(n-1) + (r_j - D_inuse(n-1)/D_total * r_j)
//   Eq. 2  D_inuse    = D_total - D_total * (1 - R/D_total)^n
//   Eq. 3  D_req      = R * n
//   Eq. 4  D_load     = D_req / D_inuse
//
// and for PLFS, which turns one n-rank application into n files of
// `stripes_per_rank` (= 2 by default) stripes each:
//
//   Eq. 5  D_inuse = D_total - D_total * (1 - 2/D_total)^n
//   Eq. 6  D_load  = 2n / D_inuse
//
// Beyond the paper's equations this module provides the full occupancy
// distribution (expected number of OSTs used by exactly k of the n jobs —
// the "OST Usage 1 2 3 4" columns of Table V and the collision histograms
// of Tables VIII/IX follow from it), a Monte-Carlo cross-check, and QoS
// advisors built on the metrics.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "support/rng.hpp"

namespace pfsc::core {

/// Eq. 1: expected OSTs in use after jobs with (possibly different)
/// stripe requests `requests` have started, on `d_total` targets.
double d_inuse(std::span<const double> requests, double d_total);

/// Eq. 2: closed form when every job requests `r` stripes.
double d_inuse_uniform(double r, unsigned n, double d_total);

/// Eq. 3: total stripes requested.
double d_req(double r, unsigned n);

/// Eq. 4: mean load per in-use OST.
double d_load(double r, unsigned n, double d_total);

/// Eq. 5: expected OSTs in use under PLFS with `ranks` writers.
double plfs_d_inuse(unsigned ranks, double d_total, double stripes_per_rank = 2.0);

/// Eq. 6: mean OST load under PLFS.
double plfs_d_load(unsigned ranks, double d_total, double stripes_per_rank = 2.0);

/// Expected number of OSTs used by exactly k of the n jobs, k = 0..n.
/// Each job independently samples `r` distinct OSTs out of `d_total`, so a
/// given OST is used by Binomial(n, r/d_total) jobs.
std::vector<double> occupancy_expectation(unsigned d_total, unsigned n,
                                          unsigned r);

/// Monte-Carlo estimate of the same distribution (`reps` random placements);
/// used to validate the closed form and for non-uniform policies.
std::vector<double> occupancy_monte_carlo(unsigned d_total, unsigned n,
                                          unsigned r, Rng& rng, unsigned reps);

/// Everything Table III/IV/VI report for one (d_total, r, n) point.
struct ContentionPoint {
  unsigned jobs = 0;
  double d_inuse = 0.0;
  double d_req = 0.0;
  double d_load = 0.0;
};

/// Sweep n = 1..max_jobs for a fixed request size (one paper table).
std::vector<ContentionPoint> contention_table(double r, unsigned max_jobs,
                                              double d_total);

// ---------------------------------------------------------------------------
// Derived analyses / advisors
// ---------------------------------------------------------------------------

/// Largest stripe count R <= max_stripes whose predicted load with
/// `expected_jobs` concurrent jobs stays within `load_budget`.
struct StripeAdvice {
  std::uint32_t recommended_stripes = 0;
  double predicted_load = 0.0;
  double predicted_inuse = 0.0;
};
StripeAdvice advise_stripe_count(double d_total, unsigned expected_jobs,
                                 double load_budget, std::uint32_t max_stripes);

/// Smallest rank count at which PLFS's self-contention load reaches
/// `load_threshold` (the paper quotes 688 cores for load 3 on lscratchc).
unsigned plfs_cores_at_load(double d_total, double load_threshold,
                            double stripes_per_rank = 2.0);

/// Observed load from a measured per-OST occupancy vector (counts of files
/// or jobs using each OST): D_req / D_inuse with D_inuse = #nonzero.
struct ObservedContention {
  double d_inuse = 0.0;
  double d_req = 0.0;
  double d_load = 0.0;
  /// hist[k] = number of OSTs used by exactly k files/jobs.
  std::vector<std::uint32_t> histogram;
};
ObservedContention observe(std::span<const std::uint32_t> per_ost_counts);

// ---------------------------------------------------------------------------
// Order statistics (extension beyond the paper).
//
// The paper's D_load is a *mean*; synchronous applications are gated by
// their *worst* OST. Because each OST is used by Binomial(n, r/d_total)
// jobs, the busiest target of a whole file system — or of one job's R-OST
// layout — follows the max of iid binomials, which these helpers evaluate.
// ---------------------------------------------------------------------------

/// P[Binomial(n, r/d_total) <= k].
double occupancy_cdf(unsigned d_total, unsigned n, unsigned r, unsigned k);

/// Expected maximum occupancy over `targets` independent OSTs
/// (E[max] = sum_k P[max > k], with P[max <= k] = cdf(k)^targets).
double expected_max_occupancy(unsigned d_total, unsigned n, unsigned r,
                              unsigned targets);

/// Predicted slowdown of one job contending with (n-1) identical others:
/// its runtime is gated by the most-shared of its own R OSTs, so
/// slowdown ~ E[max over R of (1 + Binomial(n-1, R/D))].
double predicted_job_slowdown(unsigned d_total, unsigned n, unsigned r);

}  // namespace pfsc::core
