// File-system contention health report: the paper's metrics applied to a
// live (simulated) file system snapshot, formatted for operators.
//
// Answers the questions Section V poses for a running system: how loaded
// is each OST, how many collisions exist right now, which files are the
// big stripe consumers, and what happens if more jobs of the current
// average shape arrive.
#pragma once

#include <string>
#include <vector>

#include "core/metrics.hpp"
#include "lustre/fs.hpp"

namespace pfsc::core {

struct FileFootprint {
  lustre::InodeId inode = lustre::kNoInode;
  std::string path;
  std::uint32_t stripe_count = 0;
  Bytes stripe_size = 0;
};

struct FsHealthReport {
  std::uint32_t ost_count = 0;
  std::uint32_t failed_osts = 0;
  std::uint64_t files = 0;
  /// Occupancy census over every file currently in the namespace.
  ObservedContention occupancy;
  /// Files with the widest layouts (the stripe hogs), widest first.
  std::vector<FileFootprint> top_consumers;
  /// Pools and their sizes.
  std::vector<std::pair<std::string, std::size_t>> pools;
  /// Mean stripe request across files (the "average workload" the paper's
  /// purchasing discussion reasons about).
  double mean_stripe_request = 0.0;
  /// Predicted load if `k` more files of the mean shape are created,
  /// k = 1..5 (Eq. 1 applied on top of the observed state).
  std::vector<double> projected_load;
};

/// Take the snapshot (instantaneous; no simulated cost).
FsHealthReport collect_health_report(const lustre::FileSystem& fs,
                                     std::size_t top_n = 5);

/// Render as a human-readable multi-table string.
std::string format_health_report(const FsHealthReport& report);

}  // namespace pfsc::core
