#include "core/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "support/error.hpp"

namespace pfsc::core {

double d_inuse(std::span<const double> requests, double d_total) {
  PFSC_REQUIRE(d_total > 0.0, "d_inuse: d_total must be positive");
  double in_use = 0.0;
  for (double r : requests) {
    PFSC_REQUIRE(r >= 0.0 && r <= d_total, "d_inuse: request out of range");
    in_use += r - (in_use / d_total) * r;  // Eq. 1
  }
  return in_use;
}

double d_inuse_uniform(double r, unsigned n, double d_total) {
  PFSC_REQUIRE(d_total > 0.0, "d_inuse_uniform: d_total must be positive");
  PFSC_REQUIRE(r >= 0.0 && r <= d_total, "d_inuse_uniform: r out of range");
  // Eq. 2
  return d_total - d_total * std::pow(1.0 - r / d_total, static_cast<double>(n));
}

double d_req(double r, unsigned n) { return r * static_cast<double>(n); }

double d_load(double r, unsigned n, double d_total) {
  if (n == 0) return 0.0;
  const double in_use = d_inuse_uniform(r, n, d_total);
  PFSC_REQUIRE(in_use > 0.0, "d_load: no OSTs in use");
  return d_req(r, n) / in_use;  // Eq. 4
}

double plfs_d_inuse(unsigned ranks, double d_total, double stripes_per_rank) {
  return d_inuse_uniform(stripes_per_rank, ranks, d_total);  // Eq. 5
}

double plfs_d_load(unsigned ranks, double d_total, double stripes_per_rank) {
  if (ranks == 0) return 0.0;
  return d_req(stripes_per_rank, ranks) /
         plfs_d_inuse(ranks, d_total, stripes_per_rank);  // Eq. 6
}

std::vector<double> occupancy_expectation(unsigned d_total, unsigned n,
                                          unsigned r) {
  PFSC_REQUIRE(d_total > 0, "occupancy_expectation: d_total must be positive");
  PFSC_REQUIRE(r <= d_total, "occupancy_expectation: r > d_total");
  const double p = static_cast<double>(r) / static_cast<double>(d_total);
  std::vector<double> out(static_cast<std::size_t>(n) + 1, 0.0);
  // Binomial pmf in log space for numerical stability at large n.
  const double log_p = p > 0.0 ? std::log(p) : 0.0;
  const double log_q = p < 1.0 ? std::log1p(-p) : 0.0;
  for (unsigned k = 0; k <= n; ++k) {
    if ((p == 0.0 && k > 0) || (p == 1.0 && k < n)) continue;
    const double log_choose = std::lgamma(static_cast<double>(n) + 1.0) -
                              std::lgamma(static_cast<double>(k) + 1.0) -
                              std::lgamma(static_cast<double>(n - k) + 1.0);
    const double log_pmf = log_choose + static_cast<double>(k) * log_p +
                           static_cast<double>(n - k) * log_q;
    out[k] = static_cast<double>(d_total) * std::exp(log_pmf);
  }
  return out;
}

std::vector<double> occupancy_monte_carlo(unsigned d_total, unsigned n,
                                          unsigned r, Rng& rng,
                                          unsigned reps) {
  PFSC_REQUIRE(reps > 0, "occupancy_monte_carlo: reps must be positive");
  std::vector<double> acc(static_cast<std::size_t>(n) + 1, 0.0);
  std::vector<std::uint32_t> counts(d_total);
  for (unsigned rep = 0; rep < reps; ++rep) {
    std::fill(counts.begin(), counts.end(), 0u);
    for (unsigned j = 0; j < n; ++j) {
      for (auto ost : rng.sample_without_replacement(d_total, r)) ++counts[ost];
    }
    for (auto c : counts) acc[c] += 1.0;
  }
  for (auto& v : acc) v /= static_cast<double>(reps);
  return acc;
}

std::vector<ContentionPoint> contention_table(double r, unsigned max_jobs,
                                              double d_total) {
  std::vector<ContentionPoint> out;
  out.reserve(max_jobs);
  for (unsigned n = 1; n <= max_jobs; ++n) {
    ContentionPoint pt;
    pt.jobs = n;
    pt.d_inuse = d_inuse_uniform(r, n, d_total);
    pt.d_req = d_req(r, n);
    pt.d_load = pt.d_req / pt.d_inuse;
    out.push_back(pt);
  }
  return out;
}

StripeAdvice advise_stripe_count(double d_total, unsigned expected_jobs,
                                 double load_budget,
                                 std::uint32_t max_stripes) {
  PFSC_REQUIRE(load_budget >= 1.0, "advise_stripe_count: budget below 1 is unsatisfiable");
  StripeAdvice advice;
  for (std::uint32_t r = 1; r <= max_stripes &&
                            static_cast<double>(r) <= d_total; ++r) {
    const double load = d_load(static_cast<double>(r), expected_jobs, d_total);
    // Tolerate pow()'s last-ulp noise so e.g. a single job at R = D_total
    // (exactly load 1.0) passes a budget of 1.0.
    if (load <= load_budget * (1.0 + 1e-12)) {
      advice.recommended_stripes = r;
      advice.predicted_load = load;
      advice.predicted_inuse =
          d_inuse_uniform(static_cast<double>(r), expected_jobs, d_total);
    }
  }
  return advice;
}

unsigned plfs_cores_at_load(double d_total, double load_threshold,
                            double stripes_per_rank) {
  PFSC_REQUIRE(load_threshold >= 1.0, "plfs_cores_at_load: threshold below 1");
  // D_load is monotone increasing in n; binary search the crossover.
  unsigned lo = 1;
  unsigned hi = 1;
  while (plfs_d_load(hi, d_total, stripes_per_rank) < load_threshold) {
    lo = hi;
    hi *= 2;
    if (hi > (1u << 28)) return hi;  // threshold effectively unreachable
  }
  while (lo < hi) {
    const unsigned mid = lo + (hi - lo) / 2;
    if (plfs_d_load(mid, d_total, stripes_per_rank) < load_threshold) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

namespace {

/// log of the Binomial(n, p) pmf at k.
double log_binom_pmf(unsigned n, double p, unsigned k) {
  if (p <= 0.0) return k == 0 ? 0.0 : -std::numeric_limits<double>::infinity();
  if (p >= 1.0) return k == n ? 0.0 : -std::numeric_limits<double>::infinity();
  const double log_choose = std::lgamma(static_cast<double>(n) + 1.0) -
                            std::lgamma(static_cast<double>(k) + 1.0) -
                            std::lgamma(static_cast<double>(n - k) + 1.0);
  return log_choose + static_cast<double>(k) * std::log(p) +
         static_cast<double>(n - k) * std::log1p(-p);
}

}  // namespace

double occupancy_cdf(unsigned d_total, unsigned n, unsigned r, unsigned k) {
  PFSC_REQUIRE(d_total > 0, "occupancy_cdf: d_total must be positive");
  PFSC_REQUIRE(r <= d_total, "occupancy_cdf: r > d_total");
  if (k >= n) return 1.0;
  const double p = static_cast<double>(r) / static_cast<double>(d_total);
  double cdf = 0.0;
  for (unsigned j = 0; j <= k; ++j) cdf += std::exp(log_binom_pmf(n, p, j));
  return std::min(cdf, 1.0);
}

double expected_max_occupancy(unsigned d_total, unsigned n, unsigned r,
                              unsigned targets) {
  PFSC_REQUIRE(targets > 0, "expected_max_occupancy: need >= 1 target");
  // E[max] = sum_{k=0}^{n-1} (1 - P[max <= k]); the occupancies are not
  // exactly independent across OSTs (each job's R picks are without
  // replacement) but the iid approximation is tight for r << d_total and
  // matches Monte Carlo well (see tests).
  double expectation = 0.0;
  for (unsigned k = 0; k < n; ++k) {
    const double cdf = occupancy_cdf(d_total, n, r, k);
    expectation += 1.0 - std::pow(cdf, static_cast<double>(targets));
  }
  return expectation;
}

double predicted_job_slowdown(unsigned d_total, unsigned n, unsigned r) {
  PFSC_REQUIRE(n >= 1, "predicted_job_slowdown: need >= 1 job");
  if (n == 1) return 1.0;
  // Each of this job's R OSTs is additionally used by Binomial(n-1, R/D)
  // other jobs; the job drains at the pace of its most-shared target.
  const double p = static_cast<double>(r) / static_cast<double>(d_total);
  double expectation = 0.0;
  for (unsigned k = 0; k + 1 < n; ++k) {
    double cdf = 0.0;
    for (unsigned j = 0; j <= k; ++j) cdf += std::exp(log_binom_pmf(n - 1, p, j));
    expectation += 1.0 - std::pow(std::min(cdf, 1.0), static_cast<double>(r));
  }
  return 1.0 + expectation;
}

ObservedContention observe(std::span<const std::uint32_t> per_ost_counts) {
  ObservedContention obs;
  std::uint32_t max_k = 0;
  for (auto c : per_ost_counts) {
    if (c > 0) {
      obs.d_inuse += 1.0;
      obs.d_req += static_cast<double>(c);
    }
    max_k = std::max(max_k, c);
  }
  obs.histogram.assign(max_k + 1, 0);
  for (auto c : per_ost_counts) ++obs.histogram[c];
  obs.d_load = obs.d_inuse > 0.0 ? obs.d_req / obs.d_inuse : 0.0;
  return obs;
}

}  // namespace pfsc::core
