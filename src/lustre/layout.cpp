#include "lustre/layout.hpp"

#include <algorithm>

#include "support/error.hpp"

namespace pfsc::lustre {

LayoutSegment locate(const StripeLayout& layout, Bytes offset) {
  PFSC_REQUIRE(layout.stripe_size > 0 && !layout.osts.empty(),
               "locate: layout not resolved");
  const Bytes stripe = offset / layout.stripe_size;
  const Bytes within = offset % layout.stripe_size;
  const auto count = static_cast<Bytes>(layout.osts.size());
  LayoutSegment seg;
  seg.layout_index = static_cast<std::uint32_t>(stripe % count);
  seg.object_offset = (stripe / count) * layout.stripe_size + within;
  seg.length = layout.stripe_size - within;
  seg.file_offset = offset;
  return seg;
}

std::vector<LayoutSegment> segments(const StripeLayout& layout, Bytes offset,
                                    Bytes length) {
  std::vector<LayoutSegment> out;
  Bytes pos = offset;
  Bytes remaining = length;
  while (remaining > 0) {
    LayoutSegment seg = locate(layout, pos);
    seg.length = std::min<Bytes>(seg.length, remaining);
    pos += seg.length;
    remaining -= seg.length;
    // Merge with the previous segment when the stripe pattern keeps us on
    // the same object contiguously (stripe_count == 1).
    if (!out.empty() && out.back().layout_index == seg.layout_index &&
        out.back().object_offset + out.back().length == seg.object_offset) {
      out.back().length += seg.length;
    } else {
      out.push_back(seg);
    }
  }
  return out;
}

}  // namespace pfsc::lustre
