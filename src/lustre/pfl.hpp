// PFL-style progressive file layouts, reduced to the property this model
// cares about: stripe count as a function of expected file size.
//
// Real Lustre PFL gives one file several components, each striping a byte
// range ("first GiB on 1 OST, next TiB on 16, rest on all"). Here a file's
// layout is fixed at create time, so the composite collapses to choosing
// the component the file's expected size lands in: small files get few
// stripes (less per-file metadata and contention footprint), large files
// get wide layouts (parallel bandwidth). See *Evaluating Dynamic File
// Striping For Lustre* (PAPERS.md) for why size-driven stripe choice pays
// off, and ISSUE 9 for how the control plane installs/retunes the spec.
#pragma once

#include <cstdint>
#include <vector>

#include "support/error.hpp"
#include "support/units.hpp"

namespace pfsc::lustre {

/// Size-class table mapping an expected file size to a stripe count.
struct PflSpec {
  struct Class {
    /// Files with size_hint <= up_to fall in this class.
    Bytes up_to = 0;
    std::uint32_t stripe_count = 0;
  };

  /// Ascending by up_to; a hint beyond the last class uses `wide`.
  std::vector<Class> classes;
  /// Stripe count for files larger than every class (0 = platform
  /// default, i.e. "stripe as the file system would have anyway").
  std::uint32_t wide = 0;

  bool empty() const { return classes.empty() && wide == 0; }

  /// Stripe count for a file expected to reach `size_hint` bytes; 0 means
  /// "no opinion, use the platform default".
  std::uint32_t choose(Bytes size_hint) const {
    for (const Class& c : classes) {
      if (size_hint <= c.up_to) return c.stripe_count;
    }
    return wide;
  }

  /// Classes must be ascending with positive stripe counts.
  void validate() const {
    Bytes prev = 0;
    for (const Class& c : classes) {
      PFSC_REQUIRE(c.up_to > prev, "PflSpec: classes must ascend by up_to");
      PFSC_REQUIRE(c.stripe_count > 0,
                   "PflSpec: class stripe_count must be positive");
      prev = c.up_to;
    }
  }
};

}  // namespace pfsc::lustre
