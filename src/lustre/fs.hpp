// Simulated Lustre file system: metadata server, namespace, OST allocation,
// and the server-side hardware (fabric, OSS pipes, OST disks).
//
// The MDS resolves paths, creates layouts and journals namespace changes;
// metadata operations cost simulated time and are limited to
// `mds_parallelism` concurrent services. Data movement happens in
// lustre::Client, which uses the pipes and disks exposed here.
//
// OST assignment follows the paper's description of lscratchc: "targets
// assigned at random (based on current usage, to maintain an approximately
// even capacity)". AllocPolicy::uniform_random reproduces that (and the
// binomial occupancy statistics of Eq. 1-6); round_robin exists as an
// ablation.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "hw/disk.hpp"
#include "hw/platform.hpp"
#include "lustre/errors.hpp"
#include "lustre/extent_map.hpp"
#include "lustre/layout.hpp"
#include "lustre/pfl.hpp"
#include "lustre/placement.hpp"
#include "lustre/sched/scheduler.hpp"
#include "sim/engine.hpp"
#include "sim/link.hpp"
#include "sim/resources.hpp"
#include "sim/task.hpp"
#include "support/rng.hpp"

namespace pfsc::sim {
class ShardSet;
struct Message;
}  // namespace pfsc::sim

namespace pfsc::lustre {

using InodeId = std::uint64_t;
inline constexpr InodeId kNoInode = 0;

struct Inode {
  InodeId id = kNoInode;
  InodeId parent = kNoInode;
  std::string name;
  bool is_dir = false;

  // -- files -----------------------------------------------------------
  StripeLayout layout;
  ExtentMap written;
  Bytes size = 0;
  std::uint32_t open_count = 0;

  // -- directories -------------------------------------------------------
  std::map<std::string, InodeId, std::less<>> entries;
  StripeSettings dir_default;  // lfs setstripe on a directory
  bool has_dir_default = false;
};

/// Legacy allocator selector, kept for source compatibility: it maps onto
/// lustre::PlacementKind (placement.hpp), which is the full policy surface
/// (params.ost_placement). A non-default `ost_placement` wins over the
/// ctor argument.
enum class AllocPolicy {
  uniform_random,  // paper's lscratchc behaviour
  round_robin,     // ablation: perfectly even assignment
};

class FileSystem {
 public:
  /// `shards` (optional) shards the server side of the model: domain 0
  /// keeps the clients, MDS and fabric (`eng` must be its engine), and
  /// each OSS — its scheduler, OSS pipe and its OSTs' disks — is built on
  /// domain 1 + oss mod (domains - 1). Bulk RPCs then cross domains as
  /// mailbox messages under the ShardSet's lookahead, which must equal
  /// params.rpc_latency. Not owned; must outlive the FileSystem.
  FileSystem(sim::Engine& eng, hw::PlatformParams params, std::uint64_t seed,
             AllocPolicy policy = AllocPolicy::uniform_random,
             sim::ShardSet* shards = nullptr);

  FileSystem(const FileSystem&) = delete;
  FileSystem& operator=(const FileSystem&) = delete;

  // -- metadata operations (cost simulated MDS time) --------------------
  sim::Co<Result<InodeId>> create(std::string path, StripeSettings settings);
  sim::Co<Result<InodeId>> open(std::string path);
  sim::Co<Result<InodeId>> mkdir(std::string path);
  sim::Co<Errno> unlink(std::string path);
  sim::Co<Result<std::vector<std::string>>> readdir(std::string path);
  /// lfs setstripe on a directory: default layout for files created inside.
  sim::Co<Errno> set_dir_stripe(std::string path, StripeSettings settings);

  // -- instantaneous inspection (tests, statistics; no simulated cost) --
  Inode* find(std::string_view path);
  const Inode* find(std::string_view path) const;
  Inode& inode(InodeId id);
  const Inode& inode(InodeId id) const;
  bool exists(std::string_view path) const { return find(path) != nullptr; }
  /// All file inodes under `dir_path` (recursive).
  std::vector<InodeId> files_under(std::string_view dir_path) const;

  // -- data-path plumbing used by lustre::Client -------------------------
  // All links are built through sim::make_link following
  // params().link_policy, so every data path shares capacity under the
  // platform's configured model.
  hw::DiskModel& ost_disk(OstIndex ost);
  sim::LinkModel& oss_pipe_for_ost(OstIndex ost);
  sim::LinkModel& fabric() { return *fabric_; }
  sim::LinkModel& oss_pipe(std::uint32_t oss) {
    PFSC_REQUIRE(oss < oss_pipes_.size(), "oss_pipe: bad index");
    return *oss_pipes_[oss];
  }
  sim::Engine& engine() { return *eng_; }
  const hw::PlatformParams& params() const { return params_; }

  // -- sharded execution -------------------------------------------------
  /// The server half of one bulk RPC, from arrival latency to reply
  /// latency: request hop, scheduler admission, OSS pipe, disk service,
  /// completion, reply hop. Single-engine runs inline the historical
  /// await sequence; sharded runs post a request message to the owning
  /// OSS domain and suspend until its reply message resumes the caller —
  /// same events, same timestamps, different thread.
  sim::Co<void> oss_round_trip(sched::JobId job, OstIndex ost, ObjectId object,
                               Bytes object_offset, Bytes bytes,
                               bool is_write);

  /// Run the simulation to completion: the shard coordinator when sharded,
  /// the plain engine otherwise (mpi::Runtime::run_to_completion calls
  /// this instead of engine().run()).
  void run_all();

  bool sharded() const { return shards_ != nullptr; }
  /// Domain owning OSS `oss`; 0 when the run is not sharded.
  std::uint32_t domain_of_oss(std::uint32_t oss) const;
  std::uint32_t domain_of_ost(OstIndex ost) const {
    return domain_of_oss(ost % params_.oss_count);
  }

  /// Liveness token for telemetry probes: a probe capturing `this` must
  /// hold a weak_ptr of this token and assert it is not expired before
  /// dereferencing (trace::Sampler's probe packs do; see telemetry.hpp).
  /// Probes must not outlive their FileSystem.
  std::shared_ptr<const void> liveness() const { return live_; }

  // -- OSS request scheduling --------------------------------------------
  // One scheduler per OSS (built by sched::make_scheduler following
  // params().oss_sched_policy) gates every bulk RPC between its arrival
  // at the OSS and the link/disk service underneath.
  sched::Scheduler& oss_sched(std::uint32_t oss) {
    PFSC_REQUIRE(oss < oss_scheds_.size(), "oss_sched: bad index");
    return *oss_scheds_[oss];
  }
  sched::Scheduler& sched_for_ost(OstIndex ost);
  /// Pending (not yet granted) requests summed over all OSS schedulers.
  std::size_t sched_queue_depth() const;
  /// Granted-but-uncompleted requests summed over all OSS schedulers.
  std::size_t sched_in_service() const;
  /// Served bytes per job, merged across all OSS schedulers.
  std::map<sched::JobId, Bytes> sched_served_by_job() const;
  /// Jain fairness index over the merged per-job served bytes.
  double sched_jain() const;

  // -- OST pools (lfs pool_* semantics) ----------------------------------
  /// Create an empty pool; EEXIST if it already exists.
  Errno pool_new(const std::string& name);
  /// Add OSTs to a pool; ENOENT if the pool does not exist.
  Errno pool_add(const std::string& name, std::span<const OstIndex> osts);
  /// Members of a pool; ENOENT if it does not exist.
  Result<std::vector<OstIndex>> pool_members(const std::string& name) const;
  std::vector<std::string> pool_names() const;

  // -- health / failure injection ----------------------------------------
  void fail_ost(OstIndex ost);
  void restore_ost(OstIndex ost);
  /// Degrade (or restore with factor 1.0) an OST's service rate; models a
  /// RAID rebuild slowing the volume without taking it offline.
  void degrade_ost(OstIndex ost, double factor);
  bool ost_failed(OstIndex ost) const;
  std::uint32_t healthy_ost_count() const;

  // -- runtime-retunable endpoints (control plane; ctrl/ wraps these) ----
  // All three are instantaneous administrative actions: they schedule no
  // engine events and only affect files created afterwards, so a run that
  // never calls them is bit-for-bit unchanged.
  /// Swap the placement policy allocating new-file OST sets.
  void set_placement(PlacementKind kind) { placement_ = make_placement(kind); }
  /// Install (or clear, with a default-constructed spec) the PFL size-class
  /// table consulted by effective_settings() for creates that default their
  /// stripe count and carry a size_hint.
  void set_pfl(PflSpec spec);
  const PflSpec& pfl() const { return pfl_; }
  /// set_dir_stripe without the simulated MDS round trip: the control
  /// plane's administrative default-layout change (a controller decision
  /// must not perturb MDS queueing, or `--ctrl` runs would diverge from
  /// their goldens in ways unrelated to the tuning itself).
  Errno set_dir_stripe_now(std::string_view path, StripeSettings settings);

  // -- statistics ---------------------------------------------------------
  /// The effective placement policy allocating new-file OST sets.
  PlacementKind placement_kind() const { return placement_->kind(); }
  /// Objects currently allocated on each OST.
  std::vector<std::uint64_t> objects_per_ost() const { return objects_per_ost_; }
  /// For the given files: how many of them have >= 1 object on each OST.
  std::vector<std::uint32_t> ost_occupancy(std::span<const InodeId> files) const;
  /// Histogram h[k] = number of OSTs used by exactly k of the given files.
  std::vector<std::uint32_t> collision_histogram(std::span<const InodeId> files) const;
  std::uint64_t files_created() const { return files_created_; }
  Bytes total_bytes_written() const;

 private:
  sim::Co<void> mds_op(Seconds cost);
  /// Engine the given OSS's objects live on (domain engine when sharded).
  sim::Engine& engine_for_oss(std::uint32_t oss);
  /// Mailbox delivery handler, installed on every domain.
  void deliver_message(sim::Engine& eng, std::uint32_t src,
                       const sim::Message& m);
  /// Server task spawned per delivered RPC request on the OSS domain.
  sim::Task serve_rpc(sim::Message m);
  /// Deferred forget_stream on the OST's owning domain (sharded unlink).
  sim::Task forget_stream_task(sim::Message m);
  Result<InodeId> resolve(std::string_view path) const;
  /// Resolve all but the last component; returns (parent inode, leaf name).
  Result<std::pair<InodeId, std::string>> resolve_parent(std::string_view path) const;
  Result<std::vector<OstIndex>> allocate_osts(const StripeSettings& settings);
  StripeSettings effective_settings(const Inode& dir, StripeSettings req) const;
  Inode& new_inode(bool is_dir, InodeId parent, std::string name);

  sim::Engine* eng_;
  sim::ShardSet* shards_ = nullptr;
  hw::PlatformParams params_;
  std::unique_ptr<PlacementPolicy> placement_;
  PflSpec pfl_;
  Rng rng_;
  std::shared_ptr<const void> live_ = std::make_shared<int>(0);

  std::unique_ptr<sim::LinkModel> fabric_;
  std::vector<std::unique_ptr<sim::LinkModel>> oss_pipes_;
  std::vector<std::unique_ptr<sched::Scheduler>> oss_scheds_;
  std::vector<std::unique_ptr<hw::DiskModel>> ost_disks_;
  std::vector<bool> ost_failed_;
  std::vector<std::uint64_t> objects_per_ost_;

  sim::Resource mds_slots_;
  std::vector<std::unique_ptr<Inode>> inodes_;  // index = InodeId - 1
  InodeId root_ = kNoInode;
  ObjectId next_object_ = 1;
  std::uint64_t files_created_ = 0;
  std::map<std::string, std::vector<OstIndex>, std::less<>> pools_;
};

/// Split "/a/b/c" into components; rejects empty components.
std::vector<std::string_view> split_path(std::string_view path);

}  // namespace pfsc::lustre
