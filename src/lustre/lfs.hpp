// `lfs`-style administrative helpers (setstripe / getstripe / df), matching
// the control operations the paper mentions ("unless otherwise specified
// using the lfs control program").
#pragma once

#include "lustre/fs.hpp"

namespace pfsc::lustre {

struct StripeInfo {
  std::uint32_t stripe_count = 0;
  Bytes stripe_size = 0;
  std::vector<OstIndex> osts;  // empty for directory defaults
};

/// `lfs setstripe <dir>`: set the default layout for files created in `dir`.
sim::Co<Errno> lfs_setstripe(FileSystem& fs, std::string dir_path,
                             StripeSettings settings);

/// `lfs getstripe <path>`: report the layout of a file, or the default
/// layout of a directory (falls back to file-system defaults).
Result<StripeInfo> lfs_getstripe(const FileSystem& fs, std::string_view path);

struct DfEntry {
  OstIndex ost = 0;
  std::uint64_t objects = 0;
  bool failed = false;
};

/// `lfs df`-style per-OST usage summary.
std::vector<DfEntry> lfs_df(const FileSystem& fs);

/// `lfs pool_new <fsname>.<pool>`.
Errno lfs_pool_new(FileSystem& fs, const std::string& pool);
/// `lfs pool_add <fsname>.<pool> <osts>`.
Errno lfs_pool_add(FileSystem& fs, const std::string& pool,
                   std::span<const OstIndex> osts);
/// `lfs pool_list <fsname>.<pool>`.
Result<std::vector<OstIndex>> lfs_pool_list(const FileSystem& fs,
                                            const std::string& pool);

}  // namespace pfsc::lustre
