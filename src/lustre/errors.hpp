// Simulated file-system error codes.
//
// Recoverable I/O failures travel as codes (like a real client sees errno)
// so tests can exercise failure paths; API misuse still throws UsageError.
#pragma once

#include "support/error.hpp"

namespace pfsc::lustre {

enum class Errno {
  ok = 0,
  enoent,   // no such file or directory
  eexist,   // file already exists
  enospc,   // not enough healthy OSTs to satisfy the layout
  eio,      // backing OST failed mid-operation
  einval,   // invalid argument (bad layout request, bad offset)
  enotdir,  // path component is not a directory
  eisdir,   // directory where a file was expected
  ebadf,    // stale/closed handle
};

const char* errno_name(Errno e);

/// Value-or-error result for simulated syscalls.
template <typename T>
struct Result {
  Errno err = Errno::ok;
  T value{};

  bool ok() const { return err == Errno::ok; }

  /// Unwrap for tests/examples where failure is a bug.
  T& expect(const char* what) {
    if (!ok()) {
      throw SimulationError(std::string(what) + ": " + errno_name(err));
    }
    return value;
  }

  static Result failure(Errno e) { return Result{e, T{}}; }
  static Result success(T v) { return Result{Errno::ok, std::move(v)}; }
};

}  // namespace pfsc::lustre
