// Token-bucket scheduler: per-job rate caps (isolation, not fairness).
//
// Each job owns a bucket that fills at `job_rate` up to `bucket_depth`
// (full at first use). A request is granted when the bucket holds
// min(bytes, depth) tokens — so a request larger than the whole bucket
// needs only a full bucket, not an impossible balance — and then debits
// its FULL size, driving the bucket into debt that later refill has to
// pay off. Net effect: any request mix is eventually served (no
// starvation) but every job's long-run service rate converges to
// job_rate, which is the "what isolation does a rate cap buy" question
// bench/ablation_qos asks of the paper's Fig. 3 quartet.
//
// Requests within one job grant strictly FIFO (a queued head blocks the
// queue even if a later, smaller request would fit the balance). Jobs are
// independent: there is no cross-job coupling and no service-slot cap,
// so the policy shapes rather than schedules. Waiting queues wake via
// generation-counted timers sized to the head request's token deficit;
// stale timers no-op, exactly like FairSharePipe's wakeups.
#pragma once

#include <coroutine>
#include <cstdint>
#include <deque>
#include <map>

#include "lustre/sched/scheduler.hpp"

namespace pfsc::lustre::sched {

class TokenBucketSched final : public Scheduler {
 public:
  TokenBucketSched(sim::Engine& eng, SchedTuning tuning);

  sim::Co<void> admit(JobId job, Bytes bytes) override;
  SchedPolicy policy() const override { return SchedPolicy::token_bucket; }
  void check_invariants() const override;

  /// Current token balance of a job's bucket (diagnostics/tests); may be
  /// negative while the bucket pays off an oversized grant.
  double tokens(JobId job) const;

 private:
  struct Pending {
    Bytes bytes = 0;
    std::coroutine_handle<> waiter;
    std::uint64_t trace_id = 0;  // note_submitted's span, ended at grant
  };
  struct Bucket {
    double tokens = 0.0;   // may go negative (debt from oversize grants)
    Seconds last = 0.0;    // when `tokens` was last brought up to date
    std::deque<Pending> q;
    std::uint64_t timer_generation = 0;
  };
  struct AdmitAwaiter;

  /// Tokens a request of `bytes` must hold to be granted.
  double need(Bytes bytes) const;
  Bucket& bucket(JobId job);
  /// Accrue tokens for elapsed time, capped at bucket_depth.
  void refill(Bucket& b);
  /// Grant from the queue head while the balance allows; re-arms the
  /// wake timer if requests remain.
  void drain(JobId job);
  void arm(JobId job, Bucket& b);
  sim::Task wakeup(JobId job, std::uint64_t generation, Seconds dt);
  void on_retune(const SchedTuning& previous) override;

  std::map<JobId, Bucket> buckets_;
};

}  // namespace pfsc::lustre::sched
