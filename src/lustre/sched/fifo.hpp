// FIFO (null) scheduler: requests proceed to the OSS link in arrival
// order with no admission control, exactly as the data path behaved
// before the scheduler layer existed.
//
// admit() never suspends: a Co<void> that co_returns immediately runs
// synchronously via symmetric transfer and schedules ZERO engine events,
// so the event sequence — and therefore every golden number — is
// bit-for-bit identical to the pre-scheduler tree. The golden regression
// tests pin this.
#pragma once

#include "lustre/sched/scheduler.hpp"

namespace pfsc::lustre::sched {

class FifoSched final : public Scheduler {
 public:
  using Scheduler::Scheduler;

  sim::Co<void> admit(JobId job, Bytes bytes) override;
  SchedPolicy policy() const override { return SchedPolicy::fifo; }
};

}  // namespace pfsc::lustre::sched
