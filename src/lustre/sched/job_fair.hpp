// Deficit-round-robin scheduler: equal byte shares per job.
//
// Each job has a FIFO queue of pending requests; jobs with a backlog sit
// in an active rotation. A visit adds `quantum` to the job's deficit
// counter and grants head-of-line requests while the deficit covers them;
// an emptied queue leaves the rotation and forfeits its deficit. The
// classic DRR bound applies: over any backlogged interval, two jobs'
// served bytes differ by at most quantum + max request size per round —
// independent of how many ranks a job runs or what RPC sizes it uses,
// which is exactly the asymmetry that lets one job of the paper's Fig. 3
// quartet crowd out the others under FIFO.
//
// `service_slots` caps requests granted but not yet completed. The cap is
// what gives the policy leverage (a backlog must wait where DRR can
// reorder it instead of queueing at the OSS link), and is sized to keep
// the link + disk pipeline saturated so total bandwidth stays at FIFO
// levels (bench/ablation_qos verifies both properties).
//
// Under light load (no backlog, free slots) admit grants synchronously
// without touching the engine, so an uncontended data path costs nothing.
#pragma once

#include <coroutine>
#include <deque>
#include <map>

#include "lustre/sched/scheduler.hpp"

namespace pfsc::lustre::sched {

class JobFairSched final : public Scheduler {
 public:
  JobFairSched(sim::Engine& eng, SchedTuning tuning);

  sim::Co<void> admit(JobId job, Bytes bytes) override;
  SchedPolicy policy() const override { return SchedPolicy::job_fair; }
  void check_invariants() const override;

  /// Jobs currently holding a backlog (diagnostics/tests).
  std::size_t backlogged_jobs() const { return active_.size(); }

 private:
  struct Pending {
    Bytes bytes = 0;
    std::coroutine_handle<> waiter;
    std::uint64_t trace_id = 0;  // note_submitted's span, ended at grant
  };
  struct AdmitAwaiter;

  /// Grant queued requests round-robin until the slots fill or the
  /// backlog drains. Never resumes a waiter inline: granted waiters are
  /// scheduled on the engine, so pump() is safe to call from complete().
  void pump();
  void on_complete() override;
  void on_retune(const SchedTuning& previous) override;

  std::map<JobId, std::deque<Pending>> queues_;
  std::deque<JobId> active_;           // jobs with a non-empty queue
  std::map<JobId, Bytes> deficit_;     // per active job
  /// Grants legitimately in service beyond service_slots after a mid-run
  /// slot shrink. A retune cannot recall requests already at the disk, so
  /// the cap is honoured going forward: no new grants until completions
  /// pay the excess down (it never grows between retunes).
  std::size_t overcommit_ = 0;
};

}  // namespace pfsc::lustre::sched
