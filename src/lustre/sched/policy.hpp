// Scheduler policy knobs, separated from the scheduler implementations so
// hw::PlatformParams can select a policy without depending on the
// coroutine machinery (hw sits below lustre in the link graph; this header
// is deliberately header-only with support-level includes).
//
//  * JobId       — who a request belongs to. The paper's whole-system
//                  result (Fig. 3, Table V) is that OSTs serve competing
//                  streams with no notion of the owning job; tagging every
//                  RPC with a JobId is the prerequisite for any server-side
//                  QoS. Job 0 (`kDefaultJob`) is "untagged" traffic;
//                  harness noise writers use `kNoiseJobBase + i` so they
//                  never collide with real jobs.
//  * SchedPolicy — which sched::Scheduler implementation each OSS runs
//                  (see sched/scheduler.hpp), selected fleet-wide via
//                  hw::PlatformParams::oss_sched_policy.
//  * SchedTuning — the per-policy constants, carried alongside the policy
//                  in PlatformParams so experiments can sweep them.
#pragma once

#include <cstddef>
#include <cstdint>

#include "support/error.hpp"
#include "support/units.hpp"

namespace pfsc::lustre::sched {

/// Identity of the job (application run) a request belongs to.
using JobId = std::uint32_t;

/// Untagged traffic: clients that never call set_job().
inline constexpr JobId kDefaultJob = 0;

/// Harness background-noise writers are tagged kNoiseJobBase + i, keeping
/// them distinct from real jobs (which count up from 0).
inline constexpr JobId kNoiseJobBase = 1u << 16;

enum class SchedPolicy {
  fifo,          // arrival order, no admission control (historical default)
  job_fair,      // deficit round robin: equal byte share per job
  token_bucket,  // per-job rate cap (isolation, not work conservation)
};

const char* sched_policy_name(SchedPolicy policy);

/// Tuning constants for the non-trivial policies. Defaults are sized for
/// the paper's lscratchc platform (600 MB/s OSS links, 4 MiB max RPC).
struct SchedTuning {
  /// job_fair: deficit quantum added per round-robin visit. One max-size
  /// RPC keeps the per-round byte-share deviation at its minimum while
  /// still letting every visit grant at least one request.
  Bytes quantum = 4_MiB;
  /// job_fair: cap on requests in service (granted, not yet completed)
  /// per OSS. High enough to keep the link + disk pipeline saturated,
  /// low enough that the backlog waits where the policy can reorder it.
  std::size_t service_slots = 64;
  /// token_bucket: sustained per-job service rate on each OSS.
  BytesPerSecond job_rate = mb_per_sec(150.0);
  /// token_bucket: burst allowance (bucket capacity).
  Bytes bucket_depth = 16_MiB;
};

/// Reject degenerate tunings (zero quantum, no service slots, empty
/// bucket) regardless of which policy consumes them. One shared check so
/// Scenario::validate, the scheduler constructors, and mid-run
/// set_tuning all refuse the same inputs.
inline void validate_tuning(const SchedTuning& t) {
  PFSC_REQUIRE(t.quantum > 0, "SchedTuning: quantum must be positive");
  PFSC_REQUIRE(t.service_slots >= 1,
               "SchedTuning: need at least one service slot");
  PFSC_REQUIRE(t.job_rate > 0.0, "SchedTuning: job_rate must be positive");
  PFSC_REQUIRE(t.bucket_depth > 0,
               "SchedTuning: bucket_depth must be positive");
}

}  // namespace pfsc::lustre::sched
