#include "lustre/sched/scheduler.hpp"

#include <vector>

#include "lustre/sched/fifo.hpp"
#include "lustre/sched/job_fair.hpp"
#include "lustre/sched/token_bucket.hpp"
#include "support/stats.hpp"

namespace pfsc::lustre::sched {

const char* sched_policy_name(SchedPolicy policy) {
  switch (policy) {
    case SchedPolicy::fifo: return "fifo";
    case SchedPolicy::job_fair: return "job_fair";
    case SchedPolicy::token_bucket: return "token_bucket";
  }
  return "?";
}

std::uint64_t Scheduler::note_submitted(JobId job, Bytes bytes) {
  ++queued_;
  submitted_bytes_ += bytes;
  auto* rec = eng_->recorder();
  if (rec == nullptr || !rec->enabled(trace::Cat::sched)) return 0;
  const trace::TrackId track = track_.get(*rec, trace_label_);
  const Seconds now = eng_->now();
  const std::uint64_t id = rec->next_id();
  // The async "wait" span brackets submission -> grant; note_granted ends
  // it, so an instantly-granting policy records a zero-length wait.
  rec->begin(trace::Cat::sched, track, "wait", now, id,
             static_cast<std::int64_t>(job), static_cast<std::int64_t>(bytes));
  rec->counter(trace::Cat::sched, track, "queue", now,
               static_cast<double>(queued_));
  return id;
}

void Scheduler::note_granted(std::uint64_t trace_id, JobId job, Bytes bytes) {
  PFSC_ASSERT(queued_ > 0);
  --queued_;
  ++in_service_;
  admitted_bytes_ += bytes;
  auto* rec = eng_->recorder();
  if (rec == nullptr || !rec->enabled(trace::Cat::sched)) return;
  const trace::TrackId track = track_.get(*rec, trace_label_);
  const Seconds now = eng_->now();
  rec->end(trace::Cat::sched, track, "wait", now, trace_id,
           static_cast<std::int64_t>(job), static_cast<std::int64_t>(bytes));
  rec->counter(trace::Cat::sched, track, "queue", now,
               static_cast<double>(queued_));
  rec->counter(trace::Cat::sched, track, "inflight", now,
               static_cast<double>(in_service_));
}

void Scheduler::complete(JobId job, Bytes bytes) {
  if (in_service_ == 0) {
    throw SimulationError("Scheduler::complete without a matching admit");
  }
  --in_service_;
  served_bytes_ += bytes;
  served_[job] += bytes;
  if (auto* rec = eng_->recorder();
      rec != nullptr && rec->enabled(trace::Cat::sched)) {
    const trace::TrackId track = track_.get(*rec, trace_label_);
    const Seconds now = eng_->now();
    rec->instant(trace::Cat::sched, track, "complete", now,
                 static_cast<std::int64_t>(job),
                 static_cast<std::int64_t>(bytes));
    rec->counter(trace::Cat::sched, track, "inflight", now,
                 static_cast<double>(in_service_));
  }
  on_complete();
}

void Scheduler::set_tuning(const SchedTuning& tuning) {
  validate_tuning(tuning);
  const SchedTuning previous = tuning_;
  tuning_ = tuning;
  on_retune(previous);
}

Bytes Scheduler::served_bytes(JobId job) const {
  const auto it = served_.find(job);
  return it == served_.end() ? 0 : it->second;
}

double Scheduler::jain() const {
  std::vector<double> shares;
  shares.reserve(served_.size());
  for (const auto& [job, bytes] : served_) {
    shares.push_back(static_cast<double>(bytes));
  }
  return jain_index(shares);
}

void Scheduler::check_invariants() const {
  if (admitted_bytes_ > submitted_bytes_) {
    throw SimulationError("Scheduler: admitted more bytes than submitted");
  }
  if (served_bytes_ > admitted_bytes_) {
    throw SimulationError("Scheduler: served more bytes than admitted");
  }
  Bytes per_job = 0;
  for (const auto& [job, bytes] : served_) per_job += bytes;
  if (per_job != served_bytes_) {
    throw SimulationError("Scheduler: per-job served bytes do not sum to total");
  }
}

std::unique_ptr<Scheduler> make_scheduler(sim::Engine& eng, SchedPolicy policy,
                                          SchedTuning tuning) {
  switch (policy) {
    case SchedPolicy::fifo:
      return std::make_unique<FifoSched>(eng, tuning);
    case SchedPolicy::job_fair:
      return std::make_unique<JobFairSched>(eng, tuning);
    case SchedPolicy::token_bucket:
      return std::make_unique<TokenBucketSched>(eng, tuning);
  }
  throw UsageError("make_scheduler: unknown policy");
}

}  // namespace pfsc::lustre::sched
