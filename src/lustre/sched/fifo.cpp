#include "lustre/sched/fifo.hpp"

namespace pfsc::lustre::sched {

sim::Co<void> FifoSched::admit(JobId job, Bytes bytes) {
  const std::uint64_t trace_id = note_submitted(job, bytes);
  note_granted(trace_id, job, bytes);
  co_return;
}

}  // namespace pfsc::lustre::sched
