#include "lustre/sched/fifo.hpp"

namespace pfsc::lustre::sched {

sim::Co<void> FifoSched::admit(JobId job, Bytes bytes) {
  note_submitted(job, bytes);
  note_granted(bytes);
  co_return;
}

}  // namespace pfsc::lustre::sched
