#include "lustre/sched/job_fair.hpp"

#include <algorithm>

namespace pfsc::lustre::sched {

JobFairSched::JobFairSched(sim::Engine& eng, SchedTuning tuning)
    : Scheduler(eng, tuning) {
  PFSC_REQUIRE(tuning.quantum > 0, "JobFairSched: quantum must be positive");
  PFSC_REQUIRE(tuning.service_slots >= 1,
               "JobFairSched: need at least one service slot");
}

struct JobFairSched::AdmitAwaiter {
  JobFairSched* sched;
  JobId job;
  Bytes bytes;
  std::uint64_t trace_id;

  bool await_ready() const {
    // Fast path: nothing is backlogged and a slot is free — grant in
    // arrival order without suspending (no engine events).
    if (sched->active_.empty() &&
        sched->in_service() < sched->tuning_.service_slots) {
      sched->note_granted(trace_id, job, bytes);
      return true;
    }
    return false;
  }
  void await_suspend(std::coroutine_handle<> h) {
    auto& q = sched->queues_[job];
    if (q.empty()) sched->active_.push_back(job);
    q.push_back(Pending{bytes, h, trace_id});
    sched->pump();
  }
  void await_resume() const {}
};

sim::Co<void> JobFairSched::admit(JobId job, Bytes bytes) {
  const std::uint64_t trace_id = note_submitted(job, bytes);
  co_await AdmitAwaiter{this, job, bytes, trace_id};
}

void JobFairSched::pump() {
  while (in_service() < tuning_.service_slots && !active_.empty()) {
    const JobId job = active_.front();
    auto& q = queues_[job];
    PFSC_ASSERT(!q.empty());
    Bytes& deficit = deficit_[job];
    if (deficit >= q.front().bytes) {
      // The deficit covers the head request: grant it and stay on this
      // job (DRR serves a job while its deficit lasts).
      const Pending head = q.front();
      q.pop_front();
      deficit -= head.bytes;
      note_granted(head.trace_id, job, head.bytes);
      eng_->schedule_after(head.waiter, 0.0);
      if (q.empty()) {
        // Drained: leave the rotation and forfeit the residual deficit
        // (a job must hold a backlog to bank credit).
        active_.pop_front();
        queues_.erase(job);
        deficit_.erase(job);
      }
      continue;
    }
    // End of this job's turn: bank one quantum and rotate to the back.
    deficit += tuning_.quantum;
    active_.pop_front();
    active_.push_back(job);
  }
}

void JobFairSched::on_complete() {
  // A completion pays down any post-retune excess before it frees a
  // grantable slot.
  if (overcommit_ > 0) {
    overcommit_ = in_service() > tuning_.service_slots
                      ? in_service() - tuning_.service_slots
                      : 0;
  }
  pump();
}

void JobFairSched::on_retune(const SchedTuning& previous) {
  (void)previous;  // deficits and queues carry over unchanged
  // Shrinking service_slots below the in-service count cannot recall
  // grants; remember the excess so check_invariants() stays truthful and
  // pump() stays closed until completions absorb it. A growth retune
  // clears any residue and immediately fills the new slots.
  overcommit_ = in_service() > tuning_.service_slots
                    ? in_service() - tuning_.service_slots
                    : 0;
  pump();
}

void JobFairSched::check_invariants() const {
  Scheduler::check_invariants();
  if (in_service() > tuning_.service_slots + overcommit_) {
    throw SimulationError("JobFairSched: in-service count exceeds slots");
  }
  std::size_t pending = 0;
  for (const auto& [job, q] : queues_) {
    if (q.empty()) {
      throw SimulationError("JobFairSched: empty queue left in the map");
    }
    if (std::count(active_.begin(), active_.end(), job) != 1) {
      throw SimulationError("JobFairSched: backlogged job not in rotation");
    }
    pending += q.size();
  }
  if (active_.size() != queues_.size()) {
    throw SimulationError("JobFairSched: rotation lists a job with no queue");
  }
  if (pending != queue_depth()) {
    throw SimulationError("JobFairSched: queue sizes do not sum to depth");
  }
}

}  // namespace pfsc::lustre::sched
