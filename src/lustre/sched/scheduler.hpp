// Per-OSS request scheduling (Lustre NRS shape): the pluggable policy
// point between client RPC arrival at an OSS and the OSS link/disk
// service underneath.
//
// Every bulk RPC calls `admit(job, bytes)` when it reaches its OSS and
// `complete(job, bytes)` when the disk finishes serving it. A policy
// decides only *when* admit resumes; the service path itself (OSS link,
// OST disk elevator) is untouched, so policies reorder and pace the
// backlog without changing what service costs.
//
//  * FifoSched        — grants instantly, in arrival order. An immediately
//                       returning Co<void> adds zero engine events, so the
//                       data path is bit-for-bit the pre-scheduler
//                       behaviour (pinned by the golden regression tests).
//  * JobFairSched     — deficit round robin across JobIds with a bounded
//                       number of in-service requests: each round a job's
//                       deficit grows by one quantum and it may send
//                       requests while the deficit covers them, so
//                       backlogged jobs get equal byte shares regardless
//                       of how many ranks or how large the RPCs they use
//                       (sched/job_fair.hpp).
//  * TokenBucketSched — classic TBF per job: tokens accrue at `job_rate`
//                       up to `bucket_depth`; a request needs a full
//                       bucket's worth (or its own size, if smaller) to be
//                       granted and then debits its full size, so a job's
//                       long-run service rate is capped independent of
//                       request size mix (sched/token_bucket.hpp).
//
// `make_scheduler` is the factory lustre::FileSystem builds one scheduler
// per OSS through, driven by hw::PlatformParams::oss_sched_policy —
// mirroring how sim::make_link selects the link-sharing model.
#pragma once

#include <map>
#include <memory>
#include <string>

#include "lustre/sched/policy.hpp"
#include "sim/engine.hpp"
#include "sim/task.hpp"
#include "support/units.hpp"
#include "trace/recorder.hpp"

namespace pfsc::lustre::sched {

class Scheduler {
 public:
  Scheduler(sim::Engine& eng, SchedTuning tuning)
      : eng_(&eng), tuning_(tuning) {}

  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;
  virtual ~Scheduler() = default;

  /// Gate one request into the OSS service path; resumes when the policy
  /// grants it. Pair every granted admit with exactly one complete().
  virtual sim::Co<void> admit(JobId job, Bytes bytes) = 0;

  /// Account a granted request leaving service (after the disk finished).
  void complete(JobId job, Bytes bytes);

  virtual SchedPolicy policy() const = 0;

  // -- probe surface (instantaneous; cheap, side-effect free) -----------
  /// Requests submitted but not yet granted.
  std::size_t queue_depth() const { return queued_; }
  /// Requests granted but not yet completed.
  std::size_t in_service() const { return in_service_; }

  // -- byte accounting ---------------------------------------------------
  Bytes submitted_bytes() const { return submitted_bytes_; }
  Bytes admitted_bytes() const { return admitted_bytes_; }
  Bytes served_bytes() const { return served_bytes_; }
  Bytes served_bytes(JobId job) const;
  const std::map<JobId, Bytes>& served_by_job() const { return served_; }
  /// Jain fairness index over per-job served bytes (1.0 when idle).
  double jain() const;

  const SchedTuning& tuning() const { return tuning_; }

  /// Swap the tuning constants mid-run (the control plane's entry point).
  /// Validates the new tuning, installs it, and gives the policy a chance
  /// to reconcile in-flight state via on_retune(); scheduler invariants
  /// hold across the call (fuzz-tested in sched_fuzz_test).
  void set_tuning(const SchedTuning& tuning);

  /// Name this scheduler's trace track ("oss2.sched"); set by the owning
  /// FileSystem. Unnamed schedulers trace as "sched".
  void set_trace_label(std::string label) { trace_label_ = std::move(label); }

  /// Internal-consistency audit for the fuzz/property tests; throws
  /// SimulationError on a broken queue or accounting invariant.
  virtual void check_invariants() const;

 protected:
  /// Call at arrival (start of admit), before any grant decision. Returns
  /// a trace correlation id (0 when tracing is off) that the policy must
  /// carry with the request and hand back to note_granted, so the queued
  /// wait renders as one async span per request.
  std::uint64_t note_submitted(JobId job, Bytes bytes);
  /// Call at the grant decision (before the waiter actually resumes), so
  /// in_service() already reflects the grant when the next decision runs.
  /// `trace_id` is the matching note_submitted return value.
  void note_granted(std::uint64_t trace_id, JobId job, Bytes bytes);
  /// Policy hook run after complete()'s accounting (e.g. to grant the
  /// next queued request into the freed service slot).
  virtual void on_complete() {}
  /// Policy hook run by set_tuning() after tuning_ already holds the new
  /// values; `previous` is the tuning the in-flight state was built
  /// under, so policies can settle rate accounting or relax caps that
  /// the swap would otherwise violate retroactively.
  virtual void on_retune(const SchedTuning& previous) { (void)previous; }

  sim::Engine* eng_;
  SchedTuning tuning_;

 private:
  std::size_t queued_ = 0;
  std::size_t in_service_ = 0;
  Bytes submitted_bytes_ = 0;
  Bytes admitted_bytes_ = 0;
  Bytes served_bytes_ = 0;
  std::map<JobId, Bytes> served_;
  std::string trace_label_ = "sched";
  trace::TrackHandle track_;
};

/// Construct the scheduler implementation selected by `policy`.
std::unique_ptr<Scheduler> make_scheduler(sim::Engine& eng, SchedPolicy policy,
                                          SchedTuning tuning = {});

}  // namespace pfsc::lustre::sched
