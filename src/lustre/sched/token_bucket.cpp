#include "lustre/sched/token_bucket.hpp"

#include <algorithm>
#include <vector>

namespace pfsc::lustre::sched {

namespace {
// Grant slack absorbing refill rounding (a microbyte against MB-scale
// requests), so a timer that fires exactly on time cannot miss its grant
// and re-arm a near-zero timer forever.
constexpr double kTokenEps = 1e-6;
}  // namespace

TokenBucketSched::TokenBucketSched(sim::Engine& eng, SchedTuning tuning)
    : Scheduler(eng, tuning) {
  PFSC_REQUIRE(tuning.job_rate > 0.0,
               "TokenBucketSched: job_rate must be positive");
  PFSC_REQUIRE(tuning.bucket_depth > 0,
               "TokenBucketSched: bucket_depth must be positive");
}

double TokenBucketSched::need(Bytes bytes) const {
  return std::min(static_cast<double>(bytes),
                  static_cast<double>(tuning_.bucket_depth));
}

TokenBucketSched::Bucket& TokenBucketSched::bucket(JobId job) {
  auto [it, inserted] = buckets_.try_emplace(job);
  if (inserted) {
    // A job's first request sees a full bucket (standard TBF burst).
    it->second.tokens = static_cast<double>(tuning_.bucket_depth);
    it->second.last = eng_->now();
  }
  return it->second;
}

void TokenBucketSched::refill(Bucket& b) {
  const Seconds now = eng_->now();
  b.tokens = std::min(static_cast<double>(tuning_.bucket_depth),
                      b.tokens + tuning_.job_rate * (now - b.last));
  b.last = now;
}

struct TokenBucketSched::AdmitAwaiter {
  TokenBucketSched* sched;
  JobId job;
  Bytes bytes;
  std::uint64_t trace_id;

  bool await_ready() const {
    Bucket& b = sched->bucket(job);
    sched->refill(b);
    // FIFO within the job: an empty queue is required, or this request
    // would overtake a queued head.
    if (b.q.empty() && b.tokens >= sched->need(bytes) - kTokenEps) {
      b.tokens -= static_cast<double>(bytes);
      sched->note_granted(trace_id, job, bytes);
      return true;
    }
    return false;
  }
  void await_suspend(std::coroutine_handle<> h) {
    Bucket& b = sched->bucket(job);
    b.q.push_back(Pending{bytes, h, trace_id});
    if (b.q.size() == 1) sched->arm(job, b);
  }
  void await_resume() const {}
};

sim::Co<void> TokenBucketSched::admit(JobId job, Bytes bytes) {
  const std::uint64_t trace_id = note_submitted(job, bytes);
  co_await AdmitAwaiter{this, job, bytes, trace_id};
}

void TokenBucketSched::drain(JobId job) {
  Bucket& b = bucket(job);
  refill(b);
  while (!b.q.empty() && b.tokens >= need(b.q.front().bytes) - kTokenEps) {
    const Pending head = b.q.front();
    b.q.pop_front();
    b.tokens -= static_cast<double>(head.bytes);
    note_granted(head.trace_id, job, head.bytes);
    eng_->schedule_after(head.waiter, 0.0);
  }
  if (!b.q.empty()) arm(job, b);
}

void TokenBucketSched::arm(JobId job, Bucket& b) {
  // Wake when the head's token deficit will have refilled. The balance
  // can be deeply negative after an oversize grant, so dt is unbounded
  // above but always positive here (the head was not grantable).
  const Seconds dt = (need(b.q.front().bytes) - b.tokens) / tuning_.job_rate;
  PFSC_ASSERT(dt > 0.0);
  eng_->spawn(wakeup(job, ++b.timer_generation, dt));
}

sim::Task TokenBucketSched::wakeup(JobId job, std::uint64_t generation,
                                   Seconds dt) {
  co_await eng_->delay(dt);
  auto it = buckets_.find(job);
  if (it == buckets_.end() || it->second.timer_generation != generation) {
    co_return;  // stale: the queue was re-armed or drained meanwhile
  }
  drain(job);
}

void TokenBucketSched::on_retune(const SchedTuning& previous) {
  const Seconds now = eng_->now();
  for (auto& [job, b] : buckets_) {
    // Settle the balance under the tuning the elapsed interval actually
    // ran at, then clamp into the new capacity (a shrink must not leave
    // an overfilled bucket behind).
    b.tokens = std::min(static_cast<double>(previous.bucket_depth),
                        b.tokens + previous.job_rate * (now - b.last));
    b.last = now;
    b.tokens = std::min(b.tokens, static_cast<double>(tuning_.bucket_depth));
    // Any armed timer was sized to the old rate/depth; invalidate it.
    ++b.timer_generation;
  }
  // Re-evaluate queued heads under the new tuning: a deeper bucket or a
  // faster rate may grant immediately, otherwise drain() re-arms a timer
  // computed from the new constants. drain() may erase nothing here but
  // can touch buckets_ only via bucket(), which for existing jobs does
  // not invalidate other iterators — still, walk a snapshot of job ids.
  std::vector<JobId> jobs;
  jobs.reserve(buckets_.size());
  for (const auto& [job, b] : buckets_) {
    if (!b.q.empty()) jobs.push_back(job);
  }
  for (const JobId job : jobs) drain(job);
}

double TokenBucketSched::tokens(JobId job) const {
  const auto it = buckets_.find(job);
  if (it == buckets_.end()) return static_cast<double>(tuning_.bucket_depth);
  const Bucket& b = it->second;
  return std::min(static_cast<double>(tuning_.bucket_depth),
                  b.tokens + tuning_.job_rate * (eng_->now() - b.last));
}

void TokenBucketSched::check_invariants() const {
  Scheduler::check_invariants();
  std::size_t pending = 0;
  for (const auto& [job, b] : buckets_) {
    if (b.tokens > static_cast<double>(tuning_.bucket_depth) + kTokenEps) {
      throw SimulationError("TokenBucketSched: bucket overfilled");
    }
    pending += b.q.size();
  }
  if (pending != queue_depth()) {
    throw SimulationError("TokenBucketSched: queue sizes do not sum to depth");
  }
}

}  // namespace pfsc::lustre::sched
