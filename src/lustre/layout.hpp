// Stripe layout: how Lustre maps a file's byte range onto OST objects.
//
// A file with stripe size S over OSTs [o_0..o_{c-1}] places byte f in
// stripe index k = f / S; stripe k lives on object o_{k mod c} at object
// offset (k / c) * S + (f mod S). `segments()` decomposes an arbitrary
// extent into maximal per-object contiguous runs, the unit from which the
// client builds bulk RPCs.
#pragma once

#include <cstdint>
#include <cstring>
#include <string_view>
#include <vector>

#include "support/units.hpp"

namespace pfsc::lustre {

using OstIndex = std::uint32_t;
using ObjectId = std::uint64_t;

/// Fixed-capacity OST-pool name.
///
/// StripeSettings travels by value through coroutine parameters, and GCC
/// 12's coroutine codegen double-frees by-value aggregate parameters with
/// non-trivially-destructible members (verified with a minimal repro).
/// Keeping the settings trivially destructible sidesteps the bug; 31
/// characters matches Lustre's own pool-name limit (LOV_MAXPOOLNAME = 15
/// in old releases, 31 later).
struct PoolName {
  char chars[32] = {};

  PoolName() = default;
  PoolName(std::string_view name) {  // NOLINT: implicit by design
    assign(name);
  }
  PoolName(const char* name) : PoolName(std::string_view(name)) {}  // NOLINT
  PoolName& operator=(const char* name) {
    assign(std::string_view(name));
    return *this;
  }
  PoolName& operator=(std::string_view name) {
    assign(name);
    return *this;
  }

  void assign(std::string_view name) {
    const std::size_t n = name.size() < sizeof(chars) - 1
                              ? name.size()
                              : sizeof(chars) - 1;
    std::memcpy(chars, name.data(), n);
    chars[n] = '\0';
  }

  bool empty() const { return chars[0] == '\0'; }
  std::string_view view() const { return std::string_view(chars); }
  friend bool operator==(const PoolName& a, const PoolName& b) {
    return a.view() == b.view();
  }
};
static_assert(std::is_trivially_destructible_v<PoolName>);

/// What a user asks for (MPI-IO hints / lfs setstripe).
struct StripeSettings {
  StripeSettings() = default;
  StripeSettings(std::uint32_t count, Bytes size, std::int32_t offset = -1,
                 PoolName pool_name = {})
      : stripe_count(count),
        stripe_size(size),
        stripe_offset(offset),
        pool(pool_name) {}

  std::uint32_t stripe_count = 0;  // 0 = file-system default
  Bytes stripe_size = 0;           // 0 = file-system default
  /// Starting OST index, or -1 for allocator's choice. With an explicit
  /// offset, OSTs are assigned sequentially from that index (real Lustre
  /// semantics for the stripe_offset hint).
  std::int32_t stripe_offset = -1;
  /// OST pool to allocate from (lfs pool_new/pool_add); empty = any OST.
  /// Pools isolate workloads from each other's contention.
  PoolName pool;
  /// Expected final file size (0 = unknown). Never changes the layout by
  /// itself: when the stripe count is otherwise defaulted and the file
  /// system carries a PflSpec, the MDS picks the count from this hint's
  /// size class (pfl.hpp) — the modelled analogue of a PFL composite
  /// layout's first matching component.
  Bytes size_hint = 0;
};
static_assert(std::is_trivially_destructible_v<StripeSettings>,
              "StripeSettings crosses coroutine parameter boundaries by "
              "value; see PoolName for why it must stay trivial");

/// A resolved layout: stripe size plus the ordered OSTs and their objects.
struct StripeLayout {
  Bytes stripe_size = 0;
  std::vector<OstIndex> osts;
  std::vector<ObjectId> objects;  // parallel to `osts`

  std::uint32_t stripe_count() const { return static_cast<std::uint32_t>(osts.size()); }
};

/// One per-object contiguous run of a file extent.
struct LayoutSegment {
  std::uint32_t layout_index = 0;  // index into StripeLayout::osts/objects
  Bytes object_offset = 0;
  Bytes length = 0;
  Bytes file_offset = 0;
};

/// Decompose file extent [offset, offset+length) into per-object runs,
/// in file-offset order. Runs never cross a stripe boundary.
std::vector<LayoutSegment> segments(const StripeLayout& layout, Bytes offset,
                                    Bytes length);

/// Map a single file offset to its location (layout index, object offset).
LayoutSegment locate(const StripeLayout& layout, Bytes offset);

}  // namespace pfsc::lustre
