// MDS-side OST placement policies: how the allocator picks the OST set of
// a new file when the caller gives no explicit stripe_offset or pool.
//
// The paper's lscratchc assigns "targets at random (based on current
// usage, to maintain an approximately even capacity)" — that is
// PlacementKind::uniform_random, the default, and its draw sequence is
// pinned bit-for-bit by the golden regression tests. The other kinds act
// on the contention model instead of merely feeding it:
//
//   round_robin    a striding cursor over all OSTs (perfectly even
//                  assignment; the historical AllocPolicy::round_robin
//                  ablation, bit-for-bit).
//   load_aware     pick the `want` least-demanded healthy OSTs, where
//                  demand is the MDS's live allocated-object count per
//                  OST. Minimises the predicted per-OST overlap (Eq. 1-4:
//                  max occupancy -> ceil(D_req / D_total) when demand is
//                  balanced) for concurrently allocated files.
//   node_affine    pick the least-demanded *contiguous* band of `want`
//                  healthy OSTs (bbThemis-style bulk assignment: files
//                  get disjoint index ranges while each file still spans
//                  many OSS, so non-overlapping jobs never share an OST).
//
// All policies read only MDS state (per-OST demand maintained at
// create/unlink on domain 0), never live server-side counters, so
// placement is deterministic at any --sim_domains count.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "lustre/layout.hpp"
#include "support/rng.hpp"

namespace pfsc::lustre {

enum class PlacementKind : std::uint8_t {
  uniform_random,  // paper's lscratchc behaviour (the default)
  round_robin,     // even striding cursor (historical ablation)
  load_aware,      // least-demand OSTs first (contention-aware)
  node_affine,     // least-demand contiguous band (bulk assignment)
};

const char* placement_kind_name(PlacementKind kind);

/// What a placement decision may consult: all fields are MDS (domain-0)
/// state, so every policy stays deterministic under sharding. `demand` is
/// the live allocated-object count per OST (FileSystem::objects_per_ost).
struct PlacementView {
  std::uint32_t ost_count = 0;
  const std::vector<bool>* failed = nullptr;
  const std::vector<std::uint64_t>* demand = nullptr;

  bool healthy(OstIndex ost) const { return !(*failed)[ost]; }
  std::uint64_t load(OstIndex ost) const { return (*demand)[ost]; }
};

/// One policy instance per FileSystem; stateful kinds (round_robin's
/// cursor) keep their state here.
class PlacementPolicy {
 public:
  virtual ~PlacementPolicy() = default;

  virtual PlacementKind kind() const = 0;

  /// Choose `want` distinct healthy OSTs. The caller guarantees
  /// 1 <= want <= healthy count; `rng` is the file system's allocator
  /// stream (only uniform_random draws from it — deterministic policies
  /// must not, so switching kinds never perturbs unrelated draws).
  virtual std::vector<OstIndex> choose(std::uint32_t want,
                                       const PlacementView& view,
                                       Rng& rng) = 0;
};

std::unique_ptr<PlacementPolicy> make_placement(PlacementKind kind);

}  // namespace pfsc::lustre
