#include "lustre/lfs.hpp"

namespace pfsc::lustre {

sim::Co<Errno> lfs_setstripe(FileSystem& fs, std::string dir_path,
                             StripeSettings settings) {
  co_return co_await fs.set_dir_stripe(std::move(dir_path), settings);
}

Result<StripeInfo> lfs_getstripe(const FileSystem& fs, std::string_view path) {
  const Inode* node = fs.find(path);
  if (node == nullptr) return Result<StripeInfo>::failure(Errno::enoent);
  StripeInfo info;
  if (node->is_dir) {
    const StripeSettings& d = node->dir_default;
    info.stripe_count = node->has_dir_default && d.stripe_count > 0
                            ? d.stripe_count
                            : fs.params().default_stripe_count;
    info.stripe_size = node->has_dir_default && d.stripe_size > 0
                           ? d.stripe_size
                           : fs.params().default_stripe_size;
  } else {
    info.stripe_count = node->layout.stripe_count();
    info.stripe_size = node->layout.stripe_size;
    info.osts = node->layout.osts;
  }
  return Result<StripeInfo>::success(std::move(info));
}

std::vector<DfEntry> lfs_df(const FileSystem& fs) {
  const auto usage = fs.objects_per_ost();
  std::vector<DfEntry> out;
  out.reserve(usage.size());
  for (std::size_t i = 0; i < usage.size(); ++i) {
    const auto ost = static_cast<OstIndex>(i);
    out.push_back(DfEntry{ost, usage[i], fs.ost_failed(ost)});
  }
  return out;
}

Errno lfs_pool_new(FileSystem& fs, const std::string& pool) {
  return fs.pool_new(pool);
}

Errno lfs_pool_add(FileSystem& fs, const std::string& pool,
                   std::span<const OstIndex> osts) {
  return fs.pool_add(pool, osts);
}

Result<std::vector<OstIndex>> lfs_pool_list(const FileSystem& fs,
                                            const std::string& pool) {
  return fs.pool_members(pool);
}

}  // namespace pfsc::lustre
