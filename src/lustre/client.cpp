#include "lustre/client.hpp"

#include <algorithm>

namespace pfsc::lustre {

Client::Client(FileSystem& fs, std::string name, sim::LinkModel* node_nic)
    : fs_(&fs),
      eng_(&fs.engine()),
      name_(std::move(name)),
      trace_label_("client." + name_),
      proc_pipe_(sim::make_link(fs.engine(), fs.params().link_policy,
                                fs.params().per_process_bw)),
      node_nic_(node_nic),
      rpc_slots_(fs.engine(), fs.params().client_max_rpcs_in_flight),
      writeback_space_(fs.engine()),
      writeback_idle_(fs.engine()) {
  proc_pipe_->set_trace_label("pipe." + name_);
}

sim::Co<Result<InodeId>> Client::create(std::string path, StripeSettings settings) {
  co_return co_await fs_->create(std::move(path), settings);
}
sim::Co<Result<InodeId>> Client::open(std::string path) {
  co_return co_await fs_->open(std::move(path));
}
sim::Co<Result<InodeId>> Client::mkdir(std::string path) {
  co_return co_await fs_->mkdir(std::move(path));
}
sim::Co<Errno> Client::unlink(std::string path) {
  co_return co_await fs_->unlink(std::move(path));
}

sim::Task Client::rpc(OstIndex ost, ObjectId object, Bytes object_offset,
                      Bytes bytes, bool is_write, std::shared_ptr<IoState> state) {
  // Async span per RPC on this client's track, issue -> completion; the
  // layers underneath (link flows, scheduler wait, disk service) emit
  // their own spans, so the lifecycle stages line up in the viewer.
  std::uint64_t span = 0;
  if (auto* rec = eng_->recorder();
      rec != nullptr && rec->enabled(trace::Cat::client)) {
    span = rec->next_id();
    rec->begin(trace::Cat::client, track_.get(*rec, trace_label_),
               is_write ? "write_rpc" : "read_rpc", eng_->now(), span,
               static_cast<std::int64_t>(job_), static_cast<std::int64_t>(ost),
               static_cast<double>(bytes));
  }
  const auto end_span = [&] {
    if (span == 0) return;
    if (auto* rec = eng_->recorder();
        rec != nullptr && rec->enabled(trace::Cat::client)) {
      rec->end(trace::Cat::client, track_.get(*rec, trace_label_),
               is_write ? "write_rpc" : "read_rpc", eng_->now(), span,
               static_cast<std::int64_t>(job_),
               static_cast<std::int64_t>(ost));
    }
  };
  co_await rpc_slots_.acquire();
  if (fs_->ost_failed(ost)) {
    if (state->err == Errno::ok) state->err = Errno::eio;
    rpc_slots_.release();
    end_span();
    co_return;
  }
  co_await proc_pipe_->transfer(bytes);
  if (node_nic_ != nullptr) co_await node_nic_->transfer(bytes);
  co_await fs_->fabric().transfer(bytes);
  // The server half — request hop, scheduler admission, OSS pipe, disk
  // service, reply hop — lives in the FileSystem so sharded runs can
  // execute it on the OSS's own domain.
  co_await fs_->oss_round_trip(job_, ost, object, object_offset, bytes,
                               is_write);
  if (fs_->ost_failed(ost) && state->err == Errno::ok) state->err = Errno::eio;
  rpc_slots_.release();
  end_span();
}

sim::Co<void> Client::local_copy(Bytes bytes) {
  if (bytes > 0) co_await proc_pipe_->transfer(bytes);
}

sim::Task Client::drain_buffered(InodeId file, Bytes offset, Bytes length) {
  const Errno e = co_await io(file, offset, length, /*is_write=*/true);
  if (e != Errno::ok && async_err_ == Errno::ok) async_err_ = e;
  dirty_bytes_ -= length;
  writeback_space_.notify_all();
  PFSC_ASSERT(outstanding_buffered_ > 0);
  if (--outstanding_buffered_ == 0) writeback_idle_.trigger();
}

sim::Co<Errno> Client::write_buffered(InodeId file, Bytes offset, Bytes length) {
  if (length == 0) co_return Errno::ok;
  const Bytes budget = fs_->params().client_writeback_bytes;
  if (budget == 0) co_return co_await write(file, offset, length);
  // Admission: wait until the dirty data fits the budget (an oversized
  // single write is admitted alone, like a huge write would be).
  while (dirty_bytes_ > 0 && dirty_bytes_ + length > budget) {
    co_await writeback_space_.wait();
  }
  dirty_bytes_ += length;
  if (outstanding_buffered_++ == 0) writeback_idle_.reset();
  eng_->spawn(drain_buffered(file, offset, length));
  co_return Errno::ok;
}

sim::Co<Errno> Client::flush() {
  while (outstanding_buffered_ > 0) co_await writeback_idle_.wait();
  const Errno e = async_err_;
  async_err_ = Errno::ok;
  co_return e;
}

sim::Co<Errno> Client::io(InodeId file, Bytes offset, Bytes length, bool is_write) {
  if (length == 0) co_return Errno::ok;
  Inode& node = fs_->inode(file);
  if (node.is_dir) co_return Errno::eisdir;
  PFSC_REQUIRE(!node.layout.osts.empty(), "io: file has no layout");

  auto state = std::make_shared<IoState>();
  std::vector<sim::Task> inflight;
  for (const LayoutSegment& seg : segments(node.layout, offset, length)) {
    // Split each per-object run into bulk RPCs of at most max_rpc_size.
    Bytes done = 0;
    while (done < seg.length) {
      const Bytes chunk =
          std::min<Bytes>(fs_->params().max_rpc_size, seg.length - done);
      sim::Task t = rpc(node.layout.osts[seg.layout_index],
                        node.layout.objects[seg.layout_index],
                        seg.object_offset + done, chunk, is_write, state);
      eng_->spawn(t);
      inflight.push_back(std::move(t));
      done += chunk;
    }
  }
  co_await sim::join_all(std::move(inflight));

  if (state->err != Errno::ok) co_return state->err;
  if (is_write) {
    node.written.insert(offset, length);
    node.size = std::max(node.size, offset + length);
    bytes_written_ += length;
  } else {
    bytes_read_ += length;
  }
  co_return Errno::ok;
}

sim::Co<Errno> Client::write(InodeId file, Bytes offset, Bytes length) {
  co_return co_await io(file, offset, length, /*is_write=*/true);
}

sim::Co<Errno> Client::read(InodeId file, Bytes offset, Bytes length) {
  // Reading past EOF is an error for the simulated apps (they always read
  // back what was written); holes inside the file read as zeros.
  Inode& node = fs_->inode(file);
  if (!node.is_dir && offset + length > node.size) co_return Errno::einval;
  co_return co_await io(file, offset, length, /*is_write=*/false);
}

}  // namespace pfsc::lustre
