#include "lustre/errors.hpp"

namespace pfsc::lustre {

const char* errno_name(Errno e) {
  switch (e) {
    case Errno::ok: return "OK";
    case Errno::enoent: return "ENOENT";
    case Errno::eexist: return "EEXIST";
    case Errno::enospc: return "ENOSPC";
    case Errno::eio: return "EIO";
    case Errno::einval: return "EINVAL";
    case Errno::enotdir: return "ENOTDIR";
    case Errno::eisdir: return "EISDIR";
    case Errno::ebadf: return "EBADF";
  }
  return "UNKNOWN";
}

}  // namespace pfsc::lustre
