// Lustre client: the per-process data path.
//
// A Client owns the process-local I/O ceiling (one core's worth of memcpy +
// RPC stack) and optionally shares a node NIC link with the other clients
// on its node. write()/read() decompose an extent into per-object bulk RPCs
// (capped at max_rpc_size) and pipeline them with at most
// `client_max_rpcs_in_flight` outstanding, each flowing
//
//   process link -> node NIC -> fabric -> OSS link -> OST disk
//
// which is where every bandwidth effect in the paper's experiments arises.
// Every hop is a sim::LinkModel, so the platform's link_policy decides
// whether concurrent RPCs queue (FIFO) or share capacity (fair-share).
#pragma once

#include <memory>
#include <string>

#include "lustre/fs.hpp"

namespace pfsc::lustre {

class Client {
 public:
  /// `node_nic` may be shared by several clients (one per node); pass
  /// nullptr for a client with no node-level bottleneck.
  Client(FileSystem& fs, std::string name, sim::LinkModel* node_nic = nullptr);

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  // -- namespace (forwarded to the MDS) ---------------------------------
  sim::Co<Result<InodeId>> create(std::string path, StripeSettings settings);
  sim::Co<Result<InodeId>> open(std::string path);
  sim::Co<Result<InodeId>> mkdir(std::string path);
  sim::Co<Errno> unlink(std::string path);

  // -- data --------------------------------------------------------------
  sim::Co<Errno> write(InodeId file, Bytes offset, Bytes length);
  sim::Co<Errno> read(InodeId file, Bytes offset, Bytes length);

  /// Buffered (page-cache) write: returns once the data is accepted into
  /// the client's write-back budget; the transfer to the servers continues
  /// asynchronously. Errors surface at the next flush(). This is how POSIX
  /// buffered writes behave on a Lustre client.
  sim::Co<Errno> write_buffered(InodeId file, Bytes offset, Bytes length);

  /// Wait for all buffered writes to reach the servers; returns the first
  /// asynchronous error, if any (fsync semantics).
  sim::Co<Errno> flush();

  /// Cost of staging `bytes` through this process (collective-buffer
  /// shuffle, scatter after collective reads): occupies the per-process
  /// pipe but moves nothing over the I/O fabric.
  sim::Co<void> local_copy(Bytes bytes);

  /// Tag this client's RPCs as belonging to `job` (OSS schedulers account
  /// and arbitrate per JobId). Untagged clients are job 0.
  void set_job(sched::JobId job) { job_ = job; }
  sched::JobId job() const { return job_; }

  const std::string& name() const { return name_; }
  Bytes bytes_written() const { return bytes_written_; }
  Bytes bytes_read() const { return bytes_read_; }
  FileSystem& fs() { return *fs_; }
  /// Identity of this client's node (clients sharing a NIC share a node).
  const void* node_key() const { return node_nic_; }
  /// Per-process link statistics (diagnostics/benchmarks).
  const sim::LinkModel& proc_pipe() const { return *proc_pipe_; }

 private:
  struct IoState {
    Errno err = Errno::ok;
  };

  sim::Co<Errno> io(InodeId file, Bytes offset, Bytes length, bool is_write);
  sim::Task rpc(OstIndex ost, ObjectId object, Bytes object_offset, Bytes bytes,
                bool is_write, std::shared_ptr<IoState> state);
  sim::Task drain_buffered(InodeId file, Bytes offset, Bytes length);

  FileSystem* fs_;
  sim::Engine* eng_;
  std::string name_;
  std::string trace_label_;    // "client.<name>"
  trace::TrackHandle track_;
  std::unique_ptr<sim::LinkModel> proc_pipe_;
  sim::LinkModel* node_nic_;
  sim::Resource rpc_slots_;
  sched::JobId job_ = sched::kDefaultJob;
  Bytes bytes_written_ = 0;
  Bytes bytes_read_ = 0;

  // Write-back state for write_buffered()/flush().
  Bytes dirty_bytes_ = 0;
  std::size_t outstanding_buffered_ = 0;
  sim::Condition writeback_space_;
  sim::Event writeback_idle_;
  Errno async_err_ = Errno::ok;
};

}  // namespace pfsc::lustre
