// Ordered set of written byte extents.
//
// The simulator does not move payload bytes, but it must still answer "was
// this range ever written?" so integrity tests can prove that reads observe
// exactly what writes produced (Lustre files, PLFS index resolution,
// collective-buffer reassembly).
#pragma once

#include <map>

#include "support/units.hpp"

namespace pfsc::lustre {

class ExtentMap {
 public:
  /// Mark [offset, offset+length) written; coalesces adjacent/overlapping.
  void insert(Bytes offset, Bytes length);

  /// True iff every byte of [offset, offset+length) has been written.
  bool covers(Bytes offset, Bytes length) const;

  /// Bytes of [offset, offset+length) that have been written.
  Bytes covered_bytes(Bytes offset, Bytes length) const;

  /// Total distinct bytes written.
  Bytes total_bytes() const { return total_; }

  /// One past the highest written byte (file size under append semantics).
  Bytes end_offset() const;

  std::size_t extent_count() const { return extents_.size(); }
  void clear();

 private:
  std::map<Bytes, Bytes> extents_;  // start -> end (exclusive)
  Bytes total_ = 0;
};

}  // namespace pfsc::lustre
