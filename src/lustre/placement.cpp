#include "lustre/placement.hpp"

#include <algorithm>
#include <cstdint>
#include <numeric>

#include "support/error.hpp"

namespace pfsc::lustre {

namespace {

/// Healthy OSTs in index order.
std::vector<OstIndex> healthy_osts(const PlacementView& view) {
  std::vector<OstIndex> healthy;
  healthy.reserve(view.ost_count);
  for (OstIndex ost = 0; ost < view.ost_count; ++ost) {
    if (view.healthy(ost)) healthy.push_back(ost);
  }
  return healthy;
}

/// The historical default: build the healthy vector, then one
/// sample_without_replacement draw. The exact rng call sequence is pinned
/// by the golden regression tests — do not reorder.
class UniformRandomPlacement final : public PlacementPolicy {
 public:
  PlacementKind kind() const override { return PlacementKind::uniform_random; }

  std::vector<OstIndex> choose(std::uint32_t want, const PlacementView& view,
                               Rng& rng) override {
    const std::vector<OstIndex> healthy = healthy_osts(view);
    const auto picks = rng.sample_without_replacement(
        static_cast<std::uint32_t>(healthy.size()), want);
    std::vector<OstIndex> chosen;
    chosen.reserve(want);
    for (const auto p : picks) chosen.push_back(healthy[p]);
    return chosen;
  }
};

/// The historical AllocPolicy::round_robin: a cursor striding over all
/// OSTs, skipping failed ones (the cursor still advances past them, like
/// the old FileSystem counter did).
class RoundRobinPlacement final : public PlacementPolicy {
 public:
  PlacementKind kind() const override { return PlacementKind::round_robin; }

  std::vector<OstIndex> choose(std::uint32_t want, const PlacementView& view,
                               Rng& /*rng*/) override {
    std::vector<OstIndex> chosen;
    chosen.reserve(want);
    for (std::uint32_t scanned = 0;
         chosen.size() < want && scanned < view.ost_count; ++scanned) {
      const OstIndex idx = next_;
      next_ = (next_ + 1) % view.ost_count;
      if (view.healthy(idx)) chosen.push_back(idx);
    }
    return chosen;
  }

 private:
  std::uint32_t next_ = 0;
};

/// Contention-aware: the `want` least-demanded healthy OSTs, ties broken
/// by lowest index. Keeps per-OST demand within one object of flat, so
/// the max per-OST overlap of concurrent files approaches the
/// ceil(D_req / D_total) floor instead of Eq. 1-4's binomial tail.
class LoadAwarePlacement final : public PlacementPolicy {
 public:
  PlacementKind kind() const override { return PlacementKind::load_aware; }

  std::vector<OstIndex> choose(std::uint32_t want, const PlacementView& view,
                               Rng& /*rng*/) override {
    std::vector<OstIndex> healthy = healthy_osts(view);
    std::sort(healthy.begin(), healthy.end(),
              [&view](OstIndex a, OstIndex b) {
                if (view.load(a) != view.load(b)) {
                  return view.load(a) < view.load(b);
                }
                return a < b;
              });
    healthy.resize(std::min<std::size_t>(want, healthy.size()));
    return healthy;
  }
};

/// Bulk assignment: the contiguous run of `want` healthy OSTs (in index
/// order, no wrap) with the smallest total demand, ties broken by the
/// earliest start. Because OST i is served by OSS (i mod oss_count),
/// a band still spans many OSS, but two non-overlapping bands never share
/// an OST — the property bbThemis exploits to keep each target owned by
/// one writer set.
class NodeAffinePlacement final : public PlacementPolicy {
 public:
  PlacementKind kind() const override { return PlacementKind::node_affine; }

  std::vector<OstIndex> choose(std::uint32_t want, const PlacementView& view,
                               Rng& /*rng*/) override {
    const std::vector<OstIndex> healthy = healthy_osts(view);
    if (healthy.size() < want) return {};
    std::uint64_t window = 0;
    for (std::uint32_t i = 0; i < want; ++i) window += view.load(healthy[i]);
    std::uint64_t best = window;
    std::size_t best_start = 0;
    for (std::size_t start = 1; start + want <= healthy.size(); ++start) {
      window -= view.load(healthy[start - 1]);
      window += view.load(healthy[start + want - 1]);
      if (window < best) {
        best = window;
        best_start = start;
      }
    }
    return {healthy.begin() + static_cast<std::ptrdiff_t>(best_start),
            healthy.begin() + static_cast<std::ptrdiff_t>(best_start + want)};
  }
};

}  // namespace

const char* placement_kind_name(PlacementKind kind) {
  switch (kind) {
    case PlacementKind::uniform_random: return "uniform_random";
    case PlacementKind::round_robin: return "round_robin";
    case PlacementKind::load_aware: return "load_aware";
    case PlacementKind::node_affine: return "node_affine";
  }
  return "?";
}

std::unique_ptr<PlacementPolicy> make_placement(PlacementKind kind) {
  switch (kind) {
    case PlacementKind::uniform_random:
      return std::make_unique<UniformRandomPlacement>();
    case PlacementKind::round_robin:
      return std::make_unique<RoundRobinPlacement>();
    case PlacementKind::load_aware:
      return std::make_unique<LoadAwarePlacement>();
    case PlacementKind::node_affine:
      return std::make_unique<NodeAffinePlacement>();
  }
  throw UsageError("make_placement: unknown PlacementKind");
}

}  // namespace pfsc::lustre
