#include "lustre/fs.hpp"

#include <algorithm>

#include "sim/domain.hpp"
#include "support/stats.hpp"

namespace pfsc::lustre {

namespace {

// Cross-domain message opcodes (Message::kind). The payload layout per
// opcode is documented at the use sites below; both ends live in this
// translation unit, so the protocol never leaks past FileSystem.
constexpr std::uint8_t kRpcRequest = 1;    // client domain -> OSS domain
constexpr std::uint8_t kRpcReply = 2;      // OSS domain -> client domain
constexpr std::uint8_t kForgetStream = 3;  // MDS unlink -> OSS domain

}  // namespace

std::vector<std::string_view> split_path(std::string_view path) {
  std::vector<std::string_view> parts;
  std::size_t pos = 0;
  while (pos < path.size()) {
    while (pos < path.size() && path[pos] == '/') ++pos;
    std::size_t end = pos;
    while (end < path.size() && path[end] != '/') ++end;
    if (end > pos) parts.push_back(path.substr(pos, end - pos));
    pos = end;
  }
  return parts;
}

FileSystem::FileSystem(sim::Engine& eng, hw::PlatformParams params,
                       std::uint64_t seed, AllocPolicy policy,
                       sim::ShardSet* shards)
    : eng_(&eng),
      shards_(shards),
      params_(std::move(params)),
      placement_(make_placement(
          // The legacy ctor argument keeps working, but an explicit
          // params.ost_placement wins (the CLI sets only the latter).
          params_.ost_placement == PlacementKind::uniform_random &&
                  policy == AllocPolicy::round_robin
              ? PlacementKind::round_robin
              : params_.ost_placement)),
      rng_(seed),
      mds_slots_(eng, params_.mds_parallelism) {
  PFSC_REQUIRE(params_.ost_count > 0 && params_.oss_count > 0,
               "FileSystem: need at least one OSS and OST");
  if (shards_ != nullptr) {
    PFSC_REQUIRE(&shards_->domain(0) == &eng,
                 "FileSystem: sharded runs must be built on domain 0's engine");
    PFSC_REQUIRE(shards_->domains() >= 2,
                 "FileSystem: a sharded run needs at least one OSS domain");
    PFSC_REQUIRE(shards_->domains() <= std::size_t{params_.oss_count} + 1,
                 "FileSystem: more domains than OSS shards plus the client domain");
    // The conservative window is only sound if nothing crosses a domain
    // boundary faster than the lookahead; the RPC hop is the (only)
    // cross-domain latency in this model.
    PFSC_REQUIRE(shards_->lookahead() == params_.rpc_latency,
                 "FileSystem: shard lookahead must equal rpc_latency");
    for (std::size_t d = 0; d < shards_->domains(); ++d) {
      shards_->set_handler(
          d, [this](sim::Engine& e, std::uint32_t src, const sim::Message& m) {
            deliver_message(e, src, m);
          });
    }
  }
  fabric_ = sim::make_link(eng, params_.link_policy, params_.fabric_bw);
  fabric_->set_trace_label("fabric");
  oss_pipes_.reserve(params_.oss_count);
  oss_scheds_.reserve(params_.oss_count);
  for (std::uint32_t i = 0; i < params_.oss_count; ++i) {
    sim::Engine& oss_eng = engine_for_oss(i);
    oss_pipes_.push_back(
        sim::make_link(oss_eng, params_.link_policy, params_.oss_bw));
    oss_pipes_.back()->set_trace_label("oss" + std::to_string(i));
    oss_scheds_.push_back(sched::make_scheduler(oss_eng, params_.oss_sched_policy,
                                                params_.oss_sched));
    oss_scheds_.back()->set_trace_label("oss" + std::to_string(i) + ".sched");
  }
  ost_disks_.reserve(params_.ost_count);
  for (std::uint32_t i = 0; i < params_.ost_count; ++i) {
    ost_disks_.push_back(std::make_unique<hw::DiskModel>(
        engine_for_oss(i % params_.oss_count), params_.ost_disk));
    ost_disks_.back()->set_trace_label("ost" + std::to_string(i) + ".disk");
  }
  ost_failed_.assign(params_.ost_count, false);
  objects_per_ost_.assign(params_.ost_count, 0);

  Inode& root = new_inode(/*is_dir=*/true, kNoInode, "/");
  root_ = root.id;
}

Inode& FileSystem::new_inode(bool is_dir, InodeId parent, std::string name) {
  auto node = std::make_unique<Inode>();
  node->id = static_cast<InodeId>(inodes_.size()) + 1;
  node->parent = parent;
  node->name = std::move(name);
  node->is_dir = is_dir;
  inodes_.push_back(std::move(node));
  return *inodes_.back();
}

Inode& FileSystem::inode(InodeId id) {
  PFSC_REQUIRE(id != kNoInode && id <= inodes_.size(), "inode: bad id");
  return *inodes_[id - 1];
}
const Inode& FileSystem::inode(InodeId id) const {
  PFSC_REQUIRE(id != kNoInode && id <= inodes_.size(), "inode: bad id");
  return *inodes_[id - 1];
}

Result<InodeId> FileSystem::resolve(std::string_view path) const {
  InodeId cur = root_;
  for (auto part : split_path(path)) {
    const Inode& node = inode(cur);
    if (!node.is_dir) return Result<InodeId>::failure(Errno::enotdir);
    auto it = node.entries.find(part);
    if (it == node.entries.end()) return Result<InodeId>::failure(Errno::enoent);
    cur = it->second;
  }
  return Result<InodeId>::success(cur);
}

Result<std::pair<InodeId, std::string>> FileSystem::resolve_parent(
    std::string_view path) const {
  using R = Result<std::pair<InodeId, std::string>>;
  auto parts = split_path(path);
  if (parts.empty()) return R::failure(Errno::einval);
  InodeId cur = root_;
  for (std::size_t i = 0; i + 1 < parts.size(); ++i) {
    const Inode& node = inode(cur);
    if (!node.is_dir) return R::failure(Errno::enotdir);
    auto it = node.entries.find(parts[i]);
    if (it == node.entries.end()) return R::failure(Errno::enoent);
    cur = it->second;
  }
  if (!inode(cur).is_dir) return R::failure(Errno::enotdir);
  return R::success({cur, std::string(parts.back())});
}

Inode* FileSystem::find(std::string_view path) {
  auto r = resolve(path);
  return r.ok() ? &inode(r.value) : nullptr;
}
const Inode* FileSystem::find(std::string_view path) const {
  auto r = resolve(path);
  return r.ok() ? &inode(r.value) : nullptr;
}

std::vector<InodeId> FileSystem::files_under(std::string_view dir_path) const {
  std::vector<InodeId> out;
  const Inode* dir = find(dir_path);
  if (dir == nullptr || !dir->is_dir) return out;
  std::vector<const Inode*> stack{dir};
  while (!stack.empty()) {
    const Inode* node = stack.back();
    stack.pop_back();
    for (const auto& [name, child_id] : node->entries) {
      const Inode& child = inode(child_id);
      if (child.is_dir) {
        stack.push_back(&child);
      } else {
        out.push_back(child.id);
      }
    }
  }
  return out;
}

sim::Co<void> FileSystem::mds_op(Seconds cost) {
  co_await mds_slots_.acquire();
  co_await eng_->delay(cost);
  mds_slots_.release();
}

StripeSettings FileSystem::effective_settings(const Inode& dir,
                                              StripeSettings req) const {
  StripeSettings eff = req;
  if (dir.has_dir_default) {
    if (eff.stripe_count == 0) eff.stripe_count = dir.dir_default.stripe_count;
    if (eff.stripe_size == 0) eff.stripe_size = dir.dir_default.stripe_size;
    if (eff.stripe_offset < 0) eff.stripe_offset = dir.dir_default.stripe_offset;
    if (eff.pool.empty()) eff.pool = dir.dir_default.pool;
  }
  // PFL: a create that still defaults its stripe count but declares an
  // expected size gets the count of its size class. Explicit requests and
  // directory defaults both outrank the progressive layout, as in Lustre.
  if (eff.stripe_count == 0 && eff.size_hint > 0 && !pfl_.empty()) {
    eff.stripe_count = pfl_.choose(eff.size_hint);
  }
  if (eff.stripe_count == 0) eff.stripe_count = params_.default_stripe_count;
  if (eff.stripe_size == 0) eff.stripe_size = params_.default_stripe_size;
  eff.stripe_count = std::min(eff.stripe_count, params_.max_stripe_count);
  eff.stripe_count = std::min(eff.stripe_count, params_.ost_count);
  return eff;
}

void FileSystem::set_pfl(PflSpec spec) {
  spec.validate();
  pfl_ = std::move(spec);
}

Errno FileSystem::set_dir_stripe_now(std::string_view path,
                                     StripeSettings settings) {
  Inode* node = find(path);
  if (node == nullptr) return Errno::enoent;
  if (!node->is_dir) return Errno::enotdir;
  node->dir_default = settings;
  node->has_dir_default = true;
  return Errno::ok;
}

Errno FileSystem::pool_new(const std::string& name) {
  if (name.empty()) return Errno::einval;
  auto [it, inserted] = pools_.try_emplace(name);
  return inserted ? Errno::ok : Errno::eexist;
}

Errno FileSystem::pool_add(const std::string& name,
                           std::span<const OstIndex> osts) {
  auto it = pools_.find(name);
  if (it == pools_.end()) return Errno::enoent;
  for (OstIndex ost : osts) {
    if (ost >= params_.ost_count) return Errno::einval;
    if (std::find(it->second.begin(), it->second.end(), ost) == it->second.end()) {
      it->second.push_back(ost);
    }
  }
  return Errno::ok;
}

Result<std::vector<OstIndex>> FileSystem::pool_members(
    const std::string& name) const {
  using R = Result<std::vector<OstIndex>>;
  auto it = pools_.find(name);
  if (it == pools_.end()) return R::failure(Errno::enoent);
  return R::success(it->second);
}

std::vector<std::string> FileSystem::pool_names() const {
  std::vector<std::string> names;
  names.reserve(pools_.size());
  for (const auto& [name, members] : pools_) names.push_back(name);
  return names;
}

Result<std::vector<OstIndex>> FileSystem::allocate_osts(
    const StripeSettings& settings) {
  using R = Result<std::vector<OstIndex>>;
  const std::uint32_t want = settings.stripe_count;
  if (want == 0 || want > params_.ost_count) return R::failure(Errno::einval);
  if (healthy_ost_count() < want) return R::failure(Errno::enospc);

  // Pool-constrained allocation: sample uniformly from the healthy pool
  // members (explicit stripe_offset and round-robin ignore pools, like the
  // real allocator when given explicit placement).
  if (!settings.pool.empty() && settings.stripe_offset < 0) {
    auto it = pools_.find(settings.pool.view());
    if (it == pools_.end()) return R::failure(Errno::einval);
    std::vector<OstIndex> healthy;
    for (OstIndex ost : it->second) {
      if (!ost_failed_[ost]) healthy.push_back(ost);
    }
    if (healthy.size() < want) return R::failure(Errno::enospc);
    auto picks = rng_.sample_without_replacement(
        static_cast<std::uint32_t>(healthy.size()), want);
    std::vector<OstIndex> chosen;
    chosen.reserve(want);
    for (auto p : picks) chosen.push_back(healthy[p]);
    return R::success(std::move(chosen));
  }

  std::vector<OstIndex> chosen;
  chosen.reserve(want);
  if (settings.stripe_offset >= 0) {
    // Explicit placement: sequential from the requested index, skipping
    // failed targets (real clients get EIO later; we refuse up front).
    auto idx = static_cast<std::uint32_t>(settings.stripe_offset) % params_.ost_count;
    for (std::uint32_t scanned = 0;
         chosen.size() < want && scanned < params_.ost_count; ++scanned) {
      if (!ost_failed_[idx]) chosen.push_back(idx);
      idx = (idx + 1) % params_.ost_count;
    }
  } else {
    // Policy choice (placement.hpp): the default uniform_random policy
    // reproduces the historical healthy-vector + one-sample rng sequence
    // bit for bit; the deterministic policies never touch rng_.
    const PlacementView view{params_.ost_count, &ost_failed_,
                             &objects_per_ost_};
    chosen = placement_->choose(want, view, rng_);
  }
  if (chosen.size() < want) return R::failure(Errno::enospc);
  return R::success(std::move(chosen));
}

sim::Co<Result<InodeId>> FileSystem::create(std::string path,
                                            StripeSettings settings) {
  using R = Result<InodeId>;
  auto parent = resolve_parent(path);
  if (!parent.ok()) co_return R::failure(parent.err);
  auto& [dir_id, leaf] = parent.value;
  Inode& dir = inode(dir_id);
  if (dir.entries.contains(leaf)) co_return R::failure(Errno::eexist);

  const StripeSettings eff = effective_settings(dir, settings);
  auto osts = allocate_osts(eff);
  if (!osts.ok()) co_return R::failure(osts.err);

  // Claim the objects' demand before yielding to the MDS wait, so creates
  // racing at the same instant see each other's allocations: load_aware
  // placement would otherwise hand a t=0 burst of creates identical
  // least-loaded OST sets from one stale snapshot (the ROADMAP's
  // "placement at t=0 bursts" follow-on).
  for (const OstIndex ost : osts.value) ++objects_per_ost_[ost];

  co_await mds_op(params_.mds_create_time +
                  20.0e-6 * static_cast<double>(eff.stripe_count));

  // Re-check after waiting: a racing create may have inserted the name.
  if (dir.entries.contains(leaf)) {
    for (const OstIndex ost : osts.value) {
      PFSC_ASSERT(objects_per_ost_[ost] > 0);
      --objects_per_ost_[ost];
    }
    co_return R::failure(Errno::eexist);
  }

  Inode& file = new_inode(/*is_dir=*/false, dir_id, leaf);
  file.layout.stripe_size = eff.stripe_size;
  file.layout.osts = std::move(osts.value);
  file.layout.objects.reserve(file.layout.osts.size());
  for (std::size_t i = 0; i < file.layout.osts.size(); ++i) {
    file.layout.objects.push_back(next_object_++);
  }
  dir.entries.emplace(leaf, file.id);
  ++files_created_;
  co_return R::success(file.id);
}

sim::Co<Result<InodeId>> FileSystem::open(std::string path) {
  using R = Result<InodeId>;
  co_await mds_op(params_.mds_open_time);
  auto r = resolve(path);
  if (!r.ok()) co_return R::failure(r.err);
  Inode& node = inode(r.value);
  if (node.is_dir) co_return R::failure(Errno::eisdir);
  ++node.open_count;
  co_return R::success(node.id);
}

sim::Co<Result<InodeId>> FileSystem::mkdir(std::string path) {
  using R = Result<InodeId>;
  auto parent = resolve_parent(path);
  if (!parent.ok()) co_return R::failure(parent.err);
  auto& [dir_id, leaf] = parent.value;
  co_await mds_op(params_.mds_create_time);
  Inode& dir = inode(dir_id);
  if (dir.entries.contains(leaf)) co_return R::failure(Errno::eexist);
  Inode& child = new_inode(/*is_dir=*/true, dir_id, leaf);
  // New directories inherit the parent's default layout (Lustre semantics).
  child.has_dir_default = dir.has_dir_default;
  child.dir_default = dir.dir_default;
  dir.entries.emplace(leaf, child.id);
  co_return R::success(child.id);
}

sim::Co<Errno> FileSystem::unlink(std::string path) {
  co_await mds_op(params_.mds_open_time);
  auto parent = resolve_parent(path);
  if (!parent.ok()) co_return parent.err;
  auto& [dir_id, leaf] = parent.value;
  Inode& dir = inode(dir_id);
  auto it = dir.entries.find(leaf);
  if (it == dir.entries.end()) co_return Errno::enoent;
  Inode& victim = inode(it->second);
  if (victim.is_dir) {
    if (!victim.entries.empty()) co_return Errno::einval;
  } else {
    for (OstIndex ost : victim.layout.osts) {
      PFSC_ASSERT(objects_per_ost_[ost] > 0);
      --objects_per_ost_[ost];
    }
    for (std::size_t i = 0; i < victim.layout.objects.size(); ++i) {
      const OstIndex ost = victim.layout.osts[i];
      if (shards_ == nullptr) {
        ost_disks_[ost]->forget_stream(victim.layout.objects[i]);
      } else {
        // The MDS (domain 0) must not poke an OSS domain's disk directly;
        // send the drop as a message instead. It lands one lookahead later
        // than the single-engine call, which is observable only if the
        // stream sees new I/O within that window — no workload here unlinks
        // a file it is still writing, and the determinism tests would catch
        // it if one ever did.
        sim::Message m;
        m.kind = kForgetStream;
        m.sent_at = eng_->now();
        m.a = victim.layout.objects[i];
        m.u = ost;
        shards_->post(0, domain_of_ost(ost), m);
      }
    }
  }
  dir.entries.erase(it);
  co_return Errno::ok;
}

sim::Co<Result<std::vector<std::string>>> FileSystem::readdir(std::string path) {
  using R = Result<std::vector<std::string>>;
  co_await mds_op(params_.mds_open_time);
  auto r = resolve(path);
  if (!r.ok()) co_return R::failure(r.err);
  const Inode& dir = inode(r.value);
  if (!dir.is_dir) co_return R::failure(Errno::enotdir);
  std::vector<std::string> names;
  names.reserve(dir.entries.size());
  for (const auto& [name, id] : dir.entries) names.push_back(name);
  co_return R::success(std::move(names));
}

sim::Co<Errno> FileSystem::set_dir_stripe(std::string path,
                                          StripeSettings settings) {
  co_await mds_op(params_.mds_open_time);
  auto r = resolve(path);
  if (!r.ok()) co_return r.err;
  Inode& dir = inode(r.value);
  if (!dir.is_dir) co_return Errno::enotdir;
  dir.dir_default = settings;
  dir.has_dir_default = true;
  co_return Errno::ok;
}

hw::DiskModel& FileSystem::ost_disk(OstIndex ost) {
  PFSC_REQUIRE(ost < ost_disks_.size(), "ost_disk: bad OST index");
  return *ost_disks_[ost];
}

sim::LinkModel& FileSystem::oss_pipe_for_ost(OstIndex ost) {
  PFSC_REQUIRE(ost < params_.ost_count, "oss_pipe_for_ost: bad OST index");
  // Consecutive OSTs are spread across servers, as in real deployments.
  return *oss_pipes_[ost % params_.oss_count];
}

sched::Scheduler& FileSystem::sched_for_ost(OstIndex ost) {
  PFSC_REQUIRE(ost < params_.ost_count, "sched_for_ost: bad OST index");
  return *oss_scheds_[ost % params_.oss_count];
}

std::uint32_t FileSystem::domain_of_oss(std::uint32_t oss) const {
  if (shards_ == nullptr) return 0;
  const std::size_t shard_domains = shards_->domains() - 1;
  return 1 + static_cast<std::uint32_t>(oss % shard_domains);
}

sim::Engine& FileSystem::engine_for_oss(std::uint32_t oss) {
  PFSC_REQUIRE(oss < params_.oss_count, "engine_for_oss: bad OSS index");
  return shards_ == nullptr ? *eng_ : shards_->domain(domain_of_oss(oss));
}

namespace {

/// Awaiter that rides the suspended frame across the domain boundary: the
/// request message carries its handle, and the OSS domain's eventual reply
/// message schedules that handle back on domain 0. The frame stays alive
/// (suspended) for the whole round trip; FileSystem outlives every run, so
/// the captured pointers stay valid.
struct RpcCrossing {
  sim::ShardSet* shards;
  std::uint32_t dst;
  sim::Message m;

  bool await_ready() const noexcept { return false; }
  void await_suspend(std::coroutine_handle<> h) {
    m.resume = h;
    shards->post(0, dst, m);
  }
  void await_resume() const noexcept {}
};

}  // namespace

sim::Co<void> FileSystem::oss_round_trip(sched::JobId job, OstIndex ost,
                                         ObjectId object, Bytes object_offset,
                                         Bytes bytes, bool is_write) {
  const Seconds latency = params_.rpc_latency;
  if (shards_ == nullptr) {
    // Single-engine path: the historical await sequence, verbatim, so the
    // refactor is bit-for-bit neutral for every existing golden.
    co_await eng_->delay(latency);  // request hop
    sched::Scheduler& sched = sched_for_ost(ost);
    co_await sched.admit(job, bytes);
    co_await oss_pipe_for_ost(ost).transfer(bytes);
    co_await ost_disk(ost).submit(object, object_offset, bytes, is_write);
    sched.complete(job, bytes);
    co_await eng_->delay(latency);  // reply hop
    co_return;
  }
  // Sharded path: the request hop is the message's lookahead delay, the
  // server sequence runs as serve_rpc on the owning OSS domain, and the
  // reply hop is the reply message's lookahead delay — same three legs,
  // same simulated timestamps.
  sim::Message m;
  m.kind = kRpcRequest;
  m.sent_at = eng_->now();
  m.a = object;
  m.b = object_offset;
  m.c = bytes;
  m.u = ost;
  m.v = job;
  m.flag = is_write;
  co_await RpcCrossing{shards_, domain_of_ost(ost), m};
}

sim::Task FileSystem::serve_rpc(sim::Message m) {
  const auto ost = static_cast<OstIndex>(m.u);
  sched::Scheduler& sched = sched_for_ost(ost);
  co_await sched.admit(m.v, m.c);
  co_await oss_pipe_for_ost(ost).transfer(m.c);
  co_await ost_disk(ost).submit(m.a, m.b, m.c, m.flag);
  sched.complete(m.v, m.c);
  sim::Message reply;
  reply.kind = kRpcReply;
  reply.sent_at = engine_for_oss(ost % params_.oss_count).now();
  reply.resume = m.resume;
  shards_->post(domain_of_ost(ost), 0, reply);
}

sim::Task FileSystem::forget_stream_task(sim::Message m) {
  ost_disk(static_cast<OstIndex>(m.u)).forget_stream(m.a);
  co_return;
}

void FileSystem::deliver_message(sim::Engine& eng, std::uint32_t src,
                                 const sim::Message& m) {
  // src + 1: ScheduledEvent reserves src 0 for the engine's native events.
  switch (m.kind) {
    case kRpcRequest:
      eng.spawn_message(serve_rpc(m), m.deliver_t, m.sent_at, src + 1, m.seq);
      break;
    case kRpcReply:
      eng.schedule_message(m.resume, m.deliver_t, m.sent_at, src + 1, m.seq);
      break;
    case kForgetStream:
      eng.spawn_message(forget_stream_task(m), m.deliver_t, m.sent_at, src + 1,
                        m.seq);
      break;
    default:
      PFSC_REQUIRE(false, "FileSystem: unknown cross-domain message kind");
  }
}

void FileSystem::run_all() {
  if (shards_ != nullptr) {
    shards_->run();
  } else {
    eng_->run();
  }
}

std::size_t FileSystem::sched_queue_depth() const {
  std::size_t depth = 0;
  for (const auto& s : oss_scheds_) depth += s->queue_depth();
  return depth;
}

std::size_t FileSystem::sched_in_service() const {
  std::size_t n = 0;
  for (const auto& s : oss_scheds_) n += s->in_service();
  return n;
}

std::map<sched::JobId, Bytes> FileSystem::sched_served_by_job() const {
  std::map<sched::JobId, Bytes> merged;
  for (const auto& s : oss_scheds_) {
    for (const auto& [job, bytes] : s->served_by_job()) merged[job] += bytes;
  }
  return merged;
}

double FileSystem::sched_jain() const {
  std::vector<double> shares;
  for (const auto& [job, bytes] : sched_served_by_job()) {
    shares.push_back(static_cast<double>(bytes));
  }
  return jain_index(shares);
}

void FileSystem::fail_ost(OstIndex ost) {
  PFSC_REQUIRE(ost < ost_failed_.size(), "fail_ost: bad OST index");
  ost_failed_[ost] = true;
}
void FileSystem::restore_ost(OstIndex ost) {
  PFSC_REQUIRE(ost < ost_failed_.size(), "restore_ost: bad OST index");
  ost_failed_[ost] = false;
}
void FileSystem::degrade_ost(OstIndex ost, double factor) {
  ost_disk(ost).set_service_multiplier(factor);
}

bool FileSystem::ost_failed(OstIndex ost) const {
  PFSC_REQUIRE(ost < ost_failed_.size(), "ost_failed: bad OST index");
  return ost_failed_[ost];
}
std::uint32_t FileSystem::healthy_ost_count() const {
  std::uint32_t n = 0;
  for (bool failed : ost_failed_) {
    if (!failed) ++n;
  }
  return n;
}

std::vector<std::uint32_t> FileSystem::ost_occupancy(
    std::span<const InodeId> files) const {
  std::vector<std::uint32_t> per_ost(params_.ost_count, 0);
  for (InodeId id : files) {
    const Inode& file = inode(id);
    // A file touches each of its layout OSTs exactly once (no duplicates in
    // a layout), so counting layout entries counts distinct files.
    for (OstIndex ost : file.layout.osts) ++per_ost[ost];
  }
  return per_ost;
}

std::vector<std::uint32_t> FileSystem::collision_histogram(
    std::span<const InodeId> files) const {
  auto per_ost = ost_occupancy(files);
  std::uint32_t max_k = 0;
  for (auto k : per_ost) max_k = std::max(max_k, k);
  std::vector<std::uint32_t> hist(max_k + 1, 0);
  for (auto k : per_ost) ++hist[k];
  return hist;
}

Bytes FileSystem::total_bytes_written() const {
  Bytes total = 0;
  for (const auto& disk : ost_disks_) total += disk->bytes_serviced();
  return total;
}

}  // namespace pfsc::lustre
