#include "lustre/extent_map.hpp"

#include <algorithm>

#include "support/error.hpp"

namespace pfsc::lustre {

void ExtentMap::insert(Bytes offset, Bytes length) {
  if (length == 0) return;
  Bytes start = offset;
  Bytes end = offset + length;

  // Find the first extent that could touch [start, end): the one before
  // `start` (if it reaches start) or the first one starting within range.
  auto it = extents_.upper_bound(start);
  if (it != extents_.begin()) {
    auto prev = std::prev(it);
    if (prev->second >= start) it = prev;
  }
  while (it != extents_.end() && it->first <= end) {
    start = std::min(start, it->first);
    end = std::max(end, it->second);
    total_ -= it->second - it->first;
    it = extents_.erase(it);
  }
  extents_.emplace(start, end);
  total_ += end - start;
}

bool ExtentMap::covers(Bytes offset, Bytes length) const {
  if (length == 0) return true;
  auto it = extents_.upper_bound(offset);
  if (it == extents_.begin()) return false;
  --it;
  return it->first <= offset && it->second >= offset + length;
}

Bytes ExtentMap::covered_bytes(Bytes offset, Bytes length) const {
  if (length == 0) return 0;
  const Bytes end = offset + length;
  Bytes covered = 0;
  auto it = extents_.upper_bound(offset);
  if (it != extents_.begin()) {
    auto prev = std::prev(it);
    if (prev->second > offset) it = prev;
  }
  for (; it != extents_.end() && it->first < end; ++it) {
    const Bytes lo = std::max(offset, it->first);
    const Bytes hi = std::min(end, it->second);
    if (hi > lo) covered += hi - lo;
  }
  return covered;
}

Bytes ExtentMap::end_offset() const {
  if (extents_.empty()) return 0;
  return extents_.rbegin()->second;
}

void ExtentMap::clear() {
  extents_.clear();
  total_ = 0;
}

}  // namespace pfsc::lustre
