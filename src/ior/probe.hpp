// Single-OST contention probe (the custom benchmark behind Figure 2).
//
// "a custom-written benchmark that creates a split communicator that
//  therefore allows each process to read and write its own file in a single
//  MPI application. The benchmark opens a number of files, with the same
//  Lustre configuration (a single 1 MB stripe). Using the stripe_offset MPI
//  hint, the OST to use is specified such that every rank writes to its own
//  file that is stored on the same target."
//
// Every writer gets its own file pinned to `target_ost`; per-process
// bandwidth is measured individually so the divergence from ideal 1/n
// scaling is visible.
#pragma once

#include <string>
#include <vector>

#include "mpi/runtime.hpp"

namespace pfsc::ior {

struct ProbeConfig {
  std::uint32_t num_writers = 1;
  Bytes bytes_per_writer = 64_MiB;
  Bytes transfer_size = 1_MiB;
  lustre::OstIndex target_ost = 0;
  std::string dir = "/probe";
};

struct ProbeResult {
  std::vector<double> per_process_mbps;
  double mean_mbps = 0.0;
};

/// Runs the probe on an existing runtime (spawns its own rank processes and
/// runs the engine to completion).
ProbeResult run_probe(mpi::Runtime& runtime, const ProbeConfig& config);

}  // namespace pfsc::ior
