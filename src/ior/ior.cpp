#include "ior/ior.hpp"

namespace pfsc::ior {

using lustre::Errno;

IorJob::IorJob(mpi::Communicator& comm, lustre::FileSystem& fs, Config config,
               plfs::Plfs* plfs)
    : comm_(&comm), fs_(&fs), config_(std::move(config)), plfs_(plfs) {
  PFSC_REQUIRE(config_.transfer_size > 0, "IOR: transfer size must be positive");
  PFSC_REQUIRE(config_.block_size % config_.transfer_size == 0,
               "IOR: block size must be a multiple of transfer size");
  PFSC_REQUIRE(config_.segment_count > 0, "IOR: segment count must be positive");
  // IOR knows each file's final size up front; declare it so a PFL spec
  // can pick the stripe count by size class. An explicit hint wins.
  if (config_.hints.expected_file_size == 0) {
    config_.hints.expected_file_size =
        config_.file_per_process
            ? bytes_per_rank()
            : bytes_per_rank() * static_cast<Bytes>(comm.size());
  }
  if (config_.file_per_process) {
    self_comms_.resize(static_cast<std::size_t>(comm.size()));
    rank_files_.resize(static_cast<std::size_t>(comm.size()));
    for (int r = 0; r < comm.size(); ++r) {
      self_comms_[static_cast<std::size_t>(r)] =
          std::make_unique<mpi::Communicator>(comm.engine(), 1);
      rank_files_[static_cast<std::size_t>(r)] = std::make_unique<mpiio::File>(
          *self_comms_[static_cast<std::size_t>(r)], fs,
          config_.test_file + "." + std::to_string(r), config_.hints, plfs_);
    }
  } else {
    file_ = std::make_unique<mpiio::File>(comm, fs, config_.test_file,
                                          config_.hints, plfs_);
  }
}

mpiio::File& IorJob::file_for(int rank) {
  if (config_.file_per_process) {
    return *rank_files_[static_cast<std::size_t>(rank)];
  }
  return *file_;
}

std::vector<lustre::InodeId> IorJob::file_inos() const {
  std::vector<lustre::InodeId> inos;
  if (config_.file_per_process) {
    inos.reserve(rank_files_.size());
    for (const auto& f : rank_files_) inos.push_back(f->context().ino);
  } else {
    inos.push_back(file_->context().ino);
  }
  return inos;
}

Bytes IorJob::bytes_per_rank() const {
  return config_.block_size * config_.segment_count;
}

Bytes IorJob::rank_offset(std::uint32_t segment, int rank,
                          std::uint32_t transfer) const {
  const auto n = static_cast<Bytes>(comm_->size());
  return (static_cast<Bytes>(segment) * n + static_cast<Bytes>(rank)) *
             config_.block_size +
         static_cast<Bytes>(transfer) * config_.transfer_size;
}

sim::Co<void> IorJob::write_phase(int rank, lustre::Client& client,
                                  Result& local) {
  sim::Engine& eng = comm_->engine();
  mpiio::File& file = file_for(rank);
  const int file_rank = config_.file_per_process ? 0 : rank;
  co_await comm_->barrier(rank);
  const Seconds t0 = eng.now();

  Errno err = co_await file.open(file_rank, client, /*create=*/true);
  const std::uint32_t transfers =
      static_cast<std::uint32_t>(config_.block_size / config_.transfer_size);
  for (std::uint32_t seg = 0; err == Errno::ok && seg < config_.segment_count;
       ++seg) {
    for (std::uint32_t j = 0; err == Errno::ok && j < transfers; ++j) {
      // File-per-process writes are dense within the rank's own file.
      const Bytes off = config_.file_per_process
                            ? static_cast<Bytes>(seg) * config_.block_size +
                                  static_cast<Bytes>(j) * config_.transfer_size
                            : rank_offset(seg, rank, j);
      err = config_.use_collective
                ? co_await file.write_at_all(file_rank, off, config_.transfer_size)
                : co_await file.write_at(file_rank, off, config_.transfer_size);
    }
  }
  const Errno close_err = co_await file.close(file_rank);
  if (err == Errno::ok) err = close_err;
  co_await comm_->barrier(rank);

  local.write_time = eng.now() - t0;
  if (local.err == Errno::ok) local.err = err;
}

sim::Co<void> IorJob::read_phase(int rank, lustre::Client& client,
                                 Result& local) {
  sim::Engine& eng = comm_->engine();
  mpiio::File& file = file_for(rank);
  const int file_rank = config_.file_per_process ? 0 : rank;
  // IOR's -C: read the data a shifted rank wrote (shared-file mode only).
  const int eff_rank = config_.file_per_process
                           ? rank
                           : (rank + config_.reorder_tasks) % comm_->size();
  co_await comm_->barrier(rank);
  const Seconds t0 = eng.now();

  Errno err = co_await file.open(file_rank, client, /*create=*/false);
  const std::uint32_t transfers =
      static_cast<std::uint32_t>(config_.block_size / config_.transfer_size);
  for (std::uint32_t seg = 0; err == Errno::ok && seg < config_.segment_count;
       ++seg) {
    for (std::uint32_t j = 0; err == Errno::ok && j < transfers; ++j) {
      const Bytes off = config_.file_per_process
                            ? static_cast<Bytes>(seg) * config_.block_size +
                                  static_cast<Bytes>(j) * config_.transfer_size
                            : rank_offset(seg, eff_rank, j);
      err = config_.use_collective
                ? co_await file.read_at_all(file_rank, off, config_.transfer_size)
                : co_await file.read_at(file_rank, off, config_.transfer_size);
    }
  }
  const Errno close_err = co_await file.close(file_rank);
  if (err == Errno::ok) err = close_err;
  co_await comm_->barrier(rank);

  local.read_time = eng.now() - t0;
  if (local.err == Errno::ok) local.err = err;
}

sim::Task IorJob::rank_main(int rank, lustre::Client& client) {
  co_await run_rank(rank, client);
}

sim::Co<void> IorJob::run_rank(int rank, lustre::Client& client) {
  client.set_job(config_.job_id);
  Result local;
  if (config_.write_file) co_await write_phase(rank, client, local);
  if (config_.read_file) co_await read_phase(rank, client, local);

  if (rank == 0) {
    local.total_bytes =
        bytes_per_rank() * static_cast<Bytes>(comm_->size());
    local.write_mbps = config_.write_file
                           ? bandwidth_mbps(local.total_bytes, local.write_time)
                           : 0.0;
    local.read_mbps = config_.read_file
                          ? bandwidth_mbps(local.total_bytes, local.read_time)
                          : 0.0;
    if (config_.verify_extents && config_.write_file &&
        local.err == Errno::ok) {
      if (config_.file_per_process) {
        local.verified = true;
        for (const auto& f : rank_files_) {
          if (config_.hints.driver == mpiio::Driver::ad_plfs) {
            local.verified = local.verified && f->size() == bytes_per_rank();
          } else {
            const lustre::Inode& node = fs_->inode(f->context().ino);
            local.verified =
                local.verified && node.written.covers(0, bytes_per_rank());
          }
        }
      } else if (config_.hints.driver == mpiio::Driver::ad_plfs) {
        local.verified = file_->size() == local.total_bytes;
      } else {
        const lustre::Inode& node = fs_->inode(file_->context().ino);
        local.verified = node.written.covers(0, local.total_bytes);
      }
    }
    result_ = local;
  }
  ++finished_;
}

const Result& IorJob::result() const {
  PFSC_REQUIRE(finished(), "IorJob::result: job has not finished");
  return result_;
}

Result run_ior(mpi::Runtime& runtime, Config config, plfs::Plfs* plfs) {
  IorJob job(runtime.world(), runtime.fs(), std::move(config), plfs);
  runtime.run_to_completion([&](int rank) -> sim::Task {
    return job.rank_main(rank, runtime.client(rank));
  });
  return job.result();
}

}  // namespace pfsc::ior
