// IOR-style synthetic workload engine.
//
// Reproduces the access pattern of the paper's Table II configuration:
// a shared file written through MPI-IO with blockSize 4 MiB, transferSize
// 1 MiB and segmentCount 100 (segmented layout: segment s, rank r writes
// block s*n + r). Timing follows IOR: barrier, open+write+close, barrier;
// bandwidth = aggregate bytes / elapsed.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "mpi/runtime.hpp"
#include "mpiio/file.hpp"

namespace pfsc::ior {

struct Config {
  Bytes block_size = 4_MiB;
  Bytes transfer_size = 1_MiB;
  std::uint32_t segment_count = 100;
  bool write_file = true;
  bool read_file = false;
  /// write_at_all / read_at_all (IOR's `-c` collective mode) vs write_at.
  bool use_collective = true;
  /// IOR's -F: one file per process instead of a single shared file.
  bool file_per_process = false;
  /// IOR's -C: shift ranks by this many positions for the read phase, so
  /// nobody re-reads what it wrote (defeats client caching on real
  /// systems; here it exercises cross-rank read resolution).
  int reorder_tasks = 0;
  std::string test_file = "/ior.dat";
  /// Job every rank's RPCs are tagged with (OSS schedulers arbitrate per
  /// JobId); multi-job scenarios give each contending job its own id.
  lustre::sched::JobId job_id = lustre::sched::kDefaultJob;
  mpiio::Hints hints;
  /// After the write phase, assert that the file covers the full extent
  /// (costless introspection; catches middleware bugs in every run).
  bool verify_extents = true;
};

struct Result {
  lustre::Errno err = lustre::Errno::ok;
  Seconds write_time = 0.0;
  Seconds read_time = 0.0;
  Bytes total_bytes = 0;
  double write_mbps = 0.0;
  double read_mbps = 0.0;
  bool verified = false;
};

/// One IOR execution across a communicator. Spawn rank_main for every rank
/// of `comm`; after the engine runs, result() holds the aggregate numbers.
class IorJob {
 public:
  IorJob(mpi::Communicator& comm, lustre::FileSystem& fs, Config config,
         plfs::Plfs* plfs = nullptr);

  IorJob(const IorJob&) = delete;
  IorJob& operator=(const IorJob&) = delete;

  sim::Task rank_main(int rank, lustre::Client& client);

  /// Same body as rank_main but awaitable from another coroutine (used when
  /// several jobs share one MPI world via comm_split).
  sim::Co<void> run_rank(int rank, lustre::Client& client);

  bool finished() const { return finished_ == comm_->size(); }
  const Result& result() const;
  const Config& config() const { return config_; }
  mpiio::File& file() { return *file_; }

  /// Inodes of every data file the job wrote (one shared file, or one per
  /// rank under -F) — the cross-job OST contention census input.
  std::vector<lustre::InodeId> file_inos() const;

  /// Per-process data volume (block_size rounded to whole transfers).
  Bytes bytes_per_rank() const;

 private:
  sim::Co<void> write_phase(int rank, lustre::Client& client, Result& local);
  sim::Co<void> read_phase(int rank, lustre::Client& client, Result& local);
  Bytes rank_offset(std::uint32_t segment, int rank, std::uint32_t transfer) const;

  mpiio::File& file_for(int rank);

  mpi::Communicator* comm_;
  lustre::FileSystem* fs_;
  Config config_;
  plfs::Plfs* plfs_;
  std::unique_ptr<mpiio::File> file_;  // shared-file mode
  // file-per-process mode: one single-rank communicator + File per rank.
  std::vector<std::unique_ptr<mpi::Communicator>> self_comms_;
  std::vector<std::unique_ptr<mpiio::File>> rank_files_;
  Result result_;
  int finished_ = 0;
};

/// Convenience: run one IOR job over a fresh runtime and return the result.
Result run_ior(mpi::Runtime& runtime, Config config, plfs::Plfs* plfs = nullptr);

}  // namespace pfsc::ior
