#include "ior/probe.hpp"

#include "support/stats.hpp"

namespace pfsc::ior {

namespace {

sim::Task probe_rank(mpi::Runtime& runtime, const ProbeConfig& config, int rank,
                     ProbeResult& out) {
  lustre::Client& client = runtime.client(rank);
  mpi::Communicator& comm = runtime.world();
  sim::Engine& eng = runtime.engine();
  // Each probe writer is its own "job": the Fig. 2 contention probe is
  // exactly n independent streams, which is what per-job policies split.
  client.set_job(static_cast<lustre::sched::JobId>(rank));

  // Rank 0 makes the directory (races with nothing: rank order within the
  // same timestamp is deterministic, and EEXIST is tolerated anyway).
  if (!runtime.fs().exists(config.dir)) {
    auto made = co_await client.mkdir(config.dir);
    PFSC_ASSERT(made.ok() || made.err == lustre::Errno::eexist);
  }
  co_await comm.barrier(rank);

  // Each rank writes its own file, all pinned to the same OST by the
  // stripe_offset hint, with a single 1 MiB stripe.
  lustre::StripeSettings settings;
  settings.stripe_count = 1;
  settings.stripe_size = 1_MiB;
  settings.stripe_offset = static_cast<std::int32_t>(config.target_ost);

  const std::string path = config.dir + "/f" + std::to_string(rank);
  auto created = co_await client.create(path, settings);
  PFSC_ASSERT(created.ok());

  co_await comm.barrier(rank);
  const Seconds t0 = eng.now();
  Bytes done = 0;
  // Buffered POSIX writes (the page cache pipelines them), fsync'd at the
  // end -- what the custom benchmark on Cab really did.
  while (done < config.bytes_per_writer) {
    const Bytes chunk =
        std::min<Bytes>(config.transfer_size, config.bytes_per_writer - done);
    const lustre::Errno e = co_await client.write_buffered(created.value, done, chunk);
    PFSC_ASSERT(e == lustre::Errno::ok);
    done += chunk;
  }
  const lustre::Errno fe = co_await client.flush();
  PFSC_ASSERT(fe == lustre::Errno::ok);
  const Seconds elapsed = eng.now() - t0;
  out.per_process_mbps[static_cast<std::size_t>(rank)] =
      bandwidth_mbps(config.bytes_per_writer, elapsed);
}

}  // namespace

ProbeResult run_probe(mpi::Runtime& runtime, const ProbeConfig& config) {
  PFSC_REQUIRE(runtime.nprocs() == static_cast<int>(config.num_writers),
               "run_probe: runtime size must match num_writers");
  ProbeResult result;
  result.per_process_mbps.assign(config.num_writers, 0.0);
  runtime.run_to_completion([&](int rank) -> sim::Task {
    return probe_rank(runtime, config, rank, result);
  });
  result.mean_mbps = mean_of(result.per_process_mbps);
  return result;
}

}  // namespace pfsc::ior
