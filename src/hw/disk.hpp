// Object-storage-target disk model.
//
// Each OST backs onto a RAID-6 (8+2) volume of 10k-RPM spindles fronted by
// a write-back controller cache. The behaviours that matter for this study:
//
//  * STREAMING: contiguous traffic within one backend object runs at the
//    volume's sequential rate; the controller coalesces sub-stripe
//    sequential writes into full-stripe destages (no read-modify-write).
//  * ELEVATOR: the scheduler drains up to `batch` queued requests from the
//    current stream — served in ascending offset order — before rotating to
//    the next stream.
//  * SEEK: switching streams, or jumping within a stream by more than
//    `reorder_window` (the slack the write-back caches absorb), repositions
//    the heads: `seek_time`, plus read-modify-write for sub-stripe writes
//    (a discontiguous partial-stripe landing cannot be coalesced).
//  * CONTENTION AMPLIFICATION: with many competing streams the cache is
//    partitioned ever thinner, prefetch/destage efficiency collapses, and
//    each switch costs progressively more:
//        seek_eff = seek_time * (1 + alpha * max(0, streams - knee)).
//    This is the mechanism behind the paper's Figure 2 (per-process
//    bandwidth diverging from ideal 1/n beyond ~3 writers) and the PLFS
//    collapse at scale (Tables VII-IX).
//
// A request is (stream, offset, bytes); streams are backend objects. The
// submit() awaitable completes when the request has been serviced.
#pragma once

#include <coroutine>
#include <cstdint>
#include <deque>
#include <map>
#include <unordered_map>
#include <vector>

#include "sim/engine.hpp"
#include "sim/resources.hpp"
#include "sim/task.hpp"
#include "support/units.hpp"
#include "trace/recorder.hpp"

namespace pfsc::hw {

struct DiskParams {
  BytesPerSecond sequential_bw = mb_per_sec(300.0);  // streaming write rate
  Seconds seek_time = 6.0e-3;                        // base reposition cost
  Seconds per_request_overhead = 0.25e-3;            // RPC/service setup
  Bytes raid_full_stripe = 4_MiB;                    // 8 data disks x 512 KiB
  double rmw_factor = 0.45;      // bw multiplier for discontiguous sub-stripe writes
  double read_factor = 1.15;     // reads slightly faster than writes
  std::uint32_t batch = 8;       // elevator: max consecutive same-stream reqs
  /// Same-stream offset jumps within this window are absorbed by the
  /// write-back caches and charged no seek. 0 = strict contiguity.
  Bytes reorder_window = 16_MiB;
  /// Contention amplification: the seek-cost multiplier grows linearly by
  /// `alpha` per hot stream beyond `knee` (cache partitioning; calibrated
  /// against the paper's Figure 2, where one OST's throughput roughly
  /// halves by 16 writers), plus a quadratic term beyond `quad_knee`
  /// (working set far past the controller cache: destage efficiency
  /// collapses -- the regime of the paper's Tables VIII/IX). Hot streams
  /// are the distinct streams serviced within the last `hot_window`
  /// requests.
  double contention_alpha = 0.67;
  std::uint32_t contention_knee = 3;
  double contention_quad_alpha = 0.35;
  std::uint32_t contention_quad_knee = 10;
  std::uint32_t hot_window = 64;
};

class DiskModel {
 public:
  using StreamId = std::uint64_t;

  DiskModel(sim::Engine& eng, DiskParams params);

  DiskModel(const DiskModel&) = delete;
  DiskModel& operator=(const DiskModel&) = delete;

  /// Awaitable I/O request; resumes the caller at service completion.
  auto submit(StreamId stream, Bytes offset, Bytes bytes, bool is_write) {
    struct Awaiter {
      DiskModel& disk;
      StreamId stream;
      Bytes offset;
      Bytes bytes;
      bool is_write;
      bool await_ready() const noexcept { return false; }
      void await_suspend(std::coroutine_handle<> h) {
        disk.enqueue(Request{stream, offset, bytes, is_write, h});
      }
      void await_resume() const noexcept {}
    };
    PFSC_ASSERT(bytes > 0);
    return Awaiter{*this, stream, offset, bytes, is_write};
  }

  /// Mark a stream closed so its positional state can be dropped.
  void forget_stream(StreamId stream);

  /// Degraded operation (RAID rebuild, media errors): every subsequent
  /// service takes `factor` times as long. 1.0 restores full speed.
  void set_service_multiplier(double factor);
  double service_multiplier() const { return service_multiplier_; }

  // -- statistics ------------------------------------------------------
  Bytes bytes_serviced() const { return bytes_serviced_; }
  std::uint64_t requests_serviced() const { return requests_; }
  std::uint64_t stream_switches() const { return switches_; }
  std::uint64_t seeks() const { return seeks_; }
  Seconds busy_time() const { return busy_time_; }
  Seconds seek_time_total() const { return seek_time_total_; }
  /// Streams with at least one queued request right now (O(1): maintained
  /// incrementally, not recomputed by scanning the stream table).
  std::size_t runnable_streams() const { return runnable_; }
  std::size_t queue_depth() const { return queued_; }
  /// High-water mark of concurrently runnable streams.
  std::size_t max_runnable_streams() const { return max_runnable_; }
  /// Distinct streams serviced within the last `hot_window` requests.
  std::size_t hot_streams() const { return hot_counts_.size(); }
  const DiskParams& params() const { return params_; }

  /// Name this disk's trace track ("ost7.disk"); set by the owning
  /// FileSystem. Unnamed disks trace as "disk".
  void set_trace_label(std::string label) { trace_label_ = std::move(label); }

 private:
  struct Request {
    StreamId stream;
    Bytes offset;
    Bytes bytes;
    bool is_write;
    std::coroutine_handle<> waiter;
  };

  /// Per-stream elevator queue: requests served in ascending offset order.
  struct StreamQueue {
    std::multimap<Bytes, Request> pending;
  };

  void enqueue(Request req);
  sim::Task service_loop();
  Seconds service_time(const Request& req, bool switched);

  sim::Engine* eng_;
  DiskParams params_;
  sim::Event work_;

  std::unordered_map<StreamId, StreamQueue> queues_;
  std::deque<StreamId> rotation_;  // runnable streams, oldest first
  std::unordered_map<StreamId, Bytes> next_offset_;  // expected seq. position
  StreamId current_stream_ = 0;
  bool have_current_ = false;
  std::uint32_t batch_used_ = 0;
  std::size_t queued_ = 0;
  std::size_t runnable_ = 0;

  Bytes bytes_serviced_ = 0;
  std::uint64_t requests_ = 0;
  std::uint64_t switches_ = 0;
  std::uint64_t seeks_ = 0;
  double service_multiplier_ = 1.0;
  Seconds busy_time_ = 0.0;
  Seconds seek_time_total_ = 0.0;
  std::size_t max_runnable_ = 0;

  // Sliding window of recently-serviced stream ids.
  std::deque<StreamId> hot_ring_;
  std::unordered_map<StreamId, std::uint32_t> hot_counts_;

  // Tracing: stream open/close instants, hot-window transitions, and one
  // sync span per serviced request (the loop serves one at a time).
  std::string trace_label_ = "disk";
  trace::TrackHandle track_;
  std::size_t traced_hot_ = static_cast<std::size_t>(-1);
};

}  // namespace pfsc::hw
