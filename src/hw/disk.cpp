#include "hw/disk.hpp"

#include <algorithm>

namespace pfsc::hw {

DiskModel::DiskModel(sim::Engine& eng, DiskParams params)
    : eng_(&eng), params_(params), work_(eng) {
  PFSC_REQUIRE(params.sequential_bw > 0.0, "DiskModel: sequential_bw must be positive");
  PFSC_REQUIRE(params.batch >= 1, "DiskModel: batch must be >= 1");
  eng.spawn(service_loop());
}

void DiskModel::enqueue(Request req) {
  auto [it, inserted] = queues_.try_emplace(req.stream);
  if (auto* rec = eng_->recorder();
      rec != nullptr && rec->enabled(trace::Cat::disk)) {
    const trace::TrackId track = track_.get(*rec, trace_label_);
    if (inserted) {
      rec->instant(trace::Cat::disk, track, "stream_open", eng_->now(),
                   static_cast<std::int64_t>(req.stream));
    }
    rec->counter(trace::Cat::disk, track, "queue", eng_->now(),
                 static_cast<double>(queued_ + 1));
  }
  if (it->second.pending.empty()) {
    ++runnable_;
    // Stream becomes runnable: add to the rotation unless it is the one
    // currently being drained.
    if (!(have_current_ && req.stream == current_stream_)) {
      rotation_.push_back(req.stream);
    }
  }
  it->second.pending.emplace(req.offset, std::move(req));
  ++queued_;
  max_runnable_ = std::max(max_runnable_, rotation_.size() + (have_current_ ? 1 : 0));
  work_.trigger();
}

void DiskModel::set_service_multiplier(double factor) {
  PFSC_REQUIRE(factor > 0.0, "set_service_multiplier: factor must be positive");
  service_multiplier_ = factor;
}

void DiskModel::forget_stream(StreamId stream) {
  if (auto* rec = eng_->recorder();
      rec != nullptr && rec->enabled(trace::Cat::disk)) {
    rec->instant(trace::Cat::disk, track_.get(*rec, trace_label_),
                 "stream_close", eng_->now(),
                 static_cast<std::int64_t>(stream));
  }
  auto it = queues_.find(stream);
  if (it != queues_.end() && it->second.pending.empty()) queues_.erase(it);
  next_offset_.erase(stream);
  // A closed stream can never be serviced again, so it must stop counting
  // towards the hot working set (long-running simulations that create and
  // unlink many files would otherwise overstate contention).
  if (hot_counts_.erase(stream) > 0) {
    std::erase(hot_ring_, stream);
  }
}

Seconds DiskModel::service_time(const Request& req, bool switched) {
  Seconds t = params_.per_request_overhead;
  bool seek = switched;
  auto pos = next_offset_.find(req.stream);
  if (pos == next_offset_.end()) {
    seek = true;
  } else if (pos->second != req.offset) {
    // Offset jump within the same stream: absorbed by write-back caching
    // when small, a real head reposition when large.
    const Bytes expected = pos->second;
    const Bytes gap = req.offset > expected ? req.offset - expected
                                            : expected - req.offset;
    if (gap > params_.reorder_window) seek = true;
  }

  double bw = params_.sequential_bw;
  if (req.is_write) {
    // Discontiguous sub-stripe writes cannot be coalesced into full-stripe
    // destages: RAID-6 read-modify-write. Sequential sub-stripe writes
    // coalesce in the controller cache and stream at full rate.
    if (seek && params_.raid_full_stripe > 0 &&
        req.bytes < params_.raid_full_stripe) {
      bw *= params_.rmw_factor;
    }
  } else {
    bw *= params_.read_factor;
  }

  if (seek) {
    // Competing streams partition the caches and defeat prefetch/destage:
    // each reposition costs more the more streams are hot. Both the
    // instantaneous queue and the recent working set count.
    const std::size_t streams = std::max(
        rotation_.size() + (have_current_ ? 1 : 0), hot_counts_.size());
    double factor = 1.0;
    if (streams > params_.contention_knee) {
      factor += params_.contention_alpha *
                static_cast<double>(streams - params_.contention_knee);
    }
    if (streams > params_.contention_quad_knee) {
      const auto over = static_cast<double>(streams - params_.contention_quad_knee);
      factor += params_.contention_quad_alpha * over * over;
    }
    const Seconds cost = params_.seek_time * factor;
    t += cost;
    seek_time_total_ += cost;
    ++seeks_;
  }
  t += static_cast<double>(req.bytes) / bw;
  return t * service_multiplier_;
}

sim::Task DiskModel::service_loop() {
  for (;;) {
    if (queued_ == 0) {
      work_.reset();
      co_await work_.wait();
      continue;
    }

    // Elevator pick: stay on the current stream for up to `batch` requests,
    // then (or when it drains) rotate to the oldest runnable stream.
    bool switched = false;
    const bool was_current = have_current_;
    const StreamId prev_stream = current_stream_;
    if (have_current_) {
      auto it = queues_.find(current_stream_);
      const bool exhausted = it == queues_.end() || it->second.pending.empty() ||
                             batch_used_ >= params_.batch;
      if (exhausted) {
        if (it != queues_.end() && !it->second.pending.empty()) {
          rotation_.push_back(current_stream_);  // re-queue leftover work
        }
        have_current_ = false;
      }
    }
    if (!have_current_) {
      PFSC_ASSERT(!rotation_.empty());
      current_stream_ = rotation_.front();
      rotation_.pop_front();
      // Skip stale rotation entries for drained streams.
      while (true) {
        auto it = queues_.find(current_stream_);
        if (it != queues_.end() && !it->second.pending.empty()) break;
        PFSC_ASSERT(!rotation_.empty());
        current_stream_ = rotation_.front();
        rotation_.pop_front();
      }
      have_current_ = true;
      batch_used_ = 0;
      // Re-selecting the only active stream is not a head movement.
      if (!was_current || current_stream_ != prev_stream) {
        switched = true;
        ++switches_;
      }
    }

    // Serve the stream's request closest after the head position (ascending
    // elevator); wrap to the lowest offset when past the end.
    auto& q = queues_.find(current_stream_)->second.pending;
    auto pick = q.begin();
    auto head = next_offset_.find(current_stream_);
    if (head != next_offset_.end()) {
      auto ge = q.lower_bound(head->second);
      if (ge != q.end()) pick = ge;
    }
    Request req = std::move(pick->second);
    q.erase(pick);
    --queued_;
    if (q.empty()) --runnable_;
    ++batch_used_;

    // Maintain the hot-stream window before costing the request.
    hot_ring_.push_back(req.stream);
    ++hot_counts_[req.stream];
    if (hot_ring_.size() > params_.hot_window) {
      const StreamId old = hot_ring_.front();
      hot_ring_.pop_front();
      auto hot_it = hot_counts_.find(old);
      if (--hot_it->second == 0) hot_counts_.erase(hot_it);
    }

    const Seconds t = service_time(req, switched);
    busy_time_ += t;
    bytes_serviced_ += req.bytes;
    ++requests_;
    next_offset_[req.stream] = req.offset + req.bytes;

    // One sync span per serviced request (the loop serves one at a time,
    // so spans on this track never nest), plus hot-set transitions.
    auto* rec = eng_->recorder();
    const bool traced = rec != nullptr && rec->enabled(trace::Cat::disk);
    if (traced) {
      const trace::TrackId track = track_.get(*rec, trace_label_);
      if (hot_counts_.size() != traced_hot_) {
        traced_hot_ = hot_counts_.size();
        rec->counter(trace::Cat::disk, track, "hot_streams", eng_->now(),
                     static_cast<double>(traced_hot_));
      }
      rec->begin(trace::Cat::disk, track, "service", eng_->now(), 0,
                 static_cast<std::int64_t>(req.stream),
                 static_cast<std::int64_t>(req.bytes));
    }

    co_await eng_->delay(t);
    if (traced) {
      rec->end(trace::Cat::disk, track_.get(*rec, trace_label_), "service",
               eng_->now(), 0, static_cast<std::int64_t>(req.stream));
    }
    eng_->schedule(req.waiter, eng_->now());
  }
}

}  // namespace pfsc::hw
