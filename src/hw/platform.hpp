// Platform descriptions: every calibration knob for the simulated testbeds.
//
// `cab_lscratchc()` models the system of the paper's Table I: the Cab
// cluster (1,200 × dual E5-2670 nodes, QDR InfiniBand) attached to the
// lscratchc Lustre file system (32 OSS, 480 OSTs, ~30 GB/s theoretical).
// Absolute constants are calibrated so the simulator lands in the paper's
// measured ballpark (see DESIGN.md §5); the *shapes* of the reproduced
// results do not depend on their exact values.
#pragma once

#include <cstdint>
#include <string>

#include "hw/disk.hpp"
#include "lustre/placement.hpp"
#include "lustre/sched/policy.hpp"
#include "sim/event_queue.hpp"
#include "sim/link.hpp"
#include "support/units.hpp"

namespace pfsc::hw {

struct PlatformParams {
  std::string name;

  // -- cluster ---------------------------------------------------------
  std::uint32_t nodes = 1200;
  std::uint32_t cores_per_node = 16;
  /// Effective per-node injection bandwidth into the I/O network.
  BytesPerSecond node_nic_bw = mb_per_sec(3200.0);
  /// Per-process I/O processing ceiling (memcpy + RPC stack, one core).
  BytesPerSecond per_process_bw = mb_per_sec(420.0);
  /// One-way message latency for RPCs (request and reply each pay this).
  Seconds rpc_latency = 25.0e-6;

  // -- file-system fabric ----------------------------------------------
  /// Aggregate islanded-I/O-network capacity (all clients -> all servers).
  BytesPerSecond fabric_bw = mb_per_sec(24000.0);

  // -- link sharing -------------------------------------------------------
  /// How concurrent flows share every bandwidth link (per-process pipe,
  /// node NIC, fabric, OSS front end). `fifo` is the historical
  /// store-and-forward server; `fair_share` is the processor-sharing model
  /// where n concurrent flows each see rate/n simultaneously. See
  /// sim/link.hpp and DESIGN.md for when each is appropriate.
  sim::LinkPolicy link_policy = sim::LinkPolicy::fifo;

  // -- event queue --------------------------------------------------------
  /// Pending-event queue backing the simulation engine. Purely a
  /// performance knob: both queues dispatch the identical (time, seq)
  /// order, pinned by the golden regression tests and the heap-vs-ladder
  /// property test. `ladder` (amortised O(1)) is the default; `binary_heap`
  /// is the O(log n) reference. See sim/event_queue.hpp and DESIGN.md §10.
  sim::EventQueuePolicy event_queue = sim::EventQueuePolicy::ladder;

  // -- OSS request scheduling ---------------------------------------------
  /// Server-side (NRS-style) request scheduling on each OSS: how the OSS
  /// orders competing jobs' bulk RPCs before link/disk service. `fifo` is
  /// arrival order with no admission control (the historical behaviour,
  /// pinned bit-for-bit by the golden regression tests); `job_fair` runs
  /// deficit round robin across JobIds; `token_bucket` caps each job's
  /// service rate. See lustre/sched/scheduler.hpp and DESIGN.md §6.
  lustre::sched::SchedPolicy oss_sched_policy = lustre::sched::SchedPolicy::fifo;
  /// Constants for the non-fifo scheduling policies (quantum, service
  /// slots, per-job rate, bucket depth).
  lustre::sched::SchedTuning oss_sched{};

  // -- OST placement -------------------------------------------------------
  /// MDS allocator policy for new-file OST sets. `uniform_random` is the
  /// paper's lscratchc behaviour (the default, pinned bit-for-bit by the
  /// golden tests); `load_aware`/`node_affine` act on the contention model
  /// by spreading live per-OST demand. See lustre/placement.hpp and
  /// DESIGN.md §13.
  lustre::PlacementKind ost_placement = lustre::PlacementKind::uniform_random;

  // -- servers -----------------------------------------------------------
  std::uint32_t oss_count = 32;
  std::uint32_t ost_count = 480;
  /// Effective per-OSS network/service bandwidth. 32 x 600 MB/s ~= 19 GB/s,
  /// matching the ~18 GB/s saturation the paper observes.
  BytesPerSecond oss_bw = mb_per_sec(600.0);
  DiskParams ost_disk{};

  // -- metadata ----------------------------------------------------------
  /// MDS cost to create one file (allocate layout, journal).
  Seconds mds_create_time = 0.4e-3;
  /// MDS cost of open/stat on an existing file.
  Seconds mds_open_time = 0.1e-3;
  /// Concurrent metadata operations the MDS can service.
  std::uint32_t mds_parallelism = 16;

  // -- Lustre defaults ---------------------------------------------------
  std::uint32_t default_stripe_count = 2;
  Bytes default_stripe_size = 1_MiB;
  /// Per-file stripe-count ceiling (160 in Lustre 2.4.x).
  std::uint32_t max_stripe_count = 160;
  /// Largest bulk RPC a client issues to one OST.
  Bytes max_rpc_size = 4_MiB;
  /// Max in-flight RPCs per client process towards the file system.
  std::uint32_t client_max_rpcs_in_flight = 8;
  /// Page-cache write-back budget per client process: buffered writes
  /// return once accepted, with up to this many bytes still in flight.
  Bytes client_writeback_bytes = 32_MiB;

  // -- execution ----------------------------------------------------------
  /// Simulation domains (worker threads) for sharded runs: clients plus
  /// per-OSS shards synchronised by conservative lookahead (DESIGN.md §12).
  /// 1 = single engine (the default), 0 = auto (one per hardware thread),
  /// both clamped to 1 + oss_count. Results are bit-for-bit identical at
  /// any value; this knob only trades threads for wall-clock time.
  std::uint32_t sim_domains = 1;

  std::uint32_t total_cores() const { return nodes * cores_per_node; }
};

/// The paper's testbed (Table I): Cab + lscratchc, Lustre 2.4.2.
PlatformParams cab_lscratchc();

/// The Stampede-like configuration of Table VI (58 OSS, 160 OSTs) used to
/// extrapolate the contention metrics to another machine.
PlatformParams stampede_fs();

/// A deliberately tiny platform for fast unit/integration tests.
PlatformParams tiny_test_platform();

}  // namespace pfsc::hw
