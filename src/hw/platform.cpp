#include "hw/platform.hpp"

namespace pfsc::hw {

PlatformParams cab_lscratchc() {
  PlatformParams p;
  p.name = "cab-lscratchc";
  // Defaults in the struct are the calibrated Cab values.
  return p;
}

PlatformParams stampede_fs() {
  PlatformParams p;
  p.name = "stampede-scratch";
  p.nodes = 6400;
  p.cores_per_node = 16;
  p.oss_count = 58;
  p.ost_count = 160;
  p.oss_bw = mb_per_sec(2600.0);  // ~150 GB/s theoretical scratch
  p.fabric_bw = mb_per_sec(100000.0);
  p.max_stripe_count = 160;
  return p;
}

PlatformParams tiny_test_platform() {
  PlatformParams p;
  p.name = "tiny-test";
  p.nodes = 8;
  p.cores_per_node = 4;
  p.oss_count = 2;
  p.ost_count = 8;
  p.oss_bw = mb_per_sec(800.0);
  p.fabric_bw = mb_per_sec(4000.0);
  p.max_stripe_count = 8;
  p.default_stripe_count = 2;
  p.mds_create_time = 0.1e-3;
  return p;
}

}  // namespace pfsc::hw
