# Empty compiler generated dependencies file for pfsc_ior.
# This may be replaced when dependencies are built.
