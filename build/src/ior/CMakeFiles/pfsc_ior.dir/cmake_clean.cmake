file(REMOVE_RECURSE
  "CMakeFiles/pfsc_ior.dir/ior.cpp.o"
  "CMakeFiles/pfsc_ior.dir/ior.cpp.o.d"
  "CMakeFiles/pfsc_ior.dir/probe.cpp.o"
  "CMakeFiles/pfsc_ior.dir/probe.cpp.o.d"
  "libpfsc_ior.a"
  "libpfsc_ior.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pfsc_ior.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
