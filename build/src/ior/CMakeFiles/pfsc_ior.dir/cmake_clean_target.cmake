file(REMOVE_RECURSE
  "libpfsc_ior.a"
)
