file(REMOVE_RECURSE
  "libpfsc_harness.a"
)
