file(REMOVE_RECURSE
  "CMakeFiles/pfsc_harness.dir/experiments.cpp.o"
  "CMakeFiles/pfsc_harness.dir/experiments.cpp.o.d"
  "libpfsc_harness.a"
  "libpfsc_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pfsc_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
