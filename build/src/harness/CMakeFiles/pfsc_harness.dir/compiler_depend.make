# Empty compiler generated dependencies file for pfsc_harness.
# This may be replaced when dependencies are built.
