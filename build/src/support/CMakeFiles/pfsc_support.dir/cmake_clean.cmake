file(REMOVE_RECURSE
  "CMakeFiles/pfsc_support.dir/rng.cpp.o"
  "CMakeFiles/pfsc_support.dir/rng.cpp.o.d"
  "CMakeFiles/pfsc_support.dir/stats.cpp.o"
  "CMakeFiles/pfsc_support.dir/stats.cpp.o.d"
  "CMakeFiles/pfsc_support.dir/table.cpp.o"
  "CMakeFiles/pfsc_support.dir/table.cpp.o.d"
  "CMakeFiles/pfsc_support.dir/units.cpp.o"
  "CMakeFiles/pfsc_support.dir/units.cpp.o.d"
  "libpfsc_support.a"
  "libpfsc_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pfsc_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
