# Empty dependencies file for pfsc_support.
# This may be replaced when dependencies are built.
