file(REMOVE_RECURSE
  "libpfsc_support.a"
)
