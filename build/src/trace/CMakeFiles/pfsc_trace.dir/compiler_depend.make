# Empty compiler generated dependencies file for pfsc_trace.
# This may be replaced when dependencies are built.
