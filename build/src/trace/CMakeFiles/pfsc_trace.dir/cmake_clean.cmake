file(REMOVE_RECURSE
  "CMakeFiles/pfsc_trace.dir/telemetry.cpp.o"
  "CMakeFiles/pfsc_trace.dir/telemetry.cpp.o.d"
  "libpfsc_trace.a"
  "libpfsc_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pfsc_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
