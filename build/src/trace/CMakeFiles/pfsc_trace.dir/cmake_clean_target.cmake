file(REMOVE_RECURSE
  "libpfsc_trace.a"
)
