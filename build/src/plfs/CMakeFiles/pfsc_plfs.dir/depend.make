# Empty dependencies file for pfsc_plfs.
# This may be replaced when dependencies are built.
