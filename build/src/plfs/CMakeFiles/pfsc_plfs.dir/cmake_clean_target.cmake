file(REMOVE_RECURSE
  "libpfsc_plfs.a"
)
