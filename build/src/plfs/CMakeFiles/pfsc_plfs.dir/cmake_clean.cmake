file(REMOVE_RECURSE
  "CMakeFiles/pfsc_plfs.dir/plfs.cpp.o"
  "CMakeFiles/pfsc_plfs.dir/plfs.cpp.o.d"
  "libpfsc_plfs.a"
  "libpfsc_plfs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pfsc_plfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
