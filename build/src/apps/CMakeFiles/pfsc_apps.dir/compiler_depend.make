# Empty compiler generated dependencies file for pfsc_apps.
# This may be replaced when dependencies are built.
