file(REMOVE_RECURSE
  "libpfsc_apps.a"
)
