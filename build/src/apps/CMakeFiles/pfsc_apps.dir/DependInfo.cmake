
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/checkpoint.cpp" "src/apps/CMakeFiles/pfsc_apps.dir/checkpoint.cpp.o" "gcc" "src/apps/CMakeFiles/pfsc_apps.dir/checkpoint.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/mpiio/CMakeFiles/pfsc_mpiio.dir/DependInfo.cmake"
  "/root/repo/build/src/mpi/CMakeFiles/pfsc_mpi.dir/DependInfo.cmake"
  "/root/repo/build/src/plfs/CMakeFiles/pfsc_plfs.dir/DependInfo.cmake"
  "/root/repo/build/src/lustre/CMakeFiles/pfsc_lustre.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/pfsc_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/pfsc_support.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/pfsc_hw.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
