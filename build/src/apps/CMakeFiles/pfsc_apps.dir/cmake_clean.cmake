file(REMOVE_RECURSE
  "CMakeFiles/pfsc_apps.dir/checkpoint.cpp.o"
  "CMakeFiles/pfsc_apps.dir/checkpoint.cpp.o.d"
  "libpfsc_apps.a"
  "libpfsc_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pfsc_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
