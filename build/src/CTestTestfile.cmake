# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("support")
subdirs("sim")
subdirs("hw")
subdirs("lustre")
subdirs("mpi")
subdirs("mpiio")
subdirs("plfs")
subdirs("ior")
subdirs("core")
subdirs("harness")
subdirs("trace")
subdirs("apps")
