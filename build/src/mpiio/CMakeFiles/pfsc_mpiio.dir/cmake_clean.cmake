file(REMOVE_RECURSE
  "CMakeFiles/pfsc_mpiio.dir/adio.cpp.o"
  "CMakeFiles/pfsc_mpiio.dir/adio.cpp.o.d"
  "CMakeFiles/pfsc_mpiio.dir/file.cpp.o"
  "CMakeFiles/pfsc_mpiio.dir/file.cpp.o.d"
  "CMakeFiles/pfsc_mpiio.dir/info.cpp.o"
  "CMakeFiles/pfsc_mpiio.dir/info.cpp.o.d"
  "CMakeFiles/pfsc_mpiio.dir/two_phase.cpp.o"
  "CMakeFiles/pfsc_mpiio.dir/two_phase.cpp.o.d"
  "libpfsc_mpiio.a"
  "libpfsc_mpiio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pfsc_mpiio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
