file(REMOVE_RECURSE
  "libpfsc_mpiio.a"
)
