# Empty compiler generated dependencies file for pfsc_mpiio.
# This may be replaced when dependencies are built.
