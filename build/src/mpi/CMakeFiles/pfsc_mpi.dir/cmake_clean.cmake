file(REMOVE_RECURSE
  "CMakeFiles/pfsc_mpi.dir/comm.cpp.o"
  "CMakeFiles/pfsc_mpi.dir/comm.cpp.o.d"
  "CMakeFiles/pfsc_mpi.dir/runtime.cpp.o"
  "CMakeFiles/pfsc_mpi.dir/runtime.cpp.o.d"
  "libpfsc_mpi.a"
  "libpfsc_mpi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pfsc_mpi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
