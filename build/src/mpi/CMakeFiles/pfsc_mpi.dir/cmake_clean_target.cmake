file(REMOVE_RECURSE
  "libpfsc_mpi.a"
)
