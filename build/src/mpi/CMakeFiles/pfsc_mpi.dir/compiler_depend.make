# Empty compiler generated dependencies file for pfsc_mpi.
# This may be replaced when dependencies are built.
