# Empty compiler generated dependencies file for pfsc_core.
# This may be replaced when dependencies are built.
