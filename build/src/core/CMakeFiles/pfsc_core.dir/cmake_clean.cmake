file(REMOVE_RECURSE
  "CMakeFiles/pfsc_core.dir/fs_report.cpp.o"
  "CMakeFiles/pfsc_core.dir/fs_report.cpp.o.d"
  "CMakeFiles/pfsc_core.dir/metrics.cpp.o"
  "CMakeFiles/pfsc_core.dir/metrics.cpp.o.d"
  "libpfsc_core.a"
  "libpfsc_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pfsc_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
