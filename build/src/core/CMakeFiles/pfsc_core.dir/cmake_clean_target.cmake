file(REMOVE_RECURSE
  "libpfsc_core.a"
)
