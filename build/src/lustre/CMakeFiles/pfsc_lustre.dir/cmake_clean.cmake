file(REMOVE_RECURSE
  "CMakeFiles/pfsc_lustre.dir/client.cpp.o"
  "CMakeFiles/pfsc_lustre.dir/client.cpp.o.d"
  "CMakeFiles/pfsc_lustre.dir/errors.cpp.o"
  "CMakeFiles/pfsc_lustre.dir/errors.cpp.o.d"
  "CMakeFiles/pfsc_lustre.dir/extent_map.cpp.o"
  "CMakeFiles/pfsc_lustre.dir/extent_map.cpp.o.d"
  "CMakeFiles/pfsc_lustre.dir/fs.cpp.o"
  "CMakeFiles/pfsc_lustre.dir/fs.cpp.o.d"
  "CMakeFiles/pfsc_lustre.dir/layout.cpp.o"
  "CMakeFiles/pfsc_lustre.dir/layout.cpp.o.d"
  "CMakeFiles/pfsc_lustre.dir/lfs.cpp.o"
  "CMakeFiles/pfsc_lustre.dir/lfs.cpp.o.d"
  "libpfsc_lustre.a"
  "libpfsc_lustre.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pfsc_lustre.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
