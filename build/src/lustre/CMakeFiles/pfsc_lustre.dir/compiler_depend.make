# Empty compiler generated dependencies file for pfsc_lustre.
# This may be replaced when dependencies are built.
