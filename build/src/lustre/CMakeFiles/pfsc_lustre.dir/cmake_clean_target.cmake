file(REMOVE_RECURSE
  "libpfsc_lustre.a"
)
