
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/lustre/client.cpp" "src/lustre/CMakeFiles/pfsc_lustre.dir/client.cpp.o" "gcc" "src/lustre/CMakeFiles/pfsc_lustre.dir/client.cpp.o.d"
  "/root/repo/src/lustre/errors.cpp" "src/lustre/CMakeFiles/pfsc_lustre.dir/errors.cpp.o" "gcc" "src/lustre/CMakeFiles/pfsc_lustre.dir/errors.cpp.o.d"
  "/root/repo/src/lustre/extent_map.cpp" "src/lustre/CMakeFiles/pfsc_lustre.dir/extent_map.cpp.o" "gcc" "src/lustre/CMakeFiles/pfsc_lustre.dir/extent_map.cpp.o.d"
  "/root/repo/src/lustre/fs.cpp" "src/lustre/CMakeFiles/pfsc_lustre.dir/fs.cpp.o" "gcc" "src/lustre/CMakeFiles/pfsc_lustre.dir/fs.cpp.o.d"
  "/root/repo/src/lustre/layout.cpp" "src/lustre/CMakeFiles/pfsc_lustre.dir/layout.cpp.o" "gcc" "src/lustre/CMakeFiles/pfsc_lustre.dir/layout.cpp.o.d"
  "/root/repo/src/lustre/lfs.cpp" "src/lustre/CMakeFiles/pfsc_lustre.dir/lfs.cpp.o" "gcc" "src/lustre/CMakeFiles/pfsc_lustre.dir/lfs.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/hw/CMakeFiles/pfsc_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/pfsc_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/pfsc_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
