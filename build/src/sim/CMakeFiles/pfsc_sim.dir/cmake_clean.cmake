file(REMOVE_RECURSE
  "CMakeFiles/pfsc_sim.dir/engine.cpp.o"
  "CMakeFiles/pfsc_sim.dir/engine.cpp.o.d"
  "libpfsc_sim.a"
  "libpfsc_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pfsc_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
