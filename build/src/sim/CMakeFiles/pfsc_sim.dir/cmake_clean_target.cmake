file(REMOVE_RECURSE
  "libpfsc_sim.a"
)
