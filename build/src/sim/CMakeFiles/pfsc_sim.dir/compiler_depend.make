# Empty compiler generated dependencies file for pfsc_sim.
# This may be replaced when dependencies are built.
