file(REMOVE_RECURSE
  "CMakeFiles/pfsc_hw.dir/disk.cpp.o"
  "CMakeFiles/pfsc_hw.dir/disk.cpp.o.d"
  "CMakeFiles/pfsc_hw.dir/platform.cpp.o"
  "CMakeFiles/pfsc_hw.dir/platform.cpp.o.d"
  "libpfsc_hw.a"
  "libpfsc_hw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pfsc_hw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
