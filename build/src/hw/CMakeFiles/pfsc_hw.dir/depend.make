# Empty dependencies file for pfsc_hw.
# This may be replaced when dependencies are built.
