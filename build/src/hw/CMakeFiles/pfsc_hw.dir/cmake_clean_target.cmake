file(REMOVE_RECURSE
  "libpfsc_hw.a"
)
