file(REMOVE_RECURSE
  "CMakeFiles/exascale_planner.dir/exascale_planner.cpp.o"
  "CMakeFiles/exascale_planner.dir/exascale_planner.cpp.o.d"
  "exascale_planner"
  "exascale_planner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exascale_planner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
