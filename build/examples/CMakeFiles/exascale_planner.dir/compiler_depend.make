# Empty compiler generated dependencies file for exascale_planner.
# This may be replaced when dependencies are built.
