# Empty compiler generated dependencies file for checkpoint_contention.
# This may be replaced when dependencies are built.
