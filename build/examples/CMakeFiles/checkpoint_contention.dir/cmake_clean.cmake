file(REMOVE_RECURSE
  "CMakeFiles/checkpoint_contention.dir/checkpoint_contention.cpp.o"
  "CMakeFiles/checkpoint_contention.dir/checkpoint_contention.cpp.o.d"
  "checkpoint_contention"
  "checkpoint_contention.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/checkpoint_contention.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
