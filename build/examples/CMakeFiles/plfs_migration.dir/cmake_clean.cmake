file(REMOVE_RECURSE
  "CMakeFiles/plfs_migration.dir/plfs_migration.cpp.o"
  "CMakeFiles/plfs_migration.dir/plfs_migration.cpp.o.d"
  "plfs_migration"
  "plfs_migration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/plfs_migration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
