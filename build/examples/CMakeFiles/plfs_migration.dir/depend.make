# Empty dependencies file for plfs_migration.
# This may be replaced when dependencies are built.
