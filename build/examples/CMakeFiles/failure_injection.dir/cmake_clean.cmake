file(REMOVE_RECURSE
  "CMakeFiles/failure_injection.dir/failure_injection.cpp.o"
  "CMakeFiles/failure_injection.dir/failure_injection.cpp.o.d"
  "failure_injection"
  "failure_injection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/failure_injection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
