file(REMOVE_RECURSE
  "CMakeFiles/pfsc_cli.dir/pfsc_cli.cpp.o"
  "CMakeFiles/pfsc_cli.dir/pfsc_cli.cpp.o.d"
  "pfsc_cli"
  "pfsc_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pfsc_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
