# Empty compiler generated dependencies file for pfsc_cli.
# This may be replaced when dependencies are built.
