# Empty compiler generated dependencies file for autotune_sweep.
# This may be replaced when dependencies are built.
