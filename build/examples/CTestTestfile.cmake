# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;22;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_failure_injection "/root/repo/build/examples/failure_injection")
set_tests_properties(example_failure_injection PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;23;add_test;/root/repo/examples/CMakeLists.txt;0;")
