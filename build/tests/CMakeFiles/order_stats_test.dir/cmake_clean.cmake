file(REMOVE_RECURSE
  "CMakeFiles/order_stats_test.dir/order_stats_test.cpp.o"
  "CMakeFiles/order_stats_test.dir/order_stats_test.cpp.o.d"
  "order_stats_test"
  "order_stats_test.pdb"
  "order_stats_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/order_stats_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
