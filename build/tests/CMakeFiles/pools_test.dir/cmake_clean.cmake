file(REMOVE_RECURSE
  "CMakeFiles/pools_test.dir/pools_test.cpp.o"
  "CMakeFiles/pools_test.dir/pools_test.cpp.o.d"
  "pools_test"
  "pools_test.pdb"
  "pools_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pools_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
