# Empty dependencies file for fs_report_test.
# This may be replaced when dependencies are built.
