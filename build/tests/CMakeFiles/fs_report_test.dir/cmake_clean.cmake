file(REMOVE_RECURSE
  "CMakeFiles/fs_report_test.dir/fs_report_test.cpp.o"
  "CMakeFiles/fs_report_test.dir/fs_report_test.cpp.o.d"
  "fs_report_test"
  "fs_report_test.pdb"
  "fs_report_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fs_report_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
