# Empty dependencies file for two_phase_test.
# This may be replaced when dependencies are built.
