# Empty compiler generated dependencies file for mpiio_file_test.
# This may be replaced when dependencies are built.
