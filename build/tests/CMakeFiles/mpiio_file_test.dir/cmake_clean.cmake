file(REMOVE_RECURSE
  "CMakeFiles/mpiio_file_test.dir/mpiio_file_test.cpp.o"
  "CMakeFiles/mpiio_file_test.dir/mpiio_file_test.cpp.o.d"
  "mpiio_file_test"
  "mpiio_file_test.pdb"
  "mpiio_file_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpiio_file_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
