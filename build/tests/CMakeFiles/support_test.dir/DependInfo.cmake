
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/support_test.cpp" "tests/CMakeFiles/support_test.dir/support_test.cpp.o" "gcc" "tests/CMakeFiles/support_test.dir/support_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/harness/CMakeFiles/pfsc_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/CMakeFiles/pfsc_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/pfsc_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/pfsc_core.dir/DependInfo.cmake"
  "/root/repo/build/src/ior/CMakeFiles/pfsc_ior.dir/DependInfo.cmake"
  "/root/repo/build/src/mpiio/CMakeFiles/pfsc_mpiio.dir/DependInfo.cmake"
  "/root/repo/build/src/mpi/CMakeFiles/pfsc_mpi.dir/DependInfo.cmake"
  "/root/repo/build/src/plfs/CMakeFiles/pfsc_plfs.dir/DependInfo.cmake"
  "/root/repo/build/src/lustre/CMakeFiles/pfsc_lustre.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/pfsc_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/pfsc_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/pfsc_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
