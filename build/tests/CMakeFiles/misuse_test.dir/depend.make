# Empty dependencies file for misuse_test.
# This may be replaced when dependencies are built.
