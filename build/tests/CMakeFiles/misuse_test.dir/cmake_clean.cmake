file(REMOVE_RECURSE
  "CMakeFiles/misuse_test.dir/misuse_test.cpp.o"
  "CMakeFiles/misuse_test.dir/misuse_test.cpp.o.d"
  "misuse_test"
  "misuse_test.pdb"
  "misuse_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/misuse_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
