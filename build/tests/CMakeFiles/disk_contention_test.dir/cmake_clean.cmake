file(REMOVE_RECURSE
  "CMakeFiles/disk_contention_test.dir/disk_contention_test.cpp.o"
  "CMakeFiles/disk_contention_test.dir/disk_contention_test.cpp.o.d"
  "disk_contention_test"
  "disk_contention_test.pdb"
  "disk_contention_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/disk_contention_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
