file(REMOVE_RECURSE
  "CMakeFiles/prediction_property_test.dir/prediction_property_test.cpp.o"
  "CMakeFiles/prediction_property_test.dir/prediction_property_test.cpp.o.d"
  "prediction_property_test"
  "prediction_property_test.pdb"
  "prediction_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prediction_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
