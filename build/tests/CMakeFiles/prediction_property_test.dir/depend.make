# Empty dependencies file for prediction_property_test.
# This may be replaced when dependencies are built.
