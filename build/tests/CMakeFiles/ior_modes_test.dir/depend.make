# Empty dependencies file for ior_modes_test.
# This may be replaced when dependencies are built.
