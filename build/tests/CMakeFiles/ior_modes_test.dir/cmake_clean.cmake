file(REMOVE_RECURSE
  "CMakeFiles/ior_modes_test.dir/ior_modes_test.cpp.o"
  "CMakeFiles/ior_modes_test.dir/ior_modes_test.cpp.o.d"
  "ior_modes_test"
  "ior_modes_test.pdb"
  "ior_modes_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ior_modes_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
