# Empty compiler generated dependencies file for plfs_rm_test.
# This may be replaced when dependencies are built.
