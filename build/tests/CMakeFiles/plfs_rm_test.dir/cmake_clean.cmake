file(REMOVE_RECURSE
  "CMakeFiles/plfs_rm_test.dir/plfs_rm_test.cpp.o"
  "CMakeFiles/plfs_rm_test.dir/plfs_rm_test.cpp.o.d"
  "plfs_rm_test"
  "plfs_rm_test.pdb"
  "plfs_rm_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/plfs_rm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
