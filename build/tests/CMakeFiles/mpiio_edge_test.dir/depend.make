# Empty dependencies file for mpiio_edge_test.
# This may be replaced when dependencies are built.
