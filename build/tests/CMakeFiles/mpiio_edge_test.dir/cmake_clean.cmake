file(REMOVE_RECURSE
  "CMakeFiles/mpiio_edge_test.dir/mpiio_edge_test.cpp.o"
  "CMakeFiles/mpiio_edge_test.dir/mpiio_edge_test.cpp.o.d"
  "mpiio_edge_test"
  "mpiio_edge_test.pdb"
  "mpiio_edge_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpiio_edge_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
