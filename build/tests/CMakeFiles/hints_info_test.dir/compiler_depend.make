# Empty compiler generated dependencies file for hints_info_test.
# This may be replaced when dependencies are built.
