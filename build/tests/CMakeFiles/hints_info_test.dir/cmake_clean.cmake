file(REMOVE_RECURSE
  "CMakeFiles/hints_info_test.dir/hints_info_test.cpp.o"
  "CMakeFiles/hints_info_test.dir/hints_info_test.cpp.o.d"
  "hints_info_test"
  "hints_info_test.pdb"
  "hints_info_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hints_info_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
