# Empty compiler generated dependencies file for plfs_test.
# This may be replaced when dependencies are built.
