# Empty compiler generated dependencies file for sim_core_extra_test.
# This may be replaced when dependencies are built.
