file(REMOVE_RECURSE
  "CMakeFiles/cyclic_plan_test.dir/cyclic_plan_test.cpp.o"
  "CMakeFiles/cyclic_plan_test.dir/cyclic_plan_test.cpp.o.d"
  "cyclic_plan_test"
  "cyclic_plan_test.pdb"
  "cyclic_plan_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cyclic_plan_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
