# Empty compiler generated dependencies file for cyclic_plan_test.
# This may be replaced when dependencies are built.
