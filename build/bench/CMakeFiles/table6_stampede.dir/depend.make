# Empty dependencies file for table6_stampede.
# This may be replaced when dependencies are built.
