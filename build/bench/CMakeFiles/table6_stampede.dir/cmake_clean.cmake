file(REMOVE_RECURSE
  "CMakeFiles/table6_stampede.dir/table6_stampede.cpp.o"
  "CMakeFiles/table6_stampede.dir/table6_stampede.cpp.o.d"
  "table6_stampede"
  "table6_stampede.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table6_stampede.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
