file(REMOVE_RECURSE
  "CMakeFiles/fig2_single_ost_contention.dir/fig2_single_ost_contention.cpp.o"
  "CMakeFiles/fig2_single_ost_contention.dir/fig2_single_ost_contention.cpp.o.d"
  "fig2_single_ost_contention"
  "fig2_single_ost_contention.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_single_ost_contention.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
