# Empty compiler generated dependencies file for fig2_single_ost_contention.
# This may be replaced when dependencies are built.
