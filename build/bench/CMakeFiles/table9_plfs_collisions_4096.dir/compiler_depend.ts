# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for table9_plfs_collisions_4096.
