# Empty dependencies file for table9_plfs_collisions_4096.
# This may be replaced when dependencies are built.
