file(REMOVE_RECURSE
  "CMakeFiles/table9_plfs_collisions_4096.dir/table9_plfs_collisions_4096.cpp.o"
  "CMakeFiles/table9_plfs_collisions_4096.dir/table9_plfs_collisions_4096.cpp.o.d"
  "table9_plfs_collisions_4096"
  "table9_plfs_collisions_4096.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table9_plfs_collisions_4096.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
