file(REMOVE_RECURSE
  "CMakeFiles/fig3_four_tasks.dir/fig3_four_tasks.cpp.o"
  "CMakeFiles/fig3_four_tasks.dir/fig3_four_tasks.cpp.o.d"
  "fig3_four_tasks"
  "fig3_four_tasks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_four_tasks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
