# Empty dependencies file for fig3_four_tasks.
# This may be replaced when dependencies are built.
