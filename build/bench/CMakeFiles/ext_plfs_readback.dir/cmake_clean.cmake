file(REMOVE_RECURSE
  "CMakeFiles/ext_plfs_readback.dir/ext_plfs_readback.cpp.o"
  "CMakeFiles/ext_plfs_readback.dir/ext_plfs_readback.cpp.o.d"
  "ext_plfs_readback"
  "ext_plfs_readback.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_plfs_readback.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
