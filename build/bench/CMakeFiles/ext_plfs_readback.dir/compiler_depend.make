# Empty compiler generated dependencies file for ext_plfs_readback.
# This may be replaced when dependencies are built.
