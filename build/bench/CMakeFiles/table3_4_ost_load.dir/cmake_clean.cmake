file(REMOVE_RECURSE
  "CMakeFiles/table3_4_ost_load.dir/table3_4_ost_load.cpp.o"
  "CMakeFiles/table3_4_ost_load.dir/table3_4_ost_load.cpp.o.d"
  "table3_4_ost_load"
  "table3_4_ost_load.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_4_ost_load.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
