# Empty dependencies file for table3_4_ost_load.
# This may be replaced when dependencies are built.
