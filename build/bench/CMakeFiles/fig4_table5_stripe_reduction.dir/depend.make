# Empty dependencies file for fig4_table5_stripe_reduction.
# This may be replaced when dependencies are built.
