file(REMOVE_RECURSE
  "CMakeFiles/fig4_table5_stripe_reduction.dir/fig4_table5_stripe_reduction.cpp.o"
  "CMakeFiles/fig4_table5_stripe_reduction.dir/fig4_table5_stripe_reduction.cpp.o.d"
  "fig4_table5_stripe_reduction"
  "fig4_table5_stripe_reduction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_table5_stripe_reduction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
