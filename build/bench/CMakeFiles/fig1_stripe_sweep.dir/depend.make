# Empty dependencies file for fig1_stripe_sweep.
# This may be replaced when dependencies are built.
