# Empty compiler generated dependencies file for table8_plfs_collisions_512.
# This may be replaced when dependencies are built.
