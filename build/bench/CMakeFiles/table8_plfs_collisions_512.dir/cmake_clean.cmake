file(REMOVE_RECURSE
  "CMakeFiles/table8_plfs_collisions_512.dir/table8_plfs_collisions_512.cpp.o"
  "CMakeFiles/table8_plfs_collisions_512.dir/table8_plfs_collisions_512.cpp.o.d"
  "table8_plfs_collisions_512"
  "table8_plfs_collisions_512.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table8_plfs_collisions_512.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
