# Empty dependencies file for fig5_table7_plfs_vs_lustre.
# This may be replaced when dependencies are built.
