file(REMOVE_RECURSE
  "CMakeFiles/fig5_table7_plfs_vs_lustre.dir/fig5_table7_plfs_vs_lustre.cpp.o"
  "CMakeFiles/fig5_table7_plfs_vs_lustre.dir/fig5_table7_plfs_vs_lustre.cpp.o.d"
  "fig5_table7_plfs_vs_lustre"
  "fig5_table7_plfs_vs_lustre.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_table7_plfs_vs_lustre.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
