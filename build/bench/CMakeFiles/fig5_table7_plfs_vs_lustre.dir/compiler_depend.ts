# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for fig5_table7_plfs_vs_lustre.
