#include <gtest/gtest.h>

#include "lustre/layout.hpp"
#include "support/error.hpp"

namespace pfsc::lustre {
namespace {

StripeLayout make_layout(std::uint32_t count, Bytes stripe_size) {
  StripeLayout l;
  l.stripe_size = stripe_size;
  for (std::uint32_t i = 0; i < count; ++i) {
    l.osts.push_back(i * 10);       // arbitrary distinct OSTs
    l.objects.push_back(1000 + i);  // arbitrary object ids
  }
  return l;
}

TEST(Layout, LocateFirstStripe) {
  const auto l = make_layout(4, 1_MiB);
  const auto seg = locate(l, 0);
  EXPECT_EQ(seg.layout_index, 0u);
  EXPECT_EQ(seg.object_offset, 0u);
  EXPECT_EQ(seg.length, 1_MiB);
}

TEST(Layout, LocateRoundRobinAcrossStripes) {
  const auto l = make_layout(4, 1_MiB);
  for (std::uint32_t k = 0; k < 12; ++k) {
    const auto seg = locate(l, static_cast<Bytes>(k) * 1_MiB);
    EXPECT_EQ(seg.layout_index, k % 4);
    EXPECT_EQ(seg.object_offset, (k / 4) * 1_MiB);
  }
}

TEST(Layout, LocateMidStripe) {
  const auto l = make_layout(2, 1_MiB);
  const auto seg = locate(l, 1_MiB + 512_KiB);
  EXPECT_EQ(seg.layout_index, 1u);
  EXPECT_EQ(seg.object_offset, 512_KiB);
  EXPECT_EQ(seg.length, 512_KiB);  // runs to the stripe boundary
}

TEST(Layout, LocateRejectsUnresolvedLayout) {
  StripeLayout empty;
  EXPECT_THROW(locate(empty, 0), UsageError);
}

TEST(Layout, SegmentsCoverExtentExactly) {
  const auto l = make_layout(3, 1_MiB);
  const Bytes off = 512_KiB;
  const Bytes len = 5 * 1_MiB;
  const auto segs = segments(l, off, len);
  Bytes total = 0;
  Bytes expect_file_off = off;
  for (const auto& s : segs) {
    EXPECT_EQ(s.file_offset, expect_file_off);
    expect_file_off += s.length;
    total += s.length;
  }
  EXPECT_EQ(total, len);
}

TEST(Layout, SegmentsMatchLocatePointwise) {
  const auto l = make_layout(5, 256_KiB);
  const auto segs = segments(l, 100'000, 3'000'000);
  for (const auto& s : segs) {
    const auto head = locate(l, s.file_offset);
    EXPECT_EQ(head.layout_index, s.layout_index);
    EXPECT_EQ(head.object_offset, s.object_offset);
    // Last byte of the segment maps into the same object run.
    const auto tail = locate(l, s.file_offset + s.length - 1);
    EXPECT_EQ(tail.layout_index, s.layout_index);
    EXPECT_EQ(tail.object_offset, s.object_offset + s.length - 1);
  }
}

TEST(Layout, SingleStripeCountMergesIntoOneSegment) {
  const auto l = make_layout(1, 1_MiB);
  const auto segs = segments(l, 0, 10 * 1_MiB);
  ASSERT_EQ(segs.size(), 1u);
  EXPECT_EQ(segs[0].length, 10 * 1_MiB);
  EXPECT_EQ(segs[0].object_offset, 0u);
}

TEST(Layout, ZeroLengthYieldsNoSegments) {
  const auto l = make_layout(2, 1_MiB);
  EXPECT_TRUE(segments(l, 4_MiB, 0).empty());
}

TEST(Layout, LargeStripesSmallWrite) {
  const auto l = make_layout(160, 128_MiB);
  const auto segs = segments(l, 200_MiB, 1_MiB);
  ASSERT_EQ(segs.size(), 1u);
  EXPECT_EQ(segs[0].layout_index, 1u);          // second stripe
  EXPECT_EQ(segs[0].object_offset, 72_MiB);     // 200 - 128
}

// Property sweep: round-tripping byte positions through the layout maps
// every byte to exactly one (object, offset) and back.
class LayoutProperty
    : public ::testing::TestWithParam<std::tuple<std::uint32_t, Bytes>> {};

TEST_P(LayoutProperty, ByteMappingIsBijective) {
  const auto [count, stripe] = GetParam();
  const auto l = make_layout(count, stripe);
  // Sample byte positions across 8 stripes-worth of file.
  const Bytes span = stripe * count * 2;
  for (Bytes off = 0; off < span; off += stripe / 3 + 1) {
    const auto seg = locate(l, off);
    // Invert: file offset = stripe_index * stripe + within, where
    // stripe_index = (object_offset / stripe) * count + layout_index.
    const Bytes within = seg.object_offset % stripe;
    const Bytes obj_stripe = seg.object_offset / stripe;
    const Bytes back =
        (obj_stripe * count + seg.layout_index) * stripe + within;
    EXPECT_EQ(back, off);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, LayoutProperty,
    ::testing::Combine(::testing::Values(1u, 2u, 3u, 8u, 160u),
                       ::testing::Values(Bytes{64_KiB}, Bytes{1_MiB},
                                         Bytes{128_MiB})));

}  // namespace
}  // namespace pfsc::lustre
