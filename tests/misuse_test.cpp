// API-misuse tests: every PFSC_REQUIRE guard a downstream user can trip
// must throw UsageError rather than corrupt simulation state.
#include <gtest/gtest.h>

#include "harness/run_plan.hpp"
#include "harness/runner.hpp"
#include "harness/scenario.hpp"
#include "ior/probe.hpp"
#include "mpi/runtime.hpp"
#include "trace/telemetry.hpp"

namespace pfsc {
namespace {

TEST(Misuse, CommunicatorBadRanks) {
  sim::Engine eng;
  mpi::Communicator comm(eng, 4);
  EXPECT_THROW(
      {
        eng.spawn([](mpi::Communicator& c) -> sim::Task {
          co_await c.allreduce(7, 1.0, mpi::Communicator::ReduceOp::sum);
        }(comm));
        eng.run();
      },
      UsageError);
  EXPECT_THROW(
      {
        eng.spawn([](mpi::Communicator& c) -> sim::Task {
          co_await c.bcast(0, 9, 1.0);  // bad root
        }(comm));
        eng.run();
      },
      UsageError);
  EXPECT_THROW(mpi::Communicator(eng, 0), UsageError);
}

TEST(Misuse, RuntimeBadConfigs) {
  sim::Engine eng;
  lustre::FileSystem fs(eng, hw::tiny_test_platform(), 1);
  EXPECT_THROW(mpi::Runtime(fs, 0, 4), UsageError);
  EXPECT_THROW(mpi::Runtime(fs, 4, 0), UsageError);
  mpi::Runtime rt(fs, 4, 4);
  EXPECT_THROW(rt.client(-1), UsageError);
  EXPECT_THROW(rt.client(4), UsageError);
}

TEST(Misuse, EngineSpawnGuards) {
  sim::Engine eng;
  EXPECT_THROW(eng.spawn(sim::Task{}), UsageError);
  // Double spawn of the same task is rejected.
  auto coro = [](sim::Engine& e) -> sim::Task { co_await e.delay(1.0); };
  sim::Task t = coro(eng);
  eng.spawn(t);
  EXPECT_THROW(eng.spawn(t), UsageError);
  eng.run();
}

TEST(Misuse, ResourceAndPipeGuards) {
  sim::Engine eng;
  EXPECT_THROW(sim::Resource(eng, 0), UsageError);
  EXPECT_THROW(sim::Barrier(eng, 0), UsageError);
  EXPECT_THROW(sim::FifoPipe(eng, 0.0), UsageError);
  EXPECT_THROW(sim::FairSharePipe(eng, 0.0), UsageError);
}

TEST(Misuse, FileSystemGuards) {
  sim::Engine eng;
  lustre::FileSystem fs(eng, hw::tiny_test_platform(), 1);
  EXPECT_THROW(fs.inode(0), UsageError);
  EXPECT_THROW(fs.inode(999), UsageError);
  EXPECT_THROW(fs.ost_disk(999), UsageError);
  EXPECT_THROW(fs.fail_ost(999), UsageError);
  EXPECT_THROW(fs.degrade_ost(0, 0.0), UsageError);
  auto bad_params = hw::tiny_test_platform();
  bad_params.ost_count = 0;
  EXPECT_THROW(lustre::FileSystem(eng, bad_params, 1), UsageError);
}

TEST(Misuse, ProbeRequiresMatchingRuntime) {
  sim::Engine eng;
  lustre::FileSystem fs(eng, hw::tiny_test_platform(), 1);
  mpi::Runtime rt(fs, 4, 4);
  ior::ProbeConfig cfg;
  cfg.num_writers = 8;  // != runtime size
  EXPECT_THROW(ior::run_probe(rt, cfg), UsageError);
}

TEST(Misuse, SamplerGuards) {
  sim::Engine eng;
  EXPECT_THROW(trace::Sampler(eng, 0.0), UsageError);
  EXPECT_THROW(trace::Sampler(eng, 1.0, 0), UsageError);
  trace::Sampler sampler(eng, 1.0, 1);
  EXPECT_THROW(sampler.add_probe("x", nullptr), UsageError);
  EXPECT_THROW(sampler.series(0), UsageError);
}

TEST(Misuse, ScenarioGuards) {
  harness::Scenario bad;
  bad.workload = harness::Workload::multi;
  bad.jobs = 0;
  EXPECT_THROW(bad.validate(), UsageError);

  harness::Scenario plfs_spec;  // plfs workload needs the ad_plfs driver
  plfs_spec.workload = harness::Workload::plfs;
  EXPECT_THROW(plfs_spec.validate(), UsageError);

  harness::Scenario probe_telemetry;  // probe does not support telemetry
  probe_telemetry.workload = harness::Workload::probe;
  probe_telemetry.telemetry_interval = 1.0;
  EXPECT_THROW(probe_telemetry.validate(), UsageError);

  harness::Scenario no_procs;
  no_procs.nprocs = 0;
  EXPECT_THROW(no_procs.validate(), UsageError);
}

TEST(Misuse, RunPlanGuards) {
  harness::RunPlan plan;
  EXPECT_THROW(plan.repetitions(0), UsageError);
  plan.sweep_nprocs({16, 32});
  // Sweeping the same axis twice would silently overwrite one assignment
  // per point; it must be rejected up front.
  EXPECT_THROW(plan.sweep_nprocs({64}), UsageError);
  EXPECT_THROW(plan.sweep("nprocs", {64.0}, [](harness::Scenario&, double) {}),
               UsageError);
  EXPECT_THROW(plan.sweep("", {1.0}, [](harness::Scenario&, double) {}),
               UsageError);
  EXPECT_THROW(plan.sweep("empty", {}, [](harness::Scenario&, double) {}),
               UsageError);
}

}  // namespace
}  // namespace pfsc
