// trace::Recorder unit behaviour: bounded-buffer overflow policy, category
// masking, track/name interning, and the exporters (Chrome trace_event
// JSON, counters CSV, time-weighted counter means, path templating).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "trace/export.hpp"
#include "trace/recorder.hpp"

namespace pfsc::trace {
namespace {

// -- minimal JSON well-formedness check -------------------------------------
// Not a full parser: verifies balanced {}/[] outside strings and legal
// string escapes, which is what a truncated or mis-quoted export breaks.
bool json_balanced(const std::string& text) {
  int depth = 0;
  bool in_string = false;
  bool escaped = false;
  for (const char c : text) {
    if (in_string) {
      if (escaped) {
        escaped = false;
      } else if (c == '\\') {
        escaped = true;
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    switch (c) {
      case '"': in_string = true; break;
      case '{': case '[': ++depth; break;
      case '}': case ']':
        if (--depth < 0) return false;
        break;
      default: break;
    }
  }
  return depth == 0 && !in_string;
}

TEST(Recorder, OverflowDropsNewestAndCounts) {
  Recorder rec(/*capacity=*/4);
  const TrackId t = rec.track("t");
  for (int i = 0; i < 7; ++i) {
    rec.counter(Cat::sched, t, "queue", static_cast<Seconds>(i),
                static_cast<double>(i));
  }
  ASSERT_EQ(rec.events().size(), 4u);
  EXPECT_EQ(rec.dropped(), 3u);
  // Drop-newest keeps the oldest prefix, so values 0..3 survive in order.
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_DOUBLE_EQ(rec.events()[i].value, static_cast<double>(i));
  }
  rec.clear();
  EXPECT_TRUE(rec.events().empty());
  EXPECT_EQ(rec.dropped(), 0u);
}

TEST(Recorder, CategoryMaskFiltersPush) {
  Recorder rec(/*capacity=*/16, cat_bit(Cat::sched));
  EXPECT_TRUE(rec.enabled(Cat::sched));
  EXPECT_FALSE(rec.enabled(Cat::link));
  const TrackId t = rec.track("t");
  rec.counter(Cat::link, t, "flows", 0.0, 1.0);    // masked out
  rec.counter(Cat::sched, t, "queue", 0.0, 2.0);   // recorded
  ASSERT_EQ(rec.events().size(), 1u);
  EXPECT_EQ(rec.events()[0].cat, Cat::sched);
  // Masked events are not "dropped": they were never wanted.
  EXPECT_EQ(rec.dropped(), 0u);
}

TEST(Recorder, TrackRegistryDedupesAndIsOrdered) {
  Recorder rec;
  const TrackId a = rec.track("fabric");
  const TrackId b = rec.track("ost0.disk");
  EXPECT_EQ(rec.track("fabric"), a);
  EXPECT_NE(a, b);
  ASSERT_EQ(rec.tracks().size(), 2u);
  EXPECT_EQ(rec.tracks()[a], "fabric");
  EXPECT_EQ(rec.tracks()[b], "ost0.disk");
}

TEST(Recorder, InternReturnsStablePointer) {
  Recorder rec;
  const char* a = rec.intern(std::string("job0_bytes"));
  const char* b = rec.intern(std::string("job0_bytes"));
  EXPECT_EQ(a, b);
  EXPECT_STREQ(a, "job0_bytes");
  EXPECT_NE(rec.intern("job1_bytes"), a);
}

TEST(Recorder, TrackHandleReResolvesPerRecorder) {
  Recorder rec1;
  Recorder rec2;
  rec2.track("padding");  // shift ids so the two recorders disagree
  TrackHandle handle;
  const TrackId id1 = handle.get(rec1, "fabric");
  EXPECT_EQ(id1, rec1.track("fabric"));
  const TrackId id2 = handle.get(rec2, "fabric");
  EXPECT_EQ(id2, rec2.track("fabric"));
  EXPECT_NE(id1, id2);
  // Back to rec1: must re-resolve, not reuse rec2's id.
  EXPECT_EQ(handle.get(rec1, "fabric"), id1);
}

TEST(Recorder, NextIdIsNonzeroAndFresh) {
  Recorder rec;
  const auto a = rec.next_id();
  const auto b = rec.next_id();
  EXPECT_NE(a, 0u);
  EXPECT_NE(b, 0u);
  EXPECT_NE(a, b);
}

TEST(ChromeExport, WellFormedWithAllEventKinds) {
  Recorder rec;
  const TrackId t = rec.track("disk \"quoted\"");  // exercises escaping
  rec.begin(Cat::disk, t, "service", 0.5, 0, 7, 1024);
  rec.end(Cat::disk, t, "service", 1.0, 0, 7);
  rec.begin(Cat::link, t, "flow", 1.5, /*id=*/42, 2048);
  rec.end(Cat::link, t, "flow", 2.0, /*id=*/42);
  rec.instant(Cat::disk, t, "stream_open", 2.5, 7);
  rec.counter(Cat::sched, t, "queue", 3.0, 4.0);

  const std::string json = export_chrome_trace(rec);
  EXPECT_TRUE(json_balanced(json));
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"B\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"E\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"b\",\"id\":42"), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"e\",\"id\":42"), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"C\""), std::string::npos);
  // The quoted track name must be escaped in the thread_name metadata.
  EXPECT_NE(json.find("disk \\\"quoted\\\""), std::string::npos);
  // Counters are name-qualified by track to stay distinct in the viewer.
  EXPECT_NE(json.find("disk \\\"quoted\\\".queue"), std::string::npos);
}

TEST(ChromeExport, AutoClosesDanglingSyncSpans) {
  Recorder rec;
  const TrackId t = rec.track("engine");
  rec.begin(Cat::engine, t, "dispatch", 1.0);  // never ended
  const std::string json = export_chrome_trace(rec);
  EXPECT_TRUE(json_balanced(json));
  std::size_t begins = 0;
  std::size_t ends = 0;
  for (std::size_t pos = 0; (pos = json.find("\"ph\":\"B\"", pos)) !=
                            std::string::npos;
       ++pos) {
    ++begins;
  }
  for (std::size_t pos = 0; (pos = json.find("\"ph\":\"E\"", pos)) !=
                            std::string::npos;
       ++pos) {
    ++ends;
  }
  EXPECT_EQ(begins, 1u);
  EXPECT_EQ(ends, 1u);
}

TEST(CountersCsv, EmitsOnlyCounters) {
  Recorder rec;
  const TrackId t = rec.track("sched");
  rec.counter(Cat::sched, t, "queue", 0.25, 3.0);
  rec.instant(Cat::sched, t, "complete", 0.5);
  const std::string csv = export_counters_csv(rec);
  EXPECT_EQ(csv, "time,track,name,value\n0.25,sched,queue,3\n");
}

TEST(MeanCounterSum, TimeWeightedAcrossTracks) {
  Recorder rec;
  const TrackId a = rec.track("oss0.sched");
  const TrackId b = rec.track("oss1.sched");
  // Track a holds 2 on [0,1), then 0 on [1,2); track b holds 4 on [1,2).
  rec.counter(Cat::sched, a, "queue", 0.0, 2.0);
  rec.counter(Cat::sched, a, "queue", 1.0, 0.0);
  rec.counter(Cat::sched, b, "queue", 1.0, 4.0);
  rec.counter(Cat::sched, b, "queue", 2.0, 4.0);
  // Sum is 2 on [0,1) and 4 on [1,2) -> mean 3 over [0,2].
  EXPECT_DOUBLE_EQ(mean_counter_sum(rec, Cat::sched, "queue"), 3.0);
  // Wrong category or name: nothing matches.
  EXPECT_DOUBLE_EQ(mean_counter_sum(rec, Cat::link, "queue"), 0.0);
  EXPECT_DOUBLE_EQ(mean_counter_sum(rec, Cat::sched, "inflight"), 0.0);
}

TEST(MeanCounterSum, SingleInstantReportsInstantaneousSum) {
  Recorder rec;
  rec.counter(Cat::sched, rec.track("s"), "queue", 1.0, 5.0);
  EXPECT_DOUBLE_EQ(mean_counter_sum(rec, Cat::sched, "queue"), 5.0);
}

TEST(TraceConfig, ModeNamesRoundTrip) {
  TraceMode mode = TraceMode::full;
  EXPECT_TRUE(parse_trace_mode("off", mode));
  EXPECT_EQ(mode, TraceMode::off);
  EXPECT_TRUE(parse_trace_mode("summary", mode));
  EXPECT_EQ(mode, TraceMode::summary);
  EXPECT_TRUE(parse_trace_mode("full", mode));
  EXPECT_EQ(mode, TraceMode::full);
  EXPECT_FALSE(parse_trace_mode("verbose", mode));
  EXPECT_FALSE(parse_trace_mode("", mode));
  EXPECT_STREQ(trace_mode_name(TraceMode::summary), "summary");
  EXPECT_EQ(trace_categories(TraceMode::off), 0u);
  EXPECT_EQ(trace_categories(TraceMode::full), kAllCats);
  EXPECT_EQ(trace_categories(TraceMode::summary), kSummaryCats);
}

TEST(TracePath, SeedPlaceholderExpands) {
  EXPECT_EQ(resolve_trace_path("run.json", 7), "run.json");
  EXPECT_EQ(resolve_trace_path("run.{seed}.json", 7), "run.7.json");
  EXPECT_EQ(resolve_trace_path("{seed}/{seed}.json", 12), "12/12.json");
}

TEST(RunSummaryFormat, ReportsJobsAndDrops) {
  RunSummary s;
  s.job_bytes[0] = 64_MiB;
  s.job_bytes[1] = 192_MiB;
  s.ost_bytes = {0, 128_MiB, 0, 128_MiB};
  s.jain = 0.8;
  s.mean_queue_depth = 1.5;
  s.recorded_events = 100;
  s.dropped_events = 2;
  const std::string text = s.format();
  EXPECT_NE(text.find("75.0"), std::string::npos);     // job 1 share
  EXPECT_NE(text.find("0.8000"), std::string::npos);   // jain
  EXPECT_NE(text.find("2 of 4"), std::string::npos);   // osts touched
  EXPECT_NE(text.find("dropped 2"), std::string::npos);
}

}  // namespace
}  // namespace pfsc::trace
