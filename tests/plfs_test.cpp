#include <gtest/gtest.h>

#include <set>

#include "plfs/plfs.hpp"

namespace pfsc::plfs {
namespace {

using lustre::Errno;
using lustre::InodeId;

struct PlfsFixture : ::testing::Test {
  sim::Engine eng;
  lustre::FileSystem fs{eng, hw::tiny_test_platform(), 31};
  lustre::Client client{fs, "c0"};
  Plfs plfs{fs};

  template <typename T>
  T run(sim::Co<T> op) {
    T out{};
    eng.spawn([](sim::Co<T> op, T& out) -> sim::Task {
      out = co_await std::move(op);
    }(std::move(op), out));
    eng.run();
    return out;
  }
};

TEST_F(PlfsFixture, HashdirNameBuckets) {
  EXPECT_EQ(Plfs::hashdir_name(0, 32), "hostdir.0");
  EXPECT_EQ(Plfs::hashdir_name(33, 32), "hostdir.1");
  EXPECT_EQ(Plfs::hashdir_name(5, 4), "hostdir.1");
}

TEST_F(PlfsFixture, OpenWriteCreatesContainerStructure) {
  auto h = run(plfs.open_write(client, "/ckpt", 3));
  ASSERT_TRUE(h.ok());
  EXPECT_TRUE(plfs.is_container("/ckpt"));
  EXPECT_TRUE(fs.exists("/ckpt/access"));
  EXPECT_TRUE(fs.exists("/ckpt/" + Plfs::hashdir_name(3, plfs.params().num_hash_dirs) +
                        "/data.3"));
  EXPECT_TRUE(fs.exists("/ckpt/" + Plfs::hashdir_name(3, plfs.params().num_hash_dirs) +
                        "/index.3"));
}

TEST_F(PlfsFixture, BackendFilesGetDefaultStriping) {
  auto h = run(plfs.open_write(client, "/ckpt", 0));
  ASSERT_TRUE(h.ok());
  const lustre::Inode& data = fs.inode(h.value.data_file);
  EXPECT_EQ(data.layout.stripe_count(), fs.params().default_stripe_count);
  EXPECT_EQ(data.layout.stripe_size, fs.params().default_stripe_size);
}

TEST_F(PlfsFixture, WritesAppendLogStructured) {
  auto h = run(plfs.open_write(client, "/ckpt", 0));
  ASSERT_TRUE(h.ok());
  auto& wh = h.value;
  // Logical writes at scattered offsets append physically.
  EXPECT_EQ(run(plfs.write(client, wh, 10_MiB, 1_MiB)), Errno::ok);
  EXPECT_EQ(run(plfs.write(client, wh, 0, 1_MiB)), Errno::ok);
  EXPECT_EQ(run(plfs.write(client, wh, 5_MiB, 1_MiB)), Errno::ok);
  EXPECT_EQ(wh.data_cursor, 3u * 1_MiB);
  const lustre::Inode& data = fs.inode(wh.data_file);
  EXPECT_TRUE(data.written.covers(0, 3u * 1_MiB));  // physically contiguous
  EXPECT_EQ(run(plfs.close_write(client, wh)), Errno::ok);
}

TEST_F(PlfsFixture, IndexFlushedOnClose) {
  auto h = run(plfs.open_write(client, "/ckpt", 0));
  ASSERT_TRUE(h.ok());
  auto& wh = h.value;
  EXPECT_EQ(run(plfs.write(client, wh, 0, 1_MiB)), Errno::ok);
  const lustre::Inode& index = fs.inode(wh.index_file);
  EXPECT_EQ(index.size, 0u);  // buffered
  EXPECT_EQ(run(plfs.close_write(client, wh)), Errno::ok);
  EXPECT_EQ(index.size, plfs.params().index_record_bytes);
}

TEST_F(PlfsFixture, IndexFlushesAtThreshold) {
  auto h = run(plfs.open_write(client, "/ckpt", 0));
  ASSERT_TRUE(h.ok());
  auto& wh = h.value;
  const auto threshold = plfs.params().index_flush_records;
  for (std::uint32_t i = 0; i < threshold; ++i) {
    EXPECT_EQ(run(plfs.write(client, wh, static_cast<Bytes>(i) * 64_KiB, 64_KiB)),
              Errno::ok);
  }
  EXPECT_EQ(fs.inode(wh.index_file).size,
            static_cast<Bytes>(threshold) * plfs.params().index_record_bytes);
}

TEST_F(PlfsFixture, ReadBackResolvesAcrossWriters) {
  // Two ranks write disjoint halves of the logical file.
  auto h0 = run(plfs.open_write(client, "/ckpt", 0));
  auto h1 = run(plfs.open_write(client, "/ckpt", 1));
  ASSERT_TRUE(h0.ok() && h1.ok());
  EXPECT_EQ(run(plfs.write(client, h0.value, 0, 2_MiB)), Errno::ok);
  EXPECT_EQ(run(plfs.write(client, h1.value, 2_MiB, 2_MiB)), Errno::ok);
  EXPECT_EQ(run(plfs.close_write(client, h0.value)), Errno::ok);
  EXPECT_EQ(run(plfs.close_write(client, h1.value)), Errno::ok);

  auto rh = run(plfs.open_read(client, "/ckpt"));
  ASSERT_TRUE(rh.ok());
  EXPECT_EQ(rh.value.logical_size(), 4_MiB);
  EXPECT_EQ(run(plfs.read(client, rh.value, 0, 4_MiB)), Errno::ok);
  EXPECT_EQ(run(plfs.read(client, rh.value, 1_MiB, 2_MiB)), Errno::ok);
}

TEST_F(PlfsFixture, ReadOfHoleFails) {
  auto h = run(plfs.open_write(client, "/ckpt", 0));
  ASSERT_TRUE(h.ok());
  EXPECT_EQ(run(plfs.write(client, h.value, 0, 1_MiB)), Errno::ok);
  EXPECT_EQ(run(plfs.write(client, h.value, 2_MiB, 1_MiB)), Errno::ok);
  EXPECT_EQ(run(plfs.close_write(client, h.value)), Errno::ok);
  auto rh = run(plfs.open_read(client, "/ckpt"));
  ASSERT_TRUE(rh.ok());
  EXPECT_EQ(run(plfs.read(client, rh.value, 0, 3_MiB)), Errno::einval);
  EXPECT_EQ(run(plfs.read(client, rh.value, 2_MiB, 1_MiB)), Errno::ok);
}

TEST_F(PlfsFixture, OverlappingWritesLastTimestampWins) {
  ReadHandle h;
  IndexRecord a{0, 100, 0, 0, 1.0};
  IndexRecord b{50, 100, 500, 1, 2.0};  // later, overlaps tail of a
  h.splice(a, 10);
  h.splice(b, 20);
  std::vector<ReadHandle::Mapping> runs;
  ASSERT_TRUE(h.resolve(0, 150, runs));
  ASSERT_EQ(runs.size(), 2u);
  EXPECT_EQ(runs[0].data_file, 10u);
  EXPECT_EQ(runs[0].length, 50u);
  EXPECT_EQ(runs[0].physical, 0u);
  EXPECT_EQ(runs[1].data_file, 20u);
  EXPECT_EQ(runs[1].length, 100u);
  EXPECT_EQ(runs[1].physical, 500u);
}

TEST_F(PlfsFixture, OverlapInsertedOutOfOrderStillWins) {
  ReadHandle h;
  IndexRecord newer{0, 100, 0, 0, 5.0};
  IndexRecord older{0, 200, 300, 1, 1.0};
  h.splice(newer, 10);
  h.splice(older, 20);  // arrives later but is older data
  std::vector<ReadHandle::Mapping> runs;
  ASSERT_TRUE(h.resolve(0, 200, runs));
  ASSERT_EQ(runs.size(), 2u);
  EXPECT_EQ(runs[0].data_file, 10u);  // newer data survives
  EXPECT_EQ(runs[0].length, 100u);
  EXPECT_EQ(runs[1].data_file, 20u);
  EXPECT_EQ(runs[1].physical, 400u);  // older record's tail: 300 + (100-0)
}

TEST_F(PlfsFixture, SpliceMiddleOverwrite) {
  ReadHandle h;
  h.splice(IndexRecord{0, 300, 0, 0, 1.0}, 10);
  h.splice(IndexRecord{100, 100, 1000, 1, 2.0}, 20);
  std::vector<ReadHandle::Mapping> runs;
  ASSERT_TRUE(h.resolve(0, 300, runs));
  ASSERT_EQ(runs.size(), 3u);
  EXPECT_EQ(runs[0].length, 100u);
  EXPECT_EQ(runs[0].physical, 0u);
  EXPECT_EQ(runs[1].physical, 1000u);
  EXPECT_EQ(runs[2].physical, 200u);  // tail of the original record
  EXPECT_EQ(runs[2].data_file, 10u);
}

TEST_F(PlfsFixture, NRanksCreateNDataFilesWith2StripesEach) {
  // The self-contention mechanism of Section VI.
  const int n = 16;
  for (int rank = 0; rank < n; ++rank) {
    auto h = run(plfs.open_write(client, "/ckpt", rank));
    ASSERT_TRUE(h.ok());
    EXPECT_EQ(run(plfs.write(client, h.value, static_cast<Bytes>(rank) * 1_MiB, 1_MiB)),
              Errno::ok);
    EXPECT_EQ(run(plfs.close_write(client, h.value)), Errno::ok);
  }
  const auto data_files = plfs.backend_data_files("/ckpt");
  EXPECT_EQ(data_files.size(), static_cast<std::size_t>(n));
  const auto occupancy = fs.ost_occupancy(data_files);
  Bytes stripes = 0;
  for (auto c : occupancy) stripes += c;
  EXPECT_EQ(stripes, static_cast<Bytes>(n) * fs.params().default_stripe_count);
}

TEST_F(PlfsFixture, OpenReadOnNonContainerFails) {
  ASSERT_TRUE(run(client.mkdir("/plain")).ok());
  auto r = run(plfs.open_read(client, "/plain"));
  EXPECT_EQ(r.err, Errno::enoent);
}

TEST_F(PlfsFixture, EmptyContainerReadsAsEmpty) {
  auto h = run(plfs.open_write(client, "/ckpt", 0));
  ASSERT_TRUE(h.ok());
  EXPECT_EQ(run(plfs.close_write(client, h.value)), Errno::ok);
  auto rh = run(plfs.open_read(client, "/ckpt"));
  ASSERT_TRUE(rh.ok());
  EXPECT_EQ(rh.value.logical_size(), 0u);
}

TEST_F(PlfsFixture, BackendStripeOverride) {
  PlfsParams params;
  params.backend_stripe = lustre::StripeSettings{4, 1_MiB, -1};
  Plfs tuned(fs, params);
  auto h = run(tuned.open_write(client, "/tuned", 0));
  ASSERT_TRUE(h.ok());
  EXPECT_EQ(fs.inode(h.value.data_file).layout.stripe_count(), 4u);
}

}  // namespace
}  // namespace pfsc::plfs
