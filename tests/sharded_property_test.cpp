// Property test for the sharded domain runtime (sim/domain.hpp): seeded
// random cross-domain RPC schedules must complete at IDENTICAL simulated
// times — in the identical dispatch order — whether they run on one engine
// or on a ShardSet of 2..5 domains. This exercises the synchronisation
// machinery directly (window barriers, mailbox delivery keys, per-edge
// seq tiebreaks) with none of the Lustre model on top, so a failure here
// localises to sim/, not to the protocol speaking over it.
//
// The workload mirrors the model's shape: clients on domain 0 fire RPCs at
// random times (including same-instant bursts to one server, which pin the
// per-edge seq tiebreak against the single-engine native seq), servers
// hold each request for a random continuous service time, replies resume
// the client frame. Service times are continuous doubles, so cross-server
// completion-time collisions — the one measure-zero case where dispatch
// order is genuinely undefined — do not occur, exactly as in the Lustre
// model where the FIFO fabric serialises send times.
//
// A failing case is shrunk to its smallest failing op prefix before being
// reported, like event_queue_property_test, so the failure names a minimal
// (seed, domains, prefix) reproducer.
#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <string>
#include <vector>

#include "sim/domain.hpp"
#include "sim/engine.hpp"
#include "sim/mailbox.hpp"
#include "sim/task.hpp"
#include "support/rng.hpp"

namespace pfsc::sim {
namespace {

constexpr Seconds kLookahead = 25.0e-6;
constexpr std::uint8_t kRequest = 1;
constexpr std::uint8_t kReply = 2;

struct RpcOp {
  Seconds start = 0.0;    // client send time (delay from t = 0)
  std::uint32_t server = 1;  // destination domain in the sharded run
  Seconds service = 0.0;  // server-side hold before the reply
};

struct Done {
  Seconds at = 0.0;
  std::uint32_t op = 0;
  bool operator==(const Done&) const = default;
};

std::vector<RpcOp> gen_ops(std::uint64_t seed, std::uint32_t servers) {
  Rng rng(0x5AD0u ^ (seed * 0x9E3779B97F4A7C15ull));
  const std::size_t n = 1 + static_cast<std::size_t>(rng.uniform(200));
  std::vector<RpcOp> ops;
  ops.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    RpcOp op;
    // Half the sends sit on a coarse grid so bursts share an exact send
    // instant; the rest are continuous.
    op.start = rng.uniform(2) == 0
                   ? 1.0e-4 * static_cast<double>(rng.uniform(20))
                   : rng.uniform_double(0.0, 2.0e-3);
    op.server = 1 + static_cast<std::uint32_t>(rng.uniform(servers));
    op.service = rng.uniform_double(1.0e-7, 5.0e-4);
    ops.push_back(op);
  }
  return ops;
}

// -- single-engine reference ------------------------------------------------
// The same three legs as the sharded protocol: request hop (lookahead),
// service, reply hop (lookahead), all as plain delays on one engine.

Task single_client(Engine& eng, RpcOp op, std::uint32_t idx,
                   std::vector<Done>* log) {
  if (op.start > 0.0) co_await eng.delay(op.start);
  co_await eng.delay(kLookahead);
  co_await eng.delay(op.service);
  co_await eng.delay(kLookahead);
  log->push_back({eng.now(), idx});
}

std::vector<Done> run_single(const std::vector<RpcOp>& ops, std::size_t n) {
  std::vector<Done> log;
  Engine eng(EventQueuePolicy::ladder);
  for (std::size_t i = 0; i < n; ++i) {
    eng.spawn(single_client(eng, ops[i], static_cast<std::uint32_t>(i), &log));
  }
  eng.run();
  return log;
}

// -- sharded run ------------------------------------------------------------

struct Crossing {
  ShardSet* shards;
  std::uint32_t dst;
  Message m;
  bool await_ready() const noexcept { return false; }
  void await_suspend(std::coroutine_handle<> h) {
    m.resume = h;
    shards->post(0, dst, m);
  }
  void await_resume() const noexcept {}
};

Task serve(Engine& eng, ShardSet& shards, std::uint32_t self, Message m) {
  co_await eng.delay(std::bit_cast<double>(m.a));
  Message reply;
  reply.kind = kReply;
  reply.sent_at = eng.now();
  reply.resume = m.resume;
  shards.post(self, 0, reply);
}

Task sharded_client(ShardSet& shards, RpcOp op, std::uint32_t idx,
                    std::vector<Done>* log) {
  Engine& eng = shards.domain(0);
  if (op.start > 0.0) co_await eng.delay(op.start);
  Message m;
  m.kind = kRequest;
  m.sent_at = eng.now();
  m.a = std::bit_cast<std::uint64_t>(op.service);
  co_await Crossing{&shards, op.server, m};
  log->push_back({eng.now(), idx});
}

struct RunStats {
  std::uint64_t delivered = 0;
  std::uint64_t windows = 0;
};

std::vector<Done> run_sharded(const std::vector<RpcOp>& ops, std::size_t n,
                              std::size_t domains, RunStats* stats = nullptr) {
  std::vector<Done> log;
  ShardSet shards(domains, kLookahead, EventQueuePolicy::ladder);
  for (std::size_t d = 0; d < domains; ++d) {
    shards.set_handler(d, [&shards, d](Engine& eng, std::uint32_t src,
                                       const Message& m) {
      if (m.kind == kRequest) {
        eng.spawn_message(serve(eng, shards, static_cast<std::uint32_t>(d), m),
                          m.deliver_t, m.sent_at, src + 1, m.seq);
      } else {
        eng.schedule_message(m.resume, m.deliver_t, m.sent_at, src + 1, m.seq);
      }
    });
  }
  for (std::size_t i = 0; i < n; ++i) {
    std::uint32_t server = ops[i].server;
    // Fewer domains than the op asks for: wrap onto a populated one, the
    // same degradation the Lustre partition applies (oss mod domains-1).
    server = 1 + (server - 1) % static_cast<std::uint32_t>(domains - 1);
    RpcOp op = ops[i];
    op.server = server;
    shards.domain(0).spawn(
        sharded_client(shards, op, static_cast<std::uint32_t>(i), &log));
  }
  shards.run();
  if (stats != nullptr) {
    stats->delivered = shards.messages_delivered();
    stats->windows = shards.windows();
  }
  return log;
}

std::string compare(const std::vector<RpcOp>& ops, std::size_t n,
                    std::size_t domains) {
  const auto single = run_single(ops, n);
  const auto sharded = run_sharded(ops, n, domains);
  if (single.size() != sharded.size()) {
    return "completion counts differ: single " + std::to_string(single.size()) +
           " vs sharded " + std::to_string(sharded.size());
  }
  for (std::size_t i = 0; i < single.size(); ++i) {
    if (!(single[i] == sharded[i])) {
      return "completion " + std::to_string(i) + " differs: single (t=" +
             std::to_string(single[i].at) + ", op=" +
             std::to_string(single[i].op) + ") vs sharded (t=" +
             std::to_string(sharded[i].at) + ", op=" +
             std::to_string(sharded[i].op) + ")";
    }
  }
  return {};
}

TEST(ShardedProperty, RandomRpcSchedulesMatchSingleEngine) {
  for (std::uint64_t seed = 1; seed <= 40; ++seed) {
    const std::size_t domains = 2 + seed % 4;  // 2..5
    const std::vector<RpcOp> ops =
        gen_ops(seed, static_cast<std::uint32_t>(domains - 1));
    const std::string err = compare(ops, ops.size(), domains);
    if (err.empty()) continue;
    std::size_t n = ops.size();
    std::string shrunk = err;
    for (std::size_t len = 1; len < ops.size(); ++len) {
      const std::string e = compare(ops, len, domains);
      if (!e.empty()) {
        n = len;
        shrunk = e;
        break;
      }
    }
    ADD_FAILURE() << "seed " << seed << " (domains " << domains
                  << ") fails with the first " << n << " of " << ops.size()
                  << " ops: " << shrunk;
    return;
  }
}

// Accounting regression for the per-domain-window protocol: every RPC op
// is exactly one request plus one reply crossing the fabric, so the
// delivered-message count must equal 2 x ops at EVERY domain count —
// wider per-domain windows may regroup dispatches into fewer rounds, but
// they must never duplicate, drop, or re-route a delivery. windows() has
// no cross-count invariant (that grouping is exactly what changes), only
// that some rounds ran.
TEST(ShardedProperty, DeliveryCountInvariantAcrossDomainCounts) {
  const std::vector<RpcOp> ops = gen_ops(0xACC7, /*servers=*/7);
  for (const std::size_t domains : {2u, 3u, 8u}) {
    RunStats stats;
    const auto log = run_sharded(ops, ops.size(), domains, &stats);
    ASSERT_EQ(log.size(), ops.size()) << "domains " << domains;
    EXPECT_EQ(stats.delivered, 2 * ops.size()) << "domains " << domains;
    EXPECT_GT(stats.windows, 0u) << "domains " << domains;
  }
}

// The coordinator itself: a run with no cross-domain traffic at all must
// still terminate (every domain goes idle, the min-reduction sees +inf),
// and the diagnostics must report zero deliveries.
TEST(ShardedProperty, IdleDomainsTerminate) {
  ShardSet shards(4, kLookahead, EventQueuePolicy::ladder);
  std::vector<Done> log;
  shards.domain(0).spawn(
      single_client(shards.domain(0), {0.0, 1, 1.0e-5}, 0, &log));
  shards.run();
  ASSERT_EQ(log.size(), 1u);
  EXPECT_EQ(shards.messages_delivered(), 0u);
  EXPECT_GT(shards.windows(), 0u);
}

// A worker-thread exception must not deadlock the barriers: it surfaces
// from run() on the calling thread after every domain has parked.
TEST(ShardedProperty, ServerExceptionPropagates) {
  ShardSet shards(2, kLookahead, EventQueuePolicy::ladder);
  shards.set_handler(0, [](Engine&, std::uint32_t, const Message&) {});
  shards.set_handler(1, [](Engine&, std::uint32_t, const Message&) {
    throw std::runtime_error("server domain failure");
  });
  std::vector<Done> log;
  shards.domain(0).spawn(sharded_client(shards, {0.0, 1, 1.0e-5}, 0, &log));
  EXPECT_THROW(shards.run(), std::runtime_error);
}

}  // namespace
}  // namespace pfsc::sim
