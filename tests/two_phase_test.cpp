#include <gtest/gtest.h>

#include <numeric>

#include "mpiio/two_phase.hpp"
#include "support/error.hpp"

namespace pfsc::mpiio {
namespace {

TEST(MergeExtents, MergesOverlapsAndSorts) {
  const std::vector<IoRequest> reqs{
      {0, 100, 50}, {1, 0, 60}, {2, 50, 60}, {3, 300, 10}, {4, 200, 0},
  };
  const auto merged = merge_extents(reqs);
  ASSERT_EQ(merged.size(), 2u);
  EXPECT_EQ(merged[0], (std::pair<Bytes, Bytes>{0, 150}));
  EXPECT_EQ(merged[1], (std::pair<Bytes, Bytes>{300, 10}));
}

TEST(MergeExtents, AdjacentExtentsMerge) {
  const std::vector<IoRequest> reqs{{0, 0, 10}, {1, 10, 10}};
  const auto merged = merge_extents(reqs);
  ASSERT_EQ(merged.size(), 1u);
  EXPECT_EQ(merged[0].second, 20u);
}

TEST(ChooseAggregators, OnePerNodeByDefault) {
  int n0 = 0;
  int n1 = 1;
  int n2 = 2;
  const std::vector<const void*> keys{&n0, &n0, &n0, &n1, &n1, &n2};
  const auto aggs = choose_aggregators(keys, 0);
  EXPECT_EQ(aggs, (std::vector<int>{0, 3, 5}));
}

TEST(ChooseAggregators, ThinsToCbNodes) {
  int nodes[8];
  std::vector<const void*> keys;
  for (auto& n : nodes) {
    keys.push_back(&n);
    keys.push_back(&n);  // two ranks per node
  }
  const auto aggs = choose_aggregators(keys, 4);
  ASSERT_EQ(aggs.size(), 4u);
  // Evenly spread across the 8 node-first ranks (even indices).
  for (std::size_t i = 1; i < aggs.size(); ++i) EXPECT_GT(aggs[i], aggs[i - 1]);
  for (int a : aggs) EXPECT_EQ(a % 2, 0);
}

std::vector<IoRequest> dense_requests(int nranks, Bytes each) {
  std::vector<IoRequest> reqs;
  for (int r = 0; r < nranks; ++r) {
    reqs.push_back({r, static_cast<Bytes>(r) * each, each});
  }
  return reqs;
}

TEST(PlanTwoPhase, DenseExtentSplitsAcrossAggregators) {
  const auto reqs = dense_requests(8, 1_MiB);  // 8 MiB total
  const std::vector<int> aggs{0, 4};
  const auto plans = plan_two_phase(reqs, aggs, 16_MiB, 1_MiB);
  ASSERT_EQ(plans.size(), 2u);
  EXPECT_EQ(plans[0].agg_rank, 0);
  EXPECT_EQ(plans[1].agg_rank, 4);
  EXPECT_EQ(plans[0].domain_begin, 0u);
  EXPECT_EQ(plans[0].domain_end, 4_MiB);
  EXPECT_EQ(plans[1].domain_begin, 4_MiB);
  EXPECT_EQ(plans[1].domain_end, 8_MiB);
  // Everything fits one round per aggregator.
  ASSERT_EQ(plans[0].rounds.size(), 1u);
  EXPECT_EQ(plans[0].rounds[0].present_bytes, 4_MiB);
}

TEST(PlanTwoPhase, RoundsBoundedByCbBuffer) {
  const auto reqs = dense_requests(8, 1_MiB);
  const std::vector<int> aggs{0};
  const auto plans = plan_two_phase(reqs, aggs, 2_MiB, 1_MiB);
  ASSERT_EQ(plans.size(), 1u);
  ASSERT_EQ(plans[0].rounds.size(), 4u);
  for (const auto& round : plans[0].rounds) {
    EXPECT_EQ(round.present_bytes, 2_MiB);
  }
}

TEST(PlanTwoPhase, TotalPresentBytesEqualsData) {
  const auto reqs = dense_requests(16, 512_KiB);
  const std::vector<int> aggs{0, 5, 9};
  const auto plans = plan_two_phase(reqs, aggs, 1_MiB, 512_KiB);
  Bytes total = 0;
  for (const auto& p : plans) {
    for (const auto& r : p.rounds) {
      total += r.present_bytes;
      Bytes ext_total = 0;
      for (const auto& [off, len] : r.extents) {
        ext_total += len;
        EXPECT_GE(off, p.domain_begin);
        EXPECT_LE(off + len, p.domain_end);
      }
      EXPECT_EQ(ext_total, r.present_bytes);
    }
  }
  EXPECT_EQ(total, 16u * 512_KiB);
}

TEST(PlanTwoPhase, SparseStridedRequests) {
  // IOR-segmented pattern: each rank writes 1 MiB at stride 4 MiB.
  std::vector<IoRequest> reqs;
  for (int r = 0; r < 4; ++r) {
    reqs.push_back({r, static_cast<Bytes>(r) * 4_MiB, 1_MiB});
  }
  const std::vector<int> aggs{0, 2};
  const auto plans = plan_two_phase(reqs, aggs, 16_MiB, 1_MiB);
  Bytes total = 0;
  for (const auto& p : plans) {
    for (const auto& r : p.rounds) total += r.present_bytes;
  }
  EXPECT_EQ(total, 4u * 1_MiB);
  // Extent span is [0, 13 MiB); each aggregator owns half (rounded to 1 MiB).
  ASSERT_EQ(plans.size(), 2u);
  EXPECT_EQ(plans[0].domain_begin, 0u);
  EXPECT_EQ(plans[1].domain_end, 13_MiB);
}

TEST(PlanTwoPhase, DomainsAlignToStripes) {
  const auto reqs = dense_requests(10, 1_MiB);  // 10 MiB
  const std::vector<int> aggs{0, 1, 2};
  const auto plans = plan_two_phase(reqs, aggs, 16_MiB, 4_MiB);
  // ceil(10/3) = 3.34 MiB -> rounded up to 4 MiB domains.
  ASSERT_EQ(plans.size(), 3u);
  EXPECT_EQ(plans[0].domain_end, 4_MiB);
  EXPECT_EQ(plans[1].domain_begin, 4_MiB);
  EXPECT_EQ(plans[1].domain_end, 8_MiB);
  EXPECT_EQ(plans[2].domain_end, 10_MiB);
}

TEST(PlanTwoPhase, EmptyAndZeroRequests) {
  const std::vector<int> aggs{0};
  EXPECT_TRUE(plan_two_phase({}, aggs, 1_MiB, 0).empty());
  const std::vector<IoRequest> zero{{0, 100, 0}, {1, 50, 0}};
  EXPECT_TRUE(plan_two_phase(zero, aggs, 1_MiB, 0).empty());
}

TEST(PlanTwoPhase, MoreAggregatorsThanData) {
  const std::vector<IoRequest> reqs{{0, 0, 1_MiB}};
  const std::vector<int> aggs{0, 1, 2, 3};
  const auto plans = plan_two_phase(reqs, aggs, 16_MiB, 1_MiB);
  ASSERT_EQ(plans.size(), 1u);  // empty domains are dropped
  EXPECT_EQ(plans[0].rounds[0].present_bytes, 1_MiB);
}

TEST(PlanTwoPhase, NonZeroBaseOffset) {
  // All data far from offset zero: domains must start at the data.
  std::vector<IoRequest> reqs{{0, 1_GiB, 2_MiB}, {1, 1_GiB + 2_MiB, 2_MiB}};
  const std::vector<int> aggs{0, 1};
  const auto plans = plan_two_phase(reqs, aggs, 16_MiB, 1_MiB);
  ASSERT_EQ(plans.size(), 2u);
  EXPECT_EQ(plans[0].domain_begin, 1_GiB);
  EXPECT_EQ(plans[0].rounds[0].begin, 1_GiB);
}

TEST(PlanTwoPhase, RequiresAggregatorsAndBuffer) {
  const auto reqs = dense_requests(2, 1_MiB);
  EXPECT_THROW(plan_two_phase(reqs, {}, 1_MiB, 0), UsageError);
  const std::vector<int> aggs{0};
  EXPECT_THROW(plan_two_phase(reqs, aggs, 0, 0), UsageError);
}

// Property sweep over rank counts / buffer sizes: conservation and
// domain-disjointness must hold for any configuration.
class PlanProperty
    : public ::testing::TestWithParam<std::tuple<int, Bytes, Bytes>> {};

TEST_P(PlanProperty, ConservationAndDisjointness) {
  const auto [nranks, cb, align] = GetParam();
  // Strided, hole-y pattern.
  std::vector<IoRequest> reqs;
  for (int r = 0; r < nranks; ++r) {
    reqs.push_back({r, static_cast<Bytes>(r) * 3_MiB, 2_MiB});
  }
  const std::vector<int> aggs{0, nranks / 2};
  const auto plans = plan_two_phase(reqs, aggs, cb, align);
  Bytes total = 0;
  Bytes prev_end = 0;
  for (const auto& p : plans) {
    EXPECT_GE(p.domain_begin, prev_end);  // domains are disjoint & ordered
    prev_end = p.domain_end;
    Bytes round_prev_end = p.domain_begin;
    for (const auto& r : p.rounds) {
      EXPECT_GE(r.begin, round_prev_end);
      round_prev_end = r.end;
      total += r.present_bytes;
      EXPECT_LE(r.present_bytes, cb);
    }
  }
  EXPECT_EQ(total, static_cast<Bytes>(nranks) * 2_MiB);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PlanProperty,
    ::testing::Combine(::testing::Values(2, 5, 16, 64),
                       ::testing::Values(Bytes{1_MiB}, Bytes{16_MiB}),
                       ::testing::Values(Bytes{0}, Bytes{1_MiB}, Bytes{128_MiB})));

}  // namespace
}  // namespace pfsc::mpiio
