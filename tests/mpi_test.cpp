#include <gtest/gtest.h>

#include <vector>

#include "mpi/runtime.hpp"

namespace pfsc::mpi {
namespace {

struct MpiFixture : ::testing::Test {
  sim::Engine eng;
  lustre::FileSystem fs{eng, hw::tiny_test_platform(), 99};
};

TEST_F(MpiFixture, RuntimePlacesRanksOnNodes) {
  Runtime rt(fs, 10, 4);
  EXPECT_EQ(rt.nprocs(), 10);
  EXPECT_EQ(rt.node_count(), 3);
  EXPECT_EQ(rt.node_of(0), 0);
  EXPECT_EQ(rt.node_of(3), 0);
  EXPECT_EQ(rt.node_of(4), 1);
  EXPECT_EQ(rt.node_of(9), 2);
  // Clients on the same node share a NIC.
  EXPECT_EQ(rt.client(0).node_key(), rt.client(3).node_key());
  EXPECT_NE(rt.client(0).node_key(), rt.client(4).node_key());
}

TEST_F(MpiFixture, RuntimeRejectsOversizedJobs) {
  // tiny platform has 8 nodes x 4 cores.
  EXPECT_THROW(Runtime(fs, 9 * 4, 4), UsageError);
}

TEST_F(MpiFixture, BarrierSynchronisesRanks) {
  Runtime rt(fs, 4, 4);
  std::vector<double> release_times(4);
  rt.run_to_completion([&](int rank) -> sim::Task {
    co_await rt.engine().delay(static_cast<double>(rank));  // stagger arrival
    co_await rt.world().barrier(rank);
    release_times[static_cast<std::size_t>(rank)] = rt.engine().now();
  });
  for (double t : release_times) EXPECT_GE(t, 3.0);  // slowest rank gates all
  EXPECT_DOUBLE_EQ(release_times[0], release_times[3]);
}

TEST_F(MpiFixture, AllreduceOps) {
  Runtime rt(fs, 5, 4);
  std::vector<double> sums(5), mins(5), maxs(5);
  rt.run_to_completion([&](int rank) -> sim::Task {
    const double v = static_cast<double>(rank + 1);
    sums[static_cast<std::size_t>(rank)] =
        co_await rt.world().allreduce(rank, v, Communicator::ReduceOp::sum);
    mins[static_cast<std::size_t>(rank)] =
        co_await rt.world().allreduce(rank, v, Communicator::ReduceOp::min);
    maxs[static_cast<std::size_t>(rank)] =
        co_await rt.world().allreduce(rank, v, Communicator::ReduceOp::max);
  });
  for (int r = 0; r < 5; ++r) {
    EXPECT_DOUBLE_EQ(sums[static_cast<std::size_t>(r)], 15.0);
    EXPECT_DOUBLE_EQ(mins[static_cast<std::size_t>(r)], 1.0);
    EXPECT_DOUBLE_EQ(maxs[static_cast<std::size_t>(r)], 5.0);
  }
}

TEST_F(MpiFixture, BcastDeliversRootValue) {
  Runtime rt(fs, 4, 4);
  std::vector<double> got(4);
  rt.run_to_completion([&](int rank) -> sim::Task {
    got[static_cast<std::size_t>(rank)] =
        co_await rt.world().bcast(rank, 2, rank == 2 ? 7.5 : -1.0);
  });
  for (double v : got) EXPECT_DOUBLE_EQ(v, 7.5);
}

TEST_F(MpiFixture, AllgatherCollectsByRank) {
  Runtime rt(fs, 4, 4);
  std::vector<std::vector<double>> got(4);
  rt.run_to_completion([&](int rank) -> sim::Task {
    got[static_cast<std::size_t>(rank)] =
        co_await rt.world().allgather(rank, static_cast<double>(rank * 10));
  });
  for (const auto& v : got) {
    ASSERT_EQ(v.size(), 4u);
    for (int r = 0; r < 4; ++r) EXPECT_DOUBLE_EQ(v[static_cast<std::size_t>(r)], r * 10.0);
  }
}

TEST_F(MpiFixture, CollectivesCostLatency) {
  Runtime rt(fs, 8, 4, /*hop_latency=*/1.0e-3);
  rt.run_to_completion([&](int rank) -> sim::Task {
    co_await rt.world().barrier(rank);
  });
  // 2 * ceil(log2(8)) * 1ms = 6ms.
  EXPECT_NEAR(eng.now(), 6.0e-3, 1e-9);
}

TEST_F(MpiFixture, SplitByColorFormsGroups) {
  Runtime rt(fs, 8, 4);
  std::vector<int> sub_rank(8, -1);
  std::vector<int> sub_size(8, -1);
  std::vector<Communicator*> sub_comm(8, nullptr);
  rt.run_to_completion([&](int rank) -> sim::Task {
    auto sr = co_await rt.world().split(rank, rank % 2, rank);
    sub_rank[static_cast<std::size_t>(rank)] = sr.rank;
    sub_size[static_cast<std::size_t>(rank)] = sr.comm->size();
    sub_comm[static_cast<std::size_t>(rank)] = sr.comm;
  });
  for (int r = 0; r < 8; ++r) {
    EXPECT_EQ(sub_size[static_cast<std::size_t>(r)], 4);
    EXPECT_EQ(sub_rank[static_cast<std::size_t>(r)], r / 2);
  }
  EXPECT_EQ(sub_comm[0], sub_comm[2]);  // same colour -> same comm
  EXPECT_NE(sub_comm[0], sub_comm[1]);  // different colour -> different comm
}

TEST_F(MpiFixture, SplitOrdersByKey) {
  Runtime rt(fs, 4, 4);
  std::vector<int> sub_rank(4, -1);
  rt.run_to_completion([&](int rank) -> sim::Task {
    // Reverse the ordering with descending keys.
    auto sr = co_await rt.world().split(rank, 0, 100 - rank);
    sub_rank[static_cast<std::size_t>(rank)] = sr.rank;
  });
  EXPECT_EQ(sub_rank, (std::vector<int>{3, 2, 1, 0}));
}

TEST_F(MpiFixture, SubCommunicatorCollectivesWork) {
  Runtime rt(fs, 8, 4);
  std::vector<double> sums(8);
  rt.run_to_completion([&](int rank) -> sim::Task {
    auto sr = co_await rt.world().split(rank, rank / 4, rank);
    sums[static_cast<std::size_t>(rank)] = co_await sr.comm->allreduce(
        sr.rank, 1.0, Communicator::ReduceOp::sum);
  });
  for (double s : sums) EXPECT_DOUBLE_EQ(s, 4.0);
}

TEST_F(MpiFixture, RepeatedCollectivesMatchBySequence) {
  Runtime rt(fs, 4, 4);
  std::vector<double> totals(4, 0.0);
  rt.run_to_completion([&](int rank) -> sim::Task {
    for (int i = 0; i < 50; ++i) {
      totals[static_cast<std::size_t>(rank)] += co_await rt.world().allreduce(
          rank, static_cast<double>(i), Communicator::ReduceOp::sum);
    }
  });
  // Each round sums 4*i; total = 4 * (0+..+49) = 4900.
  for (double t : totals) EXPECT_DOUBLE_EQ(t, 4900.0);
}

TEST_F(MpiFixture, SingleRankCommunicatorShortCircuits) {
  Runtime rt(fs, 1, 4);
  bool done = false;
  rt.run_to_completion([&](int rank) -> sim::Task {
    co_await rt.world().barrier(rank);
    const double v = co_await rt.world().allreduce(
        rank, 3.0, Communicator::ReduceOp::sum);
    EXPECT_DOUBLE_EQ(v, 3.0);
    done = true;
  });
  EXPECT_TRUE(done);
}

}  // namespace
}  // namespace pfsc::mpi
