// End-to-end behaviour of the event-driven trace subsystem: every
// instrumented layer emits spans into an attached Recorder, the harness
// wires --trace through Scenario, tracing off is bit-for-bit invisible,
// and traced runs stay deterministic across ParallelRunner thread counts.
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "harness/runner.hpp"
#include "harness/scenario.hpp"
#include "lustre/client.hpp"
#include "lustre/fs.hpp"
#include "trace/export.hpp"
#include "trace/recorder.hpp"
#include "trace/telemetry.hpp"

namespace pfsc {
namespace {

using harness::Observation;
using harness::RunPlan;
using harness::Scenario;
using harness::Workload;

std::size_t spans_in(const trace::Recorder& rec, trace::Cat cat) {
  std::size_t n = 0;
  for (const trace::Event& e : rec.events()) {
    if (e.cat == cat && (e.kind == trace::EventKind::span_begin ||
                         e.kind == trace::EventKind::span_end)) {
      ++n;
    }
  }
  return n;
}

TEST(TraceIntegration, EveryLayerEmitsSpans) {
  sim::Engine eng;
  // Small engine batch so dispatch spans show up in a short run.
  trace::Recorder rec(std::size_t{1} << 20, trace::kAllCats,
                      /*engine_sample_every=*/4);
  eng.set_recorder(&rec);
  lustre::FileSystem fs(eng, hw::cab_lscratchc(), /*seed=*/1);
  lustre::Client client(fs, "c0");

  eng.spawn([](lustre::FileSystem&, lustre::Client& c) -> sim::Task {
    lustre::StripeSettings settings;
    settings.stripe_count = 4;
    settings.stripe_size = 1_MiB;
    auto file = co_await c.create("/traced", settings);
    PFSC_ASSERT(file.ok());
    const auto e = co_await c.write(file.value, 0, 8_MiB);
    PFSC_ASSERT(e == lustre::Errno::ok);
  }(fs, client));
  eng.run();

  EXPECT_GE(spans_in(rec, trace::Cat::engine), 2u);
  EXPECT_GE(spans_in(rec, trace::Cat::link), 2u);
  EXPECT_GE(spans_in(rec, trace::Cat::disk), 2u);
  EXPECT_GE(spans_in(rec, trace::Cat::client), 2u);
  EXPECT_GE(spans_in(rec, trace::Cat::sched), 2u);

  // Events arrive in dispatch order, so per-track times are monotonic.
  std::vector<Seconds> last(rec.tracks().size(), -1.0);
  for (const trace::Event& e : rec.events()) {
    EXPECT_GE(e.t, last[e.track]);
    last[e.track] = e.t;
  }
  EXPECT_EQ(rec.dropped(), 0u);
}

Scenario small_multi() {
  Scenario s;
  s.workload = Workload::multi;
  s.jobs = 2;
  s.nprocs = 4;
  s.procs_per_node = 2;
  s.ior.block_size = 2_MiB;
  s.ior.transfer_size = 1_MiB;
  s.ior.segment_count = 2;
  s.ior.hints.striping_factor = 4;
  return s;
}

TEST(TraceIntegration, ScenarioFullTraceCoversAllLayers) {
  Scenario s = small_multi();
  s.trace.mode = trace::TraceMode::full;
  s.trace.interval = 0.5;
  const Observation obs = run_scenario(s, /*seed=*/3);
  EXPECT_TRUE(obs.traced);
  ASSERT_FALSE(obs.trace_json.empty());
  for (const char* cat : {"\"cat\":\"engine\"", "\"cat\":\"link\"",
                          "\"cat\":\"disk\"", "\"cat\":\"client\"",
                          "\"cat\":\"sched\"", "\"cat\":\"sampler\""}) {
    EXPECT_NE(obs.trace_json.find(cat), std::string::npos) << cat;
  }
  EXPECT_NE(obs.trace_json.find("write_rpc"), std::string::npos);
  EXPECT_EQ(obs.trace_summary.dropped_events, 0u);
}

TEST(TraceIntegration, PlfsWorkloadEmitsPlfsSpans) {
  Scenario s;
  s.workload = Workload::plfs;
  s.ior.hints.driver = mpiio::Driver::ad_plfs;
  s.nprocs = 4;
  s.procs_per_node = 2;
  s.ior.block_size = 1_MiB;
  s.ior.transfer_size = 1_MiB;
  s.ior.segment_count = 2;
  s.trace.mode = trace::TraceMode::full;
  const Observation obs = run_scenario(s, /*seed=*/3);
  EXPECT_TRUE(obs.traced);
  EXPECT_NE(obs.trace_json.find("\"cat\":\"plfs\""), std::string::npos);
}

TEST(TraceIntegration, SummaryMatchesSchedulerAccounting) {
  Scenario s = small_multi();
  s.trace.mode = trace::TraceMode::summary;
  const Observation obs = run_scenario(s, /*seed=*/5);
  EXPECT_TRUE(obs.traced);
  // Summary mode records no full-trace JSON.
  EXPECT_TRUE(obs.trace_json.empty());
  // Each job pushed nprocs * block_size * segment_count bytes through the
  // OSS schedulers; the summary reads FileSystem::sched_* directly.
  const Bytes expected = static_cast<Bytes>(s.nprocs) * s.ior.block_size *
                         s.ior.segment_count;
  ASSERT_EQ(obs.trace_summary.job_bytes.size(), 2u);
  for (const auto& [job, bytes] : obs.trace_summary.job_bytes) {
    EXPECT_EQ(bytes, expected) << "job " << job;
  }
  EXPECT_NEAR(obs.trace_summary.jain, 1.0, 1e-12);
  EXPECT_EQ(obs.trace_summary.ost_bytes.size(),
            s.platform.ost_count);
  Bytes on_disks = 0;
  for (const Bytes b : obs.trace_summary.ost_bytes) on_disks += b;
  EXPECT_EQ(on_disks, 2 * expected);
}

TEST(TraceIntegration, TracingOffIsInvisible) {
  const Scenario off = small_multi();
  Scenario full = small_multi();
  full.trace.mode = trace::TraceMode::full;
  full.trace.interval = 0.5;

  const Observation obs_off = run_scenario(off, /*seed=*/7);
  const Observation obs_full = run_scenario(full, /*seed=*/7);

  EXPECT_FALSE(obs_off.traced);
  EXPECT_TRUE(obs_off.trace_json.empty());
  // Bit-for-bit: identical timings and metrics with and without tracing.
  EXPECT_EQ(obs_off.metric, obs_full.metric);
  EXPECT_EQ(obs_off.total_mbps, obs_full.total_mbps);
  ASSERT_EQ(obs_off.per_job.size(), obs_full.per_job.size());
  for (std::size_t j = 0; j < obs_off.per_job.size(); ++j) {
    EXPECT_EQ(obs_off.per_job[j].write_time, obs_full.per_job[j].write_time);
    EXPECT_EQ(obs_off.per_job[j].write_mbps, obs_full.per_job[j].write_mbps);
  }
}

TEST(TraceIntegration, TraceIdenticalAcrossRunnerThreadCounts) {
  Scenario s = small_multi();
  s.trace.mode = trace::TraceMode::full;
  RunPlan plan;
  plan.repetitions(4);
  const auto one = harness::ParallelRunner(1).run(s, plan);
  const auto eight = harness::ParallelRunner(8).run(s, plan);
  ASSERT_EQ(one.point(0).reps.size(), 4u);
  ASSERT_EQ(eight.point(0).reps.size(), 4u);
  for (std::size_t rep = 0; rep < 4; ++rep) {
    const Observation& a = one.point(0).reps[rep];
    const Observation& b = eight.point(0).reps[rep];
    ASSERT_FALSE(a.trace_json.empty());
    // Byte-identical trace output regardless of worker-thread count.
    EXPECT_EQ(a.trace_json, b.trace_json) << "rep " << rep;
    EXPECT_EQ(a.metric, b.metric);
  }
}

TEST(TraceIntegration, ShardedFullTraceIsByteIdentical) {
  // Same contract as TraceIdenticalAcrossRunnerThreadCounts, but for domain
  // workers inside ONE run: recording onto per-domain recorders and merging
  // at export must produce the very bytes the single recorder produced.
  // Cat::engine is masked out — dispatch-batch spans are per-engine
  // bookkeeping whose boundaries legitimately depend on the partition.
  Scenario s = small_multi();
  s.trace.mode = trace::TraceMode::full;
  s.trace.categories = trace::kAllCats & ~trace::cat_bit(trace::Cat::engine);
  const Observation solo = run_scenario(s, /*seed=*/13);
  s.platform.sim_domains = 2;
  const Observation sharded = run_scenario(s, /*seed=*/13);
  ASSERT_FALSE(solo.trace_json.empty());
  EXPECT_EQ(solo.trace_json, sharded.trace_json);
  EXPECT_EQ(solo.trace_summary.recorded_events,
            sharded.trace_summary.recorded_events);
  EXPECT_EQ(solo.trace_summary.dropped_events, 0u);
  for (const char* cat : {"\"cat\":\"link\"", "\"cat\":\"disk\"",
                          "\"cat\":\"client\"", "\"cat\":\"sched\""}) {
    EXPECT_NE(sharded.trace_json.find(cat), std::string::npos) << cat;
  }
}

TEST(TraceIntegration, ValidateRejectsInconsistentTraceConfig) {
  Scenario s = small_multi();
  s.trace.out = "trace.json";  // out without a mode
  EXPECT_THROW(s.validate(), UsageError);

  Scenario p;
  p.workload = Workload::probe;
  p.trace.mode = trace::TraceMode::full;
  p.trace.interval = 1.0;  // probe cannot host the trace sampler
  EXPECT_THROW(p.validate(), UsageError);

  Scenario neg = small_multi();
  neg.trace.mode = trace::TraceMode::full;
  neg.trace.interval = -1.0;
  EXPECT_THROW(neg.validate(), UsageError);
}

TEST(TraceIntegration, EnvironmentOverrideEnablesTracing) {
  ::setenv("PFSC_TRACE", "summary", 1);
  const Observation obs = run_scenario(small_multi(), /*seed=*/11);
  ::unsetenv("PFSC_TRACE");
  EXPECT_TRUE(obs.traced);
  EXPECT_TRUE(obs.trace_json.empty());  // summary: no JSON
  EXPECT_FALSE(obs.trace_summary.job_bytes.empty());

  ::setenv("PFSC_TRACE", "nonsense", 1);
  EXPECT_THROW(run_scenario(small_multi(), 11), UsageError);
  ::unsetenv("PFSC_TRACE");
}

TEST(SamplerStop, CancelsPendingWakeup) {
  sim::Engine eng;
  trace::Sampler sampler(eng, /*interval=*/1.0);
  sampler.add_probe("one", [] { return 1.0; });
  sampler.start();
  eng.spawn([](sim::Engine& e, trace::Sampler& s) -> sim::Task {
    co_await e.delay(2.5);
    s.stop();
  }(eng, sampler));
  eng.run();
  // Ticks at t=0,1,2 happened; the t=3 wakeup was cancelled, so the
  // engine drains at the stop time instead of one interval later.
  EXPECT_EQ(sampler.series(0).size(), 3u);
  EXPECT_DOUBLE_EQ(eng.now(), 2.5);
}

TEST(ProbeLifetime, LivenessTokenExpiresWithFileSystem) {
  sim::Engine eng;
  std::weak_ptr<const void> token;
  {
    lustre::FileSystem fs(eng, hw::cab_lscratchc(), /*seed=*/1);
    token = fs.liveness();
    EXPECT_FALSE(token.expired());
  }
  EXPECT_TRUE(token.expired());
}

}  // namespace
}  // namespace pfsc
