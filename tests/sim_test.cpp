#include <gtest/gtest.h>

#include <vector>

#include "sim/engine.hpp"
#include "sim/link.hpp"
#include "sim/resources.hpp"
#include "sim/task.hpp"

namespace pfsc::sim {
namespace {

Task record_at(Engine& eng, Seconds t, std::vector<double>& log, double id) {
  co_await eng.delay(t);
  log.push_back(id);
  log.push_back(eng.now());
}

TEST(Engine, DelaysRunInTimeOrder) {
  Engine eng;
  std::vector<double> log;
  eng.spawn(record_at(eng, 2.0, log, 1));
  eng.spawn(record_at(eng, 1.0, log, 2));
  eng.spawn(record_at(eng, 3.0, log, 3));
  eng.run();
  ASSERT_EQ(log.size(), 6u);
  EXPECT_EQ(log[0], 2);
  EXPECT_EQ(log[1], 1.0);
  EXPECT_EQ(log[2], 1);
  EXPECT_EQ(log[3], 2.0);
  EXPECT_EQ(log[4], 3);
  EXPECT_EQ(log[5], 3.0);
  EXPECT_DOUBLE_EQ(eng.now(), 3.0);
}

TEST(Engine, SameTimestampIsFifo) {
  Engine eng;
  std::vector<double> log;
  for (int i = 0; i < 8; ++i) eng.spawn(record_at(eng, 1.0, log, i));
  eng.run();
  for (int i = 0; i < 8; ++i) EXPECT_EQ(log[static_cast<std::size_t>(2 * i)], i);
}

TEST(Engine, RunUntilStopsAtDeadline) {
  Engine eng;
  std::vector<double> log;
  eng.spawn(record_at(eng, 1.0, log, 1));
  eng.spawn(record_at(eng, 5.0, log, 2));
  EXPECT_FALSE(eng.run_until(2.0));
  EXPECT_EQ(log.size(), 2u);
  EXPECT_DOUBLE_EQ(eng.now(), 2.0);
  EXPECT_TRUE(eng.run_until(10.0));
  EXPECT_EQ(log.size(), 4u);
}

TEST(Engine, ExecutedEventsCounts) {
  Engine eng;
  std::vector<double> log;
  eng.spawn(record_at(eng, 1.0, log, 1));
  eng.run();
  EXPECT_GE(eng.executed_events(), 2u);  // initial resume + delay resume
}

Task chained(Engine& eng, int depth, int& out) {
  if (depth > 0) {
    Task child = chained(eng, depth - 1, out);
    eng.spawn(child);
    co_await child;
  }
  ++out;
}

TEST(Task, JoinPropagatesCompletionThroughChain) {
  Engine eng;
  int count = 0;
  eng.spawn(chained(eng, 20, count));
  eng.run();
  EXPECT_EQ(count, 21);
}

struct Boom : std::runtime_error {
  Boom() : std::runtime_error("boom") {}
};

Task thrower(Engine& eng) {
  co_await eng.delay(1.0);
  throw Boom();
}

TEST(Task, UnjoinedExceptionSurfacesFromRun) {
  Engine eng;
  eng.spawn(thrower(eng));
  EXPECT_THROW(eng.run(), Boom);
}

Task join_thrower(Engine& eng, bool& caught) {
  Task t = thrower(eng);
  eng.spawn(t);
  try {
    co_await t;
  } catch (const Boom&) {
    caught = true;
  }
}

TEST(Task, JoinerReceivesException) {
  Engine eng;
  bool caught = false;
  eng.spawn(join_thrower(eng, caught));
  eng.run();
  EXPECT_TRUE(caught);
}

Task multi_join_target(Engine& eng) { co_await eng.delay(1.0); }

Task joiner(Engine& eng, Task target, int& done) {
  co_await target;
  ++done;
  EXPECT_DOUBLE_EQ(eng.now(), 1.0);
}

TEST(Task, ManyJoinersAllResume) {
  Engine eng;
  Task target = multi_join_target(eng);
  eng.spawn(target);
  int done = 0;
  for (int i = 0; i < 5; ++i) eng.spawn(joiner(eng, target, done));
  eng.run();
  EXPECT_EQ(done, 5);
}

TEST(Task, JoinAfterCompletionIsImmediate) {
  Engine eng;
  Task target = multi_join_target(eng);
  eng.spawn(target);
  eng.run();
  EXPECT_TRUE(target.done());
  int done = 0;
  eng.spawn(joiner(eng, target, done));
  eng.run();
  EXPECT_EQ(done, 1);
}

Co<int> answer(Engine& eng) {
  co_await eng.delay(0.5);
  co_return 42;
}

Task co_consumer(Engine& eng, int& out) { out = co_await answer(eng); }

TEST(Co, ReturnsValueAfterSimDelay) {
  Engine eng;
  int out = 0;
  eng.spawn(co_consumer(eng, out));
  eng.run();
  EXPECT_EQ(out, 42);
  EXPECT_DOUBLE_EQ(eng.now(), 0.5);
}

Co<void> co_thrower(Engine& eng) {
  co_await eng.delay(0.1);
  throw Boom();
}

Task co_catcher(Engine& eng, bool& caught) {
  try {
    co_await co_thrower(eng);
  } catch (const Boom&) {
    caught = true;
  }
}

TEST(Co, ExceptionPropagatesToAwaiter) {
  Engine eng;
  bool caught = false;
  eng.spawn(co_catcher(eng, caught));
  eng.run();
  EXPECT_TRUE(caught);
}

Task event_waiter(Event& evt, std::vector<double>& log, Engine& eng) {
  co_await evt.wait();
  log.push_back(eng.now());
}

Task event_trigger(Engine& eng, Event& evt, Seconds at) {
  co_await eng.delay(at);
  evt.trigger();
}

TEST(Event, WakesAllWaitersAtTriggerTime) {
  Engine eng;
  Event evt(eng);
  std::vector<double> log;
  for (int i = 0; i < 3; ++i) eng.spawn(event_waiter(evt, log, eng));
  eng.spawn(event_trigger(eng, evt, 2.5));
  eng.run();
  ASSERT_EQ(log.size(), 3u);
  for (double t : log) EXPECT_DOUBLE_EQ(t, 2.5);
}

TEST(Event, WaitAfterFireIsImmediate) {
  Engine eng;
  Event evt(eng);
  evt.trigger();
  std::vector<double> log;
  eng.spawn(event_waiter(evt, log, eng));
  eng.run();
  ASSERT_EQ(log.size(), 1u);
  EXPECT_DOUBLE_EQ(log[0], 0.0);
}

Task resource_user(Engine& eng, Resource& res, Seconds hold,
                   std::vector<double>& done_times) {
  co_await res.acquire();
  co_await eng.delay(hold);
  res.release();
  done_times.push_back(eng.now());
}

TEST(Resource, CapacityOneSerialises) {
  Engine eng;
  Resource res(eng, 1);
  std::vector<double> done;
  for (int i = 0; i < 4; ++i) eng.spawn(resource_user(eng, res, 1.0, done));
  eng.run();
  ASSERT_EQ(done.size(), 4u);
  for (int i = 0; i < 4; ++i) EXPECT_DOUBLE_EQ(done[static_cast<std::size_t>(i)], i + 1.0);
}

TEST(Resource, CapacityTwoOverlaps) {
  Engine eng;
  Resource res(eng, 2);
  std::vector<double> done;
  for (int i = 0; i < 4; ++i) eng.spawn(resource_user(eng, res, 1.0, done));
  eng.run();
  ASSERT_EQ(done.size(), 4u);
  EXPECT_DOUBLE_EQ(done[0], 1.0);
  EXPECT_DOUBLE_EQ(done[1], 1.0);
  EXPECT_DOUBLE_EQ(done[2], 2.0);
  EXPECT_DOUBLE_EQ(done[3], 2.0);
}

TEST(Resource, FifoHandOff) {
  Engine eng;
  Resource res(eng, 1);
  std::vector<double> done;
  // Spawn in a known order; completion order must match spawn order.
  std::vector<double> ids;
  for (int i = 0; i < 6; ++i) {
    eng.spawn([](Engine& e, Resource& r, std::vector<double>& out,
                 double id) -> Task {
      co_await r.acquire();
      co_await e.delay(0.5);
      out.push_back(id);
      r.release();
    }(eng, res, ids, i));
  }
  eng.run();
  ASSERT_EQ(ids.size(), 6u);
  for (int i = 0; i < 6; ++i) EXPECT_EQ(ids[static_cast<std::size_t>(i)], i);
}

Task barrier_party(Engine& eng, Barrier& bar, Seconds arrive_at,
                   std::vector<double>& times) {
  co_await eng.delay(arrive_at);
  co_await bar.arrive();
  times.push_back(eng.now());
}

TEST(Barrier, ReleasesEveryoneAtLastArrival) {
  Engine eng;
  Barrier bar(eng, 3);
  std::vector<double> times;
  eng.spawn(barrier_party(eng, bar, 1.0, times));
  eng.spawn(barrier_party(eng, bar, 2.0, times));
  eng.spawn(barrier_party(eng, bar, 5.0, times));
  eng.run();
  ASSERT_EQ(times.size(), 3u);
  for (double t : times) EXPECT_DOUBLE_EQ(t, 5.0);
  EXPECT_EQ(bar.generation(), 1u);
}

Task barrier_loop(Engine& eng, Barrier& bar, int rounds, Seconds step,
                  std::vector<double>& times) {
  for (int i = 0; i < rounds; ++i) {
    co_await eng.delay(step);
    co_await bar.arrive();
    times.push_back(eng.now());
  }
}

TEST(Barrier, IsReusableAcrossGenerations) {
  Engine eng;
  Barrier bar(eng, 2);
  std::vector<double> times;
  eng.spawn(barrier_loop(eng, bar, 3, 1.0, times));
  eng.spawn(barrier_loop(eng, bar, 3, 2.0, times));
  eng.run();
  ASSERT_EQ(times.size(), 6u);
  // Rounds complete at the slower party's pace: 2, 4, 6.
  EXPECT_DOUBLE_EQ(times[0], 2.0);
  EXPECT_DOUBLE_EQ(times[1], 2.0);
  EXPECT_DOUBLE_EQ(times[2], 4.0);
  EXPECT_DOUBLE_EQ(times[3], 4.0);
  EXPECT_DOUBLE_EQ(times[4], 6.0);
  EXPECT_DOUBLE_EQ(times[5], 6.0);
  EXPECT_EQ(bar.generation(), 3u);
}

Task pipe_user(Engine& eng, LinkModel& pipe, Bytes bytes,
               std::vector<double>& done) {
  co_await pipe.transfer(bytes);
  done.push_back(eng.now());
  (void)eng;
}

TEST(FifoPipe, SingleTransferTakesBytesOverRate) {
  Engine eng;
  FifoPipe pipe(eng, 100.0);  // 100 B/s
  std::vector<double> done;
  eng.spawn(pipe_user(eng, pipe, 250, done));
  eng.run();
  ASSERT_EQ(done.size(), 1u);
  EXPECT_DOUBLE_EQ(done[0], 2.5);
  EXPECT_EQ(pipe.bytes_moved(), 250u);
  EXPECT_EQ(pipe.transfers(), 1u);
}

TEST(FifoPipe, ConcurrentTransfersShareByQueueing) {
  Engine eng;
  FifoPipe pipe(eng, 100.0);
  std::vector<double> done;
  eng.spawn(pipe_user(eng, pipe, 100, done));
  eng.spawn(pipe_user(eng, pipe, 100, done));
  eng.run();
  ASSERT_EQ(done.size(), 2u);
  EXPECT_DOUBLE_EQ(done[0], 1.0);
  EXPECT_DOUBLE_EQ(done[1], 2.0);  // serialised: total rate preserved
}

TEST(FifoPipe, UtilisationAccounting) {
  Engine eng;
  FifoPipe pipe(eng, 100.0);
  std::vector<double> done;
  eng.spawn(pipe_user(eng, pipe, 100, done));
  eng.spawn([](Engine& e) -> Task { co_await e.delay(4.0); }(eng));
  eng.run();
  EXPECT_DOUBLE_EQ(pipe.utilisation(), 0.25);  // busy 1s of 4s
}

TEST(FifoPipe, MultiChannelOverlaps) {
  Engine eng;
  FifoPipe pipe(eng, 100.0, 0.0, 2);
  std::vector<double> done;
  eng.spawn(pipe_user(eng, pipe, 100, done));
  eng.spawn(pipe_user(eng, pipe, 100, done));
  eng.run();
  EXPECT_DOUBLE_EQ(done[0], 1.0);
  EXPECT_DOUBLE_EQ(done[1], 1.0);
}

}  // namespace
}  // namespace pfsc::sim
