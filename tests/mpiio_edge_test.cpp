// Edge-case tests for the MPI-IO File layer: misuse detection, zero-length
// operations, data-sieving window boundaries, reopen cycles, and the
// ad_plfs collective read path.
#include <gtest/gtest.h>

#include "mpi/runtime.hpp"
#include "mpiio/file.hpp"
#include "plfs/plfs.hpp"

namespace pfsc::mpiio {
namespace {

using lustre::Errno;

struct EdgeFixture : ::testing::Test {
  sim::Engine eng;
  lustre::FileSystem fs{eng, hw::tiny_test_platform(), 61};

  Hints lustre_hints() {
    Hints h;
    h.driver = Driver::ad_lustre;
    h.striping_factor = 4;
    h.striping_unit = 1_MiB;
    return h;
  }
};

TEST_F(EdgeFixture, WriteBeforeOpenIsMisuse) {
  mpi::Runtime rt(fs, 2, 4);
  File file(rt.world(), fs, "/f", lustre_hints());
  bool threw = false;
  rt.run_to_completion([&](int rank) -> sim::Task {
    if (rank == 0) {
      try {
        co_await file.write_at(0, 0, 1_MiB);
      } catch (const UsageError&) {
        threw = true;
      }
    }
    co_return;
  });
  EXPECT_TRUE(threw);
}

TEST_F(EdgeFixture, BadRankRejected) {
  mpi::Runtime rt(fs, 2, 4);
  File file(rt.world(), fs, "/f", lustre_hints());
  EXPECT_THROW(
      {
        rt.run_to_completion([&](int rank) -> sim::Task {
          co_await file.open(rank + 10, rt.client(rank));
        });
      },
      UsageError);
}

TEST_F(EdgeFixture, ZeroLengthCollectiveWriteIsFree) {
  mpi::Runtime rt(fs, 4, 4);
  File file(rt.world(), fs, "/f", lustre_hints());
  rt.run_to_completion([&](int rank) -> sim::Task {
    EXPECT_EQ(co_await file.open(rank, rt.client(rank)), Errno::ok);
    EXPECT_EQ(co_await file.write_at_all(rank, 0, 0), Errno::ok);
    EXPECT_EQ(co_await file.close(rank), Errno::ok);
  });
  EXPECT_EQ(fs.inode(file.context().ino).size, 0u);
}

TEST_F(EdgeFixture, MixedZeroAndNonZeroCollective) {
  mpi::Runtime rt(fs, 4, 4);
  File file(rt.world(), fs, "/f", lustre_hints());
  rt.run_to_completion([&](int rank) -> sim::Task {
    EXPECT_EQ(co_await file.open(rank, rt.client(rank)), Errno::ok);
    // Only even ranks contribute data.
    const Bytes len = rank % 2 == 0 ? 1_MiB : 0;
    EXPECT_EQ(co_await file.write_at_all(rank, static_cast<Bytes>(rank) * 1_MiB, len),
              Errno::ok);
    EXPECT_EQ(co_await file.close(rank), Errno::ok);
  });
  const lustre::Inode& node = fs.inode(file.context().ino);
  EXPECT_TRUE(node.written.covers(0, 1_MiB));
  EXPECT_FALSE(node.written.covers(1_MiB, 1_MiB));
  EXPECT_TRUE(node.written.covers(2_MiB, 1_MiB));
}

TEST_F(EdgeFixture, ReopenCycleWriteThenReadTwice) {
  mpi::Runtime rt(fs, 2, 4);
  File file(rt.world(), fs, "/f", lustre_hints());
  rt.run_to_completion([&](int rank) -> sim::Task {
    // Cycle 1: create + write.
    EXPECT_EQ(co_await file.open(rank, rt.client(rank), true), Errno::ok);
    EXPECT_EQ(co_await file.write_at_all(rank, static_cast<Bytes>(rank) * 1_MiB, 1_MiB),
              Errno::ok);
    EXPECT_EQ(co_await file.close(rank), Errno::ok);
    // Cycle 2: reopen + read.
    EXPECT_EQ(co_await file.open(rank, rt.client(rank), false), Errno::ok);
    EXPECT_EQ(co_await file.read_at_all(rank, static_cast<Bytes>(rank) * 1_MiB, 1_MiB),
              Errno::ok);
    EXPECT_EQ(co_await file.close(rank), Errno::ok);
    // Cycle 3: reopen + append more.
    EXPECT_EQ(co_await file.open(rank, rt.client(rank), true), Errno::ok);
    EXPECT_EQ(co_await file.write_at_all(rank, (2 + static_cast<Bytes>(rank)) * 1_MiB, 1_MiB),
              Errno::ok);
    EXPECT_EQ(co_await file.close(rank), Errno::ok);
  });
  EXPECT_TRUE(fs.inode(file.context().ino).written.covers(0, 4_MiB));
}

TEST_F(EdgeFixture, DataSievingWindowClampsAtEof) {
  mpi::Runtime rt(fs, 2, 4);
  Hints h = lustre_hints();
  h.romio_ds_read = true;
  h.ind_rd_buffer_size = 4_MiB;
  File file(rt.world(), fs, "/f", h);
  rt.run_to_completion([&](int rank) -> sim::Task {
    EXPECT_EQ(co_await file.open(rank, rt.client(rank)), Errno::ok);
    EXPECT_EQ(co_await file.write_at_all(rank, static_cast<Bytes>(rank) * 1_MiB, 1_MiB),
              Errno::ok);
    // File size is 2 MiB; a sieved read near the end must clamp its 4 MiB
    // window rather than reading past EOF.
    EXPECT_EQ(co_await file.read_at(rank, 1_MiB + 512_KiB, 256_KiB), Errno::ok);
    // Reading truly beyond EOF still fails.
    EXPECT_EQ(co_await file.read_at(rank, 3_MiB, 1_MiB), Errno::einval);
    EXPECT_EQ(co_await file.close(rank), Errno::ok);
  });
}

TEST_F(EdgeFixture, PlfsCollectiveReadGoesIndependent) {
  mpi::Runtime rt(fs, 4, 4);
  plfs::Plfs plfs(fs);
  Hints h;
  h.driver = Driver::ad_plfs;
  File writer(rt.world(), fs, "/c", h, &plfs);
  rt.run_to_completion([&](int rank) -> sim::Task {
    EXPECT_EQ(co_await writer.open(rank, rt.client(rank), true), Errno::ok);
    EXPECT_EQ(co_await writer.write_at_all(rank, static_cast<Bytes>(rank) * 1_MiB, 1_MiB),
              Errno::ok);
    EXPECT_EQ(co_await writer.close(rank), Errno::ok);
  });
  // Fresh collective handle for the read pass.
  File reader(rt.world(), fs, "/c", h, &plfs);
  rt.run_to_completion([&](int rank) -> sim::Task {
    EXPECT_EQ(co_await reader.open(rank, rt.client(rank), false), Errno::ok);
    // Cross-rank read: rank r reads rank (r+1)'s block through the merged
    // index.
    const Bytes off = static_cast<Bytes>((rank + 1) % 4) * 1_MiB;
    EXPECT_EQ(co_await reader.read_at_all(rank, off, 1_MiB), Errno::ok);
    EXPECT_EQ(co_await reader.close(rank), Errno::ok);
  });
}

TEST_F(EdgeFixture, CbNodesLimitsAggregators) {
  // With cb_nodes=1 a single aggregator serialises the drain; with one per
  // node (2 nodes) it parallelises. Both must produce identical coverage.
  auto run_with = [&](std::uint32_t cb_nodes) {
    sim::Engine e2;
    lustre::FileSystem fs2(e2, hw::tiny_test_platform(), 61);
    mpi::Runtime rt(fs2, 8, 4);
    Hints h;
    h.driver = Driver::ad_lustre;
    h.striping_factor = 4;
    h.striping_unit = 1_MiB;
    h.cb_nodes = cb_nodes;
    File file(rt.world(), fs2, "/f", h);
    rt.run_to_completion([&](int rank) -> sim::Task {
      EXPECT_EQ(co_await file.open(rank, rt.client(rank)), Errno::ok);
      for (int i = 0; i < 4; ++i) {
        const Bytes off = (static_cast<Bytes>(i) * 8 + static_cast<Bytes>(rank)) * 1_MiB;
        EXPECT_EQ(co_await file.write_at_all(rank, off, 1_MiB), Errno::ok);
      }
      EXPECT_EQ(co_await file.close(rank), Errno::ok);
    });
    EXPECT_TRUE(fs2.inode(file.context().ino).written.covers(0, 32_MiB));
    return e2.now();
  };
  const Seconds one_agg = run_with(1);
  const Seconds two_aggs = run_with(0);  // default: one per node
  EXPECT_LT(two_aggs, one_agg);
}

}  // namespace
}  // namespace pfsc::mpiio
