// Tests for the file-system health report and degraded-OST mode.
#include <gtest/gtest.h>

#include "core/fs_report.hpp"
#include "lustre/client.hpp"

namespace pfsc::core {
namespace {

using lustre::Errno;
using lustre::StripeSettings;

struct ReportFixture : ::testing::Test {
  sim::Engine eng;
  lustre::FileSystem fs{eng, hw::tiny_test_platform(), 17};

  template <typename T>
  T run(sim::Co<T> op) {
    T out{};
    eng.spawn([](sim::Co<T> op, T& out) -> sim::Task {
      out = co_await std::move(op);
    }(std::move(op), out));
    eng.run();
    return out;
  }
};

TEST_F(ReportFixture, EmptyFileSystem) {
  const auto report = collect_health_report(fs);
  EXPECT_EQ(report.files, 0u);
  EXPECT_EQ(report.ost_count, fs.params().ost_count);
  EXPECT_DOUBLE_EQ(report.occupancy.d_load, 0.0);
  EXPECT_TRUE(report.projected_load.empty());
  const std::string text = format_health_report(report);
  EXPECT_NE(text.find("files: 0"), std::string::npos);
}

TEST_F(ReportFixture, CountsFilesAndOccupancy) {
  ASSERT_TRUE(run(fs.create("/a", StripeSettings{2, 1_MiB, 0})).ok());
  ASSERT_TRUE(run(fs.create("/b", StripeSettings{4, 1_MiB, 0})).ok());
  ASSERT_TRUE(run(fs.mkdir("/d")).ok());
  ASSERT_TRUE(run(fs.create("/d/c", StripeSettings{1, 1_MiB, 7})).ok());
  fs.fail_ost(5);

  const auto report = collect_health_report(fs);
  EXPECT_EQ(report.files, 3u);
  EXPECT_EQ(report.failed_osts, 1u);
  EXPECT_DOUBLE_EQ(report.occupancy.d_req, 7.0);  // 2 + 4 + 1 stripes
  EXPECT_NEAR(report.mean_stripe_request, 7.0 / 3.0, 1e-9);
  // Top consumer is the 4-stripe file, with a reconstructed path.
  ASSERT_FALSE(report.top_consumers.empty());
  EXPECT_EQ(report.top_consumers[0].path, "/b");
  EXPECT_EQ(report.top_consumers[0].stripe_count, 4u);
  // Nested path reconstruction.
  bool found_nested = false;
  for (const auto& fp : report.top_consumers) {
    if (fp.path == "/d/c") found_nested = true;
  }
  EXPECT_TRUE(found_nested);
}

TEST_F(ReportFixture, ProjectionFollowsEq1) {
  ASSERT_TRUE(run(fs.create("/a", StripeSettings{4, 1_MiB, -1})).ok());
  const auto report = collect_health_report(fs);
  ASSERT_EQ(report.projected_load.size(), 5u);
  // One file of 4 stripes; mean request = 4. Adding one more mean-shape
  // job: Eq. 1 from D_inuse=4, D_req=4 on 8 OSTs.
  const double expected_inuse = 4.0 + 4.0 - (4.0 / 8.0) * 4.0;  // 6
  EXPECT_NEAR(report.projected_load[0], 8.0 / expected_inuse, 1e-9);
  // Load grows monotonically with more arrivals.
  for (std::size_t k = 1; k < report.projected_load.size(); ++k) {
    EXPECT_GE(report.projected_load[k], report.projected_load[k - 1]);
  }
}

TEST_F(ReportFixture, PoolsListed) {
  ASSERT_EQ(fs.pool_new("flash"), Errno::ok);
  const std::vector<lustre::OstIndex> members{0, 1};
  ASSERT_EQ(fs.pool_add("flash", members), Errno::ok);
  const auto report = collect_health_report(fs);
  ASSERT_EQ(report.pools.size(), 1u);
  EXPECT_EQ(report.pools[0].first, "flash");
  EXPECT_EQ(report.pools[0].second, 2u);
  EXPECT_NE(format_health_report(report).find("flash(2)"), std::string::npos);
}

TEST_F(ReportFixture, FormatContainsKeyNumbers) {
  ASSERT_TRUE(run(fs.create("/a", StripeSettings{2, 1_MiB, 0})).ok());
  ASSERT_TRUE(run(fs.create("/b", StripeSettings{2, 1_MiB, 0})).ok());
  const std::string text = format_health_report(collect_health_report(fs));
  EXPECT_NE(text.find("D_load 2.00"), std::string::npos);  // both on OSTs 0,1
  EXPECT_NE(text.find("Widest layouts:"), std::string::npos);
}

TEST_F(ReportFixture, DegradedOstSlowsService) {
  lustre::Client client(fs, "c");
  auto timed_write = [&](double factor) {
    sim::Engine e2;
    lustre::FileSystem fs2(e2, hw::tiny_test_platform(), 17);
    lustre::Client c2(fs2, "c");
    fs2.degrade_ost(0, factor);
    Seconds elapsed = 0.0;
    e2.spawn([](lustre::Client& c, sim::Engine& e, Seconds& out) -> sim::Task {
      auto f = co_await c.create("/f", StripeSettings{1, 1_MiB, 0});
      PFSC_ASSERT(f.ok());
      const Seconds t0 = e.now();
      PFSC_ASSERT(co_await c.write(f.value, 0, 8_MiB) == Errno::ok);
      out = e.now() - t0;
    }(c2, e2, elapsed));
    e2.run();
    return elapsed;
  };
  const Seconds healthy = timed_write(1.0);
  const Seconds degraded = timed_write(3.0);
  EXPECT_GT(degraded, healthy * 1.5);
  // Restoring the multiplier restores performance.
  const Seconds restored = timed_write(1.0);
  EXPECT_NEAR(restored, healthy, healthy * 0.01);
}

}  // namespace
}  // namespace pfsc::core
