// Tests for the asynchronous write paths: the sim::Condition primitive,
// the client page-cache write-back (write_buffered / flush), and the
// MPI-IO File collective write-behind (dirty window, flush-on-close,
// flush-before-read).
#include <gtest/gtest.h>

#include "lustre/client.hpp"
#include "mpi/runtime.hpp"
#include "mpiio/file.hpp"
#include "sim/resources.hpp"

namespace pfsc {
namespace {

using lustre::Errno;
using lustre::InodeId;

// ---------------------------------------------------------------------------
// sim::Condition
// ---------------------------------------------------------------------------

TEST(Condition, NotifyWakesAllWaitersOnce) {
  sim::Engine eng;
  sim::Condition cond(eng);
  int woken = 0;
  for (int i = 0; i < 3; ++i) {
    eng.spawn([](sim::Condition& c, int& woken) -> sim::Task {
      co_await c.wait();
      ++woken;
    }(cond, woken));
  }
  eng.spawn([](sim::Engine& e, sim::Condition& c) -> sim::Task {
    co_await e.delay(1.0);
    c.notify_all();
  }(eng, cond));
  eng.run();
  EXPECT_EQ(woken, 3);
  EXPECT_EQ(cond.waiter_count(), 0u);
}

TEST(Condition, WaitAlwaysSuspendsEvenAfterNotify) {
  sim::Engine eng;
  sim::Condition cond(eng);
  cond.notify_all();  // no latched state: this wakes nobody
  bool woken = false;
  eng.spawn([](sim::Condition& c, bool& woken) -> sim::Task {
    co_await c.wait();
    woken = true;
  }(cond, woken));
  eng.run();
  EXPECT_FALSE(woken);  // still parked: Condition does not latch
  EXPECT_EQ(cond.waiter_count(), 1u);
  cond.notify_all();
  eng.run();
  EXPECT_TRUE(woken);
}

// ---------------------------------------------------------------------------
// Client write-back.
// ---------------------------------------------------------------------------

struct WritebackFixture : ::testing::Test {
  sim::Engine eng;
  lustre::FileSystem fs{eng, hw::tiny_test_platform(), 77};
  lustre::Client client{fs, "wb"};

  InodeId make_file(const char* path) {
    InodeId out = lustre::kNoInode;
    eng.spawn([](lustre::Client& c, const char* p, InodeId& out) -> sim::Task {
      auto r = co_await c.create(p, lustre::StripeSettings{1, 1_MiB, 0});
      PFSC_ASSERT(r.ok());
      out = r.value;
    }(client, path, out));
    eng.run();
    return out;
  }
};

TEST_F(WritebackFixture, BufferedWriteReturnsBeforeDataLands) {
  const InodeId f = make_file("/f");
  Seconds accepted_at = -1.0;
  eng.spawn([](lustre::Client& c, InodeId f, Seconds& t, sim::Engine& e) -> sim::Task {
    EXPECT_EQ(co_await c.write_buffered(f, 0, 4_MiB), Errno::ok);
    t = e.now();
  }(client, f, accepted_at, eng));
  eng.run();
  EXPECT_GE(accepted_at, 0.0);
  // Acceptance was (near-)instant; the full run took real transfer time.
  EXPECT_LT(accepted_at, 0.001);
  EXPECT_GT(eng.now(), accepted_at);
  // After the engine drained, the data is durable.
  EXPECT_TRUE(fs.inode(f).written.covers(0, 4_MiB));
}

TEST_F(WritebackFixture, FlushWaitsForAllBufferedData) {
  const InodeId f = make_file("/f");
  bool covered_at_flush = false;
  eng.spawn([](lustre::Client& c, lustre::FileSystem& fs, InodeId f,
               bool& covered) -> sim::Task {
    for (int i = 0; i < 8; ++i) {
      EXPECT_EQ(co_await c.write_buffered(f, static_cast<Bytes>(i) * 1_MiB, 1_MiB),
                Errno::ok);
    }
    EXPECT_EQ(co_await c.flush(), Errno::ok);
    covered = fs.inode(f).written.covers(0, 8_MiB);
  }(client, fs, f, covered_at_flush));
  eng.run();
  EXPECT_TRUE(covered_at_flush);
}

TEST_F(WritebackFixture, AdmissionBoundedByBudget) {
  // With a 32 MiB budget (tiny platform default), queueing far more than
  // the budget must block admission: acceptance time grows past zero.
  const InodeId f = make_file("/f");
  const Bytes budget = fs.params().client_writeback_bytes;
  Seconds accepted_at = 0.0;
  eng.spawn([](lustre::Client& c, InodeId f, Bytes total, Seconds& t,
               sim::Engine& e) -> sim::Task {
    for (Bytes off = 0; off < total; off += 1_MiB) {
      EXPECT_EQ(co_await c.write_buffered(f, off, 1_MiB), Errno::ok);
    }
    t = e.now();  // when the last write was *accepted*
    EXPECT_EQ(co_await c.flush(), Errno::ok);
  }(client, f, budget * 4, accepted_at, eng));
  eng.run();
  EXPECT_GT(accepted_at, 0.0);  // admission had to wait for drains
}

TEST_F(WritebackFixture, AsyncErrorSurfacesAtFlush) {
  const InodeId f = make_file("/f");
  Errno write_err = Errno::eio;
  Errno flush_err = Errno::ok;
  fs.fail_ost(fs.inode(f).layout.osts[0]);
  eng.spawn([](lustre::Client& c, InodeId f, Errno& we, Errno& fe) -> sim::Task {
    we = co_await c.write_buffered(f, 0, 1_MiB);
    fe = co_await c.flush();
  }(client, f, write_err, flush_err));
  eng.run();
  EXPECT_EQ(write_err, Errno::ok);   // accepted into the cache
  EXPECT_EQ(flush_err, Errno::eio);  // failure surfaces at fsync
}

TEST_F(WritebackFixture, FlushIsIdempotent) {
  const InodeId f = make_file("/f");
  eng.spawn([](lustre::Client& c, InodeId f) -> sim::Task {
    EXPECT_EQ(co_await c.write_buffered(f, 0, 1_MiB), Errno::ok);
    EXPECT_EQ(co_await c.flush(), Errno::ok);
    EXPECT_EQ(co_await c.flush(), Errno::ok);  // nothing outstanding
  }(client, f));
  eng.run();
}

TEST_F(WritebackFixture, ZeroBudgetFallsBackToSynchronous) {
  auto params = hw::tiny_test_platform();
  params.client_writeback_bytes = 0;
  sim::Engine e2;
  lustre::FileSystem fs2(e2, params, 1);
  lustre::Client c2(fs2, "sync");
  Seconds accepted_at = -1.0;
  e2.spawn([](lustre::Client& c, Seconds& t, sim::Engine& e) -> sim::Task {
    auto r = co_await c.create("/f", lustre::StripeSettings{1, 1_MiB, 0});
    PFSC_ASSERT(r.ok());
    const Seconds t0 = e.now();
    EXPECT_EQ(co_await c.write_buffered(r.value, 0, 4_MiB), Errno::ok);
    t = e.now() - t0;
  }(c2, accepted_at, e2));
  e2.run();
  EXPECT_GT(accepted_at, 0.001);  // synchronous: full transfer before return
}

// ---------------------------------------------------------------------------
// MPI-IO File write-behind.
// ---------------------------------------------------------------------------

struct FileWritebackFixture : ::testing::Test {
  sim::Engine eng;
  lustre::FileSystem fs{eng, hw::tiny_test_platform(), 55};

  mpiio::Hints hints() {
    mpiio::Hints h;
    h.driver = mpiio::Driver::ad_lustre;
    h.striping_factor = 4;
    h.striping_unit = 1_MiB;
    return h;
  }
};

TEST_F(FileWritebackFixture, CloseFlushesEverything) {
  mpi::Runtime rt(fs, 4, 4);
  mpiio::File file(rt.world(), fs, "/f", hints());
  rt.run_to_completion([&](int rank) -> sim::Task {
    EXPECT_EQ(co_await file.open(rank, rt.client(rank)), Errno::ok);
    EXPECT_EQ(co_await file.write_at_all(rank, static_cast<Bytes>(rank) * 1_MiB, 1_MiB),
              Errno::ok);
    EXPECT_EQ(co_await file.close(rank), Errno::ok);
    // At close return, data must be durable (extents recorded).
    EXPECT_TRUE(fs.inode(file.context().ino).written.covers(0, 4_MiB));
  });
}

TEST_F(FileWritebackFixture, ReadAfterWriteSeesFlushedData) {
  mpi::Runtime rt(fs, 4, 4);
  mpiio::File file(rt.world(), fs, "/f", hints());
  rt.run_to_completion([&](int rank) -> sim::Task {
    EXPECT_EQ(co_await file.open(rank, rt.client(rank)), Errno::ok);
    const Bytes off = static_cast<Bytes>(rank) * 1_MiB;
    EXPECT_EQ(co_await file.write_at_all(rank, off, 1_MiB), Errno::ok);
    // Collective read right after the (buffered) collective write: the
    // flush-before-read path must make this coherent.
    EXPECT_EQ(co_await file.read_at_all(rank, off, 1_MiB), Errno::ok);
    EXPECT_EQ(co_await file.close(rank), Errno::ok);
  });
}

TEST_F(FileWritebackFixture, WriteBehindIsFasterThanSynchronous) {
  auto timed = [&](Bytes dirty_window) {
    sim::Engine e2;
    lustre::FileSystem fs2(e2, hw::tiny_test_platform(), 55);
    mpi::Runtime rt(fs2, 8, 4);
    mpiio::Hints h = hints();
    h.dirty_window = dirty_window;
    mpiio::File file(rt.world(), fs2, "/f", h);
    rt.run_to_completion([&](int rank) -> sim::Task {
      EXPECT_EQ(co_await file.open(rank, rt.client(rank)), Errno::ok);
      for (int i = 0; i < 16; ++i) {
        const Bytes off = (static_cast<Bytes>(i) * 8 + static_cast<Bytes>(rank)) * 1_MiB;
        EXPECT_EQ(co_await file.write_at_all(rank, off, 1_MiB), Errno::ok);
      }
      EXPECT_EQ(co_await file.close(rank), Errno::ok);
    });
    return e2.now();
  };
  const Seconds async_time = timed(64_MiB);
  const Seconds sync_time = timed(0);
  EXPECT_LT(async_time, sync_time);
}

}  // namespace
}  // namespace pfsc
