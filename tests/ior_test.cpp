#include <gtest/gtest.h>

#include "harness/runner.hpp"
#include "harness/scenario.hpp"
#include "ior/ior.hpp"
#include "ior/probe.hpp"
#include "plfs/plfs.hpp"

namespace pfsc::ior {
namespace {

using lustre::Errno;

Config small_config(mpiio::Driver driver) {
  Config cfg;
  cfg.block_size = 1_MiB;
  cfg.transfer_size = 256_KiB;
  cfg.segment_count = 2;
  cfg.hints.driver = driver;
  cfg.hints.striping_factor = 4;
  cfg.hints.striping_unit = 1_MiB;
  return cfg;
}

TEST(Ior, ConfigValidation) {
  sim::Engine eng;
  lustre::FileSystem fs(eng, hw::tiny_test_platform(), 1);
  mpi::Runtime rt(fs, 2, 4);
  Config bad = small_config(mpiio::Driver::ad_lustre);
  bad.transfer_size = 300'000;  // does not divide block size
  EXPECT_THROW(IorJob(rt.world(), fs, bad), UsageError);
}

TEST(Ior, WritePhaseProducesVerifiedFile) {
  sim::Engine eng;
  lustre::FileSystem fs(eng, hw::tiny_test_platform(), 5);
  mpi::Runtime rt(fs, 8, 4);
  const Result res = run_ior(rt, small_config(mpiio::Driver::ad_lustre));
  EXPECT_EQ(res.err, Errno::ok);
  EXPECT_TRUE(res.verified);
  EXPECT_EQ(res.total_bytes, 8u * 2u * 1_MiB);
  EXPECT_GT(res.write_mbps, 0.0);
  EXPECT_GT(res.write_time, 0.0);
  // The file really covers the whole extent.
  const lustre::Inode* node = fs.find("/ior.dat");
  ASSERT_NE(node, nullptr);
  EXPECT_TRUE(node->written.covers(0, res.total_bytes));
}

TEST(Ior, ReadPhaseAfterWrite) {
  sim::Engine eng;
  lustre::FileSystem fs(eng, hw::tiny_test_platform(), 5);
  mpi::Runtime rt(fs, 4, 4);
  Config cfg = small_config(mpiio::Driver::ad_lustre);
  cfg.read_file = true;
  const Result res = run_ior(rt, cfg);
  EXPECT_EQ(res.err, Errno::ok);
  EXPECT_GT(res.read_mbps, 0.0);
  EXPECT_GT(res.read_time, 0.0);
}

TEST(Ior, IndependentModeWorks) {
  sim::Engine eng;
  lustre::FileSystem fs(eng, hw::tiny_test_platform(), 5);
  mpi::Runtime rt(fs, 4, 4);
  Config cfg = small_config(mpiio::Driver::ad_lustre);
  cfg.use_collective = false;
  const Result res = run_ior(rt, cfg);
  EXPECT_EQ(res.err, Errno::ok);
  EXPECT_TRUE(res.verified);
}

TEST(Ior, PlfsDriverEndToEnd) {
  sim::Engine eng;
  lustre::FileSystem fs(eng, hw::tiny_test_platform(), 5);
  mpi::Runtime rt(fs, 8, 4);
  plfs::Plfs plfs(fs);
  Config cfg = small_config(mpiio::Driver::ad_plfs);
  const Result res = run_ior(rt, cfg, &plfs);
  EXPECT_EQ(res.err, Errno::ok);
  EXPECT_TRUE(res.verified);
  // PLFS created one data file per rank.
  EXPECT_EQ(plfs.backend_data_files("/ior.dat").size(), 8u);
}

TEST(Ior, MoreStripesIsFasterOnQuietSystem) {
  // The Figure 1 effect in miniature: stripe count 1 vs 8 on the tiny
  // platform (8 OSTs).
  auto bw = [](std::uint32_t stripes) {
    sim::Engine eng;
    lustre::FileSystem fs(eng, hw::tiny_test_platform(), 5);
    mpi::Runtime rt(fs, 8, 4);
    Config cfg = small_config(mpiio::Driver::ad_lustre);
    cfg.block_size = 4_MiB;
    cfg.transfer_size = 1_MiB;
    cfg.segment_count = 8;
    cfg.hints.striping_factor = stripes;
    const Result res = run_ior(rt, cfg);
    PFSC_ASSERT(res.err == Errno::ok);
    return res.write_mbps;
  };
  const double bw1 = bw(1);
  const double bw8 = bw(8);
  EXPECT_GT(bw8, bw1 * 1.5);
}

TEST(Probe, SingleWriterBaseline) {
  harness::Scenario spec;
  spec.workload = harness::Workload::probe;
  spec.platform = hw::tiny_test_platform();
  spec.writers = 1;
  spec.bytes_per_writer = 16_MiB;
  const auto res = harness::run_scenario(spec, 3).probe;
  ASSERT_EQ(res.per_process_mbps.size(), 1u);
  EXPECT_GT(res.mean_mbps, 0.0);
}

TEST(Probe, ContentionDegradesPerProcessBandwidth) {
  auto mean_bw = [](std::uint32_t writers) {
    harness::Scenario spec;
    spec.workload = harness::Workload::probe;
    spec.platform = hw::tiny_test_platform();
    spec.writers = writers;
    spec.bytes_per_writer = 64_MiB;  // long enough to reach steady state
    return harness::run_scenario(spec, 3).probe.mean_mbps;
  };
  const double bw1 = mean_bw(1);
  const double bw4 = mean_bw(4);
  // Sharing one OST among 4 writers must cost more than 4x per process
  // (ideal 1/n plus seek thrash).
  EXPECT_LT(bw4, bw1 / 4.0 * 1.05);
  EXPECT_GT(bw4, 0.0);
}

TEST(Harness, MultiJobRunsAllJobs) {
  harness::Scenario spec;
  spec.workload = harness::Workload::multi;
  spec.platform = hw::tiny_test_platform();
  spec.jobs = 2;
  spec.nprocs = 4;
  spec.procs_per_node = 4;
  spec.ior = small_config(mpiio::Driver::ad_lustre);
  const auto res = harness::run_scenario(spec, 11);
  ASSERT_EQ(res.per_job.size(), 2u);
  for (const auto& job : res.per_job) {
    EXPECT_EQ(job.err, Errno::ok);
    EXPECT_TRUE(job.verified);
    EXPECT_GT(job.write_mbps, 0.0);
  }
  EXPECT_NEAR(res.total_mbps, res.per_job[0].write_mbps + res.per_job[1].write_mbps,
              1e-9);
  // Census: two files, each with 4 stripes.
  EXPECT_DOUBLE_EQ(res.contention.d_req, 8.0);
  EXPECT_GE(res.contention.d_inuse, 4.0);
  EXPECT_LE(res.contention.d_inuse, 8.0);
}

TEST(Harness, ContendedJobsSlowerThanSolo) {
  ior::Config cfg = small_config(mpiio::Driver::ad_lustre);
  cfg.block_size = 4_MiB;
  cfg.transfer_size = 1_MiB;
  cfg.segment_count = 4;
  cfg.hints.striping_factor = 8;  // all OSTs of the tiny platform

  harness::Scenario solo;
  solo.platform = hw::tiny_test_platform();
  solo.nprocs = 4;
  solo.procs_per_node = 4;
  solo.ior = cfg;
  const double solo_bw = harness::run_scenario(solo, 13).ior.write_mbps;

  harness::Scenario multi;
  multi.workload = harness::Workload::multi;
  multi.platform = hw::tiny_test_platform();
  multi.jobs = 3;
  multi.nprocs = 4;
  multi.procs_per_node = 4;
  multi.ior = cfg;
  const auto res = harness::run_scenario(multi, 13);
  for (const auto& job : res.per_job) {
    EXPECT_LT(job.write_mbps, solo_bw);
  }
}

TEST(Harness, RunnerComputesCi) {
  harness::Scenario spec;
  spec.workload = harness::Workload::probe;
  spec.platform = hw::tiny_test_platform();
  spec.writers = 2;
  spec.bytes_per_writer = 8_MiB;
  harness::RunPlan plan;
  plan.repetitions(5).base_seed(17);
  const auto set = harness::ParallelRunner(1).run(spec, plan);
  ASSERT_EQ(set.size(), 1u);
  const auto& pt = set.point(0);
  EXPECT_EQ(pt.samples.size(), 5u);
  EXPECT_GE(pt.ci.upper, pt.ci.mean);
  EXPECT_LE(pt.ci.lower, pt.ci.mean);
}

TEST(Harness, PlfsRunReportsBackendCensus) {
  harness::Scenario spec;
  spec.workload = harness::Workload::plfs;
  spec.platform = hw::tiny_test_platform();
  spec.nprocs = 8;
  spec.procs_per_node = 4;
  spec.ior = small_config(mpiio::Driver::ad_plfs);
  const auto res = harness::run_scenario(spec, 19);
  EXPECT_EQ(res.ior.err, Errno::ok);
  // 8 data files x 2 stripes = 16 stripe placements.
  EXPECT_DOUBLE_EQ(res.contention.d_req, 16.0);
  EXPECT_GT(res.contention.d_load, 1.0);  // 16 stripes on 8 OSTs must collide
}

}  // namespace
}  // namespace pfsc::ior
