// Unit tests for the per-OSS request schedulers (lustre::sched): policy
// semantics driven directly through an engine, the make_scheduler factory,
// byte accounting, and the end-to-end path through FileSystem/Client
// (including the telemetry probe pack).
#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "lustre/client.hpp"
#include "lustre/sched/fifo.hpp"
#include "lustre/sched/job_fair.hpp"
#include "lustre/sched/scheduler.hpp"
#include "lustre/sched/token_bucket.hpp"
#include "support/stats.hpp"
#include "trace/telemetry.hpp"

namespace pfsc::lustre::sched {
namespace {

/// One request through a scheduler: admit, hold a service slot for
/// `service` seconds, complete. Appends its tag to `order` at grant time.
sim::Task request(sim::Engine& eng, Scheduler& s, JobId job, Bytes bytes,
                  Seconds service, std::vector<int>& order, int tag) {
  co_await s.admit(job, bytes);
  order.push_back(tag);
  if (service > 0.0) co_await eng.delay(service);
  s.complete(job, bytes);
}

/// Runs `check` at t=0 AFTER every earlier-spawned task has started
/// (same-timestamp events dispatch in schedule order), so tests can
/// observe the instantaneous grant state without advancing time.
sim::Task at_time_zero(std::function<void()> check) {
  check();
  co_return;
}

TEST(SchedFactory, BuildsEveryPolicyAndNamesThem) {
  sim::Engine eng;
  for (const SchedPolicy p : {SchedPolicy::fifo, SchedPolicy::job_fair,
                              SchedPolicy::token_bucket}) {
    const auto s = make_scheduler(eng, p);
    EXPECT_EQ(s->policy(), p);
    EXPECT_NO_THROW(s->check_invariants());
  }
  EXPECT_STREQ(sched_policy_name(SchedPolicy::fifo), "fifo");
  EXPECT_STREQ(sched_policy_name(SchedPolicy::job_fair), "job_fair");
  EXPECT_STREQ(sched_policy_name(SchedPolicy::token_bucket), "token_bucket");
}

TEST(SchedFactory, RejectsBadTuning) {
  sim::Engine eng;
  SchedTuning bad;
  bad.quantum = 0;
  EXPECT_THROW(make_scheduler(eng, SchedPolicy::job_fair, bad), UsageError);
  bad = SchedTuning{};
  bad.service_slots = 0;
  EXPECT_THROW(make_scheduler(eng, SchedPolicy::job_fair, bad), UsageError);
  bad = SchedTuning{};
  bad.job_rate = 0.0;
  EXPECT_THROW(make_scheduler(eng, SchedPolicy::token_bucket, bad), UsageError);
  bad = SchedTuning{};
  bad.bucket_depth = 0;
  EXPECT_THROW(make_scheduler(eng, SchedPolicy::token_bucket, bad), UsageError);
  // FIFO has no tuning constraints: the degenerate tuning is fine.
  bad.quantum = 0;
  EXPECT_NO_THROW(make_scheduler(eng, SchedPolicy::fifo, bad));
}

TEST(SchedAccounting, CompleteWithoutAdmitThrows) {
  sim::Engine eng;
  FifoSched s(eng, SchedTuning{});
  EXPECT_THROW(s.complete(0, 100), SimulationError);
}

TEST(SchedAccounting, JainIndex) {
  EXPECT_DOUBLE_EQ(jain_index({}), 1.0);
  const std::vector<double> equal{5.0, 5.0, 5.0, 5.0};
  EXPECT_DOUBLE_EQ(jain_index(equal), 1.0);
  const std::vector<double> one_hog{1.0, 0.0, 0.0, 0.0};
  EXPECT_DOUBLE_EQ(jain_index(one_hog), 0.25);
  const std::vector<double> skew{3.0, 1.0};
  EXPECT_DOUBLE_EQ(jain_index(skew), 16.0 / 20.0);
}

TEST(FifoSched, GrantsInstantlyInArrivalOrder) {
  sim::Engine eng;
  FifoSched s(eng, SchedTuning{});
  std::vector<int> order;
  // All submitted at t=0; service 1ms each, far more than any slot cap —
  // fifo must not queue anything.
  for (int i = 0; i < 8; ++i) {
    eng.spawn(request(eng, s, /*job=*/static_cast<JobId>(i % 2), 1_MiB, 1.0e-3,
                      order, i));
  }
  eng.spawn(at_time_zero([&s] {
    EXPECT_EQ(s.in_service(), 8u);  // every admit granted synchronously
    EXPECT_EQ(s.queue_depth(), 0u);
  }));
  eng.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4, 5, 6, 7}));
  EXPECT_EQ(s.submitted_bytes(), 8 * 1_MiB);
  EXPECT_EQ(s.admitted_bytes(), 8 * 1_MiB);
  EXPECT_EQ(s.served_bytes(), 8 * 1_MiB);
  EXPECT_EQ(s.served_bytes(0), 4 * 1_MiB);
  EXPECT_EQ(s.served_bytes(1), 4 * 1_MiB);
  EXPECT_EQ(s.served_bytes(99), 0u);
  EXPECT_DOUBLE_EQ(s.jain(), 1.0);
  EXPECT_NO_THROW(s.check_invariants());
}

TEST(JobFairSched, EqualisesBytesAcrossUnequalJobs) {
  sim::Engine eng;
  SchedTuning t;
  t.quantum = 1_MiB;
  t.service_slots = 1;
  JobFairSched s(eng, t);
  std::vector<int> order;
  // Job 0 floods 12 requests, job 1 submits 4; equal service times.
  for (int i = 0; i < 12; ++i) {
    eng.spawn(request(eng, s, 0, 1_MiB, 1.0e-3, order, 0));
  }
  for (int i = 0; i < 4; ++i) {
    eng.spawn(request(eng, s, 1, 1_MiB, 1.0e-3, order, 1));
  }
  eng.run();
  ASSERT_EQ(order.size(), 16u);
  // While both jobs are backlogged, equal request sizes mean equal byte
  // shares, so the grant counts can never drift more than a quantum's
  // worth (2 grants) apart; job 0 drains the rest after job 1 finishes.
  int c0 = 0;
  int c1 = 0;
  for (const int tag : order) {
    tag == 0 ? ++c0 : ++c1;
    if (c0 < 12 && c1 < 4) {
      EXPECT_LE(c0 > c1 ? c0 - c1 : c1 - c0, 2)
          << "after " << (c0 + c1) << " grants";
    }
  }
  EXPECT_EQ(s.served_bytes(0), 12 * 1_MiB);
  EXPECT_EQ(s.served_bytes(1), 4 * 1_MiB);
  EXPECT_EQ(s.queue_depth(), 0u);
  EXPECT_EQ(s.in_service(), 0u);
  EXPECT_EQ(s.backlogged_jobs(), 0u);
  EXPECT_NO_THROW(s.check_invariants());
}

TEST(JobFairSched, DeficitCoversUnequalRequestSizes) {
  sim::Engine eng;
  SchedTuning t;
  t.quantum = 4_MiB;
  t.service_slots = 1;
  JobFairSched s(eng, t);
  std::vector<int> order;
  // Job 0 sends 4 MiB requests, job 1 sends 1 MiB requests: per DRR the
  // byte shares equalise, so job 1 gets ~4 grants per job-0 grant.
  for (int i = 0; i < 4; ++i) eng.spawn(request(eng, s, 0, 4_MiB, 1.0e-3, order, 0));
  for (int i = 0; i < 16; ++i) eng.spawn(request(eng, s, 1, 1_MiB, 1.0e-3, order, 1));
  eng.run();
  ASSERT_EQ(order.size(), 20u);
  // Over the backlogged prefix (both jobs pending: first 16 grants cover
  // 3 job-0 and 12 job-1 on a byte-fair split), the byte gap between the
  // jobs can never exceed quantum + one max request.
  Bytes job0 = 0;
  Bytes job1 = 0;
  int seen0 = 0;
  int seen1 = 0;
  for (const int tag : order) {
    if (tag == 0) { job0 += 4_MiB; ++seen0; } else { job1 += 1_MiB; ++seen1; }
    if (seen0 < 4 && seen1 < 16) {
      const Bytes gap = job0 > job1 ? job0 - job1 : job1 - job0;
      EXPECT_LE(gap, t.quantum + 4_MiB);
    }
  }
  EXPECT_EQ(job0, 16_MiB);
  EXPECT_EQ(job1, 16_MiB);
}

std::uint64_t run_uncontended(SchedPolicy policy) {
  sim::Engine eng;
  SchedTuning t;
  t.service_slots = 8;
  const auto s = make_scheduler(eng, policy, t);
  std::vector<int> order;
  for (int i = 0; i < 4; ++i) {
    eng.spawn(request(eng, *s, static_cast<JobId>(i), 1_MiB, 0.0, order, i));
  }
  eng.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
  EXPECT_EQ(s->served_bytes(), 4_MiB);
  return eng.executed_events();
}

TEST(JobFairSched, FastPathGrantsWithoutBacklog) {
  // Uncontended admits grant synchronously: the whole run costs exactly as
  // many engine events as the zero-overhead FIFO baseline.
  EXPECT_EQ(run_uncontended(SchedPolicy::job_fair),
            run_uncontended(SchedPolicy::fifo));
}

TEST(JobFairSched, SlotCapHoldsAndBacklogDrainsOnComplete) {
  sim::Engine eng;
  SchedTuning t;
  t.service_slots = 2;
  JobFairSched s(eng, t);
  std::vector<int> order;
  for (int i = 0; i < 6; ++i) {
    eng.spawn(request(eng, s, 0, 1_MiB, 1.0e-3, order, i));
  }
  eng.spawn(at_time_zero([&s] {
    EXPECT_EQ(s.in_service(), 2u);
    EXPECT_EQ(s.queue_depth(), 4u);
    EXPECT_NO_THROW(s.check_invariants());
  }));
  eng.run();
  EXPECT_EQ(order.size(), 6u);
  EXPECT_EQ(s.served_bytes(), 6_MiB);
  EXPECT_EQ(s.in_service(), 0u);
}

TEST(TokenBucketSched, BurstThenSustainedRate) {
  sim::Engine eng;
  SchedTuning t;
  t.job_rate = mb_per_sec(100.0);  // 1e8 B/s
  t.bucket_depth = 4_MiB;
  TokenBucketSched s(eng, t);
  std::vector<int> order;
  // 12 MiB of demand against a 4 MiB bucket at 100 MB/s: the first 4 MiB
  // burst grants at t=0, the rest is paced at the refill rate.
  for (int i = 0; i < 12; ++i) {
    eng.spawn(request(eng, s, 0, 1_MiB, 0.0, order, i));
  }
  eng.spawn(at_time_zero([&order] {
    EXPECT_EQ(order.size(), 4u);  // burst allowance
  }));
  eng.run();
  EXPECT_EQ(order.size(), 12u);
  EXPECT_EQ(s.served_bytes(), 12_MiB);
  // 8 MiB of debt at 1e8 B/s: the drain takes ~0.084s.
  const double expect = 8.0 * 1024.0 * 1024.0 / 1.0e8;
  EXPECT_NEAR(eng.now(), expect, 1.0e-3);
  EXPECT_NO_THROW(s.check_invariants());
}

TEST(TokenBucketSched, OversizedRequestGrantsViaDebt) {
  sim::Engine eng;
  SchedTuning t;
  t.job_rate = mb_per_sec(100.0);
  t.bucket_depth = 2_MiB;
  TokenBucketSched s(eng, t);
  std::vector<int> order;
  // 8 MiB > depth: needs only a full bucket, then drives tokens to -6 MiB.
  eng.spawn(request(eng, s, 0, 8_MiB, 0.0, order, 0));
  // The next 1 MiB request must wait for the debt plus its own need.
  eng.spawn(request(eng, s, 0, 1_MiB, 0.0, order, 1));
  eng.spawn(at_time_zero([&] {
    EXPECT_EQ(order, (std::vector<int>{0}));
    EXPECT_LT(s.tokens(0), 0.0);
  }));
  eng.run();
  EXPECT_EQ(order.size(), 2u);
  const double expect = 7.0 * 1024.0 * 1024.0 / 1.0e8;  // -6 MiB -> +1 MiB
  EXPECT_NEAR(eng.now(), expect, 1.0e-3);
}

TEST(TokenBucketSched, JobsAreIndependent) {
  sim::Engine eng;
  SchedTuning t;
  t.job_rate = mb_per_sec(100.0);
  t.bucket_depth = 1_MiB;
  TokenBucketSched s(eng, t);
  std::vector<int> order;
  // Job 0 exhausts its bucket; job 1's first request still grants at once.
  eng.spawn(request(eng, s, 0, 1_MiB, 0.0, order, 0));
  eng.spawn(request(eng, s, 0, 1_MiB, 0.0, order, 0));
  eng.spawn(request(eng, s, 1, 1_MiB, 0.0, order, 1));
  eng.spawn(at_time_zero([&order] {
    EXPECT_EQ(order, (std::vector<int>{0, 1}));
  }));
  eng.run();
  EXPECT_EQ(s.served_bytes(0), 2_MiB);
  EXPECT_EQ(s.served_bytes(1), 1_MiB);
  EXPECT_DOUBLE_EQ(s.tokens(2), static_cast<double>(t.bucket_depth));
}

TEST(TokenBucketSched, FifoWithinOneJob) {
  sim::Engine eng;
  SchedTuning t;
  t.job_rate = mb_per_sec(100.0);
  t.bucket_depth = 4_MiB;
  TokenBucketSched s(eng, t);
  std::vector<int> order;
  eng.spawn(request(eng, s, 0, 4_MiB, 0.0, order, 0));  // drains the bucket
  eng.spawn(request(eng, s, 0, 4_MiB, 0.0, order, 1));  // queues
  eng.spawn(request(eng, s, 0, 1_MiB, 0.0, order, 2));  // must NOT overtake
  eng.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

// -- end-to-end: the scheduler inside FileSystem/Client -------------------

sim::Task write_file(lustre::Client& client, std::string path, Bytes bytes) {
  lustre::StripeSettings settings;
  settings.stripe_count = 1;
  auto file = co_await client.create(std::move(path), settings);
  PFSC_ASSERT(file.ok());
  const auto err = co_await client.write(file.value, 0, bytes);
  EXPECT_EQ(err, lustre::Errno::ok);
}

void run_two_job_write(SchedPolicy policy) {
  sim::Engine eng;
  hw::PlatformParams params = hw::tiny_test_platform();
  params.oss_sched_policy = policy;
  params.oss_sched.job_rate = mb_per_sec(50.0);
  lustre::FileSystem fs(eng, params, /*seed=*/7);

  lustre::Client a(fs, "a");
  lustre::Client b(fs, "b");
  a.set_job(0);
  b.set_job(1);
  EXPECT_EQ(a.job(), 0u);
  EXPECT_EQ(b.job(), 1u);

  trace::Sampler sampler(eng, 1.0e-3, /*max_ticks=*/200);
  const std::size_t first = sampler.add_sched_probe(fs, {0, 1});
  sampler.start();

  eng.spawn(write_file(a, "/a.dat", 8_MiB));
  eng.spawn(write_file(b, "/b.dat", 8_MiB));
  eng.run();

  // Work conservation through the real data path: every written byte went
  // admit -> link -> disk -> complete on some OSS scheduler.
  Bytes served = 0;
  for (const auto& [job, bytes] : fs.sched_served_by_job()) served += bytes;
  EXPECT_EQ(served, 16_MiB);
  EXPECT_EQ(fs.sched_served_by_job().at(0), 8_MiB);
  EXPECT_EQ(fs.sched_served_by_job().at(1), 8_MiB);
  EXPECT_EQ(fs.sched_queue_depth(), 0u);
  EXPECT_EQ(fs.sched_in_service(), 0u);
  EXPECT_DOUBLE_EQ(fs.sched_jain(), 1.0);
  for (std::uint32_t oss = 0; oss < params.oss_count; ++oss) {
    EXPECT_NO_THROW(fs.oss_sched(oss).check_invariants());
    EXPECT_EQ(fs.oss_sched(oss).policy(), policy);
  }

  // The probe pack registered queue/inflight/jain plus one series per job.
  const auto& series = sampler.series();
  ASSERT_GE(series.size(), first + 5);
  EXPECT_EQ(series[first].name, "sched_queue");
  EXPECT_EQ(series[first + 1].name, "sched_inflight");
  EXPECT_EQ(series[first + 2].name, "sched_jain");
  EXPECT_EQ(series[first + 3].name, "job0_bytes");
  EXPECT_EQ(series[first + 4].name, "job1_bytes");
  EXPECT_DOUBLE_EQ(series[first + 3].value.back(), 8.0 * 1024.0 * 1024.0);
}

TEST(SchedEndToEnd, FifoThroughFileSystem) { run_two_job_write(SchedPolicy::fifo); }
TEST(SchedEndToEnd, JobFairThroughFileSystem) {
  run_two_job_write(SchedPolicy::job_fair);
}
TEST(SchedEndToEnd, TokenBucketThroughFileSystem) {
  run_two_job_write(SchedPolicy::token_bucket);
}

TEST(SchedEndToEnd, SchedForOstMapsLikeOssPipes) {
  sim::Engine eng;
  lustre::FileSystem fs(eng, hw::tiny_test_platform(), /*seed=*/1);
  const auto& p = fs.params();
  for (OstIndex ost = 0; ost < p.ost_count; ++ost) {
    EXPECT_EQ(&fs.sched_for_ost(ost), &fs.oss_sched(ost % p.oss_count));
  }
  EXPECT_THROW(fs.sched_for_ost(p.ost_count), UsageError);
  EXPECT_THROW(fs.oss_sched(p.oss_count), UsageError);
}

}  // namespace
}  // namespace pfsc::lustre::sched
