#include <gtest/gtest.h>

#include "mpi/runtime.hpp"
#include "mpiio/file.hpp"

namespace pfsc::mpiio {
namespace {

using lustre::Errno;

struct FileFixture : ::testing::Test {
  sim::Engine eng;
  lustre::FileSystem fs{eng, hw::tiny_test_platform(), 21};

  Hints lustre_hints(std::uint32_t stripes, Bytes stripe_size) {
    Hints h;
    h.driver = Driver::ad_lustre;
    h.striping_factor = stripes;
    h.striping_unit = stripe_size;
    return h;
  }
};

TEST_F(FileFixture, AdLustreAppliesHintsAtCreate) {
  mpi::Runtime rt(fs, 4, 4);
  File file(rt.world(), fs, "/f", lustre_hints(4, 2_MiB));
  std::vector<Errno> errs(4, Errno::eio);
  rt.run_to_completion([&](int rank) -> sim::Task {
    errs[static_cast<std::size_t>(rank)] =
        co_await file.open(rank, rt.client(rank));
  });
  for (auto e : errs) EXPECT_EQ(e, Errno::ok);
  const lustre::Inode& node = fs.inode(file.context().ino);
  EXPECT_EQ(node.layout.stripe_count(), 4u);
  EXPECT_EQ(node.layout.stripe_size, 2_MiB);
}

TEST_F(FileFixture, AdUfsIgnoresHints) {
  mpi::Runtime rt(fs, 4, 4);
  Hints h = lustre_hints(4, 2_MiB);
  h.driver = Driver::ad_ufs;
  File file(rt.world(), fs, "/f", h);
  rt.run_to_completion([&](int rank) -> sim::Task {
    EXPECT_EQ(co_await file.open(rank, rt.client(rank)), Errno::ok);
  });
  const lustre::Inode& node = fs.inode(file.context().ino);
  EXPECT_EQ(node.layout.stripe_count(), fs.params().default_stripe_count);
  EXPECT_EQ(node.layout.stripe_size, fs.params().default_stripe_size);
}

TEST_F(FileFixture, CollectiveWriteCoversExtentExactly) {
  mpi::Runtime rt(fs, 8, 4);
  File file(rt.world(), fs, "/f", lustre_hints(4, 1_MiB));
  rt.run_to_completion([&](int rank) -> sim::Task {
    EXPECT_EQ(co_await file.open(rank, rt.client(rank)), Errno::ok);
    // Each rank writes 1 MiB at rank-strided offsets, twice.
    for (int round = 0; round < 2; ++round) {
      const Bytes off = (static_cast<Bytes>(round) * 8 + static_cast<Bytes>(rank)) * 1_MiB;
      EXPECT_EQ(co_await file.write_at_all(rank, off, 1_MiB), Errno::ok);
    }
    EXPECT_EQ(co_await file.close(rank), Errno::ok);
  });
  const lustre::Inode& node = fs.inode(file.context().ino);
  EXPECT_EQ(node.size, 16_MiB);
  EXPECT_TRUE(node.written.covers(0, 16_MiB));
  EXPECT_EQ(node.written.total_bytes(), 16_MiB);
}

TEST_F(FileFixture, CollectiveWriteWithHolesRecordsOnlyData) {
  mpi::Runtime rt(fs, 4, 4);
  File file(rt.world(), fs, "/f", lustre_hints(2, 1_MiB));
  rt.run_to_completion([&](int rank) -> sim::Task {
    EXPECT_EQ(co_await file.open(rank, rt.client(rank)), Errno::ok);
    // 1 MiB of data every 4 MiB: 3/4 of the extent is holes.
    const Bytes off = static_cast<Bytes>(rank) * 4_MiB;
    EXPECT_EQ(co_await file.write_at_all(rank, off, 1_MiB), Errno::ok);
    EXPECT_EQ(co_await file.close(rank), Errno::ok);
  });
  const lustre::Inode& node = fs.inode(file.context().ino);
  EXPECT_EQ(node.written.total_bytes(), 4u * 1_MiB);
  EXPECT_TRUE(node.written.covers(0, 1_MiB));
  EXPECT_FALSE(node.written.covers(1_MiB, 1_MiB));
  EXPECT_TRUE(node.written.covers(12_MiB, 1_MiB));
  EXPECT_EQ(node.size, 13_MiB);
}

TEST_F(FileFixture, IndependentWritesBypassAggregation) {
  mpi::Runtime rt(fs, 4, 4);
  File file(rt.world(), fs, "/f", lustre_hints(2, 1_MiB));
  rt.run_to_completion([&](int rank) -> sim::Task {
    EXPECT_EQ(co_await file.open(rank, rt.client(rank)), Errno::ok);
    EXPECT_EQ(co_await file.write_at(rank, static_cast<Bytes>(rank) * 1_MiB, 1_MiB),
              Errno::ok);
    EXPECT_EQ(co_await file.close(rank), Errno::ok);
  });
  EXPECT_TRUE(fs.inode(file.context().ino).written.covers(0, 4_MiB));
}

TEST_F(FileFixture, CollectiveBufferingDisabledFallsBackToIndependent) {
  mpi::Runtime rt(fs, 4, 4);
  Hints h = lustre_hints(2, 1_MiB);
  h.romio_cb_write = false;
  File file(rt.world(), fs, "/f", h);
  rt.run_to_completion([&](int rank) -> sim::Task {
    EXPECT_EQ(co_await file.open(rank, rt.client(rank)), Errno::ok);
    EXPECT_EQ(co_await file.write_at_all(rank, static_cast<Bytes>(rank) * 1_MiB, 1_MiB),
              Errno::ok);
    EXPECT_EQ(co_await file.close(rank), Errno::ok);
  });
  EXPECT_TRUE(fs.inode(file.context().ino).written.covers(0, 4_MiB));
}

TEST_F(FileFixture, CollectiveReadAfterWrite) {
  mpi::Runtime rt(fs, 4, 4);
  File file(rt.world(), fs, "/f", lustre_hints(2, 1_MiB));
  rt.run_to_completion([&](int rank) -> sim::Task {
    EXPECT_EQ(co_await file.open(rank, rt.client(rank)), Errno::ok);
    const Bytes off = static_cast<Bytes>(rank) * 1_MiB;
    EXPECT_EQ(co_await file.write_at_all(rank, off, 1_MiB), Errno::ok);
    EXPECT_EQ(co_await file.read_at_all(rank, off, 1_MiB), Errno::ok);
    EXPECT_EQ(co_await file.close(rank), Errno::ok);
  });
}

TEST_F(FileFixture, IndependentReadBeyondEofFails) {
  mpi::Runtime rt(fs, 2, 4);
  File file(rt.world(), fs, "/f", lustre_hints(1, 1_MiB));
  std::vector<Errno> read_errs(2, Errno::ok);
  rt.run_to_completion([&](int rank) -> sim::Task {
    EXPECT_EQ(co_await file.open(rank, rt.client(rank)), Errno::ok);
    EXPECT_EQ(co_await file.write_at_all(rank, static_cast<Bytes>(rank) * 1_MiB, 1_MiB),
              Errno::ok);
    read_errs[static_cast<std::size_t>(rank)] =
        co_await file.read_at(rank, 10_MiB, 1_MiB);
    EXPECT_EQ(co_await file.close(rank), Errno::ok);
  });
  for (auto e : read_errs) EXPECT_EQ(e, Errno::einval);
}

TEST_F(FileFixture, WriteToFailedOstPropagatesEio) {
  // With write-behind the write itself is only "accepted"; the EIO surfaces
  // at the flush point (close), exactly like asynchronous I/O on a real
  // client.
  mpi::Runtime rt(fs, 4, 4);
  File file(rt.world(), fs, "/f", lustre_hints(2, 1_MiB));
  std::vector<Errno> close_errs(4, Errno::ok);
  rt.run_to_completion([&](int rank) -> sim::Task {
    EXPECT_EQ(co_await file.open(rank, rt.client(rank)), Errno::ok);
    if (rank == 0) {
      // Fail one of the file's OSTs between open and write.
      fs.fail_ost(fs.inode(file.context().ino).layout.osts[0]);
    }
    co_await rt.world().barrier(rank);
    co_await file.write_at_all(rank, static_cast<Bytes>(rank) * 1_MiB, 1_MiB);
    close_errs[static_cast<std::size_t>(rank)] = co_await file.close(rank);
  });
  // Every rank sees the failure by close time.
  for (auto e : close_errs) EXPECT_EQ(e, Errno::eio);
}

TEST_F(FileFixture, SynchronousModeSurfacesEioAtWrite) {
  mpi::Runtime rt(fs, 4, 4);
  Hints h = lustre_hints(2, 1_MiB);
  h.dirty_window = 0;  // disable write-behind
  File file(rt.world(), fs, "/f", h);
  std::vector<Errno> errs(4, Errno::ok);
  rt.run_to_completion([&](int rank) -> sim::Task {
    EXPECT_EQ(co_await file.open(rank, rt.client(rank)), Errno::ok);
    if (rank == 0) {
      fs.fail_ost(fs.inode(file.context().ino).layout.osts[0]);
    }
    co_await rt.world().barrier(rank);
    errs[static_cast<std::size_t>(rank)] =
        co_await file.write_at_all(rank, static_cast<Bytes>(rank) * 1_MiB, 1_MiB);
  });
  for (auto e : errs) EXPECT_EQ(e, Errno::eio);
}

TEST_F(FileFixture, LargeStripesRouteThroughFewAggregatorWrites) {
  // With 4 nodes and stripe-aligned domains, each aggregator should write
  // its own region; check data lands on the right OSTs via disk counters.
  mpi::Runtime rt(fs, 8, 2);  // 4 nodes -> 4 aggregators
  File file(rt.world(), fs, "/f", lustre_hints(4, 1_MiB));
  rt.run_to_completion([&](int rank) -> sim::Task {
    EXPECT_EQ(co_await file.open(rank, rt.client(rank)), Errno::ok);
    EXPECT_EQ(co_await file.write_at_all(rank, static_cast<Bytes>(rank) * 1_MiB, 1_MiB),
              Errno::ok);
    EXPECT_EQ(co_await file.close(rank), Errno::ok);
  });
  Bytes total = 0;
  for (lustre::OstIndex ost = 0; ost < fs.params().ost_count; ++ost) {
    total += fs.ost_disk(ost).bytes_serviced();
  }
  EXPECT_EQ(total, 8u * 1_MiB);
}

TEST_F(FileFixture, OpenOfMissingFileWithoutCreateFails) {
  mpi::Runtime rt(fs, 2, 4);
  File file(rt.world(), fs, "/missing", lustre_hints(1, 1_MiB));
  std::vector<Errno> errs(2, Errno::ok);
  rt.run_to_completion([&](int rank) -> sim::Task {
    errs[static_cast<std::size_t>(rank)] =
        co_await file.open(rank, rt.client(rank), /*create=*/false);
  });
  for (auto e : errs) EXPECT_EQ(e, Errno::enoent);
}

}  // namespace
}  // namespace pfsc::mpiio
