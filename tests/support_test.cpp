#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <vector>

#include "support/rng.hpp"
#include "support/stats.hpp"
#include "support/table.hpp"
#include "support/units.hpp"

namespace pfsc {
namespace {

TEST(Units, LiteralsAndConversions) {
  EXPECT_EQ(1_KiB, 1024u);
  EXPECT_EQ(4_MiB, 4ull * 1024 * 1024);
  EXPECT_EQ(2_GiB, 2ull * 1024 * 1024 * 1024);
  EXPECT_DOUBLE_EQ(mb_per_sec(300.0), 3.0e8);
  EXPECT_DOUBLE_EQ(to_mbps(3.0e8), 300.0);
}

TEST(Units, BandwidthMbps) {
  EXPECT_DOUBLE_EQ(bandwidth_mbps(100'000'000, 1.0), 100.0);
  EXPECT_DOUBLE_EQ(bandwidth_mbps(100'000'000, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(bandwidth_mbps(0, 5.0), 0.0);
}

TEST(Units, FormatBytes) {
  EXPECT_EQ(format_bytes(512), "512 B");
  EXPECT_EQ(format_bytes(1_KiB), "1 KiB");
  EXPECT_EQ(format_bytes(128_MiB), "128 MiB");
  EXPECT_EQ(format_bytes(1536), "1.50 KiB");
}

TEST(Rng, DeterministicStreams) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, UniformBounds) {
  Rng rng(7);
  for (int i = 0; i < 10'000; ++i) {
    EXPECT_LT(rng.uniform(13), 13u);
  }
  for (int i = 0; i < 10'000; ++i) {
    const double d = rng.uniform_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, UniformCoversAllValues) {
  Rng rng(11);
  std::array<int, 5> seen{};
  for (int i = 0; i < 5000; ++i) ++seen[rng.uniform(5)];
  for (int count : seen) EXPECT_GT(count, 800);
}

TEST(Rng, SampleWithoutReplacementIsDistinct) {
  Rng rng(3);
  auto sample = rng.sample_without_replacement(100, 40);
  ASSERT_EQ(sample.size(), 40u);
  std::sort(sample.begin(), sample.end());
  EXPECT_TRUE(std::adjacent_find(sample.begin(), sample.end()) == sample.end());
  for (auto v : sample) EXPECT_LT(v, 100u);
}

TEST(Rng, SampleFullPopulation) {
  Rng rng(5);
  auto sample = rng.sample_without_replacement(10, 10);
  std::sort(sample.begin(), sample.end());
  for (std::uint32_t i = 0; i < 10; ++i) EXPECT_EQ(sample[i], i);
}

TEST(Rng, SampleRejectsOversizedRequest) {
  Rng rng(5);
  EXPECT_THROW(rng.sample_without_replacement(4, 5), UsageError);
}

TEST(Rng, SampleIsApproximatelyUniform) {
  Rng rng(17);
  std::array<int, 20> hits{};
  const int reps = 20'000;
  for (int i = 0; i < reps; ++i) {
    for (auto v : rng.sample_without_replacement(20, 3)) ++hits[v];
  }
  // Each element should appear with probability 3/20.
  const double expected = reps * 3.0 / 20.0;
  for (int h : hits) {
    EXPECT_NEAR(h, expected, expected * 0.1);
  }
}

TEST(Rng, NormalMoments) {
  Rng rng(23);
  RunningStats stats;
  for (int i = 0; i < 50'000; ++i) stats.add(rng.normal(10.0, 2.0));
  EXPECT_NEAR(stats.mean(), 10.0, 0.05);
  EXPECT_NEAR(stats.stddev(), 2.0, 0.05);
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng parent(9);
  Rng child = parent.split();
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (parent.next_u64() == child.next_u64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Stats, RunningStatsBasics) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.stddev(), 2.138, 1e-3);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(Stats, VarianceNeedsTwoSamples) {
  RunningStats s;
  s.add(3.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(Stats, StudentTKnownValues) {
  EXPECT_NEAR(student_t_critical(0.95, 4), 2.776, 1e-3);   // 5 reps
  EXPECT_NEAR(student_t_critical(0.95, 1), 12.706, 1e-3);
  EXPECT_NEAR(student_t_critical(0.95, 1000), 1.960, 1e-3);
  EXPECT_NEAR(student_t_critical(0.99, 9), 3.250, 1e-3);
  EXPECT_NEAR(student_t_critical(0.90, 30), 1.697, 1e-3);
}

TEST(Stats, StudentTRejectsUnknownLevel) {
  EXPECT_THROW(student_t_critical(0.42, 5), UsageError);
  EXPECT_THROW(student_t_critical(0.95, 0), UsageError);
}

TEST(Stats, ConfidenceIntervalFiveReps) {
  // The paper's Table VII reports 5-repetition 95% CIs; check the math.
  const std::vector<double> xs{100.0, 110.0, 90.0, 105.0, 95.0};
  const auto ci = confidence_interval(xs);
  EXPECT_DOUBLE_EQ(ci.mean, 100.0);
  // stddev ~= 7.906; half width = 2.776 * 7.906 / sqrt(5) ~= 9.815
  EXPECT_NEAR(ci.half_width, 9.815, 0.01);
  EXPECT_NEAR(ci.lower, 90.185, 0.01);
  EXPECT_NEAR(ci.upper, 109.815, 0.01);
}

TEST(Stats, ConfidenceIntervalSingleSampleDegenerates) {
  const std::vector<double> xs{42.0};
  const auto ci = confidence_interval(xs);
  EXPECT_DOUBLE_EQ(ci.lower, 42.0);
  EXPECT_DOUBLE_EQ(ci.upper, 42.0);
}

TEST(Stats, Percentile) {
  std::vector<double> xs{1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  EXPECT_DOUBLE_EQ(percentile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 1.0), 10.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 0.5), 5.5);
}

TEST(Table, FormatsRowsAndCsv) {
  TextTable t({"a", "bb"});
  t.add_row({"1", "2"});
  t.cell("33").cell("4").end_row();
  EXPECT_EQ(t.rows(), 2u);
  const std::string s = t.to_string();
  EXPECT_NE(s.find("| 33 |"), std::string::npos);
  const std::string csv = t.to_csv();
  EXPECT_NE(csv.find("a,bb\n"), std::string::npos);
  EXPECT_NE(csv.find("33,4\n"), std::string::npos);
}

TEST(Table, RejectsMismatchedRow) {
  TextTable t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), UsageError);
}

TEST(Table, FmtHelpers) {
  EXPECT_EQ(fmt_double(3.14159, 2), "3.14");
  EXPECT_EQ(fmt_int(-7), "-7");
}

}  // namespace
}  // namespace pfsc
