#include <gtest/gtest.h>

#include "lustre/client.hpp"

namespace pfsc::lustre {
namespace {

struct ClientFixture : ::testing::Test {
  sim::Engine eng;
  hw::PlatformParams params = hw::tiny_test_platform();
  FileSystem fs{eng, hw::tiny_test_platform(), 7};
  Client client{fs, "c0"};

  template <typename T>
  T run(sim::Co<T> op) {
    T out{};
    eng.spawn([](sim::Co<T> op, T& out) -> sim::Task {
      out = co_await std::move(op);
    }(std::move(op), out));
    eng.run();
    return out;
  }

  InodeId make_file(const std::string& path, StripeSettings s = {}) {
    auto r = run(client.create(path, s));
    PFSC_ASSERT(r.ok());
    return r.value;
  }
};

TEST_F(ClientFixture, WriteRecordsExtentAndSize) {
  const InodeId f = make_file("/f");
  EXPECT_EQ(run(client.write(f, 0, 1_MiB)), Errno::ok);
  const Inode& node = fs.inode(f);
  EXPECT_EQ(node.size, 1_MiB);
  EXPECT_TRUE(node.written.covers(0, 1_MiB));
  EXPECT_EQ(client.bytes_written(), 1_MiB);
}

TEST_F(ClientFixture, WriteTakesSimulatedTime) {
  const InodeId f = make_file("/f");
  const Seconds t0 = eng.now();
  EXPECT_EQ(run(client.write(f, 0, 16_MiB)), Errno::ok);
  const Seconds elapsed = eng.now() - t0;
  EXPECT_GT(elapsed, 0.0);
  // Sanity: a single process can't beat its own pipe.
  const double mbps = bandwidth_mbps(16_MiB, elapsed);
  EXPECT_LT(mbps, to_mbps(params.per_process_bw) + 1.0);
}

TEST_F(ClientFixture, SparseWriteLeavesHole) {
  const InodeId f = make_file("/f");
  EXPECT_EQ(run(client.write(f, 0, 1_MiB)), Errno::ok);
  EXPECT_EQ(run(client.write(f, 3_MiB, 1_MiB)), Errno::ok);
  const Inode& node = fs.inode(f);
  EXPECT_EQ(node.size, 4_MiB);
  EXPECT_FALSE(node.written.covers(0, 4_MiB));
  EXPECT_EQ(node.written.total_bytes(), 2_MiB);
}

TEST_F(ClientFixture, ReadWithinFileSucceeds) {
  const InodeId f = make_file("/f");
  ASSERT_EQ(run(client.write(f, 0, 4_MiB)), Errno::ok);
  EXPECT_EQ(run(client.read(f, 1_MiB, 2_MiB)), Errno::ok);
  EXPECT_EQ(client.bytes_read(), 2_MiB);
}

TEST_F(ClientFixture, ReadPastEofFails) {
  const InodeId f = make_file("/f");
  ASSERT_EQ(run(client.write(f, 0, 1_MiB)), Errno::ok);
  EXPECT_EQ(run(client.read(f, 512_KiB, 1_MiB)), Errno::einval);
}

TEST_F(ClientFixture, ZeroLengthIoIsFree) {
  const InodeId f = make_file("/f");
  const Seconds t0 = eng.now();
  EXPECT_EQ(run(client.write(f, 0, 0)), Errno::ok);
  EXPECT_DOUBLE_EQ(eng.now(), t0);
}

TEST_F(ClientFixture, WriteToFailedOstReturnsEio) {
  const InodeId f = make_file("/f", StripeSettings{2, 1_MiB, 0});
  fs.fail_ost(0);
  EXPECT_EQ(run(client.write(f, 0, 4_MiB)), Errno::eio);
  // Extents must not be recorded on failure.
  EXPECT_EQ(fs.inode(f).written.total_bytes(), 0u);
}

TEST_F(ClientFixture, WriteSpreadsOverLayoutOsts) {
  const InodeId f = make_file("/f", StripeSettings{4, 1_MiB, 0});
  ASSERT_EQ(run(client.write(f, 0, 8_MiB)), Errno::ok);
  // Each of the 4 OSTs should have serviced 2 MiB.
  for (OstIndex ost = 0; ost < 4; ++ost) {
    EXPECT_EQ(fs.ost_disk(ost).bytes_serviced(), 2_MiB) << "ost " << ost;
  }
}

TEST_F(ClientFixture, LargeWriteSplitsIntoRpcs) {
  const InodeId f = make_file("/f", StripeSettings{1, 64_MiB, 0});
  ASSERT_EQ(run(client.write(f, 0, 16_MiB)), Errno::ok);
  // max_rpc_size is 4 MiB: 16 MiB -> 4 RPCs.
  EXPECT_EQ(fs.ost_disk(0).requests_serviced(), 4u);
}

TEST_F(ClientFixture, TwoClientsShareNodeNic) {
  sim::FifoPipe nic(eng, params.node_nic_bw);
  Client a(fs, "a", &nic);
  Client b(fs, "b", &nic);
  EXPECT_EQ(a.node_key(), b.node_key());
  Client c(fs, "c");
  EXPECT_EQ(c.node_key(), nullptr);
}

TEST_F(ClientFixture, ConcurrentWritersBothComplete) {
  const InodeId f1 = make_file("/f1", StripeSettings{1, 1_MiB, 0});
  const InodeId f2 = make_file("/f2", StripeSettings{1, 1_MiB, 0});
  Client other(fs, "c1");
  Errno e1 = Errno::eio;
  Errno e2 = Errno::eio;
  eng.spawn([](Client& c, InodeId f, Errno& e) -> sim::Task {
    e = co_await c.write(f, 0, 8_MiB);
  }(client, f1, e1));
  eng.spawn([](Client& c, InodeId f, Errno& e) -> sim::Task {
    e = co_await c.write(f, 0, 8_MiB);
  }(other, f2, e2));
  eng.run();
  EXPECT_EQ(e1, Errno::ok);
  EXPECT_EQ(e2, Errno::ok);
  EXPECT_EQ(fs.total_bytes_written(), 16_MiB);
}

TEST_F(ClientFixture, ContendedOstSlowerThanDedicated) {
  // Two files on the same single OST vs on two different OSTs.
  auto timed_pair = [&](std::int32_t off1, std::int32_t off2) {
    sim::Engine e2;
    FileSystem fs2(e2, hw::tiny_test_platform(), 7);
    Client c1(fs2, "c1");
    Client c2(fs2, "c2");
    Errno err = Errno::ok;
    e2.spawn([](Client& c, std::int32_t off, Errno& err) -> sim::Task {
      auto r = co_await c.create("/a", StripeSettings{1, 1_MiB, off});
      if (!r.ok()) { err = r.err; co_return; }
      err = co_await c.write(r.value, 0, 32_MiB);
    }(c1, off1, err));
    e2.spawn([](Client& c, std::int32_t off, Errno& err) -> sim::Task {
      auto r = co_await c.create("/b", StripeSettings{1, 1_MiB, off});
      if (!r.ok()) { err = r.err; co_return; }
      err = co_await c.write(r.value, 0, 32_MiB);
    }(c2, off2, err));
    e2.run();
    PFSC_ASSERT(err == Errno::ok);
    return e2.now();
  };
  const Seconds contended = timed_pair(0, 0);
  const Seconds spread = timed_pair(0, 1);
  EXPECT_GT(contended, spread * 1.3);
}

}  // namespace
}  // namespace pfsc::lustre
