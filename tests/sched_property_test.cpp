// Property tests for the OSS request schedulers: randomized seeded
// multi-job workloads checked against policy-independent invariants (work
// conservation, no starvation) and policy-specific bounds (the DRR
// head-of-line byte window, the job_fair byte-share deviation, the token
// bucket's rate envelope). A failing case is shrunk to its smallest
// failing request prefix before being reported, so the failure message
// names a minimal (seed, prefix) reproducer.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "lustre/sched/scheduler.hpp"
#include "sim/resources.hpp"
#include "support/rng.hpp"

namespace pfsc::lustre::sched {
namespace {

constexpr double kServiceRate = 600.0e6;  // B/s of the shared service stage

struct Req {
  JobId job = 0;
  Bytes bytes = 0;
  Seconds arrival = 0.0;
};

/// One submit or grant, in engine dispatch order.
struct Ev {
  bool grant = false;
  JobId job = 0;
  Bytes bytes = 0;
  Seconds at = 0.0;
};

struct Case {
  std::uint32_t jobs = 1;
  SchedTuning tuning;
  std::size_t server_slots = 1;
  std::vector<Req> reqs;
};

Case gen_case(std::uint64_t seed, bool all_at_time_zero) {
  Rng rng(0x5CEDu ^ (seed * 0x9E3779B97F4A7C15ull));
  Case c;
  c.jobs = 1 + static_cast<std::uint32_t>(rng.uniform(4));
  c.tuning.quantum = 256_KiB * (1 + rng.uniform(16));
  c.tuning.service_slots = 1 + static_cast<std::size_t>(rng.uniform(8));
  c.tuning.job_rate = mb_per_sec(50.0 + rng.uniform_double(0.0, 350.0));
  c.tuning.bucket_depth = 1_MiB * (1 + rng.uniform(8));
  c.server_slots = 1 + static_cast<std::size_t>(rng.uniform(3));
  const std::size_t n = 1 + static_cast<std::size_t>(rng.uniform(40));
  for (std::size_t i = 0; i < n; ++i) {
    Req r;
    r.job = static_cast<JobId>(rng.uniform(c.jobs));
    r.bytes = 64_KiB + rng.uniform(2_MiB - 64_KiB);
    r.arrival = all_at_time_zero ? 0.0 : rng.uniform_double(0.0, 0.01);
    c.reqs.push_back(r);
  }
  return c;
}

sim::Task drive(sim::Engine& eng, Scheduler& s, sim::Resource& server, Req r,
                std::vector<Ev>& log) {
  if (r.arrival > 0.0) co_await eng.delay(r.arrival);
  log.push_back({false, r.job, r.bytes, eng.now()});
  co_await s.admit(r.job, r.bytes);
  log.push_back({true, r.job, r.bytes, eng.now()});
  co_await server.acquire();
  co_await eng.delay(static_cast<double>(r.bytes) / kServiceRate);
  server.release();
  s.complete(r.job, r.bytes);
}

/// DRR head-of-line bound: while job j's head request R waits, no other
/// job may be granted more than (R.bytes/quantum + 3) rounds' worth of
/// quantum + one max request. Also enforces FIFO within each job.
std::string check_job_fair_log(const Case& c, const std::vector<Ev>& log) {
  Bytes max_bytes = 0;
  for (const Req& r : c.reqs) max_bytes = std::max(max_bytes, r.bytes);

  std::map<JobId, std::vector<Bytes>> pending;        // submitted, ungranted
  std::map<JobId, std::map<JobId, Bytes>> head_snap;  // cum at head arrival
  std::map<JobId, Bytes> cum;                         // granted bytes so far
  for (const Ev& ev : log) {
    if (!ev.grant) {
      auto& q = pending[ev.job];
      q.push_back(ev.bytes);
      if (q.size() == 1) head_snap[ev.job] = cum;  // became head on submit
      continue;
    }
    auto& q = pending[ev.job];
    if (q.empty() || q.front() != ev.bytes) {
      return "job_fair granted out of FIFO order within job " +
             std::to_string(ev.job);
    }
    const Bytes rounds = ev.bytes / c.tuning.quantum + 3;
    const Bytes bound = rounds * (c.tuning.quantum + max_bytes);
    for (const auto& [other, bytes] : cum) {
      if (other == ev.job) continue;
      const Bytes before = head_snap[ev.job].count(other)
                               ? head_snap[ev.job][other]
                               : 0;
      if (bytes - before > bound) {
        return "job " + std::to_string(ev.job) + " head waited through " +
               std::to_string(bytes - before) + " bytes of job " +
               std::to_string(other) + " (bound " + std::to_string(bound) +
               ")";
      }
    }
    cum[ev.job] += ev.bytes;
    q.erase(q.begin());
    if (!q.empty()) head_snap[ev.job] = cum;  // next request becomes head
  }
  return {};
}

/// Token-bucket envelope: a job's cumulative granted bytes by time t can
/// never exceed depth + rate*t plus one request of debt.
std::string check_token_bucket_log(const Case& c, const std::vector<Ev>& log) {
  Bytes max_bytes = 0;
  for (const Req& r : c.reqs) max_bytes = std::max(max_bytes, r.bytes);
  std::map<JobId, double> cum;
  for (const Ev& ev : log) {
    if (!ev.grant) continue;
    cum[ev.job] += static_cast<double>(ev.bytes);
    const double envelope = static_cast<double>(c.tuning.bucket_depth) +
                            c.tuning.job_rate * ev.at +
                            static_cast<double>(max_bytes) + 1.0;
    if (cum[ev.job] > envelope) {
      return "job " + std::to_string(ev.job) + " granted " +
             std::to_string(cum[ev.job]) + " bytes by t=" +
             std::to_string(ev.at) + " (envelope " +
             std::to_string(envelope) + ")";
    }
  }
  return {};
}

/// job_fair byte-share deviation: while EVERY job is backlogged, pairwise
/// granted-byte gaps stay within one quantum plus the in-flight skew.
std::string check_share_deviation(const Case& c, const std::vector<Ev>& log) {
  Bytes max_bytes = 0;
  for (const Req& r : c.reqs) max_bytes = std::max(max_bytes, r.bytes);
  const Bytes bound = c.tuning.quantum + max_bytes +
                      static_cast<Bytes>(c.tuning.service_slots) * max_bytes;

  std::map<JobId, std::size_t> pending;
  std::map<JobId, Bytes> cum;
  for (const Ev& ev : log) {
    if (!ev.grant) {
      ++pending[ev.job];
      continue;
    }
    --pending[ev.job];
    cum[ev.job] += ev.bytes;
    bool all_backlogged = pending.size() == c.jobs;
    for (const auto& [job, waiting] : pending) {
      all_backlogged = all_backlogged && waiting > 0;
    }
    if (!all_backlogged) continue;
    for (const auto& [a, bytes_a] : cum) {
      for (const auto& [b, bytes_b] : cum) {
        const Bytes gap = bytes_a > bytes_b ? bytes_a - bytes_b
                                            : bytes_b - bytes_a;
        if (gap > bound) {
          return "share gap between jobs " + std::to_string(a) + " and " +
                 std::to_string(b) + " is " + std::to_string(gap) +
                 " bytes (bound " + std::to_string(bound) + ")";
        }
      }
    }
  }
  return {};
}

/// Runs `c.reqs[0..n)` under `policy`; returns "" or the first violated
/// invariant.
std::string run_case(SchedPolicy policy, const Case& c, std::size_t n) {
  std::vector<Ev> log;
  sim::Engine eng;
  const auto s = make_scheduler(eng, policy, c.tuning);
  sim::Resource server(eng, c.server_slots);
  std::map<JobId, Bytes> want;
  Bytes total = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const Req& r = c.reqs[i];
    want[r.job] += r.bytes;
    total += r.bytes;
    eng.spawn(drive(eng, *s, server, r, log));
  }
  eng.run();

  // Work conservation + no starvation: the queue drained, every submitted
  // byte was granted and completed, per job and in total. (A starved admit
  // leaves its task suspended forever, so served < submitted catches it.)
  if (s->queue_depth() != 0) return "queue not drained";
  if (s->in_service() != 0) return "in-service requests left";
  if (s->submitted_bytes() != total) return "submitted bytes miscounted";
  if (s->served_bytes() != total) return "served != submitted (starvation?)";
  for (const auto& [job, bytes] : want) {
    if (s->served_bytes(job) != bytes) {
      return "job " + std::to_string(job) + " served " +
             std::to_string(s->served_bytes(job)) + " of " +
             std::to_string(bytes) + " bytes";
    }
  }
  try {
    s->check_invariants();
  } catch (const SimulationError& e) {
    return std::string("check_invariants: ") + e.what();
  }

  if (policy == SchedPolicy::job_fair) {
    if (auto err = check_job_fair_log(c, log); !err.empty()) return err;
  }
  if (policy == SchedPolicy::token_bucket) {
    if (auto err = check_token_bucket_log(c, log); !err.empty()) return err;
  }
  return {};
}

/// Shrink to the smallest failing prefix and report it. The rerun is
/// deterministic (same engine schedule for the same prefix), so the
/// reported reproducer is exact.
void report_shrunk(SchedPolicy policy, std::uint64_t seed, const Case& c,
                   const std::string& full_error) {
  std::size_t n = c.reqs.size();
  std::string err = full_error;
  for (std::size_t len = 1; len < c.reqs.size(); ++len) {
    const std::string e = run_case(policy, c, len);
    if (!e.empty()) {
      n = len;
      err = e;
      break;
    }
  }
  ADD_FAILURE() << sched_policy_name(policy) << " seed " << seed
                << " fails with the first " << n << " of " << c.reqs.size()
                << " requests: " << err;
}

void check_policy(SchedPolicy policy, bool all_at_time_zero) {
  for (std::uint64_t seed = 1; seed <= 50; ++seed) {
    const Case c = gen_case(seed, all_at_time_zero);
    const std::string err = run_case(policy, c, c.reqs.size());
    if (!err.empty()) {
      report_shrunk(policy, seed, c, err);
      return;
    }
  }
}

TEST(SchedProperty, FifoConservesWorkAndDrains) {
  check_policy(SchedPolicy::fifo, false);
}

TEST(SchedProperty, JobFairConservesWorkNoStarvationBoundedHeadWait) {
  check_policy(SchedPolicy::job_fair, false);
}

TEST(SchedProperty, TokenBucketConservesWorkUnderRateEnvelope) {
  check_policy(SchedPolicy::token_bucket, false);
}

TEST(SchedProperty, JobFairShareDeviationWhileAllBacklogged) {
  // All requests arrive at t=0 so every job is backlogged from the start:
  // the DRR byte-share gap between any two jobs must stay within one
  // deficit quantum plus the in-flight skew for the whole backlogged
  // phase, for every seed.
  for (std::uint64_t seed = 1; seed <= 50; ++seed) {
    const Case c = gen_case(seed, true);
    if (c.jobs < 2) continue;
    std::vector<Ev> log;
    sim::Engine eng;
    const auto s = make_scheduler(eng, SchedPolicy::job_fair, c.tuning);
    sim::Resource server(eng, c.server_slots);
    for (const Req& r : c.reqs) eng.spawn(drive(eng, *s, server, r, log));
    eng.run();
    const std::string err = check_share_deviation(c, log);
    if (!err.empty()) {
      ADD_FAILURE() << "seed " << seed << ": " << err;
      return;
    }
  }
}

}  // namespace
}  // namespace pfsc::lustre::sched
