// Remaining coverage: nested comm splits, large-offset layout math, PLFS
// hashdir spreading, table formatting misuse, engine/run_until with the
// telemetry sampler, and advisor boundary conditions.
#include <gtest/gtest.h>

#include <set>

#include "core/metrics.hpp"
#include "lustre/layout.hpp"
#include "mpi/runtime.hpp"
#include "plfs/plfs.hpp"
#include "support/table.hpp"
#include "trace/telemetry.hpp"

namespace pfsc {
namespace {

TEST(NestedSplit, SplitOfSplitFormsQuarters) {
  sim::Engine eng;
  lustre::FileSystem fs(eng, hw::tiny_test_platform(), 3);
  mpi::Runtime rt(fs, 8, 4);
  std::vector<int> leaf_size(8, 0);
  std::vector<double> leaf_sum(8, 0.0);
  rt.run_to_completion([&](int rank) -> sim::Task {
    auto half = co_await rt.world().split(rank, rank / 4, rank);
    auto quarter = co_await half.comm->split(half.rank, half.rank / 2, half.rank);
    leaf_size[static_cast<std::size_t>(rank)] = quarter.comm->size();
    leaf_sum[static_cast<std::size_t>(rank)] = co_await quarter.comm->allreduce(
        quarter.rank, static_cast<double>(rank), mpi::Communicator::ReduceOp::sum);
  });
  for (int r = 0; r < 8; ++r) {
    EXPECT_EQ(leaf_size[static_cast<std::size_t>(r)], 2);
  }
  // Quarters are {0,1},{2,3},{4,5},{6,7}: sums 1,5,9,13.
  EXPECT_DOUBLE_EQ(leaf_sum[0], 1.0);
  EXPECT_DOUBLE_EQ(leaf_sum[2], 5.0);
  EXPECT_DOUBLE_EQ(leaf_sum[5], 9.0);
  EXPECT_DOUBLE_EQ(leaf_sum[7], 13.0);
}

TEST(LayoutLargeOffsets, NoOverflowAtTerabyteScale) {
  lustre::StripeLayout layout;
  layout.stripe_size = 128_MiB;
  for (std::uint32_t i = 0; i < 160; ++i) {
    layout.osts.push_back(i);
    layout.objects.push_back(i + 1);
  }
  const Bytes tb = 1024ull * 1_GiB;
  const auto seg = lustre::locate(layout, 4 * tb + 12345);
  const Bytes stripe_idx = (4 * tb + 12345) / 128_MiB;
  EXPECT_EQ(seg.layout_index, stripe_idx % 160);
  EXPECT_EQ(seg.object_offset, (stripe_idx / 160) * 128_MiB + 12345 % 128_MiB);
  // Segment decomposition at the same magnitude conserves bytes.
  Bytes total = 0;
  for (const auto& piece : lustre::segments(layout, 4 * tb, 3u * 128_MiB + 7)) {
    total += piece.length;
  }
  EXPECT_EQ(total, 3u * 128_MiB + 7);
}

TEST(PlfsHashdirs, RanksSpreadAcrossDirectories) {
  sim::Engine eng;
  lustre::FileSystem fs(eng, hw::tiny_test_platform(), 8);
  lustre::Client client(fs, "c");
  plfs::PlfsParams params;
  params.num_hash_dirs = 4;
  plfs::Plfs plfs(fs, params);
  eng.spawn([](lustre::Client& c, plfs::Plfs& p) -> sim::Task {
    for (int rank = 0; rank < 8; ++rank) {
      auto h = co_await p.open_write(c, "/ckpt", rank);
      PFSC_ASSERT(h.ok());
      PFSC_ASSERT(co_await p.close_write(c, h.value) == lustre::Errno::ok);
    }
  }(client, plfs));
  eng.run();
  // 8 ranks over 4 hash dirs: each dir holds exactly 2 ranks' files.
  std::set<std::string> dirs;
  for (int d = 0; d < 4; ++d) {
    const std::string dir = "/ckpt/hostdir." + std::to_string(d);
    ASSERT_TRUE(fs.exists(dir)) << dir;
    EXPECT_EQ(fs.files_under(dir).size(), 4u) << dir;  // 2 data + 2 index
  }
}

TEST(TableMisuse, PendingRowMismatchThrows) {
  TextTable t({"a", "b"});
  t.cell("only-one");
  EXPECT_THROW(t.end_row(), UsageError);
  FigureSeries fig("x", {"y"});
  EXPECT_THROW(fig.add_point(1.0, {1.0, 2.0}), UsageError);
  EXPECT_THROW(FigureSeries("x", {}), UsageError);
}

TEST(SamplerWithRunUntil, PartialWindowObserved) {
  sim::Engine eng;
  trace::Sampler sampler(eng, 1.0, 1000);
  sampler.add_probe("t", [&] { return eng.now(); });
  sampler.start();
  EXPECT_FALSE(eng.run_until(5.5));  // sampler still armed
  EXPECT_EQ(sampler.series(0).size(), 6u);  // t = 0..5
  sampler.stop();
  eng.run();  // drains the final armed tick
}

TEST(AdvisorBoundary, BudgetExactlyOneNeedsNoOverlap) {
  // With budget 1.0 the advisor can only recommend stripe counts whose
  // expected overlap is ~zero; for n=1 any count qualifies.
  const auto solo = core::advise_stripe_count(480.0, 1, 1.0, 160);
  EXPECT_EQ(solo.recommended_stripes, 160u);
  const auto multi = core::advise_stripe_count(480.0, 4, 1.0, 160);
  EXPECT_EQ(multi.recommended_stripes, 0u);  // any overlap breaks load 1.0
  EXPECT_THROW(core::advise_stripe_count(480.0, 4, 0.5, 160), UsageError);
}

TEST(ContentionTable, MatchesPointwiseEvaluation) {
  const auto rows = core::contention_table(64.0, 6, 480.0);
  ASSERT_EQ(rows.size(), 6u);
  for (const auto& row : rows) {
    EXPECT_DOUBLE_EQ(row.d_inuse, core::d_inuse_uniform(64, row.jobs, 480));
    EXPECT_DOUBLE_EQ(row.d_req, core::d_req(64, row.jobs));
    EXPECT_NEAR(row.d_load, core::d_load(64, row.jobs, 480), 1e-12);
  }
}

TEST(PoolNameHygiene, EmbeddedInSettingsConstructor) {
  const lustre::StripeSettings s(4, 1_MiB, -1, "flash");
  EXPECT_EQ(s.pool.view(), "flash");
  const lustre::StripeSettings plain(4, 1_MiB);
  EXPECT_TRUE(plain.pool.empty());
  EXPECT_EQ(plain.stripe_offset, -1);
}

}  // namespace
}  // namespace pfsc
