// Remaining coverage: nested comm splits, large-offset layout math, PLFS
// hashdir spreading, table formatting misuse, engine/run_until with the
// telemetry sampler, advisor boundary conditions, and the placement /
// admission edge paths the property and golden tests never reach
// (infeasible node_affine bands, non-detunable jobs under detune, the
// min_stripes floor fallback, traced admission spans).
#include <gtest/gtest.h>

#include <set>

#include "core/metrics.hpp"
#include "harness/admission.hpp"
#include "harness/scenario.hpp"
#include "lustre/layout.hpp"
#include "lustre/placement.hpp"
#include "mpi/runtime.hpp"
#include "plfs/plfs.hpp"
#include "support/table.hpp"
#include "trace/telemetry.hpp"

namespace pfsc {
namespace {

TEST(NestedSplit, SplitOfSplitFormsQuarters) {
  sim::Engine eng;
  lustre::FileSystem fs(eng, hw::tiny_test_platform(), 3);
  mpi::Runtime rt(fs, 8, 4);
  std::vector<int> leaf_size(8, 0);
  std::vector<double> leaf_sum(8, 0.0);
  rt.run_to_completion([&](int rank) -> sim::Task {
    auto half = co_await rt.world().split(rank, rank / 4, rank);
    auto quarter = co_await half.comm->split(half.rank, half.rank / 2, half.rank);
    leaf_size[static_cast<std::size_t>(rank)] = quarter.comm->size();
    leaf_sum[static_cast<std::size_t>(rank)] = co_await quarter.comm->allreduce(
        quarter.rank, static_cast<double>(rank), mpi::Communicator::ReduceOp::sum);
  });
  for (int r = 0; r < 8; ++r) {
    EXPECT_EQ(leaf_size[static_cast<std::size_t>(r)], 2);
  }
  // Quarters are {0,1},{2,3},{4,5},{6,7}: sums 1,5,9,13.
  EXPECT_DOUBLE_EQ(leaf_sum[0], 1.0);
  EXPECT_DOUBLE_EQ(leaf_sum[2], 5.0);
  EXPECT_DOUBLE_EQ(leaf_sum[5], 9.0);
  EXPECT_DOUBLE_EQ(leaf_sum[7], 13.0);
}

TEST(LayoutLargeOffsets, NoOverflowAtTerabyteScale) {
  lustre::StripeLayout layout;
  layout.stripe_size = 128_MiB;
  for (std::uint32_t i = 0; i < 160; ++i) {
    layout.osts.push_back(i);
    layout.objects.push_back(i + 1);
  }
  const Bytes tb = 1024ull * 1_GiB;
  const auto seg = lustre::locate(layout, 4 * tb + 12345);
  const Bytes stripe_idx = (4 * tb + 12345) / 128_MiB;
  EXPECT_EQ(seg.layout_index, stripe_idx % 160);
  EXPECT_EQ(seg.object_offset, (stripe_idx / 160) * 128_MiB + 12345 % 128_MiB);
  // Segment decomposition at the same magnitude conserves bytes.
  Bytes total = 0;
  for (const auto& piece : lustre::segments(layout, 4 * tb, 3u * 128_MiB + 7)) {
    total += piece.length;
  }
  EXPECT_EQ(total, 3u * 128_MiB + 7);
}

TEST(PlfsHashdirs, RanksSpreadAcrossDirectories) {
  sim::Engine eng;
  lustre::FileSystem fs(eng, hw::tiny_test_platform(), 8);
  lustre::Client client(fs, "c");
  plfs::PlfsParams params;
  params.num_hash_dirs = 4;
  plfs::Plfs plfs(fs, params);
  eng.spawn([](lustre::Client& c, plfs::Plfs& p) -> sim::Task {
    for (int rank = 0; rank < 8; ++rank) {
      auto h = co_await p.open_write(c, "/ckpt", rank);
      PFSC_ASSERT(h.ok());
      PFSC_ASSERT(co_await p.close_write(c, h.value) == lustre::Errno::ok);
    }
  }(client, plfs));
  eng.run();
  // 8 ranks over 4 hash dirs: each dir holds exactly 2 ranks' files.
  std::set<std::string> dirs;
  for (int d = 0; d < 4; ++d) {
    const std::string dir = "/ckpt/hostdir." + std::to_string(d);
    ASSERT_TRUE(fs.exists(dir)) << dir;
    EXPECT_EQ(fs.files_under(dir).size(), 4u) << dir;  // 2 data + 2 index
  }
}

TEST(TableMisuse, PendingRowMismatchThrows) {
  TextTable t({"a", "b"});
  t.cell("only-one");
  EXPECT_THROW(t.end_row(), UsageError);
  FigureSeries fig("x", {"y"});
  EXPECT_THROW(fig.add_point(1.0, {1.0, 2.0}), UsageError);
  EXPECT_THROW(FigureSeries("x", {}), UsageError);
}

TEST(SamplerWithRunUntil, PartialWindowObserved) {
  sim::Engine eng;
  trace::Sampler sampler(eng, 1.0, 1000);
  sampler.add_probe("t", [&] { return eng.now(); });
  sampler.start();
  EXPECT_FALSE(eng.run_until(5.5));  // sampler still armed
  EXPECT_EQ(sampler.series(0).size(), 6u);  // t = 0..5
  sampler.stop();
  eng.run();  // drains the final armed tick
}

TEST(AdvisorBoundary, BudgetExactlyOneNeedsNoOverlap) {
  // With budget 1.0 the advisor can only recommend stripe counts whose
  // expected overlap is ~zero; for n=1 any count qualifies.
  const auto solo = core::advise_stripe_count(480.0, 1, 1.0, 160);
  EXPECT_EQ(solo.recommended_stripes, 160u);
  const auto multi = core::advise_stripe_count(480.0, 4, 1.0, 160);
  EXPECT_EQ(multi.recommended_stripes, 0u);  // any overlap breaks load 1.0
  EXPECT_THROW(core::advise_stripe_count(480.0, 4, 0.5, 160), UsageError);
}

TEST(ContentionTable, MatchesPointwiseEvaluation) {
  const auto rows = core::contention_table(64.0, 6, 480.0);
  ASSERT_EQ(rows.size(), 6u);
  for (const auto& row : rows) {
    EXPECT_DOUBLE_EQ(row.d_inuse, core::d_inuse_uniform(64, row.jobs, 480));
    EXPECT_DOUBLE_EQ(row.d_req, core::d_req(64, row.jobs));
    EXPECT_NEAR(row.d_load, core::d_load(64, row.jobs, 480), 1e-12);
  }
}

TEST(PoolNameHygiene, EmbeddedInSettingsConstructor) {
  const lustre::StripeSettings s(4, 1_MiB, -1, "flash");
  EXPECT_EQ(s.pool.view(), "flash");
  const lustre::StripeSettings plain(4, 1_MiB);
  EXPECT_TRUE(plain.pool.empty());
  EXPECT_EQ(plain.stripe_offset, -1);
}

TEST(PlacementEdge, NodeAffineInfeasibleBandReturnsEmpty) {
  // Two healthy OSTs can never host a 3-wide band; the policy reports the
  // infeasibility (empty set) instead of wrapping or shrinking.
  std::vector<bool> failed = {false, true, true, false};
  std::vector<std::uint64_t> demand(4, 0);
  Rng rng(1);
  const lustre::PlacementView view{4, &failed, &demand};
  const auto policy =
      lustre::make_placement(lustre::PlacementKind::node_affine);
  EXPECT_TRUE(policy->choose(3, view, rng).empty());
  // The feasible width still works: {0, 3} is contiguous in healthy order.
  const auto band = policy->choose(2, view, rng);
  ASSERT_EQ(band.size(), 2u);
  EXPECT_EQ(band[0], 0u);
  EXPECT_EQ(band[1], 3u);
}

TEST(PlacementEdge, KindNamesMatchCliSpelling) {
  using lustre::PlacementKind;
  using lustre::placement_kind_name;
  EXPECT_STREQ(placement_kind_name(PlacementKind::uniform_random),
               "uniform_random");
  EXPECT_STREQ(placement_kind_name(PlacementKind::round_robin), "round_robin");
  EXPECT_STREQ(placement_kind_name(PlacementKind::load_aware), "load_aware");
  EXPECT_STREQ(placement_kind_name(PlacementKind::node_affine), "node_affine");
}

TEST(PlacementEdge, FactoryRoundTripsKindAndRejectsUnknown) {
  using lustre::PlacementKind;
  for (const PlacementKind kind :
       {PlacementKind::uniform_random, PlacementKind::round_robin,
        PlacementKind::load_aware, PlacementKind::node_affine}) {
    EXPECT_EQ(lustre::make_placement(kind)->kind(), kind);
  }
  // A corrupted kind (e.g. an unvalidated config byte) must fail loudly,
  // not fall through to some policy.
  const auto bogus = static_cast<PlacementKind>(0xEE);
  EXPECT_THROW((void)lustre::make_placement(bogus), UsageError);
  EXPECT_STREQ(lustre::placement_kind_name(bogus), "?");
}

namespace admission_edges {

sim::Task admit_job(sim::Engine& eng, harness::AdmissionController& ac,
                    const harness::JobSpec& spec, double service) {
  if (spec.arrival > 0.0) co_await eng.delay(spec.arrival);
  (void)co_await ac.admit(spec);
  co_await eng.delay(service);
  ac.finished(spec);
}

harness::JobSpec plfs_job(std::uint32_t id, Seconds arrival, int nprocs) {
  harness::JobSpec spec;
  spec.kind = harness::JobKind::plfs;
  spec.job_id = id;
  spec.nprocs = nprocs;
  spec.arrival = arrival;
  spec.ior.hints.driver = mpiio::Driver::ad_plfs;
  return spec;
}

harness::JobSpec ior_job(std::uint32_t id, Seconds arrival,
                         std::uint32_t factor) {
  harness::JobSpec spec;
  spec.kind = harness::JobKind::ior;
  spec.job_id = id;
  spec.nprocs = 8;
  spec.arrival = arrival;
  spec.ior.hints.driver = mpiio::Driver::ad_lustre;
  spec.ior.hints.striping_factor = factor;
  return spec;
}

}  // namespace admission_edges

TEST(AdmissionEdge, PolicyAndActionNamesMatchCliSpelling) {
  using harness::AdmissionAction;
  using harness::AdmissionPolicy;
  EXPECT_STREQ(harness::admission_policy_name(AdmissionPolicy::always),
               "always");
  EXPECT_STREQ(harness::admission_policy_name(AdmissionPolicy::threshold),
               "threshold");
  EXPECT_STREQ(harness::admission_policy_name(AdmissionPolicy::detune),
               "detune");
  EXPECT_STREQ(harness::admission_policy_name(
                   static_cast<AdmissionPolicy>(0xEE)),
               "?");
  EXPECT_STREQ(harness::admission_action_name(AdmissionAction::admitted),
               "admitted");
  EXPECT_STREQ(harness::admission_action_name(AdmissionAction::delayed),
               "delayed");
  EXPECT_STREQ(harness::admission_action_name(AdmissionAction::detuned),
               "detuned");
  EXPECT_STREQ(harness::admission_action_name(
                   static_cast<AdmissionAction>(0xEE)),
               "?");
}

TEST(AdmissionEdge, JobRequestsOfUnknownKindAreEmpty) {
  harness::JobSpec spec;
  spec.kind = static_cast<harness::JobKind>(0xEE);
  EXPECT_TRUE(harness::AdmissionController::job_requests(
                  spec, hw::tiny_test_platform())
                  .empty());
}

TEST(AdmissionEdge, ConstructorRejectsBadConfig) {
  sim::Engine eng;
  harness::AdmissionConfig bad_limit;
  bad_limit.max_dload = 0.0;
  EXPECT_THROW(harness::AdmissionController(eng, bad_limit,
                                            hw::tiny_test_platform()),
               UsageError);
  harness::AdmissionConfig bad_floor;
  bad_floor.min_stripes = 0;
  EXPECT_THROW(harness::AdmissionController(eng, bad_floor,
                                            hw::tiny_test_platform()),
               UsageError);
}

TEST(AdmissionEdge, FinishedUnknownJobIsIdempotent) {
  sim::Engine eng;
  harness::AdmissionController ac(eng, {}, hw::tiny_test_platform());
  harness::JobSpec spec;
  spec.job_id = 42;
  ac.finished(spec);  // never admitted: must be a no-op, not a crash
  EXPECT_EQ(ac.running_jobs(), 0u);
  EXPECT_EQ(ac.predicted_dload(), 0.0);
  // The candidate overload predicts the would-be load of an empty system
  // plus one default-layout job: exactly 1.0x (no sharing).
  EXPECT_DOUBLE_EQ(ac.predicted_dload(&spec), 1.0);
}

TEST(AdmissionEdge, DetuneReleasesNonDetunableJobsUnchanged) {
  using admission_edges::admit_job;
  using admission_edges::plfs_job;
  sim::Engine eng;
  harness::AdmissionConfig cfg;
  cfg.policy = harness::AdmissionPolicy::detune;
  cfg.max_dload = 1.0;  // everything overlapping is "over limit"
  harness::AdmissionController ac(eng, cfg, hw::tiny_test_platform());
  const harness::JobSpec a = plfs_job(0, 0.0, 16);
  const harness::JobSpec b = plfs_job(1, 0.1, 16);
  eng.spawn(admit_job(eng, ac, a, 1.0));
  eng.spawn(admit_job(eng, ac, b, 1.0));
  eng.run();
  // plfs layouts are fixed (2 stripes per rank): detune can neither shrink
  // nor delay them, so the overlapping job is admitted untouched.
  ASSERT_EQ(ac.records().size(), 2u);
  const harness::AdmissionRecord& rec = ac.records()[1];
  EXPECT_EQ(rec.action, harness::AdmissionAction::admitted);
  EXPECT_EQ(rec.wait(), 0.0);
  EXPECT_EQ(rec.stripes_before, rec.stripes_after);
}

TEST(AdmissionEdge, DetuneFallsBackToMinStripesFloor) {
  using admission_edges::admit_job;
  using admission_edges::ior_job;
  using admission_edges::plfs_job;
  sim::Engine eng;
  harness::AdmissionConfig cfg;
  cfg.policy = harness::AdmissionPolicy::detune;
  cfg.max_dload = 1.05;
  cfg.min_stripes = 4;
  harness::AdmissionController ac(eng, cfg, hw::tiny_test_platform());
  // 16 plfs ranks saturate all 8 OSTs (D_load 4.0x), so no stripe count in
  // [4, 8] fits under 1.05: the detune scan must bottom out at the floor.
  eng.spawn(admit_job(eng, ac, plfs_job(0, 0.0, 16), 2.0));
  eng.spawn(admit_job(eng, ac, ior_job(1, 0.1, 8), 0.5));
  eng.run();
  ASSERT_EQ(ac.records().size(), 2u);
  const harness::AdmissionRecord& rec = ac.records()[1];
  EXPECT_EQ(rec.action, harness::AdmissionAction::detuned);
  EXPECT_EQ(rec.stripes_before, 8u);
  EXPECT_EQ(rec.stripes_after, 4u);
  EXPECT_EQ(rec.wait(), 0.0);
  EXPECT_GT(rec.predicted_dload, cfg.max_dload);  // floor still over limit
}

TEST(AdmissionEdge, TracedDelayEmitsWaitSpanAndCounters) {
  using admission_edges::admit_job;
  using admission_edges::ior_job;
  sim::Engine eng;
  trace::Recorder rec(4096, trace::cat_bit(trace::Cat::sched));
  harness::AdmissionConfig cfg;
  cfg.policy = harness::AdmissionPolicy::threshold;
  cfg.max_dload = 1.05;
  harness::AdmissionController ac(eng, cfg, hw::tiny_test_platform(), &rec);
  eng.spawn(admit_job(eng, ac, ior_job(0, 0.0, 8), 1.0));
  eng.spawn(admit_job(eng, ac, ior_job(1, 0.1, 8), 0.5));
  eng.run();
  ASSERT_EQ(ac.records().size(), 2u);
  EXPECT_EQ(ac.records()[1].action, harness::AdmissionAction::delayed);
  EXPECT_GT(ac.records()[1].wait(), 0.0);
  // The wait shows up as a begin/end span pair plus per-decision instants
  // and predicted_dload counter updates on the admission track.
  unsigned waits = 0, counters = 0, instants = 0;
  for (const trace::Event& e : rec.events()) {
    if (std::string_view(e.name) == "admit_wait") ++waits;
    if (std::string_view(e.name) == "predicted_dload") ++counters;
    if (e.kind == trace::EventKind::instant) ++instants;
  }
  EXPECT_EQ(waits, 2u);       // one begin + one end
  EXPECT_GE(counters, 4u);    // one per release + one per completion
  EXPECT_GE(instants, 2u);    // one decision instant per job
}

}  // namespace
}  // namespace pfsc
