#include <gtest/gtest.h>

#include "lustre/extent_map.hpp"
#include "support/rng.hpp"

namespace pfsc::lustre {
namespace {

TEST(ExtentMap, EmptyCoversNothing) {
  ExtentMap m;
  EXPECT_TRUE(m.covers(0, 0));
  EXPECT_FALSE(m.covers(0, 1));
  EXPECT_EQ(m.total_bytes(), 0u);
  EXPECT_EQ(m.end_offset(), 0u);
}

TEST(ExtentMap, SingleInsert) {
  ExtentMap m;
  m.insert(100, 50);
  EXPECT_TRUE(m.covers(100, 50));
  EXPECT_TRUE(m.covers(120, 10));
  EXPECT_FALSE(m.covers(99, 2));
  EXPECT_FALSE(m.covers(149, 2));
  EXPECT_EQ(m.total_bytes(), 50u);
  EXPECT_EQ(m.end_offset(), 150u);
}

TEST(ExtentMap, AdjacentExtentsCoalesce) {
  ExtentMap m;
  m.insert(0, 10);
  m.insert(10, 10);
  EXPECT_EQ(m.extent_count(), 1u);
  EXPECT_TRUE(m.covers(0, 20));
  EXPECT_EQ(m.total_bytes(), 20u);
}

TEST(ExtentMap, OverlappingExtentsCoalesce) {
  ExtentMap m;
  m.insert(0, 15);
  m.insert(10, 15);
  EXPECT_EQ(m.extent_count(), 1u);
  EXPECT_EQ(m.total_bytes(), 25u);
}

TEST(ExtentMap, ContainedInsertIsNoop) {
  ExtentMap m;
  m.insert(0, 100);
  m.insert(20, 30);
  EXPECT_EQ(m.extent_count(), 1u);
  EXPECT_EQ(m.total_bytes(), 100u);
}

TEST(ExtentMap, BridgingInsertMergesNeighbours) {
  ExtentMap m;
  m.insert(0, 10);
  m.insert(20, 10);
  EXPECT_EQ(m.extent_count(), 2u);
  m.insert(10, 10);
  EXPECT_EQ(m.extent_count(), 1u);
  EXPECT_TRUE(m.covers(0, 30));
}

TEST(ExtentMap, DisjointExtentsStaySeparate) {
  ExtentMap m;
  m.insert(0, 10);
  m.insert(100, 10);
  EXPECT_EQ(m.extent_count(), 2u);
  EXPECT_FALSE(m.covers(0, 110));
  EXPECT_EQ(m.covered_bytes(0, 110), 20u);
}

TEST(ExtentMap, CoveredBytesPartial) {
  ExtentMap m;
  m.insert(10, 10);
  m.insert(30, 10);
  EXPECT_EQ(m.covered_bytes(0, 100), 20u);
  EXPECT_EQ(m.covered_bytes(15, 20), 10u);  // 5 from first, 5 from second
  EXPECT_EQ(m.covered_bytes(50, 10), 0u);
  EXPECT_EQ(m.covered_bytes(10, 0), 0u);
}

TEST(ExtentMap, ZeroLengthInsertIgnored) {
  ExtentMap m;
  m.insert(5, 0);
  EXPECT_EQ(m.extent_count(), 0u);
}

TEST(ExtentMap, ClearResets) {
  ExtentMap m;
  m.insert(0, 10);
  m.clear();
  EXPECT_EQ(m.total_bytes(), 0u);
  EXPECT_FALSE(m.covers(0, 1));
}

// Property test: random insertion order against a reference bitmap.
class ExtentMapRandom : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ExtentMapRandom, MatchesReferenceBitmap) {
  Rng rng(GetParam());
  constexpr Bytes kSpan = 4096;
  std::vector<bool> ref(kSpan, false);
  ExtentMap m;
  for (int i = 0; i < 200; ++i) {
    const Bytes off = rng.uniform(kSpan - 1);
    const Bytes len = 1 + rng.uniform(std::min<Bytes>(kSpan - off, 64) - 1 + 1);
    m.insert(off, len);
    for (Bytes b = off; b < off + len && b < kSpan; ++b) ref[b] = true;
  }
  Bytes ref_total = 0;
  for (bool b : ref) ref_total += b ? 1 : 0;
  EXPECT_EQ(m.total_bytes(), ref_total);
  // Spot-check coverage queries.
  for (int i = 0; i < 200; ++i) {
    const Bytes off = rng.uniform(kSpan - 1);
    const Bytes len = 1 + rng.uniform(32);
    bool ref_covers = off + len <= kSpan;
    Bytes ref_count = 0;
    for (Bytes b = off; b < off + len && b < kSpan; ++b) {
      if (ref[b]) ++ref_count; else ref_covers = false;
    }
    EXPECT_EQ(m.covers(off, len), ref_covers) << "off=" << off << " len=" << len;
    EXPECT_EQ(m.covered_bytes(off, len), ref_count);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExtentMapRandom,
                         ::testing::Values(1ull, 2ull, 3ull, 5ull, 8ull, 13ull));

}  // namespace
}  // namespace pfsc::lustre
