// Tests for the extended IOR modes (file-per-process, reorder-tasks reads)
// and the background-noise injector.
#include <gtest/gtest.h>

#include "harness/scenario.hpp"
#include "ior/ior.hpp"
#include "plfs/plfs.hpp"

namespace pfsc::ior {
namespace {

using lustre::Errno;

Config small(mpiio::Driver driver) {
  Config cfg;
  cfg.block_size = 1_MiB;
  cfg.transfer_size = 256_KiB;
  cfg.segment_count = 2;
  cfg.hints.driver = driver;
  cfg.hints.striping_factor = 4;
  cfg.hints.striping_unit = 1_MiB;
  return cfg;
}

TEST(IorFpp, CreatesOneFilePerRank) {
  sim::Engine eng;
  lustre::FileSystem fs(eng, hw::tiny_test_platform(), 9);
  mpi::Runtime rt(fs, 4, 4);
  Config cfg = small(mpiio::Driver::ad_lustre);
  cfg.file_per_process = true;
  const Result res = run_ior(rt, cfg);
  EXPECT_EQ(res.err, Errno::ok);
  EXPECT_TRUE(res.verified);
  for (int r = 0; r < 4; ++r) {
    const lustre::Inode* node = fs.find("/ior.dat." + std::to_string(r));
    ASSERT_NE(node, nullptr) << "rank " << r;
    EXPECT_EQ(node->size, 2u * 1_MiB);
    EXPECT_TRUE(node->written.covers(0, 2u * 1_MiB));
  }
  EXPECT_EQ(fs.find("/ior.dat"), nullptr);  // no shared file in -F mode
}

TEST(IorFpp, ReadBackWorks) {
  sim::Engine eng;
  lustre::FileSystem fs(eng, hw::tiny_test_platform(), 9);
  mpi::Runtime rt(fs, 4, 4);
  Config cfg = small(mpiio::Driver::ad_lustre);
  cfg.file_per_process = true;
  cfg.read_file = true;
  const Result res = run_ior(rt, cfg);
  EXPECT_EQ(res.err, Errno::ok);
  EXPECT_GT(res.read_mbps, 0.0);
}

TEST(IorFpp, WorksWithPlfs) {
  sim::Engine eng;
  lustre::FileSystem fs(eng, hw::tiny_test_platform(), 9);
  mpi::Runtime rt(fs, 4, 4);
  plfs::Plfs plfs(fs);
  Config cfg = small(mpiio::Driver::ad_plfs);
  cfg.file_per_process = true;
  const Result res = run_ior(rt, cfg, &plfs);
  EXPECT_EQ(res.err, Errno::ok);
  EXPECT_TRUE(res.verified);
  // Four containers, one per rank.
  for (int r = 0; r < 4; ++r) {
    EXPECT_TRUE(plfs.is_container("/ior.dat." + std::to_string(r)));
  }
}

TEST(IorReorder, ShiftedReadsSucceedAndCoverForeignData) {
  sim::Engine eng;
  lustre::FileSystem fs(eng, hw::tiny_test_platform(), 9);
  mpi::Runtime rt(fs, 4, 4);
  Config cfg = small(mpiio::Driver::ad_lustre);
  cfg.read_file = true;
  cfg.reorder_tasks = 1;  // rank r reads rank (r+1)'s blocks
  cfg.use_collective = false;  // independent reads hit read_at directly
  const Result res = run_ior(rt, cfg);
  EXPECT_EQ(res.err, Errno::ok);
  EXPECT_GT(res.read_mbps, 0.0);
}

TEST(IorReorder, ShiftWrapsAround) {
  sim::Engine eng;
  lustre::FileSystem fs(eng, hw::tiny_test_platform(), 9);
  mpi::Runtime rt(fs, 4, 4);
  Config cfg = small(mpiio::Driver::ad_lustre);
  cfg.read_file = true;
  cfg.reorder_tasks = 7;  // 7 mod 4 = 3
  const Result res = run_ior(rt, cfg);
  EXPECT_EQ(res.err, Errno::ok);
}

TEST(Noise, BackgroundWritersConsumeBandwidth) {
  auto run = [](unsigned writers) {
    harness::Scenario spec;
    spec.platform = hw::tiny_test_platform();
    spec.nprocs = 8;
    spec.procs_per_node = 4;
    spec.ior = small(mpiio::Driver::ad_lustre);
    spec.ior.hints.striping_factor = 8;
    spec.ior.block_size = 4_MiB;
    spec.ior.transfer_size = 1_MiB;
    spec.ior.segment_count = 8;
    spec.noise.writers = writers;
    spec.noise.bytes_per_writer = 64_MiB;
    spec.noise.stripes = 2;
    const auto res = harness::run_scenario(spec, 123).ior;
    PFSC_ASSERT(res.err == lustre::Errno::ok);
    return res.write_mbps;
  };
  const double quiet = run(0);
  const double noisy = run(6);
  EXPECT_LT(noisy, quiet);
  EXPECT_GT(noisy, 0.0);
}

TEST(Noise, WritersActuallyWriteData) {
  sim::Engine eng;
  lustre::FileSystem fs(eng, hw::tiny_test_platform(), 5);
  std::vector<std::unique_ptr<lustre::Client>> clients;
  harness::NoiseSpec noise;
  noise.writers = 3;
  noise.bytes_per_writer = 8_MiB;
  harness::spawn_noise(fs, clients, noise, 1);
  eng.run();
  EXPECT_EQ(fs.total_bytes_written(), 3u * 8_MiB);
  EXPECT_EQ(clients.size(), 3u);
}

}  // namespace
}  // namespace pfsc::ior
