// Tests for PLFS container removal.
#include <gtest/gtest.h>

#include "plfs/plfs.hpp"

namespace pfsc::plfs {
namespace {

using lustre::Errno;

struct PlfsRmFixture : ::testing::Test {
  sim::Engine eng;
  lustre::FileSystem fs{eng, hw::tiny_test_platform(), 41};
  lustre::Client client{fs, "c"};
  Plfs plfs{fs};

  template <typename T>
  T run(sim::Co<T> op) {
    T out{};
    eng.spawn([](sim::Co<T> op, T& out) -> sim::Task {
      out = co_await std::move(op);
    }(std::move(op), out));
    eng.run();
    return out;
  }
};

TEST_F(PlfsRmFixture, RemovesContainerAndReleasesObjects) {
  for (int rank = 0; rank < 4; ++rank) {
    auto h = run(plfs.open_write(client, "/ckpt", rank));
    ASSERT_TRUE(h.ok());
    ASSERT_EQ(run(plfs.write(client, h.value, static_cast<Bytes>(rank) * 1_MiB, 1_MiB)),
              Errno::ok);
    ASSERT_EQ(run(plfs.close_write(client, h.value)), Errno::ok);
  }
  auto usage_before = fs.objects_per_ost();
  std::uint64_t objects_before = 0;
  for (auto u : usage_before) objects_before += u;
  EXPECT_GT(objects_before, 0u);

  EXPECT_EQ(run(plfs.remove(client, "/ckpt")), Errno::ok);
  EXPECT_FALSE(fs.exists("/ckpt"));
  EXPECT_FALSE(plfs.is_container("/ckpt"));
  std::uint64_t objects_after = 0;
  for (auto u : fs.objects_per_ost()) objects_after += u;
  EXPECT_EQ(objects_after, 0u);
}

TEST_F(PlfsRmFixture, RemoveOfNonContainerFails) {
  EXPECT_EQ(run(plfs.remove(client, "/missing")), Errno::enoent);
  ASSERT_TRUE(run(client.mkdir("/plain")).ok());
  EXPECT_EQ(run(plfs.remove(client, "/plain")), Errno::enoent);
  EXPECT_TRUE(fs.exists("/plain"));  // untouched
}

TEST_F(PlfsRmFixture, ContainerCanBeRecreatedAfterRemove) {
  auto h = run(plfs.open_write(client, "/ckpt", 0));
  ASSERT_TRUE(h.ok());
  ASSERT_EQ(run(plfs.write(client, h.value, 0, 1_MiB)), Errno::ok);
  ASSERT_EQ(run(plfs.close_write(client, h.value)), Errno::ok);
  ASSERT_EQ(run(plfs.remove(client, "/ckpt")), Errno::ok);

  auto h2 = run(plfs.open_write(client, "/ckpt", 0));
  ASSERT_TRUE(h2.ok());
  ASSERT_EQ(run(plfs.write(client, h2.value, 0, 2_MiB)), Errno::ok);
  ASSERT_EQ(run(plfs.close_write(client, h2.value)), Errno::ok);
  auto rh = run(plfs.open_read(client, "/ckpt"));
  ASSERT_TRUE(rh.ok());
  // Only the new data is visible: the old shadow index is gone.
  EXPECT_EQ(rh.value.logical_size(), 2_MiB);
}

}  // namespace
}  // namespace pfsc::plfs
