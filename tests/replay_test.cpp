// Replay subsystem: joblog parsing/emission, Scenario lowering, and the
// bit-for-bit guarantee that replaying a log reproduces the hand-built
// scenario it describes.
//
// The parser tests pin the strictness contract (diagnostics carry
// origin:line and the offending field; malformed logs never half-parse)
// and round-trip canonicality (emit . parse == identity on emitted text).
// The golden test replays the bundled Fig. 3 quartet log and requires
// exact (==, not near) per-job bandwidth equality with the legacy
// Scenario::multi desugaring, plus pinned absolute numbers.
#include <gtest/gtest.h>

#include <string>

#include "harness/scenario.hpp"
#include "replay/log.hpp"

#ifndef PFSC_DATA_DIR
#define PFSC_DATA_DIR "data"
#endif

namespace pfsc::replay {
namespace {

using harness::JobKind;
using harness::JobSpec;
using harness::Scenario;

/// A log exercising every kind and every per-kind field.
JobLog sample_log() {
  JobLog log;
  log.procs_per_node = 8;
  JobSpec a;
  a.kind = JobKind::ior;
  a.job_id = 1;
  a.app = "vasp";
  a.nprocs = 16;
  a.ior.block_size = 4_MiB;
  a.ior.transfer_size = 1_MiB;
  a.ior.segment_count = 4;
  a.ior.hints.driver = mpiio::Driver::ad_lustre;
  a.ior.hints.striping_factor = 8;
  a.ior.hints.striping_unit = 1_MiB;
  a.ior.test_file = "/a.dat";
  a.ior.job_id = 1;
  JobSpec b;
  b.kind = JobKind::plfs;
  b.job_id = 2;
  b.arrival = 0.5;
  b.nprocs = 8;
  b.ior.segment_count = 2;
  b.ior.hints.driver = mpiio::Driver::ad_plfs;
  b.ior.test_file = "/b.dat";
  b.ior.job_id = 2;
  JobSpec c;
  c.kind = JobKind::probe_writer;
  c.job_id = 3;
  c.arrival = 1.25;
  c.nprocs = 2;
  c.bytes = 16_MiB;
  c.transfer_size = 1_MiB;
  c.target_ost = 7;
  JobSpec d;
  d.kind = JobKind::noise;
  d.job_id = lustre::sched::kNoiseJobBase;
  d.bytes = 64_MiB;
  d.transfer_size = 2_MiB;
  d.stripes = 3;
  d.stripe_size = 2_MiB;
  log.jobs = {a, b, c, d};
  return log;
}

// -- round trips ------------------------------------------------------------

TEST(JobLogRoundTrip, EmitParseEmitIsIdentity) {
  const JobLog log = sample_log();
  const std::string text = emit_joblog(log);
  const JobLog reparsed = parse_joblog(text, "<rt>");
  EXPECT_EQ(emit_joblog(reparsed), text);
  EXPECT_EQ(reparsed.procs_per_node, 8);
  ASSERT_EQ(reparsed.jobs.size(), 4u);
  EXPECT_EQ(reparsed.jobs[0].app, "vasp");
  EXPECT_EQ(reparsed.jobs[1].ior.hints.driver, mpiio::Driver::ad_plfs);
  EXPECT_EQ(reparsed.jobs[2].target_ost, 7);
  EXPECT_EQ(reparsed.jobs[3].stripes, 3u);
}

TEST(JobLogRoundTrip, ScenarioLoweringRoundTrips) {
  const JobLog log = sample_log();
  const Scenario s = to_scenario(log);
  EXPECT_EQ(s.procs_per_node, 8);
  EXPECT_EQ(s.workload, harness::Workload::jobs);
  const JobLog back = from_scenario(s);
  EXPECT_EQ(emit_joblog(back), emit_joblog(log));
}

TEST(JobLogRoundTrip, LegacyMultiExportsAndReplays) {
  // A legacy enum scenario exports its *desugared* job list, so the log is
  // replayable without knowing about Workload::multi at all.
  ior::Config cfg;
  cfg.segment_count = 2;
  cfg.hints.driver = mpiio::Driver::ad_lustre;
  cfg.hints.striping_factor = 4;
  cfg.hints.striping_unit = 1_MiB;
  Scenario legacy = Scenario::multi(3, 8, cfg);
  const JobLog log = from_scenario(legacy);
  ASSERT_EQ(log.jobs.size(), 3u);
  EXPECT_EQ(log.jobs[2].ior.test_file, "/ior.dat.2");
  EXPECT_EQ(log.jobs[2].job_id, 2u);

  const auto direct = harness::run_scenario(legacy, 99);
  const auto replayed = harness::run_scenario(to_scenario(log), 99);
  ASSERT_EQ(direct.per_job.size(), replayed.per_job.size());
  for (std::size_t j = 0; j < direct.per_job.size(); ++j) {
    EXPECT_EQ(direct.per_job[j].write_mbps, replayed.per_job[j].write_mbps);
  }
}

TEST(JobLogRoundTrip, ParsesItsOwnDoubleFormat) {
  JobLog log = sample_log();
  log.jobs[1].arrival = 0.1 + 0.2;  // 0.30000000000000004
  log.jobs[2].arrival = 1e-9;
  const JobLog reparsed = parse_joblog(emit_joblog(log), "<rt>");
  EXPECT_EQ(reparsed.jobs[1].arrival, log.jobs[1].arrival);
  EXPECT_EQ(reparsed.jobs[2].arrival, log.jobs[2].arrival);
}

// -- strict parsing ---------------------------------------------------------

void expect_parse_error(const std::string& text, const std::string& needle) {
  try {
    parse_joblog(text, "log");
    FAIL() << "expected UsageError containing '" << needle << "'";
  } catch (const UsageError& e) {
    EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
        << "actual message: " << e.what();
  }
}

TEST(JobLogParse, RejectsMissingHeader) {
  expect_parse_error("job id=0 kind=ior\n", "log:1: expected header");
  expect_parse_error("", "expected header");
}

TEST(JobLogParse, DiagnosticsCarryLineAndField) {
  const std::string head = "#PFSC-JOBLOG v1\n";
  expect_parse_error(head + "job id=0 kind=ior block=4Q\n",
                     "log:2: field 'block'");
  expect_parse_error(head + "\njob id=0 kind=ior segments=x\n",
                     "log:3: field 'segments'");
  expect_parse_error(head + "job id=0 kind=ior collective=yes\n",
                     "field 'collective': expected 0 or 1");
  expect_parse_error(head + "job id=0 kind=warp\n",
                     "field 'kind': expected one of: ior, plfs, probe, noise");
  expect_parse_error(head + "job id=0 kind=ior driver=ad_warp\n",
                     "field 'driver': expected one of: ad_ufs, ad_lustre");
  expect_parse_error(head + "job id=0 kind=ior arrival=-1\n",
                     "field 'arrival': must be non-negative");
}

TEST(JobLogParse, RejectsStructuralMistakes) {
  const std::string head = "#PFSC-JOBLOG v1\n";
  expect_parse_error(head + "job kind=ior\n", "missing required field 'id'");
  expect_parse_error(head + "job id=0\n", "missing required field 'kind'");
  expect_parse_error(head + "job id=0 kind=ior nprocs=4 nprocs=8\n",
                     "duplicate field 'nprocs'");
  expect_parse_error(head + "job id=0 kind=ior banana\n",
                     "expected key=value");
  expect_parse_error(head + "jobs id=0 kind=ior\n", "expected 'job'");
  expect_parse_error(head + "meta ppn=0\n", "field 'ppn': must be positive");
  expect_parse_error(head + "meta frobs=1\n", "unknown meta key");
  expect_parse_error(head + "job id=0 kind=ior\nmeta ppn=4\n",
                     "meta line must precede job lines");
  expect_parse_error(head + "meta ppn=4\nmeta ppn=8\n", "duplicate meta line");
}

TEST(JobLogParse, RejectsKindInappropriateFields) {
  const std::string head = "#PFSC-JOBLOG v1\n";
  // probe jobs have no IOR access pattern...
  expect_parse_error(head + "job id=0 kind=probe segments=4\n",
                     "field 'segments': unknown or not valid for kind=probe");
  // ...noise jobs occupy no ranks...
  expect_parse_error(head + "job id=0 kind=noise nprocs=4\n",
                     "field 'nprocs': unknown or not valid for kind=noise");
  // ...and plfs jobs cannot re-route their driver.
  expect_parse_error(head + "job id=0 kind=plfs driver=ad_lustre\n",
                     "field 'driver': unknown or not valid for kind=plfs");
}

TEST(JobLogParse, RejectsDuplicateJobIds) {
  EXPECT_THROW(
      to_scenario(parse_joblog("#PFSC-JOBLOG v1\n"
                               "job id=3 kind=ior\n"
                               "job id=3 kind=ior file=/other.dat\n",
                               "log")),
      UsageError);
}

TEST(JobLogParse, AcceptsCommentsAndBlankLines) {
  const JobLog log = parse_joblog(
      "#PFSC-JOBLOG v1\n"
      "# a fleet of one\n"
      "\n"
      "meta ppn=4\n"
      "job id=0 kind=ior app=solo\n",
      "log");
  EXPECT_EQ(log.procs_per_node, 4);
  ASSERT_EQ(log.jobs.size(), 1u);
  EXPECT_EQ(log.jobs[0].display_app(), "solo");
}

// -- bundled-log goldens ----------------------------------------------------

TEST(ReplayGolden, Fig3QuartetMatchesHandBuiltExactly) {
  const JobLog log =
      load_joblog(std::string(PFSC_DATA_DIR) + "/fig3_quartet.joblog");
  ASSERT_EQ(log.jobs.size(), 4u);

  ior::Config cfg;
  cfg.segment_count = 10;
  cfg.hints.driver = mpiio::Driver::ad_lustre;
  cfg.hints.striping_factor = 16;
  cfg.hints.striping_unit = 4_MiB;
  Scenario hand = Scenario::multi(4, 32, cfg);
  hand.procs_per_node = 16;

  const auto replayed = harness::run_scenario(to_scenario(log), 0xF3D0);
  const auto built = harness::run_scenario(hand, 0xF3D0);
  // Exact equality: the replayed quartet is bit-for-bit the legacy
  // four-job desugaring...
  ASSERT_EQ(replayed.per_job.size(), 4u);
  ASSERT_EQ(built.per_job.size(), 4u);
  for (std::size_t j = 0; j < 4; ++j) {
    EXPECT_EQ(replayed.per_job[j].err, lustre::Errno::ok);
    EXPECT_EQ(replayed.per_job[j].write_mbps, built.per_job[j].write_mbps);
  }
  // ...and the numbers themselves are pinned, like the other goldens.
  const double golden[4] = {
      826.69842165621571,
      827.73487650397442,
      828.70417787485655,
      825.15311617913835,
  };
  for (std::size_t j = 0; j < 4; ++j) {
    EXPECT_EQ(replayed.per_job[j].write_mbps, golden[j]) << "job " << j;
  }
}

TEST(ReplayGolden, DayMixRunsEveryKind) {
  const JobLog log =
      load_joblog(std::string(PFSC_DATA_DIR) + "/day_mix.joblog");
  const auto obs = harness::run_scenario(to_scenario(log), 7);
  // 4 rank jobs + 1 noise job; staggered arrivals take the free-running
  // path and still finish every job.
  ASSERT_EQ(obs.jobs.size(), 5u);
  ASSERT_EQ(obs.per_job.size(), 4u);
  for (const auto& r : obs.per_job) {
    EXPECT_EQ(r.err, lustre::Errno::ok);
    EXPECT_GT(r.write_mbps, 0.0);
  }
  EXPECT_GT(obs.total_mbps, 0.0);
  // Determinism: same log, same seed, same numbers.
  const auto again = harness::run_scenario(to_scenario(log), 7);
  for (std::size_t j = 0; j < obs.per_job.size(); ++j) {
    EXPECT_EQ(obs.per_job[j].write_mbps, again.per_job[j].write_mbps);
  }
}

// -- job-list execution semantics -------------------------------------------

TEST(JobListExec, ExplicitListMatchesLegacyDesugaring) {
  // from_jobs(list) where list == the multi desugaring must reproduce the
  // legacy run exactly (same event sequence, same numbers).
  ior::Config cfg;
  cfg.segment_count = 2;
  cfg.hints.driver = mpiio::Driver::ad_lustre;
  cfg.hints.striping_factor = 4;
  cfg.hints.striping_unit = 1_MiB;
  Scenario legacy = Scenario::multi(2, 8, cfg);
  Scenario list = Scenario::from_jobs(legacy.jobs_desugared());
  list.procs_per_node = legacy.procs_per_node;

  const auto a = harness::run_scenario(legacy, 11);
  const auto b = harness::run_scenario(list, 11);
  ASSERT_EQ(a.per_job.size(), b.per_job.size());
  for (std::size_t j = 0; j < a.per_job.size(); ++j) {
    EXPECT_EQ(a.per_job[j].write_mbps, b.per_job[j].write_mbps);
  }
  EXPECT_EQ(a.total_mbps, b.total_mbps);
  EXPECT_EQ(b.workload, harness::Workload::jobs);
}

TEST(JobListExec, NoiseSpecFoldsIntoJobList) {
  // The deprecated NoiseSpec alias and explicit JobKind::noise entries are
  // the same jobs: identical results either way.
  ior::Config cfg;
  cfg.segment_count = 2;
  Scenario with_field = Scenario::single_ior(cfg);
  with_field.nprocs = 8;
  with_field.noise.writers = 2;
  with_field.noise.bytes_per_writer = 16_MiB;

  Scenario with_jobs = Scenario::from_jobs(with_field.jobs_desugared());
  with_jobs.procs_per_node = with_field.procs_per_node;

  const auto a = harness::run_scenario(with_field, 5);
  const auto b = harness::run_scenario(with_jobs, 5);
  EXPECT_EQ(a.ior.write_mbps, b.ior.write_mbps);
  ASSERT_EQ(b.jobs.size(), 3u);
  EXPECT_EQ(b.jobs[1].job_id, lustre::sched::kNoiseJobBase);
  EXPECT_EQ(b.jobs[2].job_id, lustre::sched::kNoiseJobBase + 1);
}

TEST(JobListExec, TotalMbpsUniformAcrossWorkloads) {
  // Satellite fix: total_mbps and per_job populated for *every* workload.
  ior::Config cfg;
  cfg.segment_count = 2;
  Scenario single = Scenario::single_ior(cfg);
  single.nprocs = 8;
  const auto s = harness::run_scenario(single, 3);
  ASSERT_EQ(s.per_job.size(), 1u);
  EXPECT_EQ(s.total_mbps, s.metric);
  EXPECT_GT(s.total_mbps, 0.0);

  const auto p = harness::run_scenario(Scenario::probe(4, 8_MiB), 3);
  ASSERT_EQ(p.per_job.size(), 4u);
  double sum = 0.0;
  for (const auto& r : p.per_job) sum += r.write_mbps;
  EXPECT_EQ(p.total_mbps, sum);
  EXPECT_GT(p.total_mbps, 0.0);
}

TEST(JobListExec, StaggeredArrivalDelaysTheLateJob) {
  // Two identical jobs; the second arrives after the first finishes. Both
  // must see (near-)solo bandwidth, unlike the synchronized pair.
  ior::Config cfg;
  cfg.segment_count = 2;
  cfg.hints.driver = mpiio::Driver::ad_lustre;
  cfg.hints.striping_factor = 4;
  cfg.hints.striping_unit = 1_MiB;
  Scenario sync = Scenario::multi(2, 8, cfg);

  Scenario staggered = Scenario::from_jobs(sync.jobs_desugared());
  staggered.job_list[1].arrival = 3600.0;  // well past job 0's finish

  const auto base = harness::run_scenario(sync, 21);
  const auto lone = harness::run_scenario(staggered, 21);
  ASSERT_EQ(lone.per_job.size(), 2u);
  // Staggered jobs beat the contended synchronized pair.
  EXPECT_GT(lone.per_job[0].write_mbps, base.per_job[0].write_mbps);
  EXPECT_GT(lone.per_job[1].write_mbps, base.per_job[1].write_mbps);
  // And within ~1% of each other (both effectively solo).
  EXPECT_NEAR(lone.per_job[1].write_mbps / lone.per_job[0].write_mbps, 1.0,
              0.01);
}

TEST(JobListExec, ObservationEchoesTheJobList) {
  Scenario s = Scenario::probe(2, 4_MiB);
  const auto obs = harness::run_scenario(s, 1);
  ASSERT_EQ(obs.jobs.size(), 2u);
  EXPECT_EQ(obs.jobs[0].kind, JobKind::probe_writer);
  EXPECT_EQ(obs.workload, harness::Workload::probe);
}

TEST(JobListExec, ValidatesJobLists) {
  // Duplicate ids.
  {
    JobSpec a, b;
    a.job_id = b.job_id = 4;
    EXPECT_THROW(
        harness::run_scenario(Scenario::from_jobs({a, b}), 1), UsageError);
  }
  // Noise-only lists have no ranks to run.
  {
    JobSpec n;
    n.kind = JobKind::noise;
    EXPECT_THROW(harness::run_scenario(Scenario::from_jobs({n}), 1),
                 UsageError);
  }
  // Empty explicit list.
  {
    Scenario s;
    s.workload = harness::Workload::jobs;
    EXPECT_THROW(harness::run_scenario(s, 1), UsageError);
  }
  // kind=ior routed through ad_plfs must use kind=plfs.
  {
    JobSpec j;
    j.ior.hints.driver = mpiio::Driver::ad_plfs;
    EXPECT_THROW(harness::run_scenario(Scenario::from_jobs({j}), 1),
                 UsageError);
  }
}

}  // namespace
}  // namespace pfsc::replay
