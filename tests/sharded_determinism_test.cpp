// Sharded-run determinism: the whole point of the domain refactor is that
// --sim_domains only trades threads for wall-clock time, never results.
// Every test here runs one scenario at 1, 2, 3 and 8 domains and requires the
// observations — and, where traced, the exported Chrome JSON — to be
// IDENTICAL, compared with operator== on doubles and bytes, not with
// tolerances. The engine category is excluded from the traced runs: its
// dispatch-batch spans are per-engine bookkeeping ("engine.d3" tracks,
// batch boundaries set by window ends), the one layer that legitimately
// depends on the partition.
//
// These tests are also the designated TSan targets for the sharded code
// path (see .github/workflows/ci.yml): the window-barrier protocol claims
// race-freedom by construction, and this is where that claim meets the
// checker.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "harness/scenario.hpp"
#include "replay/analytics.hpp"
#include "trace/recorder.hpp"

namespace pfsc {
namespace {

/// Exact (bitwise) equality over everything a run reports. `what` labels
/// the domain count under test in failure output.
void expect_identical(const harness::Observation& base,
                      const harness::Observation& got, const char* what) {
  EXPECT_EQ(base.metric, got.metric) << what;
  EXPECT_EQ(base.total_mbps, got.total_mbps) << what;
  ASSERT_EQ(base.per_job.size(), got.per_job.size()) << what;
  for (std::size_t j = 0; j < base.per_job.size(); ++j) {
    EXPECT_EQ(base.per_job[j].err, got.per_job[j].err) << what << " job " << j;
    EXPECT_EQ(base.per_job[j].write_time, got.per_job[j].write_time)
        << what << " job " << j;
    EXPECT_EQ(base.per_job[j].read_time, got.per_job[j].read_time)
        << what << " job " << j;
    EXPECT_EQ(base.per_job[j].total_bytes, got.per_job[j].total_bytes)
        << what << " job " << j;
    EXPECT_EQ(base.per_job[j].write_mbps, got.per_job[j].write_mbps)
        << what << " job " << j;
    EXPECT_EQ(base.per_job[j].read_mbps, got.per_job[j].read_mbps)
        << what << " job " << j;
  }
  ASSERT_EQ(base.trace_summary.job_bytes.size(),
            got.trace_summary.job_bytes.size())
      << what;
  EXPECT_EQ(base.trace_summary.job_bytes, got.trace_summary.job_bytes) << what;
  EXPECT_EQ(base.trace_summary.ost_bytes, got.trace_summary.ost_bytes) << what;
  EXPECT_EQ(base.trace_summary.jain, got.trace_summary.jain) << what;
}

/// Run `s` at every domain count and compare against the single-engine
/// observation. Returns the observations for extra per-test checks.
std::vector<harness::Observation> sweep_domains(harness::Scenario s,
                                                std::uint64_t seed) {
  std::vector<harness::Observation> out;
  // 3 domains splits the servers across two uneven domains — the smallest
  // count where per-domain window ends actually differ between domains.
  for (const std::uint32_t domains : {1u, 2u, 3u, 8u}) {
    s.platform.sim_domains = domains;
    out.push_back(harness::run_scenario(s, seed));
  }
  expect_identical(out[0], out[1], "domains=2");
  expect_identical(out[0], out[2], "domains=3");
  expect_identical(out[0], out[3], "domains=8");
  return out;
}

TEST(ShardedDeterminism, MultiJobContention) {
  harness::Scenario s;
  s.workload = harness::Workload::multi;
  s.jobs = 4;
  s.nprocs = 32;
  s.procs_per_node = 16;
  s.ior.segment_count = 4;
  s.ior.hints.driver = mpiio::Driver::ad_lustre;
  s.ior.hints.striping_factor = 16;
  s.ior.hints.striping_unit = 4_MiB;
  sweep_domains(s, 0x5A4D01);
}

TEST(ShardedDeterminism, SingleIorJob) {
  harness::Scenario s;
  s.nprocs = 64;
  s.procs_per_node = 8;
  s.ior.segment_count = 4;
  s.ior.hints.driver = mpiio::Driver::ad_lustre;
  s.ior.hints.striping_factor = 32;
  s.ior.hints.striping_unit = 4_MiB;
  sweep_domains(s, 0x5A4D02);
}

TEST(ShardedDeterminism, ProbeWritersPinnedToOneOst) {
  harness::Scenario s;
  s.workload = harness::Workload::probe;
  s.writers = 6;
  s.bytes_per_writer = 8_MiB;
  sweep_domains(s, 0x5A4D03);
}

TEST(ShardedDeterminism, PlfsJobWithNoiseWriters) {
  harness::Scenario s = harness::Scenario::plfs_ior();
  s.nprocs = 32;
  s.procs_per_node = 16;
  s.ior.segment_count = 2;
  s.noise.writers = 3;
  s.noise.bytes_per_writer = 4_MiB;
  const auto obs = sweep_domains(s, 0x5A4D04);
  EXPECT_GT(obs[0].metric, 0.0);
}

TEST(ShardedDeterminism, StaggeredArrivalFleet) {
  std::vector<harness::JobSpec> jobs;
  for (int j = 0; j < 3; ++j) {
    harness::JobSpec spec;
    spec.kind = harness::JobKind::ior;
    spec.job_id = static_cast<std::uint32_t>(j);
    spec.nprocs = 16;
    spec.arrival = 0.05 * j;
    spec.ior.segment_count = 2;
    spec.ior.hints.driver = mpiio::Driver::ad_lustre;
    spec.ior.hints.striping_factor = 8;
    spec.ior.hints.striping_unit = 1_MiB;
    spec.ior.test_file = "/fleet/ior.dat." + std::to_string(j);
    jobs.push_back(spec);
  }
  harness::Scenario s = harness::Scenario::from_jobs(std::move(jobs));
  s.procs_per_node = 16;
  const auto obs = sweep_domains(s, 0x5A4D05);
  // The LASSi-style fleet report is derived from the Observation, so its
  // JSON must also be byte-identical across domain counts.
  const std::string base_report =
      replay::analyze_fleet(obs[0], s.platform).to_json();
  for (std::size_t i = 1; i < obs.size(); ++i) {
    EXPECT_EQ(base_report, replay::analyze_fleet(obs[i], s.platform).to_json());
  }
  EXPECT_FALSE(base_report.empty());
}

// The full-trace export must also be byte-identical: same events, same
// timestamps, same canonical order, regardless of which thread recorded
// each one. Cat::engine is masked out (see the file header).
TEST(ShardedDeterminism, FullTraceJsonBytesIdentical) {
  harness::Scenario s;
  s.workload = harness::Workload::multi;
  s.jobs = 2;
  s.nprocs = 16;
  s.procs_per_node = 16;
  s.ior.segment_count = 2;
  s.ior.hints.driver = mpiio::Driver::ad_lustre;
  s.ior.hints.striping_factor = 8;
  s.ior.hints.striping_unit = 1_MiB;
  s.trace.mode = trace::TraceMode::full;
  s.trace.categories = trace::kAllCats & ~trace::cat_bit(trace::Cat::engine);
  const auto obs = sweep_domains(s, 0x5A4D06);
  ASSERT_FALSE(obs[0].trace_json.empty());
  for (std::size_t i = 1; i < obs.size(); ++i) {
    EXPECT_EQ(obs[0].trace_json, obs[i].trace_json) << "sweep entry " << i;
  }
  EXPECT_EQ(obs[0].trace_summary.recorded_events,
            obs.back().trace_summary.recorded_events);
}

// A periodic trace sampler reads server-side state (sched queues, disk
// byte counts) from domain 0 mid-run, so make_shards silently falls back
// to the single engine whenever trace.interval > 0. This pins both halves
// of that contract: scenario_domain_threads reports the fallback (so
// ParallelRunner never reserves threads the run won't use), and the traced
// bytes are identical whatever --sim_domains asked for.
TEST(ShardedDeterminism, TraceIntervalSamplerFallsBackToSingleEngine) {
  harness::Scenario s;
  s.workload = harness::Workload::multi;
  s.jobs = 2;
  s.nprocs = 16;
  s.procs_per_node = 16;
  s.ior.segment_count = 2;
  s.ior.hints.driver = mpiio::Driver::ad_lustre;
  s.ior.hints.striping_factor = 8;
  s.ior.hints.striping_unit = 1_MiB;
  s.trace.mode = trace::TraceMode::full;
  s.trace.interval = 0.01;
  s.trace.categories = trace::kAllCats & ~trace::cat_bit(trace::Cat::engine);

  EXPECT_EQ(harness::scenario_domain_threads(s), 1u);
  const auto base = harness::run_scenario(s, 0x5A4D08);
  s.platform.sim_domains = 4;
  EXPECT_EQ(harness::scenario_domain_threads(s), 1u) << "sampler fallback";
  const auto got = harness::run_scenario(s, 0x5A4D08);
  expect_identical(base, got, "domains=4+sampler");
  ASSERT_FALSE(base.trace_json.empty());
  EXPECT_EQ(base.trace_json, got.trace_json);
}

// Admission-controlled fleets must shard like everything else: the
// controller keeps its own domain-0 bookkeeping (it never samples server
// counters), so its decisions — and the gated per-job numbers — are
// bit-identical at any domain count.
TEST(ShardedDeterminism, AdmissionControlledFleet) {
  std::vector<harness::JobSpec> jobs;
  for (int j = 0; j < 4; ++j) {
    harness::JobSpec spec;
    spec.kind = harness::JobKind::ior;
    spec.job_id = static_cast<std::uint32_t>(j);
    spec.nprocs = 16;
    spec.arrival = 0.05 * j;
    spec.ior.segment_count = 2;
    spec.ior.hints.driver = mpiio::Driver::ad_lustre;
    spec.ior.hints.striping_factor = 8;
    spec.ior.hints.striping_unit = 1_MiB;
    spec.ior.test_file = "/fleet/adm.dat." + std::to_string(j);
    jobs.push_back(spec);
  }
  harness::Scenario s = harness::Scenario::from_jobs(std::move(jobs));
  s.procs_per_node = 16;
  s.admission.policy = harness::AdmissionPolicy::threshold;
  s.admission.max_dload = 1.01;
  const auto obs = sweep_domains(s, 0x5A4D09);
  for (std::size_t i = 1; i < obs.size(); ++i) {
    ASSERT_EQ(obs[0].admissions.size(), obs[i].admissions.size());
    for (std::size_t r = 0; r < obs[0].admissions.size(); ++r) {
      EXPECT_EQ(obs[0].admissions[r].job_id, obs[i].admissions[r].job_id);
      EXPECT_EQ(obs[0].admissions[r].action, obs[i].admissions[r].action);
      EXPECT_EQ(obs[0].admissions[r].released, obs[i].admissions[r].released);
    }
  }
}

// An active adaptive controller samples server-side state (sched queues,
// per-job byte counters, object placement) from domain 0 every tick, so
// make_shards falls back to the single engine exactly like the periodic
// trace sampler does. This pins the contract at its strongest setting:
// --ctrl full fleet reports must be byte-identical whatever --sim_domains
// asked for.
TEST(ShardedDeterminism, ControllerFallsBackToSingleEngine) {
  std::vector<harness::JobSpec> jobs;
  for (int j = 0; j < 4; ++j) {
    harness::JobSpec spec;
    spec.kind = harness::JobKind::ior;
    spec.job_id = static_cast<std::uint32_t>(j);
    spec.nprocs = 16;
    spec.arrival = 0.05 * j;
    spec.ior.segment_count = 2;
    spec.ior.hints.driver = mpiio::Driver::ad_lustre;
    spec.ior.hints.striping_factor = 8;
    spec.ior.hints.striping_unit = 1_MiB;
    spec.ior.test_file = "/fleet/ctrl.dat." + std::to_string(j);
    jobs.push_back(spec);
  }
  harness::Scenario s = harness::Scenario::from_jobs(std::move(jobs));
  s.procs_per_node = 16;
  s.ctrl.mode = ctrl::CtrlMode::full;
  s.ctrl.interval = 0.02;

  EXPECT_EQ(harness::scenario_domain_threads(s), 1u) << "controller fallback";
  const auto base = harness::run_scenario(s, 0x5A4D0A);
  s.platform.sim_domains = 4;
  EXPECT_EQ(harness::scenario_domain_threads(s), 1u) << "controller fallback";
  const auto got = harness::run_scenario(s, 0x5A4D0A);
  expect_identical(base, got, "domains=4+controller");

  ASSERT_EQ(base.ctrl_actions.size(), got.ctrl_actions.size());
  for (std::size_t i = 0; i < base.ctrl_actions.size(); ++i) {
    EXPECT_EQ(base.ctrl_actions[i].at, got.ctrl_actions[i].at);
    EXPECT_EQ(base.ctrl_actions[i].endpoint, got.ctrl_actions[i].endpoint);
    EXPECT_EQ(base.ctrl_actions[i].rule, got.ctrl_actions[i].rule);
    EXPECT_EQ(base.ctrl_actions[i].detail, got.ctrl_actions[i].detail);
  }
  const std::string base_report =
      replay::analyze_fleet(base, s.platform).to_json();
  EXPECT_EQ(base_report, replay::analyze_fleet(got, s.platform).to_json());
  EXPECT_NE(base_report.find("\"adaptation\""), std::string::npos);
}

// sim_domains = 0 means auto (hardware concurrency, clamped); it must
// behave like any other value — same results, no surprises.
TEST(ShardedDeterminism, AutoDomainsMatchesSingle) {
  harness::Scenario s;
  s.workload = harness::Workload::multi;
  s.jobs = 2;
  s.nprocs = 16;
  s.procs_per_node = 16;
  s.ior.segment_count = 2;
  s.ior.hints.driver = mpiio::Driver::ad_lustre;
  s.ior.hints.striping_factor = 8;
  s.ior.hints.striping_unit = 1_MiB;
  const auto base = harness::run_scenario(s, 0x5A4D07);
  s.platform.sim_domains = 0;
  const auto got = harness::run_scenario(s, 0x5A4D07);
  EXPECT_GT(base.metric, 0.0);
  expect_identical(base, got, "domains=auto");
}

}  // namespace
}  // namespace pfsc
