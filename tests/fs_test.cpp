#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <set>

#include "lustre/fs.hpp"
#include "lustre/lfs.hpp"

namespace pfsc::lustre {
namespace {

struct FsFixture : ::testing::Test {
  sim::Engine eng;
  hw::PlatformParams params = hw::tiny_test_platform();
  FileSystem fs{eng, hw::tiny_test_platform(), 42};

  /// Run a single metadata coroutine to completion and return its result.
  template <typename T>
  T run(sim::Co<T> op) {
    T out{};
    eng.spawn([](sim::Co<T> op, T& out) -> sim::Task {
      out = co_await std::move(op);
    }(std::move(op), out));
    eng.run();
    return out;
  }
};

TEST_F(FsFixture, SplitPath) {
  using V = std::vector<std::string_view>;
  EXPECT_EQ(split_path("/a/b/c"), (V{"a", "b", "c"}));
  EXPECT_EQ(split_path("a/b"), (V{"a", "b"}));
  EXPECT_EQ(split_path("//a//b/"), (V{"a", "b"}));
  EXPECT_TRUE(split_path("/").empty());
  EXPECT_TRUE(split_path("").empty());
}

TEST_F(FsFixture, CreateAppliesDefaults) {
  auto r = run(fs.create("/f", StripeSettings{}));
  ASSERT_TRUE(r.ok());
  const Inode& node = fs.inode(r.value);
  EXPECT_EQ(node.layout.stripe_count(), params.default_stripe_count);
  EXPECT_EQ(node.layout.stripe_size, params.default_stripe_size);
  EXPECT_FALSE(node.is_dir);
  EXPECT_EQ(node.size, 0u);
}

TEST_F(FsFixture, CreateHonoursExplicitSettings) {
  auto r = run(fs.create("/f", StripeSettings{4, 2_MiB, -1}));
  ASSERT_TRUE(r.ok());
  const Inode& node = fs.inode(r.value);
  EXPECT_EQ(node.layout.stripe_count(), 4u);
  EXPECT_EQ(node.layout.stripe_size, 2_MiB);
  // Distinct OSTs.
  std::set<OstIndex> distinct(node.layout.osts.begin(), node.layout.osts.end());
  EXPECT_EQ(distinct.size(), 4u);
}

TEST_F(FsFixture, CreateClampsToMaxStripes) {
  auto r = run(fs.create("/f", StripeSettings{1000, 1_MiB, -1}));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(fs.inode(r.value).layout.stripe_count(), params.max_stripe_count);
}

TEST_F(FsFixture, StripeOffsetPinsOsts) {
  auto r = run(fs.create("/f", StripeSettings{3, 1_MiB, 5}));
  ASSERT_TRUE(r.ok());
  const auto& osts = fs.inode(r.value).layout.osts;
  ASSERT_EQ(osts.size(), 3u);
  EXPECT_EQ(osts[0], 5u);
  EXPECT_EQ(osts[1], 6u);
  EXPECT_EQ(osts[2], 7u);
}

TEST_F(FsFixture, StripeOffsetWrapsAround) {
  auto r = run(fs.create("/f", StripeSettings{2, 1_MiB, 7}));
  ASSERT_TRUE(r.ok());
  const auto& osts = fs.inode(r.value).layout.osts;
  EXPECT_EQ(osts[0], 7u);
  EXPECT_EQ(osts[1], 0u);
}

TEST_F(FsFixture, DuplicateCreateFails) {
  ASSERT_TRUE(run(fs.create("/f", StripeSettings{})).ok());
  auto r = run(fs.create("/f", StripeSettings{}));
  EXPECT_EQ(r.err, Errno::eexist);
}

TEST_F(FsFixture, CreateInMissingDirectoryFails) {
  auto r = run(fs.create("/no/such/f", StripeSettings{}));
  EXPECT_EQ(r.err, Errno::enoent);
}

TEST_F(FsFixture, MkdirAndNesting) {
  ASSERT_TRUE(run(fs.mkdir("/a")).ok());
  ASSERT_TRUE(run(fs.mkdir("/a/b")).ok());
  ASSERT_TRUE(run(fs.create("/a/b/f", StripeSettings{})).ok());
  EXPECT_TRUE(fs.exists("/a/b/f"));
  EXPECT_FALSE(fs.exists("/a/c"));
  auto dup = run(fs.mkdir("/a"));
  EXPECT_EQ(dup.err, Errno::eexist);
}

TEST_F(FsFixture, OpenDirectoryFails) {
  ASSERT_TRUE(run(fs.mkdir("/d")).ok());
  auto r = run(fs.open("/d"));
  EXPECT_EQ(r.err, Errno::eisdir);
}

TEST_F(FsFixture, OpenMissingFails) {
  auto r = run(fs.open("/nope"));
  EXPECT_EQ(r.err, Errno::enoent);
}

TEST_F(FsFixture, ReaddirListsEntries) {
  ASSERT_TRUE(run(fs.mkdir("/d")).ok());
  ASSERT_TRUE(run(fs.create("/d/x", StripeSettings{})).ok());
  ASSERT_TRUE(run(fs.create("/d/y", StripeSettings{})).ok());
  auto r = run(fs.readdir("/d"));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value, (std::vector<std::string>{"x", "y"}));
}

TEST_F(FsFixture, UnlinkReleasesObjects) {
  auto r = run(fs.create("/f", StripeSettings{4, 1_MiB, -1}));
  ASSERT_TRUE(r.ok());
  auto usage_before = fs.objects_per_ost();
  EXPECT_EQ(std::accumulate(usage_before.begin(), usage_before.end(), 0ull), 4ull);
  EXPECT_EQ(run(fs.unlink("/f")), Errno::ok);
  auto usage_after = fs.objects_per_ost();
  EXPECT_EQ(std::accumulate(usage_after.begin(), usage_after.end(), 0ull), 0ull);
  EXPECT_FALSE(fs.exists("/f"));
}

TEST_F(FsFixture, UnlinkNonEmptyDirectoryFails) {
  ASSERT_TRUE(run(fs.mkdir("/d")).ok());
  ASSERT_TRUE(run(fs.create("/d/f", StripeSettings{})).ok());
  EXPECT_EQ(run(fs.unlink("/d")), Errno::einval);
  EXPECT_EQ(run(fs.unlink("/d/f")), Errno::ok);
  EXPECT_EQ(run(fs.unlink("/d")), Errno::ok);
}

TEST_F(FsFixture, DirDefaultStripingInherited) {
  ASSERT_TRUE(run(fs.mkdir("/d")).ok());
  EXPECT_EQ(run(fs.set_dir_stripe("/d", StripeSettings{4, 4_MiB, -1})), Errno::ok);
  // New subdirectories inherit the default (Lustre semantics).
  ASSERT_TRUE(run(fs.mkdir("/d/sub")).ok());
  auto r = run(fs.create("/d/sub/f", StripeSettings{}));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(fs.inode(r.value).layout.stripe_count(), 4u);
  EXPECT_EQ(fs.inode(r.value).layout.stripe_size, 4_MiB);
  // Explicit settings override the directory default.
  auto r2 = run(fs.create("/d/sub/g", StripeSettings{1, 1_MiB, -1}));
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(fs.inode(r2.value).layout.stripe_count(), 1u);
}

TEST_F(FsFixture, FailedOstExcludedFromAllocation) {
  fs.fail_ost(0);
  fs.fail_ost(1);
  EXPECT_EQ(fs.healthy_ost_count(), params.ost_count - 2);
  for (int i = 0; i < 20; ++i) {
    auto r = run(fs.create("/f" + std::to_string(i), StripeSettings{3, 1_MiB, -1}));
    ASSERT_TRUE(r.ok());
    for (OstIndex ost : fs.inode(r.value).layout.osts) {
      EXPECT_NE(ost, 0u);
      EXPECT_NE(ost, 1u);
    }
  }
}

TEST_F(FsFixture, EnospcWhenTooFewHealthyOsts) {
  for (OstIndex i = 0; i < params.ost_count - 1; ++i) fs.fail_ost(i);
  auto r = run(fs.create("/f", StripeSettings{2, 1_MiB, -1}));
  EXPECT_EQ(r.err, Errno::enospc);
  fs.restore_ost(0);
  auto r2 = run(fs.create("/f", StripeSettings{2, 1_MiB, -1}));
  EXPECT_TRUE(r2.ok());
}

TEST_F(FsFixture, OccupancyAndCollisionHistogram) {
  auto a = run(fs.create("/a", StripeSettings{2, 1_MiB, 0}));  // OST 0,1
  auto b = run(fs.create("/b", StripeSettings{2, 1_MiB, 1}));  // OST 1,2
  ASSERT_TRUE(a.ok() && b.ok());
  const std::vector<InodeId> files{a.value, b.value};
  const auto occ = fs.ost_occupancy(files);
  EXPECT_EQ(occ[0], 1u);
  EXPECT_EQ(occ[1], 2u);
  EXPECT_EQ(occ[2], 1u);
  const auto hist = fs.collision_histogram(files);
  ASSERT_EQ(hist.size(), 3u);
  EXPECT_EQ(hist[0], params.ost_count - 3);
  EXPECT_EQ(hist[1], 2u);
  EXPECT_EQ(hist[2], 1u);
}

TEST_F(FsFixture, FilesUnderRecurses) {
  ASSERT_TRUE(run(fs.mkdir("/d")).ok());
  ASSERT_TRUE(run(fs.mkdir("/d/s")).ok());
  ASSERT_TRUE(run(fs.create("/d/f1", StripeSettings{})).ok());
  ASSERT_TRUE(run(fs.create("/d/s/f2", StripeSettings{})).ok());
  EXPECT_EQ(fs.files_under("/d").size(), 2u);
  EXPECT_EQ(fs.files_under("/d/s").size(), 1u);
  EXPECT_TRUE(fs.files_under("/missing").empty());
}

TEST_F(FsFixture, RandomAllocationBalancesOverManyFiles) {
  for (int i = 0; i < 400; ++i) {
    ASSERT_TRUE(run(fs.create("/f" + std::to_string(i),
                              StripeSettings{2, 1_MiB, -1}))
                    .ok());
  }
  const auto usage = fs.objects_per_ost();
  // 800 objects over 8 OSTs: expect each to land near 100.
  for (auto u : usage) {
    EXPECT_GT(u, 60u);
    EXPECT_LT(u, 140u);
  }
}

TEST_F(FsFixture, RoundRobinPolicyIsPerfectlyEven) {
  sim::Engine eng2;
  FileSystem rr(eng2, hw::tiny_test_platform(), 1, AllocPolicy::round_robin);
  auto run2 = [&](auto op) {
    Result<InodeId> out{};
    eng2.spawn([](decltype(op) o, Result<InodeId>& res) -> sim::Task {
      res = co_await std::move(o);
    }(std::move(op), out));
    eng2.run();
    return out;
  };
  for (int i = 0; i < 16; ++i) {
    ASSERT_TRUE(run2(rr.create("/f" + std::to_string(i),
                               StripeSettings{2, 1_MiB, -1}))
                    .ok());
  }
  for (auto u : rr.objects_per_ost()) EXPECT_EQ(u, 4u);
}

TEST_F(FsFixture, MetadataOpsCostSimulatedTime) {
  EXPECT_DOUBLE_EQ(eng.now(), 0.0);
  ASSERT_TRUE(run(fs.create("/f", StripeSettings{})).ok());
  EXPECT_GT(eng.now(), 0.0);
}

TEST_F(FsFixture, LfsGetstripeReportsLayout) {
  ASSERT_TRUE(run(fs.create("/f", StripeSettings{3, 2_MiB, 0})).ok());
  auto info = lfs_getstripe(fs, "/f");
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info.value.stripe_count, 3u);
  EXPECT_EQ(info.value.stripe_size, 2_MiB);
  EXPECT_EQ(info.value.osts.size(), 3u);
  EXPECT_EQ(lfs_getstripe(fs, "/missing").err, Errno::enoent);
}

TEST_F(FsFixture, LfsGetstripeDirectoryDefaults) {
  ASSERT_TRUE(run(fs.mkdir("/d")).ok());
  auto before = lfs_getstripe(fs, "/d");
  ASSERT_TRUE(before.ok());
  EXPECT_EQ(before.value.stripe_count, params.default_stripe_count);
  EXPECT_EQ(run(lfs_setstripe(fs, "/d", StripeSettings{4, 4_MiB, -1})), Errno::ok);
  auto after = lfs_getstripe(fs, "/d");
  EXPECT_EQ(after.value.stripe_count, 4u);
  EXPECT_EQ(after.value.stripe_size, 4_MiB);
}

TEST_F(FsFixture, LfsDfReportsUsage) {
  ASSERT_TRUE(run(fs.create("/f", StripeSettings{2, 1_MiB, 0})).ok());
  fs.fail_ost(3);
  const auto df = lfs_df(fs);
  ASSERT_EQ(df.size(), params.ost_count);
  EXPECT_EQ(df[0].objects, 1u);
  EXPECT_EQ(df[1].objects, 1u);
  EXPECT_TRUE(df[3].failed);
  EXPECT_FALSE(df[0].failed);
}

}  // namespace
}  // namespace pfsc::lustre
