#include <gtest/gtest.h>

#include <vector>

#include "hw/disk.hpp"

namespace pfsc::hw {
namespace {

DiskParams simple_params() {
  DiskParams p;
  p.sequential_bw = 100.0;  // 100 B/s so math is easy
  p.seek_time = 1.0;
  p.per_request_overhead = 0.0;
  p.raid_full_stripe = 0;  // no RMW penalty unless a test enables it
  p.rmw_factor = 0.5;
  p.read_factor = 1.0;
  p.batch = 4;
  p.reorder_window = 0;  // strict contiguity: seeks are observable
  return p;
}

sim::Task submit_one(sim::Engine& eng, DiskModel& disk, DiskModel::StreamId s,
                     Bytes off, Bytes len, bool write, std::vector<double>& done) {
  co_await disk.submit(s, off, len, write);
  done.push_back(eng.now());
}

TEST(Disk, FirstRequestPaysOneSeek) {
  sim::Engine eng;
  DiskModel disk(eng, simple_params());
  std::vector<double> done;
  eng.spawn(submit_one(eng, disk, 1, 0, 100, true, done));
  eng.run_until(100.0);
  ASSERT_EQ(done.size(), 1u);
  EXPECT_DOUBLE_EQ(done[0], 2.0);  // 1s seek + 100B/100Bps
  EXPECT_EQ(disk.stream_switches(), 1u);
}

TEST(Disk, SequentialSameStreamAvoidsSeeks) {
  sim::Engine eng;
  DiskModel disk(eng, simple_params());
  std::vector<double> done;
  // 3 contiguous requests from one stream: one seek then pure streaming.
  eng.spawn([](sim::Engine& e, DiskModel& d, std::vector<double>& out) -> sim::Task {
    co_await d.submit(1, 0, 100, true);
    co_await d.submit(1, 100, 100, true);
    co_await d.submit(1, 200, 100, true);
    out.push_back(e.now());
  }(eng, disk, done));
  eng.run_until(100.0);
  ASSERT_EQ(done.size(), 1u);
  EXPECT_DOUBLE_EQ(done[0], 4.0);  // 1 seek + 3 * 1s transfer
  EXPECT_EQ(disk.stream_switches(), 1u);
}

TEST(Disk, DiscontiguousOffsetWithinStreamSeeks) {
  sim::Engine eng;
  DiskModel disk(eng, simple_params());
  std::vector<double> done;
  eng.spawn([](sim::Engine& e, DiskModel& d, std::vector<double>& out) -> sim::Task {
    co_await d.submit(1, 0, 100, true);
    co_await d.submit(1, 500, 100, true);  // hole: must reposition
    out.push_back(e.now());
  }(eng, disk, done));
  eng.run_until(100.0);
  EXPECT_DOUBLE_EQ(done[0], 4.0);  // 2 seeks + 2 transfers
}

TEST(Disk, InterleavedStreamsThrash) {
  sim::Engine eng;
  DiskModel disk(eng, simple_params());
  std::vector<double> done;
  // Two streams, requests arriving alternately but queued up front: the
  // elevator batches up to 4 per stream, so 4+4 requests = 2 switches.
  eng.spawn([](DiskModel& d, std::vector<double>& out, sim::Engine& e) -> sim::Task {
    for (int i = 0; i < 4; ++i) co_await d.submit(1, static_cast<Bytes>(i) * 100, 100, true);
    out.push_back(e.now());
  }(disk, done, eng));
  eng.spawn([](DiskModel& d, std::vector<double>& out, sim::Engine& e) -> sim::Task {
    for (int i = 0; i < 4; ++i) co_await d.submit(2, static_cast<Bytes>(i) * 100, 100, true);
    out.push_back(e.now());
  }(disk, done, eng));
  eng.run_until(1000.0);
  ASSERT_EQ(done.size(), 2u);
  EXPECT_EQ(disk.requests_serviced(), 8u);
  EXPECT_EQ(disk.bytes_serviced(), 800u);
  // With per-request round robin (each stream has one queued request at a
  // time because submitters are synchronous) every service switches stream.
  EXPECT_GE(disk.stream_switches(), 7u);
}

TEST(Disk, ElevatorBatchLimitsSwitching) {
  sim::Engine eng;
  auto params = simple_params();
  params.batch = 2;
  DiskModel disk(eng, params);
  std::vector<double> done;
  // Queue 4 requests from each of two streams all at once (async spawns).
  for (int s = 1; s <= 2; ++s) {
    for (int i = 0; i < 4; ++i) {
      eng.spawn(submit_one(eng, disk, static_cast<DiskModel::StreamId>(s),
                           static_cast<Bytes>(i) * 100, 100, true, done));
    }
  }
  eng.run_until(1000.0);
  ASSERT_EQ(done.size(), 8u);
  // batch=2: serve 2 of A, 2 of B, 2 of A, 2 of B -> 4 switches.
  EXPECT_EQ(disk.stream_switches(), 4u);
}

TEST(Disk, ReorderWindowAbsorbsSmallJumps) {
  sim::Engine eng;
  auto params = simple_params();
  params.reorder_window = 1000;
  DiskModel disk(eng, params);
  std::vector<double> done;
  eng.spawn([](sim::Engine& e, DiskModel& d, std::vector<double>& out) -> sim::Task {
    co_await d.submit(1, 0, 100, true);
    co_await d.submit(1, 600, 100, true);   // 500-byte jump: absorbed
    co_await d.submit(1, 5000, 100, true);  // 4300-byte jump: real seek
    out.push_back(e.now());
  }(eng, disk, done));
  eng.run_until(100.0);
  ASSERT_EQ(done.size(), 1u);
  EXPECT_DOUBLE_EQ(done[0], 5.0);  // 2 seeks + 3 transfers
}

TEST(Disk, RmwPenaltyForSubStripeWrites) {
  sim::Engine eng;
  auto params = simple_params();
  params.raid_full_stripe = 200;
  params.rmw_factor = 0.5;
  DiskModel disk(eng, params);
  std::vector<double> done;
  eng.spawn(submit_one(eng, disk, 1, 0, 100, true, done));  // sub-stripe
  eng.run_until(100.0);
  EXPECT_DOUBLE_EQ(done[0], 3.0);  // seek + 100B at 50 B/s
}

TEST(Disk, FullStripeWriteAvoidsRmw) {
  sim::Engine eng;
  auto params = simple_params();
  params.raid_full_stripe = 200;
  DiskModel disk(eng, params);
  std::vector<double> done;
  eng.spawn(submit_one(eng, disk, 1, 0, 200, true, done));
  eng.run_until(100.0);
  EXPECT_DOUBLE_EQ(done[0], 3.0);  // seek + 200B at 100 B/s
}

TEST(Disk, ReadsUseReadFactor) {
  sim::Engine eng;
  auto params = simple_params();
  params.read_factor = 2.0;
  DiskModel disk(eng, params);
  std::vector<double> done;
  eng.spawn(submit_one(eng, disk, 1, 0, 100, false, done));
  eng.run_until(100.0);
  EXPECT_DOUBLE_EQ(done[0], 1.5);  // seek + 100B at 200 B/s
}

TEST(Disk, PerRequestOverheadBoundsIops) {
  sim::Engine eng;
  auto params = simple_params();
  params.seek_time = 0.0;
  params.per_request_overhead = 0.1;
  DiskModel disk(eng, params);
  std::vector<double> done;
  eng.spawn([](DiskModel& d, std::vector<double>& out, sim::Engine& e) -> sim::Task {
    for (int i = 0; i < 10; ++i) co_await d.submit(1, static_cast<Bytes>(i) * 10, 10, true);
    out.push_back(e.now());
  }(disk, done, eng));
  eng.run_until(1000.0);
  ASSERT_EQ(done.size(), 1u);
  EXPECT_NEAR(done[0], 10 * (0.1 + 0.1), 1e-9);
}

TEST(Disk, BusyTimeTracksUtilisation) {
  sim::Engine eng;
  DiskModel disk(eng, simple_params());
  std::vector<double> done;
  eng.spawn(submit_one(eng, disk, 1, 0, 100, true, done));
  eng.run_until(100.0);
  EXPECT_DOUBLE_EQ(disk.busy_time(), 2.0);
}

TEST(Disk, ManyStreamsDegradeThroughputMonotonically) {
  // The mechanism behind Figure 2: more concurrent streams => more seeking
  // => lower aggregate throughput.
  auto run_streams = [](int nstreams) {
    sim::Engine eng;
    DiskParams p;
    p.sequential_bw = mb_per_sec(300.0);
    p.seek_time = 6.0e-3;
    p.per_request_overhead = 0.0;
    p.raid_full_stripe = 0;
    p.batch = 4;
    p.reorder_window = 0;
    DiskModel disk(eng, p);
    const Bytes chunk = 1_MiB;
    const int chunks = 64;
    for (int s = 0; s < nstreams; ++s) {
      eng.spawn([](DiskModel& d, int stream, int count, Bytes sz) -> sim::Task {
        for (int i = 0; i < count; ++i) {
          co_await d.submit(static_cast<DiskModel::StreamId>(stream),
                            static_cast<Bytes>(i) * sz, sz, true);
        }
      }(disk, s, chunks, chunk));
    }
    eng.run();
    return static_cast<double>(disk.bytes_serviced()) / eng.now();
  };
  const double bw1 = run_streams(1);
  const double bw4 = run_streams(4);
  const double bw16 = run_streams(16);
  EXPECT_GT(bw1, bw4);
  EXPECT_GT(bw4, bw16);
  // Single stream approaches the sequential rate.
  EXPECT_GT(bw1, mb_per_sec(250.0));
}

}  // namespace
}  // namespace pfsc::hw
