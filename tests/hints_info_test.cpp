// Tests for the MPI_Info-style hint parser/formatter.
#include <gtest/gtest.h>

#include "mpiio/info.hpp"
#include "support/error.hpp"

namespace pfsc::mpiio {
namespace {

TEST(ParseHints, FullExample) {
  const auto parsed = parse_hints(
      "driver=ad_lustre; striping_factor=160; striping_unit=134217728;"
      "romio_cb_write=enable; cb_nodes=64; cb_buffer_size=16777216;"
      "romio_ds_read=disable; ind_rd_buffer_size=4194304;"
      "start_iodevice=-1; dirty_window=268435456");
  EXPECT_TRUE(parsed.unknown_keys.empty());
  const Hints& h = parsed.hints;
  EXPECT_EQ(h.driver, Driver::ad_lustre);
  EXPECT_EQ(h.striping_factor, 160u);
  EXPECT_EQ(h.striping_unit, 128_MiB);
  EXPECT_TRUE(h.romio_cb_write);
  EXPECT_EQ(h.cb_nodes, 64u);
  EXPECT_EQ(h.cb_buffer_size, 16_MiB);
  EXPECT_FALSE(h.romio_ds_read);
  EXPECT_EQ(h.ind_rd_buffer_size, 4_MiB);
  EXPECT_EQ(h.start_iodevice, -1);
  EXPECT_EQ(h.dirty_window, 256_MiB);
}

TEST(ParseHints, DriverAliases) {
  EXPECT_EQ(parse_hints("filesystem=lustre").hints.driver, Driver::ad_lustre);
  EXPECT_EQ(parse_hints("filesystem=ufs").hints.driver, Driver::ad_ufs);
  EXPECT_EQ(parse_hints("driver=plfs").hints.driver, Driver::ad_plfs);
}

TEST(ParseHints, BooleanForms) {
  EXPECT_TRUE(parse_hints("romio_cb_write=true").hints.romio_cb_write);
  EXPECT_TRUE(parse_hints("romio_cb_write=1").hints.romio_cb_write);
  EXPECT_FALSE(parse_hints("romio_cb_write=disable").hints.romio_cb_write);
  EXPECT_FALSE(parse_hints("romio_cb_write=0").hints.romio_cb_write);
  EXPECT_THROW(parse_hints("romio_cb_write=maybe"), pfsc::UsageError);
}

TEST(ParseHints, CommaSeparatorAndWhitespace) {
  const auto parsed = parse_hints("  striping_factor = 8 ,striping_unit=1048576  ");
  EXPECT_EQ(parsed.hints.striping_factor, 8u);
  EXPECT_EQ(parsed.hints.striping_unit, 1_MiB);
}

TEST(ParseHints, UnknownKeysCollected) {
  const auto parsed = parse_hints("cb_config_list=*:1; striping_factor=4");
  ASSERT_EQ(parsed.unknown_keys.size(), 1u);
  EXPECT_EQ(parsed.unknown_keys[0], "cb_config_list");
  EXPECT_EQ(parsed.hints.striping_factor, 4u);
}

TEST(ParseHints, BaseHintsArePreserved) {
  Hints base;
  base.driver = Driver::ad_plfs;
  base.cb_buffer_size = 1_MiB;
  const auto parsed = parse_hints("striping_factor=2", base);
  EXPECT_EQ(parsed.hints.driver, Driver::ad_plfs);
  EXPECT_EQ(parsed.hints.cb_buffer_size, 1_MiB);
  EXPECT_EQ(parsed.hints.striping_factor, 2u);
}

TEST(ParseHints, MalformedInputThrows) {
  EXPECT_THROW(parse_hints("striping_factor"), pfsc::UsageError);
  EXPECT_THROW(parse_hints("striping_factor=abc"), pfsc::UsageError);
  EXPECT_THROW(parse_hints("driver=zfs"), pfsc::UsageError);
}

TEST(ParseHints, EmptyAndSeparatorsOnly) {
  EXPECT_TRUE(parse_hints("").unknown_keys.empty());
  EXPECT_TRUE(parse_hints(";;;,,,").unknown_keys.empty());
}

TEST(FormatHints, RoundTrips) {
  Hints h;
  h.driver = Driver::ad_lustre;
  h.striping_factor = 96;
  h.striping_unit = 32_MiB;
  h.start_iodevice = 5;
  h.romio_cb_write = false;
  h.cb_nodes = 7;
  h.cb_buffer_size = 8_MiB;
  h.romio_ds_read = false;
  h.ind_rd_buffer_size = 2_MiB;
  h.dirty_window = 0;
  const auto parsed = parse_hints(format_hints(h));
  EXPECT_TRUE(parsed.unknown_keys.empty());
  const Hints& back = parsed.hints;
  EXPECT_EQ(back.driver, h.driver);
  EXPECT_EQ(back.striping_factor, h.striping_factor);
  EXPECT_EQ(back.striping_unit, h.striping_unit);
  EXPECT_EQ(back.start_iodevice, h.start_iodevice);
  EXPECT_EQ(back.romio_cb_write, h.romio_cb_write);
  EXPECT_EQ(back.cb_nodes, h.cb_nodes);
  EXPECT_EQ(back.cb_buffer_size, h.cb_buffer_size);
  EXPECT_EQ(back.romio_ds_read, h.romio_ds_read);
  EXPECT_EQ(back.ind_rd_buffer_size, h.ind_rd_buffer_size);
  EXPECT_EQ(back.dirty_window, h.dirty_window);
}

}  // namespace
}  // namespace pfsc::mpiio
