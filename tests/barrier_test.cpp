// Direct unit coverage of sim::HybridBarrier (sim/domain.hpp): sense
// reversal across many rounds, completion-hook exclusivity, and the
// spin->park transition when parties outnumber cores. The ShardSet tests
// exercise the barrier indirectly; these pin the barrier's own contract so
// a regression points here instead of at a diverged golden. The TSan CI
// job runs this binary to vet the memory orderings.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "sim/domain.hpp"

namespace {

using pfsc::sim::HybridBarrier;

// Run `parties` threads through `rounds` crossings of `barrier`, calling
// `on_last` (thread-safe callable) as the completion hook each round.
template <typename OnLast>
void run_rounds(HybridBarrier& barrier, std::uint32_t parties,
                std::uint32_t rounds, OnLast on_last) {
  std::vector<std::thread> threads;
  threads.reserve(parties);
  for (std::uint32_t p = 0; p < parties; ++p) {
    threads.emplace_back([&] {
      bool sense = false;
      for (std::uint32_t r = 0; r < rounds; ++r) {
        barrier.arrive_and_wait(sense, on_last);
      }
    });
  }
  for (std::thread& t : threads) t.join();
}

TEST(HybridBarrierTest, SenseReversalAcrossManyRounds) {
  // The completion hook runs exactly once per round; if a stale sense
  // value ever released a waiter early, a thread would lap the others and
  // the per-round arrival count would go over parties.
  constexpr std::uint32_t kParties = 4;
  constexpr std::uint32_t kRounds = 5000;
  HybridBarrier barrier(kParties);
  std::atomic<std::uint64_t> hook_runs{0};
  run_rounds(barrier, kParties, kRounds,
             [&] { hook_runs.fetch_add(1, std::memory_order_relaxed); });
  EXPECT_EQ(hook_runs.load(), kRounds);
}

TEST(HybridBarrierTest, CompletionHookRunsExclusively) {
  // While the hook runs, every other participant is still waiting on the
  // old sense — so a hook that mutates plain shared state must never
  // overlap another hook or any participant's between-rounds section.
  // Track overlap with an "inside" flag the hook sets and clears.
  constexpr std::uint32_t kParties = 8;
  constexpr std::uint32_t kRounds = 2000;
  HybridBarrier barrier(kParties);
  std::atomic<bool> inside{false};
  std::atomic<std::uint64_t> overlaps{0};
  std::uint64_t plain_counter = 0;  // unsynchronised on purpose
  run_rounds(barrier, kParties, kRounds, [&] {
    if (inside.exchange(true, std::memory_order_acq_rel)) {
      overlaps.fetch_add(1, std::memory_order_relaxed);
    }
    ++plain_counter;  // TSan verifies the barrier ordering makes this safe
    inside.store(false, std::memory_order_release);
  });
  EXPECT_EQ(overlaps.load(), 0u);
  EXPECT_EQ(plain_counter, kRounds);
}

TEST(HybridBarrierTest, ZeroSpinBudgetParksAndCompletes) {
  // spin_budget 0 forces every non-last arriver straight to the futex
  // path: with more parties than most hosts have cores this is the
  // oversubscribed regime BM_ShardedOversubscribed measures. The rounds
  // must still complete (no lost wakeups) and parks() must record that
  // the park path actually ran.
  constexpr std::uint32_t kParties = 16;
  constexpr std::uint32_t kRounds = 500;
  HybridBarrier barrier(kParties, /*spin_budget=*/0);
  EXPECT_EQ(barrier.spin_budget(), 0u);
  std::atomic<std::uint64_t> hook_runs{0};
  run_rounds(barrier, kParties, kRounds,
             [&] { hook_runs.fetch_add(1, std::memory_order_relaxed); });
  EXPECT_EQ(hook_runs.load(), kRounds);
  EXPECT_GT(barrier.parks(), 0u);
}

TEST(HybridBarrierTest, LargeSpinBudgetAvoidsParkingWhenUncontended) {
  // A solo participant is always the last arriver: it never waits, so it
  // can never park regardless of budget.
  HybridBarrier barrier(1);
  bool sense = false;
  for (int r = 0; r < 100; ++r) barrier.arrive_and_wait(sense);
  EXPECT_EQ(barrier.parks(), 0u);
}

TEST(HybridBarrierTest, HookFreeOverloadRendezvouses) {
  constexpr std::uint32_t kParties = 3;
  constexpr std::uint32_t kRounds = 1000;
  HybridBarrier barrier(kParties, /*spin_budget=*/8);
  std::vector<std::thread> threads;
  std::atomic<std::uint32_t> in_round{0};
  std::atomic<std::uint64_t> max_seen{0};
  for (std::uint32_t p = 0; p < kParties; ++p) {
    threads.emplace_back([&] {
      bool sense = false;
      for (std::uint32_t r = 0; r < kRounds; ++r) {
        const std::uint32_t now =
            in_round.fetch_add(1, std::memory_order_acq_rel) + 1;
        std::uint64_t prev = max_seen.load(std::memory_order_relaxed);
        while (now > prev &&
               !max_seen.compare_exchange_weak(prev, now,
                                               std::memory_order_relaxed)) {
        }
        barrier.arrive_and_wait(sense);
        in_round.fetch_sub(1, std::memory_order_acq_rel);
        barrier.arrive_and_wait(sense);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  // Every thread checked in before any crossed: the barrier really is a
  // rendezvous, not a turnstile.
  EXPECT_EQ(max_seen.load(), kParties);
  EXPECT_EQ(in_round.load(), 0u);
}

}  // namespace
