// Tests for the group-cyclic two-phase planner (ad_lustre file domains):
// stripe ownership, conservation, round bounds and extent coalescing.
#include <gtest/gtest.h>

#include <map>

#include "mpiio/two_phase.hpp"
#include "support/error.hpp"

namespace pfsc::mpiio {
namespace {

std::vector<IoRequest> dense(int nranks, Bytes each) {
  std::vector<IoRequest> reqs;
  for (int r = 0; r < nranks; ++r) {
    reqs.push_back({r, static_cast<Bytes>(r) * each, each});
  }
  return reqs;
}

TEST(CyclicPlan, StripeOwnershipIsCyclic) {
  // 8 MiB of data, 1 MiB stripes, 2 aggregators: stripes 0,2,4,6 -> agg A;
  // 1,3,5,7 -> agg B.
  const auto reqs = dense(8, 1_MiB);
  const std::vector<int> aggs{10, 20};
  const auto plans = plan_two_phase_cyclic(reqs, aggs, 16_MiB, 1_MiB);
  ASSERT_EQ(plans.size(), 2u);
  for (const auto& plan : plans) {
    const int which = plan.agg_rank == 10 ? 0 : 1;
    for (const auto& round : plan.rounds) {
      for (const auto& [off, len] : round.extents) {
        for (Bytes b = off; b < off + len; b += 1_MiB) {
          EXPECT_EQ((b / 1_MiB) % 2, static_cast<Bytes>(which))
              << "byte " << b << " owned by wrong aggregator";
        }
      }
    }
  }
}

TEST(CyclicPlan, AdjacentPiecesCoalesce) {
  // One aggregator owns every stripe: the whole extent collapses into
  // one extent entry per round.
  const auto reqs = dense(8, 1_MiB);
  const std::vector<int> aggs{0};
  const auto plans = plan_two_phase_cyclic(reqs, aggs, 16_MiB, 1_MiB);
  ASSERT_EQ(plans.size(), 1u);
  ASSERT_EQ(plans[0].rounds.size(), 1u);
  EXPECT_EQ(plans[0].rounds[0].extents.size(), 1u);
  EXPECT_EQ(plans[0].rounds[0].present_bytes, 8_MiB);
}

TEST(CyclicPlan, RoundsBoundedByCbBuffer) {
  const auto reqs = dense(16, 1_MiB);
  const std::vector<int> aggs{0, 1};
  const auto plans = plan_two_phase_cyclic(reqs, aggs, 2_MiB, 1_MiB);
  for (const auto& plan : plans) {
    Bytes total = 0;
    for (const auto& round : plan.rounds) {
      EXPECT_LE(round.present_bytes, 2_MiB);
      total += round.present_bytes;
    }
    EXPECT_EQ(total, 8_MiB);  // half of 16 MiB each
  }
}

TEST(CyclicPlan, LargeStripesKeepAllAggregatorsBusy) {
  // The property that motivated the cyclic plan: a 4 GiB extent of
  // 128 MiB stripes over 64 aggregators gives EVERY aggregator work
  // (the contiguous-domain plan would starve half of them after stripe
  // alignment).
  std::vector<IoRequest> reqs;
  for (int r = 0; r < 32; ++r) {
    reqs.push_back({r, static_cast<Bytes>(r) * 128_MiB, 128_MiB});
  }
  std::vector<int> aggs;
  for (int a = 0; a < 16; ++a) aggs.push_back(a);
  const auto plans = plan_two_phase_cyclic(reqs, aggs, 16_MiB, 128_MiB);
  EXPECT_EQ(plans.size(), 16u);  // everyone owns 2 stripes
  for (const auto& plan : plans) {
    Bytes total = 0;
    for (const auto& round : plan.rounds) total += round.present_bytes;
    EXPECT_EQ(total, 256_MiB);
  }
}

TEST(CyclicPlan, SparseRequestsConserveBytes) {
  // IOR-segmented pattern: 1 MiB every 4 MiB.
  std::vector<IoRequest> reqs;
  for (int r = 0; r < 64; ++r) {
    reqs.push_back({r, static_cast<Bytes>(r) * 4_MiB, 1_MiB});
  }
  const std::vector<int> aggs{0, 16, 32, 48};
  const auto plans = plan_two_phase_cyclic(reqs, aggs, 16_MiB, 128_MiB);
  Bytes total = 0;
  std::map<Bytes, Bytes> seen;  // offset -> len, to detect overlaps
  for (const auto& plan : plans) {
    for (const auto& round : plan.rounds) {
      for (const auto& [off, len] : round.extents) {
        total += len;
        auto [it, inserted] = seen.emplace(off, len);
        EXPECT_TRUE(inserted) << "duplicate extent at " << off;
      }
    }
  }
  EXPECT_EQ(total, 64u * 1_MiB);
}

TEST(CyclicPlan, EmptyInputAndValidation) {
  const std::vector<int> aggs{0};
  EXPECT_TRUE(plan_two_phase_cyclic({}, aggs, 1_MiB, 1_MiB).empty());
  const auto reqs = dense(2, 1_MiB);
  EXPECT_THROW(plan_two_phase_cyclic(reqs, {}, 1_MiB, 1_MiB), UsageError);
  EXPECT_THROW(plan_two_phase_cyclic(reqs, aggs, 0, 1_MiB), UsageError);
  EXPECT_THROW(plan_two_phase_cyclic(reqs, aggs, 1_MiB, 0), UsageError);
}

// Property sweep: conservation and per-round bounds across rank counts,
// stripe sizes and buffer sizes, for a strided pattern with overlaps.
class CyclicProperty
    : public ::testing::TestWithParam<std::tuple<int, Bytes, Bytes>> {};

TEST_P(CyclicProperty, ConservationAndBounds) {
  const auto [nranks, stripe, cb] = GetParam();
  std::vector<IoRequest> reqs;
  for (int r = 0; r < nranks; ++r) {
    // Overlapping requests: merge_extents inside the planner dedups them.
    reqs.push_back({r, static_cast<Bytes>(r) * 2_MiB, 3_MiB});
  }
  const auto merged = merge_extents(reqs);
  Bytes expected = 0;
  for (const auto& [off, len] : merged) expected += len;

  std::vector<int> aggs{0};
  if (nranks > 4) aggs.push_back(4);
  const auto plans = plan_two_phase_cyclic(reqs, aggs, cb, stripe);
  Bytes total = 0;
  for (const auto& plan : plans) {
    EXPECT_GE(plan.domain_end, plan.domain_begin);
    for (const auto& round : plan.rounds) {
      EXPECT_LE(round.present_bytes, cb);
      EXPECT_GT(round.present_bytes, 0u);
      Bytes ext = 0;
      for (const auto& [off, len] : round.extents) ext += len;
      EXPECT_EQ(ext, round.present_bytes);
      total += round.present_bytes;
    }
  }
  EXPECT_EQ(total, expected);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CyclicProperty,
    ::testing::Combine(::testing::Values(1, 3, 16, 65),
                       ::testing::Values(Bytes{1_MiB}, Bytes{32_MiB},
                                         Bytes{128_MiB}),
                       ::testing::Values(Bytes{1_MiB}, Bytes{16_MiB})));

}  // namespace
}  // namespace pfsc::mpiio
