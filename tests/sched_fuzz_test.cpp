// Deterministic fuzz for the OSS request schedulers: seeded random
// arrival / cancel-like / re-tuned sequences for every policy, serviced
// through a shared fair-share link, with a monitor process calling
// check_invariants() throughout and full byte accounting verified at
// every drain. Runs under the ASan+UBSan CI job via ctest, so queue/heap
// corruption and accounting drift both fail loudly.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "lustre/sched/scheduler.hpp"
#include "sim/link.hpp"
#include "support/rng.hpp"

namespace pfsc::lustre::sched {
namespace {

struct FuzzStats {
  std::size_t completed = 0;
  std::size_t total = 0;
};

/// One fuzzed request. A "cancel-like" request completes immediately
/// after its grant (the RPC was aborted before service), exercising the
/// complete()-reenters-pump paths at zero service time.
sim::Task fuzz_request(sim::Engine& eng, Scheduler& s, sim::LinkModel& link,
                       JobId job, Bytes bytes, Seconds arrival,
                       bool cancel_like, FuzzStats& st) {
  if (arrival > 0.0) co_await eng.delay(arrival);
  co_await s.admit(job, bytes);
  if (!cancel_like) co_await link.transfer(bytes);
  s.complete(job, bytes);
  ++st.completed;
}

/// Polls the scheduler's structural invariants while the fuzz sequence is
/// in flight; any corruption throws SimulationError out of eng.run().
sim::Task monitor(sim::Engine& eng, Scheduler& s, FuzzStats& st) {
  // Tick-bounded so a starvation bug surfaces as failed accounting checks
  // after the drain rather than as a hung engine.
  for (int tick = 0; tick < 100000 && st.completed < st.total; ++tick) {
    s.check_invariants();
    co_await eng.delay(1.0e-3);
  }
  s.check_invariants();
}

SchedTuning random_tuning(Rng& rng) {
  SchedTuning t;
  t.quantum = 1_KiB << rng.uniform(14);           // 1 KiB .. 8 MiB
  t.service_slots = 1 + static_cast<std::size_t>(rng.uniform(64));
  t.job_rate = mb_per_sec(10.0 + rng.uniform_double(0.0, 490.0));
  t.bucket_depth = 64_KiB << rng.uniform(10);     // 64 KiB .. 64 MiB
  return t;
}

/// One drained sequence: build a scheduler with fresh random tuning (the
/// "resize" axis — tuning changes between sequences, never mid-flight),
/// feed it a random request mix, drain, and audit the books.
void run_sequence(sim::Engine& eng, SchedPolicy policy, Rng& rng) {
  const SchedTuning tuning = random_tuning(rng);
  const auto s = make_scheduler(eng, policy, tuning);
  const auto link =
      sim::make_link(eng, sim::LinkPolicy::fair_share, mb_per_sec(600.0));

  const std::uint32_t jobs = 1 + static_cast<std::uint32_t>(rng.uniform(5));
  const std::size_t n = 1 + static_cast<std::size_t>(rng.uniform(80));
  FuzzStats st;
  st.total = n;
  Bytes total = 0;
  std::vector<Bytes> per_job(jobs, 0);
  for (std::size_t i = 0; i < n; ++i) {
    const auto job = static_cast<JobId>(rng.uniform(jobs));
    const Bytes bytes = 1 + rng.uniform(8_MiB);   // includes 1-byte edge
    const Seconds arrival = rng.uniform_double(0.0, 0.02);
    const bool cancel_like = rng.uniform(8) == 0;
    total += bytes;
    per_job[job] += bytes;
    eng.spawn(fuzz_request(eng, *s, *link, job, bytes, arrival, cancel_like, st));
  }
  eng.spawn(monitor(eng, *s, st));
  eng.run();

  EXPECT_EQ(st.completed, n);
  EXPECT_EQ(s->queue_depth(), 0u);
  EXPECT_EQ(s->in_service(), 0u);
  EXPECT_EQ(s->submitted_bytes(), total);
  EXPECT_EQ(s->admitted_bytes(), total);
  EXPECT_EQ(s->served_bytes(), total);
  for (std::uint32_t job = 0; job < jobs; ++job) {
    EXPECT_EQ(s->served_bytes(job), per_job[job]) << "job " << job;
  }
  EXPECT_NO_THROW(s->check_invariants());
}

void fuzz_policy(SchedPolicy policy) {
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    SCOPED_TRACE(std::string(sched_policy_name(policy)) + " seed " +
                 std::to_string(seed));
    Rng rng(0xF022u ^ (seed * 0x9E3779B97F4A7C15ull));
    // Two drained sequences per seed share one engine, so the second
    // scheduler starts at a nonzero epoch with re-rolled tuning.
    sim::Engine eng;
    run_sequence(eng, policy, rng);
    run_sequence(eng, policy, rng);
  }
}

TEST(SchedFuzz, Fifo) { fuzz_policy(SchedPolicy::fifo); }
TEST(SchedFuzz, JobFair) { fuzz_policy(SchedPolicy::job_fair); }
TEST(SchedFuzz, TokenBucket) { fuzz_policy(SchedPolicy::token_bucket); }

/// Re-tunes the scheduler while requests are queued and in service,
/// auditing invariants immediately before and after every set_tuning().
/// Exercises the mid-flight reconciliation paths: job_fair's overcommit
/// allowance on a slot shrink, token_bucket's settle/clamp/re-drain on a
/// rate or depth change.
sim::Task retuner(sim::Engine& eng, Scheduler& s, Rng& rng, FuzzStats& st) {
  for (int i = 0; i < 64 && st.completed < st.total; ++i) {
    co_await eng.delay(rng.uniform_double(2.0e-4, 3.0e-3));
    s.check_invariants();
    s.set_tuning(random_tuning(rng));
    s.check_invariants();
  }
}

void run_retune_sequence(sim::Engine& eng, SchedPolicy policy, Rng& rng) {
  const auto s = make_scheduler(eng, policy, random_tuning(rng));
  const auto link =
      sim::make_link(eng, sim::LinkPolicy::fair_share, mb_per_sec(600.0));

  const std::uint32_t jobs = 1 + static_cast<std::uint32_t>(rng.uniform(5));
  const std::size_t n = 1 + static_cast<std::size_t>(rng.uniform(80));
  FuzzStats st;
  st.total = n;
  Bytes total = 0;
  std::vector<Bytes> per_job(jobs, 0);
  for (std::size_t i = 0; i < n; ++i) {
    const auto job = static_cast<JobId>(rng.uniform(jobs));
    const Bytes bytes = 1 + rng.uniform(8_MiB);
    const Seconds arrival = rng.uniform_double(0.0, 0.02);
    const bool cancel_like = rng.uniform(8) == 0;
    total += bytes;
    per_job[job] += bytes;
    eng.spawn(fuzz_request(eng, *s, *link, job, bytes, arrival, cancel_like, st));
  }
  eng.spawn(monitor(eng, *s, st));
  eng.spawn(retuner(eng, *s, rng, st));
  eng.run();

  EXPECT_EQ(st.completed, n);
  EXPECT_EQ(s->queue_depth(), 0u);
  EXPECT_EQ(s->in_service(), 0u);
  EXPECT_EQ(s->served_bytes(), total);
  for (std::uint32_t job = 0; job < jobs; ++job) {
    EXPECT_EQ(s->served_bytes(job), per_job[job]) << "job " << job;
  }
  EXPECT_NO_THROW(s->check_invariants());
}

void fuzz_retune_policy(SchedPolicy policy) {
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    SCOPED_TRACE(std::string(sched_policy_name(policy)) + " retune seed " +
                 std::to_string(seed));
    Rng rng(0x7E7Eu ^ (seed * 0x9E3779B97F4A7C15ull));
    sim::Engine eng;
    run_retune_sequence(eng, policy, rng);
    run_retune_sequence(eng, policy, rng);
  }
}

TEST(SchedFuzz, FifoRetuneUnderLoad) { fuzz_retune_policy(SchedPolicy::fifo); }
TEST(SchedFuzz, JobFairRetuneUnderLoad) {
  fuzz_retune_policy(SchedPolicy::job_fair);
}
TEST(SchedFuzz, TokenBucketRetuneUnderLoad) {
  fuzz_retune_policy(SchedPolicy::token_bucket);
}

/// Degenerate tunings are rejected atomically: the failed set_tuning leaves
/// the previous tuning in place and the scheduler fully serviceable.
TEST(SchedFuzz, RejectsDegenerateTuning) {
  for (const SchedPolicy policy :
       {SchedPolicy::fifo, SchedPolicy::job_fair, SchedPolicy::token_bucket}) {
    sim::Engine eng;
    const auto s = make_scheduler(eng, policy, SchedTuning{});
    SchedTuning bad;
    bad.quantum = 0;
    EXPECT_THROW(s->set_tuning(bad), UsageError);
    bad = SchedTuning{};
    bad.service_slots = 0;
    EXPECT_THROW(s->set_tuning(bad), UsageError);
    bad = SchedTuning{};
    bad.job_rate = 0.0;
    EXPECT_THROW(s->set_tuning(bad), UsageError);
    bad = SchedTuning{};
    bad.bucket_depth = 0;
    EXPECT_THROW(s->set_tuning(bad), UsageError);
    EXPECT_NO_THROW(s->check_invariants());
  }
}

}  // namespace
}  // namespace pfsc::lustre::sched
