// Golden-number regression tests for the default (FIFO) link policy.
//
// These pin exact simulator outputs — captured from the tree immediately
// before the BandwidthPipe -> LinkModel refactor — for scaled-down versions
// of the paper's three headline experiments: the Figure 1 stripe sweep (and
// its optimum), the Figure 2 single-OST contention curve, and the Figure 3
// multi-job bandwidth split. The refactored FifoPipe must reproduce every
// digit: the refactor is behavior-preserving when the fair-share model is
// off. Any intentional change to the FIFO data path must update these
// numbers in the same commit, with an explanation.
//
// Set PFSC_GOLDEN_PRINT=1 to print freshly measured values in source form
// (used to regenerate the tables).
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <vector>

#include "harness/scenario.hpp"

namespace pfsc {
namespace {

bool print_mode() {
  const char* env = std::getenv("PFSC_GOLDEN_PRINT");
  return env != nullptr && *env != '\0';
}

void check(const char* what, double measured, double golden) {
  if (print_mode()) {
    std::printf("GOLDEN %s = %.17g\n", what, measured);
    return;
  }
  EXPECT_DOUBLE_EQ(measured, golden) << what;
}

// -- Figure 1 (scaled): stripe sweep optimum --------------------------------
// 256 ranks over 32 nodes, ad_lustre, 10 segments; sweep stripe count x
// stripe size. Scaled so the stripe sweep matters: enough aggregator
// bandwidth that the OST count is the binding resource, as in the paper.

harness::Scenario fig1_base() {
  harness::Scenario s;
  s.nprocs = 256;
  s.procs_per_node = 8;
  s.ior.segment_count = 10;
  s.ior.hints.driver = mpiio::Driver::ad_lustre;
  return s;
}

TEST(GoldenFifo, Fig1StripeSweep) {
  const std::vector<std::uint32_t> counts{8, 32, 64};
  const std::vector<Bytes> sizes{4_MiB, 16_MiB};
  // golden[c][s]: write MB/s at counts[c] x sizes[s], seed 0xF1D0.
  const double golden[3][2] = {
      {2097.3359374367478, 2097.3359374367478},
      {4772.3575949592951, 4772.3575949592951},
      {7454.4042488345267, 7387.8130309291346},
  };
  double best = 0.0;
  for (std::size_t c = 0; c < counts.size(); ++c) {
    for (std::size_t s = 0; s < sizes.size(); ++s) {
      harness::Scenario scen = fig1_base();
      scen.ior.hints.striping_factor = counts[c];
      scen.ior.hints.striping_unit = sizes[s];
      const auto obs = harness::run_scenario(scen, 0xF1D0);
      ASSERT_EQ(obs.ior.err, lustre::Errno::ok);
      ASSERT_TRUE(obs.ior.verified);
      char what[64];
      std::snprintf(what, sizeof(what), "fig1[%zu][%zu]", c, s);
      check(what, obs.ior.write_mbps, golden[c][s]);
      best = std::max(best, obs.ior.write_mbps);
    }
  }
  // The optimum sits at the largest stripe count, as in the paper.
  if (!print_mode()) {
    EXPECT_DOUBLE_EQ(best, golden[2][0]);
  }
}

// -- Figure 2 (scaled): single-OST contention curve -------------------------
// 1..8 writers, 16 MiB each, all pinned to one OST; quiet system.

TEST(GoldenFifo, Fig2ContentionCurve) {
  const std::vector<std::uint32_t> writers{1, 2, 4, 8};
  const double golden[4] = {
      224.10966133453957,
      117.56743078885808,
      55.34982178421108,
      21.318108696473729,
  };
  for (std::size_t i = 0; i < writers.size(); ++i) {
    harness::Scenario s;
    s.workload = harness::Workload::probe;
    s.writers = writers[i];
    s.bytes_per_writer = 16_MiB;
    const auto obs = harness::run_scenario(s, 0xF2D0);
    char what[64];
    std::snprintf(what, sizeof(what), "fig2[%zu]", i);
    check(what, obs.probe.mean_mbps, golden[i]);
  }
}

// -- Figure 3 (scaled): per-job bandwidth under multi-job contention --------
// Two tuned 32-rank jobs running simultaneously.

TEST(GoldenFifo, Fig3PerJobBandwidth) {
  harness::Scenario s;
  s.workload = harness::Workload::multi;
  s.jobs = 2;
  s.nprocs = 32;
  s.procs_per_node = 16;
  s.ior.segment_count = 10;
  s.ior.hints.driver = mpiio::Driver::ad_lustre;
  s.ior.hints.striping_factor = 16;
  s.ior.hints.striping_unit = 4_MiB;
  const double golden_jobs[2] = {
      834.95268617543184,
      827.73487650397442,
  };
  const auto obs = harness::run_scenario(s, 0xF3D0);
  ASSERT_EQ(obs.per_job.size(), 2u);
  for (std::size_t j = 0; j < obs.per_job.size(); ++j) {
    ASSERT_EQ(obs.per_job[j].err, lustre::Errno::ok);
    char what[64];
    std::snprintf(what, sizeof(what), "fig3.job%zu", j);
    check(what, obs.per_job[j].write_mbps, golden_jobs[j]);
  }
}

// -- OSS scheduler layer: explicit fifo is bit-for-bit the old data path ----
// The request scheduler sits between every bulk RPC and the OSS link/disk
// service. With oss_sched_policy=fifo (set EXPLICITLY here, independent of
// the default) every admit grants synchronously without adding a single
// engine event, so one representative number from each figure must
// reproduce the pre-scheduler goldens above to the last digit.

TEST(GoldenFifo, SchedFifoPreservesEveryFigure) {
  {
    harness::Scenario scen = fig1_base();
    scen.platform.oss_sched_policy = lustre::sched::SchedPolicy::fifo;
    scen.ior.hints.striping_factor = 64;
    scen.ior.hints.striping_unit = 4_MiB;
    const auto obs = harness::run_scenario(scen, 0xF1D0);
    ASSERT_EQ(obs.ior.err, lustre::Errno::ok);
    check("sched_fifo.fig1[2][0]", obs.ior.write_mbps, 7454.4042488345267);
  }
  {
    harness::Scenario s;
    s.workload = harness::Workload::probe;
    s.platform.oss_sched_policy = lustre::sched::SchedPolicy::fifo;
    s.writers = 8;
    s.bytes_per_writer = 16_MiB;
    const auto obs = harness::run_scenario(s, 0xF2D0);
    check("sched_fifo.fig2[3]", obs.probe.mean_mbps, 21.318108696473729);
  }
  {
    harness::Scenario s;
    s.workload = harness::Workload::multi;
    s.platform.oss_sched_policy = lustre::sched::SchedPolicy::fifo;
    s.jobs = 2;
    s.nprocs = 32;
    s.procs_per_node = 16;
    s.ior.segment_count = 10;
    s.ior.hints.driver = mpiio::Driver::ad_lustre;
    s.ior.hints.striping_factor = 16;
    s.ior.hints.striping_unit = 4_MiB;
    const auto obs = harness::run_scenario(s, 0xF3D0);
    ASSERT_EQ(obs.per_job.size(), 2u);
    check("sched_fifo.fig3.job0", obs.per_job[0].write_mbps,
          834.95268617543184);
    check("sched_fifo.fig3.job1", obs.per_job[1].write_mbps,
          827.73487650397442);
  }
}

// -- Sharded engine: domain count is invisible in the numbers ---------------
// The multi-domain engine (platform.sim_domains > 1) partitions the OSS
// shards across worker threads with conservative-lookahead sync. Its
// contract is stronger than statistical equivalence: every figure must
// reproduce the single-engine goldens above TO THE LAST DIGIT at any
// domain count. One representative scenario per figure, at 2 and 8
// domains, checked against the same constants as the single-engine tests.

TEST(GoldenFifo, ShardedDomainsReproduceEveryFigure) {
  for (const std::uint32_t domains : {2u, 8u}) {
    {
      harness::Scenario scen = fig1_base();
      scen.platform.sim_domains = domains;
      scen.ior.hints.striping_factor = 64;
      scen.ior.hints.striping_unit = 4_MiB;
      const auto obs = harness::run_scenario(scen, 0xF1D0);
      ASSERT_EQ(obs.ior.err, lustre::Errno::ok);
      char what[64];
      std::snprintf(what, sizeof(what), "sharded%u.fig1[2][0]", domains);
      check(what, obs.ior.write_mbps, 7454.4042488345267);
    }
    {
      harness::Scenario s;
      s.workload = harness::Workload::probe;
      s.platform.sim_domains = domains;
      s.writers = 8;
      s.bytes_per_writer = 16_MiB;
      const auto obs = harness::run_scenario(s, 0xF2D0);
      char what[64];
      std::snprintf(what, sizeof(what), "sharded%u.fig2[3]", domains);
      check(what, obs.probe.mean_mbps, 21.318108696473729);
    }
    {
      harness::Scenario s;
      s.workload = harness::Workload::multi;
      s.platform.sim_domains = domains;
      s.jobs = 2;
      s.nprocs = 32;
      s.procs_per_node = 16;
      s.ior.segment_count = 10;
      s.ior.hints.driver = mpiio::Driver::ad_lustre;
      s.ior.hints.striping_factor = 16;
      s.ior.hints.striping_unit = 4_MiB;
      const auto obs = harness::run_scenario(s, 0xF3D0);
      ASSERT_EQ(obs.per_job.size(), 2u);
      char what[64];
      std::snprintf(what, sizeof(what), "sharded%u.fig3.job0", domains);
      check(what, obs.per_job[0].write_mbps, 834.95268617543184);
      std::snprintf(what, sizeof(what), "sharded%u.fig3.job1", domains);
      check(what, obs.per_job[1].write_mbps, 827.73487650397442);
    }
  }
}

}  // namespace
}  // namespace pfsc
