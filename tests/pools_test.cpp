// Tests for OST pools: management operations, pool-constrained allocation,
// interaction with failures and directory defaults, and the QoS isolation
// they provide (the contention remedy the paper's discussion points at).
#include <gtest/gtest.h>

#include <set>

#include "lustre/fs.hpp"
#include "lustre/lfs.hpp"

namespace pfsc::lustre {
namespace {

struct PoolsFixture : ::testing::Test {
  sim::Engine eng;
  hw::PlatformParams params = hw::tiny_test_platform();
  FileSystem fs{eng, hw::tiny_test_platform(), 13};

  template <typename T>
  T run(sim::Co<T> op) {
    T out{};
    eng.spawn([](sim::Co<T> op, T& out) -> sim::Task {
      out = co_await std::move(op);
    }(std::move(op), out));
    eng.run();
    return out;
  }
};

TEST_F(PoolsFixture, PoolNameType) {
  PoolName p("flash");
  EXPECT_EQ(p.view(), "flash");
  EXPECT_FALSE(p.empty());
  EXPECT_TRUE(PoolName().empty());
  EXPECT_EQ(PoolName("a"), PoolName("a"));
  EXPECT_FALSE(PoolName("a") == PoolName("b"));
  // Over-long names truncate at the Lustre limit instead of overflowing.
  const PoolName longname("0123456789012345678901234567890123456789");
  EXPECT_EQ(longname.view().size(), 31u);
}

TEST_F(PoolsFixture, PoolManagement) {
  EXPECT_EQ(fs.pool_new("flash"), Errno::ok);
  EXPECT_EQ(fs.pool_new("flash"), Errno::eexist);
  EXPECT_EQ(fs.pool_new(""), Errno::einval);
  const std::vector<OstIndex> members{0, 1, 2};
  EXPECT_EQ(fs.pool_add("flash", members), Errno::ok);
  EXPECT_EQ(fs.pool_add("missing", members), Errno::enoent);
  const std::vector<OstIndex> bad{100};
  EXPECT_EQ(fs.pool_add("flash", bad), Errno::einval);
  auto list = fs.pool_members("flash");
  ASSERT_TRUE(list.ok());
  EXPECT_EQ(list.value, members);
  EXPECT_EQ(fs.pool_members("missing").err, Errno::enoent);
  EXPECT_EQ(fs.pool_names(), std::vector<std::string>{"flash"});
}

TEST_F(PoolsFixture, DuplicateAddIsIdempotent) {
  ASSERT_EQ(fs.pool_new("p"), Errno::ok);
  const std::vector<OstIndex> members{3, 4};
  ASSERT_EQ(fs.pool_add("p", members), Errno::ok);
  ASSERT_EQ(fs.pool_add("p", members), Errno::ok);
  EXPECT_EQ(fs.pool_members("p").value.size(), 2u);
}

TEST_F(PoolsFixture, AllocationConfinedToPool) {
  ASSERT_EQ(fs.pool_new("flash"), Errno::ok);
  const std::vector<OstIndex> members{5, 6, 7};
  ASSERT_EQ(fs.pool_add("flash", members), Errno::ok);
  StripeSettings settings{2, 1_MiB, -1};
  settings.pool = "flash";
  for (int i = 0; i < 10; ++i) {
    auto r = run(fs.create("/f" + std::to_string(i), settings));
    ASSERT_TRUE(r.ok());
    for (OstIndex ost : fs.inode(r.value).layout.osts) {
      EXPECT_GE(ost, 5u);
      EXPECT_LE(ost, 7u);
    }
  }
}

TEST_F(PoolsFixture, UnknownPoolRejected) {
  StripeSettings settings{1, 1_MiB, -1};
  settings.pool = "nope";
  EXPECT_EQ(run(fs.create("/f", settings)).err, Errno::einval);
}

TEST_F(PoolsFixture, PoolTooSmallGivesEnospc) {
  ASSERT_EQ(fs.pool_new("tiny"), Errno::ok);
  const std::vector<OstIndex> members{0};
  ASSERT_EQ(fs.pool_add("tiny", members), Errno::ok);
  StripeSettings settings{2, 1_MiB, -1};
  settings.pool = "tiny";
  EXPECT_EQ(run(fs.create("/f", settings)).err, Errno::enospc);
}

TEST_F(PoolsFixture, FailedPoolMemberSkipped) {
  ASSERT_EQ(fs.pool_new("p"), Errno::ok);
  const std::vector<OstIndex> members{0, 1, 2};
  ASSERT_EQ(fs.pool_add("p", members), Errno::ok);
  fs.fail_ost(1);
  StripeSettings settings{2, 1_MiB, -1};
  settings.pool = "p";
  auto r = run(fs.create("/f", settings));
  ASSERT_TRUE(r.ok());
  for (OstIndex ost : fs.inode(r.value).layout.osts) EXPECT_NE(ost, 1u);
  // With another failure only one member is healthy.
  fs.fail_ost(0);
  EXPECT_EQ(run(fs.create("/g", settings)).err, Errno::enospc);
}

TEST_F(PoolsFixture, DirectoryDefaultCarriesPool) {
  ASSERT_EQ(fs.pool_new("proj"), Errno::ok);
  const std::vector<OstIndex> members{2, 3, 4};
  ASSERT_EQ(fs.pool_add("proj", members), Errno::ok);
  ASSERT_TRUE(run(fs.mkdir("/proj")).ok());
  StripeSettings dir_default{2, 1_MiB, -1};
  dir_default.pool = "proj";
  ASSERT_EQ(run(fs.set_dir_stripe("/proj", dir_default)), Errno::ok);
  // A file created with no explicit settings inherits the pool.
  auto r = run(fs.create("/proj/data", StripeSettings{}));
  ASSERT_TRUE(r.ok());
  for (OstIndex ost : fs.inode(r.value).layout.osts) {
    EXPECT_GE(ost, 2u);
    EXPECT_LE(ost, 4u);
  }
}

TEST_F(PoolsFixture, PoolsIsolateWorkloads) {
  // Two "tenants" on disjoint pools can never collide, whatever the RNG
  // does — the QoS guarantee random global allocation cannot give.
  ASSERT_EQ(fs.pool_new("a"), Errno::ok);
  ASSERT_EQ(fs.pool_new("b"), Errno::ok);
  const std::vector<OstIndex> left{0, 1, 2, 3};
  const std::vector<OstIndex> right{4, 5, 6, 7};
  ASSERT_EQ(fs.pool_add("a", left), Errno::ok);
  ASSERT_EQ(fs.pool_add("b", right), Errno::ok);
  std::vector<InodeId> files_a;
  std::vector<InodeId> files_b;
  for (int i = 0; i < 8; ++i) {
    StripeSettings sa{2, 1_MiB, -1};
    sa.pool = "a";
    StripeSettings sb{2, 1_MiB, -1};
    sb.pool = "b";
    files_a.push_back(run(fs.create("/a" + std::to_string(i), sa)).expect("a"));
    files_b.push_back(run(fs.create("/b" + std::to_string(i), sb)).expect("b"));
  }
  const auto occ_a = fs.ost_occupancy(files_a);
  const auto occ_b = fs.ost_occupancy(files_b);
  for (OstIndex ost = 0; ost < params.ost_count; ++ost) {
    EXPECT_FALSE(occ_a[ost] > 0 && occ_b[ost] > 0) << "shared OST " << ost;
  }
}

TEST_F(PoolsFixture, LfsWrappers) {
  EXPECT_EQ(lfs_pool_new(fs, "w"), Errno::ok);
  const std::vector<OstIndex> members{1, 2};
  EXPECT_EQ(lfs_pool_add(fs, "w", members), Errno::ok);
  auto list = lfs_pool_list(fs, "w");
  ASSERT_TRUE(list.ok());
  EXPECT_EQ(list.value, members);
}

TEST_F(PoolsFixture, ExplicitOffsetOverridesPool) {
  ASSERT_EQ(fs.pool_new("p"), Errno::ok);
  const std::vector<OstIndex> members{6, 7};
  ASSERT_EQ(fs.pool_add("p", members), Errno::ok);
  StripeSettings settings{1, 1_MiB, 0};  // explicit OST 0
  settings.pool = "p";
  auto r = run(fs.create("/f", settings));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(fs.inode(r.value).layout.osts[0], 0u);
}

}  // namespace
}  // namespace pfsc::lustre
