// Control-plane tests: the TuningBus endpoint registry, PFL size-class
// layouts, the runtime setters they drive (set_pfl / set_placement /
// set_dir_stripe_now), the t=0 create-burst demand fix, and the adaptive
// Controller end-to-end through the harness — including the contract that
// --ctrl off constructs nothing and leaves every report untouched.
#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "ctrl/controller.hpp"
#include "ctrl/retunable.hpp"
#include "harness/scenario.hpp"
#include "lustre/client.hpp"
#include "lustre/fs.hpp"
#include "lustre/pfl.hpp"
#include "replay/analytics.hpp"

namespace pfsc {
namespace {

// -- TuningBus ---------------------------------------------------------------

TEST(TuningBus, AttachFindApplyDetach) {
  ctrl::TuningBus bus;
  lustre::PlacementKind got = lustre::PlacementKind::uniform_random;
  ctrl::Endpoint<lustre::PlacementKind> ep(
      "placement", [&](const lustre::PlacementKind& k) { got = k; });
  bus.attach("placement", ep);
  EXPECT_EQ(bus.size(), 1u);
  EXPECT_EQ(bus.find("placement"), &ep);
  EXPECT_EQ(bus.find("nope"), nullptr);

  bus.apply("placement", ctrl::TuneValue(lustre::PlacementKind::load_aware));
  EXPECT_EQ(got, lustre::PlacementKind::load_aware);

  bus.detach("placement");
  EXPECT_EQ(bus.size(), 0u);
  EXPECT_EQ(bus.find("placement"), nullptr);
}

TEST(TuningBus, DuplicateNameRejected) {
  ctrl::TuningBus bus;
  ctrl::Endpoint<lustre::PlacementKind> a("p", [](const auto&) {});
  ctrl::Endpoint<lustre::PlacementKind> b("p", [](const auto&) {});
  bus.attach("p", a);
  EXPECT_THROW(bus.attach("p", b), UsageError);
}

TEST(TuningBus, UnknownEndpointRejected) {
  ctrl::TuningBus bus;
  EXPECT_THROW(
      bus.apply("ghost", ctrl::TuneValue(lustre::PlacementKind::load_aware)),
      UsageError);
}

TEST(TuningBus, WrongValueTypeRejectedWithoutSideEffects) {
  ctrl::TuningBus bus;
  int applies = 0;
  ctrl::Endpoint<lustre::PlacementKind> ep(
      "placement", [&](const lustre::PlacementKind&) { ++applies; });
  bus.attach("placement", ep);
  EXPECT_THROW(
      bus.apply("placement", ctrl::TuneValue(lustre::sched::SchedTuning{})),
      UsageError);
  EXPECT_EQ(applies, 0);
}

TEST(TuningBus, EndpointNamesSorted) {
  ctrl::TuningBus bus;
  ctrl::Endpoint<lustre::PlacementKind> a("z", [](const auto&) {});
  ctrl::Endpoint<lustre::PlacementKind> b("a", [](const auto&) {});
  bus.attach("z", a);
  bus.attach("a", b);
  EXPECT_EQ(bus.endpoints(), (std::vector<std::string>{"a", "z"}));
}

// -- PflSpec -----------------------------------------------------------------

lustre::PflSpec small_medium_wide() {
  lustre::PflSpec spec;
  spec.classes = {{16_MiB, 1}, {256_MiB, 2}};
  spec.wide = 8;
  return spec;
}

TEST(PflSpec, ChoosesBySizeClass) {
  const lustre::PflSpec spec = small_medium_wide();
  EXPECT_FALSE(spec.empty());
  EXPECT_EQ(spec.choose(1_MiB), 1u);
  EXPECT_EQ(spec.choose(16_MiB), 1u);   // boundary is inclusive
  EXPECT_EQ(spec.choose(17_MiB), 2u);
  EXPECT_EQ(spec.choose(256_MiB), 2u);
  EXPECT_EQ(spec.choose(1_GiB), 8u);    // beyond every class: wide
}

TEST(PflSpec, EmptySpecIsEmpty) {
  const lustre::PflSpec spec;
  EXPECT_TRUE(spec.empty());
  EXPECT_EQ(spec.choose(1_GiB), 0u);  // 0 = platform default
}

TEST(PflSpec, ValidateRejectsBadTables) {
  lustre::PflSpec spec = small_medium_wide();
  EXPECT_NO_THROW(spec.validate());
  spec.classes[1].up_to = 1_MiB;  // not ascending
  EXPECT_THROW(spec.validate(), UsageError);
  spec = small_medium_wide();
  spec.classes[0].stripe_count = 0;  // a class must pick a real width
  EXPECT_THROW(spec.validate(), UsageError);
}

// -- FileSystem runtime setters ---------------------------------------------

TEST(CtrlFs, PflShapesDefaultedCreates) {
  sim::Engine eng;
  lustre::FileSystem fs(eng, hw::tiny_test_platform(), 1);
  fs.set_pfl(small_medium_wide());
  lustre::Client client(fs, "c");
  eng.spawn([](lustre::FileSystem& fs, lustre::Client& c) -> sim::Task {
    // Defaulted stripe count + a size hint: the PFL table decides.
    lustre::StripeSettings small{0, 1_MiB};
    small.size_hint = 8_MiB;
    auto f = co_await c.create("/small", small);
    PFSC_ASSERT(f.ok());
    EXPECT_EQ(fs.inode(f.value).layout.stripe_count(), 1u);

    lustre::StripeSettings big{0, 1_MiB};
    big.size_hint = 1_GiB;
    f = co_await c.create("/big", big);
    PFSC_ASSERT(f.ok());
    EXPECT_EQ(fs.inode(f.value).layout.stripe_count(), 8u);

    // An explicit stripe count always wins over the table.
    lustre::StripeSettings pinned{3, 1_MiB};
    pinned.size_hint = 1_GiB;
    f = co_await c.create("/pinned", pinned);
    PFSC_ASSERT(f.ok());
    EXPECT_EQ(fs.inode(f.value).layout.stripe_count(), 3u);

    // No size hint: the platform default applies, as before PFL existed.
    f = co_await c.create("/unhinted", lustre::StripeSettings{0, 1_MiB});
    PFSC_ASSERT(f.ok());
    EXPECT_EQ(fs.inode(f.value).layout.stripe_count(),
              fs.params().default_stripe_count);
  }(fs, client));
  eng.run();
}

TEST(CtrlFs, SetPflValidates) {
  sim::Engine eng;
  lustre::FileSystem fs(eng, hw::tiny_test_platform(), 1);
  lustre::PflSpec bad = small_medium_wide();
  bad.classes[0].stripe_count = 0;
  EXPECT_THROW(fs.set_pfl(bad), UsageError);
}

TEST(CtrlFs, SetDirStripeNow) {
  sim::Engine eng;
  lustre::FileSystem fs(eng, hw::tiny_test_platform(), 1);
  lustre::Client client(fs, "c");
  eng.spawn([](lustre::FileSystem& fs, lustre::Client& c) -> sim::Task {
    auto d = co_await c.mkdir("/wide");
    PFSC_ASSERT(d.ok());
    EXPECT_EQ(fs.set_dir_stripe_now("/wide", lustre::StripeSettings{4, 1_MiB}),
              lustre::Errno::ok);
    auto f = co_await c.create("/wide/f", lustre::StripeSettings{});
    PFSC_ASSERT(f.ok());
    EXPECT_EQ(fs.inode(f.value).layout.stripe_count(), 4u);

    EXPECT_EQ(fs.set_dir_stripe_now("/missing",
                                    lustre::StripeSettings{1, 1_MiB}),
              lustre::Errno::enoent);
    EXPECT_EQ(fs.set_dir_stripe_now("/wide/f",
                                    lustre::StripeSettings{1, 1_MiB}),
              lustre::Errno::enotdir);
  }(fs, client));
  eng.run();
}

TEST(CtrlFs, SetPlacementAffectsLaterAllocations) {
  sim::Engine eng;
  lustre::FileSystem fs(eng, hw::tiny_test_platform(), 7);
  fs.set_placement(lustre::PlacementKind::load_aware);
  lustre::Client client(fs, "c");
  eng.spawn([](lustre::FileSystem& fs, lustre::Client& c) -> sim::Task {
    for (int i = 0; i < 16; ++i) {
      auto f = co_await c.create("/f" + std::to_string(i),
                                 lustre::StripeSettings{1, 1_MiB});
      PFSC_ASSERT(f.ok());
    }
    // 16 single-stripe files over 8 OSTs under least-demand placement:
    // perfectly level.
    for (const std::uint64_t n : fs.objects_per_ost()) EXPECT_EQ(n, 2u);
  }(fs, client));
  eng.run();
}

// Regression for the t=0 create-burst demand bug: creates that overlap the
// same MDS service window must see each other's demand increments, or
// least-demand placement sees an all-zero table and stacks the whole burst
// onto the same OSTs. All 16 creates below are issued at t=0, well inside
// one mds_create_time, so this only balances if demand is charged *before*
// the MDS wait.
TEST(CtrlFs, SimultaneousCreatesSeeEachOthersDemand) {
  sim::Engine eng;
  lustre::FileSystem fs(eng, hw::tiny_test_platform(), 7);
  fs.set_placement(lustre::PlacementKind::load_aware);
  lustre::Client client(fs, "c");
  for (int i = 0; i < 16; ++i) {
    eng.spawn([](lustre::Client& c, int i) -> sim::Task {
      auto f = co_await c.create("/burst" + std::to_string(i),
                                 lustre::StripeSettings{1, 1_MiB});
      PFSC_ASSERT(f.ok());
    }(client, i));
  }
  eng.run();
  for (const std::uint64_t n : fs.objects_per_ost()) EXPECT_EQ(n, 2u);
}

// -- Controller --------------------------------------------------------------

TEST(Controller, ExposesAllEndpoints) {
  sim::Engine eng;
  lustre::FileSystem fs(eng, hw::tiny_test_platform(), 1);
  ctrl::CtrlConfig cfg;
  cfg.mode = ctrl::CtrlMode::full;
  ctrl::Controller controller(eng, cfg, fs);
  EXPECT_EQ(controller.bus().endpoints(),
            (std::vector<std::string>{"dir_default", "oss_sched", "pfl",
                                      "placement"}));
}

TEST(Controller, RejectsBadConfig) {
  sim::Engine eng;
  lustre::FileSystem fs(eng, hw::tiny_test_platform(), 1);
  ctrl::CtrlConfig cfg;
  cfg.mode = ctrl::CtrlMode::off;  // off means "construct nothing"
  EXPECT_THROW(ctrl::Controller(eng, cfg, fs), UsageError);
  cfg.mode = ctrl::CtrlMode::pfl;
  cfg.interval = 0.0;
  EXPECT_THROW(ctrl::Controller(eng, cfg, fs), UsageError);
}

TEST(Controller, BusAppliesSchedTuningToEveryOss) {
  sim::Engine eng;
  lustre::FileSystem fs(eng, hw::tiny_test_platform(), 1);
  ctrl::CtrlConfig cfg;
  cfg.mode = ctrl::CtrlMode::qos;
  ctrl::Controller controller(eng, cfg, fs);
  lustre::sched::SchedTuning t;
  t.quantum = 1_MiB;
  t.service_slots = 3;
  controller.bus().apply("oss_sched", ctrl::TuneValue(t));
  for (std::uint32_t oss = 0; oss < fs.params().oss_count; ++oss) {
    EXPECT_EQ(fs.oss_sched(oss).tuning().quantum, 1_MiB) << "oss " << oss;
    EXPECT_EQ(fs.oss_sched(oss).tuning().service_slots, 3u) << "oss " << oss;
  }
}

/// A staggered fleet long enough for the controller to see both the calm
/// single-job phase and the multi-job storm.
harness::Scenario storm_fleet() {
  std::vector<harness::JobSpec> jobs;
  for (int j = 0; j < 3; ++j) {
    harness::JobSpec spec;
    spec.kind = harness::JobKind::ior;
    spec.job_id = static_cast<std::uint32_t>(j);
    spec.nprocs = 16;
    spec.arrival = j == 0 ? 0.0 : 0.02 * j;
    spec.ior.segment_count = 4;
    spec.ior.hints.driver = mpiio::Driver::ad_lustre;
    spec.ior.hints.striping_unit = 1_MiB;  // striping_factor stays 0: PFL
    spec.ior.test_file = "/fleet/storm.dat." + std::to_string(j);
    jobs.push_back(spec);
  }
  harness::Scenario s = harness::Scenario::from_jobs(std::move(jobs));
  s.procs_per_node = 16;
  s.ctrl.mode = ctrl::CtrlMode::pfl;
  s.ctrl.interval = 0.005;
  s.ctrl.cooldown = 0.01;
  return s;
}

TEST(Controller, PflRuleArmsCalmThenDetectsStorm) {
  const harness::Observation obs = harness::run_scenario(storm_fleet(), 0xC791);
  EXPECT_EQ(obs.ctrl_mode, ctrl::CtrlMode::pfl);
  ASSERT_FALSE(obs.ctrl_actions.empty());
  // The calm baseline is armed synchronously at start, before any create.
  EXPECT_EQ(obs.ctrl_actions.front().rule, "pfl_calm");
  EXPECT_EQ(obs.ctrl_actions.front().at, 0.0);
  bool saw_storm = false;
  for (const ctrl::CtrlAction& a : obs.ctrl_actions) {
    if (a.rule == "pfl_storm") saw_storm = true;
  }
  EXPECT_TRUE(saw_storm) << "3 overlapping jobs never read as a storm";
}

// Regression for the inert-cooldown bug: act() used to record timestamps
// under per-action rule names ("pfl_storm", "pfl_calm", ...) while
// in_cooldown() queried family keys ("pfl", ...), so the keys never
// matched and the storm re-divide path could retune on every tick. Each
// endpoint is driven by exactly one rule family, so grouping by endpoint
// groups by family: two actions on the same endpoint must never be closer
// than the configured cooldown.
TEST(Controller, CooldownSpacesSameFamilyActions) {
  harness::Scenario s = storm_fleet();
  // Wider than the natural calm->storm gap (~0.045s at this seed), so the
  // cooldown must actually delay the storm action for the run to pass.
  s.ctrl.cooldown = 0.1;
  const harness::Observation obs = harness::run_scenario(s, 0xC791);
  ASSERT_GE(obs.ctrl_actions.size(), 2u);
  std::map<std::string, Seconds> last;
  std::size_t same_family_pairs = 0;
  for (const ctrl::CtrlAction& a : obs.ctrl_actions) {
    const auto it = last.find(a.endpoint);
    if (it != last.end()) {
      ++same_family_pairs;
      EXPECT_GE(a.at - it->second, s.ctrl.cooldown)
          << a.rule << " at t=" << a.at << " only "
          << a.at - it->second << "s after the previous "
          << a.endpoint << " action";
    }
    last[a.endpoint] = a.at;
  }
  // The run must actually exercise the spacing, not pass vacuously.
  EXPECT_GT(same_family_pairs, 0u);
}

TEST(Controller, FleetReportCarriesAdaptationBlock) {
  const harness::Scenario s = storm_fleet();
  const harness::Observation obs = harness::run_scenario(s, 0xC791);
  const replay::FleetReport report = replay::analyze_fleet(obs, s.platform);
  EXPECT_TRUE(report.has_adaptation);
  EXPECT_EQ(report.ctrl_mode, "pfl");
  EXPECT_EQ(report.adaptations.size(), obs.ctrl_actions.size());
  const std::string json = report.to_json();
  EXPECT_NE(json.find("\"adaptation\":{\"mode\":\"pfl\""), std::string::npos);
  EXPECT_NE(report.format_table().find("adaptation: mode pfl"),
            std::string::npos);
}

// The null contract: --ctrl off constructs no controller, adds no engine
// events, records no trace track, and emits no adaptation block — reports
// are indistinguishable from a build that predates the control plane.
TEST(Controller, OffModeIsInvisible) {
  harness::Scenario s = storm_fleet();
  s.ctrl = ctrl::CtrlConfig{};  // mode = off
  s.trace.mode = trace::TraceMode::full;
  const harness::Observation obs = harness::run_scenario(s, 0xC792);
  EXPECT_EQ(obs.ctrl_mode, ctrl::CtrlMode::off);
  EXPECT_TRUE(obs.ctrl_actions.empty());
  ASSERT_FALSE(obs.trace_json.empty());
  EXPECT_EQ(obs.trace_json.find("\"ctrl\""), std::string::npos);

  const replay::FleetReport report = replay::analyze_fleet(obs, s.platform);
  EXPECT_FALSE(report.has_adaptation);
  EXPECT_EQ(report.to_json().find("adaptation"), std::string::npos);
  EXPECT_EQ(report.format_table().find("adaptation"), std::string::npos);
}

// Controlled runs export their decisions on a dedicated "ctrl" track.
TEST(Controller, TraceCarriesCtrlTrack) {
  harness::Scenario s = storm_fleet();
  s.trace.mode = trace::TraceMode::full;
  const harness::Observation obs = harness::run_scenario(s, 0xC792);
  ASSERT_FALSE(obs.trace_json.empty());
  EXPECT_NE(obs.trace_json.find("\"ctrl\""), std::string::npos);
  EXPECT_NE(obs.trace_json.find("pfl_calm"), std::string::npos);
}

// -- Scenario validation -----------------------------------------------------

TEST(CtrlScenario, ValidateRejectsBadCtrlConfig) {
  harness::Scenario s = storm_fleet();
  s.ctrl.interval = 0.0;
  EXPECT_THROW(s.validate(), UsageError);
  s = storm_fleet();
  s.ctrl.cooldown = -1.0;
  EXPECT_THROW(s.validate(), UsageError);
  s = storm_fleet();
  s.ctrl.jain_low = 0.9;
  s.ctrl.jain_high = 0.8;
  EXPECT_THROW(s.validate(), UsageError);
  s = storm_fleet();
  s.ctrl.storm_jobs = 0;
  EXPECT_THROW(s.validate(), UsageError);
}

TEST(CtrlScenario, ValidateRejectsDegenerateSchedTuning) {
  harness::Scenario s;
  s.platform.oss_sched.quantum = 0;
  EXPECT_THROW(s.validate(), UsageError);
  s = harness::Scenario{};
  s.platform.oss_sched.service_slots = 0;
  EXPECT_THROW(s.validate(), UsageError);
}

TEST(CtrlScenario, ProbeWorkloadRejectsController) {
  harness::Scenario s;
  s.workload = harness::Workload::probe;
  s.writers = 2;
  s.ctrl.mode = ctrl::CtrlMode::pfl;
  EXPECT_THROW(s.validate(), UsageError);
}

}  // namespace
}  // namespace pfsc
