// Property tests for the MDS placement policies: seeded random job mixes
// (create / unlink / fail / restore sequences) checked against
// policy-independent invariants (set size, validity, no duplicates, only
// healthy OSTs, per-seed determinism) and the load-aware balance bound —
// load_aware never leaves any OST with more live stripes than round_robin's
// maximum plus one on the same operation sequence. A failing case is shrunk
// to its smallest failing operation prefix before being reported, so the
// failure message names a minimal (seed, prefix) reproducer (the same
// convention as sched_property_test.cpp).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "lustre/placement.hpp"
#include "support/rng.hpp"

namespace pfsc::lustre {
namespace {

enum class OpKind : std::uint8_t { create, unlink, fail, restore };

struct Op {
  OpKind kind = OpKind::create;
  std::uint32_t want = 1;   // create: stripes requested
  std::size_t victim = 0;   // unlink: index into live files; fail/restore: OST
};

struct Case {
  std::uint32_t ost_count = 8;
  std::vector<Op> ops;
};

Case gen_case(std::uint64_t seed) {
  Rng rng(0x91ACEu ^ (seed * 0x9E3779B97F4A7C15ull));
  Case c;
  c.ost_count = 4 + static_cast<std::uint32_t>(rng.uniform(60));
  const std::size_t n = 1 + static_cast<std::size_t>(rng.uniform(60));
  for (std::size_t i = 0; i < n; ++i) {
    Op op;
    const std::uint64_t roll = rng.uniform(10);
    if (roll < 6) {
      op.kind = OpKind::create;
      op.want = 1 + static_cast<std::uint32_t>(
                        rng.uniform(std::min<std::uint32_t>(c.ost_count, 16)));
    } else if (roll < 8) {
      op.kind = OpKind::unlink;
      op.victim = rng.uniform(64);  // mod live-file count at run time
    } else if (roll == 8) {
      op.kind = OpKind::fail;
      op.victim = rng.uniform(c.ost_count);
    } else {
      op.kind = OpKind::restore;
      op.victim = rng.uniform(c.ost_count);
    }
    c.ops.push_back(op);
  }
  return c;
}

/// One policy's world: its own demand/failed state and allocator stream,
/// mirroring exactly what FileSystem maintains (+1 per chosen OST at
/// create, -1 at unlink).
struct World {
  std::unique_ptr<PlacementPolicy> policy;
  Rng rng;
  std::vector<bool> failed;
  std::vector<std::uint64_t> demand;
  std::vector<std::vector<OstIndex>> files;  // live files' OST sets
  std::vector<std::vector<OstIndex>> choices;  // every create's result

  World(PlacementKind kind, std::uint32_t ost_count, std::uint64_t seed)
      : policy(make_placement(kind)),
        rng(seed),
        failed(ost_count, false),
        demand(ost_count, 0) {}

  std::uint32_t healthy_count() const {
    return static_cast<std::uint32_t>(
        std::count(failed.begin(), failed.end(), false));
  }

  /// Apply one op; returns an error description, empty when the invariants
  /// hold.
  std::string apply(const Op& op, std::uint32_t ost_count) {
    switch (op.kind) {
      case OpKind::fail:
        // Never fail the last healthy OST (the allocator pre-checks
        // healthy_ost_count and we want creates to stay servable).
        if (healthy_count() > 1) failed[op.victim] = true;
        return {};
      case OpKind::restore:
        failed[op.victim] = false;
        return {};
      case OpKind::unlink: {
        if (files.empty()) return {};
        const std::size_t at = op.victim % files.size();
        for (const OstIndex ost : files[at]) --demand[ost];
        files.erase(files.begin() + static_cast<std::ptrdiff_t>(at));
        return {};
      }
      case OpKind::create:
        break;
    }
    const std::uint32_t want = std::min(op.want, healthy_count());
    const PlacementView view{ost_count, &failed, &demand};
    const std::vector<OstIndex> chosen = policy->choose(want, view, rng);
    choices.push_back(chosen);

    if (chosen.size() != want) {
      return "chose " + std::to_string(chosen.size()) + " of " +
             std::to_string(want) + " wanted OSTs";
    }
    std::set<OstIndex> dedup;
    for (const OstIndex ost : chosen) {
      if (ost >= ost_count) {
        return "chose out-of-range OST " + std::to_string(ost);
      }
      if (failed[ost]) return "chose failed OST " + std::to_string(ost);
      if (!dedup.insert(ost).second) {
        return "chose duplicate OST " + std::to_string(ost);
      }
    }
    for (const OstIndex ost : chosen) ++demand[ost];
    files.push_back(chosen);
    return {};
  }

  std::uint64_t max_demand() const {
    return *std::max_element(demand.begin(), demand.end());
  }
};

/// Run the first `len` ops of `c` under `kind`; empty string when every
/// per-op invariant holds.
std::string run_case(PlacementKind kind, const Case& c, std::size_t len,
                     World* out = nullptr) {
  World w(kind, c.ost_count, 0xBEEF);
  for (std::size_t i = 0; i < len; ++i) {
    if (auto err = w.apply(c.ops[i], c.ost_count); !err.empty()) {
      return "op " + std::to_string(i) + ": " + err;
    }
  }
  if (out != nullptr) *out = std::move(w);
  return {};
}

/// Shrink to the smallest failing prefix and report it (the rerun is
/// deterministic for the same prefix, so the reproducer is exact).
void report_shrunk(PlacementKind kind, std::uint64_t seed, const Case& c,
                   const std::string& full_error) {
  std::size_t n = c.ops.size();
  std::string err = full_error;
  for (std::size_t len = 1; len < c.ops.size(); ++len) {
    const std::string e = run_case(kind, c, len);
    if (!e.empty()) {
      n = len;
      err = e;
      break;
    }
  }
  ADD_FAILURE() << placement_kind_name(kind) << " seed " << seed
                << " fails with the first " << n << " of " << c.ops.size()
                << " ops: " << err;
}

constexpr PlacementKind kAllKinds[] = {
    PlacementKind::uniform_random,
    PlacementKind::round_robin,
    PlacementKind::load_aware,
    PlacementKind::node_affine,
};

TEST(PlacementProperty, EveryKindChoosesValidDistinctHealthySets) {
  for (const PlacementKind kind : kAllKinds) {
    for (std::uint64_t seed = 1; seed <= 50; ++seed) {
      const Case c = gen_case(seed);
      const std::string err = run_case(kind, c, c.ops.size());
      if (!err.empty()) {
        report_shrunk(kind, seed, c, err);
        return;
      }
    }
  }
}

TEST(PlacementProperty, LoadAwareMaxDemandBoundedByRoundRobin) {
  // The contention-aware policy must actually spread demand: on the same
  // operation sequence its live max per-OST stripe count never exceeds
  // round_robin's max by more than one (greedy least-loaded keeps the
  // demand spread within 1 between unlink disturbances; the +1 absorbs
  // the cursor-vs-sort phase difference after them).
  for (std::uint64_t seed = 1; seed <= 50; ++seed) {
    const Case c = gen_case(seed);
    World la(PlacementKind::load_aware, c.ost_count, 0xBEEF);
    World rr(PlacementKind::round_robin, c.ost_count, 0xBEEF);
    ASSERT_EQ(run_case(PlacementKind::load_aware, c, c.ops.size(), &la), "");
    ASSERT_EQ(run_case(PlacementKind::round_robin, c, c.ops.size(), &rr), "");
    EXPECT_LE(la.max_demand(), rr.max_demand() + 1)
        << "seed " << seed << ": load_aware max " << la.max_demand()
        << " vs round_robin max " << rr.max_demand();
  }
}

TEST(PlacementProperty, EveryKindIsDeterministicPerSeed) {
  for (const PlacementKind kind : kAllKinds) {
    for (std::uint64_t seed = 1; seed <= 20; ++seed) {
      const Case c = gen_case(seed);
      World a(kind, c.ost_count, 0xBEEF);
      World b(kind, c.ost_count, 0xBEEF);
      ASSERT_EQ(run_case(kind, c, c.ops.size(), &a), "");
      ASSERT_EQ(run_case(kind, c, c.ops.size(), &b), "");
      ASSERT_EQ(a.choices.size(), b.choices.size());
      for (std::size_t i = 0; i < a.choices.size(); ++i) {
        EXPECT_EQ(a.choices[i], b.choices[i])
            << placement_kind_name(kind) << " seed " << seed << " create "
            << i << " diverged";
      }
    }
  }
}

TEST(PlacementProperty, NodeAffineChoosesContiguousHealthyBands) {
  // node_affine's contract: the chosen set is a contiguous run of the
  // healthy-OST list (disjointly rentable index bands).
  for (std::uint64_t seed = 1; seed <= 50; ++seed) {
    const Case c = gen_case(seed);
    World w(PlacementKind::node_affine, c.ost_count, 0xBEEF);
    std::vector<bool> failed(c.ost_count, false);
    std::vector<std::uint64_t> demand(c.ost_count, 0);
    Rng rng(0xBEEF);
    const auto policy = make_placement(PlacementKind::node_affine);
    std::vector<std::vector<OstIndex>> files;
    for (const Op& op : c.ops) {
      if (op.kind == OpKind::fail) {
        if (std::count(failed.begin(), failed.end(), false) > 1) {
          failed[op.victim] = true;
        }
        continue;
      }
      if (op.kind == OpKind::restore) {
        failed[op.victim] = false;
        continue;
      }
      if (op.kind == OpKind::unlink) {
        if (files.empty()) continue;
        const std::size_t at = op.victim % files.size();
        for (const OstIndex ost : files[at]) --demand[ost];
        files.erase(files.begin() + static_cast<std::ptrdiff_t>(at));
        continue;
      }
      std::vector<OstIndex> healthy;
      for (OstIndex ost = 0; ost < c.ost_count; ++ost) {
        if (!failed[ost]) healthy.push_back(ost);
      }
      const std::uint32_t want =
          std::min(op.want, static_cast<std::uint32_t>(healthy.size()));
      const PlacementView view{c.ost_count, &failed, &demand};
      const std::vector<OstIndex> chosen = policy->choose(want, view, rng);
      ASSERT_EQ(chosen.size(), want);
      // Contiguity in the healthy list: positions must be consecutive.
      const auto pos0 = std::find(healthy.begin(), healthy.end(), chosen[0]);
      ASSERT_NE(pos0, healthy.end());
      for (std::size_t k = 1; k < chosen.size(); ++k) {
        const std::size_t at =
            static_cast<std::size_t>(pos0 - healthy.begin()) + k;
        ASSERT_LT(at, healthy.size());
        EXPECT_EQ(chosen[k], healthy[at]) << "seed " << seed;
      }
      for (const OstIndex ost : chosen) ++demand[ost];
      files.push_back(chosen);
    }
  }
}

}  // namespace
}  // namespace pfsc::lustre
