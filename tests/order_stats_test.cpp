// Tests for the order-statistics extension: occupancy CDF, expected
// maximum occupancy and the predicted slowest-OST job slowdown.
#include <gtest/gtest.h>

#include <algorithm>

#include "core/metrics.hpp"

namespace pfsc::core {
namespace {

TEST(OccupancyCdf, BoundsAndMonotonicity) {
  double prev = 0.0;
  for (unsigned k = 0; k <= 10; ++k) {
    const double cdf = occupancy_cdf(480, 10, 160, k);
    EXPECT_GE(cdf, prev);
    EXPECT_GE(cdf, 0.0);
    EXPECT_LE(cdf, 1.0);
    prev = cdf;
  }
  EXPECT_DOUBLE_EQ(occupancy_cdf(480, 10, 160, 10), 1.0);
}

TEST(OccupancyCdf, MatchesExpectationTail) {
  // 1 - cdf(0) = P[occupied] and d*(1-cdf(0)) must equal Eq. 2.
  const unsigned d = 480;
  const unsigned n = 4;
  const unsigned r = 160;
  const double p_occupied = 1.0 - occupancy_cdf(d, n, r, 0);
  EXPECT_NEAR(d * p_occupied, d_inuse_uniform(r, n, d), 1e-6);
}

TEST(OccupancyCdf, DegenerateP) {
  EXPECT_DOUBLE_EQ(occupancy_cdf(10, 5, 0, 0), 1.0);   // nothing lands
  EXPECT_DOUBLE_EQ(occupancy_cdf(10, 5, 10, 4), 0.0);  // all 5 land everywhere
  EXPECT_DOUBLE_EQ(occupancy_cdf(10, 5, 10, 5), 1.0);
}

TEST(ExpectedMax, MatchesMonteCarlo) {
  Rng rng(99);
  const unsigned d = 48;
  const unsigned n = 6;
  const unsigned r = 16;
  // Monte Carlo max occupancy over the whole file system.
  double mc = 0.0;
  const unsigned reps = 3000;
  std::vector<std::uint32_t> counts(d);
  for (unsigned rep = 0; rep < reps; ++rep) {
    std::fill(counts.begin(), counts.end(), 0u);
    for (unsigned j = 0; j < n; ++j) {
      for (auto ost : rng.sample_without_replacement(d, r)) ++counts[ost];
    }
    mc += *std::max_element(counts.begin(), counts.end());
  }
  mc /= reps;
  const double analytic = expected_max_occupancy(d, n, r, d);
  EXPECT_NEAR(analytic, mc, 0.25);
}

TEST(ExpectedMax, GrowsWithTargetsAndJobs) {
  const double one = expected_max_occupancy(480, 4, 160, 1);
  const double many = expected_max_occupancy(480, 4, 160, 480);
  EXPECT_GT(many, one);
  EXPECT_LE(many, 4.0);
  EXPECT_NEAR(one, 4.0 * 160.0 / 480.0, 0.01);  // single OST: the mean

  const double few_jobs = expected_max_occupancy(480, 2, 160, 480);
  const double more_jobs = expected_max_occupancy(480, 8, 160, 480);
  EXPECT_GT(more_jobs, few_jobs);
}

TEST(ExpectedMax, PaperScenarioWorstOst) {
  // Four tuned jobs at R=160: Table V reports ~7 OSTs shared by all four
  // jobs, so the expected busiest OST should be 4 (some target gets all).
  EXPECT_NEAR(expected_max_occupancy(480, 4, 160, 480), 4.0, 0.05);
  // At R=32 four-way collisions are rare: expected max ~2-3.
  const double max32 = expected_max_occupancy(480, 4, 32, 480);
  EXPECT_GT(max32, 1.9);
  EXPECT_LT(max32, 3.2);
}

TEST(Slowdown, SoloJobIsOne) {
  EXPECT_DOUBLE_EQ(predicted_job_slowdown(480, 1, 160), 1.0);
}

TEST(Slowdown, GrowsWithContention) {
  double prev = 1.0;
  for (unsigned n = 2; n <= 8; ++n) {
    const double s = predicted_job_slowdown(480, n, 160);
    EXPECT_GT(s, prev);
    EXPECT_LE(s, static_cast<double>(n));
    prev = s;
  }
}

TEST(Slowdown, ExplainsFigure3) {
  // Four tuned jobs at R=160: the busiest of a job's 160 OSTs is expected
  // to be ~4-way shared, so the slowest-OST model predicts a ~3.5-4x
  // slowdown — the paper measured 3.44x. The mean-load model (Eq. 4)
  // predicts only 1.66x; this is why the order statistics matter.
  const double slow = predicted_job_slowdown(480, 4, 160);
  EXPECT_GT(slow, 3.0);
  EXPECT_LE(slow, 4.0);
  EXPECT_GT(slow, d_load(160, 4, 480));
}

TEST(Slowdown, SmallRequestsBarelySlowDown) {
  // The paper's recommendation in order-statistics terms: at R=32 even the
  // worst of a job's OSTs is rarely shared.
  const double slow = predicted_job_slowdown(480, 4, 32);
  EXPECT_LT(slow, 2.4);
  EXPECT_GT(slow, 1.0);
}

}  // namespace
}  // namespace pfsc::core
